(* Quickstart: fuzz the paper's Figure 1 program and watch PMRace find
   both PM concurrency bug patterns.

     dune exec examples/quickstart.exe

   The target is two threads over three persistent words:
     thread-1: lock(g); x := A; ... ; clwb x; sfence; unlock(g)
     thread-2: y := x; clwb y; sfence
   plus a persisted lock g that no recovery code ever resets. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let () =
  Format.printf "PMRace quickstart: fuzzing the Figure 1 example@.@.";
  let target = Workloads.Figure1.target in
  let cfg = Fuzzer.Config.make ~max_campaigns:60 ~master_seed:3 () in
  let session = Fuzzer.run target cfg in
  Format.printf "%d campaigns in %.3fs; coverage: %d alias pairs, %d branches@.@."
    session.campaigns_run session.wall_time
    (Pmrace.Alias_cov.count session.alias)
    (Pmrace.Branch_cov.count session.branch);

  Format.printf "Inconsistency candidates (reads of non-persisted data):@.";
  List.iter
    (fun (w, r, k) ->
      Format.printf "  %s candidate: written at %s, read at %s@."
        (match k with Runtime.Candidates.Inter -> "inter-thread" | Intra -> "intra-thread")
        w r)
    (Report.candidate_pairs session.report);

  Format.printf "@.Confirmed inconsistencies and their verdicts:@.";
  List.iter (fun f -> Format.printf "  %a@." Report.pp_finding f) (Report.findings session.report);
  List.iter
    (fun (f : Report.sync_finding) ->
      Format.printf "  %a %a@." Runtime.Checkers.pp_sync_event f.ev
        Fmt.(option Pmrace.Post_failure.pp_verdict)
        f.sync_verdict)
    (Report.sync_findings session.report);

  Format.printf "@.Ground truth:@.";
  List.iter
    (fun ((kb : Pmrace.Target.known_bug), found) ->
      Format.printf "  [%s] %a@."
        (if found then "FOUND" else "MISS")
        Pmrace.Target.pp_known_bug kb)
    (Fuzzer.found_known_bugs session target);

  (* Demonstrate the crash consequence concretely: boot the crash image of
     the first confirmed inconsistency and compare x and y. *)
  match
    List.find_opt (fun (f : Report.finding) -> f.inc.Runtime.Checkers.image <> None)
      (Report.findings session.report)
  with
  | Some f ->
      let image = Option.get f.inc.Runtime.Checkers.image in
      let x = Pmem.Pool.image_word image Workloads.Figure1.x_off in
      let y = Pmem.Pool.image_word image Workloads.Figure1.y_off in
      let g = Pmem.Pool.image_word image Workloads.Figure1.g_off in
      Format.printf "@.Crash image at the inconsistency: x=%Ld y=%Ld g=%Ld@." x y g;
      Format.printf "y was derived from x, yet y <> x after the crash: %b@."
        (not (Int64.equal x y))
  | None -> Format.printf "@.(no crash image captured)@."

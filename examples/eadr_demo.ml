(* The §6.6 discussion, demonstrated: fuzz P-CLHT on a conventional ADR
   platform and then on an eADR platform (battery-backed caches).

     dune exec examples/eadr_demo.exe

   Under eADR every store is durable immediately, so no thread can ever
   read non-persisted data — PM Inter-thread Inconsistency is impossible
   by construction.  But the persistent bucket locks still survive crashes
   unreleased: PM Synchronization Inconsistency, and its hang, remain. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let run ~eadr =
  let cfg = Fuzzer.Config.make ~max_campaigns:250 ~master_seed:5 ~eadr ~use_checkpoint:true () in
  Fuzzer.run Workloads.Pclht.target cfg

let describe label (s : Fuzzer.session) =
  let sync_fp, _, sync_bugs, _ = Report.sync_verdict_summary s.report in
  Format.printf "%s@." label;
  Format.printf "  inter-thread candidates      : %d@."
    (Report.candidate_count s.report Runtime.Candidates.Inter);
  Format.printf "  inter-thread inconsistencies : %d@."
    (Report.inconsistency_count s.report Runtime.Candidates.Inter);
  Format.printf "  sync inconsistencies         : %d (%d validated FP, %d bugs)@."
    (List.length (Report.sync_findings s.report))
    sync_fp sync_bugs;
  List.iter
    (fun ((kb : Pmrace.Target.known_bug), found) ->
      if kb.kb_type = `Inter || kb.kb_type = `Sync then
        Format.printf "  bug %d (%s): %s@." kb.kb_id
          (match kb.kb_type with `Inter -> "Inter" | _ -> "Sync")
          (if found then "FOUND" else "not found"))
    (Fuzzer.found_known_bugs s Workloads.Pclht.target)

let () =
  Format.printf "P-CLHT under conventional ADR (volatile caches):@.@.";
  describe "ADR" (run ~eadr:false);
  Format.printf "@.P-CLHT under eADR (battery-backed caches, no flushes needed):@.@.";
  describe "eADR" (run ~eadr:true);
  Format.printf
    "@.As §6.6 argues: eADR removes the Inter-thread Inconsistencies entirely,@.";
  Format.printf
    "while the unreleased persistent locks still hang the recovered program.@."

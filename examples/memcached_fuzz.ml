(* Fuzzing memcached-pmem through its text protocol (paper bugs 9-14).

     dune exec examples/memcached_fuzz.exe

   Shows the operation mutator driving the real command parser, the
   inconsistency findings, and how post-failure validation separates the
   index-rebuild-tolerated inconsistencies (false positives) from the
   surviving bugs. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Proto = Workloads.Memcached_proto

let () =
  let target = Workloads.Memcached.target in
  Format.printf "Fuzzing %s (%s) through the text protocol@.@." target.name target.version;

  (* A taste of the inputs: a generated seed rendered to protocol text. *)
  let seed = Pmrace.Seed.gen (Sched.Rng.create 7) target.profile in
  Format.printf "sample rendered commands:@.";
  List.iteri
    (fun i op -> if i < 5 then Format.printf "  %S@." (Pmrace.Seed.render_op op))
    (Pmrace.Seed.all_ops seed);

  let cfg = Fuzzer.Config.make ~max_campaigns:400 ~master_seed:9 () in
  let s = Fuzzer.run target cfg in
  Format.printf "@.%d campaigns in %.2fs@." s.campaigns_run s.wall_time;

  let fp, wl, bugs, _ = Report.verdict_summary s.report Runtime.Candidates.Inter in
  Format.printf "inter-thread inconsistencies: %d@."
    (Report.inconsistency_count s.report Runtime.Candidates.Inter);
  Format.printf "  fixed by the index/LRU rebuild (validated FPs): %d@." fp;
  Format.printf "  checksum-protected reads (whitelisted): %d@." wl;
  Format.printf "  surviving bugs: %d@.@." bugs;

  Format.printf "unique bug groups (by writing store):@.";
  List.iter
    (fun g ->
      if g.Report.bg_kind = `Inter then Format.printf "  %a@." Report.pp_bug_group g)
    (Report.bug_groups s.report);

  Format.printf "@.paper ground truth:@.";
  List.iter
    (fun ((kb : Pmrace.Target.known_bug), found) ->
      Format.printf "  [%s] bug %d: %s@." (if found then "FOUND" else "MISS") kb.kb_id
        kb.kb_description)
    (Fuzzer.found_known_bugs s target)

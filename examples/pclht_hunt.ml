(* Hunting the P-CLHT bugs (paper §2.3.2 and Table 2, bugs 1-5).

     dune exec examples/pclht_hunt.exe

   Runs a PM-aware fuzzing session against the P-CLHT port and then
   demonstrates bug 1's consequence end to end: a key inserted through the
   non-persisted table pointer is unreachable after crash recovery. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Seed = Pmrace.Seed

let () =
  let target = Workloads.Pclht.target in
  Format.printf "Fuzzing %s (%s)...@." target.name target.version;
  let cfg = Fuzzer.Config.make ~max_campaigns:300 ~master_seed:5 () in
  let s = Fuzzer.run target cfg in
  Format.printf "%d campaigns in %.2fs@.@." s.campaigns_run s.wall_time;
  List.iter
    (fun ((kb : Pmrace.Target.known_bug), found) ->
      Format.printf "  [%s] %a@." (if found then "FOUND" else "MISS") Pmrace.Target.pp_known_bug kb)
    (Fuzzer.found_known_bugs s target);

  (* Replay the Figure 2/3 interleaving deterministically: drive readers
     of the table pointer (417) into the window between the unflushed swap
     (785) and its flush (786). *)
  Format.printf "@.Replaying the buggy interleaving of Figure 2...@.";
  let profile = { target.profile with Seed.supported = [ Seed.KPut ] } in
  let seed = Pmrace.Mutator.populate (Sched.Rng.create 5) profile ~factor:3 in
  let entry =
    {
      Pmrace.Shared_queue.addr = Pmdk.Layout.root_base (* ht_off *);
      loads = [ Runtime.Instr.site "clht_lb_res.c:417" ];
      stores = [ Runtime.Instr.site "clht_lb_res.c:785" ];
      hits = 1;
    }
  in
  let rec hunt n =
    if n > 300 then None
    else
      let input =
        Pmrace.Campaign.input ~sched_seed:n
          ~policy:(Pmrace.Campaign.Pmrace { entry; skip = 0 })
          target seed
      in
      let r = Pmrace.Campaign.run input in
      let hit =
        List.find_opt
          (fun (i : Runtime.Checkers.inconsistency) ->
            Runtime.Instr.name i.source.Runtime.Candidates.write_instr = "clht_lb_res.c:785")
          (Runtime.Checkers.inconsistencies r.env.Runtime.Env.checkers)
      in
      match hit with Some inc -> Some (n, inc) | None -> hunt (n + 1)
  in
  match hunt 1 with
  | None -> Format.printf "no buggy interleaving found (unexpected)@."
  | Some (sched_seed, inc) ->
      Format.printf "scheduler seed %d: %a@." sched_seed Runtime.Checkers.pp_inconsistency inc;
      let image = Option.get inc.image in
      Format.printf "crash injected at the durable side effect (word %d)@." inc.eff_addr;
      (* Post-failure: recover and show that the insert is lost. *)
      let env = Runtime.Env.of_image image in
      target.annotate env;
      target.recover env;
      let ht = Pmem.Pool.image_word image Pmdk.Layout.root_base in
      Format.printf "recovered table pointer: %Ld (the OLD table)@." ht;
      Format.printf "the inserted item went to word %d — beyond the old table: data loss@."
        inc.eff_addr;
      (* The recovered index still answers lookups for old data. *)
      let reachable = ref 0 in
      for k = 0 to 31 do
        if Workloads.Pclht.lookup_after_recovery env k <> None then incr reachable
      done;
      Format.printf "keys still reachable after recovery: %d@." !reachable

(* Detector-cost bench (PR 6): what the second-generation detectors add
   to the offline analyzer's per-execution cost, and what they yield.

   For figure1 and p-clht we record one fixed set of seed executions
   (Analyze.record, so both analyzer configurations see byte-identical
   event streams), then time repeated absorb+result passes with

   - base: the v1 analyzer (site graph, alias pairs, four lint rules);
   - full: taxonomy detectors + likely-invariant mining + region
     classifier (Analyze.full_analysis).

   Reported per target: analyzer µs/execution for both sides, the
   overhead ratio, and — for the full side — per-class finding and
   mined-invariant counts with findings per CPU-second of analysis.
   Writes BENCH_detectors.json (gitignored; CI uploads it). *)

module Analyzer = Analysis.Analyzer
module Lint = Analysis.Lint
module Analyze = Pmrace.Analyze

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

type side = {
  s_label : string;
  s_us_per_exec : float;  (** analyzer cost per absorbed execution *)
  s_result : Analyzer.result;
  s_elapsed : float;  (** one pass over the trace set, seconds *)
}

(* One timed configuration: [reps] full passes over the recorded traces
   (fresh analyzer each pass, so per-pass state does not amortise), the
   reported cost is the per-execution mean. *)
let run_side ~label ~cfg ~reps (traces : Runtime.Env.event list list) =
  let execs = List.length traces in
  let result = ref None in
  let t0 = Obs.Clock.now () in
  for _ = 1 to reps do
    let az = Analyzer.create ~cfg () in
    List.iter (fun tr -> Analyzer.absorb az tr) traces;
    result := Some (Analyzer.result az)
  done;
  let wall = Obs.Clock.elapsed t0 in
  let per_pass = wall /. float_of_int reps in
  {
    s_label = label;
    s_us_per_exec = 1e6 *. per_pass /. float_of_int (max 1 execs);
    s_result = Option.get !result;
    s_elapsed = per_pass;
  }

let run ppf =
  Format.fprintf ppf
    "@.Detectors: analyzer cost and yield, first-generation vs full detector set.@.";
  hr ppf;
  let targets =
    [
      ("figure1", Workloads.Figure1.target, { Analyze.default_config with Analyze.seeds = 6 }, 200);
      ( "p-clht",
        Workloads.Pclht.target,
        { Analyze.default_config with Analyze.seeds = 3; Analyze.scheds_per_seed = 2 },
        20 );
    ]
  in
  let json_rows = ref [] in
  Format.fprintf ppf "%-10s %6s %16s %16s %9s@." "target" "execs" "base (us/exec)"
    "full (us/exec)" "overhead";
  hr ppf;
  List.iter
    (fun (name, target, rec_cfg, reps) ->
      let traces = Analyze.record ~cfg:rec_cfg target in
      let execs = List.length traces in
      let base = run_side ~label:"base" ~cfg:Analyzer.default_config ~reps traces in
      let full = run_side ~label:"full" ~cfg:Analyze.full_analysis ~reps traces in
      let overhead = full.s_us_per_exec /. Float.max 1e-9 base.s_us_per_exec in
      Format.fprintf ppf "%-10s %6d %16.1f %16.1f %8.2fx@." name execs base.s_us_per_exec
        full.s_us_per_exec overhead;
      (* Yield of the full side: per-class counts and findings per
         CPU-second of analysis (the number a triage budget buys). *)
      let fr = full.s_result in
      let classes =
        List.filter_map
          (fun kind ->
            let n =
              List.length
                (List.filter (fun (f : Lint.finding) -> f.Lint.f_kind = kind) fr.Analyzer.r_findings)
            in
            if n = 0 then None
            else Some (Lint.kind_slug kind, n, float_of_int n /. Float.max 1e-9 full.s_elapsed))
          Lint.all_kinds
      in
      List.iter
        (fun (slug, n, per_cpu_s) ->
          Format.fprintf ppf "    %-24s %4d findings  %10.0f /cpu-s@." slug n per_cpu_s)
        classes;
      let mined = List.length fr.Analyzer.r_invariants in
      Format.fprintf ppf "    %-24s %4d mined     %10.0f /cpu-s@." "invariants" mined
        (float_of_int mined /. Float.max 1e-9 full.s_elapsed);
      json_rows :=
        Obs.Json.Obj
          [
            ("target", Obs.Json.String name);
            ("executions", Obs.Json.Int execs);
            ("reps", Obs.Json.Int reps);
            ("base_us_per_exec", Obs.Json.Float base.s_us_per_exec);
            ("full_us_per_exec", Obs.Json.Float full.s_us_per_exec);
            ("overhead", Obs.Json.Float overhead);
            ("invariants_mined", Obs.Json.Int mined);
            ( "classes",
              Obs.Json.List
                (List.map
                   (fun (slug, n, per_cpu_s) ->
                     Obs.Json.Obj
                       [
                         ("class", Obs.Json.String slug);
                         ("findings", Obs.Json.Int n);
                         ("findings_per_cpu_sec", Obs.Json.Float per_cpu_s);
                       ])
                   classes) );
          ]
        :: !json_rows)
    targets;
  hr ppf;
  Format.fprintf ppf
    "(both sides absorb byte-identical recorded traces; full = taxonomy detectors@.";
  Format.fprintf ppf " + invariant mining + pool-region classifier.)@.";
  let json = Obs.Json.Obj [ ("targets", Obs.Json.List (List.rev !json_rows)) ] in
  let oc = open_out "BENCH_detectors.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_detectors.json)@."

(* Shared fuzzing sessions for the table/figure reproductions.

   Each tested system is fuzzed once per (mode, ablation) configuration
   and the session is memoised, so every table reads from the same run —
   as in the paper, where one fuzzing campaign per system produces all of
   Tables 2/3/5/6.  The session's JSON artifact is memoised alongside it,
   so figure code can consume the serialized form (what CI archives)
   instead of the live session. *)

module Fuzzer = Pmrace.Fuzzer

type key = { k_target : string; k_mode : Fuzzer.mode; k_ie : bool; k_se : bool; k_campaigns : int }

let cache : (key, Fuzzer.config * Fuzzer.session) Hashtbl.t = Hashtbl.create 16
let artifacts : (key, Pmrace.Artifact.t) Hashtbl.t = Hashtbl.create 16

(* Campaign budgets per system, sized so that every seeded bug is within
   reach of the PM-aware exploration (cf. §6.1: 13 worker processes and
   hours of fuzzing in the original; our simulator campaigns are ~ms). *)
let budget_of = function
  | "p-clht" -> 400
  | "clevel" -> 150
  | "cceh" -> 250
  | "fast-fair" -> 350
  | "memcached-pmem" -> 500
  | _ -> 150

let master_seed_of = function
  | "p-clht" -> 5
  | "cceh" -> 5
  | "fast-fair" -> 5
  | "memcached-pmem" -> 9
  | _ -> 5

let key_of ?(mode = Fuzzer.Mode_pmrace) ?(interleaving_tier = true) ?(seed_tier = true) ?campaigns
    (target : Pmrace.Target.t) =
  let campaigns = Option.value ~default:(budget_of target.name) campaigns in
  {
    k_target = target.name;
    k_mode = mode;
    k_ie = interleaving_tier;
    k_se = seed_tier;
    k_campaigns = campaigns;
  }

let run_key (target : Pmrace.Target.t) key =
  match Hashtbl.find_opt cache key with
  | Some cs -> cs
  | None ->
      let cfg =
        Fuzzer.Config.make ~max_campaigns:key.k_campaigns
          ~master_seed:(master_seed_of target.name) ~mode:key.k_mode
          ~interleaving_tier:key.k_ie ~seed_tier:key.k_se ~use_checkpoint:target.expensive_init ()
      in
      let s = Fuzzer.run target cfg in
      Hashtbl.add cache key (cfg, s);
      (cfg, s)

let run ?mode ?interleaving_tier ?seed_tier ?campaigns (target : Pmrace.Target.t) =
  snd (run_key target (key_of ?mode ?interleaving_tier ?seed_tier ?campaigns target))

let artifact ?mode ?interleaving_tier ?seed_tier ?campaigns (target : Pmrace.Target.t) =
  let key = key_of ?mode ?interleaving_tier ?seed_tier ?campaigns target in
  match Hashtbl.find_opt artifacts key with
  | Some a -> a
  | None ->
      let cfg, s = run_key target key in
      let a = Pmrace.Artifact.of_session ~target ~cfg s in
      Hashtbl.add artifacts key a;
      a

(* Bechamel microbenchmarks: one Test.make per table/figure, measuring the
   cost of the mechanism behind each experiment. *)

open Bechamel
open Toolkit

let pclht_snapshot = lazy (Pmrace.Campaign.prepare_snapshot Workloads.Pclht.target)
let pclht_seed =
  lazy (Pmrace.Seed.gen (Sched.Rng.create 77) Workloads.Pclht.target.profile)

(* Table 2: one full fuzz campaign on P-CLHT. *)
let t_table2 =
  Test.make ~name:"table2/fuzz-campaign(p-clht)"
    (Staged.stage (fun () ->
         let input =
           Pmrace.Campaign.input ~sched_seed:3 ~policy:Pmrace.Campaign.Random_sched
             ~snapshot:(Lazy.force pclht_snapshot) Workloads.Pclht.target
             (Lazy.force pclht_seed)
         in
         ignore (Pmrace.Campaign.run input)))

(* Table 3: one post-failure validation (recovery on a crash image). *)
let crash_image =
  lazy
    (let env = Runtime.Env.create ~pool_words:Workloads.Pclht.target.pool_words () in
     Workloads.Pclht.target.init env;
     Pmem.Pool.quiesce env.pool;
     Pmem.Pool.crash_image env.pool)

let t_table3 =
  Test.make ~name:"table3/post-failure-validation(p-clht)"
    (Staged.stage (fun () ->
         ignore (Pmrace.Post_failure.run_recovery Workloads.Pclht.target (Lazy.force crash_image))))

(* Table 4: operation-mutator seed generation vs AFL-style havoc. *)
let t_table4_op =
  let rng = Sched.Rng.create 99 in
  Test.make ~name:"table4/op-mutator-seed"
    (Staged.stage (fun () ->
         ignore (Pmrace.Seed.gen rng Workloads.Memcached.target.profile)))

let t_table4_afl =
  let rng = Sched.Rng.create 99 in
  Test.make ~name:"table4/afl-havoc-bytes"
    (Staged.stage (fun () -> ignore (Pmrace.Mutator.afl_havoc rng "set k3 0 0 3\r\nabc\r\n")))

(* Figure 8: a sync-point campaign vs a delay-injection campaign. *)
let t_fig8_pmrace =
  Test.make ~name:"fig8/pmrace-campaign(p-clht)"
    (Staged.stage (fun () ->
         let entry =
           { Pmrace.Shared_queue.addr = Pmdk.Layout.root_base; loads = []; stores = []; hits = 1 }
         in
         let input =
           Pmrace.Campaign.input ~sched_seed:3
             ~policy:(Pmrace.Campaign.Pmrace { entry; skip = 0 })
             ~snapshot:(Lazy.force pclht_snapshot) Workloads.Pclht.target
             (Lazy.force pclht_seed)
         in
         ignore (Pmrace.Campaign.run input)))

let t_fig8_delay =
  Test.make ~name:"fig8/delay-campaign(p-clht)"
    (Staged.stage (fun () ->
         let input =
           Pmrace.Campaign.input ~sched_seed:3
             ~policy:(Pmrace.Campaign.Delay { prob = 0.15; max_delay = 40 })
             ~snapshot:(Lazy.force pclht_snapshot) Workloads.Pclht.target
             (Lazy.force pclht_seed)
         in
         ignore (Pmrace.Campaign.run input)))

(* Figure 9: the coverage-metric update cost (alias bitmap insertion). *)
let t_fig9 =
  let cov = Pmrace.Alias_cov.create () in
  let i = ref 0 in
  Test.make ~name:"fig9/alias-coverage-observe"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Pmrace.Alias_cov.observe cov
              ~prev:{ Pmrace.Alias_cov.a_instr = !i land 1023; a_dirty = true; a_tid = 0 }
              ~cur:{ Pmrace.Alias_cov.a_instr = (!i * 7) land 1023; a_dirty = false; a_tid = 1 })))

(* Figure 10: expensive pool initialisation vs checkpoint restore. *)
let t_fig10_init =
  Test.make ~name:"fig10/pool-init(libpmemobj-style)"
    (Staged.stage (fun () ->
         let env = Runtime.Env.create ~pool_words:Workloads.Pclht.target.pool_words () in
         Workloads.Pclht.target.init env))

let t_fig10_restore =
  let env = Runtime.Env.create ~pool_words:Workloads.Pclht.target.pool_words () in
  Test.make ~name:"fig10/checkpoint-restore"
    (Staged.stage (fun () -> Pmem.Pool.restore env.pool (Lazy.force pclht_snapshot)))

(* The engine's O(touched) reset: rewind a snapshotted pool after a small
   campaign-sized dirtying — compare against the O(pool) restore above. *)
let t_fig10_engine_reset =
  let env = Runtime.Env.create ~pool_words:Workloads.Pclht.target.pool_words () in
  let snap = Lazy.force pclht_snapshot in
  Pmem.Pool.restore env.pool snap;
  Test.make ~name:"fig10/engine-reset(o-touched)"
    (Staged.stage (fun () ->
         for w = 0 to 15 do
           Pmem.Pool.store env.pool ~tid:0 ~instr:0 w 1L
         done;
         Pmem.Pool.reset_to_snapshot env.pool snap))

let tests =
  [
    t_table2;
    t_table3;
    t_table4_op;
    t_table4_afl;
    t_fig8_pmrace;
    t_fig8_delay;
    t_fig9;
    t_fig10_init;
    t_fig10_restore;
    t_fig10_engine_reset;
  ]

let run ppf =
  Format.fprintf ppf "@.Bechamel microbenchmarks (ns/run, OLS on monotonic clock):@.";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.2) ~stabilize:false () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] -> Format.fprintf ppf "  %-44s %14.0f@." name t
          | Some _ | None -> Format.fprintf ppf "  %-44s (no estimate)@." name)
        results)
    tests

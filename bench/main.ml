(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6), then runs the Bechamel microbenchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- table3  # one section
*)

let sections : (string * (Format.formatter -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("eadr", Ablations.eadr);
    ("checkers", Ablations.checkers);
    ("workers", Ablations.workers);
    ("workers-scaling", Ablations.workers_scaling);
    ("engine", Ablations.engine);
    ("hotpath", Hotpath.run);
    ("fleet", Fleet_bench.run);
    ("detectors", Detectors.run);
    ("crashimages", Crashimages.run);
    ("por", Por_bench.run);
    ("micro", Micro.run);
  ]

let () =
  let ppf = Format.std_formatter in
  let requested = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> [] in
  let to_run =
    if requested = [] then sections
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> Some (name, f)
          | None ->
              Format.eprintf "unknown section %S (available: %s)@." name
                (String.concat ", " (List.map fst sections));
              None)
        requested
  in
  Format.fprintf ppf "PMRace reproduction — evaluation harness@.";
  Format.fprintf ppf "(4 worker threads per campaign, deterministic scheduler; see EXPERIMENTS.md)@.";
  List.iter
    (fun (name, f) ->
      let t0 = Obs.Clock.now () in
      f ppf;
      Format.fprintf ppf "[%s took %.2fs]@." name (Obs.Clock.elapsed t0))
    to_run

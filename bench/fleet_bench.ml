(* Fleet-mode scaling: 1 vs 2 vs 4 worker *processes* against one
   coordinator, on figure1 and P-CLHT.

   Each cell forks a coordinator (durable store in a temp directory) and
   N `Fleet.Worker.run` children, waits for the budget to drain, and
   reads the resulting store for the fleet-wide unique-bug count.  The
   parent's Unix.times deltas (tms_cutime/tms_cstime accumulate reaped
   children) give total CPU seconds across the whole process tree, so
   the bugs-per-CPU-second column prices coordination overhead honestly:
   perfect scaling keeps execs per CPU-second flat while wall-clock
   execs/sec grows with N.  Writes BENCH_fleet.json (gitignored; CI
   uploads it). *)

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

type cell = {
  target : string;
  workers : int;
  budget : int;
  wall : float;
  cpu : float;
  bugs : int;
}

let temp_dir tag =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmrace_bench_%s_%d" tag (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists d then rm d;
  Unix.mkdir d 0o755;
  d

let fork_child f =
  match Unix.fork () with
  | 0 ->
      (try f () with _ -> Unix._exit 1);
      Unix._exit 0
  | pid -> pid

let cpu_now () =
  let t = Unix.times () in
  t.Unix.tms_utime +. t.Unix.tms_stime +. t.Unix.tms_cutime +. t.Unix.tms_cstime

let run_cell (target : Pmrace.Target.t) ~workers ~budget =
  let dir = temp_dir (Printf.sprintf "%s_%d" target.Pmrace.Target.name workers) in
  let socket_path = Filename.concat dir "hub.sock" in
  let store_dir = Filename.concat dir "store" in
  let cpu0 = cpu_now () in
  let t0 = Obs.Clock.now () in
  let coord =
    fork_child (fun () ->
        let cfg =
          {
            Fleet.Coordinator.default_config with
            socket_path;
            store_dir;
            target = target.Pmrace.Target.name;
            budget;
          }
        in
        match Fleet.Coordinator.serve cfg with Ok _ -> () | Error _ -> Unix._exit 1)
  in
  let deadline = Obs.Clock.now () +. 10. in
  while (not (Sys.file_exists socket_path)) && Obs.Clock.now () < deadline do
    Unix.sleepf 0.005
  done;
  let worker_pids =
    List.init workers (fun _ ->
        fork_child (fun () ->
            let wcfg =
              {
                Fleet.Worker.default_config with
                connect = socket_path;
                cfg =
                  Pmrace.Fuzzer.Config.make ~master_seed:5
                    ~use_checkpoint:target.Pmrace.Target.expensive_init ();
              }
            in
            match Fleet.Worker.run wcfg target with Ok _ -> () | Error _ -> Unix._exit 1))
  in
  List.iter (fun pid -> ignore (Unix.waitpid [] pid)) (coord :: worker_pids);
  let wall = Obs.Clock.elapsed t0 in
  let cpu = cpu_now () -. cpu0 in
  let bugs =
    match Fleet.Store.open_store ~dir:store_dir ~target:target.Pmrace.Target.name ~budget with
    | Ok store -> List.length (Fleet.Store.bugs store)
    | Error _ -> 0
  in
  { target = target.Pmrace.Target.name; workers; budget; wall; cpu; bugs }

let run ppf =
  Format.fprintf ppf
    "@.Fleet mode: coordinator + N worker processes, budget split by leases.@.";
  hr ppf;
  Format.fprintf ppf "%-10s %8s %8s %8s %8s %10s %10s %6s %12s@." "target" "workers" "budget"
    "wall(s)" "cpu(s)" "execs/s" "execs/cpus" "bugs" "bugs/cpus";
  hr ppf;
  let cells =
    List.concat_map
      (fun ((target : Pmrace.Target.t), budget) ->
        List.map (fun workers -> run_cell target ~workers ~budget) [ 1; 2; 4 ])
      [ (Workloads.Figure1.target, 240); (Workloads.Pclht.target, 120) ]
  in
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10s %8d %8d %8.2f %8.2f %10.0f %10.0f %6d %12.3f@." c.target
        c.workers c.budget c.wall c.cpu
        (float_of_int c.budget /. Float.max 1e-9 c.wall)
        (float_of_int c.budget /. Float.max 1e-9 c.cpu)
        c.bugs
        (float_of_int c.bugs /. Float.max 1e-9 c.cpu))
    cells;
  hr ppf;
  Format.fprintf ppf
    "(one coordinator process per cell; workers draw 30-campaign leases, ship@.";
  Format.fprintf ppf
    " deltas at lease boundaries; bug counts are fleet-wide (kind, site) uniques.)@.";
  let json =
    Obs.Json.Obj
      [
        ( "cells",
          Obs.Json.List
            (List.map
               (fun c ->
                 Obs.Json.Obj
                   [
                     ("target", Obs.Json.String c.target);
                     ("workers", Obs.Json.Int c.workers);
                     ("budget_campaigns", Obs.Json.Int c.budget);
                     ("wall_seconds", Obs.Json.Float c.wall);
                     ("cpu_seconds", Obs.Json.Float c.cpu);
                     ("execs_per_sec", Obs.Json.Float (float_of_int c.budget /. Float.max 1e-9 c.wall));
                     ( "execs_per_cpu_sec",
                       Obs.Json.Float (float_of_int c.budget /. Float.max 1e-9 c.cpu) );
                     ("unique_bugs", Obs.Json.Int c.bugs);
                     ( "bugs_per_cpu_sec",
                       Obs.Json.Float (float_of_int c.bugs /. Float.max 1e-9 c.cpu) );
                   ])
               cells) );
      ]
  in
  let oc = open_out "BENCH_fleet.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_fleet.json)@."

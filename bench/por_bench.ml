(* Partial-order reduction bench (PR 9, reworked in PR 10): what
   sleep-set pruning and trace dedup (--por) cut off the schedule space,
   and what it costs.

   figure1-planted and torn-planted each run the same seeded session
   with POR off and on at 2 and 8 fibers (more fibers = more commuting
   picks to prune), reporting schedules pruned per step, unique
   Mazurkiewicz classes per CPU-second, redundant campaigns whose
   validation was skipped, the unique-bug count — which must not move
   when POR turns on — and the headline cost figure:
   [por_overhead_ratio] = POR wall / baseline wall at the same target
   and fiber count (CI asserts <= 3x).  POR-off rows carry a JSON null
   for the trace-rate field instead of a misleading 0.  A final
   microbench row times the per-op digest ([Por.record_op] over a
   synthetic schedule) in nanoseconds.  Writes BENCH_por.json
   (gitignored; CI uploads it). *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module F = Runtime.Footprint

let hr ppf = Format.fprintf ppf "%s@." (String.make 88 '-')

(* Time the digest hot path alone: fold a synthetic 4-fiber schedule of
   mixed footprints (stores, loads, flushes, a fence every 64 ops)
   through [Por.record_op].  The op mix cycles through the pool so the
   flat tables see realistic occupancy, not one hot slot. *)
let digest_ns_per_step () =
  let pool_words = 4096 in
  let h = Pmrace.Por.create ~pool_words ~nthreads:4 () in
  let op i =
    let tid = i land 3 in
    let w = 17 * i land (pool_words - 1) in
    let fp =
      match i land 7 with
      | 0 | 1 | 2 -> F.store w
      | 3 | 4 -> F.load w
      | 5 -> F.rw w
      | 6 -> F.flush w
      | _ -> if i land 63 = 7 then F.fence else F.load w
    in
    Pmrace.Por.record_op h tid fp
  in
  let n = 2_000_000 in
  (* Warm-up pass: faults, branch predictors, table growth if any. *)
  for i = 0 to 99_999 do
    op i
  done;
  Pmrace.Por.reset h;
  let t0 = Obs.Clock.now () in
  for i = 0 to n - 1 do
    op i
  done;
  let elapsed = Obs.Clock.elapsed t0 in
  ignore (Pmrace.Por.trace_hash h);
  elapsed *. 1e9 /. float_of_int n

let run ppf =
  Format.fprintf ppf "@.Partial-order reduction: schedule redundancy cut vs cost (--por).@.";
  hr ppf;
  let targets =
    [
      ("figure1-planted", Workloads.Figure1.planted, 1);
      ("torn-planted", Workloads.Tornstore.target, 4);
    ]
  in
  let fiber_counts = [ 2; 8 ] in
  let campaigns = 120 in
  let json_rows = ref [] in
  Format.fprintf ppf "%-16s %-7s %4s %6s %9s %12s %10s %9s %12s %7s@." "target" "fibers" "por"
    "bugs" "wall (s)" "pruned/step" "uniq-trc" "dup-val" "uniq/cpu-s" "ratio";
  hr ppf;
  List.iter
    (fun (name, base, crash_images) ->
      List.iter
        (fun threads ->
          let target =
            { base with Pmrace.Target.profile = { base.Pmrace.Target.profile with threads } }
          in
          let session por =
            let cfg =
              Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:5 ~crash_images ~por ()
            in
            let t0 = Obs.Clock.now () in
            let s = Fuzzer.run target cfg in
            (s, Obs.Clock.elapsed t0)
          in
          let wall_off = ref 0. in
          List.iter
            (fun por ->
              let s, wall = session por in
              if not por then wall_off := wall;
              let bugs = List.length (Report.bug_groups s.report) in
              let pruned, forced, uniq, dup =
                match s.por with
                | Some (p : Pmrace.Hub.por_totals) ->
                    (p.pt_pruned, p.pt_forced_wakes, p.pt_unique_traces, p.pt_dup_traces)
                | None -> (0, 0, 0, 0)
              in
              let ratio = if por then Some (wall /. Float.max 1e-9 !wall_off) else None in
              let uniq_rate =
                if por then Some (float_of_int uniq /. Float.max 1e-9 wall) else None
              in
              Format.fprintf ppf "%-16s %-7d %4s %6d %9.2f %12d %10d %9d %12s %7s@." name
                threads
                (if por then "on" else "off")
                bugs wall pruned uniq dup
                (match uniq_rate with Some r -> Printf.sprintf "%.1f" r | None -> "-")
                (match ratio with Some r -> Printf.sprintf "%.2fx" r | None -> "-");
              json_rows :=
                Obs.Json.Obj
                  [
                    ("target", Obs.Json.String name);
                    ("fibers", Obs.Json.Int threads);
                    ("por", Obs.Json.Bool por);
                    ("campaigns", Obs.Json.Int s.campaigns_run);
                    ("bugs", Obs.Json.Int bugs);
                    ("wall_s", Obs.Json.Float wall);
                    ("schedules_pruned", Obs.Json.Int pruned);
                    ("forced_wakes", Obs.Json.Int forced);
                    ("unique_traces", Obs.Json.Int uniq);
                    ("dup_traces", Obs.Json.Int dup);
                    (* null, not 0, on POR-off rows: the baseline
                       scheduler classifies no traces, so a rate would be
                       a lie a dashboard can average over. *)
                    ( "unique_traces_per_cpu_sec",
                      match uniq_rate with Some r -> Obs.Json.Float r | None -> Obs.Json.Null );
                    ( "bugs_per_cpu_sec",
                      Obs.Json.Float (float_of_int bugs /. Float.max 1e-9 wall) );
                    ( "por_overhead_ratio",
                      match ratio with Some r -> Obs.Json.Float r | None -> Obs.Json.Null );
                  ]
                :: !json_rows)
            [ false; true ])
        fiber_counts)
    targets;
  hr ppf;
  let digest_ns = digest_ns_per_step () in
  Format.fprintf ppf "digest microbench: %.1f ns/op (Por.record_op, synthetic 4-fiber mix)@."
    digest_ns;
  json_rows :=
    Obs.Json.Obj
      [
        ("target", Obs.Json.String "digest-microbench");
        ("digest_ns_per_step", Obs.Json.Float digest_ns);
      ]
    :: !json_rows;
  Format.fprintf ppf
    "(POR off classifies no traces — those cells are null; with POR on the unique-bug@.";
  Format.fprintf ppf
    " count must match the unpruned row while dup-val campaigns skip validation.)@.";
  let json = Obs.Json.Obj [ ("rows", Obs.Json.List (List.rev !json_rows)) ] in
  let oc = open_out "BENCH_por.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_por.json)@."

(* Partial-order reduction bench (PR 9): what sleep-set pruning and
   trace dedup (--por) cut off the schedule space, and what it costs.

   figure1-planted runs the same seeded session with POR off and on at 2
   and 8 fibers (more fibers = more commuting picks to prune), reporting
   schedules pruned per step, unique Mazurkiewicz classes per
   CPU-second, redundant campaigns whose validation was skipped, and the
   unique-bug count — which must not move when POR turns on.  Writes
   BENCH_por.json (gitignored; CI uploads it). *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let hr ppf = Format.fprintf ppf "%s@." (String.make 76 '-')

let run ppf =
  Format.fprintf ppf "@.Partial-order reduction: schedule redundancy cut vs cost (--por).@.";
  hr ppf;
  let base = Workloads.Figure1.planted in
  let fiber_counts = [ 2; 8 ] in
  let campaigns = 120 in
  let json_rows = ref [] in
  Format.fprintf ppf "%-8s %4s %10s %6s %9s %12s %10s %9s %12s@." "fibers" "por" "campaigns"
    "bugs" "wall (s)" "pruned/step" "uniq-trc" "dup-val" "uniq/cpu-s";
  hr ppf;
  List.iter
    (fun threads ->
      let target =
        { base with Pmrace.Target.profile = { base.profile with Pmrace.Seed.threads } }
      in
      List.iter
        (fun por ->
          let cfg = Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:5 ~por () in
          let t0 = Obs.Clock.now () in
          let s = Fuzzer.run target cfg in
          let wall = Obs.Clock.elapsed t0 in
          let bugs = List.length (Report.bug_groups s.report) in
          let pruned, forced, uniq, dup =
            match s.por with
            | Some (p : Pmrace.Hub.por_totals) ->
                (p.pt_pruned, p.pt_forced_wakes, p.pt_unique_traces, p.pt_dup_traces)
            | None -> (0, 0, 0, 0)
          in
          let uniq_per_cpu_s = float_of_int uniq /. Float.max 1e-9 wall in
          Format.fprintf ppf "%-8d %4s %10d %6d %9.2f %12d %10d %9d %12.1f@." threads
            (if por then "on" else "off")
            s.campaigns_run bugs wall pruned uniq dup uniq_per_cpu_s;
          json_rows :=
            Obs.Json.Obj
              [
                ("target", Obs.Json.String "figure1-planted");
                ("fibers", Obs.Json.Int threads);
                ("por", Obs.Json.Bool por);
                ("campaigns", Obs.Json.Int s.campaigns_run);
                ("bugs", Obs.Json.Int bugs);
                ("wall_s", Obs.Json.Float wall);
                ("schedules_pruned", Obs.Json.Int pruned);
                ("forced_wakes", Obs.Json.Int forced);
                ("unique_traces", Obs.Json.Int uniq);
                ("dup_traces", Obs.Json.Int dup);
                ("unique_traces_per_cpu_sec", Obs.Json.Float uniq_per_cpu_s);
                ( "bugs_per_cpu_sec",
                  Obs.Json.Float (float_of_int bugs /. Float.max 1e-9 wall) );
              ]
            :: !json_rows)
        [ false; true ])
    fiber_counts;
  hr ppf;
  Format.fprintf ppf
    "(POR off records no pruning columns; with POR on the unique-bug count must match@.";
  Format.fprintf ppf
    " the unpruned row while dup-val campaigns skip post-failure validation.)@.";
  let json = Obs.Json.Obj [ ("rows", Obs.Json.List (List.rev !json_rows)) ] in
  let oc = open_out "BENCH_por.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_por.json)@."

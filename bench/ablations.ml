(* Ablations beyond the paper's main tables: the eADR discussion of §6.6,
   the §4.3 extensibility checkers, and the §5 worker-pool dispatch. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Candidates = Runtime.Candidates

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* §6.6: on an eADR platform the caches are persistent, so PM Inter-thread
   Inconsistency cannot occur — but unreleased persistent locks still
   survive crashes, so PM Synchronization Inconsistency (and its bugs)
   remain. *)

let eadr ppf =
  Format.fprintf ppf "@.Ablation (6.6): PMRace applicability under eADR.@.";
  hr ppf;
  Format.fprintf ppf "%-15s %-6s | %11s %11s | %10s %9s@." "Systems" "eADR" "Inter-Cand"
    "Inter-Inc" "Sync-Inc" "Sync-Bug";
  hr ppf;
  List.iter
    (fun (target : Pmrace.Target.t) ->
      List.iter
        (fun eadr ->
          let cfg =
            Fuzzer.Config.make ~max_campaigns:200 ~master_seed:5 ~eadr
              ~use_checkpoint:target.expensive_init ()
          in
          let s = Fuzzer.run target cfg in
          let _, _, sbugs, _ = Report.sync_verdict_summary s.report in
          Format.fprintf ppf "%-15s %-6s | %11d %11d | %10d %9d@." target.name
            (if eadr then "on" else "off")
            (Report.candidate_count s.report Candidates.Inter)
            (Report.inconsistency_count s.report Candidates.Inter)
            (List.length (Report.sync_findings s.report))
            sbugs)
        [ false; true ])
    [ Workloads.Pclht.target; Workloads.Cceh.target ];
  hr ppf;
  Format.fprintf ppf
    "(eADR removes every Inter-thread Inconsistency — no dirty reads exist — while@.";
  Format.fprintf ppf
    " the unreleased persistent locks still persist: PM Execution Context Bugs remain.)@."

(* ------------------------------------------------------------------ *)
(* §4.3 extensibility: the redundant-flush and missing-flush checkers run
   as plain listeners over one campaign per system. *)

let checkers ppf =
  Format.fprintf ppf "@.Ablation (4.3): additional PM checkers on PMRace's framework.@.";
  hr ppf;
  Format.fprintf ppf "%-15s %9s %10s   %s@." "Systems" "flushes" "redundant" "top unflushed-at-exit sites";
  hr ppf;
  List.iter
    (fun (target : Pmrace.Target.t) ->
      let aux = Pmrace.Aux_checkers.create () in
      let seed =
        Pmrace.Mutator.populate (Sched.Rng.create 5)
          { target.profile with Pmrace.Seed.supported = [ Pmrace.Seed.KPut ] }
          ~factor:3
      in
      let input = Pmrace.Campaign.input ~sched_seed:3 target seed in
      let r = Pmrace.Campaign.run ~listeners:[ Pmrace.Aux_checkers.attach aux ] input in
      let unflushed = Pmrace.Aux_checkers.unflushed_at_exit r.env in
      let top =
        List.filteri (fun i _ -> i < 3) unflushed
        |> List.map (fun (s, n) -> Printf.sprintf "%s (%d)" s n)
        |> String.concat ", "
      in
      Format.fprintf ppf "%-15s %9d %10d   %s@." target.name
        (Pmrace.Aux_checkers.flushes aux)
        (Pmrace.Aux_checkers.redundant_total aux)
        (if String.equal top "" then "-" else top))
    Workloads.Registry.all;
  hr ppf;
  Format.fprintf ppf
    "(memcached's never-flushed header fields — the missing flushes behind bugs 11-14 —@.";
  Format.fprintf ppf " show up directly in the unflushed-at-exit column.)@."

(* ------------------------------------------------------------------ *)
(* §5: worker-pool dispatch.  Workers run on OCaml 5 domains sharing the
   hub (coverage, priority queue, report); the findings are the union of
   their campaigns, deduplicated by bug identity. *)

let workers ppf =
  Format.fprintf ppf "@.Ablation (5): worker domains (shared hub).@.";
  hr ppf;
  Format.fprintf ppf "%-8s %10s %12s %12s %14s@." "workers" "campaigns" "inter-cand" "inter-inc"
    "bugs found";
  hr ppf;
  let target = Workloads.Pclht.target in
  List.iter
    (fun w ->
      let cfg = Fuzzer.Config.make ~max_campaigns:300 ~master_seed:5 ~workers:w () in
      let s = Fuzzer.run target cfg in
      let found =
        List.length (List.filter snd (Fuzzer.found_known_bugs s target))
      in
      Format.fprintf ppf "%-8d %10d %12d %12d %11d/%d@." w s.campaigns_run
        (Report.candidate_count s.report Candidates.Inter)
        (Report.inconsistency_count s.report Candidates.Inter)
        found
        (List.length target.known_bugs))
    [ 1; 2; 4; 8 ];
  hr ppf

(* ------------------------------------------------------------------ *)
(* Worker scaling: executions per second at 1/2/4 domains on the same
   campaign budget.  Also records BENCH_workers.json for CI tracking.
   Scaling tracks the machine: with D hardware cores, expect ~min(w, D)×
   throughput (a single-core container shows ~1× everywhere, with a
   domain-coordination penalty above 1 worker). *)

let workers_scaling ppf =
  Format.fprintf ppf "@.Worker scaling (§5): executions/sec by domain count.@.";
  hr ppf;
  Format.fprintf ppf "%-8s %10s %10s %12s %10s@." "workers" "campaigns" "wall (s)" "execs/sec"
    "speedup";
  hr ppf;
  let target = Workloads.Pclht.target in
  let budget = 300 in
  let measure w =
    let cfg =
      Fuzzer.Config.make ~max_campaigns:budget ~master_seed:5 ~workers:w
        ~use_checkpoint:target.expensive_init ()
    in
    let t0 = Obs.Clock.now () in
    let s = Fuzzer.run target cfg in
    let wall = Obs.Clock.elapsed t0 in
    (s.campaigns_run, wall, float_of_int s.campaigns_run /. Float.max 1e-9 wall)
  in
  let results = List.map (fun w -> (w, measure w)) [ 1; 2; 4 ] in
  let base_eps = match results with (_, (_, _, eps)) :: _ -> eps | [] -> 1. in
  List.iter
    (fun (w, (campaigns, wall, eps)) ->
      Format.fprintf ppf "%-8d %10d %10.2f %12.1f %9.2fx@." w campaigns wall eps (eps /. base_eps))
    results;
  hr ppf;
  Format.fprintf ppf "(%d hardware cores available to this run)@."
    (Domain.recommended_domain_count ());
  let json =
    Obs.Json.Obj
      [
        ("target", Obs.Json.String target.name);
        ("budget", Obs.Json.Int budget);
        ("cores", Obs.Json.Int (Domain.recommended_domain_count ()));
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (w, (campaigns, wall, eps)) ->
                 Obs.Json.Obj
                   [
                     ("workers", Obs.Json.Int w);
                     ("campaigns", Obs.Json.Int campaigns);
                     ("wall_s", Obs.Json.Float wall);
                     ("execs_per_sec", Obs.Json.Float eps);
                   ])
               results) );
      ]
  in
  let oc = open_out "BENCH_workers.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_workers.json)@."

(* ------------------------------------------------------------------ *)
(* Execution engine: legacy fresh-environment campaign setup (re-running
   the target's initialisation every campaign) vs the persistent-mode
   engine (one context per worker, O(touched) pool reset between
   campaigns).  Same seeds, same scheduler streams — only the setup path
   differs, so the delta is pure per-campaign setup cost.  Also records
   BENCH_engine.json for CI tracking. *)

let engine ppf =
  Format.fprintf ppf
    "@.Execution engine: legacy fresh-env vs persistent-mode campaign contexts.@.";
  hr ppf;
  Format.fprintf ppf "%-15s %10s %14s %14s %10s %10s@." "target" "campaigns" "legacy (ex/s)"
    "engine (ex/s)" "speedup" "touched";
  hr ppf;
  let module Campaign = Pmrace.Campaign in
  let module Engine = Pmrace.Engine in
  let module Seed = Pmrace.Seed in
  let bench (target : Pmrace.Target.t) campaigns =
    let inputs =
      let rng = Sched.Rng.create 42 in
      List.init campaigns (fun _ ->
          let seed = Seed.gen rng target.profile in
          let sched_seed = Sched.Rng.int rng 1_000_000_000 in
          Campaign.input ~sched_seed ~policy:Campaign.Random_sched target seed)
    in
    let time f =
      let t0 = Obs.Clock.now () in
      List.iter f inputs;
      Obs.Clock.elapsed t0
    in
    (* Legacy: a fresh environment and a full target initialisation per
       campaign — what every campaign paid before in-memory checkpoints. *)
    let legacy_wall = time (fun i -> ignore (Campaign.run i)) in
    (* Engine: one persistent context, reset between campaigns. *)
    let eng = Engine.create ~use_checkpoint:true target in
    let engine_wall = time (fun i -> ignore (Campaign.run ~engine:eng i)) in
    let eps wall = float_of_int campaigns /. Float.max 1e-9 wall in
    (eps legacy_wall, eps engine_wall, Engine.last_reset_touched eng)
  in
  let rows =
    List.map
      (fun ((target : Pmrace.Target.t), campaigns) ->
        let legacy, engined, touched = bench target campaigns in
        Format.fprintf ppf "%-15s %10d %14.1f %14.1f %9.2fx %10d%s@." target.name campaigns
          legacy engined (engined /. legacy) touched
          (if target.expensive_init then "" else "  (cheap init)");
        (target, campaigns, legacy, engined, touched))
      [ (Workloads.Figure1.target, 120); (Workloads.Memcached.target, 60);
        (Workloads.Pclht.target, 60) ]
  in
  hr ppf;
  Format.fprintf ppf
    "(speedup = pure setup-path delta; expect >=2x only where initialisation dominates)@.";
  let json =
    Obs.Json.Obj
      [
        ( "runs",
          Obs.Json.List
            (List.map
               (fun ((target : Pmrace.Target.t), campaigns, legacy, engined, touched) ->
                 Obs.Json.Obj
                   [
                     ("target", Obs.Json.String target.name);
                     ("expensive_init", Obs.Json.Bool target.expensive_init);
                     ("campaigns", Obs.Json.Int campaigns);
                     ("legacy_execs_per_sec", Obs.Json.Float legacy);
                     ("engine_execs_per_sec", Obs.Json.Float engined);
                     ("speedup", Obs.Json.Float (engined /. legacy));
                     ("last_reset_touched_words", Obs.Json.Int touched);
                     ("pool_words", Obs.Json.Int target.pool_words);
                   ])
               rows) );
      ]
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_engine.json)@."

(* Reproductions of the paper's figures (evaluation §6.4, §6.5). *)

module Fuzzer = Pmrace.Fuzzer

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* Figure 8: the time to identify PM Inter-thread Inconsistencies —
   PMRace's PM-aware scheduling vs random delay injection.  Each printed
   point is an execution in which at least one new unique inter-thread
   inconsistency was detected, with its wall-clock offset.

   The series is read from the session's JSON artifact (the same encoding
   [pmrace fuzz --json-out] writes and CI archives), demonstrating that
   the artifact carries everything the figure needs. *)

let fig8_targets = [ Workloads.Pclht.target; Workloads.Fastfair.target; Workloads.Memcached.target ]

let fig8 ppf =
  Format.fprintf ppf
    "@.Figure 8: time to identify PM Inter-thread Inconsistency (PMRace vs Delay-Inj).@.";
  List.iter
    (fun (target : Pmrace.Target.t) ->
      hr ppf;
      Format.fprintf ppf "%s@." target.name;
      List.iter
        (fun (label, mode) ->
          let a = Sessions.artifact ~mode target in
          let hits =
            List.filter
              (fun (p : Fuzzer.timeline_point) -> p.tp_new_inter)
              a.Pmrace.Artifact.a_timeline
          in
          let first =
            match hits with
            | p :: _ -> Printf.sprintf "first at campaign %d (%.3fs)" p.tp_campaign p.tp_time
            | [] -> "none found"
          in
          Format.fprintf ppf "  %-9s: %2d inconsistency-revealing executions; %s; total %d found@."
            label (List.length hits) first
            (match List.rev hits with p :: _ -> p.tp_inter_unique | [] -> 0);
          Format.fprintf ppf "    points (campaign@@seconds):";
          List.iteri
            (fun i (p : Fuzzer.timeline_point) ->
              if i < 12 then Format.fprintf ppf " %d@@%.3f" p.tp_campaign p.tp_time)
            hits;
          if List.length hits > 12 then Format.fprintf ppf " ...";
          Format.fprintf ppf "@.")
        [ ("PMRace", Fuzzer.Mode_pmrace); ("Delay-Inj", Fuzzer.Mode_delay) ])
    fig8_targets;
  hr ppf

(* ------------------------------------------------------------------ *)
(* Figure 9: runtime-coverage of PMRace on P-CLHT, with the
   interleaving-tier (IE) and seed-tier (SE) ablations. *)

let fig9 ppf =
  Format.fprintf ppf "@.Figure 9: runtime-coverage of PMRace with P-CLHT (ablations).@.";
  hr ppf;
  let series =
    [
      ("PMRace", true, true);
      ("w/o IE", false, true);
      ("w/o SE", true, false);
    ]
  in
  let sessions =
    List.map
      (fun (label, ie, se) ->
        (label, Sessions.run ~interleaving_tier:ie ~seed_tier:se Workloads.Pclht.target))
      series
  in
  Format.fprintf ppf "%-10s" "campaign";
  List.iter (fun (l, _) -> Format.fprintf ppf " %16s" l) sessions;
  Format.fprintf ppf
    "   (coverage bits / unique inter-thread inconsistencies;@.%s both are fuzzing feedback, cf. step 5 of Fig. 4)@."
    (String.make 10 ' ');
  let sample = [ 1; 5; 10; 20; 40; 80; 120; 200; 300; 400 ] in
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10d" c;
      List.iter
        (fun (_, (s : Fuzzer.session)) ->
          let cov, inc =
            List.fold_left
              (fun (cov, inc) (p : Fuzzer.timeline_point) ->
                if p.tp_campaign <= c then
                  (max cov (p.tp_alias_bits + p.tp_branch_bits), max inc p.tp_inter_unique)
                else (cov, inc))
              (0, 0) s.timeline
          in
          Format.fprintf ppf " %11d / %2d" cov inc)
        sessions;
      Format.fprintf ppf "@.")
    sample;
  hr ppf

(* ------------------------------------------------------------------ *)
(* Figure 10: the impact of in-memory checkpoints on fuzzing speed.
   For each system we measure campaign throughput with and without
   checkpoint reuse of the initialised pool. *)

let throughput (target : Pmrace.Target.t) ~use_checkpoint ~campaigns =
  let cfg =
    Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:21 ~use_checkpoint ~validate:false
      ~mode:Fuzzer.Mode_random ()
  in
  let t0 = Obs.Clock.now () in
  let s = Fuzzer.run target cfg in
  let dt = Float.max 1e-9 (Obs.Clock.elapsed t0) in
  float_of_int s.campaigns_run /. dt

let fig10 ppf =
  Format.fprintf ppf "@.Figure 10: the impact of in-memory checkpoints (CP) on fuzzing speed.@.";
  hr ppf;
  Format.fprintf ppf "%-15s %14s %14s %10s@." "Systems" "no-CP (exec/s)" "CP (exec/s)" "speedup";
  hr ppf;
  List.iter
    (fun (target : Pmrace.Target.t) ->
      let campaigns = 60 in
      let no_cp = throughput target ~use_checkpoint:false ~campaigns in
      let cp = throughput target ~use_checkpoint:true ~campaigns in
      Format.fprintf ppf "%-15s %14.0f %14.0f %9.2fx%s@." target.name no_cp cp (cp /. no_cp)
        (if target.expensive_init then "" else "  (libpmem mapping: no benefit expected)"))
    Workloads.Registry.all;
  hr ppf;
  Format.fprintf ppf
    "(CP rows run on the persistent-mode engine: one context per worker,@.";
  Format.fprintf ppf
    " O(touched)-word pool resets between campaigns — see the `engine' bench section)@."

(* Hot-path microbenches (PR 5): before/after numbers for the three
   accidentally-quadratic inner loops the simulation core used to run on
   every instrumented operation —

   - scheduler steps/sec: the maintained runnable-index loop
     ([Scheduler.run]) against the legacy rebuild-and-filter loop kept as
     [Scheduler.run_reference], at 2/8/32 fibers;
   - sfence cost: the O(pending) indexed fence ([Pool.sfence]) against the
     legacy O(pool) full scan kept as [Pool.sfence_scan], on 1k/8k/64k-word
     pools with a sparse (16-word) pending set;
   - line ops: the allocation-free [Cacheline.fold_line] walk against the
     legacy [words_of_line_containing] list materialisation, plus the
     absolute store×8+clwb+sfence pipeline throughput.

   Both sides of each pair run the identical workload — the legacy
   implementations are executable specifications living next to the
   optimised code, not emulations — so the speedup column is pure hot-path
   delta.  Writes BENCH_hotpath.json (gitignored; CI uploads it). *)

module Pool = Pmem.Pool
module Cacheline = Pmem.Cacheline
module Rng = Sched.Rng
module Scheduler = Sched.Scheduler

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

(* ------------------------------------------------------------------ *)
(* Scheduler: steps/sec on yield-spinning fibers that exhaust a fixed
   budget, so both loops take exactly [budget] scheduling decisions. *)

let sched_steps_per_sec ~fibers runner =
  let budget = 60_000 in
  let s = Scheduler.create ~step_budget:budget ~rng:(Rng.create 11) () in
  for _ = 1 to fibers do
    ignore
      (Scheduler.spawn s ~name:"spin" (fun () ->
           while true do
             Scheduler.yield ()
           done))
  done;
  let t0 = Obs.Clock.now () in
  let o = runner s in
  let wall = Obs.Clock.elapsed t0 in
  float_of_int o.Scheduler.steps /. Float.max 1e-9 wall

let sched_rows () =
  List.map
    (fun fibers ->
      let legacy = sched_steps_per_sec ~fibers (fun s -> Scheduler.run_reference s) in
      let fast = sched_steps_per_sec ~fibers (fun s -> Scheduler.run s) in
      (fibers, legacy, fast))
    [ 2; 8; 32 ]

(* ------------------------------------------------------------------ *)
(* SFENCE: [rounds] iterations of (dirty + flush a sparse word set; fence)
   so every fence drains the same 16-word pending set — the legacy side
   still scans the whole pool per fence. *)

let sfence_fences_per_sec ~words fence =
  let p = Pool.create ~words () in
  let pending = 16 in
  let rounds = 3_000 in
  let stride = words / pending in
  let t0 = Obs.Clock.now () in
  for _ = 1 to rounds do
    for k = 0 to pending - 1 do
      let w = k * stride in
      Pool.store p ~tid:0 ~instr:0 w 1L;
      Pool.clwb p w
    done;
    ignore (fence p)
  done;
  let wall = Obs.Clock.elapsed t0 in
  (pending, rounds, float_of_int rounds /. Float.max 1e-9 wall)

let sfence_rows () =
  List.map
    (fun words ->
      let _, _, legacy = sfence_fences_per_sec ~words Pool.sfence_scan in
      let pending, rounds, fast = sfence_fences_per_sec ~words Pool.sfence in
      (words, pending, rounds, legacy, fast))
    [ 1_024; 8_192; 65_536 ]

(* ------------------------------------------------------------------ *)
(* Line ops: count the dirty words of a line (the per-CLWB bookkeeping of
   Runtime.Mem.clwb) via the legacy list vs the allocation-free fold, then
   the absolute flush pipeline throughput for context. *)

let line_fold_ops_per_sec ~legacy =
  let p = Pool.create ~words:65_536 () in
  for w = 0 to 4_095 do
    if w land 1 = 0 then Pool.store p ~tid:0 ~instr:0 w 1L
  done;
  let iters = 300_000 in
  let acc = ref 0 in
  let t0 = Obs.Clock.now () in
  for i = 0 to iters - 1 do
    let a = (i * 61) land 4_095 in
    if legacy then
      acc :=
        !acc
        + List.fold_left
            (fun n w -> if Pool.is_dirty p w then n + 1 else n)
            0
            (Cacheline.words_of_line_containing a)
    else acc := !acc + Cacheline.fold_line (fun n w -> if Pool.is_dirty p w then n + 1 else n) 0 a
  done;
  let wall = Obs.Clock.elapsed t0 in
  ignore (Sys.opaque_identity !acc);
  float_of_int iters /. Float.max 1e-9 wall

let clwb_pipeline_ops_per_sec () =
  let p = Pool.create ~words:65_536 () in
  let iters = 50_000 in
  let t0 = Obs.Clock.now () in
  for i = 0 to iters - 1 do
    let base = (i * Cacheline.words_per_line) land 65_535 in
    for k = 0 to Cacheline.words_per_line - 1 do
      Pool.store p ~tid:0 ~instr:0 (base + k) (Int64.of_int i)
    done;
    Pool.clwb p base;
    ignore (Pool.sfence p)
  done;
  let wall = Obs.Clock.elapsed t0 in
  float_of_int iters /. Float.max 1e-9 wall

(* ------------------------------------------------------------------ *)

let speedup fast legacy = fast /. Float.max 1e-9 legacy

let run ppf =
  Format.fprintf ppf
    "@.Hot path: per-step / per-op cost of the simulation core, before vs after.@.";
  hr ppf;
  Format.fprintf ppf "%-34s %14s %14s %9s@." "microbench" "legacy (/s)" "new (/s)" "speedup";
  hr ppf;
  let sched = sched_rows () in
  List.iter
    (fun (fibers, legacy, fast) ->
      Format.fprintf ppf "%-34s %14.0f %14.0f %8.2fx@."
        (Printf.sprintf "sched steps (%d fibers)" fibers)
        legacy fast (speedup fast legacy))
    sched;
  let sfence = sfence_rows () in
  List.iter
    (fun (words, pending, _, legacy, fast) ->
      Format.fprintf ppf "%-34s %14.0f %14.0f %8.2fx@."
        (Printf.sprintf "sfence (%dk words, %d pending)" (words / 1024) pending)
        legacy fast (speedup fast legacy))
    sfence;
  let fold_legacy = line_fold_ops_per_sec ~legacy:true in
  let fold_fast = line_fold_ops_per_sec ~legacy:false in
  Format.fprintf ppf "%-34s %14.0f %14.0f %8.2fx@." "clwb line walk (dirty count)" fold_legacy
    fold_fast (speedup fold_fast fold_legacy);
  let pipeline = clwb_pipeline_ops_per_sec () in
  Format.fprintf ppf "%-34s %14s %14.0f %9s@." "store*8+clwb+sfence pipeline" "-" pipeline "-";
  hr ppf;
  Format.fprintf ppf
    "(legacy = run_reference / sfence_scan / words-of-line list: the quadratic@.";
  Format.fprintf ppf
    " loops kept as executable specifications; same workloads, same RNG streams.)@.";
  let json =
    Obs.Json.Obj
      [
        ( "sched",
          Obs.Json.List
            (List.map
               (fun (fibers, legacy, fast) ->
                 Obs.Json.Obj
                   [
                     ("fibers", Obs.Json.Int fibers);
                     ("budget_steps", Obs.Json.Int 60_000);
                     ("legacy_steps_per_sec", Obs.Json.Float legacy);
                     ("steps_per_sec", Obs.Json.Float fast);
                     ("speedup", Obs.Json.Float (speedup fast legacy));
                   ])
               sched) );
        ( "sfence",
          Obs.Json.List
            (List.map
               (fun (words, pending, rounds, legacy, fast) ->
                 Obs.Json.Obj
                   [
                     ("pool_words", Obs.Json.Int words);
                     ("pending_words", Obs.Json.Int pending);
                     ("rounds", Obs.Json.Int rounds);
                     ("legacy_fences_per_sec", Obs.Json.Float legacy);
                     ("fences_per_sec", Obs.Json.Float fast);
                     ("speedup", Obs.Json.Float (speedup fast legacy));
                   ])
               sfence) );
        ( "clwb",
          Obs.Json.List
            [
              Obs.Json.Obj
                [
                  ("what", Obs.Json.String "line-walk dirty count (per-CLWB bookkeeping)");
                  ("legacy_ops_per_sec", Obs.Json.Float fold_legacy);
                  ("ops_per_sec", Obs.Json.Float fold_fast);
                  ("speedup", Obs.Json.Float (speedup fold_fast fold_legacy));
                ];
              Obs.Json.Obj
                [
                  ("what", Obs.Json.String "store*8+clwb+sfence pipeline (absolute)");
                  ("ops_per_sec", Obs.Json.Float pipeline);
                ];
            ] );
      ]
  in
  let oc = open_out "BENCH_hotpath.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_hotpath.json)@."

(* Crash-image budget bench (PR 8): what systematic crash-image
   enumeration (Pmem.Crash_images) costs and what it buys.

   For each target we run the same seeded fuzzing session at post-failure
   image budgets 1 / 4 / 16 (--crash-images; 1 is the historical
   single-image validation) and report unique validated bug groups, wall
   time, and bugs per CPU-second.  figure1-planted and p-clht measure the
   overhead on targets whose bugs are already visible on the base image;
   torn-planted carries a seeded torn store that only an enumerated image
   can expose, so its bug count moves from 0 to >0 as the budget grows.
   Writes BENCH_crashimages.json (gitignored; CI uploads it). *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let hr ppf = Format.fprintf ppf "%s@." (String.make 72 '-')
let budgets = [ 1; 4; 16 ]

let run ppf =
  Format.fprintf ppf "@.Crash images: validation cost/yield vs the image budget (--crash-images).@.";
  hr ppf;
  let targets =
    [
      ("figure1-planted", Workloads.Figure1.planted, 120);
      ("p-clht", Workloads.Pclht.target, 40);
      ("torn-planted", Workloads.Tornstore.target, 60);
    ]
  in
  let json_rows = ref [] in
  Format.fprintf ppf "%-16s %7s %10s %6s %9s %13s@." "target" "budget" "campaigns" "bugs"
    "wall (s)" "bugs/cpu-s";
  hr ppf;
  List.iter
    (fun (name, (target : Pmrace.Target.t), campaigns) ->
      List.iter
        (fun budget ->
          let cfg =
            Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:5 ~crash_images:budget
              ~use_checkpoint:target.expensive_init ()
          in
          let t0 = Obs.Clock.now () in
          let s = Fuzzer.run target cfg in
          let wall = Obs.Clock.elapsed t0 in
          let bugs = List.length (Report.bug_groups s.report) in
          let per_cpu_s = float_of_int bugs /. Float.max 1e-9 wall in
          Format.fprintf ppf "%-16s %7d %10d %6d %9.2f %13.1f@." name budget s.campaigns_run
            bugs wall per_cpu_s;
          json_rows :=
            Obs.Json.Obj
              [
                ("target", Obs.Json.String name);
                ("budget", Obs.Json.Int budget);
                ("campaigns", Obs.Json.Int s.campaigns_run);
                ("bugs", Obs.Json.Int bugs);
                ("wall_s", Obs.Json.Float wall);
                ("bugs_per_cpu_sec", Obs.Json.Float per_cpu_s);
              ]
            :: !json_rows)
        budgets)
    targets;
  hr ppf;
  Format.fprintf ppf
    "(budget 1 = the base crash image only, bit-identical to single-image validation;@.";
  Format.fprintf ppf
    " torn-planted's seeded bug 105 is reachable only via an enumerated image.)@.";
  let json = Obs.Json.Obj [ ("rows", Obs.Json.List (List.rev !json_rows)) ] in
  let oc = open_out "BENCH_crashimages.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Format.fprintf ppf "(wrote BENCH_crashimages.json)@."

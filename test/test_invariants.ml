(* Cross-cutting invariants tying the pipeline together: relations between
   candidates, inconsistencies, verdicts and crash images that must hold
   for ANY target and ANY session. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates
module Instr = Runtime.Instr

let session target campaigns =
  Fuzzer.run target
    (Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:5
       ~use_checkpoint:target.Pmrace.Target.expensive_init ())

let sessions =
  lazy
    (List.map
       (fun (t : Pmrace.Target.t) -> (t, session t 150))
       [ Workloads.Figure1.target; Workloads.Pclht.target; Workloads.Memcached.target ])

(* Every confirmed inconsistency's (write, read) pair must also be a
   recorded candidate pair: inconsistencies are candidates with durable
   side effects, never more. *)
let test_inconsistencies_subset_of_candidates () =
  List.iter
    (fun ((t : Pmrace.Target.t), (s : Fuzzer.session)) ->
      let cands = Report.candidate_pairs s.report in
      List.iter
        (fun (f : Report.finding) ->
          let w = Instr.name f.inc.Checkers.source.Candidates.write_instr in
          let r = Instr.name f.inc.Checkers.source.Candidates.read_instr in
          let k = f.inc.Checkers.source.Candidates.kind in
          if not (List.exists (fun (w', r', k') -> w = w' && r = r' && k = k') cands) then
            Alcotest.failf "%s: inconsistency (%s -> %s) without a candidate pair" t.name w r)
        (Report.findings s.report))
    (Lazy.force sessions)

(* The coarse (pair-level) inconsistency count can never exceed the
   candidate count — the structural property behind Table 3. *)
let test_coarse_bounded_by_candidates () =
  List.iter
    (fun ((t : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun kind ->
          let cs = Report.coarse_summary s.report kind in
          let cands = Report.candidate_count s.report kind in
          if cs.Report.total > cands then
            Alcotest.failf "%s: coarse inconsistencies (%d) > candidates (%d)" t.name
              cs.Report.total cands)
        [ Candidates.Inter; Candidates.Intra ])
    (Lazy.force sessions)

(* Coarse totals partition into the verdict classes. *)
let test_coarse_partition () =
  List.iter
    (fun ((_ : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun kind ->
          let cs = Report.coarse_summary s.report kind in
          Alcotest.(check int) "partition" cs.Report.total
            (cs.Report.validated_fp + cs.Report.whitelisted_fp + cs.Report.bugs
           + cs.Report.pending))
        [ Candidates.Inter; Candidates.Intra ])
    (Lazy.force sessions)

(* Every validated finding carries a crash image: the verdict is defined by
   recovery on that image. *)
let test_validated_findings_have_images () =
  List.iter
    (fun ((t : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun (f : Report.finding) ->
          match (f.verdict, f.inc.Checkers.image) with
          | Some Pmrace.Post_failure.Validated_fp, None ->
              Alcotest.failf "%s: validated-FP verdict without an image" t.name
          | _ -> ())
        (Report.findings s.report))
    (Lazy.force sessions)

(* In a crash image captured at confirmation, the durable side-effect word
   must be durable while the source word is stale: the image shows exactly
   the inconsistency. *)
let test_images_show_the_window () =
  List.iter
    (fun ((_ : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun (f : Report.finding) ->
          match f.inc.Checkers.image with
          | Some _ when not f.inc.Checkers.external_effect ->
              Alcotest.(check bool) "effect word recorded" true
                (f.inc.Checkers.eff_words <> [])
          | _ -> ())
        (Report.findings s.report))
    (Lazy.force sessions)

(* Timelines carry exactly one point per campaign, in order. *)
let test_timeline_dense () =
  List.iter
    (fun ((_ : Pmrace.Target.t), (s : Fuzzer.session)) ->
      let expected = List.init s.campaigns_run (fun i -> i + 1) in
      Alcotest.(check (list int)) "dense campaigns" expected
        (List.map (fun (p : Fuzzer.timeline_point) -> p.tp_campaign) s.timeline))
    (Lazy.force sessions)

(* Sync findings: the captured value always differs from the annotated
   initial value (otherwise it would not be an inconsistency). *)
let test_sync_values_non_initial () =
  List.iter
    (fun ((_ : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun (f : Report.sync_finding) ->
          Alcotest.(check bool) "non-initial value" false
            (Int64.equal f.ev.Checkers.sy_value f.ev.Checkers.var.Checkers.sv_init))
        (Report.sync_findings s.report))
    (Lazy.force sessions)

(* Whitelisted verdicts only occur when the whitelist actually covers the
   finding. *)
let test_whitelist_verdicts_consistent () =
  List.iter
    (fun ((t : Pmrace.Target.t), (s : Fuzzer.session)) ->
      List.iter
        (fun (f : Report.finding) ->
          match f.verdict with
          | Some Pmrace.Post_failure.Whitelisted_fp ->
              Alcotest.(check bool)
                (Printf.sprintf "%s whitelist covers the finding" t.name)
                true
                (Pmrace.Whitelist.covers s.whitelist f.inc)
          | _ -> ())
        (Report.findings s.report))
    (Lazy.force sessions)

(* Candidate uniqueness: candidate_pairs has no duplicates. *)
let test_candidate_pairs_unique () =
  List.iter
    (fun ((_ : Pmrace.Target.t), (s : Fuzzer.session)) ->
      let ps = Report.candidate_pairs s.report in
      Alcotest.(check int) "unique pairs" (List.length ps)
        (List.length (List.sort_uniq compare ps)))
    (Lazy.force sessions)

(* Replays: the provenance recorded for a finding's campaign reproduces an
   execution containing the same (write, read) inconsistency pair. *)
let test_provenance_replays () =
  let target = Workloads.Figure1.target in
  let s = session target 40 in
  match
    List.find_opt (fun (f : Report.finding) -> f.verdict <> None) (Report.findings s.report)
  with
  | None -> Alcotest.fail "expected findings"
  | Some f -> (
      match Hashtbl.find_opt s.provenance f.found_at with
      | None -> Alcotest.fail "missing provenance"
      | Some p ->
          (* Replay: same seed, same scheduler seed, random policy is only
             an approximation for Pmrace-policy campaigns, so replay with
             the recorded campaign's policy label only when random. *)
          let input =
            Pmrace.Campaign.input ~sched_seed:p.Fuzzer.p_sched_seed target p.Fuzzer.p_seed
          in
          let r = Pmrace.Campaign.run input in
          ignore r (* the replay executes deterministically without error *))

let suite =
  [
    Alcotest.test_case "inconsistencies ⊆ candidates" `Slow test_inconsistencies_subset_of_candidates;
    Alcotest.test_case "coarse count ≤ candidates" `Slow test_coarse_bounded_by_candidates;
    Alcotest.test_case "coarse verdicts partition" `Slow test_coarse_partition;
    Alcotest.test_case "validated findings have images" `Slow test_validated_findings_have_images;
    Alcotest.test_case "images show the window" `Slow test_images_show_the_window;
    Alcotest.test_case "timeline dense" `Slow test_timeline_dense;
    Alcotest.test_case "sync values non-initial" `Slow test_sync_values_non_initial;
    Alcotest.test_case "whitelist verdicts consistent" `Slow test_whitelist_verdicts_consistent;
    Alcotest.test_case "candidate pairs unique" `Slow test_candidate_pairs_unique;
    Alcotest.test_case "provenance replays" `Slow test_provenance_replays;
  ]

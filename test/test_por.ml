(* Partial-order reduction: footprint independence units, sleep-set
   behaviour of Scheduler.run_por driven by synthetic hooks, canonical
   trace-hash determinism, the artifact v5 round-trip, and the headline
   property — pruning must not change the unique-bug set on the planted
   workloads. *)

module F = Runtime.Footprint
module Sch = Sched.Scheduler
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Footprint independence units.                                       *)
(* ------------------------------------------------------------------ *)

let test_footprint_independence () =
  let ck = Alcotest.(check bool) in
  ck "none commutes with a store" true (F.independent F.none (F.store 3));
  ck "none commutes with a fence" true (F.independent F.none F.fence);
  ck "fence commutes with nothing" false (F.independent F.fence (F.load 1));
  ck "fence vs fence" false (F.independent F.fence F.fence);
  ck "opaque commutes with nothing" false (F.independent F.opaque (F.load 9));
  ck "loads of the same word commute" true (F.independent (F.load 4) (F.load 4));
  ck "load vs store of the same word conflict" false (F.independent (F.load 4) (F.store 4));
  ck "stores of distinct words commute" true (F.independent (F.store 1) (F.store 2));
  ck "stores of the same word conflict" false (F.independent (F.store 1) (F.store 1));
  ck "a CAS reads its word" false (F.independent (F.rw 7) (F.load 7));
  (* Flushes conflict at cache-line granularity. *)
  ck "flush vs same-line store conflict" false (F.independent (F.flush 8) (F.store 9));
  ck "flush vs other-line store commute" true (F.independent (F.flush 8) (F.store 0));
  ck "flushes of the same line conflict" false (F.independent (F.flush 8) (F.flush 9));
  ck "flushes of distinct lines commute" true (F.independent (F.flush 0) (F.flush 8))

let fp_of (k, w) =
  match k mod 6 with
  | 0 -> F.none
  | 1 -> F.load w
  | 2 -> F.store w
  | 3 -> F.rw w
  | 4 -> F.flush w
  | _ -> F.fence

let prop_independence_symmetric =
  QCheck.Test.make ~name:"por: independence is symmetric" ~count:500
    QCheck.(pair (pair small_nat small_nat) (pair small_nat small_nat))
    (fun (a, b) -> F.independent (fp_of a) (fp_of b) = F.independent (fp_of b) (fp_of a))

(* ------------------------------------------------------------------ *)
(* Sleep sets on the bare scheduler, via synthetic int hooks.  Each     *)
(* fiber replays a script of footprints; [pending] holds the next       *)
(* unexecuted entry and the [step_fp] cell the one the last step ran.   *)
(* ------------------------------------------------------------------ *)

let run_scripts ?(independent = F.independent) ?(spin = F.spin_retry) ~seed scripts =
  let t = Sch.create ~rng:(Sched.Rng.create seed) () in
  let n = Array.length scripts in
  let pending = Array.make (max 1 n) 0 in
  let step_fp = [| 0 |] in
  Array.iteri
    (fun tid ops ->
      if Array.length ops > 0 then pending.(tid) <- ops.(0);
      ignore
        (Sch.spawn t ~name:(Printf.sprintf "f%d" tid) (fun () ->
             let len = Array.length ops in
             Array.iteri
               (fun k fp ->
                 step_fp.(0) <- fp;
                 pending.(tid) <- (if k + 1 < len then ops.(k + 1) else 0);
                 Sch.yield ())
               ops)))
    scripts;
  let por = { Sch.pending; step_fp; independent; spin } in
  Sch.run_por ~por t

let test_disjoint_fibers_prune () =
  (* Words 0 and 100 never share a line: every pick of one fiber puts
     the lower-tid one to sleep, so pruning must kick in. *)
  let script w = Array.make 6 (F.store w) in
  let outcome, stats = run_scripts ~seed:7 [| script 0; script 100 |] in
  Alcotest.(check bool) "completed" true (Sch.completed outcome);
  Alcotest.(check (list int)) "both fibers finished" [ 0; 1 ]
    (List.sort compare outcome.Sch.finished);
  Alcotest.(check bool) "picks were pruned" true (stats.Sch.pruned_picks > 0)

let test_conflicting_fibers_never_prune () =
  (* Every pending op conflicts with every executed one: the sleep sets
     stay empty and run_por degenerates to an unpruned random walk. *)
  let script = Array.make 6 (F.store 0) in
  let outcome, stats = run_scripts ~seed:7 [| script; Array.copy script |] in
  Alcotest.(check bool) "completed" true (Sch.completed outcome);
  Alcotest.(check int) "nothing pruned" 0 stats.Sch.pruned_picks;
  Alcotest.(check int) "no forced wakes" 0 stats.Sch.forced_wakes

let test_liveness_under_maximal_independence () =
  (* With everything declared independent the sleep sets are as greedy
     as they can be; the forced-wake fallback must still drive every
     fiber to completion on every seed. *)
  let scripts = [| Array.make 5 (F.store 0); Array.make 5 (F.store 1); Array.make 5 (F.store 2) |] in
  let wakes = ref 0 in
  for seed = 1 to 30 do
    let outcome, stats = run_scripts ~independent:(fun _ _ -> true) ~seed scripts in
    Alcotest.(check bool) (Printf.sprintf "seed %d completed" seed) true (Sch.completed outcome);
    Alcotest.(check int) (Printf.sprintf "seed %d all finished" seed) 3
      (List.length outcome.Sch.finished);
    wakes := !wakes + stats.Sch.forced_wakes
  done;
  Alcotest.(check bool) "forced wakes exercised" true (!wakes > 0)

let test_forced_wake_deterministic () =
  (* Two fibers, everything declared independent: once the higher tid is
     picked, the lower one sleeps and nothing ever wakes it, so when the
     higher fiber finishes the entire runnable set is asleep — the
     forced-wake fallback must fire and the run must still complete.
     Seed 2 picks tid 1 first, making the stat deterministically
     nonzero. *)
  let scripts = [| Array.make 4 (F.store 0); Array.make 4 (F.store 1) |] in
  let outcome, stats = run_scripts ~independent:(fun _ _ -> true) ~seed:2 scripts in
  Alcotest.(check bool) "completed" true (Sch.completed outcome);
  Alcotest.(check int) "both fibers finished" 2 (List.length outcome.Sch.finished);
  Alcotest.(check bool) "forced wake fired" true (stats.Sch.forced_wakes > 0);
  Alcotest.(check bool) "the sleeping span was accounted as pruned" true
    (stats.Sch.pruned_picks > 0)

(* ------------------------------------------------------------------ *)
(* Trace-hash determinism on a real campaign.                          *)
(* ------------------------------------------------------------------ *)

(* The Mazurkiewicz property itself, directly on the digest: swapping
   two adjacent ops of different fibers whose footprints commute must
   not change the trace hash — the two interleavings are the same trace.
   Replayed through {!Por.record_op} (no scheduler), so the property
   covers the digest in isolation. *)
let prop_trace_hash_swap_invariant =
  QCheck.Test.make ~name:"por: trace hash invariant under adjacent commuting swaps" ~count:300
    QCheck.(
      pair (list_of_size Gen.(int_range 8 32) (triple (int_bound 3) (int_range 1 5) (int_bound 12)))
        small_nat)
    (fun (ops, pick) ->
      let ops = Array.of_list (List.map (fun (tid, k, w) -> (tid, fp_of (k, w))) ops) in
      let swappable =
        List.filter
          (fun i ->
            let t1, f1 = ops.(i) and t2, f2 = ops.(i + 1) in
            t1 <> t2 && F.independent f1 f2)
          (List.init (Array.length ops - 1) Fun.id)
      in
      match swappable with
      | [] -> QCheck.assume_fail ()
      | l ->
          let i = List.nth l (pick mod List.length l) in
          let digest arr =
            let h = Pmrace.Por.create ~nthreads:4 () in
            Array.iter (fun (tid, fp) -> Pmrace.Por.record_op h tid fp) arr;
            Pmrace.Por.trace_hash h
          in
          let swapped = Array.copy ops in
          swapped.(i) <- ops.(i + 1);
          swapped.(i + 1) <- ops.(i);
          digest ops = digest swapped)

let test_trace_hash_deterministic () =
  let target = Workloads.Figure1.planted in
  let seed = Pmrace.Seed.gen (Sched.Rng.create 11) target.Pmrace.Target.profile in
  let run ~por =
    let input =
      Pmrace.Campaign.input ~sched_seed:42 ~policy:Pmrace.Campaign.Random_sched ~por target seed
    in
    (Pmrace.Campaign.run input).Pmrace.Campaign.por
  in
  (match run ~por:false with
  | None -> ()
  | Some _ -> Alcotest.fail "POR off must record no pruning stats");
  match (run ~por:true, run ~por:true) with
  | Some a, Some b ->
      Alcotest.(check int64) "same trace hash" a.Pmrace.Por.s_trace_hash b.Pmrace.Por.s_trace_hash;
      Alcotest.(check int) "same op count" a.Pmrace.Por.s_ops b.Pmrace.Por.s_ops;
      Alcotest.(check bool) "ops were recorded" true (a.Pmrace.Por.s_ops > 0);
      Alcotest.(check bool) "layers bounded by ops" true
        (a.Pmrace.Por.s_layers > 0 && a.Pmrace.Por.s_layers <= a.Pmrace.Por.s_ops)
  | _ -> Alcotest.fail "POR campaigns must record pruning stats"

(* ------------------------------------------------------------------ *)
(* Artifact v5: totals and trace hashes round-trip; a v4 artifact      *)
(* (no por section, no trace fields) still decodes.                    *)
(* ------------------------------------------------------------------ *)

let test_artifact_v5_roundtrip_and_v4_compat () =
  let target = Workloads.Figure1.planted in
  let cfg = Pmrace.Fuzzer.Config.make ~max_campaigns:30 ~master_seed:9 ~por:true () in
  let s = Pmrace.Fuzzer.run target cfg in
  let art = Pmrace.Artifact.of_session ~target ~cfg s in
  Alcotest.(check bool) "session totals recorded" true
    (art.Pmrace.Artifact.a_por = s.Pmrace.Fuzzer.por && art.Pmrace.Artifact.a_por <> None);
  Alcotest.(check bool) "some campaign has a trace hash" true
    (List.exists
       (fun (p : Pmrace.Artifact.prov_entry) -> p.pr_trace <> None)
       art.Pmrace.Artifact.a_provenance);
  (match Pmrace.Artifact.of_json (Pmrace.Artifact.to_json art) with
  | Error e -> Alcotest.failf "v5 round-trip failed: %s" e
  | Ok art' ->
      Alcotest.(check bool) "por totals round-trip" true
        (art'.Pmrace.Artifact.a_por = art.Pmrace.Artifact.a_por);
      Alcotest.(check bool) "config.por round-trips" true
        art'.Pmrace.Artifact.a_config.Pmrace.Fuzzer.por;
      Alcotest.(check bool) "trace hashes round-trip" true
        (List.map
           (fun (p : Pmrace.Artifact.prov_entry) -> p.pr_trace)
           art'.Pmrace.Artifact.a_provenance
        = List.map
            (fun (p : Pmrace.Artifact.prov_entry) -> p.pr_trace)
            art.Pmrace.Artifact.a_provenance));
  (* Rewrite the encoding as a v4 reader would have produced it: no
     "por" keys, no "trace" keys, version stamped 4. *)
  let rec strip = function
    | J.Obj fields ->
        J.Obj
          (List.filter_map
             (fun (k, v) ->
               match k with
               | "por" | "trace" -> None
               | "version" -> Some (k, J.Int 4)
               | _ -> Some (k, strip v))
             fields)
    | J.List l -> J.List (List.map strip l)
    | v -> v
  in
  match Pmrace.Artifact.of_json (strip (Pmrace.Artifact.to_json art)) with
  | Error e -> Alcotest.failf "v4 artifact failed to decode: %s" e
  | Ok art' ->
      Alcotest.(check bool) "no por totals" true (art'.Pmrace.Artifact.a_por = None);
      Alcotest.(check bool) "config.por defaults off" true
        (not art'.Pmrace.Artifact.a_config.Pmrace.Fuzzer.por);
      Alcotest.(check bool) "no trace hashes" true
        (List.for_all
           (fun (p : Pmrace.Artifact.prov_entry) -> p.pr_trace = None)
           art'.Pmrace.Artifact.a_provenance);
      Alcotest.(check bool) "bug groups preserved" true
        (Pmrace.Artifact.bug_fingerprints art' = Pmrace.Artifact.bug_fingerprints art)

(* ------------------------------------------------------------------ *)
(* The headline property: pruned and unpruned sessions find the same   *)
(* unique-bug set on the planted workloads.                            *)
(* ------------------------------------------------------------------ *)

let bug_set target cfg =
  let s = Pmrace.Fuzzer.run target cfg in
  Pmrace.Fuzzer.found_known_bugs s target
  |> List.filter_map (fun ((kb : Pmrace.Target.known_bug), found) ->
         if found then Some kb.kb_id else None)
  |> List.sort compare

let prop_bug_sets name target ~campaigns ~crash_images ~count =
  QCheck.Test.make ~name ~count
    QCheck.(int_bound 1000)
    (fun master ->
      let cfg por =
        Pmrace.Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:(master + 1)
          ~crash_images ~por ()
      in
      bug_set target (cfg false) = bug_set target (cfg true))

let prop_figure1_bug_sets =
  prop_bug_sets "por: figure1-planted bug set unchanged by pruning" Workloads.Figure1.planted
    ~campaigns:60 ~crash_images:1 ~count:5

let prop_torn_bug_sets =
  prop_bug_sets "por: torn-planted bug set unchanged by pruning" Workloads.Tornstore.target
    ~campaigns:60 ~crash_images:4 ~count:3

let test_por_session_finds_planted () =
  let target = Workloads.Figure1.planted in
  let cfg = Pmrace.Fuzzer.Config.make ~max_campaigns:60 ~master_seed:5 ~por:true () in
  let s = Pmrace.Fuzzer.run target cfg in
  Alcotest.(check bool) "planted bug found under POR" true
    (Pmrace.Fuzzer.found_known_bugs s target |> List.exists snd);
  match s.Pmrace.Fuzzer.por with
  | None -> Alcotest.fail "POR session has no totals"
  | Some (p : Pmrace.Hub.por_totals) ->
      Alcotest.(check int) "every campaign ran under POR" s.Pmrace.Fuzzer.campaigns_run
        p.pt_campaigns;
      Alcotest.(check bool) "traces were classified" true (p.pt_unique_traces > 0);
      Alcotest.(check bool) "dedup accounting consistent" true
        (p.pt_unique_traces + p.pt_dup_traces = p.pt_campaigns)

let suite =
  [
    Alcotest.test_case "footprint independence" `Quick test_footprint_independence;
    QCheck_alcotest.to_alcotest prop_independence_symmetric;
    Alcotest.test_case "disjoint fibers prune" `Quick test_disjoint_fibers_prune;
    Alcotest.test_case "conflicting fibers never prune" `Quick test_conflicting_fibers_never_prune;
    Alcotest.test_case "liveness under maximal independence" `Quick
      test_liveness_under_maximal_independence;
    Alcotest.test_case "forced wake: deterministic unit" `Quick test_forced_wake_deterministic;
    QCheck_alcotest.to_alcotest prop_trace_hash_swap_invariant;
    Alcotest.test_case "trace hash is deterministic" `Quick test_trace_hash_deterministic;
    Alcotest.test_case "artifact v5 round-trip, v4 compat" `Quick
      test_artifact_v5_roundtrip_and_v4_compat;
    Alcotest.test_case "POR session finds the planted bug" `Quick test_por_session_finds_planted;
    QCheck_alcotest.to_alcotest prop_figure1_bug_sets;
    QCheck_alcotest.to_alcotest prop_torn_bug_sets;
  ]

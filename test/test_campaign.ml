(* Campaign execution, checkpoints, post-failure validation, reports, and
   the whitelist — exercised through the Figure 1 example target. *)

module Campaign = Pmrace.Campaign
module Seed = Pmrace.Seed
module Report = Pmrace.Report
module Post = Pmrace.Post_failure
module Whitelist = Pmrace.Whitelist
module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates
module Rng = Sched.Rng

let target = Workloads.Figure1.target
let seed () = Seed.gen (Rng.create 3) target.profile

(* Find a scheduler seed whose campaign confirms the Figure 1 inter
   inconsistency. *)
let find_confirming () =
  let rec go s =
    if s > 400 then Alcotest.fail "no confirming campaign within 400 seeds"
    else
      let input = Campaign.input ~sched_seed:s ~policy:Campaign.Random_sched target (seed ()) in
      let r = Campaign.run input in
      match Checkers.inconsistencies r.env.Runtime.Env.checkers with
      | [] -> go (s + 1)
      | _ :: _ -> (s, r)
  in
  go 1

let test_campaign_completes () =
  let input = Campaign.input ~sched_seed:1 target (seed ()) in
  let r = Campaign.run input in
  Alcotest.(check bool) "completed" true (Sched.Scheduler.completed r.outcome);
  Alcotest.(check bool) "no hang" false r.hung

let test_campaign_deterministic () =
  let run () =
    let input = Campaign.input ~sched_seed:7 target (seed ()) in
    let r = Campaign.run input in
    ( Candidates.dynamic_count (Checkers.candidates r.env.Runtime.Env.checkers),
      List.length (Checkers.inconsistencies r.env.Runtime.Env.checkers),
      r.outcome.steps )
  in
  Alcotest.(check bool) "identical replay" true (run () = run ())

let test_checkpoint_equivalence () =
  (* Starting from an in-memory checkpoint must not change the findings. *)
  let snap = Campaign.prepare_snapshot target in
  let with_cp =
    Campaign.run (Campaign.input ~sched_seed:7 ~snapshot:snap target (seed ()))
  in
  let without_cp = Campaign.run (Campaign.input ~sched_seed:7 target (seed ())) in
  let summary (r : Campaign.result) =
    ( Candidates.dynamic_count (Checkers.candidates r.env.Runtime.Env.checkers),
      List.length (Checkers.inconsistencies r.env.Runtime.Env.checkers) )
  in
  Alcotest.(check bool) "same findings" true (summary with_cp = summary without_cp)

let test_crash_image_shows_inconsistency () =
  (* The crash image captured at confirmation must contain the durable side
     effect (y) but not the source (x): y <> x after the crash. *)
  let _, r = find_confirming () in
  match Checkers.inconsistencies r.env.Runtime.Env.checkers with
  | inc :: _ ->
      let image = Option.get inc.Checkers.image in
      let y = Pmem.Pool.image_word image Workloads.Figure1.y_off in
      let x = Pmem.Pool.image_word image Workloads.Figure1.x_off in
      Alcotest.(check bool) "y persisted, x stale" true (not (Int64.equal y x))
  | [] -> Alcotest.fail "expected inconsistency"

let test_validation_bug () =
  (* Figure 1 has no recovery, so the inconsistency is a true bug. *)
  let _, r = find_confirming () in
  let inc = List.hd (Checkers.inconsistencies r.env.Runtime.Env.checkers) in
  match Post.validate (Post.ctx target) (Post.Candidate.Inconsistency inc) with
  | Post.Bug _ -> ()
  | v -> Alcotest.failf "expected Bug, got %a" Post.pp_verdict v

let test_validation_whitelisted () =
  let _, r = find_confirming () in
  let inc = List.hd (Checkers.inconsistencies r.env.Runtime.Env.checkers) in
  let wl = Whitelist.create [ "figure1.c:read_x" ] in
  match Post.validate (Post.ctx ~whitelist:wl target) (Post.Candidate.Inconsistency inc) with
  | Post.Whitelisted_fp -> ()
  | v -> Alcotest.failf "expected Whitelisted_fp, got %a" Post.pp_verdict v

let test_validation_fixed_by_recovery () =
  (* A variant of the target whose recovery overwrites y: validation must
     classify the same inconsistency as a false positive. *)
  let fixed_target =
    {
      target with
      Pmrace.Target.recover =
        (fun env ->
          let ctx = Runtime.Env.ctx env ~tid:(-2) in
          let i = Runtime.Instr.site "figure1.c:recover_y" in
          Runtime.Mem.store ctx ~instr:i (Runtime.Tval.of_int Workloads.Figure1.y_off)
            Runtime.Tval.zero;
          Runtime.Mem.persist ctx ~instr:i (Runtime.Tval.of_int Workloads.Figure1.y_off));
    }
  in
  let _, r = find_confirming () in
  let inc = List.hd (Checkers.inconsistencies r.env.Runtime.Env.checkers) in
  match Post.validate (Post.ctx fixed_target) (Post.Candidate.Inconsistency inc) with
  | Post.Validated_fp -> ()
  | v -> Alcotest.failf "expected Validated_fp, got %a" Post.pp_verdict v

let test_sync_validation () =
  let _, r = find_confirming () in
  match Checkers.sync_events r.env.Runtime.Env.checkers with
  | ev :: _ -> (
      (* No recovery: the lock stays held -> bug. *)
      (match Post.validate (Post.ctx target) (Post.Candidate.Sync ev) with
      | Post.Bug _ -> ()
      | v -> Alcotest.failf "expected Bug, got %a" Post.pp_verdict v);
      (* Recovery resetting g: false positive. *)
      let fixed =
        {
          target with
          Pmrace.Target.recover =
            (fun env ->
              let ctx = Runtime.Env.ctx env ~tid:(-2) in
              let i = Runtime.Instr.site "figure1.c:recover_g" in
              Runtime.Mem.store ctx ~instr:i (Runtime.Tval.of_int Workloads.Figure1.g_off)
                Runtime.Tval.zero;
              Runtime.Mem.persist ctx ~instr:i (Runtime.Tval.of_int Workloads.Figure1.g_off));
        }
      in
      match Post.validate (Post.ctx fixed) (Post.Candidate.Sync ev) with
      | Post.Validated_fp -> ()
      | v -> Alcotest.failf "expected Validated_fp, got %a" Post.pp_verdict v)
  | [] -> Alcotest.fail "expected a sync event (the lock g is annotated)"

let test_report_dedup () =
  let report = Report.create () in
  let _, r1 = find_confirming () in
  let nf1, _ = Report.absorb report r1.env ~hung:false ~hang_info:"" in
  Alcotest.(check bool) "first absorb yields findings" true (nf1 <> []);
  let _, r2 = find_confirming () in
  let nf2, _ = Report.absorb report r2.env ~hung:false ~hang_info:"" in
  Alcotest.(check int) "identical findings deduplicated" 0 (List.length nf2);
  Alcotest.(check int) "campaigns counted" 2 (Report.campaigns report)

let test_report_groups_and_matching () =
  let report = Report.create () in
  let _, r = find_confirming () in
  let nf, ns = Report.absorb report r.env ~hung:false ~hang_info:"" in
  let vctx = Post.ctx target in
  List.iter
    (fun (f : Report.finding) ->
      f.verdict <- Some (Post.validate vctx (Post.Candidate.Inconsistency f.inc)))
    nf;
  List.iter
    (fun (f : Report.sync_finding) ->
      f.sync_verdict <- Some (Post.validate vctx (Post.Candidate.Sync f.ev)))
    ns;
  let groups = Report.bug_groups report in
  Alcotest.(check bool) "has inter group" true
    (List.exists (fun g -> g.Report.bg_kind = `Inter && g.bg_site = "figure1.c:store_x") groups);
  let matches = Report.match_known target groups in
  Alcotest.(check bool) "known bugs matched" true (List.for_all snd matches)

let test_whitelist () =
  let wl = Whitelist.create [ "a"; "b" ] in
  Alcotest.(check bool) "mem" true (Whitelist.mem_site wl "a");
  Alcotest.(check bool) "not mem" false (Whitelist.mem_site wl "c");
  Whitelist.add wl "c";
  Alcotest.(check bool) "added" true (Whitelist.mem_site wl "c");
  Alcotest.(check (list string)) "sites sorted" [ "a"; "b"; "c" ] (Whitelist.sites wl)

let suite =
  [
    Alcotest.test_case "campaign completes" `Quick test_campaign_completes;
    Alcotest.test_case "campaign deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "checkpoint equivalence" `Quick test_checkpoint_equivalence;
    Alcotest.test_case "crash image shows y<>x" `Quick test_crash_image_shows_inconsistency;
    Alcotest.test_case "validation: bug" `Quick test_validation_bug;
    Alcotest.test_case "validation: whitelisted" `Quick test_validation_whitelisted;
    Alcotest.test_case "validation: fixed by recovery" `Quick test_validation_fixed_by_recovery;
    Alcotest.test_case "sync validation" `Quick test_sync_validation;
    Alcotest.test_case "report dedup" `Quick test_report_dedup;
    Alcotest.test_case "report groups + matching" `Quick test_report_groups_and_matching;
    Alcotest.test_case "whitelist" `Quick test_whitelist;
  ]

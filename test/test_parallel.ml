(* The §5 worker pool on OCaml 5 domains: domain-safety of the runtime's
   process-global registries, budget accounting under parallel reservation,
   and the two determinism guarantees — [workers = 1] is bit-identical to
   the sequential fuzzer (golden fingerprints recorded from the
   pre-refactor loop), and [workers = 4] finds the same unique-bug set. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Instr = Runtime.Instr
module Dram = Runtime.Dram

(* ------------------------------------------------------------------ *)
(* Instr: concurrent lazy registration across domains.  Half the names are
   shared between all domains (the racy case that corrupted the plain
   Hashtbls), half are domain-private. *)

let test_instr_domain_stress () =
  let domains = 4 and per_domain = 200 and shared = 100 in
  let register d =
    let mine =
      List.init per_domain (fun i ->
          let n = Printf.sprintf "stress:d%d:%d" d i in
          (n, Instr.site n))
    in
    let ours =
      List.init shared (fun i ->
          let n = Printf.sprintf "stress:shared:%d" i in
          (n, Instr.site n))
    in
    mine @ ours
  in
  let spawned = List.init domains (fun d -> Domain.spawn (fun () -> register d)) in
  let all = List.concat_map Domain.join spawned in
  (* Every registration is stable: re-querying the name gives the same id,
     and the id maps back to the name. *)
  List.iter
    (fun (n, id) ->
      Alcotest.(check int) "site memoised" (Instr.to_int id) (Instr.to_int (Instr.site n));
      Alcotest.(check string) "name round-trips" n (Instr.name id);
      ignore (Instr.of_int (Instr.to_int id)))
    all;
  (* Distinct names got distinct ids (the registry did not hand out the
     same counter value twice). *)
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (n, id) ->
      match Hashtbl.find_opt tbl (Instr.to_int id) with
      | Some n' -> Alcotest.(check string) "one name per id" n' n
      | None -> Hashtbl.add tbl (Instr.to_int id) n)
    all;
  Alcotest.(check int) "distinct ids for distinct names"
    ((domains * per_domain) + shared)
    (Hashtbl.length tbl)

let test_instr_of_int_unknown () =
  Alcotest.check_raises "of_int rejects unregistered ids"
    (Invalid_argument (Printf.sprintf "Instr.of_int: unknown id %d" max_int)) (fun () ->
      ignore (Instr.of_int max_int))

(* ------------------------------------------------------------------ *)
(* Dram: key allocation is atomic across domains, and stores are
   independent per environment. *)

let test_dram_concurrent_keys () =
  let per_domain = 100 in
  let alloc d =
    List.init per_domain (fun i ->
        (Dram.key ~name:(Printf.sprintf "k:d%d:%d" d i) () : int Dram.key))
  in
  let spawned = List.init 2 (fun d -> Domain.spawn (fun () -> alloc d)) in
  let keys = List.concat_map Domain.join spawned in
  (* Uids must be pairwise distinct: a shared plain ref would hand out
     duplicates under this race, making unrelated keys alias. *)
  let store = Dram.create () in
  List.iteri (fun i k -> Dram.set store k i) keys;
  List.iteri
    (fun i k -> Alcotest.(check (option int)) "keys do not alias" (Some i) (Dram.find store k))
    keys

let test_dram_stores_independent () =
  let k : int Dram.key = Dram.key ~name:"indep" () in
  let a = Dram.create () and b = Dram.create () in
  Dram.set a k 1;
  Alcotest.(check (option int)) "store b unaffected" None (Dram.find b k);
  Dram.set b k 2;
  Alcotest.(check (option int)) "store a keeps its value" (Some 1) (Dram.find a k);
  Alcotest.(check (option int)) "store b keeps its value" (Some 2) (Dram.find b k)

(* ------------------------------------------------------------------ *)
(* Budget accounting: parallel workers reserve campaign slots, so the
   budget is never overshot and the timeline/provenance stay dense. *)

let test_parallel_budget_exact () =
  let s =
    Fuzzer.run Workloads.Figure1.target
      (Fuzzer.Config.make ~max_campaigns:40 ~master_seed:3 ~workers:4 ())
  in
  Alcotest.(check int) "campaigns exactly at budget" 40 s.campaigns_run;
  Alcotest.(check int) "one timeline point per campaign" 40 (List.length s.timeline);
  Alcotest.(check int) "provenance per campaign" 40 (Hashtbl.length s.provenance);
  Alcotest.(check (list int)) "timeline dense and ordered"
    (List.init 40 (fun i -> i + 1))
    (List.map (fun (p : Fuzzer.timeline_point) -> p.tp_campaign) s.timeline)

(* ------------------------------------------------------------------ *)
(* Determinism.  Golden fingerprints below were recorded from the
   sequential (pre-worker-pool) fuzzing loop; [workers = 1] must keep
   reproducing them bit for bit.  The provenance hash folds every
   campaign's scheduler seed in reservation order, so it pins the entire
   session's RNG history, not just aggregates. *)

let prov_hash (s : Fuzzer.session) =
  Hashtbl.fold (fun k (p : Fuzzer.provenance) acc -> (k, p.p_sched_seed) :: acc) s.provenance []
  |> List.sort compare
  |> List.fold_left (fun h (k, v) -> (h * 1000003 + k + v) land 0x3FFFFFFF) 0

let bug_ids (s : Fuzzer.session) =
  List.map
    (fun (g : Report.bug_group) ->
      ((match g.bg_kind with `Inter -> "Inter" | `Intra -> "Intra" | `Sync -> "Sync"), g.bg_site))
    (Report.bug_groups s.report)
  |> List.sort_uniq compare

let session target budget seed workers =
  (* Deliberately constructs the config as a record: the record stays a
     public (if deprecated-for-construction) API, and the golden sessions
     below prove a record-built config behaves exactly like Config.make. *)
  Fuzzer.run target
    {
      Fuzzer.default_config with
      max_campaigns = budget;
      master_seed = seed;
      workers;
      use_checkpoint = target.Pmrace.Target.expensive_init;
    }

let test_workers1_bit_identical_figure1 () =
  let s = session Workloads.Figure1.target 40 3 1 in
  Alcotest.(check int) "campaigns" 40 s.campaigns_run;
  Alcotest.(check int) "alias bits" 24 (Pmrace.Alias_cov.count s.alias);
  Alcotest.(check int) "branch bits" 2 (Pmrace.Branch_cov.count s.branch);
  Alcotest.(check int) "inter candidates" 3
    (Report.candidate_count s.report Runtime.Candidates.Inter);
  Alcotest.(check int) "inter inconsistencies" 1
    (Report.inconsistency_count s.report Runtime.Candidates.Inter);
  Alcotest.(check (list (pair string string)))
    "bug groups"
    [ ("Inter", "figure1.c:store_x"); ("Sync", "figure1.c:g") ]
    (bug_ids s);
  (match Hashtbl.find_opt s.provenance 0 with
  | Some p -> Alcotest.(check int) "first sched seed" 250784763 p.Fuzzer.p_sched_seed
  | None -> Alcotest.fail "missing provenance for campaign 0");
  Alcotest.(check int) "provenance hash (full RNG history)" 78631009 (prov_hash s)

let test_workers1_bit_identical_pclht () =
  let s = session Workloads.Pclht.target 150 5 1 in
  Alcotest.(check int) "campaigns" 150 s.campaigns_run;
  (* The alias-bitmap count is specific to this executable: AFL-style
     bitmaps hash raw site ids, and toplevel [Instr.site] registrations in
     other linked test modules shift the workloads' ids (here that costs
     one extra collision vs the standalone binary's 445).  Re-capture if a
     test module gains toplevel sites; the id-independent fingerprints
     below (bug set, candidate counts, provenance hash) must never move. *)
  Alcotest.(check int) "alias bits" 446 (Pmrace.Alias_cov.count s.alias);
  Alcotest.(check int) "branch bits" 9 (Pmrace.Branch_cov.count s.branch);
  Alcotest.(check int) "inter candidates" 6
    (Report.candidate_count s.report Runtime.Candidates.Inter);
  Alcotest.(check int) "intra candidates" 1
    (Report.candidate_count s.report Runtime.Candidates.Intra);
  Alcotest.(check (list (pair string string)))
    "bug groups"
    [
      ("Inter", "clht_lb_res.c:785"); ("Intra", "clht_lb_res.c:789"); ("Sync", "clht_lb_res.c:429");
    ]
    (bug_ids s);
  Alcotest.(check int) "provenance hash (full RNG history)" 661670335 (prov_hash s)

let test_bug_set_figure1_1_vs_4 () =
  let s1 = session Workloads.Figure1.target 40 3 1 in
  let s4 = session Workloads.Figure1.target 40 3 4 in
  Alcotest.(check (list (pair string string))) "same unique-bug set" (bug_ids s1) (bug_ids s4)

let test_bug_set_pclht_1_vs_4 () =
  let s1 = session Workloads.Pclht.target 150 5 1 in
  let s4 = session Workloads.Pclht.target 150 5 4 in
  Alcotest.(check (list (pair string string))) "same unique-bug set" (bug_ids s1) (bug_ids s4)

let suite =
  [
    Alcotest.test_case "instr registry under domain races" `Quick test_instr_domain_stress;
    Alcotest.test_case "instr of_int rejects unknown" `Quick test_instr_of_int_unknown;
    Alcotest.test_case "dram keys allocated across domains" `Quick test_dram_concurrent_keys;
    Alcotest.test_case "dram stores independent" `Quick test_dram_stores_independent;
    Alcotest.test_case "parallel budget exact" `Quick test_parallel_budget_exact;
    Alcotest.test_case "workers=1 bit-identical (figure1 golden)" `Quick
      test_workers1_bit_identical_figure1;
    Alcotest.test_case "workers=1 bit-identical (p-clht golden)" `Slow
      test_workers1_bit_identical_pclht;
    Alcotest.test_case "figure1: workers=1 vs 4 same bugs" `Quick test_bug_set_figure1_1_vs_4;
    Alcotest.test_case "p-clht: workers=1 vs 4 same bugs" `Slow test_bug_set_pclht_1_vs_4;
  ]

(* The second-generation detectors (PR 6): taxonomy lint classes
   (double-flush, cross-region ordering, end-of-trace residue, missing
   recovery-path flush), likely-invariant mining/checking, the planted
   ground-truth workload, the fuzzer's violation monitor, and the v2
   artifact schema.

   No toplevel [Instr.site] calls: registering sites at module link time
   shifts every workload site id and breaks the pinned coverage goldens
   in test_parallel.ml.  All sites are registered inside test bodies
   ([Instr.site] is idempotent per name). *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Trace = Runtime.Trace
module Lifecycle = Analysis.Lifecycle
module Lint = Analysis.Lint
module Inv = Analysis.Invariants
module Analyzer = Analysis.Analyzer
module Analyze = Pmrace.Analyze

(* Record a synthetic trace by running [f ctx0 ctx1] over a fresh env. *)
let record_trace f =
  let env = Env.create ~pool_words:1024 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  f (Env.ctx env ~tid:0) (Env.ctx env ~tid:1);
  Trace.events tr

let kinds_of l = List.map (fun (f : Lint.finding) -> f.Lint.f_kind) (Lint.findings l)

(* --- taxonomy: double flush -------------------------------------------- *)

let double_flush_trace () =
  record_trace (fun t0 _ ->
      let i = Instr.site "det:df" and i2 = Instr.site "det:df2" in
      Mem.store t0 ~instr:i (Tval.of_int 10) Tval.one;
      Mem.clwb t0 ~instr:i (Tval.of_int 10);
      (* same line, no intervening store: the taxonomy double-flush *)
      Mem.clwb t0 ~instr:i2 (Tval.of_int 10);
      Mem.sfence t0 ~instr:i)

let test_double_flush () =
  let events = double_flush_trace () in
  let l = Lint.create ~taxonomy:true () in
  Lint.absorb l events;
  (match
     List.find_opt (fun (f : Lint.finding) -> f.Lint.f_kind = Lint.Double_flush) (Lint.findings l)
   with
  | Some f ->
      Alcotest.(check bool) "flush site is the second CLWB" true
        (Instr.equal f.Lint.f_site (Instr.site "det:df2"));
      Alcotest.(check bool) "low severity" true (f.Lint.f_severity = Lint.Low)
  | None -> Alcotest.fail "expected a double-flush finding");
  (* A store between the two flushes re-dirties the line: no finding. *)
  let events' =
    record_trace (fun t0 _ ->
        let i = Instr.site "det:df" in
        Mem.store t0 ~instr:i (Tval.of_int 10) Tval.one;
        Mem.clwb t0 ~instr:i (Tval.of_int 10);
        Mem.store t0 ~instr:i (Tval.of_int 10) Tval.one;
        Mem.clwb t0 ~instr:i (Tval.of_int 10);
        Mem.sfence t0 ~instr:i)
  in
  let l' = Lint.create ~taxonomy:true () in
  Lint.absorb l' events';
  Alcotest.(check bool) "no double flush with intervening store" false
    (List.mem Lint.Double_flush (kinds_of l'))

let test_double_flush_gated () =
  let l = Lint.create () in
  Lint.absorb l (double_flush_trace ());
  Alcotest.(check bool) "taxonomy off: no double-flush findings" false
    (List.mem Lint.Double_flush (kinds_of l))

(* --- taxonomy: end-of-trace residue ------------------------------------ *)

let test_dirty_words_residue () =
  (* Words 40 and 80 are on different cache lines: persisting 80 leaves
     40 dirty at the end of the trace. *)
  let i = ref None in
  let events =
    record_trace (fun t0 _ ->
        let iw = Instr.site "det:resid" in
        i := Some iw;
        Mem.store t0 ~instr:iw (Tval.of_int 40) Tval.one;
        Mem.store t0 ~instr:iw (Tval.of_int 80) Tval.one;
        Mem.persist t0 ~instr:iw (Tval.of_int 80))
  in
  let iw = Option.get !i in
  let fsm = Lifecycle.create () in
  List.iter (fun ev -> Lifecycle.step fsm ~emit:(fun _ -> ()) ev) events;
  (match Lifecycle.dirty_words fsm with
  | [ (40, site) ] -> Alcotest.(check bool) "residue site" true (Instr.equal site iw)
  | l -> Alcotest.failf "expected word 40 dirty, got %d residue words" (List.length l));
  (* Lint promotes the residue under taxonomy. *)
  let l = Lint.create ~taxonomy:true () in
  Lint.absorb l events;
  (match
     List.find_opt
       (fun (f : Lint.finding) -> f.Lint.f_kind = Lint.Unflushed_at_exit)
       (Lint.findings l)
   with
  | Some f ->
      Alcotest.(check int) "residue word" 40 f.Lint.f_addr;
      Alcotest.(check bool) "medium severity" true (f.Lint.f_severity = Lint.Medium)
  | None -> Alcotest.fail "expected an unflushed-at-exit finding");
  (* The same stream absorbed as a recovery trace is the High class. *)
  let lr = Lint.create ~taxonomy:true () in
  Lint.absorb ~phase:`Recovery lr events;
  Alcotest.(check bool) "recovery residue is missing-recovery-flush" true
    (List.mem Lint.Missing_recovery_flush (kinds_of lr));
  Alcotest.(check bool) "not reported as normal residue" false
    (List.mem Lint.Unflushed_at_exit (kinds_of lr));
  (* Taxonomy off: residue stays out of the findings. *)
  let loff = Lint.create () in
  Lint.absorb loff events;
  Alcotest.(check bool) "taxonomy off: no residue findings" false
    (List.mem Lint.Unflushed_at_exit (kinds_of loff))

(* --- taxonomy: cross-region ordering ----------------------------------- *)

let cross_region_trace () =
  record_trace (fun t0 _ ->
      let ie = Instr.site "det:xr_early" and il = Instr.site "det:xr_late" in
      (* Early store in region 0 (word 10) stays dirty while a later
         store in another region (word 100) is flushed and fenced. *)
      Mem.store t0 ~instr:ie (Tval.of_int 10) Tval.one;
      Mem.store t0 ~instr:il (Tval.of_int 100) Tval.one;
      Mem.clwb t0 ~instr:il (Tval.of_int 100);
      Mem.sfence t0 ~instr:il)

let test_cross_region () =
  let events = cross_region_trace () in
  let l = Lint.create ~taxonomy:true ~region_of:(fun w -> w / 64) () in
  Lint.absorb l events;
  (match
     List.find_opt
       (fun (f : Lint.finding) -> f.Lint.f_kind = Lint.Cross_region_order)
       (Lint.findings l)
   with
  | Some f ->
      Alcotest.(check bool) "early store site recorded" true
        (f.Lint.f_write_site = Some (Instr.site "det:xr_early"))
  | None -> Alcotest.fail "expected a cross-region ordering finding");
  (* Without a region classifier the pool is one region: silent. *)
  let l' = Lint.create ~taxonomy:true () in
  Lint.absorb l' events;
  Alcotest.(check bool) "one region: silent" false (List.mem Lint.Cross_region_order (kinds_of l'));
  (* Same-region ordering is not flagged either. *)
  let l'' = Lint.create ~taxonomy:true ~region_of:(fun _ -> 0) () in
  Lint.absorb l'' events;
  Alcotest.(check bool) "same region: silent" false
    (List.mem Lint.Cross_region_order (kinds_of l''))

(* --- findings determinism across absorb orders ------------------------- *)

let finding_key (f : Lint.finding) =
  ( Lint.kind_slug f.Lint.f_kind,
    Option.map Instr.name f.Lint.f_write_site,
    Instr.name f.Lint.f_site,
    f.Lint.f_addr,
    f.Lint.f_count,
    Lint.severity_rank f.Lint.f_severity )

let test_findings_order_deterministic () =
  (* Three traces with overlapping and distinct findings; absorbing them
     in any order must produce the identical findings list (modulo
     f_first_exec, which by design records absorb order). *)
  let tr1 = double_flush_trace () in
  let tr2 = cross_region_trace () in
  let tr3 =
    record_trace (fun t0 t1 ->
        let iw = Instr.site "det:ow" and ir = Instr.site "det:or" in
        Mem.store t0 ~instr:iw (Tval.of_int 10) Tval.one;
        ignore (Mem.load t1 ~instr:ir (Tval.of_int 10));
        Mem.persist t0 ~instr:iw (Tval.of_int 10))
  in
  let absorb_all order =
    let l = Lint.create ~taxonomy:true ~region_of:(fun w -> w / 64) () in
    List.iter (Lint.absorb l) order;
    List.map finding_key (Lint.findings l)
  in
  let a = absorb_all [ tr1; tr2; tr3 ] in
  let b = absorb_all [ tr3; tr2; tr1 ] in
  let c = absorb_all [ tr2; tr1; tr3 ] in
  Alcotest.(check bool) "order 1 = order 2" true (a = b);
  Alcotest.(check bool) "order 1 = order 3" true (a = c);
  Alcotest.(check bool) "non-empty" true (a <> [])

(* --- invariants: synthetic order mining and checking -------------------- *)

let order_ok_trace () =
  record_trace (fun t0 _ ->
      let ia = Instr.site "det:inv_a" and ib = Instr.site "det:inv_b" in
      Mem.store t0 ~instr:ia (Tval.of_int 10) Tval.one;
      Mem.persist t0 ~instr:ia (Tval.of_int 10);
      Mem.store t0 ~instr:ib (Tval.of_int 20) Tval.one;
      Mem.persist t0 ~instr:ib (Tval.of_int 20))

let order_bad_trace () =
  record_trace (fun t0 _ ->
      let ia = Instr.site "det:inv_a" and ib = Instr.site "det:inv_b" in
      Mem.store t0 ~instr:ia (Tval.of_int 10) Tval.one;
      (* b issues while a is still pending: the ordering violation *)
      Mem.store t0 ~instr:ib (Tval.of_int 20) Tval.one;
      Mem.persist t0 ~instr:ia (Tval.of_int 10);
      Mem.persist t0 ~instr:ib (Tval.of_int 20))

let test_order_invariant () =
  let ia = Instr.site "det:inv_a" and ib = Instr.site "det:inv_b" in
  let m = Inv.create () in
  Inv.absorb m (order_ok_trace ());
  Inv.absorb m (order_ok_trace ());
  Alcotest.(check int) "two executions" 2 (Inv.executions m);
  let specs = Inv.mine m in
  let is_ab = function
    | { Inv.inv = Inv.Order { first; next }; _ } -> Instr.equal first ia && Instr.equal next ib
    | _ -> false
  in
  (match List.find_opt is_ab specs with
  | Some s -> Alcotest.(check int) "support counts both executions" 2 s.Inv.support
  | None -> Alcotest.fail "expected order a -> b to be mined");
  (* Self-check: the mining traces violate nothing (by construction). *)
  Alcotest.(check int) "self-check clean" 0 (List.length (Inv.check specs (order_ok_trace ())));
  (* The violating trace is flagged, at b's too-early store. *)
  match Inv.check specs (order_bad_trace ()) with
  | [] -> Alcotest.fail "expected a violation"
  | v :: _ ->
      Alcotest.(check bool) "violating site is b" true (Instr.equal v.Inv.v_site ib);
      Alcotest.(check (list int)) "pending source word" [ 10 ] v.Inv.v_words

let test_order_min_support () =
  let m = Inv.create ~min_support:3 () in
  Inv.absorb m (order_ok_trace ());
  Inv.absorb m (order_ok_trace ());
  Alcotest.(check (list string)) "support 2 < min_support 3: nothing mined" []
    (List.map (fun (s : Inv.spec) -> Inv.label s.Inv.inv) (Inv.mine m))

(* --- invariants: synthetic commit mining and checking ------------------- *)

let commit_ok_trace () =
  record_trace (fun t0 _ ->
      let ia = Instr.site "det:cm_data" and ic = Instr.site "det:cm_flag" in
      (* One epoch: data then flag, both persisted by the same fence —
         the flag is the epoch's last issued store. *)
      Mem.store t0 ~instr:ia (Tval.of_int 10) Tval.one;
      Mem.store t0 ~instr:ic (Tval.of_int 20) Tval.one;
      Mem.clwb t0 ~instr:ia (Tval.of_int 10);
      Mem.clwb t0 ~instr:ic (Tval.of_int 20);
      Mem.sfence t0 ~instr:ic)

let commit_bad_trace () =
  record_trace (fun t0 _ ->
      let ia = Instr.site "det:cm_data" and ic = Instr.site "det:cm_flag" in
      (* The flag issues first: the epoch's last store is the data. *)
      Mem.store t0 ~instr:ic (Tval.of_int 20) Tval.one;
      Mem.store t0 ~instr:ia (Tval.of_int 10) Tval.one;
      Mem.clwb t0 ~instr:ia (Tval.of_int 10);
      Mem.clwb t0 ~instr:ic (Tval.of_int 20);
      Mem.sfence t0 ~instr:ic)

let test_commit_invariant () =
  let ia = Instr.site "det:cm_data" and ic = Instr.site "det:cm_flag" in
  let m = Inv.create () in
  Inv.absorb m (commit_ok_trace ());
  Inv.absorb m (commit_ok_trace ());
  let specs = Inv.mine m in
  let commits =
    List.filter (function { Inv.inv = Inv.Commit _; _ } -> true | _ -> false) specs
  in
  (match commits with
  | [ { Inv.inv = Inv.Commit { site }; support } ] ->
      Alcotest.(check bool) "flag is the commit variable" true (Instr.equal site ic);
      Alcotest.(check int) "one epoch per execution" 2 support
  | _ -> Alcotest.failf "expected exactly the flag commit, got %d" (List.length commits));
  Alcotest.(check int) "self-check clean" 0 (List.length (Inv.check commits (commit_ok_trace ())));
  match Inv.check commits (commit_bad_trace ()) with
  | [] -> Alcotest.fail "expected a commit violation"
  | v :: _ -> Alcotest.(check bool) "usurping last store is the data" true
                (Instr.equal v.Inv.v_site ia)

(* --- invariants over real recorded traces ------------------------------ *)

let fig1_traces = lazy (Analyze.record Workloads.Figure1.target)
let planted_traces = lazy (Analyze.record Workloads.Figure1.planted)

let fig1_specs =
  lazy
    (let m = Inv.create () in
     List.iter (Inv.absorb m) (Lazy.force fig1_traces);
     Inv.mine m)

let test_fig1_mines_store_before_unlock () =
  let specs = Lazy.force fig1_specs in
  Alcotest.(check bool) "store_x durable before unlock_g mined" true
    (List.exists
       (fun (s : Inv.spec) ->
         match s.Inv.inv with
         | Inv.Order { first; next } ->
             Instr.equal first (Instr.site "figure1.c:store_x")
             && Instr.equal next (Instr.site "figure1.c:unlock_g")
         | Inv.Commit _ -> false)
       specs)

let test_fig1_self_check_clean () =
  let specs = Lazy.force fig1_specs in
  List.iter
    (fun tr ->
      match Inv.check specs tr with
      | [] -> ()
      | v :: _ -> Alcotest.failf "mining trace violates %s" (Inv.label v.Inv.v_inv))
    (Lazy.force fig1_traces)

let test_planted_violates_fig1_specs () =
  (* The planted variant releases the lock before x is flushed, so the
     figure1-mined ordering invariant is violated in its traces. *)
  let specs = Lazy.force fig1_specs in
  let violations = List.concat_map (Inv.check specs) (Lazy.force planted_traces) in
  Alcotest.(check bool) "planted traces violate" true (violations <> []);
  Alcotest.(check bool) "the store_x -> unlock_g ordering is among them" true
    (List.exists
       (fun (v : Inv.violation) ->
         match v.Inv.v_inv with
         | Inv.Order { first; next } ->
             Instr.equal first (Instr.site "figure1.c:store_x")
             && Instr.equal next (Instr.site "figure1.c:unlock_g")
         | Inv.Commit _ -> false)
       violations)

let test_pclht_self_check_clean () =
  let cfg = { Analyze.default_config with Analyze.seeds = 3; Analyze.scheds_per_seed = 2 } in
  let traces = Analyze.record ~cfg Workloads.Pclht.target in
  let m = Inv.create () in
  List.iter (Inv.absorb m) traces;
  let specs = Inv.mine m in
  Alcotest.(check bool) "p-clht mines invariants" true (specs <> []);
  List.iter
    (fun tr ->
      match Inv.check specs tr with
      | [] -> ()
      | v :: _ -> Alcotest.failf "mining trace violates %s" (Inv.label v.Inv.v_inv))
    traces

(* --- the analyze driver end-to-end ------------------------------------- *)

let test_analyze_planted_full () =
  let r = Analyze.run ~cfg:Analyze.full_config Workloads.Figure1.planted in
  Alcotest.(check bool) "missing recovery-path flush found" true
    (List.exists
       (fun (f : Lint.finding) -> f.Lint.f_kind = Lint.Missing_recovery_flush)
       r.Analyzer.r_findings);
  Alcotest.(check bool) "invariants mined" true (r.Analyzer.r_invariants <> [])

let test_analyze_figure1_no_recovery_class () =
  (* figure1's recovery is empty: the recovery-path class never fires. *)
  let r = Analyze.run ~cfg:Analyze.full_config Workloads.Figure1.target in
  Alcotest.(check bool) "no missing-recovery-flush on figure1" false
    (List.exists
       (fun (f : Lint.finding) -> f.Lint.f_kind = Lint.Missing_recovery_flush)
       r.Analyzer.r_findings)

let test_analyze_default_unchanged () =
  (* The default config keeps the v1 behaviour: no taxonomy classes, no
     invariants. *)
  let r = Analyze.run Workloads.Figure1.planted in
  Alcotest.(check bool) "no taxonomy findings" true
    (List.for_all
       (fun (f : Lint.finding) ->
         match f.Lint.f_kind with
         | Lint.Double_flush | Lint.Cross_region_order | Lint.Unflushed_at_exit
         | Lint.Missing_recovery_flush ->
             false
         | _ -> true)
       r.Analyzer.r_findings);
  Alcotest.(check (list string)) "no invariants" []
    (List.map (fun (s : Inv.spec) -> Inv.label s.Inv.inv) r.Analyzer.r_invariants)

(* --- the fuzzer-side monitor ------------------------------------------- *)

let test_monitor_flags_planted () =
  let specs = Lazy.force fig1_specs in
  let mon = Pmrace.Inv_monitor.create specs in
  let target = Workloads.Figure1.planted in
  let rng = Sched.Rng.create 17 in
  let hits = ref [] in
  for _ = 1 to 5 do
    let seed = Pmrace.Seed.gen rng target.Pmrace.Target.profile in
    let input =
      Pmrace.Campaign.input ~sched_seed:(Sched.Rng.int rng 1_000_000_000)
        ~policy:Pmrace.Campaign.Random_sched target seed
    in
    ignore (Pmrace.Campaign.run ~listeners:[ Pmrace.Inv_monitor.attach mon ] input);
    hits := Pmrace.Inv_monitor.drain mon @ !hits
  done;
  match
    List.find_opt
      (fun (h : Pmrace.Inv_monitor.hit) ->
        Instr.equal h.h_site (Instr.site "figure1.c:unlock_g"))
      !hits
  with
  | None -> Alcotest.fail "expected the monitor to flag the planted ordering bug"
  | Some h ->
      Alcotest.(check bool) "image captured" true (h.h_image <> None);
      Alcotest.(check bool) "pending source words recorded" true (h.h_words <> []);
      (* Post-failure validation: recovery never persists x, so the hit
         is a confirmed ordering bug, not a false positive. *)
      (match
         Pmrace.Post_failure.validate
           (Pmrace.Post_failure.ctx target)
           (Pmrace.Post_failure.Candidate.Ordering { crash = h.h_crash; eff_words = h.h_words })
       with
      | Pmrace.Post_failure.Bug _ -> ()
      | v -> Alcotest.failf "expected a bug verdict, got %a" Pmrace.Post_failure.pp_verdict v)

let test_fuzzer_invariants_session () =
  let cfg =
    Pmrace.Fuzzer.Config.make ~max_campaigns:30 ~master_seed:3 ~invariants:true ()
  in
  let s = Pmrace.Fuzzer.run Workloads.Figure1.target cfg in
  (* The pre-pass mined a monitor set.  Fuzzed schedules explore beyond
     the mining set, so violations may legitimately occur (figure1 is a
     buggy program); what must hold is that every violation was routed
     through post-failure validation and carries a verdict. *)
  Alcotest.(check bool) "monitor set installed" true (Pmrace.Report.invariants s.report <> []);
  List.iter
    (fun (f : Pmrace.Report.inv_finding) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s validated" f.Pmrace.Report.iv_label)
        true
        (f.Pmrace.Report.iv_verdict <> None))
    (Pmrace.Report.invariant_findings s.report)

let test_fuzzer_invariants_off_by_default () =
  let cfg = Pmrace.Fuzzer.Config.make ~max_campaigns:5 ~master_seed:3 () in
  let s = Pmrace.Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check bool) "no monitor set" true (Pmrace.Report.invariants s.report = [])

(* --- v2 artifacts ------------------------------------------------------- *)

let test_artifact_v2_roundtrip () =
  let target = Workloads.Figure1.target in
  let cfg =
    Pmrace.Fuzzer.Config.make ~max_campaigns:20 ~master_seed:3 ~static_prepass:true
      ~invariants:true ()
  in
  let s = Pmrace.Fuzzer.run target cfg in
  let a = Pmrace.Artifact.of_session ~target ~cfg s in
  Alcotest.(check bool) "lint entries present" true (a.Pmrace.Artifact.a_lint <> []);
  Alcotest.(check bool) "mined invariants present" true (a.Pmrace.Artifact.a_invariants <> []);
  match Pmrace.Artifact.of_json (Pmrace.Artifact.to_json a) with
  | Error e -> Alcotest.failf "v2 artifact did not decode: %s" e
  | Ok a' ->
      Alcotest.(check int) "lint entries survive" (List.length a.Pmrace.Artifact.a_lint)
        (List.length a'.Pmrace.Artifact.a_lint);
      Alcotest.(check bool) "lint lists identical" true
        (a.Pmrace.Artifact.a_lint = a'.Pmrace.Artifact.a_lint);
      Alcotest.(check bool) "invariant lists identical" true
        (a.Pmrace.Artifact.a_invariants = a'.Pmrace.Artifact.a_invariants);
      Alcotest.(check bool) "violation lists identical" true
        (a.Pmrace.Artifact.a_inv_findings = a'.Pmrace.Artifact.a_inv_findings);
      Alcotest.(check bool) "config.invariants survives" true
        a'.Pmrace.Artifact.a_config.Pmrace.Fuzzer.invariants

let test_artifact_v1_compat () =
  (* A v1 document — no lint/invariants sections, no config.invariants,
     version 1 — must still decode, with the new fields empty/false. *)
  let module J = Obs.Json in
  let target = Workloads.Figure1.target in
  let cfg = Pmrace.Fuzzer.Config.make ~max_campaigns:20 ~master_seed:3 () in
  let s = Pmrace.Fuzzer.run target cfg in
  let a = Pmrace.Artifact.of_session ~target ~cfg s in
  let strip_v2 = function
    | J.Obj fields ->
        J.Obj
          (List.filter_map
             (fun (k, v) ->
               match (k, v) with
               | "version", _ -> Some (k, J.Int 1)
               | ("lint" | "invariants"), _ -> None
               | "config", J.Obj cf ->
                   Some (k, J.Obj (List.filter (fun (ck, _) -> ck <> "invariants") cf))
               | _ -> Some (k, v))
             fields)
    | j -> j
  in
  match Pmrace.Artifact.of_json (strip_v2 (Pmrace.Artifact.to_json a)) with
  | Error e -> Alcotest.failf "v1 artifact did not decode: %s" e
  | Ok a' ->
      Alcotest.(check int) "campaigns survive" a.Pmrace.Artifact.a_campaigns
        a'.Pmrace.Artifact.a_campaigns;
      Alcotest.(check bool) "lint defaults empty" true (a'.Pmrace.Artifact.a_lint = []);
      Alcotest.(check bool) "invariants default empty" true
        (a'.Pmrace.Artifact.a_invariants = [] && a'.Pmrace.Artifact.a_inv_findings = []);
      Alcotest.(check bool) "config.invariants defaults false" false
        a'.Pmrace.Artifact.a_config.Pmrace.Fuzzer.invariants

(* --- registry hygiene ---------------------------------------------------- *)

let test_planted_not_listed () =
  Alcotest.(check bool) "findable by name" true
    (Workloads.Registry.find "figure1-planted" <> None);
  Alcotest.(check bool) "not in the listed names" false
    (List.mem "figure1-planted" (Workloads.Registry.names ()))

let suite =
  [
    Alcotest.test_case "lint: double flush" `Quick test_double_flush;
    Alcotest.test_case "lint: double flush gated by taxonomy" `Quick test_double_flush_gated;
    Alcotest.test_case "lifecycle: end-of-trace residue" `Quick test_dirty_words_residue;
    Alcotest.test_case "lint: cross-region ordering" `Quick test_cross_region;
    Alcotest.test_case "lint: findings order-deterministic" `Quick test_findings_order_deterministic;
    Alcotest.test_case "invariants: order mining + violation" `Quick test_order_invariant;
    Alcotest.test_case "invariants: min support" `Quick test_order_min_support;
    Alcotest.test_case "invariants: commit mining + violation" `Quick test_commit_invariant;
    Alcotest.test_case "invariants: figure1 mines store->unlock" `Quick
      test_fig1_mines_store_before_unlock;
    Alcotest.test_case "invariants: figure1 self-check clean" `Quick test_fig1_self_check_clean;
    Alcotest.test_case "invariants: planted violates figure1 specs" `Quick
      test_planted_violates_fig1_specs;
    Alcotest.test_case "invariants: p-clht self-check clean" `Slow test_pclht_self_check_clean;
    Alcotest.test_case "analyze: planted full run" `Quick test_analyze_planted_full;
    Alcotest.test_case "analyze: figure1 has no recovery-flush class" `Quick
      test_analyze_figure1_no_recovery_class;
    Alcotest.test_case "analyze: default config unchanged" `Quick test_analyze_default_unchanged;
    Alcotest.test_case "monitor: flags the planted ordering bug" `Quick test_monitor_flags_planted;
    Alcotest.test_case "fuzzer: --invariants session" `Quick test_fuzzer_invariants_session;
    Alcotest.test_case "fuzzer: invariants off by default" `Quick
      test_fuzzer_invariants_off_by_default;
    Alcotest.test_case "artifact: v2 roundtrip" `Quick test_artifact_v2_roundtrip;
    Alcotest.test_case "artifact: v1 compat" `Quick test_artifact_v1_compat;
    Alcotest.test_case "registry: planted opt-in only" `Quick test_planted_not_listed;
  ]

(* The persistent-mode execution engine: O(touched) context reuse, the
   fresh-mode legacy path behind the same API, and — the core invariant —
   cross-campaign isolation: a reused context produces campaigns
   bit-identical to fresh-environment runs, even after an adversarial
   campaign dirtied every layer of state it can reach. *)

module Engine = Pmrace.Engine
module Campaign = Pmrace.Campaign
module Seed = Pmrace.Seed
module Pool = Pmem.Pool
module Env = Runtime.Env
module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates
module Dram = Runtime.Dram

(* Everything observable about a campaign, for bit-identity comparison:
   both pool images, candidates, inconsistencies, sync events, pending
   side effects, pool statistics, and the scheduler outcome. *)
type fingerprint = {
  f_volatile : int64 array;
  f_durable : int64 array;
  f_cands : (int * Candidates.kind * int * int * int * int * int) list;
  f_incs : (int * int * int * bool * bool * int list) list;
  f_syncs : (string * int * int64) list;
  f_pending : (int * int * int) list;
  f_stats : Pool.stats;
  f_steps : int;
  f_finished : int list;
  f_hung : bool;
}

let fingerprint (r : Campaign.result) =
  let env = r.env in
  let pool = env.Env.pool in
  let ck = env.Env.checkers in
  let cand (c : Candidates.cand) =
    ( c.id,
      c.kind,
      c.addr,
      Runtime.Instr.to_int c.read_instr,
      c.read_tid,
      Runtime.Instr.to_int c.write_instr,
      c.write_tid )
  in
  {
    f_volatile = Array.init (Pool.size pool) (Pool.peek pool);
    f_durable = Array.init (Pool.size pool) (Pool.image_word (Pool.crash_image pool));
    f_cands =
      List.map cand
        (Candidates.unique (Checkers.candidates ck) Candidates.Inter
        @ Candidates.unique (Checkers.candidates ck) Candidates.Intra);
    f_incs =
      List.map
        (fun (i : Checkers.inconsistency) ->
          ( i.source.Candidates.id,
            i.eff_addr,
            i.eff_tid,
            i.addr_flow,
            i.external_effect,
            i.eff_words ))
        (Checkers.inconsistencies ck);
    f_syncs =
      List.map
        (fun (s : Checkers.sync_event) -> (s.var.Checkers.sv_name, s.sy_addr, s.sy_value))
        (Checkers.sync_events ck);
    f_pending =
      List.map
        (fun (e : Checkers.side_effect) ->
          (e.se_addr, Runtime.Instr.to_int e.se_instr, e.se_tid))
        (Checkers.pending_effects ck);
    f_stats = Pool.stats pool;
    f_steps = r.outcome.steps;
    f_finished = List.sort compare r.outcome.finished;
    f_hung = r.hung;
  }

let check_fp msg a b =
  Alcotest.(check bool) (msg ^ ": volatile image") true (a.f_volatile = b.f_volatile);
  Alcotest.(check bool) (msg ^ ": durable image") true (a.f_durable = b.f_durable);
  Alcotest.(check bool) (msg ^ ": candidates") true (a.f_cands = b.f_cands);
  Alcotest.(check bool) (msg ^ ": inconsistencies") true (a.f_incs = b.f_incs);
  Alcotest.(check bool) (msg ^ ": sync events") true (a.f_syncs = b.f_syncs);
  Alcotest.(check bool) (msg ^ ": pending effects") true (a.f_pending = b.f_pending);
  Alcotest.(check bool) (msg ^ ": pool stats") true (a.f_stats = b.f_stats);
  Alcotest.(check int) (msg ^ ": scheduler steps") a.f_steps b.f_steps;
  Alcotest.(check (list int)) (msg ^ ": finished tids") a.f_finished b.f_finished;
  Alcotest.(check bool) (msg ^ ": hung") a.f_hung b.f_hung

(* A deterministic batch of campaign inputs for one target. *)
let inputs (target : Pmrace.Target.t) n =
  let rng = Sched.Rng.create 99 in
  List.init n (fun _ ->
      let seed = Seed.gen rng target.Pmrace.Target.profile in
      let sched_seed = Sched.Rng.int rng 1_000_000_000 in
      Campaign.input ~sched_seed ~policy:Campaign.Random_sched target seed)

(* Dirty every layer of reusable state the engine hands out: pool words
   (left dirty AND pending), DRAM keys, taint labels, and checker state
   (candidates, pending effects, sync annotations). *)
let adversarial_key : int Dram.key = Dram.key ~name:"test-engine-adversary" ()

let vandalise (env : Env.t) =
  let pool = env.Env.pool in
  for w = 0 to Pool.size pool - 1 do
    Pool.store pool ~tid:9 ~instr:0 w 0xDEADBEEFL
  done;
  Pool.clwb pool 0 (* leave line 0 pending, the rest dirty *);
  Dram.set env.Env.dram adversarial_key 12345;
  Env.set_mem_taint env 7 (Runtime.Taint.singleton 41);
  Env.annotate_sync env ~name:"bogus-var" ~addr:3 ~len:1 ~init:77L;
  ignore
    (Checkers.on_load env.Env.checkers pool ~tid:9 ~instr:(Runtime.Instr.of_int 0) ~addr:1)

(* Campaign B on a reused engine context must be bit-identical to the same
   campaign on a fresh environment — even when campaign A was followed by
   direct vandalism of every mutable layer. *)
let test_isolation (target : Pmrace.Target.t) () =
  match inputs target 3 with
  | [ a; b; c ] ->
      let engine = Engine.create ~use_checkpoint:true target in
      (* Reference: each campaign in its own legacy fresh environment,
         restored from its own checkpoint like the legacy fuzzer did. *)
      let snapshot = Engine.prepare_snapshot target in
      let fresh i =
        fingerprint (Campaign.run { i with Campaign.snapshot = Some snapshot })
      in
      let ref_a = fresh a and ref_b = fresh b and ref_c = fresh c in
      let r_a = Campaign.run ~engine a in
      check_fp "campaign A (engine vs fresh)" ref_a (fingerprint r_a);
      vandalise r_a.Campaign.env;
      let r_b = Campaign.run ~engine b in
      check_fp "campaign B after vandalism" ref_b (fingerprint r_b);
      vandalise r_b.Campaign.env;
      let r_c = Campaign.run ~engine c in
      check_fp "campaign C after vandalism" ref_c (fingerprint r_c);
      Alcotest.(check int) "engine served all checkouts" 3 (Engine.checkouts engine)
  | _ -> assert false

(* Fresh mode (expensive_init = false targets): the engine's checkout is
   the legacy construction, so results match legacy Campaign.run exactly. *)
let test_fresh_mode_identical () =
  let target = Workloads.Figure1.target in
  let engine = Engine.create ~use_checkpoint:false target in
  Alcotest.(check bool) "fresh mode" false (Engine.persistent engine);
  List.iter
    (fun i ->
      let legacy = fingerprint (Campaign.run i) in
      let engined = fingerprint (Campaign.run ~engine i) in
      check_fp "fresh-mode checkout" legacy engined)
    (inputs target 3)

(* use_checkpoint defaults to the target's expensive_init. *)
let test_mode_default () =
  Alcotest.(check bool) "figure1 defaults to fresh" false
    (Engine.persistent (Engine.create Workloads.Figure1.target));
  Alcotest.(check bool) "p-clht defaults to persistent" true
    (Engine.persistent (Engine.create Workloads.Pclht.target))

(* The acceptance criterion: persistent-mode reset work is proportional to
   the words the campaign touched, not the pool size. *)
let test_reset_o_touched () =
  let target = Workloads.Pclht.target in
  let engine = Engine.create ~use_checkpoint:true target in
  let i = List.hd (inputs target 1) in
  ignore (Campaign.run ~engine i);
  ignore (Campaign.run ~engine i);
  let touched = Engine.last_reset_touched engine in
  Alcotest.(check bool) "campaign touched something" true (touched > 0);
  Alcotest.(check bool)
    (Printf.sprintf "reset undid %d words, well under the %d-word pool" touched
       target.Pmrace.Target.pool_words)
    true
    (touched < target.Pmrace.Target.pool_words / 2)

(* Transient listeners attached for one campaign must be gone after the
   next checkout. *)
let test_transient_listeners_cleared () =
  let target = Workloads.Pclht.target in
  let engine = Engine.create ~use_checkpoint:true target in
  let i = List.hd (inputs target 1) in
  let hits = ref 0 in
  let listener env = Env.add_listener env (fun _ -> incr hits) in
  ignore (Campaign.run ~engine ~listeners:[ listener ] i);
  let first = !hits in
  Alcotest.(check bool) "listener observed campaign 1" true (first > 0);
  ignore (Campaign.run ~engine i);
  Alcotest.(check int) "listener detached by next checkout" first !hits

(* With a deterministic init, checkpoint-on and checkpoint-off engines
   yield bit-identical campaigns: restore semantics (images + seq + stats)
   make the two pool setups indistinguishable. *)
let test_checkpoint_on_off_identical () =
  let target = Workloads.Figure1.target in
  let on = Engine.create ~use_checkpoint:true target in
  let off = Engine.create ~use_checkpoint:false target in
  List.iter
    (fun i ->
      check_fp "checkpoint on ≡ off"
        (fingerprint (Campaign.run ~engine:on i))
        (fingerprint (Campaign.run ~engine:off i)))
    (inputs target 2)

let suite =
  [
    Alcotest.test_case "adversarial isolation (figure1)" `Quick
      (test_isolation Workloads.Figure1.target);
    Alcotest.test_case "adversarial isolation (p-clht)" `Slow
      (test_isolation Workloads.Pclht.target);
    Alcotest.test_case "fresh mode ≡ legacy" `Quick test_fresh_mode_identical;
    Alcotest.test_case "mode defaults to expensive_init" `Quick test_mode_default;
    Alcotest.test_case "reset is O(touched)" `Quick test_reset_o_touched;
    Alcotest.test_case "transient listeners cleared" `Quick test_transient_listeners_cleared;
    Alcotest.test_case "checkpoint on ≡ off (deterministic init)" `Quick
      test_checkpoint_on_off_identical;
  ]

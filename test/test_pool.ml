(* Pool: the visibility/persistency gap, flush/fence pipeline, crash
   images, snapshots, eviction. *)

open Pmem

let mk () = Pool.create ~words:256 ()

let test_create_invalid () =
  Alcotest.check_raises "non-multiple size" (Invalid_argument
    "Pool.create: size must be a positive multiple of the line size")
    (fun () -> ignore (Pool.create ~words:100 ()));
  Alcotest.check_raises "zero size" (Invalid_argument
    "Pool.create: size must be a positive multiple of the line size")
    (fun () -> ignore (Pool.create ~words:0 ()))

let test_store_visible_not_durable () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 42L;
  Alcotest.(check int64) "visible" 42L (Pool.load p 10);
  Alcotest.(check bool) "dirty" true (Pool.is_dirty p 10);
  let img = Pool.crash_image p in
  Alcotest.(check int64) "not durable" 0L (Pool.image_word img 10)

let test_flush_fence_persists () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 42L;
  Pool.clwb p 10;
  Alcotest.(check bool) "clean after clwb" false (Pool.is_dirty p 10);
  Alcotest.(check bool) "pending after clwb" true (Pool.is_pending p 10);
  let img = Pool.crash_image p in
  Alcotest.(check int64) "unfenced write-back lost on crash" 0L (Pool.image_word img 10);
  let persisted = Pool.sfence p in
  Alcotest.(check (list int)) "fence reports word" [ 10 ] persisted;
  Alcotest.(check int64) "durable" 42L (Pool.image_word (Pool.crash_image p) 10)

let test_line_granular_flush () =
  let p = mk () in
  (* Words 8..15 share a line; 16 does not. *)
  Pool.store p ~tid:0 ~instr:1 8 1L;
  Pool.store p ~tid:0 ~instr:1 15 2L;
  Pool.store p ~tid:0 ~instr:1 16 3L;
  Pool.clwb p 9;
  ignore (Pool.sfence p);
  let img = Pool.crash_image p in
  Alcotest.(check int64) "same line persisted (low)" 1L (Pool.image_word img 8);
  Alcotest.(check int64) "same line persisted (high)" 2L (Pool.image_word img 15);
  Alcotest.(check int64) "next line not persisted" 0L (Pool.image_word img 16)

let test_store_after_clwb_needs_reflush () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 1L;
  Pool.clwb p 10;
  Pool.store p ~tid:0 ~instr:2 10 2L;
  ignore (Pool.sfence p);
  (* The second store invalidated the pending write-back. *)
  Alcotest.(check int64) "second store not persisted" 0L
    (Pool.image_word (Pool.crash_image p) 10);
  Alcotest.(check bool) "still dirty" true (Pool.is_dirty p 10)

let test_movnt () =
  let p = mk () in
  Pool.movnt p ~tid:3 ~instr:7 20 99L;
  Alcotest.(check bool) "movnt is never dirty" false (Pool.is_dirty p 20);
  Alcotest.(check int64) "visible at once" 99L (Pool.load p 20);
  Alcotest.(check int64) "durable only after fence" 0L
    (Pool.image_word (Pool.crash_image p) 20);
  ignore (Pool.sfence p);
  Alcotest.(check int64) "durable after fence" 99L (Pool.image_word (Pool.crash_image p) 20)

let test_dirty_writer () =
  let p = mk () in
  Pool.store p ~tid:3 ~instr:7 11 5L;
  (match Pool.dirty_writer p 11 with
  | Some w ->
      Alcotest.(check int) "tid" 3 w.Pool.tid;
      Alcotest.(check int) "instr" 7 w.Pool.instr
  | None -> Alcotest.fail "expected dirty writer");
  Pool.clwb p 11;
  Alcotest.(check bool) "clean after flush" true (Pool.dirty_writer p 11 = None)

let test_eviction () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  let evicted = Pool.evict_line p (10 / Cacheline.words_per_line) in
  Alcotest.(check (list int)) "evicted words" [ 10 ] evicted;
  Alcotest.(check bool) "clean after eviction" false (Pool.is_dirty p 10);
  Alcotest.(check int64) "durable after eviction" 7L (Pool.image_word (Pool.crash_image p) 10)

let test_of_image () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  Pool.clwb p 10;
  ignore (Pool.sfence p);
  Pool.store p ~tid:0 ~instr:1 11 8L (* lost *);
  let p2 = Pool.of_image (Pool.crash_image p) in
  Alcotest.(check int64) "persisted data survives" 7L (Pool.load p2 10);
  Alcotest.(check int64) "volatile data lost" 0L (Pool.load p2 11);
  Alcotest.(check (list int)) "fresh pool clean" [] (Pool.dirty_words p2)

let test_snapshot_restore () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  Pool.quiesce p;
  let snap = Pool.snapshot p in
  Pool.store p ~tid:0 ~instr:1 10 100L;
  Pool.store p ~tid:0 ~instr:1 50 1L;
  Pool.restore p snap;
  Alcotest.(check int64) "restored value" 7L (Pool.load p 10);
  Alcotest.(check int64) "other word restored" 0L (Pool.load p 50);
  Alcotest.(check (list int)) "no dirty words after restore" [] (Pool.dirty_words p)

let test_quiesce () =
  let p = mk () in
  for w = 0 to 31 do
    Pool.store p ~tid:0 ~instr:1 w (Int64.of_int w)
  done;
  Pool.quiesce p;
  Alcotest.(check (list int)) "all clean" [] (Pool.dirty_words p);
  Alcotest.(check int64) "all durable" 31L (Pool.image_word (Pool.crash_image p) 31)

let test_bounds () =
  let p = mk () in
  Alcotest.check_raises "load oob"
    (Invalid_argument "Pool: word offset 256 out of bounds [0,256)") (fun () ->
      ignore (Pool.load p 256));
  Alcotest.check_raises "negative"
    (Invalid_argument "Pool: word offset -1 out of bounds [0,256)") (fun () ->
      ignore (Pool.load p (-1)))

let test_durably_equal_and_pending () =
  let p = mk () in
  Alcotest.(check bool) "fresh word durably equal" true (Pool.is_durably_equal p 10);
  Pool.store p ~tid:0 ~instr:1 10 5L;
  Alcotest.(check bool) "diverged after store" false (Pool.is_durably_equal p 10);
  Pool.clwb p 10;
  Alcotest.(check (list int)) "pending words" [ 10 ] (Pool.pending_words p);
  ignore (Pool.sfence p);
  Alcotest.(check bool) "converged after persist" true (Pool.is_durably_equal p 10);
  Alcotest.(check (list int)) "nothing pending" [] (Pool.pending_words p)

let test_image_words () =
  let p = mk () in
  Alcotest.(check int) "image size" 256 (Pool.image_words (Pool.crash_image p))

let test_stats () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 0 1L;
  ignore (Pool.load p 0);
  Pool.movnt p ~tid:0 ~instr:1 8 1L;
  Pool.clwb p 0;
  ignore (Pool.sfence p);
  let s = Pool.stats p in
  Alcotest.(check int) "stores" 1 s.Pool.stores;
  Alcotest.(check int) "loads" 1 s.Pool.loads;
  Alcotest.(check int) "movnts" 1 s.Pool.movnts;
  Alcotest.(check int) "flushes" 1 s.Pool.flushes;
  Alcotest.(check int) "fences" 1 s.Pool.fences

(* Restore round-trip audit: nothing campaign-local may leak across a
   restore — not the access counters, not the store-sequence numbers that
   feed [dirty_writer], not pending write-backs. *)
let test_restore_resets_stats_and_seq () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  Pool.quiesce p;
  let snap = Pool.snapshot p in
  let base = Pool.stats p in
  (* Campaign A: loads, stores, flushes, fences, plus a pending write-back
     left in flight on purpose. *)
  ignore (Pool.load p 10);
  Pool.store p ~tid:2 ~instr:9 20 1L;
  Pool.movnt p ~tid:2 ~instr:9 24 2L;
  Pool.clwb p 20;
  Pool.restore p snap;
  Alcotest.(check bool) "stats restored to snapshot" true (Pool.stats p = base);
  Alcotest.(check (list int)) "no pending write-backs survive" [] (Pool.pending_words p);
  (* Campaign B's first store must see the same sequence number campaign A's
     first store saw: writer identity is part of the checkers' input. *)
  Pool.store p ~tid:0 ~instr:1 30 1L;
  let seq_b =
    match Pool.dirty_writer p 30 with Some w -> w.Pool.seq | None -> Alcotest.fail "dirty"
  in
  Pool.restore p snap;
  Pool.store p ~tid:0 ~instr:1 40 1L;
  let seq_b' =
    match Pool.dirty_writer p 40 with Some w -> w.Pool.seq | None -> Alcotest.fail "dirty"
  in
  Alcotest.(check int) "writer seq identical across restores" seq_b seq_b'

let test_snapshot_requires_quiesced () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  Alcotest.check_raises "dirty pool rejected"
    (Invalid_argument "Pool.snapshot: pool not quiesced (dirty or pending words)") (fun () ->
      ignore (Pool.snapshot p));
  Pool.clwb p 10;
  Alcotest.check_raises "pending pool rejected"
    (Invalid_argument "Pool.snapshot: pool not quiesced (dirty or pending words)") (fun () ->
      ignore (Pool.snapshot p));
  ignore (Pool.sfence p);
  ignore (Pool.snapshot p)

let test_reset_to_snapshot_o_touched () =
  let p = Pool.create ~words:4096 () in
  Pool.store p ~tid:0 ~instr:1 100 7L;
  Pool.quiesce p;
  let snap = Pool.snapshot p in
  Alcotest.(check int) "journal empty at baseline" 0 (Pool.touched_words p);
  (* A campaign touching 3 words out of 4096. *)
  Pool.store p ~tid:1 ~instr:2 100 1L;
  Pool.store p ~tid:1 ~instr:2 200 2L;
  Pool.movnt p ~tid:1 ~instr:2 300 3L;
  Pool.store p ~tid:1 ~instr:2 100 4L (* re-touch: journaled once *);
  ignore (Pool.sfence p);
  Alcotest.(check int) "journal records touched words once" 3 (Pool.touched_words p);
  Pool.reset_to_snapshot p snap;
  Alcotest.(check int) "journal empty after reset" 0 (Pool.touched_words p);
  Alcotest.(check int64) "touched word restored" 7L (Pool.load p 100);
  Alcotest.(check int64) "movnt'd word restored" 0L (Pool.load p 300);
  Alcotest.(check (list int)) "no dirty words" [] (Pool.dirty_words p);
  Alcotest.(check (list int)) "no pending words" [] (Pool.pending_words p)

let test_reset_to_snapshot_equals_restore () =
  (* Same campaign replayed twice — once undone by O(pool) restore, once by
     O(touched) reset — must leave bit-identical pools. *)
  let campaign p =
    Pool.store p ~tid:1 ~instr:2 8 1L;
    Pool.store p ~tid:1 ~instr:3 9 2L;
    Pool.clwb p 8;
    Pool.movnt p ~tid:2 ~instr:4 64 3L;
    ignore (Pool.sfence p);
    ignore (Pool.evict_line p 2);
    ignore (Pool.load p 9)
  in
  let p1 = mk () and p2 = mk () in
  Pool.store p1 ~tid:0 ~instr:1 0 5L;
  Pool.store p2 ~tid:0 ~instr:1 0 5L;
  Pool.quiesce p1;
  Pool.quiesce p2;
  let s1 = Pool.snapshot p1 and s2 = Pool.snapshot p2 in
  campaign p1;
  campaign p2;
  Pool.restore p1 s1;
  Pool.reset_to_snapshot p2 s2;
  for w = 0 to Pool.size p1 - 1 do
    if not (Int64.equal (Pool.peek p1 w) (Pool.peek p2 w)) then
      Alcotest.failf "volatile image differs at word %d" w;
    if
      not
        (Int64.equal
           (Pool.image_word (Pool.crash_image p1) w)
           (Pool.image_word (Pool.crash_image p2) w))
    then Alcotest.failf "durable image differs at word %d" w
  done;
  Alcotest.(check bool) "stats identical" true (Pool.stats p1 = Pool.stats p2)

let test_reset_to_snapshot_wrong_baseline () =
  let p = mk () and q = mk () in
  Pool.quiesce p;
  Pool.quiesce q;
  let sp = Pool.snapshot p in
  let sq = Pool.snapshot q in
  Alcotest.check_raises "foreign snapshot rejected"
    (Invalid_argument
       "Pool.reset_to_snapshot: snapshot is not this pool's baseline (use restore first)")
    (fun () -> Pool.reset_to_snapshot p sq);
  (* restore re-establishes the baseline, after which reset works. *)
  Pool.restore p sq;
  Pool.store p ~tid:0 ~instr:1 10 1L;
  Pool.reset_to_snapshot p sq;
  Alcotest.(check int64) "reset after restore works" 0L (Pool.load p 10);
  Alcotest.check_raises "old baseline now stale"
    (Invalid_argument
       "Pool.reset_to_snapshot: snapshot is not this pool's baseline (use restore first)")
    (fun () -> Pool.reset_to_snapshot p sp)

let test_eadr_snapshot_roundtrip () =
  (* eADR pools have no writer metadata at all; the snapshot round-trip must
     still reset images and counters. *)
  let p = Pool.create ~eadr:true ~words:256 () in
  Pool.store p ~tid:0 ~instr:1 10 7L;
  Alcotest.(check bool) "eadr store never dirty" false (Pool.is_dirty p 10);
  Pool.quiesce p;
  let snap = Pool.snapshot p in
  let base = Pool.stats p in
  Pool.store p ~tid:1 ~instr:2 10 100L;
  Pool.store p ~tid:1 ~instr:2 50 1L;
  Alcotest.(check int) "eadr stores journaled" 2 (Pool.touched_words p);
  Pool.reset_to_snapshot p snap;
  Alcotest.(check int64) "volatile restored" 7L (Pool.load p 10);
  ignore (Pool.load p 10) (* undo the load we just counted *);
  Pool.restore p snap;
  Alcotest.(check int64) "durable restored" 7L (Pool.image_word (Pool.crash_image p) 10);
  Alcotest.(check int64) "other word durable-restored" 0L
    (Pool.image_word (Pool.crash_image p) 50);
  Alcotest.(check bool) "stats restored" true (Pool.stats p = base)

(* Satellite (PR 5): the fence's work is proportional to the pending-word
   index, not the pool — the O(pending) analogue of the O(touched) reset
   assertion in test_engine.ml. *)
let test_sfence_o_pending () =
  let words = 65536 in
  let p = Pool.create ~words () in
  Pool.store p ~tid:0 ~instr:1 8 1L;
  Pool.store p ~tid:0 ~instr:1 4096 2L;
  Pool.store p ~tid:0 ~instr:1 60001 3L;
  Pool.clwb p 8;
  Pool.clwb p 4096;
  Pool.clwb p 60001;
  let work = Pool.pending_index_size p in
  Alcotest.(check int) "fence examines just the flushed words" 3 work;
  Alcotest.(check bool)
    (Printf.sprintf "fence work (%d) well under the %d-word pool" work words)
    true
    (work < words / 2);
  Alcotest.(check (list int)) "ascending persisted list" [ 8; 4096; 60001 ] (Pool.sfence p);
  Alcotest.(check int) "index drained by the fence" 0 (Pool.pending_index_size p);
  (* A re-flush after the drain re-enters the index: generations retire
     stamps, they don't blacklist words. *)
  Pool.store p ~tid:0 ~instr:1 8 4L;
  Pool.clwb p 8;
  Alcotest.(check int) "re-flushed word re-indexed" 1 (Pool.pending_index_size p);
  Alcotest.(check (list int)) "and re-persisted" [ 8 ] (Pool.sfence p)

(* Pending index across epoch bumps: reset_to_snapshot after a partial
   fence must leave nothing pending, drop the in-flight write-backs, and
   keep later flush/fence rounds working. *)
let test_pending_index_across_epochs () =
  let p = mk () in
  Pool.quiesce p;
  let snap = Pool.snapshot p in
  (* Partial fence: persist one line, leave another in flight. *)
  Pool.store p ~tid:0 ~instr:1 10 1L;
  Pool.clwb p 10;
  ignore (Pool.sfence p);
  Pool.store p ~tid:0 ~instr:1 20 2L;
  Pool.clwb p 20;
  Pool.movnt p ~tid:0 ~instr:1 30 3L;
  Alcotest.(check int) "clwb'd + movnt'd words in flight" 2 (Pool.pending_index_size p);
  Pool.reset_to_snapshot p snap;
  Alcotest.(check int) "epoch bump empties the index" 0 (Pool.pending_index_size p);
  Alcotest.(check (list int)) "nothing pending after reset" [] (Pool.pending_words p);
  Alcotest.(check (list int)) "post-reset fence persists nothing" [] (Pool.sfence p);
  Alcotest.(check int64) "in-flight write-back dropped" 0L
    (Pool.image_word (Pool.crash_image p) 20);
  Alcotest.(check int64) "fenced word rewound" 0L (Pool.image_word (Pool.crash_image p) 10);
  (* The same words flush and fence normally in the new epoch. *)
  Pool.store p ~tid:0 ~instr:1 20 5L;
  Pool.clwb p 20;
  Pool.movnt p ~tid:0 ~instr:1 30 6L;
  Alcotest.(check (list int)) "new-epoch flush persists" [ 20; 30 ] (Pool.sfence p)

(* evict/movnt/clwb interleavings around fences: eviction does not drain
   the pending index (it bypasses the write-back queue), and stores after
   CLWB leave stale index entries the fence must skip. *)
let test_pending_index_evict_store_interleaving () =
  let p = mk () in
  Pool.store p ~tid:0 ~instr:1 10 1L;
  Pool.clwb p 10;
  Pool.store p ~tid:0 ~instr:2 10 2L (* invalidates the pending write-back *);
  Pool.movnt p ~tid:0 ~instr:1 40 3L;
  ignore (Pool.evict_line p (40 / Cacheline.words_per_line)) (* nothing dirty there *);
  Alcotest.(check int) "stale entry still indexed" 2 (Pool.pending_index_size p);
  Alcotest.(check (list int)) "fence skips the stale entry" [ 40 ] (Pool.sfence p);
  Alcotest.(check bool) "overwritten word still dirty" true (Pool.is_dirty p 10);
  Alcotest.(check int64) "overwritten value not persisted" 0L
    (Pool.image_word (Pool.crash_image p) 10)

(* Property (PR 5): [sfence] ≡ [sfence_scan] — run arbitrary op sequences
   on two pools in lockstep, fencing one through the O(pending) index and
   the other through the legacy full scan; every fence must return the
   same persisted list and the pools must stay bit-identical. *)
let prop_sfence_equals_scan =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [
          map2 (fun w v -> `Store (w, v)) (int_bound 63) (int_range 1 1000);
          map2 (fun w v -> `Movnt (w, v)) (int_bound 63) (int_range 1 1000);
          map (fun w -> `Clwb w) (int_bound 63);
          map (fun l -> `Evict l) (int_bound 7);
          return `Fence;
          return `Quiesce;
        ])
  in
  Test.make ~name:"pool: sfence ≡ sfence_scan (lockstep)" ~count:300
    (make Gen.(list_size (int_range 1 60) op))
    (fun ops ->
      let p1 = Pool.create ~words:64 () and p2 = Pool.create ~words:64 () in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | `Store (w, v) ->
              Pool.store p1 ~tid:0 ~instr:0 w (Int64.of_int v);
              Pool.store p2 ~tid:0 ~instr:0 w (Int64.of_int v)
          | `Movnt (w, v) ->
              Pool.movnt p1 ~tid:0 ~instr:0 w (Int64.of_int v);
              Pool.movnt p2 ~tid:0 ~instr:0 w (Int64.of_int v)
          | `Clwb w ->
              Pool.clwb p1 w;
              Pool.clwb p2 w
          | `Evict l ->
              if Pool.evict_line p1 l <> Pool.evict_line p2 l then ok := false
          | `Fence -> if Pool.sfence p1 <> Pool.sfence_scan p2 then ok := false
          | `Quiesce ->
              (* quiesce routes through the indexed fence on both pools;
                 it must agree with the scan-fenced pool's state too. *)
              Pool.quiesce p1;
              Pool.quiesce p2)
        ops;
      for w = 0 to 63 do
        if not (Int64.equal (Pool.peek p1 w) (Pool.peek p2 w)) then ok := false;
        if
          not
            (Int64.equal
               (Pool.image_word (Pool.crash_image p1) w)
               (Pool.image_word (Pool.crash_image p2) w))
        then ok := false;
        if Pool.is_dirty p1 w <> Pool.is_dirty p2 w then ok := false;
        if Pool.is_pending p1 w <> Pool.is_pending p2 w then ok := false
      done;
      if Pool.dirty_words p1 <> Pool.dirty_words p2 then ok := false;
      if Pool.pending_words p1 <> Pool.pending_words p2 then ok := false;
      !ok)

(* Property: after an arbitrary op sequence from a snapshotted baseline,
   reset_to_snapshot and restore agree bit-for-bit, and the journal never
   under-counts (every differing word is journaled). *)
let prop_reset_equals_restore =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [
          map2 (fun w v -> `Store (w, v)) (int_bound 63) (int_range 1 1000);
          map2 (fun w v -> `Movnt (w, v)) (int_bound 63) (int_range 1 1000);
          map (fun w -> `Clwb w) (int_bound 63);
          map (fun l -> `Evict l) (int_bound 7);
          return `Fence;
        ])
  in
  Test.make ~name:"pool: reset_to_snapshot ≡ restore" ~count:200
    (make Gen.(list_size (int_range 1 60) op))
    (fun ops ->
      let run p =
        List.iter
          (fun op ->
            match op with
            | `Store (w, v) -> Pool.store p ~tid:0 ~instr:0 w (Int64.of_int v)
            | `Movnt (w, v) -> Pool.movnt p ~tid:0 ~instr:0 w (Int64.of_int v)
            | `Clwb w -> Pool.clwb p w
            | `Evict l -> ignore (Pool.evict_line p l)
            | `Fence -> ignore (Pool.sfence p))
          ops
      in
      let p1 = Pool.create ~words:64 () and p2 = Pool.create ~words:64 () in
      Pool.store p1 ~tid:0 ~instr:0 0 9L;
      Pool.store p2 ~tid:0 ~instr:0 0 9L;
      Pool.quiesce p1;
      Pool.quiesce p2;
      let s1 = Pool.snapshot p1 and s2 = Pool.snapshot p2 in
      run p1;
      run p2;
      Pool.restore p1 s1;
      Pool.reset_to_snapshot p2 s2;
      let ok = ref (Pool.stats p1 = Pool.stats p2) in
      for w = 0 to 63 do
        if not (Int64.equal (Pool.peek p1 w) (Pool.peek p2 w)) then ok := false;
        if
          not
            (Int64.equal
               (Pool.image_word (Pool.crash_image p1) w)
               (Pool.image_word (Pool.crash_image p2) w))
        then ok := false
      done;
      !ok)

(* Property: after arbitrary (store | movnt | clwb | fence) sequences,
   crash + reboot never exposes a value that was never stored, and every
   fence-persisted word reads back its last pre-fence value. *)
let prop_crash_soundness =
  let open QCheck in
  let op =
    Gen.(
      oneof
        [
          map2 (fun w v -> `Store (w, v)) (int_bound 63) (int_range 1 1000);
          map2 (fun w v -> `Movnt (w, v)) (int_bound 63) (int_range 1 1000);
          map (fun w -> `Clwb w) (int_bound 63);
          return `Fence;
        ])
  in
  Test.make ~name:"pool: crash exposes only stored values"
    ~count:200
    (make Gen.(list_size (int_range 1 60) op))
    (fun ops ->
      let p = Pool.create ~words:64 () in
      let stored = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Store (w, v) ->
              Pool.store p ~tid:0 ~instr:0 w (Int64.of_int v);
              Hashtbl.replace stored w ()
          | `Movnt (w, v) ->
              Pool.movnt p ~tid:0 ~instr:0 w (Int64.of_int v);
              Hashtbl.replace stored w ()
          | `Clwb w -> Pool.clwb p w
          | `Fence -> ignore (Pool.sfence p))
        ops;
      let img = Pool.crash_image p in
      let ok = ref true in
      for w = 0 to 63 do
        if (not (Int64.equal (Pool.image_word img w) 0L)) && not (Hashtbl.mem stored w) then
          ok := false
      done;
      !ok)

(* Property: a durable word equals either its last stored value or an
   earlier one — never a mix of unrelated data. *)
let prop_durable_is_prefix =
  let open QCheck in
  Test.make ~name:"pool: durable value is some previously stored value" ~count:200
    (make Gen.(list_size (int_range 1 40) (pair (int_bound 15) (int_range 1 100))))
    (fun writes ->
      let p = Pool.create ~words:16 () in
      let history = Hashtbl.create 16 in
      List.iteri
        (fun i (w, v) ->
          Pool.store p ~tid:0 ~instr:0 w (Int64.of_int v);
          let prev = Option.value ~default:[] (Hashtbl.find_opt history w) in
          Hashtbl.replace history w (Int64.of_int v :: prev);
          if i mod 3 = 0 then begin
            Pool.clwb p w;
            ignore (Pool.sfence p)
          end)
        writes;
      let img = Pool.crash_image p in
      let ok = ref true in
      for w = 0 to 15 do
        let d = Pool.image_word img w in
        if not (Int64.equal d 0L) then begin
          let hist = Option.value ~default:[] (Hashtbl.find_opt history w) in
          if not (List.mem d hist) then ok := false
        end
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_invalid;
    Alcotest.test_case "store visible, not durable" `Quick test_store_visible_not_durable;
    Alcotest.test_case "flush + fence persists" `Quick test_flush_fence_persists;
    Alcotest.test_case "line-granular flush" `Quick test_line_granular_flush;
    Alcotest.test_case "store after clwb needs reflush" `Quick test_store_after_clwb_needs_reflush;
    Alcotest.test_case "non-temporal stores" `Quick test_movnt;
    Alcotest.test_case "dirty writer identity" `Quick test_dirty_writer;
    Alcotest.test_case "eviction persists silently" `Quick test_eviction;
    Alcotest.test_case "boot from crash image" `Quick test_of_image;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "quiesce" `Quick test_quiesce;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "durably-equal + pending" `Quick test_durably_equal_and_pending;
    Alcotest.test_case "image size" `Quick test_image_words;
    Alcotest.test_case "restore resets stats + seq" `Quick test_restore_resets_stats_and_seq;
    Alcotest.test_case "snapshot requires quiesced pool" `Quick test_snapshot_requires_quiesced;
    Alcotest.test_case "reset_to_snapshot is O(touched)" `Quick test_reset_to_snapshot_o_touched;
    Alcotest.test_case "reset_to_snapshot ≡ restore" `Quick test_reset_to_snapshot_equals_restore;
    Alcotest.test_case "reset_to_snapshot baseline guard" `Quick
      test_reset_to_snapshot_wrong_baseline;
    Alcotest.test_case "eadr snapshot round-trip" `Quick test_eadr_snapshot_roundtrip;
    Alcotest.test_case "sfence is O(pending)" `Quick test_sfence_o_pending;
    Alcotest.test_case "pending index across epochs" `Quick test_pending_index_across_epochs;
    Alcotest.test_case "pending index: evict/store interleavings" `Quick
      test_pending_index_evict_store_interleaving;
    QCheck_alcotest.to_alcotest prop_sfence_equals_scan;
    QCheck_alcotest.to_alcotest prop_reset_equals_restore;
    QCheck_alcotest.to_alcotest prop_crash_soundness;
    QCheck_alcotest.to_alcotest prop_durable_is_prefix;
  ]

(* Deterministic cooperative scheduler: interleaving, determinism, hangs,
   failures. *)

module Rng = Sched.Rng
module Scheduler = Sched.Scheduler

let test_runs_to_completion () =
  let s = Scheduler.create ~rng:(Rng.create 1) () in
  let hits = ref 0 in
  for _ = 1 to 3 do
    ignore (Scheduler.spawn s ~name:"w" (fun () -> incr hits))
  done;
  let o = Scheduler.run s in
  Alcotest.(check int) "all ran" 3 !hits;
  Alcotest.(check int) "finished" 3 (List.length o.finished);
  Alcotest.(check bool) "completed" true (Scheduler.completed o)

let test_interleaving () =
  (* Two fibers alternate; with yields the trace must interleave rather
     than run back-to-back for every seed in a small sample. *)
  let interleaved = ref false in
  for seed = 1 to 10 do
    let s = Scheduler.create ~rng:(Rng.create seed) () in
    let trace = ref [] in
    let fiber id () =
      for i = 0 to 2 do
        trace := (id, i) :: !trace;
        Scheduler.yield ()
      done
    in
    ignore (Scheduler.spawn s ~name:"a" (fiber 0));
    ignore (Scheduler.spawn s ~name:"b" (fiber 1));
    ignore (Scheduler.run s);
    let order = List.rev_map fst !trace in
    let rec changes = function
      | a :: (b :: _ as rest) -> (if a <> b then 1 else 0) + changes rest
      | _ -> 0
    in
    if changes order > 1 then interleaved := true
  done;
  Alcotest.(check bool) "some seed interleaves" true !interleaved

let trace_for seed =
  let s = Scheduler.create ~rng:(Rng.create seed) () in
  let trace = Buffer.create 64 in
  let fiber c () =
    for _ = 0 to 4 do
      Buffer.add_char trace c;
      Scheduler.yield ()
    done
  in
  ignore (Scheduler.spawn s ~name:"a" (fiber 'a'));
  ignore (Scheduler.spawn s ~name:"b" (fiber 'b'));
  ignore (Scheduler.spawn s ~name:"c" (fiber 'c'));
  ignore (Scheduler.run s);
  Buffer.contents trace

let test_determinism () =
  Alcotest.(check string) "same seed, same schedule" (trace_for 42) (trace_for 42);
  Alcotest.(check bool) "different seeds usually differ" true
    (trace_for 1 <> trace_for 2 || trace_for 3 <> trace_for 4)

let test_budget_hang () =
  let s = Scheduler.create ~step_budget:50 ~rng:(Rng.create 1) () in
  ignore
    (Scheduler.spawn s ~name:"spinner" (fun () ->
         while true do
           Scheduler.yield ()
         done));
  let o = Scheduler.run s in
  Alcotest.(check int) "steps capped" 50 o.steps;
  Alcotest.(check (list (pair int string))) "hung" [ (0, "spinner") ] o.hung

let test_failure_capture () =
  let s = Scheduler.create ~rng:(Rng.create 1) () in
  ignore (Scheduler.spawn s ~name:"ok" (fun () -> Scheduler.yield ()));
  ignore (Scheduler.spawn s ~name:"bad" (fun () -> failwith "boom"));
  let o = Scheduler.run s in
  Alcotest.(check int) "one finished" 1 (List.length o.finished);
  (match o.failed with
  | [ (_, name, Failure m) ] ->
      Alcotest.(check string) "name" "bad" name;
      Alcotest.(check string) "message" "boom" m
  | _ -> Alcotest.fail "expected one failure");
  Alcotest.(check bool) "not completed" false (Scheduler.completed o)

let test_killed_unwinds () =
  let s = Scheduler.create ~step_budget:10 ~rng:(Rng.create 1) () in
  let cleaned = ref false in
  ignore
    (Scheduler.spawn s ~name:"w" (fun () ->
         Fun.protect
           ~finally:(fun () -> cleaned := true)
           (fun () ->
             while true do
               Scheduler.yield ()
             done)));
  ignore (Scheduler.run s);
  Alcotest.(check bool) "finalizer ran on kill" true !cleaned

let test_spawn_while_running_rejected () =
  let s = Scheduler.create ~rng:(Rng.create 1) () in
  let failed = ref false in
  ignore
    (Scheduler.spawn s ~name:"w" (fun () ->
         match Scheduler.spawn s ~name:"x" (fun () -> ()) with
         | exception Invalid_argument _ -> failed := true
         | _ -> ()));
  ignore (Scheduler.run s);
  Alcotest.(check bool) "spawn rejected mid-run" true !failed

let test_on_step () =
  let s = Scheduler.create ~rng:(Rng.create 1) () in
  let steps = ref [] in
  ignore (Scheduler.spawn s ~name:"w" (fun () -> Scheduler.yield ()));
  let o = Scheduler.run ~on_step:(fun tid -> steps := tid :: !steps) s in
  Alcotest.(check int) "on_step per step" o.steps (List.length !steps)

(* Satellite (PR 5): Obs metrics must record the per-run step *delta*.
   [t.steps] is cumulative (the budget and outcome observe it), so a
   reused scheduler value used to re-add the running total on every run. *)
let test_metrics_record_per_run_delta () =
  Obs.Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.Metrics.set_enabled false) @@ fun () ->
  Obs.Metrics.reset ();
  let s = Scheduler.create ~rng:(Rng.create 7) () in
  for _ = 1 to 3 do
    ignore
      (Scheduler.spawn s ~name:"w" (fun () ->
           Scheduler.yield ();
           Scheduler.yield ()))
  done;
  let steps_total () =
    List.fold_left
      (fun acc (r : Obs.Metrics.reading) ->
        match r.r_value with
        | Obs.Metrics.Counter n when String.equal r.r_name "sched_steps_total" -> acc + n
        | _ -> acc)
      0 (Obs.Metrics.snapshot ())
  in
  let o1 = Scheduler.run s in
  Alcotest.(check int) "first run records its steps" o1.steps (steps_total ());
  (* Re-running a finished scheduler takes no steps: the counter must not
     move, even though outcome.steps stays cumulative. *)
  let o2 = Scheduler.run s in
  Alcotest.(check int) "outcome.steps stays cumulative" o1.steps o2.steps;
  Alcotest.(check int) "re-run adds only the delta (0)" o1.steps (steps_total ())

(* Satellite (PR 5): the index-based pick of [run] must consume the exact
   RNG sequence of the legacy list-based [Rng.pick] loop over the same
   runnable sets, and produce the same schedule.  [run_reference] *is* the
   legacy loop, so running both on identical programs and comparing the
   picked-tid trace, the outcome, and the subsequent RNG draws (stream
   position) pins the invariant across seeds, fiber counts, and budgets. *)
let prop_pick_stream_compatible =
  QCheck.Test.make
    ~name:"scheduler: run ≡ run_reference (RNG stream + schedule + outcome)" ~count:120
    QCheck.(
      quad small_int (int_range 1 12) (int_range 0 10) (int_range 1 400))
    (fun (seed, nfibers, yields, budget) ->
      let run_with runner =
        let rng = Rng.create seed in
        let s = Scheduler.create ~step_budget:budget ~rng () in
        (* Fibers differ in length (i mod 3 extra yields) so they leave the
           runnable set at staggered times, and every third fiber crashes
           at its end, exercising the Crashed removal path too. *)
        for i = 0 to nfibers - 1 do
          ignore
            (Scheduler.spawn s ~name:(string_of_int i) (fun () ->
                 for _ = 1 to yields + (i mod 3) do
                   Scheduler.yield ()
                 done;
                 if i mod 3 = 2 then failwith "boom"))
        done;
        let trace = ref [] in
        let o = runner ~on_step:(fun tid -> trace := tid :: !trace) s in
        let stream_tail = List.init 3 (fun _ -> Rng.next rng) in
        ( List.rev !trace,
          o.Scheduler.steps,
          List.sort compare o.finished,
          o.hung,
          List.map (fun (t, n, _) -> (t, n)) o.failed,
          stream_tail )
      in
      run_with (fun ~on_step s -> Scheduler.run ~on_step s)
      = run_with (fun ~on_step s -> Scheduler.run_reference ~on_step s))

let prop_all_fibers_complete =
  QCheck.Test.make ~name:"scheduler: every fiber completes within budget" ~count:100
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let s = Scheduler.create ~rng:(Rng.create seed) () in
      let done_ = Array.make n false in
      for i = 0 to n - 1 do
        ignore
          (Scheduler.spawn s ~name:"w" (fun () ->
               for _ = 1 to 5 do
                 Scheduler.yield ()
               done;
               done_.(i) <- true))
      done;
      let o = Scheduler.run s in
      Array.for_all Fun.id done_ && List.length o.finished = n)

let suite =
  [
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "fibers interleave" `Quick test_interleaving;
    Alcotest.test_case "deterministic given seed" `Quick test_determinism;
    Alcotest.test_case "budget exhaustion = hang" `Quick test_budget_hang;
    Alcotest.test_case "failures are captured" `Quick test_failure_capture;
    Alcotest.test_case "killed fibers unwind" `Quick test_killed_unwinds;
    Alcotest.test_case "spawn while running rejected" `Quick test_spawn_while_running_rejected;
    Alcotest.test_case "on_step callback" `Quick test_on_step;
    Alcotest.test_case "metrics record per-run delta" `Quick test_metrics_record_per_run_delta;
    QCheck_alcotest.to_alcotest prop_pick_stream_compatible;
    QCheck_alcotest.to_alcotest prop_all_fibers_complete;
  ]

(* Systematic crash-image enumeration (Pmem.Crash_images) and the unified
   post-failure validation API built on it: enumerator unit tests on
   hand-built pools, QCheck fence-consistency properties over random
   store/flush/fence traces, base-image confirmation, and the
   end-to-end torn-planted workload (invisible at the default budget of 1,
   found and replayable at --crash-images 4). *)

module CI = Pmem.Crash_images
module Pool = Pmem.Pool
module Cacheline = Pmem.Cacheline
module Post = Pmrace.Post_failure
module Whitelist = Pmrace.Whitelist

let words = 64 (* 8 lines of 8 words *)

let fresh () = Pool.create ~words ()

(* ------------------------------------------------------------------ *)
(* Enumerator unit tests on hand-built pools.                          *)
(* ------------------------------------------------------------------ *)

let test_quiesced_pool_single_image () =
  let p = fresh () in
  Pool.store p ~tid:0 ~instr:1 0 5L;
  Pool.quiesce p;
  let st = CI.capture p in
  Alcotest.(check int) "no in-flight lines" 0 (CI.line_count st);
  Alcotest.(check int) "one image" 1 (CI.count st);
  match List.of_seq (CI.to_seq st) with
  | [ (0, []) ] -> ()
  | _ -> Alcotest.fail "expected exactly the empty delta at index 0"

let test_two_line_enumeration () =
  (* Line 0 holds a dirty word, line 1 a pending one: radices (2, 2),
     four images in weight-then-line order. *)
  let p = fresh () in
  Pool.store p ~tid:0 ~instr:1 0 5L;
  Pool.store p ~tid:0 ~instr:2 8 7L;
  Pool.clwb p 8;
  let st = CI.capture p in
  Alcotest.(check int) "two lines" 2 (CI.line_count st);
  Alcotest.(check int) "four images" 4 (CI.count st);
  let d = Alcotest.(check (option (list (pair int int64)))) in
  d "index 0 is the base image" (Some []) (CI.delta st 0);
  d "index 1 drains the pending line" (Some [ (8, 7L) ]) (CI.delta st 1);
  d "index 2 evicts the dirty line" (Some [ (0, 5L) ]) (CI.delta st 2);
  d "index 3 drains both" (Some [ (0, 5L); (8, 7L) ]) (CI.delta st 3);
  d "index 4 is out of range" None (CI.delta st 4);
  (* Materialisation applies the delta to a copy of the base. *)
  let img = Option.get (CI.image st 1) in
  Alcotest.(check int64) "word 8 drained" 7L (Pool.image_word img 8);
  Alcotest.(check int64) "word 0 still stale" 0L (Pool.image_word img 0);
  Alcotest.(check int64) "base untouched" 0L (Pool.image_word (CI.base st) 8)

let test_mixed_line_radix_three () =
  (* One line with a pending word (0) and a dirty one (1): level 1 drains
     only the pending word, the whole-line eviction drains both — the
     dirty word never reaches PM on its own. *)
  let p = fresh () in
  Pool.store p ~tid:0 ~instr:1 0 5L;
  Pool.clwb p 0;
  Pool.store p ~tid:0 ~instr:2 1 6L;
  let st = CI.capture p in
  Alcotest.(check int) "one line" 1 (CI.line_count st);
  Alcotest.(check int) "three images" 3 (CI.count st);
  let d = Alcotest.(check (option (list (pair int int64)))) in
  d "level 1 drains pending only" (Some [ (0, 5L) ]) (CI.delta st 1);
  d "level 2 evicts the line" (Some [ (0, 5L); (1, 6L) ]) (CI.delta st 2)

let test_noop_drains_filtered () =
  (* Storing the durable value back leaves the word dirty but draining it
     would change nothing — capture must drop it or images duplicate. *)
  let p = fresh () in
  Pool.store p ~tid:0 ~instr:1 0 0L;
  Alcotest.(check bool) "word is dirty" true (Pool.is_dirty p 0);
  let st = CI.capture p in
  Alcotest.(check int) "no effective in-flight lines" 0 (CI.line_count st);
  Alcotest.(check int) "single image" 1 (CI.count st)

let test_of_image_degenerate () =
  let p = fresh () in
  Pool.store p ~tid:0 ~instr:1 3 9L;
  Pool.quiesce p;
  let st = CI.of_image (Pool.crash_image p) in
  Alcotest.(check int) "one image" 1 (CI.count st);
  Alcotest.(check int64) "base preserved" 9L (Pool.image_word (CI.base st) 3)

(* ------------------------------------------------------------------ *)
(* QCheck properties over random store/flush/fence/evict traces.       *)
(* ------------------------------------------------------------------ *)

(* Decode a (op, operand) list into pool operations.  Values are
   derived from the word so repeated stores stay deterministic but
   non-zero. *)
let apply_ops p ops =
  List.iter
    (fun (op, x) ->
      let w = x mod words in
      match op mod 5 with
      | 0 | 1 -> Pool.store p ~tid:0 ~instr:1 w (Int64.of_int (w + 17))
      | 2 -> Pool.clwb p w
      | 3 -> ignore (Pool.sfence p)
      | _ -> ignore (Pool.evict_line p (Cacheline.line_of_word w)))
    ops

let in_flight p =
  let base = Pool.crash_image p in
  List.sort_uniq compare (Pool.dirty_words p @ Pool.pending_words p)
  |> List.filter (fun w -> not (Int64.equal (Pool.peek p w) (Pool.image_word base w)))

let ops_gen = QCheck.(small_list (pair (int_bound 4) (int_bound (words - 1))))

let prop_images_fence_consistent =
  QCheck.Test.make ~name:"crashimages: every enumerated image is fence-consistent" ~count:120
    ops_gen (fun ops ->
      let p = fresh () in
      apply_ops p ops;
      let st = CI.capture p in
      let flight = in_flight p in
      let pending_of_line l =
        List.filter (fun w -> Cacheline.line_of_word w = l && Pool.is_pending p w) flight
      in
      let seen = Hashtbl.create 64 in
      Seq.for_all
        (fun (i, d) ->
          (* Indices are dense and deltas distinct. *)
          let fresh_delta = not (Hashtbl.mem seen d) in
          Hashtbl.replace seen d ();
          let sorted = List.sort compare d = d in
          (* Every drained word is in flight, at its volatile value. *)
          let legal =
            List.for_all
              (fun (w, v) -> List.mem w flight && Int64.equal v (Pool.peek p w))
              d
          in
          (* A dirty word only drains together with the whole line: all
             in-flight pending words of its line must drain too. *)
          let fence_ok =
            List.for_all
              (fun (w, _) ->
                (not (Pool.is_dirty p w))
                || List.for_all
                     (fun pw -> List.mem_assoc pw d)
                     (pending_of_line (Cacheline.line_of_word w)))
              d
          in
          i >= 0 && fresh_delta && sorted && legal && fence_ok)
        (CI.to_seq st)
      && Hashtbl.length seen = CI.count st)

let prop_index_zero_is_base_image =
  QCheck.Test.make ~name:"crashimages: index 0 is exactly the crash image" ~count:120 ops_gen
    (fun ops ->
      let p = fresh () in
      apply_ops p ops;
      let st = CI.capture p in
      let base = Pool.crash_image p in
      match (CI.delta st 0, CI.image st 0) with
      | Some [], Some img ->
          List.for_all
            (fun w -> Int64.equal (Pool.image_word img w) (Pool.image_word base w))
            (List.init words Fun.id)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Budget 1 confirms a real inconsistency on the base image.           *)
(* ------------------------------------------------------------------ *)

let test_base_image_confirms () =
  let target = Workloads.Figure1.target in
  let seed = Pmrace.Seed.gen (Sched.Rng.create 3) target.profile in
  let rec confirming s =
    if s > 400 then Alcotest.fail "no confirming campaign within 400 seeds"
    else
      let input =
        Pmrace.Campaign.input ~sched_seed:s ~policy:Pmrace.Campaign.Random_sched target seed
      in
      let r = Pmrace.Campaign.run input in
      match Runtime.Checkers.inconsistencies r.env.Runtime.Env.checkers with
      | inc :: _ -> inc
      | [] -> confirming (s + 1)
  in
  let inc = confirming 1 in
  match Post.validate (Post.ctx target) (Post.Candidate.Inconsistency inc) with
  | Post.Bug { image_index = 0; _ } -> ()
  | v -> Alcotest.failf "expected Bug on the base image, got %a" Post.pp_verdict v

(* ------------------------------------------------------------------ *)
(* End to end: the planted torn store needs an enumerated image.       *)
(* ------------------------------------------------------------------ *)

let torn = Workloads.Tornstore.target

let torn_session ~crash_images =
  let cfg = Pmrace.Fuzzer.Config.make ~max_campaigns:60 ~crash_images () in
  (cfg, Pmrace.Fuzzer.run torn cfg)

let found_105 session =
  Pmrace.Fuzzer.found_known_bugs session torn
  |> List.exists (fun ((kb : Pmrace.Target.known_bug), found) -> kb.kb_id = 105 && found)

let test_torn_store_needs_enumeration () =
  let _, s1 = torn_session ~crash_images:1 in
  Alcotest.(check bool) "missed at the default budget" false (found_105 s1);
  let cfg4, s4 = torn_session ~crash_images:4 in
  Alcotest.(check bool) "found at --crash-images 4" true (found_105 s4);
  (* The artifact records which enumerated image reproduced the bug... *)
  let art = Pmrace.Artifact.of_session ~target:torn ~cfg:cfg4 s4 in
  let bug_idx, bug =
    match
      List.mapi (fun i b -> (i, b)) art.a_bugs
      |> List.find_opt (fun (_, (b : Pmrace.Artifact.bug)) ->
             String.equal b.b_site "tornstore.c:store_b" && b.b_image_index <> None)
    with
    | Some ib -> ib
    | None -> Alcotest.fail "no torn-store bug group with a recorded image index"
  in
  (match bug.b_image_index with
  | Some i when i > 0 -> ()
  | idx ->
      Alcotest.failf "expected a positive image index, got %s"
        (match idx with Some i -> string_of_int i | None -> "none"));
  (* ...survives the JSON round-trip... *)
  (match Pmrace.Artifact.of_json (Pmrace.Artifact.to_json art) with
  | Ok art' ->
      let b' = List.nth art'.a_bugs bug_idx in
      Alcotest.(check bool) "image index round-trips" true (b'.b_image_index = bug.b_image_index)
  | Error e -> Alcotest.failf "artifact round-trip failed: %s" e);
  (* ...and replay rebuilds exactly that image. *)
  match Pmrace.Replay.replay_bug ~target:torn ~artifact:art ~bug:bug_idx with
  | Error e -> Alcotest.failf "replay failed: %s" e
  | Ok o ->
      Alcotest.(check bool) "bug reproduced" true o.r_reproduced;
      Alcotest.(check bool) "reproduced on the recorded image" true
        (o.r_image_index = bug.b_image_index)

let suite =
  [
    Alcotest.test_case "quiesced pool: single image" `Quick test_quiesced_pool_single_image;
    Alcotest.test_case "two-line enumeration order" `Quick test_two_line_enumeration;
    Alcotest.test_case "mixed line: radix 3" `Quick test_mixed_line_radix_three;
    Alcotest.test_case "no-op drains filtered" `Quick test_noop_drains_filtered;
    Alcotest.test_case "of_image is degenerate" `Quick test_of_image_degenerate;
    QCheck_alcotest.to_alcotest prop_images_fence_consistent;
    QCheck_alcotest.to_alcotest prop_index_zero_is_base_image;
    Alcotest.test_case "budget 1 confirms on the base image" `Quick test_base_image_confirms;
    Alcotest.test_case "torn store needs enumeration (e2e)" `Quick
      test_torn_store_needs_enumeration;
  ]

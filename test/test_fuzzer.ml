(* The coverage-guided fuzzing loop: session behaviour, modes, ablations,
   timelines, and end-to-end bug finding on the Figure 1 example. *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

let cfg campaigns = Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:3 ()

let test_finds_figure1_bugs () =
  let s = Fuzzer.run Workloads.Figure1.target (cfg 40) in
  let found = Fuzzer.found_known_bugs s Workloads.Figure1.target in
  Alcotest.(check int) "two known bugs" 2 (List.length found);
  Alcotest.(check bool) "all found" true (List.for_all snd found)

let test_respects_budget () =
  let s = Fuzzer.run Workloads.Figure1.target (cfg 25) in
  Alcotest.(check int) "campaign budget" 25 s.campaigns_run;
  Alcotest.(check int) "timeline point per campaign" 25 (List.length s.timeline)

let test_timeline_monotonic () =
  let s = Fuzzer.run Workloads.Figure1.target (cfg 30) in
  let rec check = function
    | (a : Fuzzer.timeline_point) :: (b :: _ as rest) ->
        Alcotest.(check bool) "campaigns increase" true (b.tp_campaign > a.tp_campaign);
        Alcotest.(check bool) "coverage monotonic" true
          (b.tp_alias_bits + b.tp_branch_bits >= a.tp_alias_bits + a.tp_branch_bits);
        Alcotest.(check bool) "inter count monotonic" true (b.tp_inter_unique >= a.tp_inter_unique);
        check rest
    | _ -> ()
  in
  check s.timeline

let test_modes_run () =
  List.iter
    (fun mode ->
      let s = Fuzzer.run Workloads.Figure1.target { (cfg 15) with mode } in
      Alcotest.(check int) "campaigns" 15 s.campaigns_run)
    [ Fuzzer.Mode_pmrace; Fuzzer.Mode_delay; Fuzzer.Mode_random ]

let test_ablations_run () =
  List.iter
    (fun (ie, se) ->
      let s =
        Fuzzer.run Workloads.Figure1.target
          { (cfg 15) with interleaving_tier = ie; seed_tier = se }
      in
      Alcotest.(check int) "campaigns" 15 s.campaigns_run)
    [ (false, true); (true, false); (false, false) ]

let test_validate_flag () =
  let s = Fuzzer.run Workloads.Figure1.target { (cfg 30) with validate = false } in
  let _, _, _, pending = Report.verdict_summary s.report Runtime.Candidates.Inter in
  let fp, wl, bugs, _ = Report.verdict_summary s.report Runtime.Candidates.Inter in
  Alcotest.(check int) "no verdicts without validation" 0 (fp + wl + bugs);
  Alcotest.(check bool) "findings pending" true (pending >= 0)

let test_annotations_counted () =
  let s = Fuzzer.run Workloads.Figure1.target (cfg 5) in
  Alcotest.(check int) "one annotation (the lock g)" 1 s.annotations

let test_without_checkpoint () =
  let s = Fuzzer.run Workloads.Figure1.target { (cfg 20) with use_checkpoint = false } in
  Alcotest.(check int) "campaigns" 20 s.campaigns_run

let test_deterministic_sessions () =
  let run () =
    let s = Fuzzer.run Workloads.Figure1.target (cfg 30) in
    ( Report.candidate_count s.report Runtime.Candidates.Inter,
      Report.inconsistency_count s.report Runtime.Candidates.Inter,
      Pmrace.Alias_cov.count s.alias )
  in
  Alcotest.(check bool) "sessions replay identically" true (run () = run ())

let suite =
  [
    Alcotest.test_case "finds the Figure 1 bugs" `Quick test_finds_figure1_bugs;
    Alcotest.test_case "respects campaign budget" `Quick test_respects_budget;
    Alcotest.test_case "timeline monotonic" `Quick test_timeline_monotonic;
    Alcotest.test_case "all modes run" `Quick test_modes_run;
    Alcotest.test_case "ablations run" `Quick test_ablations_run;
    Alcotest.test_case "validate flag" `Quick test_validate_flag;
    Alcotest.test_case "annotations counted" `Quick test_annotations_counted;
    Alcotest.test_case "without checkpoint" `Quick test_without_checkpoint;
    Alcotest.test_case "deterministic sessions" `Quick test_deterministic_sessions;
  ]

(* The offline persistency analyzer: trace capture, the site graph and its
   possible-pair denominator, the lifecycle FSM / lint pass, and the
   pmrace-analyze driver end-to-end on Figure 1. *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Trace = Runtime.Trace
module Site_graph = Analysis.Site_graph
module Alias_pairs = Analysis.Alias_pairs
module Lint = Analysis.Lint
module Analyzer = Analysis.Analyzer

(* --- trace capture ---------------------------------------------------- *)

let test_trace_capture () =
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let ctx = Env.ctx env ~tid:0 in
  let i = Instr.site "an:tr" in
  Mem.store ctx ~instr:i (Tval.of_int 10) Tval.one;
  Mem.persist ctx ~instr:i (Tval.of_int 10);
  Alcotest.(check int) "store + clwb + fence" 3 (Trace.length tr);
  (match Trace.events tr with
  | [ Env.Ev_store _; Env.Ev_clwb _; Env.Ev_fence _ ] -> ()
  | _ -> Alcotest.fail "events out of order");
  Trace.clear tr;
  Alcotest.(check bool) "cleared" true (Trace.is_empty tr)

(* --- site graph -------------------------------------------------------- *)

(* A two-thread trace: t0 stores and flushes word 10; t1 loads it. *)
let sample_trace () =
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let t0 = Env.ctx env ~tid:0 and t1 = Env.ctx env ~tid:1 in
  let iw = Instr.site "an:w" and ir = Instr.site "an:r" and ifl = Instr.site "an:f" in
  Mem.store t0 ~instr:iw (Tval.of_int 10) Tval.one;
  ignore (Mem.load t1 ~instr:ir (Tval.of_int 10));
  Mem.persist t0 ~instr:ifl (Tval.of_int 10);
  (tr, iw, ir, ifl)

let test_site_graph () =
  let tr, iw, ir, ifl = sample_trace () in
  let g = Site_graph.create () in
  Site_graph.absorb g (Trace.events tr);
  Alcotest.(check int) "one execution" 1 (Site_graph.executions g);
  Alcotest.(check bool) "writer recorded" true (List.mem iw (Site_graph.writers_of g 10));
  Alcotest.(check bool) "reader recorded" true (List.mem ir (Site_graph.readers_of g 10));
  Alcotest.(check (list int)) "shared address" [ 10 ] (Site_graph.shared_addrs g);
  Alcotest.(check bool) "possible pair (w,r)" true
    (List.mem (iw, ir) (Site_graph.possible_pairs g));
  Alcotest.(check bool) "store->flush edge" true (List.mem (iw, ifl) (Site_graph.flush_edges g));
  Alcotest.(check bool) "flush->fence edge" true (List.mem (ifl, ifl) (Site_graph.fence_edges g))

let test_possible_pairs_cross_product () =
  (* Two writers and two readers of one address: 4 possible pairs. *)
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let t0 = Env.ctx env ~tid:0 in
  let w1 = Instr.site "an:w1" and w2 = Instr.site "an:w2" in
  let r1 = Instr.site "an:r1" and r2 = Instr.site "an:r2" in
  Mem.store t0 ~instr:w1 (Tval.of_int 20) Tval.one;
  Mem.store t0 ~instr:w2 (Tval.of_int 20) Tval.one;
  ignore (Mem.load t0 ~instr:r1 (Tval.of_int 20));
  ignore (Mem.load t0 ~instr:r2 (Tval.of_int 20));
  let g = Site_graph.create () in
  Site_graph.absorb g (Trace.events tr);
  Alcotest.(check int) "4 possible pairs" 4 (Site_graph.possible_count g)

(* --- alias pairs ------------------------------------------------------- *)

let test_alias_pairs_accounting () =
  let t = Alias_pairs.create () in
  let w = Instr.site "an:apw" and r = Instr.site "an:apr" in
  Alias_pairs.add_possible t ~write:w ~read:r;
  Alcotest.(check int) "possible" 1 (Alias_pairs.possible_count t);
  Alcotest.(check int) "achieved 0" 0 (Alias_pairs.achieved_count t);
  Alcotest.(check int) "uncovered 1" 1 (List.length (Alias_pairs.uncovered t));
  Alias_pairs.mark_achieved t ~write:w ~read:r;
  Alias_pairs.mark_achieved t ~write:w ~read:r (* idempotent *);
  Alcotest.(check int) "achieved 1" 1 (Alias_pairs.achieved_count t);
  Alcotest.(check int) "uncovered 0" 0 (List.length (Alias_pairs.uncovered t));
  (* A pair outside the static set counts separately. *)
  Alias_pairs.mark_achieved t ~write:r ~read:w;
  Alcotest.(check int) "achieved still 1" 1 (Alias_pairs.achieved_count t);
  Alcotest.(check int) "beyond static" 1 (Alias_pairs.beyond_static t)

(* --- lint pass --------------------------------------------------------- *)

let test_lint_unflushed_publish () =
  let tr, iw, ir, _ = sample_trace () in
  let l = Lint.create () in
  Lint.absorb l (Trace.events tr);
  let f =
    List.find_opt (fun (f : Lint.finding) -> f.f_kind = Lint.Unflushed_publish) (Lint.findings l)
  in
  match f with
  | Some f ->
      Alcotest.(check bool) "write site" true (f.f_write_site = Some iw);
      Alcotest.(check bool) "read site" true (Instr.equal f.f_site ir);
      Alcotest.(check bool) "high severity" true (f.f_severity = Lint.High)
  | None -> Alcotest.fail "expected an unflushed-store-published finding"

let test_lint_clean_when_persisted_first () =
  (* Persist before the cross-thread load: no publish finding. *)
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let t0 = Env.ctx env ~tid:0 and t1 = Env.ctx env ~tid:1 in
  let i = Instr.site "an:clean" in
  Mem.store t0 ~instr:i (Tval.of_int 10) Tval.one;
  Mem.persist t0 ~instr:i (Tval.of_int 10);
  ignore (Mem.load t1 ~instr:i (Tval.of_int 10));
  let l = Lint.create () in
  Lint.absorb l (Trace.events tr);
  Alcotest.(check bool) "no publish findings" true
    (List.for_all
       (fun (f : Lint.finding) ->
         f.f_kind <> Lint.Unflushed_publish && f.f_kind <> Lint.Unfenced_publish)
       (Lint.findings l))

let test_lint_redundant_ops () =
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let ctx = Env.ctx env ~tid:0 in
  let i = Instr.site "an:red" in
  Mem.store ctx ~instr:i (Tval.of_int 10) Tval.one;
  Mem.persist ctx ~instr:i (Tval.of_int 10);
  Mem.clwb ctx ~instr:i (Tval.of_int 10) (* line already clean: redundant *);
  Mem.sfence ctx ~instr:i (* drains the redundant flush: not redundant *);
  Mem.sfence ctx ~instr:i (* no flush since previous fence: redundant *);
  let l = Lint.create () in
  Lint.absorb l (Trace.events tr);
  let kinds = List.map (fun (f : Lint.finding) -> f.f_kind) (Lint.findings l) in
  Alcotest.(check bool) "redundant CLWB" true (List.mem Lint.Redundant_flush kinds);
  Alcotest.(check bool) "redundant SFENCE" true (List.mem Lint.Redundant_fence kinds)

let test_lint_dedup_by_site_pair () =
  (* The same (write, read) pair three times: one finding, count 3. *)
  let env = Env.create ~pool_words:256 () in
  let tr = Trace.create () in
  Trace.attach tr env;
  let t0 = Env.ctx env ~tid:0 and t1 = Env.ctx env ~tid:1 in
  let iw = Instr.site "an:dw" and ir = Instr.site "an:dr" in
  for _ = 1 to 3 do
    Mem.store t0 ~instr:iw (Tval.of_int 10) Tval.one;
    ignore (Mem.load t1 ~instr:ir (Tval.of_int 10))
  done;
  let l = Lint.create () in
  Lint.absorb l (Trace.events tr);
  let publishes =
    List.filter (fun (f : Lint.finding) -> f.f_kind = Lint.Unflushed_publish) (Lint.findings l)
  in
  match publishes with
  | [ f ] -> Alcotest.(check int) "3 occurrences" 3 f.f_count
  | l -> Alcotest.failf "expected 1 deduplicated finding, got %d" (List.length l)

(* --- analyzer end-to-end on Figure 1 ----------------------------------- *)

let test_analyze_figure1 () =
  let r = Pmrace.Analyze.run Workloads.Figure1.target in
  let module A = Analysis.Analyzer in
  (* The seeded missing-flush site surfaces as unflushed-store-published. *)
  Alcotest.(check bool) "store_x -> read_x reported" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.f_kind = Lint.Unflushed_publish
         && f.f_write_site = Some (Instr.site "figure1.c:store_x")
         && Instr.equal f.f_site (Instr.site "figure1.c:read_x"))
       r.A.r_findings);
  (* Coverage has a denominator, and achieved never exceeds it. *)
  Alcotest.(check bool) "possible >= achieved" true
    (Alias_pairs.possible_count r.A.r_pairs >= Alias_pairs.achieved_count r.A.r_pairs);
  Alcotest.(check bool) "possible pairs exist" true (Alias_pairs.possible_count r.A.r_pairs > 0)

let test_analyze_achieved_subset_all_targets () =
  (* achieved <= possible on every registry target (cheap config). *)
  List.iter
    (fun (t : Pmrace.Target.t) ->
      let cfg = { Pmrace.Analyze.default_config with seeds = 2; scheds_per_seed = 1 } in
      let r = Pmrace.Analyze.run ~cfg t in
      let module A = Analysis.Analyzer in
      if Alias_pairs.possible_count r.A.r_pairs < Alias_pairs.achieved_count r.A.r_pairs then
        Alcotest.failf "%s: achieved %d > possible %d" t.name
          (Alias_pairs.achieved_count r.A.r_pairs)
          (Alias_pairs.possible_count r.A.r_pairs))
    Workloads.Registry.with_examples

(* --- fuzzer integration ------------------------------------------------ *)

let test_fuzzer_prepass_denominator () =
  let cfg =
    Pmrace.Fuzzer.Config.make ~max_campaigns:10 ~master_seed:3 ~static_prepass:true ()
  in
  let s = Pmrace.Fuzzer.run Workloads.Figure1.target cfg in
  (match Pmrace.Alias_cov.possible s.alias with
  | Some p ->
      Alcotest.(check bool) "denominator installed" true (p > 0);
      Alcotest.(check bool) "achieved <= possible" true
        (Pmrace.Alias_cov.achieved_site_pairs s.alias <= p)
  | None -> Alcotest.fail "expected a static denominator");
  Alcotest.(check bool) "session carries the pre-pass" true (s.static <> None);
  Alcotest.(check bool) "lint findings attached to the report" true
    (Pmrace.Report.lint_findings s.report <> [])

let test_fuzzer_prepass_off () =
  let cfg =
    Pmrace.Fuzzer.Config.make ~max_campaigns:5 ~master_seed:3 ~static_prepass:false ()
  in
  let s = Pmrace.Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check bool) "no denominator" true (Pmrace.Alias_cov.possible s.alias = None);
  Alcotest.(check bool) "no pre-pass result" true (s.static = None)

let test_seed_priority_scored () =
  let cfg =
    Pmrace.Fuzzer.Config.make ~max_campaigns:30 ~master_seed:3 ~static_prepass:true ()
  in
  let s = Pmrace.Fuzzer.run Workloads.Figure1.target cfg in
  ignore s;
  (* Priorities are written onto seeds as campaigns complete; the recorded
     provenance seeds must carry consistent (non-negative) scores. *)
  Hashtbl.iter
    (fun _ (p : Pmrace.Fuzzer.provenance) ->
      Alcotest.(check bool) "priority >= 0" true (Pmrace.Seed.priority p.p_seed >= 0))
    s.provenance

let suite =
  [
    Alcotest.test_case "trace capture" `Quick test_trace_capture;
    Alcotest.test_case "site graph: nodes and edges" `Quick test_site_graph;
    Alcotest.test_case "site graph: pair cross product" `Quick test_possible_pairs_cross_product;
    Alcotest.test_case "alias pairs: accounting" `Quick test_alias_pairs_accounting;
    Alcotest.test_case "lint: unflushed publish" `Quick test_lint_unflushed_publish;
    Alcotest.test_case "lint: clean when persisted first" `Quick test_lint_clean_when_persisted_first;
    Alcotest.test_case "lint: redundant CLWB/SFENCE" `Quick test_lint_redundant_ops;
    Alcotest.test_case "lint: dedup by site pair" `Quick test_lint_dedup_by_site_pair;
    Alcotest.test_case "analyze: figure1 end-to-end" `Quick test_analyze_figure1;
    Alcotest.test_case "analyze: achieved <= possible on all targets" `Slow
      test_analyze_achieved_subset_all_targets;
    Alcotest.test_case "fuzzer: pre-pass denominator" `Quick test_fuzzer_prepass_denominator;
    Alcotest.test_case "fuzzer: pre-pass off" `Quick test_fuzzer_prepass_off;
    Alcotest.test_case "fuzzer: seed priorities" `Quick test_seed_priority_scored;
  ]

(* The extensions beyond the core pipeline: eADR mode (§6.6), the
   additional checkers (§4.3), worker-pool dispatch (§5), and the detailed
   bug reports (§4.1 step 6). *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

(* --- eADR ------------------------------------------------------------ *)

let test_eadr_store_durable () =
  let env = Env.create ~eadr:true ~pool_words:256 () in
  let ctx = Env.ctx env ~tid:0 in
  let i = Instr.site "ext:w" in
  Mem.store ctx ~instr:i (Tval.of_int 10) (Tval.of_int 42);
  Alcotest.(check bool) "never dirty" false (Pmem.Pool.is_dirty env.pool 10);
  Alcotest.(check int64) "durable at once" 42L
    (Pmem.Pool.image_word (Pmem.Pool.crash_image env.pool) 10)

let test_eadr_no_candidates () =
  let env = Env.create ~eadr:true ~pool_words:256 () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  let i = Instr.site "ext:w" in
  Mem.store c0 ~instr:i (Tval.of_int 10) (Tval.of_int 42);
  let v = Mem.load c1 ~instr:i (Tval.of_int 10) in
  Alcotest.(check bool) "no taint" false (Tval.is_tainted v);
  Alcotest.(check int) "no candidates" 0
    (Runtime.Candidates.dynamic_count (Runtime.Checkers.candidates env.checkers))

let test_eadr_sync_events_still_fire () =
  let env = Env.create ~eadr:true ~pool_words:256 () in
  Env.annotate_sync env ~name:"ext:lock" ~addr:16 ~len:1 ~init:0L;
  let ctx = Env.ctx env ~tid:0 in
  Mem.store ctx ~instr:(Instr.site "ext:lock") (Tval.of_int 16) Tval.one;
  Alcotest.(check int) "sync event without any flush" 1
    (List.length (Runtime.Checkers.sync_events env.checkers))

let test_eadr_session_figure1 () =
  (* Under eADR, Figure 1's inter-thread bug vanishes and the lock bug
     remains — exactly §6.6's claim. *)
  let cfg = Fuzzer.Config.make ~max_campaigns:40 ~master_seed:3 ~eadr:true () in
  let s = Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check int) "no inter inconsistencies" 0
    (Report.inconsistency_count s.report Runtime.Candidates.Inter);
  let _, _, sync_bugs, _ = Report.sync_verdict_summary s.report in
  Alcotest.(check int) "the sync bug survives eADR" 1 sync_bugs

(* --- aux checkers ---------------------------------------------------- *)

let test_redundant_flush () =
  let env = Env.create ~pool_words:256 () in
  let aux = Pmrace.Aux_checkers.create () in
  Pmrace.Aux_checkers.attach aux env;
  let ctx = Env.ctx env ~tid:0 in
  let i = Instr.site "ext:flush" in
  Mem.store ctx ~instr:i (Tval.of_int 10) Tval.one;
  Mem.clwb ctx ~instr:i (Tval.of_int 10) (* useful *);
  Mem.clwb ctx ~instr:i (Tval.of_int 10) (* redundant: line already clean *);
  Alcotest.(check int) "flushes" 2 (Pmrace.Aux_checkers.flushes aux);
  Alcotest.(check int) "one redundant" 1 (Pmrace.Aux_checkers.redundant_total aux);
  match Pmrace.Aux_checkers.redundant_sites aux with
  | [ (site, 1) ] -> Alcotest.(check string) "site" "ext:flush" site
  | _ -> Alcotest.fail "expected one redundant site"

let test_redundant_fence () =
  let env = Env.create ~pool_words:256 () in
  let aux = Pmrace.Aux_checkers.create () in
  Pmrace.Aux_checkers.attach aux env;
  let ctx = Env.ctx env ~tid:0 in
  let i = Instr.site "ext:fence" in
  Mem.store ctx ~instr:i (Tval.of_int 10) Tval.one;
  Mem.clwb ctx ~instr:i (Tval.of_int 10);
  Mem.sfence ctx ~instr:i (* useful: drains the flush *);
  Mem.sfence ctx ~instr:i (* redundant: nothing flushed since the last fence *);
  Mem.movnt ctx ~instr:i (Tval.of_int 11) Tval.one;
  Mem.sfence ctx ~instr:i (* useful: persists the non-temporal store *);
  Alcotest.(check int) "fences" 3 (Pmrace.Aux_checkers.fences aux);
  Alcotest.(check int) "one redundant" 1 (Pmrace.Aux_checkers.redundant_fence_total aux);
  match Pmrace.Aux_checkers.redundant_fence_sites aux with
  | [ (site, 1) ] -> Alcotest.(check string) "site" "ext:fence" site
  | _ -> Alcotest.fail "expected one redundant-fence site"

let test_unflushed_at_exit () =
  let env = Env.create ~pool_words:256 () in
  let ctx = Env.ctx env ~tid:0 in
  let iw = Instr.site "ext:unflushed" in
  Mem.store ctx ~instr:iw (Tval.of_int 10) Tval.one;
  Mem.store ctx ~instr:iw (Tval.of_int 11) Tval.one;
  Mem.store ctx ~instr:(Instr.site "ext:flushed") (Tval.of_int 20) Tval.one;
  Mem.persist ctx ~instr:(Instr.site "ext:flushed") (Tval.of_int 20);
  match Pmrace.Aux_checkers.unflushed_at_exit env with
  | [ (site, 2) ] -> Alcotest.(check string) "writer site" "ext:unflushed" site
  | l -> Alcotest.failf "expected one site with 2 words, got %d entries" (List.length l)

(* --- workers --------------------------------------------------------- *)

let test_workers_share_budget () =
  let cfg = Fuzzer.Config.make ~max_campaigns:30 ~master_seed:3 ~workers:4 () in
  let s = Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check int) "budget respected across workers" 30 s.campaigns_run

let test_workers_find_bugs () =
  let cfg = Fuzzer.Config.make ~max_campaigns:60 ~master_seed:3 ~workers:3 () in
  let s = Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check bool) "bugs found with a worker pool" true
    (List.for_all snd (Fuzzer.found_known_bugs s Workloads.Figure1.target))

(* --- bug reports ------------------------------------------------------ *)

let test_bug_report_renders () =
  let cfg = Fuzzer.Config.make ~max_campaigns:40 ~master_seed:3 () in
  let s = Fuzzer.run Workloads.Figure1.target cfg in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Pmrace.Bug_report.render_bugs ppf s;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let has needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions the write site" true (has "figure1.c:store_x");
  Alcotest.(check bool) "mentions reproduction inputs" true (has "scheduler seed");
  Alcotest.(check bool) "mentions the sync variable" true (has "figure1.c:g");
  Alcotest.(check bool) "numbered reports" true (has "--- report 1 ---")

let test_provenance_recorded () =
  let cfg = Fuzzer.Config.make ~max_campaigns:10 ~master_seed:3 () in
  let s = Fuzzer.run Workloads.Figure1.target cfg in
  Alcotest.(check int) "provenance per campaign" 10 (Hashtbl.length s.provenance)

(* --- extended memcached commands -------------------------------------- *)

let test_new_commands_parse () =
  let ok s = match Workloads.Memcached_proto.parse s with Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "gets" true (ok "gets k1 k2\r\n");
  Alcotest.(check bool) "cas" true (ok "cas k1 0 0 3 42\r\nabc\r\n");
  Alcotest.(check bool) "touch" true (ok "touch k1 100\r\n");
  Alcotest.(check bool) "flush_all" true (ok "flush_all\r\n");
  Alcotest.(check bool) "stats" true (ok "stats\r\n");
  Alcotest.(check bool) "verbosity" true (ok "verbosity 1\r\n");
  Alcotest.(check bool) "cas arg error" false (ok "cas k1 0 0 3\r\nabc\r\n");
  Alcotest.(check bool) "touch arg error" false (ok "touch k1\r\n")

let test_new_commands_execute () =
  let target = Workloads.Memcached.target in
  let env = Env.create ~pool_words:target.pool_words () in
  target.init env;
  Pmem.Pool.quiesce env.pool;
  Env.reset_checkers env;
  let ctx = Env.ctx env ~tid:0 in
  let run s = ignore (Workloads.Memcached.process_command ctx s) in
  run "set k1 0 0 3\r\nabc\r\n";
  run "gets k1\r\n";
  run "touch k1 50\r\n";
  run "cas k1 0 0 3 7\r\nxyz\r\n";
  run "stats\r\n";
  Alcotest.(check bool) "k1 present before flush_all" true
    (Workloads.Memcached.lookup_after_recovery env 1 <> None);
  run "flush_all\r\n";
  Alcotest.(check bool) "flush_all emptied the index" true
    (Workloads.Memcached.lookup_after_recovery env 1 = None)

let suite =
  [
    Alcotest.test_case "eadr: stores durable at once" `Quick test_eadr_store_durable;
    Alcotest.test_case "eadr: no candidates" `Quick test_eadr_no_candidates;
    Alcotest.test_case "eadr: sync events still fire" `Quick test_eadr_sync_events_still_fire;
    Alcotest.test_case "eadr: figure1 session (6.6)" `Quick test_eadr_session_figure1;
    Alcotest.test_case "aux: redundant flush checker" `Quick test_redundant_flush;
    Alcotest.test_case "aux: redundant fence checker" `Quick test_redundant_fence;
    Alcotest.test_case "aux: unflushed at exit" `Quick test_unflushed_at_exit;
    Alcotest.test_case "workers: shared budget" `Quick test_workers_share_budget;
    Alcotest.test_case "workers: find bugs" `Quick test_workers_find_bugs;
    Alcotest.test_case "bug reports render" `Quick test_bug_report_renders;
    Alcotest.test_case "provenance recorded" `Quick test_provenance_recorded;
    Alcotest.test_case "proto: new commands parse" `Quick test_new_commands_parse;
    Alcotest.test_case "memcached: new commands execute" `Quick test_new_commands_execute;
  ]

(* The complete test suite: substrates (PM pool, scheduler, RNG), the
   instrumented runtime with taint analysis and checkers, PMRace's
   coverage/mutation/scheduling/validation machinery, the mini-PMDK, the
   five reproduced PM systems, and full end-to-end fuzzing sessions. *)

let () =
  Alcotest.run "pmrace-repro"
    [
      ("cacheline", Test_cacheline.suite);
      ("pool", Test_pool.suite);
      ("rng", Test_rng.suite);
      ("scheduler", Test_scheduler.suite);
      ("taint+tval", Test_taint.suite);
      ("runtime", Test_runtime.suite);
      ("coverage", Test_coverage.suite);
      ("seed+mutator", Test_seed_mutator.suite);
      ("policies", Test_policies.suite);
      ("pmdk", Test_pmdk.suite);
      ("proto", Test_proto.suite);
      ("campaign+validation", Test_campaign.suite);
      ("engine", Test_engine.suite);
      ("fuzzer", Test_fuzzer.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("analysis", Test_analysis.suite);
      ("detectors", Test_detectors.suite);
      ("invariants", Test_invariants.suite);
      ("integration", Test_integration.suite);
      ("crashimages", Test_crashimages.suite);
      ("por", Test_por.suite);
      (* Keep fleet LAST: its wire/store codecs register novel Instr
         sites at runtime, which would shift the raw alias-bitmap hash
         layout under the golden sessions above. *)
      ("fleet", Test_fleet.suite);
    ]

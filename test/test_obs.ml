(* The observability layer: JSON codec, metrics registry, event sinks,
   session artifacts, and provenance replay.

   IMPORTANT: no toplevel [Instr.site] registrations here — the golden
   alias-bitmap counts in test_parallel depend on the executable's site-id
   layout, and toplevel registrations in any linked test module would
   shift them.  All fuzzing in this module happens inside test bodies,
   after the registry is already populated by earlier suites. *)

module J = Obs.Json
module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report

(* --- JSON ------------------------------------------------------------- *)

let roundtrip j =
  match J.of_string (J.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.failf "JSON did not parse back: %s" e

let test_json_roundtrip () =
  let j =
    J.Obj
      [
        ("null", J.Null);
        ("bools", J.List [ J.Bool true; J.Bool false ]);
        ("ints", J.List [ J.Int 0; J.Int (-42); J.Int max_int ]);
        ("floats", J.List [ J.Float 1.5; J.Float (-0.125); J.Float 1e300 ]);
        ("str", J.String "plain");
        ("nested", J.Obj [ ("empty_list", J.List []); ("empty_obj", J.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "pretty round-trips" true (roundtrip j = j);
  (match J.of_string (J.to_string ~minify:true j) with
  | Ok j' -> Alcotest.(check bool) "minified round-trips" true (j' = j)
  | Error e -> Alcotest.failf "minified form did not parse: %s" e);
  (* Integral floats decode as Int; that is the documented normalisation. *)
  Alcotest.(check bool) "2.0 decodes integral" true (J.of_string "2.0" = Ok (J.Int 2))

let test_json_escapes () =
  let s = "quote\" backslash\\ newline\n tab\t control\x01 unicode\xc3\xa9" in
  match roundtrip (J.String s) with
  | J.String s' -> Alcotest.(check string) "escaped string round-trips" s s'
  | _ -> Alcotest.fail "expected a string"

let test_json_unicode_escape () =
  (* \u sequences, including a surrogate pair, decode to UTF-8. *)
  match J.of_string {|"é😀"|} with
  | Ok (J.String s) -> Alcotest.(check string) "utf-8" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse error: %s" e

let test_json_errors () =
  let bad s = match J.of_string s with Ok _ -> Alcotest.failf "%S parsed" s | Error _ -> () in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "tru";
  bad "1 2";
  bad "\"unterminated"

let test_json_accessors () =
  let j = J.Obj [ ("n", J.Int 3); ("f", J.Float 2.5); ("s", J.String "x") ] in
  Alcotest.(check (option int)) "member+to_int" (Some 3) (Option.bind (J.member "n" j) J.to_int);
  Alcotest.(check (option int)) "missing member" None (Option.bind (J.member "zz" j) J.to_int);
  Alcotest.(check (option int)) "to_int rejects fractional" None (J.to_int (J.Float 2.5));
  Alcotest.(check bool) "to_float accepts int" true (J.to_float (J.Int 2) = Some 2.)

(* --- Metrics ----------------------------------------------------------- *)

let test_metrics_disabled_noop () =
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test_disabled_counter" in
  let h = Obs.Metrics.histogram "test_disabled_histogram" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:10 c;
  Obs.Metrics.observe h 0.5;
  let r =
    List.find
      (fun (r : Obs.Metrics.reading) -> String.equal r.r_name "test_disabled_counter")
      (Obs.Metrics.snapshot ())
  in
  (match r.r_value with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "disabled counter never moves" 0 n
  | _ -> Alcotest.fail "expected a counter")

let test_metrics_enabled () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test_enabled_counter" in
  let g = Obs.Metrics.gauge "test_enabled_gauge" in
  let h = Obs.Metrics.histogram ~buckets:[| 1.0; 2.0 |] "test_enabled_histogram" in
  Obs.Metrics.incr c;
  Obs.Metrics.incr ~by:4 c;
  Obs.Metrics.set g 2.5;
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.5; 5.0 ];
  let find name =
    (List.find
       (fun (r : Obs.Metrics.reading) -> String.equal r.r_name name)
       (Obs.Metrics.snapshot ()))
      .r_value
  in
  (match find "test_enabled_counter" with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "counter" 5 n
  | _ -> Alcotest.fail "expected counter");
  (match find "test_enabled_gauge" with
  | Obs.Metrics.Gauge v -> Alcotest.(check (float 1e-9)) "gauge" 2.5 v
  | _ -> Alcotest.fail "expected gauge");
  (match find "test_enabled_histogram" with
  | Obs.Metrics.Histogram { buckets; count; sum } ->
      Alcotest.(check int) "histogram count" 3 count;
      Alcotest.(check (float 1e-9)) "histogram sum" 7.0 sum;
      Alcotest.(check (list int)) "bucket cells" [ 1; 1; 1 ] (List.map snd buckets)
  | _ -> Alcotest.fail "expected histogram");
  (* Re-registration returns the same handle; a kind clash is an error. *)
  Obs.Metrics.incr (Obs.Metrics.counter "test_enabled_counter");
  (match find "test_enabled_counter" with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "same handle" 6 n
  | _ -> Alcotest.fail "expected counter");
  (match Obs.Metrics.gauge "test_enabled_counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  Obs.Metrics.set_enabled false

let test_metrics_domain_stress () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "test_stress_counter" in
  let h = Obs.Metrics.histogram ~buckets:[| 0.5 |] "test_stress_histogram" in
  let per_domain = 10_000 in
  let body () =
    for _ = 1 to per_domain do
      Obs.Metrics.incr c;
      Obs.Metrics.observe h 1.0
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join domains;
  let find name =
    (List.find
       (fun (r : Obs.Metrics.reading) -> String.equal r.r_name name)
       (Obs.Metrics.snapshot ()))
      .r_value
  in
  (match find "test_stress_counter" with
  | Obs.Metrics.Counter n -> Alcotest.(check int) "no lost increments" (4 * per_domain) n
  | _ -> Alcotest.fail "expected counter");
  (match find "test_stress_histogram" with
  | Obs.Metrics.Histogram { count; sum; _ } ->
      Alcotest.(check int) "no lost observations" (4 * per_domain) count;
      Alcotest.(check (float 1e-6)) "atomic float sum" (float_of_int (4 * per_domain)) sum
  | _ -> Alcotest.fail "expected histogram");
  Obs.Metrics.set_enabled false

(* --- Events ------------------------------------------------------------ *)

let test_events_ring () =
  let t = Obs.Events.create () in
  let ring = Obs.Events.attach_ring ~capacity:4 t in
  for i = 1 to 6 do
    Obs.Events.emit t
      (Obs.Events.Campaign_end
         { campaign = i; worker = 0; improved = false; hung = false; latency = 0. })
  done;
  let campaigns =
    List.map
      (fun (e : Obs.Events.event) ->
        match e.ev_payload with Obs.Events.Campaign_end { campaign; _ } -> campaign | _ -> -1)
      (Obs.Events.ring_events ring)
  in
  Alcotest.(check (list int)) "ring keeps the newest, oldest first" [ 3; 4; 5; 6 ] campaigns;
  Alcotest.(check int) "dropped count" 2 (Obs.Events.ring_dropped ring)

let test_events_jsonl () =
  let path = Filename.temp_file "pmrace_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let t = Obs.Events.create () in
      let oc = open_out path in
      Obs.Events.attach_jsonl t oc;
      Obs.Events.emit t
        (Obs.Events.Session_start { target = "figure1"; workers = 1; max_campaigns = 2; master_seed = 3 });
      Obs.Events.emit t
        (Obs.Events.New_alias_pair
           { campaign = 0; worker = 0; write_site = "a.c:1"; read_site = "b.c:2" });
      Obs.Events.emit t (Obs.Events.Session_end { campaigns = 2; wall = 0.5; bugs = 1 });
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "one line per event" 3 (List.length lines);
      List.iter
        (fun line ->
          match J.of_string line with
          | Ok (J.Obj fields) ->
              Alcotest.(check bool) "has event field" true (List.mem_assoc "event" fields);
              Alcotest.(check bool) "has time field" true (List.mem_assoc "t" fields)
          | Ok _ -> Alcotest.fail "line is not an object"
          | Error e -> Alcotest.failf "line is not valid JSON: %s" e)
        lines)

(* --- Session artifacts -------------------------------------------------- *)

let fig1_cfg = lazy (Fuzzer.Config.make ~max_campaigns:40 ~master_seed:3 ())
let fig1_session = lazy (Fuzzer.run Workloads.Figure1.target (Lazy.force fig1_cfg))

let fig1_artifact =
  lazy
    (Pmrace.Artifact.of_session ~target:Workloads.Figure1.target ~cfg:(Lazy.force fig1_cfg)
       (Lazy.force fig1_session))

let test_artifact_roundtrip () =
  let a = Lazy.force fig1_artifact in
  let path = Filename.temp_file "pmrace_session" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pmrace.Artifact.write ~path a;
      match Pmrace.Artifact.read ~path with
      | Error e -> Alcotest.failf "artifact did not read back: %s" e
      | Ok a' ->
          Alcotest.(check string) "target" a.a_target a'.a_target;
          Alcotest.(check (list (pair string string)))
            "bug fingerprints survive the round trip"
            (Pmrace.Artifact.bug_fingerprints a)
            (Pmrace.Artifact.bug_fingerprints a');
          Alcotest.(check (list (pair string string)))
            "known figure1 fingerprints"
            [ ("inter", "figure1.c:store_x"); ("sync", "figure1.c:g") ]
            (Pmrace.Artifact.bug_fingerprints a');
          Alcotest.(check int) "campaigns" a.a_campaigns a'.a_campaigns;
          Alcotest.(check int) "alias bits" a.a_alias_bits a'.a_alias_bits;
          Alcotest.(check (list (pair string string))) "site pairs" a.a_site_pairs a'.a_site_pairs;
          Alcotest.(check int) "timeline length" (List.length a.a_timeline)
            (List.length a'.a_timeline);
          Alcotest.(check bool) "timeline identical" true
            (List.for_all2
               (fun (p : Fuzzer.timeline_point) (p' : Fuzzer.timeline_point) ->
                 p.tp_campaign = p'.tp_campaign
                 && p.tp_alias_bits = p'.tp_alias_bits
                 && p.tp_branch_bits = p'.tp_branch_bits
                 && p.tp_inter_unique = p'.tp_inter_unique
                 && p.tp_new_inter = p'.tp_new_inter)
               a.a_timeline a'.a_timeline);
          Alcotest.(check int) "provenance entries" (List.length a.a_provenance)
            (List.length a'.a_provenance);
          Alcotest.(check bool) "provenance sched seeds identical" true
            (List.for_all2
               (fun (p : Pmrace.Artifact.prov_entry) (p' : Pmrace.Artifact.prov_entry) ->
                 p.pr_campaign = p'.pr_campaign && p.pr_sched_seed = p'.pr_sched_seed)
               a.a_provenance a'.a_provenance))

let test_artifact_rejects_foreign () =
  Alcotest.(check bool) "wrong schema rejected" true
    (Result.is_error (Pmrace.Artifact.of_json (J.Obj [ ("schema", J.String "nope"); ("version", J.Int 1) ])));
  Alcotest.(check bool) "newer version rejected" true
    (Result.is_error
       (Pmrace.Artifact.of_json
          (J.Obj [ ("schema", J.String Pmrace.Artifact.schema); ("version", J.Int 99) ])))

(* --- Replay ------------------------------------------------------------- *)

let test_replay_reproduces () =
  let a = Lazy.force fig1_artifact in
  List.iteri
    (fun i (b : Pmrace.Artifact.bug) ->
      match Pmrace.Replay.replay_bug ~target:Workloads.Figure1.target ~artifact:a ~bug:i with
      | Error e -> Alcotest.failf "replay of bug %d failed: %s" i e
      | Ok o ->
          Alcotest.(check bool)
            (Printf.sprintf "bug %d (%s at %s) reproduced" i b.b_kind b.b_site)
            true o.r_reproduced)
    a.a_bugs

let test_replay_errors () =
  let a = Lazy.force fig1_artifact in
  Alcotest.(check bool) "out-of-range bug index" true
    (Result.is_error
       (Pmrace.Replay.replay_bug ~target:Workloads.Figure1.target ~artifact:a ~bug:99));
  Alcotest.(check bool) "target mismatch" true
    (Result.is_error (Pmrace.Replay.replay_bug ~target:Workloads.Pclht.target ~artifact:a ~bug:0))

(* --- Bit-identity under instrumentation --------------------------------- *)

(* The PR's hard acceptance criterion: metrics on, events attached — the
   seeded workers=1 session still reproduces the PR 2 golden RNG history
   (first sched seed and full provenance hash) and bug set. *)
let test_metrics_on_bit_identical () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      let obs = Obs.Events.create () in
      let ring = Obs.Events.attach_ring obs in
      let s =
        Fuzzer.run ~obs Workloads.Figure1.target
          (Fuzzer.Config.make ~max_campaigns:40 ~master_seed:3 ())
      in
      (match Hashtbl.find_opt s.provenance 0 with
      | Some p -> Alcotest.(check int) "first sched seed unchanged" 250784763 p.Fuzzer.p_sched_seed
      | None -> Alcotest.fail "missing provenance for campaign 0");
      let prov_hash =
        Hashtbl.fold
          (fun k (p : Fuzzer.provenance) acc -> (k, p.p_sched_seed) :: acc)
          s.provenance []
        |> List.sort compare
        |> List.fold_left (fun h (k, v) -> ((h * 1000003) + k + v) land 0x3FFFFFFF) 0
      in
      Alcotest.(check int) "provenance hash unchanged under instrumentation" 78631009 prov_hash;
      let bug_ids =
        List.map
          (fun (g : Report.bug_group) ->
            ( (match g.bg_kind with `Inter -> "Inter" | `Intra -> "Intra" | `Sync -> "Sync"),
              g.bg_site ))
          (Report.bug_groups s.report)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list (pair string string)))
        "bug groups unchanged"
        [ ("Inter", "figure1.c:store_x"); ("Sync", "figure1.c:g") ]
        bug_ids;
      Alcotest.(check (array int)) "per-worker campaign counts" [| 40 |] s.worker_campaigns;
      (* The event stream observed the session without perturbing it. *)
      let events = Obs.Events.ring_events ring in
      Alcotest.(check bool) "events were captured" true (events <> []);
      let count p = List.length (List.filter p events) in
      Alcotest.(check int) "one campaign_start per campaign" 40
        (count (fun (e : Obs.Events.event) ->
             match e.ev_payload with Obs.Events.Campaign_start _ -> true | _ -> false)))

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json escapes" `Quick test_json_escapes;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escape;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "metrics disabled no-op" `Quick test_metrics_disabled_noop;
    Alcotest.test_case "metrics enabled" `Quick test_metrics_enabled;
    Alcotest.test_case "metrics domain stress" `Quick test_metrics_domain_stress;
    Alcotest.test_case "events ring buffer" `Quick test_events_ring;
    Alcotest.test_case "events jsonl sink" `Quick test_events_jsonl;
    Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact rejects foreign input" `Quick test_artifact_rejects_foreign;
    Alcotest.test_case "replay reproduces recorded bugs" `Quick test_replay_reproduces;
    Alcotest.test_case "replay error handling" `Quick test_replay_errors;
    Alcotest.test_case "metrics on: session bit-identical" `Quick test_metrics_on_bit_identical;
  ]

(* Fleet mode: seed fingerprints, AFL-style corpus scheduling, the wire
   protocol and durable store, the merge algebra fleet-mode accumulation
   relies on (QCheck), and a live coordinator/worker exchange over a
   Unix-domain socket.

   This suite registers novel Instr site names at runtime (wire/store
   decoding does so by design), which shifts the raw alias-bitmap hash
   layout of any *later* session in this binary — so it must stay LAST
   in test_main.ml, after the golden sessions in test_parallel.ml and
   test_integration.ml have run. *)

module Fuzzer = Pmrace.Fuzzer
module Seed = Pmrace.Seed
module Hub = Pmrace.Hub
module Artifact = Pmrace.Artifact
(* The scheduler itself lives in pmrace; [Fleet.Corpus_sched] is its
   constrained fleet-facing re-export, too narrow for these whitebox
   tests (it hides [entries]/[tombstoned_count]). *)
module Corpus_sched = Pmrace.Corpus_sched
module Wire = Fleet.Wire
module Rng = Sched.Rng
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* Seed.fingerprint: a stable content hash.  The exact values are part
   of the fleet's durable-store format (corpus entries are keyed by
   them), so they are pinned as goldens: if the hash changes, existing
   store directories silently lose their dedup. *)

let fixed_seed () =
  Seed.make
    [|
      [| Seed.Put { key = 1; value = 10 }; Seed.Get { key = 1 } |];
      [| Seed.Delete { key = 2 } |];
    |]

let test_fingerprint_golden () =
  Alcotest.(check int64)
    "fixed ops golden" 5460768835409237955L
    (Seed.fingerprint (fixed_seed ()));
  Alcotest.(check int64)
    "generated golden (rng 42, default profile)" 8353615945716149181L
    (Seed.fingerprint (Seed.gen (Rng.create 42) Seed.default_profile))

let test_fingerprint_content_only () =
  let a = fixed_seed () in
  let b = Seed.make (Seed.threads a) in
  Alcotest.(check bool) "distinct seed ids" false (Seed.id a = Seed.id b);
  Alcotest.(check int64) "same ops, same fingerprint" (Seed.fingerprint a) (Seed.fingerprint b);
  Seed.set_priority a 99;
  Alcotest.(check int64) "priority does not affect it" (Seed.fingerprint b) (Seed.fingerprint a)

let prop_fingerprint_deterministic =
  QCheck.Test.make ~name:"fleet: fingerprint is a function of the ops" ~count:200
    QCheck.small_int (fun n ->
      let gen seed = Seed.gen (Rng.create seed) Seed.default_profile in
      let a = gen n and b = gen n in
      Seed.fingerprint a = Seed.fingerprint b
      && Seed.fingerprint (Seed.make (Seed.threads a)) = Seed.fingerprint a)

(* ------------------------------------------------------------------ *)
(* Corpus_sched: dedup, the favored cover, tombstoning, lease rotation. *)

let seed_of_int n = Seed.gen (Rng.create (1000 + n)) Seed.default_profile

let test_corpus_dedup_absorbs () =
  let cs = Corpus_sched.create () in
  let s = seed_of_int 0 in
  (match Corpus_sched.add cs ~pairs:[ ("w1", "r1") ] s with
  | Some _ -> ()
  | None -> Alcotest.fail "first add must create an entry");
  (match Corpus_sched.add cs ~pairs:[ ("w2", "r2") ] (Seed.make (Seed.threads s)) with
  | None -> ()
  | Some _ -> Alcotest.fail "same-content seed must dedup");
  Alcotest.(check int) "one entry" 1 (Corpus_sched.size cs);
  match Corpus_sched.find cs (Seed.fingerprint s) with
  | None -> Alcotest.fail "entry findable by fingerprint"
  | Some e ->
      Alcotest.(check (list (pair string string)))
        "duplicate's pairs absorbed"
        [ ("w1", "r1"); ("w2", "r2") ]
        e.Corpus_sched.e_pairs

let test_corpus_cull_cover () =
  let cs = Corpus_sched.create () in
  let add n pairs = ignore (Corpus_sched.add cs ~pairs (seed_of_int n)) in
  add 1 [ ("a", "r") ];
  add 2 [ ("a", "r"); ("b", "r") ];
  add 3 [ ("b", "r"); ("c", "r") ];
  add 4 [];
  Corpus_sched.cull cs;
  (* The favored set must cover {a,b,c}; entry 1 is dominated by 2. *)
  let favored =
    List.filter (fun e -> e.Corpus_sched.e_favored) (Corpus_sched.entries cs)
  in
  let covered =
    List.sort_uniq compare (List.concat_map (fun e -> e.Corpus_sched.e_pairs) favored)
  in
  Alcotest.(check (list (pair string string)))
    "favored entries cover every achieved pair"
    [ ("a", "r"); ("b", "r"); ("c", "r") ]
    covered;
  Alcotest.(check bool) "a dominated entry is tombstoned" true
    (Corpus_sched.tombstoned_count cs >= 1);
  (* Tombstoned entries never lease; fresh credit resurrects them. *)
  let tomb =
    List.find (fun e -> e.Corpus_sched.e_tombstone) (Corpus_sched.entries cs)
  in
  let leased = Corpus_sched.lease cs (Corpus_sched.size cs) in
  Alcotest.(check bool) "tombstoned seed not leased" false
    (List.exists (fun s -> Seed.fingerprint s = tomb.Corpus_sched.e_fp) leased);
  Corpus_sched.credit_pairs cs tomb.Corpus_sched.e_fp [ ("z", "r") ];
  Alcotest.(check bool) "fresh credit resurrects" false tomb.Corpus_sched.e_tombstone

let test_corpus_lease_rotates () =
  let cs = Corpus_sched.create () in
  ignore (Corpus_sched.add cs ~pairs:[ ("a", "r") ] (seed_of_int 10));
  ignore (Corpus_sched.add cs ~pairs:[ ("b", "r") ] (seed_of_int 11));
  Corpus_sched.cull cs;
  Alcotest.(check int) "both favored" 2 (Corpus_sched.favored_count cs);
  let l1 = Corpus_sched.lease cs 1 and l2 = Corpus_sched.lease cs 1 in
  match (l1, l2) with
  | [ a ], [ b ] ->
      Alcotest.(check bool) "least-leased-first rotates through the favored set" false
        (Seed.fingerprint a = Seed.fingerprint b)
  | _ -> Alcotest.fail "lease 1 returns one seed"

(* ------------------------------------------------------------------ *)
(* Wire: codec round-trips and framing over a real socketpair. *)

let roundtrip_client msg =
  match Wire.client_of_json (Wire.client_to_json msg) with
  | Error e -> Alcotest.fail ("client decode: " ^ e)
  | Ok msg' ->
      Alcotest.(check string)
        "client msg round-trips"
        (J.to_string (Wire.client_to_json msg))
        (J.to_string (Wire.client_to_json msg'))

let roundtrip_server msg =
  match Wire.server_of_json (Wire.server_to_json msg) with
  | Error e -> Alcotest.fail ("server decode: " ^ e)
  | Ok msg' ->
      Alcotest.(check string)
        "server msg round-trips"
        (J.to_string (Wire.server_to_json msg))
        (J.to_string (Wire.server_to_json msg'))

let test_wire_codecs () =
  roundtrip_client (Wire.Hello { target = "figure1"; version = Wire.protocol_version });
  roundtrip_client (Wire.Lease_req { campaigns = 30; seeds = 4 });
  roundtrip_client
    (Wire.Delta
       {
         delta = Hub.fresh_delta ();
         campaigns = 7;
         seeds = [ (fixed_seed (), [ ("fleet.test:w", "fleet.test:r") ]) ];
       });
  roundtrip_client
    (Wire.Bug
       {
         kind = "inter";
         site = "fleet.test:w";
         read_sites = [ "fleet.test:r" ];
         members = 2;
         first_campaign = Some 5;
       });
  roundtrip_client Wire.Bye;
  roundtrip_server (Wire.Hello_ack { widx = 3; budget_total = 300; budget_used = 40; corpus = 9 });
  roundtrip_server (Wire.Lease { campaigns = 12; seeds = [ fixed_seed () ] });
  roundtrip_server Wire.Retry;
  roundtrip_server Wire.Drained;
  roundtrip_server Wire.Delta_ack;
  roundtrip_server (Wire.Bug_ack { fresh = true });
  roundtrip_server Wire.Bye_ack;
  roundtrip_server (Wire.Err "boom")

let test_wire_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let frames =
    [ J.Obj [ ("n", J.Int 1) ]; J.String (String.make 300 'x'); J.List [ J.Bool true; J.Null ] ]
  in
  List.iter (Wire.send a) frames;
  List.iter
    (fun expect ->
      match Wire.recv b with
      | Error e -> Alcotest.fail ("recv: " ^ e)
      | Ok got -> Alcotest.(check string) "frame intact" (J.to_string expect) (J.to_string got))
    frames;
  Unix.close a;
  (match Wire.recv b with
  | Error "eof" -> ()
  | Error e -> Alcotest.fail ("expected eof, got: " ^ e)
  | Ok _ -> Alcotest.fail "expected eof after close");
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Store: every acknowledged mutation survives a reload (the coordinator
   SIGKILL scenario), and bug sightings dedup by (kind, site). *)

let temp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmrace_%s_%d" name (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists d then rm d;
  d

let test_store_reload () =
  let dir = temp_dir "store" in
  (match Fleet.Store.open_store ~dir ~target:"figure1" ~budget:50 with
  | Error e -> Alcotest.fail e
  | Ok st ->
      let s = fixed_seed () in
      Alcotest.(check bool) "first add is new" true
        (Fleet.Store.add_seed st ~pairs:[ ("w", "r1") ] s);
      Alcotest.(check bool) "re-add dedups" false
        (Fleet.Store.add_seed st ~pairs:[ ("w", "r2") ] (Seed.make (Seed.threads s)));
      Alcotest.(check bool) "bug first sighting" true
        (Fleet.Store.record_bug st ~kind:"inter" ~site:"w" ~read_sites:[ "r1" ] ~members:1
           ~origin:"worker-0" ~first_campaign:(Some 3));
      Alcotest.(check bool) "bug re-sighting dedups" false
        (Fleet.Store.record_bug st ~kind:"inter" ~site:"w" ~read_sites:[ "r2" ] ~members:2
           ~origin:"worker-1" ~first_campaign:(Some 1));
      Fleet.Store.record_campaigns st 10;
      Alcotest.(check int) "widx 0" 0 (Fleet.Store.next_widx st);
      Alcotest.(check int) "widx 1" 1 (Fleet.Store.next_widx st));
  (* Reopen from disk: the budget ledger, client counter, corpus entry
     (with absorbed pairs) and merged bug sighting must all be back. *)
  match Fleet.Store.open_store ~dir ~target:"figure1" ~budget:50 with
  | Error e -> Alcotest.fail e
  | Ok st ->
      Alcotest.(check int) "used budget persisted" 10 (Fleet.Store.budget_used st);
      Alcotest.(check int) "remaining budget" 40 (Fleet.Store.budget_remaining st);
      Alcotest.(check int) "client counter persisted" 2 (Fleet.Store.next_widx st);
      Alcotest.(check int) "one corpus entry" 1
        (Corpus_sched.size (Fleet.Store.corpus st));
      (match Corpus_sched.find (Fleet.Store.corpus st) (Seed.fingerprint (fixed_seed ())) with
      | None -> Alcotest.fail "corpus entry reloaded by fingerprint"
      | Some e ->
          Alcotest.(check (list (pair string string)))
            "absorbed pairs persisted"
            [ ("w", "r1"); ("w", "r2") ]
            e.Corpus_sched.e_pairs);
      match Fleet.Store.bugs st with
      | [ b ] ->
          Alcotest.(check string) "bug kind" "inter" b.Fleet.Store.be_kind;
          Alcotest.(check int) "members summed across sightings" 3 b.Fleet.Store.be_members;
          Alcotest.(check (list string)) "read sites unioned" [ "r1"; "r2" ]
            b.Fleet.Store.be_read_sites;
          Alcotest.(check string) "first origin wins" "worker-0" b.Fleet.Store.be_origin
      | bs -> Alcotest.failf "expected one deduped bug, got %d" (List.length bs)

(* ------------------------------------------------------------------ *)
(* Merge algebra (QCheck).  Fleet accumulation rests on two invariants:
   merging the same delta twice leaves the coverage sets exactly as one
   merge does (a worker retrying a shipment is harmless), and the order
   shards merge in does not change the unique-bug set. *)

let qc_sites = Array.init 8 (fun i -> Printf.sprintf "fleet.qc:s%d" i)

(* A random non-empty delta, built through the wire codec (the only
   public constructor with content) — a faithful stand-in for a shipped
   worker delta. *)
let random_delta rng =
  let hex = Bytes.make (65536 / 8 * 2) '0' in
  for _ = 0 to 40 do
    Bytes.set hex (Rng.int rng (Bytes.length hex)) "123456789abcdef".[Rng.int rng 15]
  done;
  let pick () = qc_sites.(Rng.int rng (Array.length qc_sites)) in
  let pairs =
    List.init (1 + Rng.int rng 5) (fun _ ->
        J.Obj [ ("write", J.String (pick ())); ("read", J.String (pick ())) ])
  in
  let branches =
    List.sort_uniq compare (List.init (1 + Rng.int rng 6) (fun _ -> pick ()))
    |> List.map (fun n -> J.String n)
  in
  let queue =
    List.init (Rng.int rng 3) (fun i ->
        J.Obj
          [
            ("addr", J.Int (16 * i));
            ("loads", J.List [ J.String (pick ()) ]);
            ("stores", J.List [ J.String (pick ()) ]);
            ("load_tids", J.List [ J.Int 0 ]);
            ("store_tids", J.List [ J.Int 1 ]);
            ("hits", J.Int (1 + Rng.int rng 9));
          ])
  in
  let j =
    J.Obj
      [
        ( "alias",
          J.Obj
            [
              ("size", J.Int 65536);
              ("bits", J.String (Bytes.to_string hex));
              ("site_pairs", J.List pairs);
            ] );
        ("branch", J.List branches);
        ("queue", J.List queue);
      ]
  in
  match Hub.delta_of_json j with
  | Ok d -> d
  | Error e -> Alcotest.fail ("random delta decode: " ^ e)

(* The coverage-set view of a delta: alias bitmap + named site pairs +
   branch set.  Queue hit counters are additive by design and excluded. *)
let coverage_sets d =
  let j = Hub.delta_to_json d in
  let get name = Option.get (J.member name j) in
  J.to_string (J.Obj [ ("alias", get "alias"); ("branch", get "branch") ])

let prop_merge_idempotent =
  QCheck.Test.make ~name:"fleet: delta merge idempotent on coverage sets" ~count:60
    QCheck.small_int (fun n ->
      let rng = Rng.create n in
      let src = random_delta rng in
      let once = Hub.fresh_delta () and twice = Hub.fresh_delta () in
      Hub.merge_delta_into ~src ~dst:once;
      Hub.merge_delta_into ~src ~dst:twice;
      Hub.merge_delta_into ~src ~dst:twice;
      String.equal (coverage_sets once) (coverage_sets twice))

(* Three real figure1 shards, built once (inside the test run, after the
   golden suites).  Distinct master seeds make them genuinely divergent. *)
let shards =
  lazy
    (let mk label seed =
       let cfg = Fuzzer.Config.make ~max_campaigns:40 ~master_seed:seed () in
       let s = Fuzzer.run Workloads.Figure1.target cfg in
       (label, Artifact.of_session ~target:Workloads.Figure1.target ~cfg s)
     in
     [ mk "a" 3; mk "b" 7; mk "c" 11 ])

let prop_merge_order_independent =
  QCheck.Test.make ~name:"fleet: shard merge order does not change the unique-bug set" ~count:20
    QCheck.small_int (fun n ->
      let shards = Lazy.force shards in
      let reference =
        match Artifact.merge shards with Ok a -> a | Error e -> Alcotest.fail e
      in
      let permuted =
        Array.to_list (Rng.shuffle (Rng.create n) (Array.of_list shards))
      in
      match Artifact.merge permuted with
      | Error e -> Alcotest.fail e
      | Ok merged ->
          Artifact.bug_fingerprints merged = Artifact.bug_fingerprints reference
          && List.sort_uniq compare merged.Artifact.a_site_pairs
             = List.sort_uniq compare reference.Artifact.a_site_pairs
          && merged.Artifact.a_campaigns = reference.Artifact.a_campaigns)

let test_merge_origins_replayable () =
  let shards = Lazy.force shards in
  match Artifact.merge shards with
  | Error e -> Alcotest.fail e
  | Ok merged ->
      Alcotest.(check int) "campaigns sum" 120 merged.Artifact.a_campaigns;
      Alcotest.(check (list string))
        "origins in merge order" [ "a"; "b"; "c" ]
        (List.map (fun o -> o.Artifact.o_label) merged.Artifact.a_origins);
      Alcotest.(check (list int))
        "offsets accumulate by span" [ 0; 40; 80 ]
        (List.map (fun o -> o.Artifact.o_offset) merged.Artifact.a_origins);
      (* Re-based provenance is dense over the merged range... *)
      Alcotest.(check int) "provenance entries" 120 (List.length merged.Artifact.a_provenance);
      (* ...and a bug from the merged artifact replays end-to-end. *)
      match Pmrace.Replay.replay_bug ~target:Workloads.Figure1.target ~artifact:merged ~bug:0 with
      | Error e -> Alcotest.fail ("replay from merged artifact: " ^ e)
      | Ok o -> Alcotest.(check bool) "bug reproduced" true o.Pmrace.Replay.r_reproduced

(* ------------------------------------------------------------------ *)
(* End to end: a coordinator on a real socket, one worker process-worth
   of fuzzing in this process, drain, and the durable aftermath. *)

let test_coordinator_worker_session () =
  let dir = temp_dir "fleet_e2e" in
  Unix.mkdir dir 0o755;
  let socket_path = Filename.concat dir "hub.sock" in
  let store_dir = Filename.concat dir "store" in
  let ccfg =
    {
      Fleet.Coordinator.default_config with
      socket_path;
      store_dir;
      target = "figure1";
      budget = 30;
      campaigns_per_lease = 10;
      seeds_per_lease = 2;
    }
  in
  let ready = Atomic.make false in
  let coord =
    Domain.spawn (fun () ->
        Fleet.Coordinator.serve ~on_ready:(fun () -> Atomic.set ready true) ccfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let wcfg =
    {
      Fleet.Worker.default_config with
      connect = socket_path;
      cfg = Fuzzer.Config.make ~master_seed:3 ();
      lease_campaigns = 10;
      lease_seeds = 2;
    }
  in
  let outcome = Fleet.Worker.run wcfg Workloads.Figure1.target in
  match (outcome, Domain.join coord) with
  | Error e, _ -> Alcotest.fail ("worker: " ^ e)
  | _, Error e -> Alcotest.fail ("coordinator: " ^ e)
  | Ok o, Ok st ->
      Alcotest.(check int) "worker ran the whole budget" 30 o.Fleet.Worker.o_campaigns;
      Alcotest.(check int) "first worker index" 0 o.Fleet.Worker.o_widx;
      Alcotest.(check int) "coordinator accounted every campaign" 30
        st.Fleet.Coordinator.st_campaigns;
      Alcotest.(check int) "one client served" 1 st.Fleet.Coordinator.st_clients;
      let local_bugs =
        List.length (Pmrace.Report.bug_groups o.Fleet.Worker.o_session.Fuzzer.report)
      in
      Alcotest.(check int) "every local bug group reported fleet-wide" local_bugs
        st.Fleet.Coordinator.st_bugs;
      (* The drained store is the durable record: reopening it shows the
         same ledger a restarted coordinator would resume from. *)
      match Fleet.Store.open_store ~dir:store_dir ~target:"figure1" ~budget:30 with
      | Error e -> Alcotest.fail e
      | Ok store ->
          Alcotest.(check int) "budget fully used on disk" 30 (Fleet.Store.budget_used store);
          Alcotest.(check int) "bug sightings persisted" local_bugs
            (List.length (Fleet.Store.bugs store))

(* A client that skips or flunks the handshake gets an Err and is
   dropped — it must never reach the lease/delta/bug handlers (which
   would otherwise record work as "worker--1" and bypass the
   target-match check). *)
let test_protocol_hygiene () =
  let dir = temp_dir "fleet_hygiene" in
  Unix.mkdir dir 0o755;
  let socket_path = Filename.concat dir "hub.sock" in
  let ccfg =
    {
      Fleet.Coordinator.default_config with
      socket_path;
      store_dir = Filename.concat dir "store";
      target = "figure1";
      budget = 5;
      campaigns_per_lease = 5;
      seeds_per_lease = 1;
    }
  in
  let ready = Atomic.make false in
  let coord =
    Domain.spawn (fun () ->
        Fleet.Coordinator.serve ~on_ready:(fun () -> Atomic.set ready true) ccfg)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.005
  done;
  let expect_err_then_drop label msg =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    Wire.send fd (Wire.client_to_json msg);
    (match Wire.recv fd with
    | Ok j -> (
        match Wire.server_of_json j with
        | Ok (Wire.Err _) -> ()
        | _ -> Alcotest.failf "%s: expected an Err reply" label)
    | Error e -> Alcotest.failf "%s: expected an Err reply, got %s" label e);
    (match Wire.recv fd with
    | Error _ -> () (* eof: the coordinator dropped us *)
    | Ok _ -> Alcotest.failf "%s: coordinator must drop the connection" label);
    Unix.close fd
  in
  expect_err_then_drop "lease before hello" (Wire.Lease_req { campaigns = 1; seeds = 0 });
  expect_err_then_drop "delta before hello"
    (Wire.Delta { delta = Hub.fresh_delta (); campaigns = 3; seeds = [] });
  expect_err_then_drop "version mismatch"
    (Wire.Hello { target = "figure1"; version = Wire.protocol_version + 1 });
  (* A legitimate worker then drains the budget so the loop exits. *)
  let wcfg =
    {
      Fleet.Worker.default_config with
      connect = socket_path;
      cfg = Fuzzer.Config.make ~master_seed:3 ();
      lease_campaigns = 5;
      lease_seeds = 1;
    }
  in
  (match Fleet.Worker.run wcfg Workloads.Figure1.target with
  | Error e -> Alcotest.fail ("worker: " ^ e)
  | Ok o ->
      Alcotest.(check int) "rogue delta not accounted: full budget left for the worker" 5
        o.Fleet.Worker.o_campaigns);
  match Domain.join coord with
  | Error e -> Alcotest.fail ("coordinator: " ^ e)
  | Ok st ->
      Alcotest.(check int) "rogue clients never became workers" 1 st.Fleet.Coordinator.st_clients;
      Alcotest.(check int) "only leased campaigns accounted" 5 st.Fleet.Coordinator.st_campaigns

(* Adaptive lease sizing: rate × horizon clamped to [min, max]; an
   unmeasured client (rate 0) gets the cap so warm-up is not serialized
   on round trips. *)
let test_lease_size () =
  let size rate = Fleet.Coordinator.lease_size ~rate ~horizon:2.0 ~min_lease:5 ~max_lease:30 in
  Alcotest.(check int) "unmeasured client gets the cap" 30 (size 0.);
  Alcotest.(check int) "fast client clamps to the cap" 30 (size 1000.);
  Alcotest.(check int) "slow client clamps to the floor" 5 (size 0.1);
  Alcotest.(check int) "mid-rate client sized to horizon" 16 (size 8.4);
  Alcotest.(check int) "floor never exceeds the cap" 3
    (Fleet.Coordinator.lease_size ~rate:0.01 ~horizon:1.0 ~min_lease:10 ~max_lease:3)

let suite =
  [
    Alcotest.test_case "fingerprint goldens (store format)" `Quick test_fingerprint_golden;
    Alcotest.test_case "fingerprint depends only on content" `Quick test_fingerprint_content_only;
    QCheck_alcotest.to_alcotest prop_fingerprint_deterministic;
    Alcotest.test_case "corpus: dedup absorbs pairs" `Quick test_corpus_dedup_absorbs;
    Alcotest.test_case "corpus: favored cover + tombstones" `Quick test_corpus_cull_cover;
    Alcotest.test_case "corpus: lease rotates favored" `Quick test_corpus_lease_rotates;
    Alcotest.test_case "wire: codecs round-trip" `Quick test_wire_codecs;
    Alcotest.test_case "wire: framing over a socketpair" `Quick test_wire_framing;
    Alcotest.test_case "store: reload after kill" `Quick test_store_reload;
    QCheck_alcotest.to_alcotest prop_merge_idempotent;
    QCheck_alcotest.to_alcotest prop_merge_order_independent;
    Alcotest.test_case "merge: origins, offsets, replay" `Quick test_merge_origins_replayable;
    Alcotest.test_case "coordinator/worker end-to-end" `Quick test_coordinator_worker_session;
    Alcotest.test_case "coordinator: protocol hygiene" `Quick test_protocol_hygiene;
    Alcotest.test_case "coordinator: adaptive lease sizing" `Quick test_lease_size;
  ]

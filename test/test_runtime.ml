(* Instrumented runtime: instruction registry, DRAM store, memory hooks,
   candidate creation, taint through shadow memory, locks. *)

module Instr = Runtime.Instr
module Tval = Runtime.Tval
module Taint = Runtime.Taint
module Env = Runtime.Env
module Mem = Runtime.Mem
module Dram = Runtime.Dram
module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates

let mk () = Env.create ~pool_words:512 ()

let test_instr_registry () =
  let a = Instr.site "test_runtime:a" in
  let a' = Instr.site "test_runtime:a" in
  let b = Instr.site "test_runtime:b" in
  Alcotest.(check bool) "memoised" true (Instr.equal a a');
  Alcotest.(check bool) "distinct" false (Instr.equal a b);
  Alcotest.(check string) "name roundtrip" "test_runtime:a" (Instr.name a);
  Alcotest.(check bool) "of_int roundtrip" true (Instr.equal a (Instr.of_int (Instr.to_int a)));
  Alcotest.check_raises "of_int unknown"
    (Invalid_argument (Printf.sprintf "Instr.of_int: unknown id %d" 99999)) (fun () ->
      ignore (Instr.of_int 99999));
  Alcotest.check_raises "of_int negative"
    (Invalid_argument "Instr.of_int: unknown id -1") (fun () -> ignore (Instr.of_int (-1)))

let test_dram () =
  let d = Dram.create () in
  let k1 : int Dram.key = Dram.key ~name:"k1" () in
  let k2 : string Dram.key = Dram.key ~name:"k2" () in
  Alcotest.(check (option int)) "missing" None (Dram.find d k1);
  Dram.set d k1 42;
  Dram.set d k2 "hello";
  Alcotest.(check (option int)) "typed get" (Some 42) (Dram.find d k1);
  Alcotest.(check (option string)) "typed get 2" (Some "hello") (Dram.find d k2);
  Dram.set d k1 7;
  Alcotest.(check (option int)) "overwrite" (Some 7) (Dram.find d k1);
  Alcotest.(check int) "find_or_add existing" 7 (Dram.find_or_add d k1 (fun () -> 0));
  Dram.clear d;
  Alcotest.(check (option int)) "cleared" None (Dram.find d k1)

let i_w = Instr.site "test_runtime:w"
let i_r = Instr.site "test_runtime:r"
let i_e = Instr.site "test_runtime:e"

let test_load_store_roundtrip () =
  let env = mk () in
  let ctx = Env.ctx env ~tid:0 in
  Mem.store ctx ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  Alcotest.(check int) "roundtrip" 7 (Tval.to_int (Mem.load ctx ~instr:i_r (Tval.of_int 100)))

let test_candidate_on_dirty_read () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Alcotest.(check bool) "tainted" true (Tval.is_tainted v);
  Alcotest.(check int) "one inter candidate" 1
    (Candidates.unique_count (Checkers.candidates env.checkers) Candidates.Inter);
  (* Same-thread read: intra candidate. *)
  let _ = Mem.load c0 ~instr:i_r (Tval.of_int 100) in
  Alcotest.(check int) "one intra candidate" 1
    (Candidates.unique_count (Checkers.candidates env.checkers) Candidates.Intra)

let test_candidate_unique_dedup () =
  (* The same (write-site, read-site) pair hit twice: two dynamic
     candidates, one unique pair. *)
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  for _ = 1 to 2 do
    Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
    ignore (Mem.load c1 ~instr:i_r (Tval.of_int 100))
  done;
  let cands = Checkers.candidates env.checkers in
  Alcotest.(check int) "dynamic 2" 2 (Candidates.dynamic_count cands);
  Alcotest.(check int) "unique 1" 1 (Candidates.unique_count cands Candidates.Inter);
  match Candidates.unique cands Candidates.Inter with
  | [ c ] ->
      Alcotest.(check bool) "write site" true (Instr.equal c.Candidates.write_instr i_w);
      Alcotest.(check bool) "read site" true (Instr.equal c.Candidates.read_instr i_r)
  | l -> Alcotest.failf "expected 1 unique candidate, got %d" (List.length l)

let test_clean_read_untainted () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  Mem.persist c0 ~instr:i_w (Tval.of_int 100);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Alcotest.(check bool) "clean read untainted" false (Tval.is_tainted v);
  Alcotest.(check int) "no candidates" 0
    (Candidates.dynamic_count (Checkers.candidates env.checkers))

let test_taint_through_shadow_memory () =
  (* Tainted value stored to PM, loaded back: the taint persists. *)
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let dirty = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.store c1 ~instr:i_e (Tval.of_int 200) dirty;
  Mem.persist c1 ~instr:i_e (Tval.of_int 200);
  let back = Mem.load c1 ~instr:i_r (Tval.of_int 200) in
  Alcotest.(check bool) "taint survives PM roundtrip" true (Tval.is_tainted back)

let test_inconsistency_value_flow () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.store c1 ~instr:i_e (Tval.of_int 200) v;
  Mem.persist c1 ~instr:i_e (Tval.of_int 200);
  match Checkers.inconsistencies env.checkers with
  | [ inc ] ->
      Alcotest.(check string) "write site" "test_runtime:w"
        (Instr.name inc.source.Candidates.write_instr);
      Alcotest.(check bool) "value flow" false inc.addr_flow;
      Alcotest.(check bool) "image captured" true (inc.image <> None)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 inconsistency, got %d" (List.length l))

let test_inconsistency_addr_flow () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 256);
  let p = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.store c1 ~instr:i_e p (Tval.of_int 1);
  Mem.persist c1 ~instr:i_e p;
  match Checkers.inconsistencies env.checkers with
  | [ inc ] -> Alcotest.(check bool) "addr flow" true inc.addr_flow
  | _ -> Alcotest.fail "expected 1 inconsistency"

let test_window_closed_no_inconsistency () =
  (* If the source is flushed before the dependent write persists, there is
     no crash window, hence no inconsistency. *)
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.store c1 ~instr:i_e (Tval.of_int 200) v;
  Mem.persist c0 ~instr:i_w (Tval.of_int 100) (* source persisted first *);
  Mem.persist c1 ~instr:i_e (Tval.of_int 200);
  Alcotest.(check int) "no inconsistency" 0
    (List.length (Checkers.inconsistencies env.checkers));
  Alcotest.(check int) "but the candidate was seen" 1
    (Candidates.unique_count (Checkers.candidates env.checkers) Candidates.Inter)

let test_unpersisted_effect_no_inconsistency () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.store c1 ~instr:i_e (Tval.of_int 200) v;
  (* no flush of the dependent write *)
  Alcotest.(check int) "no inconsistency without durability" 0
    (List.length (Checkers.inconsistencies env.checkers))

let test_external_effect () =
  let env = mk () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  Mem.external_effect c1 ~instr:i_e v;
  match Checkers.inconsistencies env.checkers with
  | [ inc ] -> Alcotest.(check bool) "external" true inc.external_effect
  | _ -> Alcotest.fail "expected 1 external inconsistency"

let test_sync_events () =
  let env = mk () in
  Env.annotate_sync env ~name:"test:lock" ~addr:64 ~len:1 ~init:0L;
  let ctx = Env.ctx env ~tid:0 in
  Mem.store ctx ~instr:i_w (Tval.of_int 64) Tval.one;
  Alcotest.(check int) "not persisted yet" 0
    (List.length (Checkers.sync_events env.checkers));
  Mem.persist ctx ~instr:i_w (Tval.of_int 64);
  (match Checkers.sync_events env.checkers with
  | [ ev ] ->
      Alcotest.(check string) "var" "test:lock" ev.var.Checkers.sv_name;
      Alcotest.(check int64) "value" 1L ev.sy_value
  | _ -> Alcotest.fail "expected 1 sync event");
  (* Re-persisting the same value type is recorded once. *)
  Mem.store ctx ~instr:i_w (Tval.of_int 64) Tval.one;
  Mem.persist ctx ~instr:i_w (Tval.of_int 64);
  Alcotest.(check int) "deduplicated per value" 1
    (List.length (Checkers.sync_events env.checkers));
  (* Persisting the init value is not an event. *)
  Mem.store ctx ~instr:i_w (Tval.of_int 64) Tval.zero;
  Mem.persist ctx ~instr:i_w (Tval.of_int 64);
  Alcotest.(check int) "init value is benign" 1
    (List.length (Checkers.sync_events env.checkers))

let test_cas () =
  let env = mk () in
  let ctx = Env.ctx env ~tid:0 in
  Alcotest.(check bool) "cas succeeds" true
    (Mem.cas ctx ~instr:i_w (Tval.of_int 100) ~expect:Tval.zero ~value:Tval.one);
  Alcotest.(check bool) "cas fails" false
    (Mem.cas ctx ~instr:i_w (Tval.of_int 100) ~expect:Tval.zero ~value:Tval.one);
  Alcotest.(check int) "value" 1 (Tval.to_int (Mem.load ctx ~instr:i_r (Tval.of_int 100)))

let test_cas_nt_is_clean () =
  let env = mk () in
  let ctx = Env.ctx env ~tid:0 in
  ignore (Mem.cas ~nt:true ctx ~instr:i_w (Tval.of_int 100) ~expect:Tval.zero ~value:Tval.one);
  Alcotest.(check bool) "nt cas never dirty" false (Pmem.Pool.is_dirty env.pool 100)

let test_spin_lock_stuck () =
  let env = mk () in
  let ctx = Env.ctx env ~tid:0 in
  Mem.spin_lock ctx ~instr:i_w (Tval.of_int 100);
  match Mem.spin_lock ctx ~instr:i_w (Tval.of_int 100) with
  | () -> Alcotest.fail "expected Stuck"
  | exception Mem.Stuck _ -> ()

let test_reset_checkers_keeps_annotations () =
  let env = mk () in
  Env.annotate_sync env ~name:"test:lock2" ~addr:64 ~len:1 ~init:0L;
  let ctx = Env.ctx env ~tid:0 in
  Mem.store ctx ~instr:i_w (Tval.of_int 8) Tval.one;
  ignore (Mem.load ctx ~instr:i_r (Tval.of_int 8));
  Env.reset_checkers env;
  Alcotest.(check int) "candidates cleared" 0
    (Candidates.dynamic_count (Checkers.candidates env.checkers));
  Alcotest.(check int) "annotations kept" 1 (Checkers.annotation_count env.checkers)

let test_eviction_confirms () =
  (* An eviction (instead of an explicit fence) can also persist a
     dependent write and confirm the inconsistency. *)
  let env = Env.create ~pool_words:512 ~evict_prob:1.0 ~evict_seed:3 () in
  let c0 = Env.ctx env ~tid:0 and c1 = Env.ctx env ~tid:1 in
  Mem.store c0 ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
  let v = Mem.load c1 ~instr:i_r (Tval.of_int 100) in
  (* Repeated dependent stores: with eviction probability 1 some line gets
     evicted after each store; eventually the dependent word persists. *)
  for i = 0 to 60 do
    if Pmem.Pool.is_dirty env.pool 100 then
      Mem.store c1 ~instr:i_e (Tval.of_int (200 + (8 * (i mod 8)))) v
  done;
  Alcotest.(check bool) "eviction-confirmed inconsistency" true
    (Checkers.inconsistencies env.checkers <> []
    || not (Pmem.Pool.is_dirty env.pool 100))

let suite =
  [
    Alcotest.test_case "instruction registry" `Quick test_instr_registry;
    Alcotest.test_case "dram typed store" `Quick test_dram;
    Alcotest.test_case "load/store roundtrip" `Quick test_load_store_roundtrip;
    Alcotest.test_case "candidate on dirty read" `Quick test_candidate_on_dirty_read;
    Alcotest.test_case "candidate dedup by site pair" `Quick test_candidate_unique_dedup;
    Alcotest.test_case "clean read untainted" `Quick test_clean_read_untainted;
    Alcotest.test_case "taint through shadow memory" `Quick test_taint_through_shadow_memory;
    Alcotest.test_case "inconsistency: value flow" `Quick test_inconsistency_value_flow;
    Alcotest.test_case "inconsistency: addr flow" `Quick test_inconsistency_addr_flow;
    Alcotest.test_case "window closed: benign" `Quick test_window_closed_no_inconsistency;
    Alcotest.test_case "unpersisted effect: benign" `Quick test_unpersisted_effect_no_inconsistency;
    Alcotest.test_case "external durable effect" `Quick test_external_effect;
    Alcotest.test_case "sync-variable events" `Quick test_sync_events;
    Alcotest.test_case "cas" `Quick test_cas;
    Alcotest.test_case "cas nt is clean" `Quick test_cas_nt_is_clean;
    Alcotest.test_case "spin lock stuck" `Quick test_spin_lock_stuck;
    Alcotest.test_case "reset keeps annotations" `Quick test_reset_checkers_keeps_annotations;
    Alcotest.test_case "eviction can confirm" `Quick test_eviction_confirms;
  ]

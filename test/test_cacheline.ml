(* Cache-line geometry. *)

open Pmem

let test_constants () =
  Alcotest.(check int) "bytes/word" 8 Cacheline.bytes_per_word;
  Alcotest.(check int) "words/line" 8 Cacheline.words_per_line;
  Alcotest.(check int) "bytes/line" 64 Cacheline.bytes_per_line

let test_line_of_word () =
  Alcotest.(check int) "word 0" 0 (Cacheline.line_of_word 0);
  Alcotest.(check int) "word 7" 0 (Cacheline.line_of_word 7);
  Alcotest.(check int) "word 8" 1 (Cacheline.line_of_word 8);
  Alcotest.(check int) "word 63" 7 (Cacheline.line_of_word 63)

let test_words_of_line () =
  Alcotest.(check (list int)) "line of 10" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Cacheline.words_of_line_containing 10)

let test_same_line () =
  Alcotest.(check bool) "8 and 15" true (Cacheline.same_line 8 15);
  Alcotest.(check bool) "7 and 8" false (Cacheline.same_line 7 8)

(* The allocation-free line walks must agree with the (deprecated,
   cold-path) list materialisation, in order. *)
let prop_iter_fold_match_list =
  QCheck.Test.make ~name:"cacheline: iter_line/fold_line ≡ words_of_line_containing" ~count:100
    QCheck.(int_bound 10_000)
    (fun w ->
      let listed = Cacheline.words_of_line_containing w in
      let via_iter =
        let acc = ref [] in
        Cacheline.iter_line (fun x -> acc := x :: !acc) w;
        List.rev !acc
      in
      let via_fold = List.rev (Cacheline.fold_line (fun acc x -> x :: acc) [] w) in
      via_iter = listed && via_fold = listed
      && Cacheline.fold_line (fun n _ -> n + 1) 0 w = Cacheline.words_per_line)

let prop_roundtrip =
  QCheck.Test.make ~name:"cacheline: first_word_of_line inverts line_of_word" ~count:100
    QCheck.(int_bound 10_000)
    (fun w ->
      let l = Cacheline.line_of_word w in
      let f = Cacheline.first_word_of_line l in
      f <= w && w < f + Cacheline.words_per_line)

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "line_of_word" `Quick test_line_of_word;
    Alcotest.test_case "words_of_line_containing" `Quick test_words_of_line;
    Alcotest.test_case "same_line" `Quick test_same_line;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_iter_fold_match_list;
  ]

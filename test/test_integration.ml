(* End-to-end integration: full fuzzing sessions against each tested PM
   system must rediscover the paper's seeded bugs with the paper's
   false-positive profile (Tables 2/3). *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Candidates = Runtime.Candidates

let session (target : Pmrace.Target.t) ~campaigns ~seed =
  Fuzzer.run target
    (Fuzzer.Config.make ~max_campaigns:campaigns ~master_seed:seed
       ~use_checkpoint:target.expensive_init ())

let check_bugs_found target session ids =
  let found = Fuzzer.found_known_bugs session target in
  List.iter
    (fun id ->
      match List.find_opt (fun ((kb : Pmrace.Target.known_bug), _) -> kb.kb_id = id) found with
      | Some (_, true) -> ()
      | Some (kb, false) -> Alcotest.failf "bug %d (%s) not found" id kb.kb_description
      | None -> Alcotest.failf "bug %d not registered" id)
    ids

let test_pclht () =
  let t = Workloads.Pclht.target in
  let s = session t ~campaigns:400 ~seed:5 in
  check_bugs_found t s [ 1; 2; 3; 4; 5 ];
  (* The sync-inconsistency profile of Table 3: 4 annotations, 4 events,
     3 validated FPs (resize/gc/version locks), 1 bug (bucket locks). *)
  Alcotest.(check int) "annotations" 4 s.annotations;
  Alcotest.(check int) "sync events" 4 (List.length (Report.sync_findings s.report));
  let fp, _, bugs, _ = Report.sync_verdict_summary s.report in
  Alcotest.(check int) "sync validated FPs" 3 fp;
  Alcotest.(check int) "sync bugs" 1 bugs

let test_cceh () =
  let t = Workloads.Cceh.target in
  let s = session t ~campaigns:250 ~seed:5 in
  check_bugs_found t s [ 6; 7 ];
  (* Table 3: CCEH has no Inter-thread Inconsistency at all. *)
  Alcotest.(check int) "no inter inconsistencies" 0
    (Report.inconsistency_count s.report Candidates.Inter);
  Alcotest.(check int) "2 annotations" 2 s.annotations;
  Alcotest.(check int) "1 sync event" 1 (List.length (Report.sync_findings s.report))

let test_fastfair () =
  let t = Workloads.Fastfair.target in
  let s = session t ~campaigns:350 ~seed:5 in
  check_bugs_found t s [ 8 ];
  (* FAST-FAIR reports many inconsistencies its lazy recovery tolerates. *)
  Alcotest.(check bool) "many candidates" true
    (Report.candidate_count s.report Candidates.Inter >= 10);
  Alcotest.(check int) "no annotations" 0 s.annotations

let test_clevel () =
  let t = Workloads.Clevel.target in
  let s = session t ~campaigns:150 ~seed:5 in
  (* No bugs; all inter inconsistencies are whitelisted FPs (PMDK tx). *)
  let fp, wl, bugs, pending = Report.verdict_summary s.report Candidates.Inter in
  Alcotest.(check int) "no inter bugs" 0 bugs;
  Alcotest.(check int) "no pending" 0 pending;
  Alcotest.(check bool) "whitelist filtered the tx inconsistencies" true (wl >= 1);
  Alcotest.(check int) "no sync findings" 0 (List.length (Report.sync_findings s.report));
  ignore fp;
  Alcotest.(check (list Alcotest.string)) "no bug groups" []
    (List.map (fun g -> g.Report.bg_site) (Report.bug_groups s.report))

let test_memcached () =
  let t = Workloads.Memcached.target in
  let s = session t ~campaigns:500 ~seed:9 in
  check_bugs_found t s [ 9; 10; 11; 12; 13; 14 ];
  (* The index/LRU rebuild turns many link inconsistencies into validated
     false positives — the dominant validated-FP count of Table 3. *)
  let fp, _, _, _ = Report.verdict_summary s.report Candidates.Inter in
  Alcotest.(check bool) "validation filters many FPs" true (fp >= 10);
  Alcotest.(check int) "no annotations" 0 s.annotations

let test_candidate_ranking () =
  (* Table 3's ranking of inter-thread candidates:
     memcached, fast-fair >> p-clht, cceh > clevel. *)
  let count target campaigns seed =
    Report.candidate_count (session target ~campaigns ~seed).Fuzzer.report Candidates.Inter
  in
  let mc = count Workloads.Memcached.target 300 9 in
  let ff = count Workloads.Fastfair.target 300 5 in
  let clht = count Workloads.Pclht.target 300 5 in
  let clevel = count Workloads.Clevel.target 150 5 in
  Alcotest.(check bool)
    (Printf.sprintf "mc=%d ff=%d clht=%d clevel=%d" mc ff clht clevel)
    true
    (mc > clevel && ff > clevel && ff >= clht)

let suite =
  [
    Alcotest.test_case "p-clht session (bugs 1-5)" `Slow test_pclht;
    Alcotest.test_case "cceh session (bugs 6-7)" `Slow test_cceh;
    Alcotest.test_case "fast-fair session (bug 8)" `Slow test_fastfair;
    Alcotest.test_case "clevel session (no bugs)" `Slow test_clevel;
    Alcotest.test_case "memcached session (bugs 9-14)" `Slow test_memcached;
    Alcotest.test_case "candidate count ranking" `Slow test_candidate_ranking;
  ]

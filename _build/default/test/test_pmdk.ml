(* mini-PMDK: heap allocator, undo-log transactions, pool management. *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Heap = Pmdk.Heap
module Tx = Pmdk.Tx
module Layout = Pmdk.Layout

let mk () =
  let env = Env.create ~pool_words:1024 () in
  let ctx = Env.ctx env ~tid:0 in
  Pmdk.Objpool.create ctx;
  (env, ctx)

let test_heap_alloc () =
  let _, ctx = mk () in
  let a = Heap.alloc ctx ~words:3 in
  let b = Heap.alloc ctx ~words:8 in
  Alcotest.(check int) "first chunk at heap base" Layout.heap_base a;
  Alcotest.(check int) "line-aligned rounding" (Layout.heap_base + 8) b;
  Alcotest.(check int) "used" 16 (Heap.used ctx)

let test_heap_alignment () =
  let _, ctx = mk () in
  for _ = 1 to 10 do
    let a = Heap.alloc ctx ~words:5 in
    Alcotest.(check int) "line aligned" 0 (a mod Pmem.Cacheline.words_per_line)
  done

let test_heap_oom () =
  let _, ctx = mk () in
  Alcotest.check_raises "oom" Heap.Out_of_memory (fun () ->
      ignore (Heap.alloc ctx ~words:100_000))

let test_heap_invalid () =
  let _, ctx = mk () in
  Alcotest.check_raises "zero words" (Invalid_argument "Heap.alloc: words must be positive")
    (fun () -> ignore (Heap.alloc ctx ~words:0))

let test_heap_metadata_never_dirty () =
  let env, ctx = mk () in
  ignore (Heap.alloc ctx ~words:8);
  Alcotest.(check bool) "bump pointer clean" false (Pmem.Pool.is_dirty env.pool Layout.heap_meta)

let test_heap_concurrent_alloc_disjoint () =
  (* Under a preempting scheduler, two allocating fibers never receive the
     same chunk. *)
  let env = Env.create ~pool_words:2048 () in
  let init_ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create init_ctx;
  Env.set_policy env Env.preempt_policy;
  let results = ref [] in
  let sched = Sched.Scheduler.create ~rng:(Sched.Rng.create 3) () in
  for t = 0 to 3 do
    ignore
      (Sched.Scheduler.spawn sched ~name:"alloc" (fun () ->
           let ctx = Env.ctx env ~tid:t in
           for _ = 1 to 5 do
             (* Bind first: the alloc yields, and [!results] must be read
                after it returns. *)
             let chunk = Heap.alloc ctx ~words:8 in
             results := chunk :: !results
           done))
  done;
  ignore (Sched.Scheduler.run sched);
  let sorted = List.sort_uniq compare !results in
  Alcotest.(check int) "20 distinct chunks" 20 (List.length sorted)

let test_tx_commit () =
  let env, ctx = mk () in
  let addr = Tval.of_int (Layout.root_base + 4) in
  let tx = Tx.begin_ ctx in
  Tx.store ctx tx addr (Tval.of_int 42);
  Tx.commit ctx tx;
  Alcotest.(check int64) "durable after commit" 42L
    (Pmem.Pool.image_word (Pmem.Pool.crash_image env.pool) (Layout.root_base + 4))

let test_tx_uncommitted_reverted () =
  let env, ctx = mk () in
  let addr = Tval.of_int (Layout.root_base + 4) in
  Mem.store ctx ~instr:(Runtime.Instr.site "t:init") addr (Tval.of_int 7);
  Mem.persist ctx ~instr:(Runtime.Instr.site "t:init") addr;
  let tx = Tx.begin_ ctx in
  Tx.store ctx tx addr (Tval.of_int 42);
  (* Crash before commit: the dirty data may or may not have reached PM;
     force the worst case by flushing it, then recover. *)
  Mem.persist ctx ~instr:(Runtime.Instr.site "t:crash") addr;
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  let rctx = Env.ctx env2 ~tid:(-2) in
  Tx.recover rctx;
  Alcotest.(check int) "reverted to pre-tx value" 7
    (Tval.to_int (Mem.load rctx ~instr:(Runtime.Instr.site "t:check") addr))

let test_tx_recover_idempotent_on_clean () =
  let env, ctx = mk () in
  let tx = Tx.begin_ ctx in
  Tx.store ctx tx (Tval.of_int (Layout.root_base + 4)) (Tval.of_int 1);
  Tx.commit ctx tx;
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  let rctx = Env.ctx env2 ~tid:(-2) in
  Tx.recover rctx;
  Alcotest.(check int) "committed data untouched" 1
    (Tval.to_int (Mem.load rctx ~instr:(Runtime.Instr.site "t:check") (Tval.of_int (Layout.root_base + 4))))

let test_tx_alloc_into () =
  let env, ctx = mk () in
  let dst = Tval.of_int (Layout.root_base + 6) in
  let tx = Tx.begin_ ctx in
  let off = Tx.alloc_into ctx tx ~dst ~words:8 in
  Alcotest.(check int) "pointer stored" off
    (Tval.to_int (Mem.load ctx ~instr:(Runtime.Instr.site "t:check") dst));
  Tx.commit ctx tx;
  Alcotest.(check int64) "pointer durable" (Int64.of_int off)
    (Pmem.Pool.image_word (Pmem.Pool.crash_image env.pool) (Layout.root_base + 6))

let test_tx_log_full () =
  let _, ctx = mk () in
  let tx = Tx.begin_ ctx in
  Alcotest.check_raises "log full" Tx.Log_full (fun () ->
      for i = 0 to Layout.log_entries do
        Tx.store ctx tx (Tval.of_int (Layout.root_base + i)) Tval.one
      done)

let test_objpool_root () =
  let env, ctx = mk () in
  Pmdk.Objpool.set_root ctx 3 (Tval.of_int 99);
  Alcotest.(check int) "root field" 99 (Tval.to_int (Pmdk.Objpool.get_root ctx 3));
  Alcotest.(check bool) "is pmemobj" true (Pmdk.Objpool.is_pmemobj ctx);
  Alcotest.(check int64) "root durable" 99L
    (Pmem.Pool.image_word (Pmem.Pool.crash_image env.pool) (Layout.root_base + 3));
  Alcotest.check_raises "root bounds"
    (Invalid_argument "Objpool.root_field: out of root area") (fun () ->
      ignore (Pmdk.Objpool.root_field Layout.root_words))

let test_layout () =
  Alcotest.(check int) "lane of worker" 2 (Layout.lane_of_tid 2);
  Alcotest.(check int) "lane of recovery ctx" (Layout.log_lanes - 1) (Layout.lane_of_tid (-2));
  Alcotest.(check int) "lane of overflow tid" (Layout.log_lanes - 1) (Layout.lane_of_tid 99);
  Alcotest.check_raises "bad lane" (Invalid_argument "Layout.log_off: bad lane") (fun () ->
      ignore (Layout.log_off 99))

let prop_tx_atomicity =
  (* Whatever the crash point inside a transaction, recovery restores all
     tracked words to their pre-transaction values. *)
  QCheck.Test.make ~name:"tx: crash anywhere inside tx reverts cleanly" ~count:60
    QCheck.(pair (int_range 1 8) (int_range 0 8))
    (fun (nwrites, flushes) ->
      let env, ctx = mk () in
      let init_i = Runtime.Instr.site "t:prop_init" in
      for i = 0 to nwrites - 1 do
        Mem.store ctx ~instr:init_i (Tval.of_int (Layout.root_base + i)) (Tval.of_int (100 + i));
        Mem.persist ctx ~instr:init_i (Tval.of_int (Layout.root_base + i))
      done;
      let tx = Tx.begin_ ctx in
      for i = 0 to nwrites - 1 do
        Tx.store ctx tx (Tval.of_int (Layout.root_base + i)) (Tval.of_int (200 + i));
        (* Simulate arbitrary cache eviction of some of the dirty data. *)
        if i < flushes then Mem.persist ctx ~instr:init_i (Tval.of_int (Layout.root_base + i))
      done;
      (* Crash before commit. *)
      let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
      let rctx = Env.ctx env2 ~tid:(-2) in
      Tx.recover rctx;
      let ok = ref true in
      for i = 0 to nwrites - 1 do
        let v = Tval.to_int (Mem.load rctx ~instr:init_i (Tval.of_int (Layout.root_base + i))) in
        if v <> 100 + i then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "heap alloc" `Quick test_heap_alloc;
    Alcotest.test_case "heap alignment" `Quick test_heap_alignment;
    Alcotest.test_case "heap out of memory" `Quick test_heap_oom;
    Alcotest.test_case "heap invalid size" `Quick test_heap_invalid;
    Alcotest.test_case "heap metadata never dirty" `Quick test_heap_metadata_never_dirty;
    Alcotest.test_case "concurrent allocs disjoint" `Quick test_heap_concurrent_alloc_disjoint;
    Alcotest.test_case "tx commit persists" `Quick test_tx_commit;
    Alcotest.test_case "tx uncommitted reverted" `Quick test_tx_uncommitted_reverted;
    Alcotest.test_case "tx recover on clean state" `Quick test_tx_recover_idempotent_on_clean;
    Alcotest.test_case "tx alloc_into" `Quick test_tx_alloc_into;
    Alcotest.test_case "tx log full" `Quick test_tx_log_full;
    Alcotest.test_case "objpool root" `Quick test_objpool_root;
    Alcotest.test_case "layout lanes" `Quick test_layout;
    QCheck_alcotest.to_alcotest prop_tx_atomicity;
  ]

(* SplitMix64 determinism and distribution sanity. *)

module Rng = Sched.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Int64.equal (Rng.next a) (Rng.next b) then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of range"
  done

let test_int_invalid () =
  let r = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_float_range () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let f = Rng.float r in
    if f < 0. || f >= 1. then Alcotest.fail "float out of range"
  done

let test_pick () =
  let r = Rng.create 3 in
  Alcotest.(check int) "singleton" 5 (Rng.pick r [ 5 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r []))

let test_copy_independent () =
  let a = Rng.create 42 in
  ignore (Rng.next a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies aligned" (Rng.next a) (Rng.next b)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"rng: shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let sh = Rng.shuffle (Rng.create seed) a in
      List.sort compare (Array.to_list sh) = List.sort compare xs)

let prop_shuffle_preserves_input =
  QCheck.Test.make ~name:"rng: shuffle does not mutate its input" ~count:100
    QCheck.(small_list int)
    (fun xs ->
      let a = Array.of_list xs in
      let copy = Array.copy a in
      ignore (Rng.shuffle (Rng.create 1) a);
      a = copy)

let prop_int_uniformish =
  QCheck.Test.make ~name:"rng: int covers the whole range" ~count:20
    QCheck.(int_range 2 20)
    (fun n ->
      let r = Rng.create 1234 in
      let seen = Array.make n false in
      for _ = 1 to n * 100 do
        seen.(Rng.int r n) <- true
      done;
      Array.for_all Fun.id seen)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "int range" `Quick test_int_range;
    Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "copy" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves_input;
    QCheck_alcotest.to_alcotest prop_int_uniformish;
  ]

(* Functional correctness of the five PM systems (single-threaded
   semantics, resize/split/eviction paths, recovery), independent of bug
   detection. *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Seed = Pmrace.Seed

let fresh (target : Pmrace.Target.t) =
  let env = Env.create ~pool_words:target.pool_words () in
  target.init env;
  Pmem.Pool.quiesce env.pool;
  Env.reset_checkers env;
  target.annotate env;
  env

(* Every target executes any well-formed op sequence single-threaded
   without raising, and recovers cleanly from a quiesced image. *)
let test_target_smoke (target : Pmrace.Target.t) () =
  let env = fresh target in
  let ctx = Env.ctx env ~tid:0 in
  let rng = Sched.Rng.create 17 in
  let seed = Seed.gen rng target.profile in
  List.iter (fun op -> target.run_op ctx op) (Seed.all_ops seed);
  Pmem.Pool.quiesce env.pool;
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  target.annotate env2;
  target.recover env2

let prop_target_any_ops (target : Pmrace.Target.t) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: arbitrary single-threaded op sequences are safe" target.name)
    ~count:30
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun s ->
      let env = fresh target in
      let ctx = Env.ctx env ~tid:0 in
      let rng = Sched.Rng.create s in
      let profile = { target.profile with Seed.ops_per_thread = 12 } in
      let seed = Seed.gen rng profile in
      (* A Stuck spin lock is acceptable for targets seeded with a
         lock-leak bug (P-CLHT's bug 5 self-deadlocks even
         single-threaded); any other exception is a real defect. *)
      (try List.iter (fun op -> target.run_op ctx op) (Seed.all_ops seed) with
      | Runtime.Mem.Stuck _
        when List.exists
               (fun (kb : Pmrace.Target.known_bug) ->
                 kb.kb_type = `Other && kb.kb_read_site = None)
               target.known_bugs ->
          ());
      true)

(* --- P-CLHT ---------------------------------------------------------- *)

let test_pclht_put_get () =
  let env = fresh Workloads.Pclht.target in
  let ctx = Env.ctx env ~tid:0 in
  Workloads.Pclht.put ctx 5 (Tval.of_int 500);
  Workloads.Pclht.put ctx 9 (Tval.of_int 900);
  (match Workloads.Pclht.get ctx 5 with
  | Some v -> Alcotest.(check int) "get 5" 500 (Tval.to_int v)
  | None -> Alcotest.fail "missing key 5");
  Alcotest.(check bool) "missing key" true (Workloads.Pclht.get ctx 12 = None);
  Workloads.Pclht.delete ctx 5;
  Alcotest.(check bool) "deleted" true (Workloads.Pclht.get ctx 5 = None)

let test_pclht_resize_preserves () =
  let env = fresh Workloads.Pclht.target in
  let ctx = Env.ctx env ~tid:0 in
  (* Enough same-bucket keys to force chains and a resize. *)
  for k = 0 to 31 do
    Workloads.Pclht.put ctx k (Tval.of_int (k * 10))
  done;
  for k = 0 to 31 do
    match Workloads.Pclht.get ctx k with
    | Some v -> Alcotest.(check int) (Printf.sprintf "key %d" k) (k * 10) (Tval.to_int v)
    | None -> Alcotest.failf "key %d lost (resize)" k
  done

let test_pclht_recovery_locks () =
  let env = fresh Workloads.Pclht.target in
  let ctx = Env.ctx env ~tid:0 in
  (* Hold the resize lock and a bucket lock, then crash. *)
  Mem.spin_lock ~persist_lock:true ctx ~instr:(Runtime.Instr.site "t:rl")
    (Tval.of_int (Pmdk.Layout.root_base + 1));
  let bucket_lock = Pmdk.Layout.heap_base + 8 in
  Mem.spin_lock ~persist_lock:true ctx ~instr:(Runtime.Instr.site "t:bl")
    (Tval.of_int bucket_lock);
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  Workloads.Pclht.target.annotate env2;
  Workloads.Pclht.target.recover env2;
  Alcotest.(check int64) "resize lock released by recovery" 0L
    (Pmem.Pool.peek env2.pool (Pmdk.Layout.root_base + 1));
  Alcotest.(check int64) "bucket lock NOT released (bug 2)" 1L
    (Pmem.Pool.peek env2.pool bucket_lock)

(* The bug 1 consequence, demonstrated end to end: an insert based on the
   unflushed table pointer is lost after crash recovery. *)
let test_pclht_bug1_data_loss () =
  let target = Workloads.Pclht.target in
  let rng = Sched.Rng.create 5 in
  let profile = { target.profile with Seed.supported = [ Seed.KPut ] } in
  let seed = Pmrace.Mutator.populate rng profile ~factor:3 in
  let rec hunt s =
    if s > 300 then Alcotest.fail "no bug-1 inconsistency within 300 schedules"
    else
      let entry =
        {
          Pmrace.Shared_queue.addr = Pmdk.Layout.root_base;
          loads = [ Runtime.Instr.site "clht_lb_res.c:417" ];
          stores = [ Runtime.Instr.site "clht_lb_res.c:785" ];
          hits = 1;
        }
      in
      let input =
        Pmrace.Campaign.input ~sched_seed:s
          ~policy:(Pmrace.Campaign.Pmrace { entry; skip = 0 })
          target seed
      in
      let r = Pmrace.Campaign.run input in
      let incs =
        List.filter
          (fun (i : Runtime.Checkers.inconsistency) ->
            Runtime.Instr.name i.source.Runtime.Candidates.write_instr = "clht_lb_res.c:785")
          (Runtime.Checkers.inconsistencies r.env.Env.checkers)
      in
      match incs with [] -> hunt (s + 1) | inc :: _ -> inc
  in
  let inc = hunt 1 in
  let image = Option.get inc.Runtime.Checkers.image in
  (* After recovery from the crash image, the stale table pointer is in
     place: the durable side effect (the inserted item in the new table)
     is unreachable. *)
  let env2 = Env.of_image image in
  target.annotate env2;
  target.recover env2;
  let stale_ht = Pmem.Pool.peek env2.pool Pmdk.Layout.root_base in
  Alcotest.(check bool) "recovered table pointer is the old table" true
    (not (Int64.equal stale_ht 0L));
  (* The effect word lives outside the reachable (old) table's bucket
     array: data loss. *)
  Alcotest.(check bool) "side effect targeted the unreachable new table" true
    (inc.Runtime.Checkers.eff_addr > Int64.to_int stale_ht)

(* --- CCEH ------------------------------------------------------------ *)

let test_cceh_put_get () =
  let env = fresh Workloads.Cceh.target in
  let ctx = Env.ctx env ~tid:0 in
  Workloads.Cceh.put ctx 3 (Tval.of_int 30);
  Workloads.Cceh.put ctx 7 (Tval.of_int 70);
  (match Workloads.Cceh.get ctx 3 with
  | Some v -> Alcotest.(check int) "get" 30 (Tval.to_int v)
  | None -> Alcotest.fail "missing");
  Workloads.Cceh.delete ctx 3;
  Alcotest.(check bool) "deleted" true (Workloads.Cceh.get ctx 3 = None)

let test_cceh_expand_preserves () =
  let env = fresh Workloads.Cceh.target in
  let ctx = Env.ctx env ~tid:0 in
  for k = 0 to 19 do
    Workloads.Cceh.put ctx k (Tval.of_int (k + 100))
  done;
  let missing = ref [] in
  for k = 0 to 19 do
    match Workloads.Cceh.get ctx k with
    | Some v when Tval.to_int v = k + 100 -> ()
    | _ -> missing := k :: !missing
  done;
  Alcotest.(check (list int)) "no keys lost across expansion" [] !missing

(* --- FAST-FAIR ------------------------------------------------------- *)

let test_fastfair_insert_search () =
  let env = fresh Workloads.Fastfair.target in
  let ctx = Env.ctx env ~tid:0 in
  List.iter (fun k -> Workloads.Fastfair.insert ctx k (k * 2)) [ 5; 1; 9; 3; 7 ];
  (match Workloads.Fastfair.search ctx 3 with
  | Some v -> Alcotest.(check int) "search" 6 (Tval.to_int v)
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "absent key" true (Workloads.Fastfair.search ctx 4 = None)

let test_fastfair_split_preserves () =
  let env = fresh Workloads.Fastfair.target in
  let ctx = Env.ctx env ~tid:0 in
  for k = 0 to 30 do
    Workloads.Fastfair.insert ctx k k
  done;
  for k = 0 to 30 do
    match Workloads.Fastfair.search ctx k with
    | Some v -> Alcotest.(check int) (Printf.sprintf "key %d" k) k (Tval.to_int v)
    | None -> Alcotest.failf "key %d lost across splits" k
  done

let test_fastfair_scan () =
  let env = fresh Workloads.Fastfair.target in
  let ctx = Env.ctx env ~tid:0 in
  for k = 0 to 20 do
    Workloads.Fastfair.insert ctx k (k * 3)
  done;
  let vs = Workloads.Fastfair.scan ctx 5 16 in
  Alcotest.(check bool) "scan returns successors" true (List.length vs > 0);
  Alcotest.(check bool) "values beyond start key" true (List.for_all (fun v -> v > 15) vs)

let test_fastfair_delete () =
  let env = fresh Workloads.Fastfair.target in
  let ctx = Env.ctx env ~tid:0 in
  List.iter (fun k -> Workloads.Fastfair.insert ctx k k) [ 1; 2; 3 ];
  Workloads.Fastfair.delete ctx 2;
  Alcotest.(check bool) "deleted" true (Workloads.Fastfair.search ctx 2 = None);
  Alcotest.(check bool) "others intact" true (Workloads.Fastfair.search ctx 3 <> None)

let test_fastfair_recovery_fixes_nkeys () =
  let env = fresh Workloads.Fastfair.target in
  let ctx = Env.ctx env ~tid:0 in
  Workloads.Fastfair.insert ctx 1 10;
  Workloads.Fastfair.insert ctx 2 20;
  Pmem.Pool.quiesce env.pool;
  (* Corrupt nkeys in the durable image (simulating a lost counter). *)
  let head = Int64.to_int (Pmem.Pool.peek env.pool (Pmdk.Layout.root_base)) in
  Mem.store ctx ~instr:(Runtime.Instr.site "t:corrupt") (Tval.of_int (head + 1)) (Tval.of_int 7);
  Mem.persist ctx ~instr:(Runtime.Instr.site "t:corrupt") (Tval.of_int (head + 1));
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  Workloads.Fastfair.target.recover env2;
  Alcotest.(check int64) "nkeys recomputed from entries" 2L (Pmem.Pool.peek env2.pool (head + 1))

(* --- clevel ---------------------------------------------------------- *)

let test_clevel_put_get () =
  let env = fresh Workloads.Clevel.target in
  let ctx = Env.ctx env ~tid:0 in
  Workloads.Clevel.ensure_constructed ctx;
  Workloads.Clevel.put ctx 4 (Tval.of_int 44);
  match Workloads.Clevel.get ctx 4 with
  | Some v -> Alcotest.(check int) "get" 44 (Tval.to_int v)
  | None -> Alcotest.fail "missing"

let test_clevel_constructor_recovers () =
  (* Crash mid-construction: the transaction recovery reverts the root. *)
  let env = fresh Workloads.Clevel.target in
  let ctx = Env.ctx env ~tid:0 in
  Workloads.Clevel.ensure_constructed ctx;
  (* The root cons pointer is committed and durable after construction. *)
  Pmem.Pool.quiesce env.pool;
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  Workloads.Clevel.target.recover env2;
  Alcotest.(check bool) "constructed index survives" true
    (not (Int64.equal (Pmem.Pool.peek env2.pool Pmdk.Layout.root_base) 0L))

(* --- memcached-pmem -------------------------------------------------- *)

let mc_run ctx s = ignore (Workloads.Memcached.process_command ctx s)

let test_memcached_set_get () =
  let env = fresh Workloads.Memcached.target in
  let ctx = Env.ctx env ~tid:0 in
  mc_run ctx "set k1 0 0 3\r\nabc\r\n";
  mc_run ctx "get k1\r\n";
  mc_run ctx "delete k1\r\n";
  mc_run ctx "get k1\r\n";
  Alcotest.(check bool) "branch sites covered" true
    (Runtime.Candidates.dynamic_count
       (Runtime.Checkers.candidates env.Env.checkers)
    >= 0)

let test_memcached_recovery_rebuilds_index () =
  let env = fresh Workloads.Memcached.target in
  let ctx = Env.ctx env ~tid:0 in
  mc_run ctx "set k1 0 0 3\r\nabc\r\n";
  mc_run ctx "set k2 0 0 4\r\nwxyz\r\n";
  Pmem.Pool.quiesce env.pool;
  let env2 = Env.of_image (Pmem.Pool.crash_image env.pool) in
  Workloads.Memcached.target.recover env2;
  Alcotest.(check bool) "k1 reachable after rebuild" true
    (Workloads.Memcached.lookup_after_recovery env2 1 <> None);
  Alcotest.(check bool) "k2 reachable after rebuild" true
    (Workloads.Memcached.lookup_after_recovery env2 2 <> None);
  Alcotest.(check bool) "k3 absent" true
    (Workloads.Memcached.lookup_after_recovery env2 3 = None)

let test_memcached_eviction () =
  let env = fresh Workloads.Memcached.target in
  let ctx = Env.ctx env ~tid:0 in
  (* Exhaust a slab class: later sets must evict rather than fail. *)
  for k = 0 to 30 do
    mc_run ctx (Printf.sprintf "set k%d 0 0 3\r\nabc\r\n" k)
  done;
  mc_run ctx "get k30\r\n";
  Alcotest.(check bool) "survives arena exhaustion" true true

let test_memcached_incr () =
  let env = fresh Workloads.Memcached.target in
  let ctx = Env.ctx env ~tid:0 in
  mc_run ctx "set k1 0 0 3\r\nabc\r\n";
  mc_run ctx "incr k1 5\r\n";
  mc_run ctx "decr k1 2\r\n";
  Alcotest.(check bool) "delta ops run" true true

let suite =
  List.concat
    [
      List.map
        (fun (t : Pmrace.Target.t) ->
          Alcotest.test_case (t.name ^ ": smoke + recovery") `Quick (test_target_smoke t))
        Workloads.Registry.with_examples;
      List.map
        (fun (t : Pmrace.Target.t) -> QCheck_alcotest.to_alcotest (prop_target_any_ops t))
        Workloads.Registry.all;
      [
        Alcotest.test_case "p-clht: put/get/delete" `Quick test_pclht_put_get;
        Alcotest.test_case "p-clht: resize preserves items" `Quick test_pclht_resize_preserves;
        Alcotest.test_case "p-clht: recovery lock policy" `Quick test_pclht_recovery_locks;
        Alcotest.test_case "p-clht: bug 1 data loss end-to-end" `Quick test_pclht_bug1_data_loss;
        Alcotest.test_case "cceh: put/get/delete" `Quick test_cceh_put_get;
        Alcotest.test_case "cceh: expansion preserves items" `Quick test_cceh_expand_preserves;
        Alcotest.test_case "fast-fair: insert/search" `Quick test_fastfair_insert_search;
        Alcotest.test_case "fast-fair: splits preserve items" `Quick test_fastfair_split_preserves;
        Alcotest.test_case "fast-fair: scan" `Quick test_fastfair_scan;
        Alcotest.test_case "fast-fair: delete" `Quick test_fastfair_delete;
        Alcotest.test_case "fast-fair: recovery fixes nkeys" `Quick test_fastfair_recovery_fixes_nkeys;
        Alcotest.test_case "clevel: put/get" `Quick test_clevel_put_get;
        Alcotest.test_case "clevel: constructor recovery" `Quick test_clevel_constructor_recovers;
        Alcotest.test_case "memcached: commands" `Quick test_memcached_set_get;
        Alcotest.test_case "memcached: recovery rebuilds index" `Quick
          test_memcached_recovery_rebuilds_index;
        Alcotest.test_case "memcached: eviction" `Quick test_memcached_eviction;
        Alcotest.test_case "memcached: incr/decr" `Quick test_memcached_incr;
      ];
    ]

test/test_coverage.ml: Alcotest Hashtbl List Pmrace Printf QCheck QCheck_alcotest Runtime

test/test_taint.ml: Alcotest List QCheck QCheck_alcotest Runtime

test/test_pmdk.ml: Alcotest Int64 List Pmdk Pmem QCheck QCheck_alcotest Runtime Sched

test/test_workloads.ml: Alcotest Int64 List Option Pmdk Pmem Pmrace Printf QCheck QCheck_alcotest Runtime Sched Workloads

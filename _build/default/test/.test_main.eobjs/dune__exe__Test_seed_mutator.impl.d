test/test_seed_mutator.ml: Alcotest Array List Pmrace Printf QCheck QCheck_alcotest Sched String Workloads

test/test_policies.ml: Alcotest Pmrace Printf Runtime Sched

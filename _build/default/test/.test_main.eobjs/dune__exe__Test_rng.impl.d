test/test_rng.ml: Alcotest Array Fun Int64 List QCheck QCheck_alcotest Sched

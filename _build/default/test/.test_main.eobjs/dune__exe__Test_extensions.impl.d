test/test_extensions.ml: Alcotest Buffer Format Hashtbl List Pmem Pmrace Runtime String Workloads

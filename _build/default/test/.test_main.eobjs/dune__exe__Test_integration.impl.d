test/test_integration.ml: Alcotest List Pmrace Printf Runtime Workloads

test/test_scheduler.ml: Alcotest Array Buffer Fun List QCheck QCheck_alcotest Sched

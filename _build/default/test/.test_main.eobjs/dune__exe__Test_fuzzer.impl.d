test/test_fuzzer.ml: Alcotest List Pmrace Runtime Workloads

test/test_runtime.ml: Alcotest List Pmem Printf Runtime

test/test_pool.ml: Alcotest Cacheline Gen Hashtbl Int64 List Option Pmem Pool QCheck QCheck_alcotest Test

test/test_cacheline.ml: Alcotest Cacheline Pmem QCheck QCheck_alcotest

test/test_proto.ml: Alcotest QCheck QCheck_alcotest Workloads

test/test_campaign.ml: Alcotest Int64 List Option Pmem Pmrace Runtime Sched Workloads

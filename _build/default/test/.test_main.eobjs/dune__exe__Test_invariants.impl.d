test/test_invariants.ml: Alcotest Hashtbl Int64 Lazy List Pmrace Printf Runtime Workloads

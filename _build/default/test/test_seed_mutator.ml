(* Seeds, the operation mutator, and the AFL havoc baseline. *)

module Seed = Pmrace.Seed
module Mutator = Pmrace.Mutator
module Rng = Sched.Rng

let profile = { Seed.default_profile with key_range = 10; threads = 3; ops_per_thread = 4 }

let valid_op (op : Seed.op) =
  let k = Seed.key_of op in
  k >= 0 && k < profile.key_range

let test_gen_shape () =
  let s = Seed.gen (Rng.create 1) profile in
  Alcotest.(check int) "threads" 3 (Array.length (Seed.threads s));
  Alcotest.(check int) "ops" 12 (Seed.op_count s);
  Alcotest.(check bool) "ops valid" true (List.for_all valid_op (Seed.all_ops s))

let test_gen_only_supported () =
  let p = { profile with Seed.supported = [ Seed.KGet ] } in
  let s = Seed.gen (Rng.create 2) p in
  Alcotest.(check bool) "only gets" true
    (List.for_all (fun op -> Seed.kind_of_op op = Seed.KGet) (Seed.all_ops s))

let test_ids_unique () =
  let a = Seed.gen (Rng.create 1) profile and b = Seed.gen (Rng.create 1) profile in
  Alcotest.(check bool) "fresh ids" true (Seed.id a <> Seed.id b)

let test_render () =
  Alcotest.(check string) "set" "set k3 0 0 2\r\n55\r\n"
    (Seed.render_op (Seed.Put { key = 3; value = 55 }));
  Alcotest.(check string) "get" "get k3\r\n" (Seed.render_op (Seed.Get { key = 3 }));
  Alcotest.(check string) "delete" "delete k1\r\n" (Seed.render_op (Seed.Delete { key = 1 }));
  Alcotest.(check string) "incr" "incr k2 4\r\n" (Seed.render_op (Seed.Incr { key = 2; delta = 4 }))

let rendered_parses op =
  match Workloads.Memcached_proto.parse (Seed.render_op op) with Ok _ -> true | Error _ -> false

let prop_render_parses =
  QCheck.Test.make ~name:"seed: every rendered op parses" ~count:300
    (QCheck.make (QCheck.Gen.int_bound 1_000_000))
    (fun seed ->
      let p = { profile with Seed.supported = Seed.[ KPut; KGet; KUpdate; KDelete; KIncr; KDecr; KAppend; KPrepend; KScan ] } in
      let s = Seed.gen (Rng.create seed) p in
      List.for_all rendered_parses (Seed.all_ops s))

let multiset s =
  List.sort compare (List.map Seed.render_op (Seed.all_ops s))

let prop_shuffle_preserves_ops =
  QCheck.Test.make ~name:"mutator: shuffling preserves the operation multiset" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let seed = Seed.gen (Rng.create s1) profile in
      let shuffled = Mutator.shuffle_ops (Rng.create s2) profile seed in
      multiset seed = multiset shuffled)

let prop_mutation_valid =
  QCheck.Test.make ~name:"mutator: all strategies keep ops valid" ~count:200
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let rng = Rng.create s2 in
      let seed = Seed.gen (Rng.create s1) profile in
      let _, child = Mutator.evolve rng profile ~corpus:[ seed ] seed in
      List.for_all valid_op (Seed.all_ops child))

let prop_addition_grows =
  QCheck.Test.make ~name:"mutator: addition adds exactly one op" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let seed = Seed.gen (Rng.create s1) profile in
      Seed.op_count (Mutator.add_op (Rng.create s2) profile seed) = Seed.op_count seed + 1)

let prop_deletion_shrinks =
  QCheck.Test.make ~name:"mutator: deletion removes at most one op" ~count:100
    QCheck.(pair small_int small_int)
    (fun (s1, s2) ->
      let seed = Seed.gen (Rng.create s1) profile in
      let n = Seed.op_count (Mutator.delete_op (Rng.create s2) profile seed) in
      n = Seed.op_count seed - 1 || n = Seed.op_count seed)

let prop_merge_combines =
  QCheck.Test.make ~name:"mutator: merging concatenates both seeds" ~count:100
    QCheck.(triple small_int small_int small_int)
    (fun (s1, s2, s3) ->
      let a = Seed.gen (Rng.create s1) profile and b = Seed.gen (Rng.create s2) profile in
      let m = Mutator.merge (Rng.create s3) profile a b in
      Seed.op_count m = Seed.op_count a + Seed.op_count b)

let test_populate () =
  let s = Mutator.populate (Rng.create 5) profile ~factor:3 in
  Alcotest.(check int) "3x ops" (3 * 4 * 3) (Seed.op_count s);
  Alcotest.(check bool) "all inserts" true
    (List.for_all (fun op -> Seed.kind_of_op op = Seed.KPut) (Seed.all_ops s))

let test_near_key_bias () =
  (* The generator biases towards keys near already-used ones (§4.5): with
     a large key space, consecutive ops collide far more often than two
     uniform draws would. *)
  let p = { profile with Seed.key_range = 1000; ops_per_thread = 200; threads = 1 } in
  let s = Seed.gen (Rng.create 9) p in
  let ops = Seed.all_ops s in
  let near = ref 0 and total = ref 0 in
  let rec walk = function
    | a :: (b :: _ as rest) ->
        incr total;
        if abs (Seed.key_of a - Seed.key_of b) <= 2 then incr near;
        walk rest
    | _ -> ()
  in
  walk ops;
  Alcotest.(check bool)
    (Printf.sprintf "near-key ratio %d/%d" !near !total)
    true
    (float_of_int !near /. float_of_int !total > 0.3)

let test_afl_havoc_changes () =
  let rng = Rng.create 11 in
  let original = "set k1 0 0 3\r\nabc\r\n" in
  let changed = ref 0 in
  for _ = 1 to 20 do
    if not (String.equal (Mutator.afl_havoc rng original) original) then incr changed
  done;
  Alcotest.(check bool) "havoc mutates" true (!changed > 15)

let test_afl_mostly_invalid () =
  (* The headline behind Table 4: grammar-oblivious mutation mostly breaks
     the protocol. *)
  let rng = Rng.create 13 in
  let original = "set k1 0 0 3\r\nabc\r\n" in
  let invalid = ref 0 in
  for _ = 1 to 100 do
    match Workloads.Memcached_proto.parse (Mutator.afl_havoc rng original) with
    | Error _ -> incr invalid
    | Ok _ -> ()
  done;
  Alcotest.(check bool) "mostly parse errors" true (!invalid > 50)

let suite =
  [
    Alcotest.test_case "gen shape" `Quick test_gen_shape;
    Alcotest.test_case "gen respects profile" `Quick test_gen_only_supported;
    Alcotest.test_case "seed ids unique" `Quick test_ids_unique;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "populate" `Quick test_populate;
    Alcotest.test_case "near-key bias" `Quick test_near_key_bias;
    Alcotest.test_case "afl havoc mutates" `Quick test_afl_havoc_changes;
    Alcotest.test_case "afl output mostly invalid" `Quick test_afl_mostly_invalid;
    QCheck_alcotest.to_alcotest prop_render_parses;
    QCheck_alcotest.to_alcotest prop_shuffle_preserves_ops;
    QCheck_alcotest.to_alcotest prop_mutation_valid;
    QCheck_alcotest.to_alcotest prop_addition_grows;
    QCheck_alcotest.to_alcotest prop_deletion_shrinks;
    QCheck_alcotest.to_alcotest prop_merge_combines;
  ]

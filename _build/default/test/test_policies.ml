(* The PM-aware sync-point policy (Figure 6) and the delay baseline. *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Rng = Sched.Rng
module Scheduler = Sched.Scheduler
module Sync = Pmrace.Sync_policy

let i_w = Instr.site "pol:w"
let i_r = Instr.site "pol:r"
let i_e = Instr.site "pol:e"

let entry addr = { Pmrace.Shared_queue.addr; loads = [ i_r ]; stores = [ i_w ]; hits = 1 }

(* A writer that stores the shared word then flushes a few steps later, and
   a reader that reads it and makes a durable side effect: the sync policy
   must coordinate them into the inconsistency. *)
let run_pair ~policy ~sched_seed =
  let env = Env.create ~pool_words:512 () in
  Env.set_policy env policy;
  let sched = Scheduler.create ~rng:(Rng.create sched_seed) () in
  ignore
    (Scheduler.spawn sched ~name:"writer" (fun () ->
         let ctx = Env.ctx env ~tid:0 in
         Mem.store ctx ~instr:i_w (Tval.of_int 100) (Tval.of_int 7);
         Mem.persist ctx ~instr:i_w (Tval.of_int 100)));
  ignore
    (Scheduler.spawn sched ~name:"reader" (fun () ->
         let ctx = Env.ctx env ~tid:1 in
         let v = Mem.load ctx ~instr:i_r (Tval.of_int 100) in
         Mem.store ctx ~instr:i_e (Tval.of_int 200) v;
         Mem.persist ctx ~instr:i_e (Tval.of_int 200)));
  let outcome = Scheduler.run sched in
  (env, outcome)

let test_sync_policy_triggers () =
  (* Across a handful of seeds, the sync policy must reliably produce the
     inter-thread inconsistency. *)
  let hits = ref 0 in
  for seed = 1 to 10 do
    let sp = Sync.create ~rng:(Rng.create seed) ~nthreads:2 ~skip:0 (entry 100) in
    let env, _ = run_pair ~policy:(Sync.policy sp) ~sched_seed:seed in
    if Runtime.Checkers.inconsistencies env.checkers <> [] then incr hits
  done;
  Alcotest.(check bool) "sync policy reliable (>=8/10)" true (!hits >= 8)

let test_sync_policy_beats_random () =
  let count policy_of =
    let hits = ref 0 in
    for seed = 1 to 20 do
      let env, _ = run_pair ~policy:(policy_of seed) ~sched_seed:seed in
      if Runtime.Checkers.inconsistencies env.checkers <> [] then incr hits
    done;
    !hits
  in
  let sync_hits =
    count (fun seed -> Sync.policy (Sync.create ~rng:(Rng.create seed) ~nthreads:2 ~skip:0 (entry 100)))
  in
  let random_hits = count (fun _ -> Env.preempt_policy) in
  Alcotest.(check bool)
    (Printf.sprintf "sync (%d) > random (%d)" sync_hits random_hits)
    true (sync_hits > random_hits)

let test_signal_state () =
  let sp = Sync.create ~rng:(Rng.create 1) ~nthreads:2 ~skip:0 (entry 100) in
  let _ = run_pair ~policy:(Sync.policy sp) ~sched_seed:1 in
  Alcotest.(check bool) "signalled" true (Sync.triggered sp)

let test_no_writer_disables () =
  (* Only readers: the sync point must give up rather than hang forever. *)
  let sp = Sync.create ~rng:(Rng.create 1) ~nthreads:2 ~skip:0 (entry 100) in
  let env = Env.create ~pool_words:512 () in
  Env.set_policy env (Sync.policy sp);
  let sched = Scheduler.create ~rng:(Rng.create 1) () in
  for t = 0 to 1 do
    ignore
      (Scheduler.spawn sched ~name:"reader" (fun () ->
           let ctx = Env.ctx env ~tid:t in
           ignore (Mem.load ctx ~instr:i_r (Tval.of_int 100))))
  done;
  let o = Scheduler.run sched in
  Alcotest.(check bool) "completes despite no writer" true (Scheduler.completed o);
  Alcotest.(check bool) "not signalled" false (Sync.triggered sp)

let test_skip_mechanism () =
  (* With skip >= number of cond_wait executions, the reader never waits. *)
  let sp = Sync.create ~rng:(Rng.create 1) ~nthreads:2 ~skip:100 (entry 100) in
  let env = Env.create ~pool_words:512 () in
  Env.set_policy env (Sync.policy sp);
  let sched = Scheduler.create ~step_budget:5_000 ~rng:(Rng.create 1) () in
  ignore
    (Scheduler.spawn sched ~name:"reader" (fun () ->
         let ctx = Env.ctx env ~tid:0 in
         ignore (Mem.load ctx ~instr:i_r (Tval.of_int 100))));
  let o = Scheduler.run sched in
  Alcotest.(check bool) "fast completion" true (o.steps < 100);
  Alcotest.(check int) "no waits executed" 0 (Sync.waits_executed sp)

let test_next_skip () =
  let sp = Sync.create ~rng:(Rng.create 1) ~nthreads:4 ~skip:0 (entry 100) in
  (* Nothing hung: skip unchanged. *)
  Alcotest.(check int) "no hang, same skip" 5 (Sync.next_skip sp ~previous:5)

(* Pitfall 2: when every worker blocks at the sync point, a privileged
   thread is elected and the execution completes. *)
let test_privileged_election () =
  let sp = Sync.create ~rng:(Rng.create 2) ~nthreads:2 ~skip:0 (entry 100) in
  let env = Env.create ~pool_words:512 () in
  Env.set_policy env (Sync.policy sp);
  let sched = Scheduler.create ~step_budget:50_000 ~rng:(Rng.create 2) () in
  let loaded = ref 0 in
  for t = 0 to 1 do
    ignore
      (Scheduler.spawn sched ~name:"reader" (fun () ->
           let ctx = Env.ctx env ~tid:t in
           (* Both threads are pure readers of the sync address: all block,
              the election lets one through, the other times out. *)
           ignore (Mem.load ctx ~instr:i_r (Tval.of_int 100));
           incr loaded))
  done;
  let o = Scheduler.run sched in
  Alcotest.(check bool) "both eventually ran" true (!loaded = 2);
  Alcotest.(check bool) "completed" true (Scheduler.completed o)

let test_delay_policy_inserts_delays () =
  let rng = Rng.create 1 in
  let dp = Pmrace.Delay_policy.create ~prob:1.0 ~max_delay:10 ~rng () in
  let env = Env.create ~pool_words:512 () in
  Env.set_policy env (Pmrace.Delay_policy.policy dp);
  let sched = Scheduler.create ~rng:(Rng.create 1) () in
  ignore
    (Scheduler.spawn sched ~name:"w" (fun () ->
         let ctx = Env.ctx env ~tid:0 in
         for i = 0 to 9 do
           Mem.store ctx ~instr:i_w (Tval.of_int (8 * i)) Tval.one
         done));
  let o = Scheduler.run sched in
  Alcotest.(check bool) "delays consumed steps" true (o.steps > 20)

let suite =
  [
    Alcotest.test_case "sync policy triggers inconsistencies" `Quick test_sync_policy_triggers;
    Alcotest.test_case "sync policy beats random" `Quick test_sync_policy_beats_random;
    Alcotest.test_case "signal state" `Quick test_signal_state;
    Alcotest.test_case "no writer: sync point disabled" `Quick test_no_writer_disables;
    Alcotest.test_case "skip mechanism" `Quick test_skip_mechanism;
    Alcotest.test_case "next_skip" `Quick test_next_skip;
    Alcotest.test_case "privileged-thread election" `Quick test_privileged_election;
    Alcotest.test_case "delay policy inserts delays" `Quick test_delay_policy_inserts_delays;
  ]

(* Taint label sets: lattice laws and Tval propagation. *)

module Taint = Runtime.Taint
module Tval = Runtime.Tval

let taint_of = Taint.of_labels

let test_basics () =
  Alcotest.(check bool) "empty" true (Taint.is_empty Taint.empty);
  Alcotest.(check bool) "singleton non-empty" false (Taint.is_empty (Taint.singleton 3));
  Alcotest.(check bool) "mem" true (Taint.mem 3 (Taint.singleton 3));
  Alcotest.(check (list int)) "labels sorted" [ 1; 2; 5 ] (Taint.labels (taint_of [ 5; 1; 2; 1 ]))

let small_labels = QCheck.(small_list (int_bound 50))

let prop_union_comm =
  QCheck.Test.make ~name:"taint: union commutative" ~count:200
    QCheck.(pair small_labels small_labels)
    (fun (a, b) ->
      Taint.equal (Taint.union (taint_of a) (taint_of b)) (Taint.union (taint_of b) (taint_of a)))

let prop_union_assoc =
  QCheck.Test.make ~name:"taint: union associative" ~count:200
    QCheck.(triple small_labels small_labels small_labels)
    (fun (a, b, c) ->
      let ta = taint_of a and tb = taint_of b and tc = taint_of c in
      Taint.equal (Taint.union ta (Taint.union tb tc)) (Taint.union (Taint.union ta tb) tc))

let prop_union_idem =
  QCheck.Test.make ~name:"taint: union idempotent" ~count:200 small_labels (fun a ->
      let t = taint_of a in
      Taint.equal (Taint.union t t) t)

let prop_add_mem =
  QCheck.Test.make ~name:"taint: add implies mem" ~count:200
    QCheck.(pair (int_bound 100) small_labels)
    (fun (l, a) -> Taint.mem l (Taint.add l (taint_of a)))

let prop_sorted_invariant =
  QCheck.Test.make ~name:"taint: labels strictly increasing" ~count:200
    QCheck.(pair small_labels small_labels)
    (fun (a, b) ->
      let rec increasing = function
        | x :: (y :: _ as rest) -> x < y && increasing rest
        | _ -> true
      in
      increasing (Taint.labels (Taint.union (taint_of a) (taint_of b))))

(* Tval arithmetic propagates the union of operand taints. *)
let prop_tval_arith_propagates =
  QCheck.Test.make ~name:"tval: arithmetic unions taints" ~count:200
    QCheck.(quad small_labels small_labels (int_range 1 100) (int_range 1 100))
    (fun (ta, tb, va, vb) ->
      let a = Tval.with_taint (Tval.of_int va) (taint_of ta) in
      let b = Tval.with_taint (Tval.of_int vb) (taint_of tb) in
      let expect = Taint.union (taint_of ta) (taint_of tb) in
      List.for_all
        (fun op -> Taint.equal (Tval.taint (op a b)) expect)
        [ Tval.add; Tval.sub; Tval.mul; Tval.div; Tval.logand; Tval.logor; Tval.logxor ])

let test_tval_values () =
  let open Tval in
  Alcotest.(check int) "add" 7 (to_int (add (of_int 3) (of_int 4)));
  Alcotest.(check int) "sub" (-1) (to_int (sub (of_int 3) (of_int 4)));
  Alcotest.(check int) "mul" 12 (to_int (mul (of_int 3) (of_int 4)));
  Alcotest.(check int) "div" 2 (to_int (div (of_int 9) (of_int 4)));
  Alcotest.(check int) "rem" 1 (to_int (rem (of_int 9) (of_int 4)));
  Alcotest.(check int) "shift_left" 8 (to_int (shift_left (of_int 1) 3));
  Alcotest.(check int) "shift_right" 1 (to_int (shift_right (of_int 8) 3))

let test_tval_div_by_zero () =
  Alcotest.check_raises "div" (Invalid_argument "Tval.div: division by zero") (fun () ->
      ignore (Tval.div Tval.one Tval.zero))

let test_untainted () =
  let t = Tval.with_taint (Tval.of_int 5) (Taint.singleton 1) in
  Alcotest.(check bool) "tainted" true (Tval.is_tainted t);
  Alcotest.(check bool) "untainted strips" false (Tval.is_tainted (Tval.untainted t));
  Alcotest.(check int) "value preserved" 5 (Tval.to_int (Tval.untainted t))

let test_comparisons_ignore_taint () =
  let a = Tval.with_taint (Tval.of_int 5) (Taint.singleton 1) in
  let b = Tval.of_int 5 in
  Alcotest.(check bool) "equal_v" true (Tval.equal_v a b);
  Alcotest.(check bool) "infix =" true Tval.Infix.(a = b);
  Alcotest.(check bool) "infix <" true Tval.Infix.(Tval.of_int 4 < b)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "tval arithmetic values" `Quick test_tval_values;
    Alcotest.test_case "tval division by zero" `Quick test_tval_div_by_zero;
    Alcotest.test_case "untainted" `Quick test_untainted;
    Alcotest.test_case "comparisons ignore taint" `Quick test_comparisons_ignore_taint;
    QCheck_alcotest.to_alcotest prop_union_comm;
    QCheck_alcotest.to_alcotest prop_union_assoc;
    QCheck_alcotest.to_alcotest prop_union_idem;
    QCheck_alcotest.to_alcotest prop_add_mem;
    QCheck_alcotest.to_alcotest prop_sorted_invariant;
    QCheck_alcotest.to_alcotest prop_tval_arith_propagates;
  ]

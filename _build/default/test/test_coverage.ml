(* PM alias pair coverage, branch coverage, and the shared-access queue. *)

module Alias = Pmrace.Alias_cov
module Branch = Pmrace.Branch_cov
module Queue = Pmrace.Shared_queue
module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr

let acc i d t = { Alias.a_instr = i; a_dirty = d; a_tid = t }

let test_alias_pairs () =
  let c = Alias.create () in
  Alcotest.(check bool) "new pair sets a bit" true
    (Alias.observe c ~prev:(acc 1 false 0) ~cur:(acc 2 true 1));
  Alcotest.(check bool) "same pair again: no new bit" false
    (Alias.observe c ~prev:(acc 1 false 0) ~cur:(acc 2 true 1));
  Alcotest.(check bool) "same tid ignored" false
    (Alias.observe c ~prev:(acc 1 false 0) ~cur:(acc 2 true 0));
  Alcotest.(check bool) "persistency state distinguishes" true
    (Alias.observe c ~prev:(acc 1 true 0) ~cur:(acc 2 true 1));
  Alcotest.(check int) "count" 2 (Alias.count c)

let test_alias_listener () =
  let c = Alias.create () in
  let env = Env.create ~pool_words:256 () in
  Alias.attach c env;
  let t0 = Env.ctx env ~tid:0 and t1 = Env.ctx env ~tid:1 in
  let i = Instr.site "cov:x" in
  Mem.store t0 ~instr:i (Tval.of_int 100) Tval.one;
  ignore (Mem.load t1 ~instr:i (Tval.of_int 100));
  Alcotest.(check bool) "cross-thread pair recorded" true (Alias.count c >= 1);
  let before = Alias.count c in
  ignore (Mem.load t1 ~instr:i (Tval.of_int 50));
  Alcotest.(check int) "first access to an address: no pair" before (Alias.count c)

let test_branch_cov () =
  let b = Branch.create () in
  let i1 = Instr.site "cov:b1" and i2 = Instr.site "cov:b2" in
  Alcotest.(check bool) "new" true (Branch.observe b i1);
  Alcotest.(check bool) "repeat" false (Branch.observe b i1);
  Alcotest.(check bool) "covered" true (Branch.covered b i1);
  Alcotest.(check bool) "not covered" false (Branch.covered b i2);
  Alcotest.(check int) "count" 1 (Branch.count b)

let test_shared_queue () =
  let q = Queue.create () in
  let iw = Instr.site "cov:qw" and ir = Instr.site "cov:qr" in
  (* Address 10: loaded and stored by different threads -> shared. *)
  Queue.observe_store q ~addr:10 ~instr:iw ~tid:0;
  Queue.observe_load q ~addr:10 ~instr:ir ~tid:1;
  (* Address 20: single-thread only -> not shared. *)
  Queue.observe_store q ~addr:20 ~instr:iw ~tid:0;
  Queue.observe_load q ~addr:20 ~instr:ir ~tid:0;
  (* Address 30: stored only -> not shared. *)
  Queue.observe_store q ~addr:30 ~instr:iw ~tid:0;
  Queue.observe_store q ~addr:30 ~instr:iw ~tid:1;
  match Queue.entries q with
  | [ e ] ->
      Alcotest.(check int) "shared address" 10 e.Queue.addr;
      Alcotest.(check int) "loads" 1 (List.length e.loads);
      Alcotest.(check int) "stores" 1 (List.length e.stores)
  | es -> Alcotest.fail (Printf.sprintf "expected 1 entry, got %d" (List.length es))

let test_queue_priority () =
  let q = Queue.create () in
  let iw = Instr.site "cov:qw" and ir = Instr.site "cov:qr" in
  let touch addr n =
    for _ = 1 to n do
      Queue.observe_store q ~addr ~instr:iw ~tid:0;
      Queue.observe_load q ~addr ~instr:ir ~tid:1
    done
  in
  touch 10 2;
  touch 20 9;
  touch 30 5;
  let order = List.map (fun e -> e.Queue.addr) (Queue.entries q) in
  Alcotest.(check (list int)) "hot addresses first" [ 20; 30; 10 ] order

let prop_alias_deterministic =
  QCheck.Test.make ~name:"alias: same event stream, same coverage" ~count:50
    QCheck.(small_list (triple (int_bound 30) (int_bound 3) bool))
    (fun events ->
      let run () =
        let c = Alias.create () in
        let last = Hashtbl.create 8 in
        List.iter
          (fun (i, t, d) ->
            let cur = acc i d t in
            (match Hashtbl.find_opt last 0 with
            | Some prev -> ignore (Alias.observe c ~prev ~cur)
            | None -> ());
            Hashtbl.replace last 0 cur)
          events;
        Alias.count c
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "alias pair bitmap" `Quick test_alias_pairs;
    Alcotest.test_case "alias listener" `Quick test_alias_listener;
    Alcotest.test_case "branch coverage" `Quick test_branch_cov;
    Alcotest.test_case "shared queue detects sharing" `Quick test_shared_queue;
    Alcotest.test_case "shared queue priority" `Quick test_queue_priority;
    QCheck_alcotest.to_alcotest prop_alias_deterministic;
  ]

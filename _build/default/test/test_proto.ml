(* The memcached text protocol parser. *)

module P = Workloads.Memcached_proto

let ok input =
  match P.parse input with
  | Ok c -> c
  | Error e -> Alcotest.failf "unexpected parse error on %S: %s" input e

let err input =
  match P.parse input with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error on %S" input

let test_get () =
  (match ok "get k1\r\n" with
  | P.Cmd_get [ "k1" ] -> ()
  | _ -> Alcotest.fail "bad get");
  match ok "get k1 k2 k3\r\n" with
  | P.Cmd_get [ "k1"; "k2"; "k3" ] -> ()
  | _ -> Alcotest.fail "bad multi-get"

let test_bget () =
  match ok "bget k1 k2\r\n" with P.Cmd_bget [ "k1"; "k2" ] -> () | _ -> Alcotest.fail "bad bget"

let test_storage () =
  (match ok "set key1 5 0 3\r\nabc\r\n" with
  | P.Cmd_set { key = "key1"; flags = 5; exptime = 0; bytes = 3; data = "abc" } -> ()
  | _ -> Alcotest.fail "bad set");
  (match ok "add k 0 0 0\r\n\r\n" with
  | P.Cmd_add { bytes = 0; data = ""; _ } -> ()
  | _ -> Alcotest.fail "bad add");
  (match ok "replace k 0 0 1\r\nx\r\n" with
  | P.Cmd_replace _ -> ()
  | _ -> Alcotest.fail "bad replace");
  (match ok "append k 0 0 1\r\nx\r\n" with
  | P.Cmd_append _ -> ()
  | _ -> Alcotest.fail "bad append");
  match ok "prepend k 0 0 1\r\nx\r\n" with
  | P.Cmd_prepend _ -> ()
  | _ -> Alcotest.fail "bad prepend"

let test_delta_delete () =
  (match ok "incr k1 5\r\n" with
  | P.Cmd_incr { key = "k1"; delta = 5 } -> ()
  | _ -> Alcotest.fail "bad incr");
  (match ok "decr k1 2\r\n" with
  | P.Cmd_decr { delta = 2; _ } -> ()
  | _ -> Alcotest.fail "bad decr");
  match ok "delete k9\r\n" with
  | P.Cmd_delete { key = "k9" } -> ()
  | _ -> Alcotest.fail "bad delete"

let test_case_insensitive_verb () =
  match ok "GET k1\r\n" with P.Cmd_get _ -> () | _ -> Alcotest.fail "verb case"

let test_errors () =
  err "";
  err "get k1" (* missing CRLF *);
  err "get\r\n" (* no keys *);
  err "frobnicate k1\r\n" (* unknown *);
  err "set k1 0 0 3\r\nabcd\r\n" (* length mismatch *);
  err "set k1 0 0\r\nabc\r\n" (* missing arg *);
  err "set k1 x 0 3\r\nabc\r\n" (* non-numeric flags *);
  err "set k1 0 0 -1\r\n\r\n" (* negative bytes *);
  err "incr k1\r\n" (* missing delta *);
  err "incr k1 abc\r\n" (* bad delta *);
  err "delete\r\n";
  err "delete k1 k2\r\n";
  err "get k1\nk2\r\n" (* bare LF *)

let test_families () =
  Alcotest.(check string) "get family" "Get*" (P.family_name (P.family_of (ok "get k\r\n")));
  Alcotest.(check string) "update family" "Update*"
    (P.family_name (P.family_of (ok "set k 0 0 1\r\nx\r\n")));
  Alcotest.(check string) "incr family" "incr" (P.family_name (P.family_of (ok "incr k 1\r\n")));
  Alcotest.(check string) "error family" "Error" (P.family_name P.F_error)

let test_key_int () =
  Alcotest.(check (option int)) "k12" (Some 12) (P.key_int "k12");
  Alcotest.(check (option int)) "no prefix" None (P.key_int "12");
  Alcotest.(check (option int)) "not numeric" None (P.key_int "kx")

let prop_parser_total =
  QCheck.Test.make ~name:"proto: parser never raises on arbitrary bytes" ~count:500
    QCheck.(string_gen_of_size (QCheck.Gen.int_bound 40) QCheck.Gen.char)
    (fun s ->
      match P.parse s with Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "get" `Quick test_get;
    Alcotest.test_case "bget" `Quick test_bget;
    Alcotest.test_case "storage commands" `Quick test_storage;
    Alcotest.test_case "incr/decr/delete" `Quick test_delta_delete;
    Alcotest.test_case "verb case" `Quick test_case_insensitive_verb;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "families" `Quick test_families;
    Alcotest.test_case "key_int" `Quick test_key_int;
    QCheck_alcotest.to_alcotest prop_parser_total;
  ]

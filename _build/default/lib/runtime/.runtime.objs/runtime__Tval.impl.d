lib/runtime/tval.ml: Fmt Int64 Taint

lib/runtime/checkers.ml: Candidates Fmt Hashtbl Instr Int64 List Pmem String Taint

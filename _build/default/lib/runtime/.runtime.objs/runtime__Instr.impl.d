lib/runtime/instr.ml: Fmt Hashtbl Int Printf

lib/runtime/checkers.mli: Candidates Format Instr Pmem Taint

lib/runtime/env.ml: Checkers Dram Hashtbl Instr List Pmem Sched Taint

lib/runtime/env.mli: Checkers Dram Hashtbl Instr Pmem Sched Taint

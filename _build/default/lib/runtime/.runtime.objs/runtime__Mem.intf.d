lib/runtime/mem.mli: Env Instr Tval

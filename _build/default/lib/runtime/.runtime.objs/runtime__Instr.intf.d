lib/runtime/instr.mli: Format

lib/runtime/dram.ml: List

lib/runtime/candidates.ml: Fmt Hashtbl Instr List

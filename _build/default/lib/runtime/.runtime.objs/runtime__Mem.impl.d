lib/runtime/mem.ml: Candidates Checkers Env Instr Int64 List Pmem Printf Sched Taint Tval

lib/runtime/taint.ml: Fmt List

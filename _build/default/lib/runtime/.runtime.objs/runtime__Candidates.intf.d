lib/runtime/candidates.mli: Format Instr

lib/runtime/tval.mli: Format Taint

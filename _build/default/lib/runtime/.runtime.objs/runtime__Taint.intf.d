lib/runtime/taint.mli: Format

lib/runtime/dram.mli:

(* PM Inter-/Intra-thread Inconsistency Candidates (Definitions 1 and the
   intra-thread variant, §3.1).

   A candidate is created whenever a load observes a PM word that is dirty
   (visible but not persisted).  Its id doubles as the taint label attached
   to the loaded value. *)

type kind = Inter | Intra

type cand = {
  id : int;
  kind : kind;
  addr : int;
  read_instr : Instr.t;
  read_tid : int;
  write_instr : Instr.t;
  write_tid : int;
}

(* Unique candidates are grouped by the (writing site, reading site) pair,
   which is how the paper groups them for Table 3. *)
type key = { k_write : Instr.t; k_read : Instr.t; k_kind : kind }

type t = {
  mutable next : int;
  by_id : (int, cand) Hashtbl.t;
  uniq : (key, cand) Hashtbl.t;
  mutable dynamic : int;
}

let create () = { next = 0; by_id = Hashtbl.create 64; uniq = Hashtbl.create 64; dynamic = 0 }

let key_of c = { k_write = c.write_instr; k_read = c.read_instr; k_kind = c.kind }

let register t ~addr ~read_instr ~read_tid ~write_instr ~write_tid =
  let kind = if read_tid = write_tid then Intra else Inter in
  let c = { id = t.next; kind; addr; read_instr; read_tid; write_instr; write_tid } in
  t.next <- t.next + 1;
  t.dynamic <- t.dynamic + 1;
  Hashtbl.replace t.by_id c.id c;
  let k = key_of c in
  if not (Hashtbl.mem t.uniq k) then Hashtbl.add t.uniq k c;
  c

let find t id = Hashtbl.find_opt t.by_id id
let dynamic_count t = t.dynamic

let unique t kind =
  Hashtbl.fold (fun k c acc -> if k.k_kind = kind then c :: acc else acc) t.uniq []

let unique_count t kind = List.length (unique t kind)

let pp_kind ppf = function Inter -> Fmt.string ppf "Inter" | Intra -> Fmt.string ppf "Intra"

let pp ppf c =
  Fmt.pf ppf "%a-Cand#%d addr=%d write=%a(t%d) read=%a(t%d)" pp_kind c.kind c.id c.addr Instr.pp
    c.write_instr c.write_tid Instr.pp c.read_instr c.read_tid

(* Static instruction identities.

   The paper's LLVM pass assigns every instrumented instruction a unique
   integer id.  Our workloads are written directly against the hook API, so
   each call site registers itself here once, under a stable name.  Sites
   are named after the paper's [file:line] locations (Table 2) where the
   corresponding code exists in the original systems. *)

type t = int

let names : (string, int) Hashtbl.t = Hashtbl.create 256
let rev : (int, string) Hashtbl.t = Hashtbl.create 256
let counter = ref 0

let site name =
  match Hashtbl.find_opt names name with
  | Some id -> id
  | None ->
      let id = !counter in
      incr counter;
      Hashtbl.add names name id;
      Hashtbl.add rev id name;
      id

let name id = match Hashtbl.find_opt rev id with Some n -> n | None -> Printf.sprintf "<instr#%d>" id
let count () = !counter
let compare = Int.compare
let equal = Int.equal
let to_int id = id

let of_int id =
  if id < 0 || id >= !counter then invalid_arg (Printf.sprintf "Instr.of_int: unknown id %d" id);
  id

let pp ppf id = Fmt.string ppf (name id)

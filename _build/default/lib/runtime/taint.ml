(* Taint label sets for the dynamic data-flow analysis (§4.3).

   A label is the id of a PM Inter-/Intra-thread Inconsistency Candidate:
   it is created when a load observes non-persisted data and propagates
   through every computation deriving from that value.  Sets are tiny in
   practice (almost always empty, occasionally one or two labels), so a
   sorted immutable int list beats a heavier set structure. *)

type t = int list (* strictly increasing *)

let empty = []
let is_empty t = t = []
let singleton l = [ l ]

let rec add l = function
  | [] -> [ l ]
  | x :: _ as t when l < x -> l :: t
  | x :: _ as t when l = x -> t
  | x :: rest -> x :: add l rest

let rec union a b =
  match (a, b) with
  | [], t | t, [] -> t
  | x :: xs, y :: _ when x < y -> x :: union xs b
  | x :: _, y :: ys when y < x -> y :: union a ys
  | x :: xs, _ :: ys -> x :: union xs ys

let mem l t = List.mem l t
let labels t = t
let of_labels ls = List.fold_left (fun acc l -> add l acc) empty ls
let cardinal = List.length
let equal = ( = )
let pp ppf t = Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) t

(** PM Inter-/Intra-thread Inconsistency Candidates (§3.1, Definition 1).

    A candidate is recorded whenever a load observes non-persisted PM data;
    its id doubles as the taint label carried by the loaded value. *)

type kind = Inter  (** written by a different thread *) | Intra  (** same thread *)

type cand = {
  id : int;
  kind : kind;
  addr : int;
  read_instr : Instr.t;
  read_tid : int;
  write_instr : Instr.t;
  write_tid : int;
}

type t

val create : unit -> t

val register :
  t -> addr:int -> read_instr:Instr.t -> read_tid:int -> write_instr:Instr.t -> write_tid:int -> cand
(** Record a dynamic candidate; [kind] is derived from the tids. *)

val find : t -> int -> cand option
(** Look a candidate up by taint label. *)

val dynamic_count : t -> int
(** Number of dynamic candidate occurrences. *)

val unique : t -> kind -> cand list
(** One representative per unique (write site, read site) pair — the
    grouping used for Table 3. *)

val unique_count : t -> kind -> int
val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> cand -> unit

(** Tainted 64-bit values — the shadow values of the dynamic taint
    analysis.  Arithmetic unions operand taints; comparisons look only at
    the numeric value (control-flow taint is out of scope, as it is for
    DataFlowSanitizer). *)

type t

val make : int64 -> Taint.t -> t
val of_int64 : int64 -> t
val of_int : int -> t
val zero : t
val one : t

val v : t -> int64
val to_int : t -> int
val taint : t -> Taint.t
val is_tainted : t -> bool
val with_taint : t -> Taint.t -> t
val add_taint : t -> Taint.t -> t
val untainted : t -> t
(** Strip taint: models an explicit sanitisation point (e.g. data validated
    against a checksum). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t

val equal_v : t -> t -> bool
val compare_v : t -> t -> int
val is_zero : t -> bool
val pp : Format.formatter -> t -> unit

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( = ) : t -> t -> bool
  val ( <> ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

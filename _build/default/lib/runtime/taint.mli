(** Taint label sets for the dynamic data-flow analysis of durable side
    effects (§4.3 of the paper).

    A label is the id of an inconsistency {e candidate} (a load that
    observed non-persisted data); labels propagate through arithmetic on
    {!Tval.t} values and are checked when a value (or an address derived
    from one) reaches a PM store. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val union : t -> t -> t
val mem : int -> t -> bool
val labels : t -> int list
(** Labels in strictly increasing order. *)

val of_labels : int list -> t
val cardinal : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

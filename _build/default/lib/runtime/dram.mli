(** Per-execution volatile (DRAM) state.

    A typed heterogeneous store attached to the execution environment.
    Workloads keep their volatile structures here (e.g. memcached's DRAM
    hash index); a crash discards the store, exactly like real DRAM. *)

type t
type 'a key

val key : name:string -> unit -> 'a key
(** Create a fresh typed key.  Workloads create their keys once at module
    initialisation. *)

val create : unit -> t
val set : t -> 'a key -> 'a -> unit
val find : t -> 'a key -> 'a option
val find_or_add : t -> 'a key -> (unit -> 'a) -> 'a
val name : 'a key -> string
val clear : t -> unit

(** Static instruction identities — the analogue of the unique integer ids
    assigned by PMRace's LLVM pass.

    Call sites register under a stable string name (we reuse the paper's
    [file:line] names for the seeded bug sites), and the id is memoised, so
    the same site always maps to the same id within a process. *)

type t = private int

val site : string -> t
(** Register (or look up) the instruction id for a named site. *)

val name : t -> string
val count : unit -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val to_int : t -> int

val of_int : int -> t
(** Inverse of {!to_int} for ids round-tripped through the pool layer.
    @raise Invalid_argument on an id no site has registered. *)

val pp : Format.formatter -> t -> unit

(** The instrumented memory operations — PMRace's hooked functions.

    Every operation runs the interleaving policy's [before] hook (where the
    PM-aware scheduler injects [cond_wait]), performs the access with
    checker bookkeeping, notifies coverage listeners, and runs the [after]
    hook (where [cond_signal] lives).  Addresses are tainted {!Tval.t}
    values so that stores whose address derives from non-persisted data are
    detected as layout inconsistencies. *)

exception Stuck of string
(** Raised by {!spin_lock} when it cannot make progress (e.g. an unreleased
    persistent lock encountered during recovery). *)

val load : Env.ctx -> instr:Instr.t -> Tval.t -> Tval.t
(** PM load.  If the word is dirty, an inconsistency candidate is recorded
    and its taint label is attached to the result. *)

val store : Env.ctx -> instr:Instr.t -> Tval.t -> Tval.t -> unit
(** Cached PM store: visible at once, durable only after flush + fence. *)

val movnt : Env.ctx -> instr:Instr.t -> Tval.t -> Tval.t -> unit
(** Non-temporal PM store: durable at the next fence, never PM-dirty. *)

val clwb : Env.ctx -> instr:Instr.t -> Tval.t -> unit
val sfence : Env.ctx -> instr:Instr.t -> unit

val persist : Env.ctx -> instr:Instr.t -> Tval.t -> unit
(** [clwb] followed by [sfence]. *)

val persist_range : Env.ctx -> instr:Instr.t -> Tval.t -> words:int -> unit
(** Flush every line of a range, then fence once. *)

val cas : ?nt:bool -> Env.ctx -> instr:Instr.t -> Tval.t -> expect:Tval.t -> value:Tval.t -> bool
(** Atomic compare-and-swap (a single preemption point).  [nt:true]
    publishes non-temporally — the new value is never PM-dirty and becomes
    durable at the next fence. *)

val branch : Env.ctx -> instr:Instr.t -> unit
(** Record a branch-coverage point. *)

val external_effect : Env.ctx -> instr:Instr.t -> Tval.t -> unit
(** Declare a durable side effect outside PM (disk write, socket). *)

val try_lock : Env.ctx -> instr:Instr.t -> Tval.t -> bool

val spin_lock : ?persist_lock:bool -> Env.ctx -> instr:Instr.t -> Tval.t -> unit
(** Acquire a PM spin lock (0 = free, 1 = held).  [persist_lock] flushes
    the lock word — the persistent-lock pattern behind PM Synchronization
    Inconsistency.  @raise Stuck after [100_000] failed attempts. *)

val unlock : ?persist_lock:bool -> Env.ctx -> instr:Instr.t -> Tval.t -> unit

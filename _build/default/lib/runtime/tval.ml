(* Tainted 64-bit values — the shadow values of the taint analysis.

   Workloads compute exclusively on [Tval.t]; every arithmetic operation
   unions the operand taints, so data flows from reading non-persisted PM
   into later PM writes are tracked without any compiler support. *)

type t = { v : int64; taint : Taint.t }

let make v taint = { v; taint }
let of_int64 v = { v; taint = Taint.empty }
let of_int i = of_int64 (Int64.of_int i)
let zero = of_int 0
let one = of_int 1

let v t = t.v
let to_int t = Int64.to_int t.v
let taint t = t.taint
let is_tainted t = not (Taint.is_empty t.taint)
let with_taint t taint = { t with taint }
let add_taint t taint = { t with taint = Taint.union t.taint taint }
let untainted t = { t with taint = Taint.empty }

let lift2 f a b = { v = f a.v b.v; taint = Taint.union a.taint b.taint }

let add = lift2 Int64.add
let sub = lift2 Int64.sub
let mul = lift2 Int64.mul

let div a b =
  if Int64.equal b.v 0L then invalid_arg "Tval.div: division by zero";
  lift2 Int64.div a b

let rem a b =
  if Int64.equal b.v 0L then invalid_arg "Tval.rem: division by zero";
  lift2 Int64.rem a b

let logand = lift2 Int64.logand
let logor = lift2 Int64.logor
let logxor = lift2 Int64.logxor
let shift_left a n = { a with v = Int64.shift_left a.v n }
let shift_right a n = { a with v = Int64.shift_right_logical a.v n }

(* Comparisons look only at the numeric value; control-flow taint is out of
   scope (as it is for DataFlowSanitizer). *)
let equal_v a b = Int64.equal a.v b.v
let compare_v a b = Int64.compare a.v b.v
let is_zero t = Int64.equal t.v 0L

let pp ppf t =
  if Taint.is_empty t.taint then Fmt.pf ppf "%Ld" t.v
  else Fmt.pf ppf "%Ld%a" t.v Taint.pp t.taint

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( = ) = equal_v
  let ( <> ) a b = not (equal_v a b)
  let ( < ) a b = compare_v a b < 0
  let ( > ) a b = compare_v a b > 0
  let ( <= ) a b = compare_v a b <= 0
  let ( >= ) a b = compare_v a b >= 0
end

(* libpmemobj-style pool management.

   [create] is deliberately expensive — it writes the pool header, formats
   the heap, zeroes the root object and every undo-log lane with explicit
   flushes — because that cost is exactly what the in-memory checkpoints
   of §5 (Figure 10) amortise.  [map] (in {!Pmem_low}) is the cheap
   libpmem-style alternative memcached-pmem uses. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let i_create = Instr.site "pmdk/obj_create"
let i_root = Instr.site "pmdk/obj_root"

let create (ctx : Env.ctx) =
  let pool_words = Pmem.Pool.size ctx.Env.env.Env.pool in
  Mem.movnt ctx ~instr:i_create (Tval.of_int Layout.magic_off) (Tval.of_int64 Layout.magic);
  Mem.movnt ctx ~instr:i_create (Tval.of_int Layout.kind_off) Tval.one;
  Mem.sfence ctx ~instr:i_create;
  (* Format the whole pool — zeroing, lane construction and a verification
     pass, flushing line by line: the expensive initialisation that
     libpmemobj performs in pmemobj_create and that in-memory checkpoints
     amortise (§5, Figure 10). *)
  for _pass = 1 to 1 do
    for w = Layout.root_base to pool_words - 1 do
      Mem.store ctx ~instr:i_create (Tval.of_int w) Tval.zero;
      if (w + 1) mod Pmem.Cacheline.words_per_line = 0 then begin
        Mem.clwb ctx ~instr:i_create (Tval.of_int w);
        Mem.sfence ctx ~instr:i_create
      end
    done
  done;
  for w = Layout.root_base to pool_words - 1 do
    ignore (Mem.load ctx ~instr:i_create (Tval.of_int w))
  done;
  Mem.sfence ctx ~instr:i_create;
  Heap.format ctx ~pool_words

let is_pmemobj (ctx : Env.ctx) =
  Int64.equal (Pmem.Pool.peek ctx.Env.env.Env.pool Layout.magic_off) Layout.magic
  && Int64.equal (Pmem.Pool.peek ctx.Env.env.Env.pool Layout.kind_off) 1L

(* Root-object field accessors (word [i] of the root area). *)
let root_field i =
  if i < 0 || i >= Layout.root_words then invalid_arg "Objpool.root_field: out of root area";
  Tval.of_int (Layout.root_base + i)

let set_root ctx i v =
  Mem.store ctx ~instr:i_root (root_field i) v;
  Mem.persist ctx ~instr:i_root (root_field i)

let get_root ctx i = Mem.load ctx ~instr:i_root (root_field i)

(** Pool layout conventions shared by the mini-PMDK components: pool
    header, workload root area, heap metadata, per-lane undo logs, heap
    data.  All offsets are word offsets. *)

val magic : int64
val magic_off : int
val kind_off : int
val root_base : int
val root_words : int
val heap_meta : int
val log_base : int
val log_lanes : int
val log_words : int
val log_entries : int
val heap_base : int

val log_off : int -> int
(** Base offset of a lane's undo log. @raise Invalid_argument on a bad lane. *)

val lane_of_tid : int -> int
(** Worker tids map to lanes 0..3; anything else uses the recovery lane. *)

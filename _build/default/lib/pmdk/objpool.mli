(** libpmemobj-style pool management.  [create] is deliberately expensive
    (header, heap format, zeroing of root and log lanes with flushes): the
    cost in-memory checkpoints amortise (Figure 10). *)

val create : Runtime.Env.ctx -> unit
val is_pmemobj : Runtime.Env.ctx -> bool

val root_field : int -> Runtime.Tval.t
(** Address of word [i] of the root object.
    @raise Invalid_argument outside the root area. *)

val set_root : Runtime.Env.ctx -> int -> Runtime.Tval.t -> unit
(** Store + persist a root field. *)

val get_root : Runtime.Env.ctx -> int -> Runtime.Tval.t

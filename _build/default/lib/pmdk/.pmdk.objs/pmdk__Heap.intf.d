lib/pmdk/heap.mli: Runtime

lib/pmdk/layout.ml:

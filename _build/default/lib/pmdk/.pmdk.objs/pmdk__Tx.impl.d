lib/pmdk/tx.ml: Heap Layout List Runtime

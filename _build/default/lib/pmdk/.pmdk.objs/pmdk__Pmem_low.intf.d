lib/pmdk/pmem_low.mli: Runtime

lib/pmdk/pmem_low.ml: Layout Runtime

lib/pmdk/tx.mli: Runtime

lib/pmdk/layout.mli:

lib/pmdk/objpool.mli: Runtime

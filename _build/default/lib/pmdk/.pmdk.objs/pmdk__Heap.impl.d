lib/pmdk/heap.ml: Int64 Layout Pmem Runtime

lib/pmdk/objpool.ml: Heap Int64 Layout Pmem Runtime

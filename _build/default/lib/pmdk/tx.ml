(* Undo-log transactions, mini-PMDK style (§4.4).

   Before a tracked store, the old value is appended to a per-lane
   persistent undo log and persisted; commit flushes the modified data and
   clears the log; recovery reverts any log still active — which is what
   makes transaction-protected inconsistencies validated false positives.

   Transactional allocations are redo-logged inside the allocator (see
   {!Heap}), so writes they perform are crash-consistent by construction;
   their site is in {!default_whitelist}, reproducing PMRace's
   PMDK-awareness. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let i_begin = Instr.site "pmdk/tx_begin"
let i_snapshot = Instr.site "pmdk/tx_snapshot"
let i_log = Instr.site "pmdk/tx_log"
let i_alloc = Instr.site "pmdk/tx_alloc"
let i_commit = Instr.site "pmdk/tx_commit"
let i_recover = Instr.site "pmdk/tx_recover"

let default_whitelist =
  [ "pmdk/tx_alloc"; "pmdk/tx_recover"; "pmdk/tx_snapshot"; "pmdk/tx_log"; "pmdk/tx_commit" ]

type t = { lane : int; log : int; mutable count : int; mutable written : int list }

exception Log_full

let status_off log = log
let count_off log = log + 1
let entry_addr_off log i = log + 2 + (2 * i)
let entry_val_off log i = log + 3 + (2 * i)

let begin_ (ctx : Env.ctx) =
  let lane = Layout.lane_of_tid ctx.Env.tid in
  let log = Layout.log_off lane in
  Mem.movnt ctx ~instr:i_begin (Tval.of_int (status_off log)) Tval.one;
  Mem.movnt ctx ~instr:i_begin (Tval.of_int (count_off log)) Tval.zero;
  Mem.sfence ctx ~instr:i_begin;
  { lane; log; count = 0; written = [] }

(* Undo-log the word at [addr] (old value read and persisted into the log)
   — pmemobj_tx_add_range. *)
let add_word ctx t addr =
  let a = Tval.to_int addr in
  if t.count >= Layout.log_entries then raise Log_full;
  let old = Mem.load ctx ~instr:i_snapshot addr in
  let i = t.count in
  Mem.store ctx ~instr:i_log (Tval.of_int (entry_addr_off t.log i)) (Tval.of_int a);
  Mem.store ctx ~instr:i_log (Tval.of_int (entry_val_off t.log i)) (Tval.untainted old);
  Mem.clwb ctx ~instr:i_log (Tval.of_int (entry_addr_off t.log i));
  Mem.clwb ctx ~instr:i_log (Tval.of_int (entry_val_off t.log i));
  Mem.sfence ctx ~instr:i_log;
  t.count <- t.count + 1;
  Mem.movnt ctx ~instr:i_log (Tval.of_int (count_off t.log)) (Tval.of_int t.count);
  Mem.sfence ctx ~instr:i_log

(* A tracked store: undo-log then write (the write stays cached until
   commit — PM writes inside PMDK transactions are visible to other
   threads immediately, which is why transactions do not prevent PM
   concurrency bugs). *)
let store ctx t addr value =
  add_word ctx t addr;
  Mem.store ctx ~instr:i_log addr value;
  t.written <- Tval.to_int addr :: t.written

(* Transactional allocation: allocate and store the chunk offset into
   [dst] (undo-logged).  The store happens at the whitelisted tx_alloc
   site, like make_persistent<T>() writing the target pointer. *)
let alloc_into ctx t ~dst ~words =
  add_word ctx t dst;
  let off = Heap.alloc ctx ~words in
  Mem.store ctx ~instr:i_alloc dst (Tval.of_int off);
  t.written <- Tval.to_int dst :: t.written;
  off

let commit ctx t =
  List.iter (fun w -> Mem.clwb ctx ~instr:i_commit (Tval.of_int w)) t.written;
  Mem.sfence ctx ~instr:i_commit;
  Mem.movnt ctx ~instr:i_commit (Tval.of_int (status_off t.log)) Tval.zero;
  Mem.sfence ctx ~instr:i_commit;
  t.written <- [];
  t.count <- 0

(* Post-failure recovery: revert every lane whose log is still active. *)
let recover ctx =
  for lane = 0 to Layout.log_lanes - 1 do
    let log = Layout.log_off lane in
    let status = Mem.load ctx ~instr:i_recover (Tval.of_int (status_off log)) in
    if not (Tval.is_zero status) then begin
      let count = Tval.to_int (Mem.load ctx ~instr:i_recover (Tval.of_int (count_off log))) in
      for i = count - 1 downto 0 do
        let addr = Mem.load ctx ~instr:i_recover (Tval.of_int (entry_addr_off log i)) in
        let old = Mem.load ctx ~instr:i_recover (Tval.of_int (entry_val_off log i)) in
        Mem.store ctx ~instr:i_recover (Tval.untainted addr) (Tval.untainted old);
        Mem.persist ctx ~instr:i_recover (Tval.untainted addr)
      done;
      Mem.movnt ctx ~instr:i_recover (Tval.of_int (status_off log)) Tval.zero;
      Mem.sfence ctx ~instr:i_recover
    end
  done

(** libpmem-style light mapping (pmem_map_file): no pool construction, so
    initialisation is nearly free and checkpoints bring no speedup. *)

val map : Runtime.Env.ctx -> unit

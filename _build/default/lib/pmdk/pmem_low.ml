(* libpmem-style light mapping: pmem_map_file is a thin wrapper over mmap
   with no pool construction, so initialisation is nearly free — which is
   why memcached-pmem gains nothing from in-memory checkpoints
   (Figure 10). *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr

let i_map = Instr.site "pmdk/pmem_map_file"

let map ctx =
  Mem.movnt ctx ~instr:i_map (Tval.of_int Layout.magic_off) (Tval.of_int64 Layout.magic);
  Mem.movnt ctx ~instr:i_map (Tval.of_int Layout.kind_off) (Tval.of_int 2);
  Mem.sfence ctx ~instr:i_map

(** Persistent bump allocator with crash-consistent (non-temporally
    published) metadata, mirroring PMDK's redo-logged allocator. *)

exception Out_of_memory

val format : Runtime.Env.ctx -> pool_words:int -> unit
val round_up_line : int -> int

val alloc : Runtime.Env.ctx -> words:int -> int
(** Allocate a line-aligned chunk; returns its word offset (untainted).
    Race-free under preemption.  @raise Out_of_memory when the heap is
    exhausted. *)

val used : Runtime.Env.ctx -> int
(** Words allocated so far. *)

val leaked_words : Runtime.Env.ctx -> reachable:int -> int
(** Allocated-but-unreachable words given the workload's reachable count:
    the PM leak measure for Intra-thread inconsistency bugs. *)

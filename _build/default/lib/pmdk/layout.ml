(* Pool layout conventions shared by the mini-PMDK components.

   word 0        : pool magic
   word 1        : pool kind (1 = libpmemobj-style, 2 = libpmem mapping)
   words 8..63   : workload root object
   words 64..71  : heap metadata
   words 72..327 : per-thread undo-log regions (4 threads + recovery lane)
   words 328..   : heap data

   Offsets are word offsets into the simulated pool. *)

let magic = 0x504D4F4F4CL (* "PMOOL" *)
let magic_off = 0
let kind_off = 1
let root_base = 8
let root_words = 56
let heap_meta = 64
let log_base = 72
let log_lanes = 5 (* four worker threads + one for init/recovery *)
let log_words = 51 (* status + count + 24 (addr, value) pairs, plus padding *)
let log_entries = 24
let heap_base = log_base + (log_lanes * log_words) + 1 (* 328 *)

let log_off lane =
  if lane < 0 || lane >= log_lanes then invalid_arg "Layout.log_off: bad lane";
  log_base + (lane * log_words)

(* Lane for a thread id: worker tids map to lanes 0..3; anything else (the
   init/recovery context) uses the last lane. *)
let lane_of_tid tid = if tid >= 0 && tid < log_lanes - 1 then tid else log_lanes - 1

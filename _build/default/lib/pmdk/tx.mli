(** Undo-log transactions, mini-PMDK style.  Tracked stores are reverted by
    {!recover} when a crash interrupts an uncommitted transaction — which
    is what turns transaction-protected inconsistencies into validated
    false positives (§4.4).  Note that, as in PMDK, transactions give no
    isolation: PM writes inside a transaction are immediately visible to
    other threads. *)

type t

exception Log_full

val default_whitelist : string list
(** The PMDK-aware whitelist entries (redo-logged transactional
    allocation and recovery sites). *)

val begin_ : Runtime.Env.ctx -> t
val add_word : Runtime.Env.ctx -> t -> Runtime.Tval.t -> unit
(** Undo-log one word (pmemobj_tx_add_range). @raise Log_full. *)

val store : Runtime.Env.ctx -> t -> Runtime.Tval.t -> Runtime.Tval.t -> unit
(** Undo-log then write; flushed at {!commit}. *)

val alloc_into : Runtime.Env.ctx -> t -> dst:Runtime.Tval.t -> words:int -> int
(** Transactional allocation: store the fresh chunk's offset into [dst]
    (undo-logged, at the whitelisted allocation site) and return it. *)

val commit : Runtime.Env.ctx -> t -> unit
val recover : Runtime.Env.ctx -> unit
(** Revert every lane with an uncommitted log. *)

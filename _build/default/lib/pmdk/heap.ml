(* Persistent bump allocator.

   Heap metadata is a single persistent word (the bump pointer) published
   with non-temporal stores, so allocator metadata itself never produces
   inconsistency candidates — matching PMDK's allocator, whose internal
   redo logging makes its metadata crash-consistent.

   Allocations are word-granular and rounded up to a cache line so that
   objects never share lines (PMDK's allocator also returns line-aligned
   chunks for exactly this reason). *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr

let i_format = Instr.site "pmdk/heap_format"
let i_alloc = Instr.site "pmdk/heap_alloc"

let bump_off = Layout.heap_meta
let limit_off = Layout.heap_meta + 1

exception Out_of_memory

let format ctx ~pool_words =
  Mem.movnt ctx ~instr:i_format (Tval.of_int bump_off) (Int64.of_int Layout.heap_base |> Tval.of_int64);
  Mem.movnt ctx ~instr:i_format (Tval.of_int limit_off) (Int64.of_int pool_words |> Tval.of_int64);
  Mem.sfence ctx ~instr:i_format

let round_up_line n =
  let l = Pmem.Cacheline.words_per_line in
  (n + l - 1) / l * l

(* Allocate [words] words; returns the word offset of the chunk.  The
   returned offset is untainted: PMDK's allocator validates its metadata
   via redo logs, so offsets it returns are trustworthy.  The CAS loop
   makes concurrent allocations race-free. *)
let alloc ctx ~words =
  if words <= 0 then invalid_arg "Heap.alloc: words must be positive";
  let words = round_up_line words in
  let rec try_alloc () =
    let cur = Mem.load ctx ~instr:i_alloc (Tval.of_int bump_off) in
    let limit = Mem.load ctx ~instr:i_alloc (Tval.of_int limit_off) in
    let next = Tval.to_int cur + words in
    if next > Tval.to_int limit then raise Out_of_memory;
    if
      Mem.cas ~nt:true ctx ~instr:i_alloc (Tval.of_int bump_off) ~expect:(Tval.untainted cur)
        ~value:(Tval.of_int next)
    then begin
      Mem.sfence ctx ~instr:i_alloc;
      Tval.to_int (Tval.untainted cur)
    end
    else try_alloc ()
  in
  try_alloc ()

let used ctx =
  let cur = Mem.load ctx ~instr:i_alloc (Tval.of_int bump_off) in
  Tval.to_int cur - Layout.heap_base

(* Heap words allocated but unreachable from the given root set — the PM
   leak measure used when diagnosing Intra-thread inconsistency bugs 3/7.
   [reachable] is computed by the workload (it knows its object graph). *)
let leaked_words ctx ~reachable =
  let total = used ctx in
  max 0 (total - reachable)

(* Simulated persistent-memory pool.

   The pool keeps two images of memory:

   - [volatile]: the view CPU loads observe.  Stores land here first, which
     models data sitting in the (volatile) cache hierarchy.
   - [durable]: the media contents, i.e. what survives a crash.

   A store marks its word dirty and records which thread/instruction wrote
   it.  CLWB over a line moves its dirty words into a "pending" set and —
   following the persistency-state convention of the paper (§4.3) — marks
   them clean for checking purposes.  SFENCE writes pending words back to
   the durable image.  Non-temporal stores are immediately clean but still
   only durable after the next fence.  A crash discards the volatile image
   and all pending-but-unfenced write-backs. *)

type writer = { tid : int; instr : int; seq : int }

type t = {
  words : int;
  eadr : bool; (* extended ADR: the cache hierarchy is in the persistent domain *)
  volatile : int64 array;
  durable : int64 array;
  dirty_tid : int array; (* -1 when the word is clean *)
  dirty_instr : int array;
  dirty_seq : int array;
  pending : bool array; (* written back at the next SFENCE *)
  mutable seq : int;
  mutable n_loads : int;
  mutable n_stores : int;
  mutable n_movnts : int;
  mutable n_flushes : int;
  mutable n_fences : int;
  mutable n_evictions : int;
}

type image = int64 array
type snapshot = { s_volatile : int64 array; s_durable : int64 array }

let create ?(eadr = false) ~words () =
  if words <= 0 || words mod Cacheline.words_per_line <> 0 then
    invalid_arg "Pool.create: size must be a positive multiple of the line size";
  {
    words;
    eadr;
    volatile = Array.make words 0L;
    durable = Array.make words 0L;
    dirty_tid = Array.make words (-1);
    dirty_instr = Array.make words (-1);
    dirty_seq = Array.make words (-1);
    pending = Array.make words false;
    seq = 0;
    n_loads = 0;
    n_stores = 0;
    n_movnts = 0;
    n_flushes = 0;
    n_fences = 0;
    n_evictions = 0;
  }

let size t = t.words

let check t w =
  if w < 0 || w >= t.words then
    invalid_arg (Printf.sprintf "Pool: word offset %d out of bounds [0,%d)" w t.words)

let load t w =
  check t w;
  t.n_loads <- t.n_loads + 1;
  t.volatile.(w)

let peek t w =
  check t w;
  t.volatile.(w)

(* The dirty indicator is the sequence number (>= 1 when dirty): thread
   ids can legitimately be negative (init/recovery contexts). *)
let dirty_writer t w =
  check t w;
  if t.dirty_seq.(w) < 0 then None
  else Some { tid = t.dirty_tid.(w); instr = t.dirty_instr.(w); seq = t.dirty_seq.(w) }

let is_dirty t w =
  check t w;
  t.dirty_seq.(w) >= 0

let is_pending t w =
  check t w;
  t.pending.(w)

let is_durably_equal t w =
  check t w;
  Int64.equal t.volatile.(w) t.durable.(w)

let is_eadr t = t.eadr

let clean_word t w =
  t.dirty_tid.(w) <- -1;
  t.dirty_instr.(w) <- -1;
  t.dirty_seq.(w) <- -1

let store t ~tid ~instr w v =
  check t w;
  t.n_stores <- t.n_stores + 1;
  t.seq <- t.seq + 1;
  t.volatile.(w) <- v;
  if t.eadr then begin
    (* eADR (§6.6): caches are battery-backed, so every store is durable at
       once and never PM_DIRTY — the visibility/persistency gap is gone. *)
    t.durable.(w) <- v;
    clean_word t w;
    t.pending.(w) <- false
  end
  else begin
    t.dirty_tid.(w) <- tid;
    t.dirty_instr.(w) <- instr;
    t.dirty_seq.(w) <- t.seq;
    (* A store after CLWB but before the fence is not covered by the
       pending write-back: the line must be flushed again. *)
    t.pending.(w) <- false
  end

let movnt t ~tid:_ ~instr:_ w v =
  check t w;
  t.n_movnts <- t.n_movnts + 1;
  t.seq <- t.seq + 1;
  t.volatile.(w) <- v;
  t.dirty_tid.(w) <- -1;
  t.dirty_seq.(w) <- -1;
  if t.eadr then begin
    t.durable.(w) <- v;
    t.pending.(w) <- false
  end
  else
    (* Non-temporal stores bypass the cache: the word is never PM_DIRTY for
       checking purposes, but durability still requires the next SFENCE. *)
    t.pending.(w) <- true

let clwb t w =
  check t w;
  t.n_flushes <- t.n_flushes + 1;
  let flush_one w =
    if t.dirty_seq.(w) >= 0 then begin
      clean_word t w;
      t.pending.(w) <- true
    end
  in
  List.iter flush_one (Cacheline.words_of_line_containing w)

let sfence t =
  t.n_fences <- t.n_fences + 1;
  let persisted = ref [] in
  for w = t.words - 1 downto 0 do
    if t.pending.(w) then begin
      t.pending.(w) <- false;
      t.durable.(w) <- t.volatile.(w);
      persisted := w :: !persisted
    end
  done;
  !persisted

let evict_line t line =
  let base = Cacheline.first_word_of_line line in
  if base < 0 || base >= t.words then
    invalid_arg "Pool.evict_line: line out of bounds";
  let evicted = ref [] in
  let evict_one w =
    if t.dirty_seq.(w) >= 0 then begin
      clean_word t w;
      t.durable.(w) <- t.volatile.(w);
      t.n_evictions <- t.n_evictions + 1;
      evicted := w :: !evicted
    end
  in
  List.iter evict_one (Cacheline.words_of_line_containing base);
  List.rev !evicted

let dirty_words t =
  let acc = ref [] in
  for w = t.words - 1 downto 0 do
    if t.dirty_seq.(w) >= 0 then acc := w :: !acc
  done;
  !acc

let pending_words t =
  let acc = ref [] in
  for w = t.words - 1 downto 0 do
    if t.pending.(w) then acc := w :: !acc
  done;
  !acc

let quiesce t =
  for w = 0 to t.words - 1 do
    if t.dirty_seq.(w) >= 0 then begin
      clean_word t w;
      t.pending.(w) <- true
    end
  done;
  ignore (sfence t)

let crash_image t = Array.copy t.durable
let image_word (img : image) w = img.(w)
let image_words (img : image) = Array.length img

let of_image (img : image) =
  let t = create ~words:(Array.length img) () in
  Array.blit img 0 t.volatile 0 (Array.length img);
  Array.blit img 0 t.durable 0 (Array.length img);
  t

let snapshot t =
  (* Snapshots are only meaningful for quiesced pools (no dirty or pending
     words), which is how in-memory checkpoints are used: after pool
     initialisation completes. *)
  { s_volatile = Array.copy t.volatile; s_durable = Array.copy t.durable }

let restore t s =
  if Array.length s.s_volatile <> t.words then
    invalid_arg "Pool.restore: snapshot size mismatch";
  Array.blit s.s_volatile 0 t.volatile 0 t.words;
  Array.blit s.s_durable 0 t.durable 0 t.words;
  Array.fill t.dirty_tid 0 t.words (-1);
  Array.fill t.dirty_instr 0 t.words (-1);
  Array.fill t.dirty_seq 0 t.words (-1);
  Array.fill t.pending 0 t.words false

type stats = {
  loads : int;
  stores : int;
  movnts : int;
  flushes : int;
  fences : int;
  evictions : int;
}

let stats t =
  {
    loads = t.n_loads;
    stores = t.n_stores;
    movnts = t.n_movnts;
    flushes = t.n_flushes;
    fences = t.n_fences;
    evictions = t.n_evictions;
  }

let pp_stats ppf s =
  Fmt.pf ppf "loads=%d stores=%d movnts=%d flushes=%d fences=%d evictions=%d" s.loads s.stores
    s.movnts s.flushes s.fences s.evictions

lib/pmem/pool.mli: Format

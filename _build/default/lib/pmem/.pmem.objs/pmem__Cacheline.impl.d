lib/pmem/cacheline.ml: List

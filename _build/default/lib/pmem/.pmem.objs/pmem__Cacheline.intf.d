lib/pmem/cacheline.mli:

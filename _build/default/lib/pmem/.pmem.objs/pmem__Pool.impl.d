lib/pmem/pool.ml: Array Cacheline Fmt Int64 List Printf

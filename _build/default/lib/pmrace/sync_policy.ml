(* PM-aware interleaving exploration: the synchronization algorithm of
   Figure 6.

   Given one entry from the shared-access priority queue, loads of the
   entry's address are *sync points*: a thread arriving at one executes
   cond_wait, spinning (yielding) until a writer thread signals after its
   store to the same address — i.e. after the data became visible but
   before it is flushed.  This drives readers into reading non-persisted
   data (PM Inter-thread Inconsistency Candidates).

   The three pitfalls of §4.2.2 are handled exactly as in the paper:
   - Pitfall 1: once signalled, cond_wait is disabled for the rest of the
     campaign (the condition variable [m] stays set).
   - Pitfall 2: when *all* worker threads are blocked in cond_wait, one
     randomly chosen thread is made privileged and bypasses all waits.
   - Pitfall 3: when some threads stay blocked past the hang threshold,
     the sync point is disabled and the number of cond_wait executions to
     skip is saved, so the next campaign on the same seed skips the
     unnecessary blocking. *)

module Rng = Sched.Rng
module Env = Runtime.Env

type t = {
  entry : Shared_queue.entry;
  rng : Rng.t;
  nthreads : int;
  writer_wait : int; (* yields the writer performs after signalling *)
  block_threshold : int; (* cond_wait loops before a thread counts as blocked *)
  mutable m : bool; (* the condition variable *)
  mutable is_enabled : bool;
  mutable skip : int; (* executions of cond_wait to skip (Pitfall 3) *)
  mutable waits_executed : int;
  mutable privileged : int option; (* tid allowed to bypass (Pitfall 2) *)
  mutable disabled_by_hang : bool;
  mutable signalled : bool;
  waiting : (int, int) Hashtbl.t; (* tid -> current loop count *)
}

let create ?(writer_wait = 400) ?(block_threshold = 60) ~rng ~nthreads ~skip entry =
  {
    entry;
    rng;
    nthreads;
    writer_wait;
    block_threshold;
    m = false;
    is_enabled = true;
    skip;
    waits_executed = 0;
    privileged = None;
    disabled_by_hang = false;
    signalled = false;
    waiting = Hashtbl.create 8;
  }

let is_sync_load t (p : Env.point) =
  (p.kind = Env.P_load || p.kind = Env.P_cas) && p.addr = t.entry.addr

let is_sync_store t (p : Env.point) =
  (p.kind = Env.P_store || p.kind = Env.P_movnt || p.kind = Env.P_cas)
  && p.addr = t.entry.addr

let bypassed t tid = match t.privileged with Some p -> p = tid | None -> false

(* cond_wait (Figure 6, lines 3-24). *)
let cond_wait t tid =
  if t.is_enabled && not (bypassed t tid) then begin
    if t.skip > 0 then t.skip <- t.skip - 1
    else begin
      t.waits_executed <- t.waits_executed + 1;
      let continue = ref true in
      let loops = ref 0 in
      (* Waiters give up quickly when no writer can exist, but wait much
         longer once a privileged thread has been elected: it needs time to
         reach the store and signal. *)
      let hard_cap = t.block_threshold * 50 in
      while !continue && not t.m do
        incr loops;
        Hashtbl.replace t.waiting tid !loops;
        Sched.Scheduler.yield ();
        if !loops > t.block_threshold then begin
          let blocked = Hashtbl.length t.waiting in
          match t.privileged with
          | Some p when p = tid -> continue := false
          | Some _ ->
              (* A privileged thread is running towards the store; keep
                 waiting unless it never delivers (Pitfall 3). *)
              if !loops > hard_cap then begin
                t.is_enabled <- false;
                t.disabled_by_hang <- true;
                continue := false
              end
          | None ->
              if blocked >= t.nthreads then
                (* All threads block: elect a privileged one (Pitfall 2). *)
                t.privileged <- Some (Rng.int t.rng t.nthreads)
              else if !loops > t.block_threshold * 4 then begin
                (* Some threads block and no writer arrives: give up on
                   this sync point (Pitfall 3). *)
                t.is_enabled <- false;
                t.disabled_by_hang <- true;
                continue := false
              end
        end
      done;
      Hashtbl.remove t.waiting tid
    end
  end

(* cond_signal (Figure 6, lines 26-30): set m and stall the writer so the
   blocked readers run their loads before the writer flushes.  The stall
   happens on every signalled store (the paper's usleep(writerWaiting) is
   unconditional); only cond_wait is disabled after the first signal. *)
let cond_signal t =
  t.m <- true;
  t.signalled <- true;
  for _ = 1 to t.writer_wait do
    Sched.Scheduler.yield ()
  done

let policy t : Env.policy =
  {
    before =
      (fun ctx p ->
        Sched.Scheduler.yield ();
        if is_sync_load t p then cond_wait t ctx.Env.tid);
    after = (fun _ctx p -> if is_sync_store t p then cond_signal t);
  }

let triggered t = t.signalled
let disabled_by_hang t = t.disabled_by_hang
let waits_executed t = t.waits_executed

(* The skip to persist for future campaigns on the same seed: when the
   sync point was disabled because of a hang, future campaigns skip the
   cond_wait executions that blocked unnecessarily. *)
let next_skip t ~previous = if t.disabled_by_hang then previous + t.waits_executed else previous

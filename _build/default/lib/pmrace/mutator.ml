(* PMRace's operation mutator (§4.5) and the AFL++-style byte mutator it
   is compared against in Table 4.

   The operation mutator evolves seeds with the five strategies inherited
   from Krace — mutation, addition, deletion, shuffling, merging — plus the
   PM-specific twists: parameters prefer keys similar to existing ones (to
   provoke shared accesses and PM alias pairs), and a "populate" fallback
   floods the store with inserts to trigger resizing paths. *)

module Rng = Sched.Rng

type strategy = Mutation | Addition | Deletion | Shuffling | Merging

let strategies = [ Mutation; Addition; Deletion; Shuffling; Merging ]

let strategy_name = function
  | Mutation -> "mutation"
  | Addition -> "addition"
  | Deletion -> "deletion"
  | Shuffling -> "shuffling"
  | Merging -> "merging"

let existing_keys seed = List.map Seed.key_of (Seed.all_ops seed)

let near_key rng seed profile =
  match existing_keys seed with
  | [] -> None
  | keys ->
      let k = Rng.pick rng keys in
      Some ((k + Rng.int rng 3 - 1 + profile.Seed.key_range) mod profile.Seed.key_range)

(* Updating an arbitrary parameter of a random operation. *)
let mutate_op rng profile seed =
  let threads = Array.map Array.copy (Seed.threads seed) in
  let ti = Rng.int rng (Array.length threads) in
  if Array.length threads.(ti) = 0 then Seed.make threads
  else begin
    let oi = Rng.int rng (Array.length threads.(ti)) in
    threads.(ti).(oi) <- Seed.gen_op rng profile ~near:(near_key rng seed profile);
    Seed.make threads
  end

(* Adding an operation at an arbitrary position. *)
let add_op rng profile seed =
  let threads = Array.map Array.copy (Seed.threads seed) in
  let ti = Rng.int rng (Array.length threads) in
  let ops = threads.(ti) in
  let pos = Rng.int rng (Array.length ops + 1) in
  let op = Seed.gen_op rng profile ~near:(near_key rng seed profile) in
  threads.(ti) <-
    Array.init
      (Array.length ops + 1)
      (fun i -> if i < pos then ops.(i) else if i = pos then op else ops.(i - 1));
  Seed.make threads

(* Deleting an arbitrary operation. *)
let delete_op rng _profile seed =
  let threads = Array.map Array.copy (Seed.threads seed) in
  let ti = Rng.int rng (Array.length threads) in
  let ops = threads.(ti) in
  if Array.length ops <= 1 then Seed.make threads
  else begin
    let pos = Rng.int rng (Array.length ops) in
    threads.(ti) <-
      Array.init (Array.length ops - 1) (fun i -> if i < pos then ops.(i) else ops.(i + 1));
    Seed.make threads
  end

(* Shuffling operations and redistributing them over the threads. *)
let shuffle_ops rng _profile seed =
  let all = Array.of_list (Seed.all_ops seed) in
  let shuffled = Rng.shuffle rng all in
  let nthreads = Array.length (Seed.threads seed) in
  let buckets = Array.make nthreads [] in
  Array.iteri (fun i op -> buckets.(i mod nthreads) <- op :: buckets.(i mod nthreads)) shuffled;
  Seed.make (Array.map (fun ops -> Array.of_list (List.rev ops)) buckets)

(* Merging two existing seeds into a new one. *)
let merge rng _profile a b =
  let ta = Seed.threads a and tb = Seed.threads b in
  let nthreads = max (Array.length ta) (Array.length tb) in
  let merged =
    Array.init nthreads (fun i ->
        let get t = if i < Array.length t then t.(i) else [||] in
        let xs = get ta and ys = get tb in
        if Rng.bool rng then Array.append xs ys else Array.append ys xs)
  in
  Seed.make merged

let evolve rng profile ~corpus seed =
  match Rng.pick rng strategies with
  | Mutation -> (Mutation, mutate_op rng profile seed)
  | Addition -> (Addition, add_op rng profile seed)
  | Deletion -> (Deletion, delete_op rng profile seed)
  | Shuffling -> (Shuffling, shuffle_ops rng profile seed)
  | Merging ->
      let other = match corpus with [] -> seed | c -> Rng.pick rng c in
      (Merging, merge rng profile seed other)

(* The load-phase fallback: flood the system with inserts over many keys,
   triggering resize/migration paths in PM indexes. *)
let populate rng (profile : Seed.profile) ~factor =
  let ops_per_thread = profile.ops_per_thread * factor in
  let threads =
    Array.init profile.threads (fun _ ->
        Array.init ops_per_thread (fun _ ->
            Seed.Put
              {
                key = Rng.int rng profile.key_range;
                value = 1 + Rng.int rng profile.value_range;
              }))
  in
  Seed.make threads

(* ------------------------------------------------------------------ *)
(* The AFL++-style havoc byte mutator (the Table 4 baseline): random
   bit flips, byte replacements, insertions and deletions over the raw
   rendered command text, with no knowledge of the protocol grammar. *)

let afl_havoc rng s =
  let b = Buffer.create (String.length s + 8) in
  Buffer.add_string b s;
  let rounds = 1 + Rng.int rng 8 in
  let current = ref (Buffer.contents b) in
  for _ = 1 to rounds do
    let s = !current in
    let n = String.length s in
    if n > 0 then
      match Rng.int rng 4 with
      | 0 ->
          (* bit flip *)
          let i = Rng.int rng n in
          let c = Char.chr (Char.code s.[i] lxor (1 lsl Rng.int rng 8)) in
          current := String.mapi (fun j cj -> if j = i then c else cj) s
      | 1 ->
          (* random byte replacement *)
          let i = Rng.int rng n in
          let c = Char.chr (Rng.int rng 256) in
          current := String.mapi (fun j cj -> if j = i then c else cj) s
      | 2 ->
          (* insertion *)
          let i = Rng.int rng (n + 1) in
          let c = Char.chr (Rng.int rng 256) in
          current := String.sub s 0 i ^ String.make 1 c ^ String.sub s i (n - i)
      | _ ->
          (* deletion *)
          let i = Rng.int rng n in
          current := String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
  done;
  !current

(** A target under test: the adapter each PM system implements for the
    fuzzer (driver ops, pool initialisation, and post-failure recovery). *)

type known_bug = {
  kb_id : int;  (** the paper's bug number (Table 2) *)
  kb_type : [ `Inter | `Sync | `Intra | `Other ];
  kb_new : bool;
  kb_write_site : string option;
  kb_read_site : string option;
  kb_description : string;
  kb_consequence : string;
}

type t = {
  name : string;
  version : string;  (** commit id of the original system (Table 1) *)
  scope : string;
  concurrency : string;
  pool_words : int;
  expensive_init : bool;
      (** libpmemobj-style initialisation; benefits from in-memory
          checkpoints (Figure 10) *)
  init : Runtime.Env.t -> unit;
  annotate : Runtime.Env.t -> unit;
      (** register [pm_sync_var_hint] annotations; called for every
          environment, including checkpoint-restored and post-crash ones *)
  recover : Runtime.Env.t -> unit;  (** post-failure recovery (§4.4) *)
  run_op : Runtime.Env.ctx -> Seed.op -> unit;
  profile : Seed.profile;
  known_bugs : known_bug list;  (** seeded ground truth for Tables 2/5 *)
  whitelist_sites : string list;  (** default whitelist entries (§4.4) *)
}

val pp_known_bug : Format.formatter -> known_bug -> unit

(** Conventional branch coverage over instrumented branch sites; combined
    with {!Alias_cov} as fuzzing feedback (§4.2.3). *)

type t

val create : unit -> t
val observe : t -> Runtime.Instr.t -> bool
(** Returns [true] the first time a site is seen. *)

val count : t -> int
val covered : t -> Runtime.Instr.t -> bool
val attach : t -> Runtime.Env.t -> unit

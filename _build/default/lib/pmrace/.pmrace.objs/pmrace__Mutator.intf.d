lib/pmrace/mutator.mli: Sched Seed

lib/pmrace/sync_policy.mli: Runtime Sched Shared_queue

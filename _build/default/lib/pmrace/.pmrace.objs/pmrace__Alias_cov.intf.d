lib/pmrace/alias_cov.mli: Runtime

lib/pmrace/shared_queue.mli: Format Runtime

lib/pmrace/alias_cov.ml: Bytes Char Hashtbl Runtime Sched

lib/pmrace/delay_policy.mli: Runtime Sched

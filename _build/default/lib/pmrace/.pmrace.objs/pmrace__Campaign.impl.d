lib/pmrace/campaign.ml: Array Delay_policy List Pmem Printf Runtime Sched Seed Shared_queue Sync_policy Target

lib/pmrace/fuzzer.mli: Alias_cov Branch_cov Hashtbl Report Seed Target Whitelist

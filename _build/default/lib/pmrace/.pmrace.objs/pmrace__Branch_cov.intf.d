lib/pmrace/branch_cov.mli: Runtime

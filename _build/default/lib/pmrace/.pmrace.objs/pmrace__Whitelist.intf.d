lib/pmrace/whitelist.mli: Runtime

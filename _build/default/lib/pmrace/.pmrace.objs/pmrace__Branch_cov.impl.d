lib/pmrace/branch_cov.ml: Hashtbl Runtime

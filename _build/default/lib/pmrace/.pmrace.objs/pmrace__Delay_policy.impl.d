lib/pmrace/delay_policy.ml: Runtime Sched

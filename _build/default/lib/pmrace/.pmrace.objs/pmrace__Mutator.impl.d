lib/pmrace/mutator.ml: Array Buffer Char List Sched Seed String

lib/pmrace/whitelist.ml: Runtime Set String

lib/pmrace/target.mli: Format Runtime Seed

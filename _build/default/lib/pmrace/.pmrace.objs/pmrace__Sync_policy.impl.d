lib/pmrace/sync_policy.ml: Hashtbl Runtime Sched Shared_queue

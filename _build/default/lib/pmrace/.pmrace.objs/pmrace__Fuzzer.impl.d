lib/pmrace/fuzzer.ml: Alias_cov Array Branch_cov Campaign Hashtbl List Mutator Option Pmem Post_failure Printf Report Runtime Sched Seed Shared_queue String Sync_policy Target Unix Whitelist

lib/pmrace/bug_report.ml: Array Fmt Fuzzer Hashtbl List Post_failure Printf Report Runtime Seed

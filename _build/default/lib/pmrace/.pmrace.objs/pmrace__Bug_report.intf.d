lib/pmrace/bug_report.mli: Format Fuzzer Report

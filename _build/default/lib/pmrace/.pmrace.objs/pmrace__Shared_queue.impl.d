lib/pmrace/shared_queue.ml: Fmt Hashtbl Int List Runtime Set

lib/pmrace/post_failure.ml: Fmt Hashtbl Int64 List Pmem Runtime Sched Target Whitelist

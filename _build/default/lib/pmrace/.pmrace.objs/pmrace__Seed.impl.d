lib/pmrace/seed.ml: Array Fmt List Printf Sched String

lib/pmrace/report.ml: Fmt Hashtbl List Option Post_failure Runtime String Target

lib/pmrace/report.mli: Format Post_failure Runtime Target

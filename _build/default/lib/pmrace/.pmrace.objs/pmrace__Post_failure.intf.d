lib/pmrace/post_failure.mli: Format Hashtbl Pmem Runtime Target Whitelist

lib/pmrace/aux_checkers.mli: Format Runtime

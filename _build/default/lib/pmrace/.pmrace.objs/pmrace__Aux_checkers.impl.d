lib/pmrace/aux_checkers.ml: Fmt Hashtbl List Option Pmem Runtime

lib/pmrace/campaign.mli: Pmem Runtime Sched Seed Shared_queue Sync_policy Target

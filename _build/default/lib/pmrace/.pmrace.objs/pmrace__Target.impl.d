lib/pmrace/target.ml: Fmt Option Runtime Seed

lib/pmrace/seed.mli: Format Sched

(* The whitelist of benign non-persisted reads (§4.4).

   Some crash-consistency mechanisms — redo-logged transactional
   allocations in PMDK, checksummed regions — tolerate reading
   non-persisted data by construction.  Post-failure validation cannot see
   that, so developers (and PMRace's defaults) list the code locations of
   such reads; inconsistencies whose read or effect site matches are
   marked safe instead of being reported. *)

module Sset = Set.Make (String)

type t = { mutable sites : Sset.t }

let create sites = { sites = Sset.of_list sites }
let empty () = create []
let add t site = t.sites <- Sset.add site t.sites
let mem_site t site = Sset.mem site t.sites
let sites t = Sset.elements t.sites

let covers t (inc : Runtime.Checkers.inconsistency) =
  mem_site t (Runtime.Instr.name inc.source.Runtime.Candidates.read_instr)
  || mem_site t (Runtime.Instr.name inc.source.Runtime.Candidates.write_instr)
  || mem_site t (Runtime.Instr.name inc.eff_instr)

(** PM alias pair coverage (§4.2.1): a bitmap over hashed pairs of
    back-to-back PM accesses to the same address by different threads, each
    access identified by (instruction, persistency state, thread).  New
    bits are the fuzzer's interleaving-coverage feedback. *)

type t

type access = { a_instr : int; a_dirty : bool; a_tid : int }

val create : ?size_log:int -> unit -> t
(** A bitmap with [2^size_log] bits (default 16, i.e. a 64 Kbit map). *)

val observe : t -> prev:access -> cur:access -> bool
(** Feed one back-to-back pair; returns [true] when it sets a new bit.
    Same-thread pairs are ignored (they are not alias pairs). *)

val count : t -> int
(** Number of set bits — the coverage measure. *)

val attach : t -> Runtime.Env.t -> unit
(** Subscribe to an execution's access events and feed the bitmap. *)

(** PMRace's operation mutator (§4.5) and the AFL++-style havoc byte
    mutator baseline used in the Table 4 comparison. *)

module Rng = Sched.Rng

type strategy = Mutation | Addition | Deletion | Shuffling | Merging

val strategies : strategy list
val strategy_name : strategy -> string

val mutate_op : Rng.t -> Seed.profile -> Seed.t -> Seed.t
val add_op : Rng.t -> Seed.profile -> Seed.t -> Seed.t
val delete_op : Rng.t -> Seed.profile -> Seed.t -> Seed.t
val shuffle_ops : Rng.t -> Seed.profile -> Seed.t -> Seed.t
val merge : Rng.t -> Seed.profile -> Seed.t -> Seed.t -> Seed.t

val evolve : Rng.t -> Seed.profile -> corpus:Seed.t list -> Seed.t -> strategy * Seed.t
(** Apply a random evolution strategy; [Merging] picks its partner from
    [corpus]. *)

val populate : Rng.t -> Seed.profile -> factor:int -> Seed.t
(** The load-phase fallback: flood the target with [factor ×] more inserts
    to trigger resizing paths. *)

val afl_havoc : Rng.t -> string -> string
(** Grammar-oblivious byte mutation of rendered command text. *)

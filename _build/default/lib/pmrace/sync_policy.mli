(** PM-aware interleaving exploration: the cond_wait/cond_signal
    synchronization algorithm of Figure 6, driving reader threads into
    loads of non-persisted data for one shared-access queue entry.

    Handles the paper's three pitfalls: disable-after-signal, privileged
    thread election when all workers block, and persistent skip counts for
    sync points that blocked unnecessarily. *)

module Rng = Sched.Rng

type t

val create :
  ?writer_wait:int ->
  ?block_threshold:int ->
  rng:Rng.t ->
  nthreads:int ->
  skip:int ->
  Shared_queue.entry ->
  t
(** [writer_wait] is the number of yields the writer performs after
    signalling (the paper's [writerWaiting]); [skip] is the persisted
    number of cond_wait executions to skip (Pitfall 3). *)

val policy : t -> Runtime.Env.policy
(** The interleaving policy to install for one fuzz campaign. *)

val triggered : t -> bool
(** Whether cond_signal fired (a writer reached the entry's store). *)

val disabled_by_hang : t -> bool
val waits_executed : t -> int

val next_skip : t -> previous:int -> int
(** Skip count to persist for the next campaign on the same seed. *)

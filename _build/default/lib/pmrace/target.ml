(* A target under test: the adapter each PM system implements.

   Mirrors the paper's setup: a driver program issues requests through the
   system's interface from several worker threads (§6.1); [init] builds the
   initial pool (the expensive libpmemobj-style initialisation that
   in-memory checkpoints amortise, §5), and [recover] is the system's
   post-failure recovery code run during validation (§4.4). *)

type known_bug = {
  kb_id : int; (* the paper's bug number (Table 2) *)
  kb_type : [ `Inter | `Sync | `Intra | `Other ];
  kb_new : bool;
  kb_write_site : string option;
  kb_read_site : string option;
  kb_description : string;
  kb_consequence : string;
}

type t = {
  name : string;
  version : string;
  scope : string;
  concurrency : string;
  pool_words : int;
  expensive_init : bool;
      (* libpmemobj-style initialisation: benefits from in-memory checkpoints *)
  init : Runtime.Env.t -> unit;
  annotate : Runtime.Env.t -> unit;
  (* register pm_sync_var_hint annotations; called for every environment,
     including ones restored from a checkpoint or booted from a crash
     image, since annotations describe the (static) pool layout *)
  recover : Runtime.Env.t -> unit;
  run_op : Runtime.Env.ctx -> Seed.op -> unit;
  profile : Seed.profile;
  known_bugs : known_bug list; (* seeded ground truth, for Table 2/5 *)
  whitelist_sites : string list; (* default whitelist entries (§4.4) *)
}

let pp_known_bug ppf b =
  let ty =
    match b.kb_type with
    | `Inter -> "Inter"
    | `Sync -> "Sync"
    | `Intra -> "Intra"
    | `Other -> "Other"
  in
  Fmt.pf ppf "Bug %d [%s]%s %s -> %s: %s (%s)" b.kb_id ty
    (if b.kb_new then " (new)" else "")
    (Option.value ~default:"-" b.kb_write_site)
    (Option.value ~default:"-" b.kb_read_site)
    b.kb_description b.kb_consequence

(* The Delay-Inj baseline of §6.1: before each PM access, inject a random
   delay (uniformly distributed up to [max_delay] scheduler yields).  This
   is the conventional interleaving-exploration technique PMRace is
   compared against in Figure 8. *)

module Rng = Sched.Rng
module Env = Runtime.Env

type t = { rng : Rng.t; prob : float; max_delay : int }

let create ?(prob = 0.08) ?(max_delay = 25) ~rng () = { rng; prob; max_delay }

let policy t : Env.policy =
  {
    before =
      (fun _ctx _p ->
        Sched.Scheduler.yield ();
        if Rng.float t.rng < t.prob then
          for _ = 1 to Rng.int t.rng t.max_delay do
            Sched.Scheduler.yield ()
          done);
    after = (fun _ _ -> ());
  }

(** The Delay-Inj baseline (§6.1): a uniformly random delay injected before
    each PM access, implemented in PMRace's framework for the Figure 8
    comparison. *)

module Rng = Sched.Rng

type t

val create : ?prob:float -> ?max_delay:int -> rng:Rng.t -> unit -> t
val policy : t -> Runtime.Env.policy

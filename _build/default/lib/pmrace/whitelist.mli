(** The whitelist of benign non-persisted reads (§4.4): code locations
    protected by redo logging or checksums, whose inconsistencies are
    marked safe instead of reported. *)

type t

val create : string list -> t
val empty : unit -> t
val add : t -> string -> unit
val mem_site : t -> string -> bool
val sites : t -> string list

val covers : t -> Runtime.Checkers.inconsistency -> bool
(** Whether the inconsistency's reading, writing, or effect site is
    whitelisted (a redo-logged transactional allocation whitelists the
    writes it produced, so reads of them are benign). *)

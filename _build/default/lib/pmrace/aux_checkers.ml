(* Additional PM checkers built on PMRace's framework — the two examples
   §4.3 sketches to show extensibility:

   - Redundant persistency operations: a CLWB whose target line holds no
     dirty words persists nothing (the data is already PM_CLEAN).  Chronic
     redundant flushes are a PM performance bug.
   - Missing flushes: PM words still dirty when an execution ends were
     modified but never persisted; grouped by the writing site, these are
     the classic sequential crash-consistency bug the PM-specific linters
     (PMDebugger's rules, AGAMOTTO's universal bugs) look for.

   Both are listeners over the same event stream the coverage metrics
   consume; neither requires touching the runtime. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type t = {
  redundant : (Instr.t, int) Hashtbl.t; (* flush site -> redundant flushes *)
  mutable flushes : int;
  mutable redundant_total : int;
}

let create () = { redundant = Hashtbl.create 16; flushes = 0; redundant_total = 0 }

let attach t env =
  Env.add_listener env (function
    | Env.Ev_clwb { instr; dirty_words; _ } ->
        t.flushes <- t.flushes + 1;
        if dirty_words = 0 then begin
          t.redundant_total <- t.redundant_total + 1;
          Hashtbl.replace t.redundant instr
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.redundant instr))
        end
    | Env.Ev_load _ | Env.Ev_store _ | Env.Ev_movnt _ | Env.Ev_fence _ | Env.Ev_branch _ -> ())

let flushes t = t.flushes
let redundant_total t = t.redundant_total

let redundant_sites t =
  Hashtbl.fold (fun i n acc -> (Instr.name i, n) :: acc) t.redundant []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* Missing flushes: PM words left dirty when the execution ended, grouped
   by the site that wrote them.  Run at the end of a campaign. *)
let unflushed_at_exit (env : Env.t) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun w ->
      match Pmem.Pool.dirty_writer env.pool w with
      | Some wr ->
          let site = Instr.name (Instr.of_int wr.Pmem.Pool.instr) in
          Hashtbl.replace tbl site (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site))
      | None -> ())
    (Pmem.Pool.dirty_words env.pool);
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp ppf t =
  Fmt.pf ppf "flushes=%d redundant=%d (%a)" t.flushes t.redundant_total
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    (redundant_sites t)

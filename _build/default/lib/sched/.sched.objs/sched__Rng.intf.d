lib/sched/rng.mli:

lib/sched/scheduler.ml: Array Effect Fmt List Rng

lib/sched/rng.ml: Array Int64 List

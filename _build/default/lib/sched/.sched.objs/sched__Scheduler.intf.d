lib/sched/scheduler.mli: Format Rng

(* SplitMix64: a small, fast, deterministic PRNG.

   The whole reproduction depends on replayable executions, so we avoid the
   global Stdlib.Random state and thread explicit generators instead. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2) (* 62 non-negative bits *)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let x = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  x /. 9007199254740992. (* 2^53 *)

let split t = create (Int64.to_int (next t))

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** Deterministic cooperative scheduler (OCaml 5 effect handlers).

    Simulated threads are fibers that {!yield} at every instrumented
    operation; the scheduler picks the next runnable fiber with a seeded
    {!Rng.t}, so every interleaving is replayable from its seed.  Fibers
    still suspended when the step budget runs out are killed and reported
    as hung — this is how lock hangs surface in the reproduction. *)

exception Killed
(** Raised inside a fiber killed at budget exhaustion. *)

type t

type outcome = {
  steps : int;  (** scheduling decisions taken *)
  finished : int list;  (** tids that ran to completion *)
  hung : (int * string) list;  (** tids (and names) killed at budget *)
  failed : (int * string * exn) list;  (** tids that raised *)
}

val create : ?step_budget:int -> rng:Rng.t -> unit -> t
(** [step_budget] bounds the number of scheduling decisions (default
    200_000); exhausting it classifies surviving fibers as hung. *)

val spawn : t -> name:string -> (unit -> unit) -> int
(** Register a fiber; returns its tid (dense, starting at 0).  All fibers
    must be spawned before {!run}. *)

val yield : unit -> unit
(** Give up the processor.  Must be called from inside a fiber executed by
    {!run}; the runtime calls it at every preemption point. *)

val run : ?on_step:(int -> unit) -> t -> outcome
(** Execute all fibers to completion, failure, or budget exhaustion.
    [on_step tid] is invoked before every scheduling step. *)

val steps : t -> int
val fiber_count : t -> int

val completed : outcome -> bool
(** No hung and no failed fibers. *)

val pp_outcome : Format.formatter -> outcome -> unit

(** SplitMix64 pseudo-random generator with explicit state.

    Deterministic and splittable, so every fuzz campaign is replayable from
    its seed. *)

type t

val create : int -> t
val copy : t -> t
val next : t -> int64
val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> 'a array
(** A shuffled copy (Fisher-Yates); the input is not modified. *)

(* P-CLHT: the persistent cache-line hash table of RECIPE (commit 70bf21c),
   a lock-based chained hash index, carrying the five bugs PMRace found in
   it (paper Table 2, bugs 1-5).  Instruction sites reuse the paper's
   file:line names.

   Layout (heap objects; offsets relative to object base):
     table object : [0] nbuckets  [1] buckets_off  [2] table_new  [3] version
     bucket       : [0] lock  [1,2] k/v slot0  [3,4] slot1  [5,6] slot2  [7] next
   Root fields   : [0] ht_off  [1] resize_lock  [2] gc_lock  [3] version_lock
                   [4] gc_head (a persistent list of retired tables)

   Seeded bugs:
     1 (Inter) clht_lb_res.c:785 -> 417 : resize publishes the new table
       pointer without an immediate flush; concurrent inserts write items
       into the new table (movnt) -> data loss on crash.
     2 (Sync)  clht_lb_res.c:429 : persistent bucket locks are not
       reinitialised by recovery -> post-restart hang.
     3 (Intra) clht_lb_res.c:789 -> clht_gc.c:190 : the resizer reads its
       own unflushed table_new and appends a GC record based on it -> PM
       leak.
     4 (Other) clht_lb_res.c:321 -> 616 : migration re-reads the keys it
       just wrote (unflushed) and writes them again -> redundant PM writes
       (an inconsistency candidate, not a crash-consistency bug).
     5 (Other) clht_lb_res.c:526 : clht_update returns without releasing
       the bucket lock when the key is found in an overflow node -> hang
       (a conventional concurrency bug). *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env
let ( +$ ) = Tval.add
let ( *$ ) = Tval.mul

let bucket_slots = 3
let initial_buckets = 4
let bucket_words = 8

(* Root fields. *)
let r_ht = 0
let r_resize_lock = 1
let r_gc_lock = 2
let r_version_lock = 3
let r_gc_head = 4

let root_off field = Tval.of_int (Pmdk.Layout.root_base + field)

(* Instruction sites (paper's file:line names for the bug sites). *)
let i_417 = Instr.site "clht_lb_res.c:417" (* read ht_off in put/get *)
let i_429 = Instr.site "clht_lb_res.c:429" (* bucket lock acquire *)
let i_483 = Instr.site "clht_lb_res.c:483" (* movnt key *)
let i_489 = Instr.site "clht_lb_res.c:489" (* movnt value *)
let i_526 = Instr.site "clht_lb_res.c:526" (* unlock in clht_update *)
let i_321 = Instr.site "clht_lb_res.c:321" (* migration key write *)
let i_616 = Instr.site "clht_lb_res.c:616" (* migration key re-read *)
let i_785 = Instr.site "clht_lb_res.c:785" (* store ht_off (unflushed) *)
let i_786 = Instr.site "clht_lb_res.c:786" (* flush ht_off *)
let i_789 = Instr.site "clht_lb_res.c:789" (* store table_new (unflushed) *)
let i_190 = Instr.site "clht_gc.c:190" (* read table_new in GC *)
let i_gc_rec = Instr.site "clht_gc.c:record"
let i_alloc_table = Instr.site "clht_lb_res.c:alloc_table"
let i_chain = Instr.site "clht_lb_res.c:chain"
let i_meta = Instr.site "clht_lb_res.c:meta"
let i_unlock = Instr.site "clht_lb_res.c:unlock"
let i_resize_lock = Instr.site "clht_lb_res.c:resize_lock"
let i_gc_lock = Instr.site "clht_gc.c:lock"
let i_version = Instr.site "clht_lb_res.c:version"
let i_recover = Instr.site "clht_lb_res.c:recover"

(* Branch-coverage sites. *)
let b_put = Instr.site "clht:put"
let b_get = Instr.site "clht:get"
let b_update = Instr.site "clht:update"
let b_delete = Instr.site "clht:delete"
let b_resize = Instr.site "clht:resize"
let b_chain_walk = Instr.site "clht:chain_walk"
let b_migrate = Instr.site "clht:migrate"
let b_gc = Instr.site "clht:gc"

let key_word k = Tval.of_int (k + 1) (* 0 marks an empty slot *)

(* Allocate and zero a table with [n] buckets; returns its offset. *)
let alloc_table ctx n =
  let tbl = Pmdk.Heap.alloc ctx ~words:8 in
  let buckets = Pmdk.Heap.alloc ctx ~words:(n * bucket_words) in
  (* Fresh heap chunks are zero-filled by construction (the pool starts
     zeroed and chunks are never reused), so only the header needs
     stores. *)
  Mem.store ctx ~instr:i_alloc_table (Tval.of_int tbl) (Tval.of_int n);
  Mem.store ctx ~instr:i_alloc_table (Tval.of_int (tbl + 1)) (Tval.of_int buckets);
  Mem.store ctx ~instr:i_alloc_table (Tval.of_int (tbl + 2)) Tval.zero;
  Mem.store ctx ~instr:i_alloc_table (Tval.of_int (tbl + 3)) Tval.zero;
  Mem.persist ctx ~instr:i_alloc_table (Tval.of_int tbl);
  tbl

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx;
  let tbl = alloc_table ctx initial_buckets in
  Mem.store ctx ~instr:i_785 (root_off r_ht) (Tval.of_int tbl);
  Mem.persist ctx ~instr:i_786 (root_off r_ht)

let annotate (env : Env.t) =
  (* Bucket locks live at stride [bucket_words] inside bucket arrays; the
     whole heap area may contain buckets, so the annotation covers the
     first word of every line in the heap — matching the C annotation on
     the bucket lock *field* (one annotation in source, many words).  To
     stay precise we annotate the initial table's bucket locks and rely on
     the name-based grouping for resized tables. *)
  let first_buckets =
    (* The initial table is the first heap object: header (8 words) then
       the bucket array. *)
    Pmdk.Layout.heap_base + 8
  in
  for b = 0 to initial_buckets - 1 do
    Env.annotate_sync env ~name:"clht_lb_res.c:429"
      ~addr:(first_buckets + (b * bucket_words))
      ~len:1 ~init:0L
  done;
  Env.annotate_sync env ~name:"clht:resize_lock"
    ~addr:(Pmdk.Layout.root_base + r_resize_lock)
    ~len:1 ~init:0L;
  Env.annotate_sync env ~name:"clht:gc_lock" ~addr:(Pmdk.Layout.root_base + r_gc_lock) ~len:1
    ~init:0L;
  Env.annotate_sync env ~name:"clht:version_lock"
    ~addr:(Pmdk.Layout.root_base + r_version_lock)
    ~len:1 ~init:0L

let table ctx = Mem.load ctx ~instr:i_417 (root_off r_ht)
let nbuckets ctx tbl = Mem.load ctx ~instr:i_meta tbl
let buckets ctx tbl = Mem.load ctx ~instr:i_meta (tbl +$ Tval.of_int 1)

let bucket_of ctx tbl key =
  let n = nbuckets ctx tbl in
  let b = buckets ctx tbl in
  let idx = Tval.of_int (key mod max 1 (Tval.to_int n)) in
  b +$ (idx *$ Tval.of_int bucket_words)

let slot_key b s = b +$ Tval.of_int (1 + (2 * s))
let slot_val b s = b +$ Tval.of_int (2 + (2 * s))
let bucket_next b = b +$ Tval.of_int 7

(* Find (bucket, slot) of a key along the chain; [None] if absent. *)
let rec find_slot ctx bucket key =
  Mem.branch ctx ~instr:b_chain_walk;
  let rec scan s =
    if s >= bucket_slots then None
    else
      let k = Mem.load ctx ~instr:i_616 (slot_key bucket s) in
      if Tval.equal_v k (key_word key) then Some (bucket, s) else scan (s + 1)
  in
  match scan 0 with
  | Some _ as r -> r
  | None ->
      let next = Mem.load ctx ~instr:i_chain (bucket_next bucket) in
      if Tval.is_zero next then None else find_slot ctx (Tval.untainted next) key

let rec find_free ctx bucket =
  let rec scan s =
    if s >= bucket_slots then None
    else
      let k = Mem.load ctx ~instr:i_616 (slot_key bucket s) in
      if Tval.is_zero k then Some (bucket, s) else scan (s + 1)
  in
  match scan 0 with
  | Some _ as r -> r
  | None ->
      let next = Mem.load ctx ~instr:i_chain (bucket_next bucket) in
      if Tval.is_zero next then None else find_free ctx (Tval.untainted next)

let chain_length ctx bucket =
  let rec walk b n =
    let next = Mem.load ctx ~instr:i_chain (bucket_next b) in
    if Tval.is_zero next || n > 8 then n else walk (Tval.untainted next) (n + 1)
  in
  walk bucket 0

(* Append a GC record for a retired table — the durable side effect of
   Bug 3.  The record value derives from the (possibly unflushed)
   table_new field. *)
let gc_retire ctx retired_tbl =
  Mem.branch ctx ~instr:b_gc;
  Mem.spin_lock ~persist_lock:true ctx ~instr:i_gc_lock (root_off r_gc_lock);
  let head = Mem.load ctx ~instr:i_gc_rec (root_off r_gc_head) in
  let rec_off = Pmdk.Heap.alloc ctx ~words:8 in
  Mem.store ctx ~instr:i_gc_rec (Tval.of_int rec_off) retired_tbl;
  Mem.store ctx ~instr:i_gc_rec (Tval.of_int (rec_off + 1)) head;
  Mem.persist ctx ~instr:i_gc_rec (Tval.of_int rec_off);
  Mem.store ctx ~instr:i_gc_rec (root_off r_gc_head) (Tval.of_int rec_off);
  Mem.persist ctx ~instr:i_gc_rec (root_off r_gc_head);
  Mem.unlock ~persist_lock:true ctx ~instr:i_gc_lock (root_off r_gc_lock)

(* Insert a key/value pair into a table the caller has already chosen;
   used by both puts and migration.  Items are written with non-temporal
   stores (Figure 2, lines 483-489). *)
let insert_into ctx tbl key value ~migration =
  let bucket = bucket_of ctx tbl key in
  let ki = if migration then i_321 else i_483 in
  let vi = if migration then i_321 else i_489 in
  match find_free ctx bucket with
  | Some (b, s) ->
      Mem.movnt ctx ~instr:ki (slot_key b s) (key_word key);
      Mem.movnt ctx ~instr:vi (slot_val b s) value;
      Mem.sfence ctx ~instr:vi;
      true
  | None ->
      (* Chain a fresh overflow bucket. *)
      let last =
        let rec walk b =
          let next = Mem.load ctx ~instr:i_chain (bucket_next b) in
          if Tval.is_zero next then b else walk (Tval.untainted next)
        in
        walk bucket
      in
      let nb = Pmdk.Heap.alloc ctx ~words:bucket_words in
      Mem.movnt ctx ~instr:ki (slot_key (Tval.of_int nb) 0) (key_word key);
      Mem.movnt ctx ~instr:vi (slot_val (Tval.of_int nb) 0) value;
      Mem.sfence ctx ~instr:vi;
      Mem.store ctx ~instr:i_chain (bucket_next last) (Tval.of_int nb);
      Mem.persist ctx ~instr:i_chain (bucket_next last);
      false

(* Resize: allocate a table twice the size, migrate, publish the new table
   pointer — with the Bug 1 window between the store (785) and the flush
   (786), and the Bug 3 GC based on the unflushed table_new (789/190). *)
let resize ctx =
  Mem.branch ctx ~instr:b_resize;
  Mem.spin_lock ~persist_lock:true ctx ~instr:i_resize_lock (root_off r_resize_lock);
  let old_tbl = Tval.untainted (table ctx) in
  let n = Tval.to_int (nbuckets ctx old_tbl) in
  let new_tbl = alloc_table ctx (n * 2) in
  (* 789: table_new is stored but not flushed yet. *)
  Mem.store ctx ~instr:i_789 (old_tbl +$ Tval.of_int 2) (Tval.of_int new_tbl);
  (* Bug 3: the GC record is built from the unflushed table_new. *)
  let tn = Mem.load ctx ~instr:i_190 (old_tbl +$ Tval.of_int 2) in
  gc_retire ctx tn;
  Mem.persist ctx ~instr:i_789 (old_tbl +$ Tval.of_int 2);
  (* Migrate every item; Bug 4: keys just written are re-read (616) while
     still unflushed in migration order, then redundantly rewritten. *)
  Mem.branch ctx ~instr:b_migrate;
  let b0 = Tval.untainted (buckets ctx old_tbl) in
  for bi = 0 to n - 1 do
    let rec migrate_bucket b =
      for s = 0 to bucket_slots - 1 do
        let k = Mem.load ctx ~instr:i_616 (slot_key b s) in
        if not (Tval.is_zero k) then begin
          let v = Mem.load ctx ~instr:i_616 (slot_val b s) in
          let key = Tval.to_int k - 1 in
          ignore
            (insert_into ctx (Tval.of_int new_tbl) key (Tval.untainted v) ~migration:true);
          (* Redundant write-back of the migrated key (Bug 4). *)
          Mem.store ctx ~instr:i_321 (slot_key b s) (Tval.untainted k)
        end
      done;
      let next = Mem.load ctx ~instr:i_chain (bucket_next b) in
      if not (Tval.is_zero next) then migrate_bucket (Tval.untainted next)
    in
    migrate_bucket (b0 +$ Tval.of_int (bi * bucket_words))
  done;
  (* Bump the table version under its persistent lock. *)
  Mem.spin_lock ~persist_lock:true ctx ~instr:i_version (root_off r_version_lock);
  let v = Mem.load ctx ~instr:i_version (old_tbl +$ Tval.of_int 3) in
  Mem.store ctx ~instr:i_version (Tval.of_int new_tbl +$ Tval.of_int 3) (v +$ Tval.one);
  Mem.unlock ~persist_lock:true ctx ~instr:i_version (root_off r_version_lock);
  (* 785: swap the global table pointer — NOT flushed yet. *)
  Mem.store ctx ~instr:i_785 (root_off r_ht) (Tval.of_int new_tbl);
  (* Finalisation work keeps the window open (clearing helper state). *)
  for i = 0 to 2 do
    ignore (Mem.load ctx ~instr:i_meta (old_tbl +$ Tval.of_int (i mod 4)))
  done;
  (* 786: the flush closing the window. *)
  Mem.persist ctx ~instr:i_786 (root_off r_ht);
  Mem.unlock ~persist_lock:true ctx ~instr:i_resize_lock (root_off r_resize_lock)

let lock_bucket ctx bucket = Mem.spin_lock ~persist_lock:true ctx ~instr:i_429 bucket
let unlock_bucket ctx bucket = Mem.unlock ~persist_lock:true ctx ~instr:i_unlock bucket

let put ctx key value =
  Mem.branch ctx ~instr:b_put;
  (* 417: read the (possibly non-persisted) table pointer. *)
  let tbl = table ctx in
  let bucket = bucket_of ctx tbl key in
  lock_bucket ctx bucket;
  (match find_slot ctx bucket key with
  | Some (b, s) ->
      Mem.movnt ctx ~instr:i_489 (slot_val b s) value;
      Mem.sfence ctx ~instr:i_489
  | None ->
      let fit = insert_into ctx tbl key value ~migration:false in
      if not fit then begin
        unlock_bucket ctx bucket;
        if chain_length ctx (Tval.untainted bucket) >= 2 then resize ctx;
        ignore (Mem.load ctx ~instr:i_417 (root_off r_ht));
        (* fallthrough: the item was inserted into an overflow bucket *)
        lock_bucket ctx bucket
      end);
  unlock_bucket ctx bucket

let get ctx key =
  Mem.branch ctx ~instr:b_get;
  let tbl = table ctx in
  let bucket = bucket_of ctx tbl key in
  match find_slot ctx bucket key with
  | Some (b, s) -> Some (Mem.load ctx ~instr:i_616 (slot_val b s))
  | None -> None

(* Bug 5: when the key is found in an overflow (chained) bucket, the
   update path returns without releasing the bucket lock. *)
let update ctx key value =
  Mem.branch ctx ~instr:b_update;
  let tbl = table ctx in
  let bucket = bucket_of ctx tbl key in
  lock_bucket ctx bucket;
  match find_slot ctx bucket key with
  | Some (b, s) ->
      Mem.movnt ctx ~instr:i_489 (slot_val b s) value;
      Mem.sfence ctx ~instr:i_489;
      let in_overflow = not (Tval.equal_v b bucket) in
      if in_overflow then
        (* missing unlock — clht_update's early-return path (526) *)
        Mem.branch ctx ~instr:i_526
      else unlock_bucket ctx bucket
  | None -> unlock_bucket ctx bucket

let delete ctx key =
  Mem.branch ctx ~instr:b_delete;
  let tbl = table ctx in
  let bucket = bucket_of ctx tbl key in
  lock_bucket ctx bucket;
  (match find_slot ctx bucket key with
  | Some (b, s) ->
      Mem.movnt ctx ~instr:i_483 (slot_key b s) Tval.zero;
      Mem.movnt ctx ~instr:i_489 (slot_val b s) Tval.zero;
      Mem.sfence ctx ~instr:i_489
  | None -> ());
  unlock_bucket ctx bucket

let run_op ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { key; value } -> put ctx key (Tval.of_int value)
  | Get { key } -> ignore (get ctx key)
  | Update { key; value } -> update ctx key (Tval.of_int value)
  | Delete { key } -> delete ctx key
  | Incr { key; delta } -> update ctx key (Tval.of_int delta)
  | Decr { key; delta } -> update ctx key (Tval.of_int delta)
  | Append { key; value } | Prepend { key; value } -> put ctx key (Tval.of_int value)
  | Scan { key; _ } -> ignore (get ctx key)
  | Cas { key; value; _ } -> update ctx key (Tval.of_int value)
  | Touch { key; _ } -> ignore (get ctx key)
  | Flush_all | Stats -> ()

(* Recovery: reset the resize/GC/version locks (so their sync
   inconsistencies validate as false positives) but NOT the bucket locks —
   Bug 2.  table_new and the GC list are left alone, so the Bug 3 records
   (and the retired-table leak) survive. *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  Mem.store ctx ~instr:i_recover (root_off r_resize_lock) Tval.zero;
  Mem.persist ctx ~instr:i_recover (root_off r_resize_lock);
  Mem.store ctx ~instr:i_recover (root_off r_gc_lock) Tval.zero;
  Mem.persist ctx ~instr:i_recover (root_off r_gc_lock);
  Mem.store ctx ~instr:i_recover (root_off r_version_lock) Tval.zero;
  Mem.persist ctx ~instr:i_recover (root_off r_version_lock)

(* Post-recovery lookup used by examples and tests to demonstrate the data
   loss of Bug 1. *)
let lookup_after_recovery (env : Env.t) key =
  let ctx = Env.ctx env ~tid:(-2) in
  match get ctx key with Some v -> Some (Tval.to_int v) | None -> None

let target : Pmrace.Target.t =
  {
    name = "p-clht";
    version = "70bf21c";
    scope = "Static hashing";
    concurrency = "Lock-based";
    pool_words = 4096;
    expensive_init = true;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; KGet; KUpdate; KDelete ];
        key_range = 32;
        value_range = 1000;
        threads = 4;
        ops_per_thread = 8;
      };
    known_bugs =
      [
        {
          kb_id = 1;
          kb_type = `Inter;
          kb_new = true;
          kb_write_site = Some "clht_lb_res.c:785";
          kb_read_site = Some "clht_lb_res.c:417";
          kb_description = "read unflushed table pointer and insert items";
          kb_consequence = "data loss";
        };
        {
          kb_id = 2;
          kb_type = `Sync;
          kb_new = true;
          kb_write_site = Some "clht_lb_res.c:429";
          kb_read_site = None;
          kb_description = "do not initialize bucket locks after restarts";
          kb_consequence = "hang";
        };
        {
          kb_id = 3;
          kb_type = `Intra;
          kb_new = true;
          kb_write_site = Some "clht_lb_res.c:789";
          kb_read_site = Some "clht_gc.c:190";
          kb_description = "read unflushed table pointer and perform GC";
          kb_consequence = "PM leakage";
        };
        {
          kb_id = 4;
          kb_type = `Other;
          kb_new = true;
          kb_write_site = Some "clht_lb_res.c:321";
          kb_read_site = Some "clht_lb_res.c:616";
          kb_description = "read unflushed keys";
          kb_consequence = "redundant PM writes";
        };
        {
          kb_id = 5;
          kb_type = `Other;
          kb_new = true;
          kb_write_site = Some "clht_lb_res.c:526";
          kb_read_site = None;
          kb_description = "do not release bucket locks in update";
          kb_consequence = "hang";
        };
      ];
    whitelist_sites = Pmdk.Tx.default_whitelist;
  }

(* memcached-pmem (Lenovo, commit 8f121f6): the memcached key-value store
   with persistent slabs, carrying the paper's bugs 9-14.

   PM layout:
     root [0] free_head class 0   [1] free_head class 1
          [8] lru_head            [9] lru_tail        (lines separated)
     item (16 words, two lines — header and data in separate lines, like
     the real 48-byte header followed by the data block):
       line 0: [0] key  [1] it_flags  [2] slabs_clsid  [3] prev  [4] next
       line 1: [8] value  [9] value2  [10] checksum

   DRAM (rebuilt from slabs after a crash): the hash index (key -> item).

   The LRU list and the slab free lists live in PM but their link fields
   are maintained with *delayed* flushes — the source of the six
   memcached-pmem bugs:
     9/10 (new) memcached.c:4292/4293 -> 2805 : append/prepend read the
       still-unflushed value words and write the combined value.
     11 items.c:423 -> items.c:464 : eviction reads an unflushed prev link
       and clears slabs_clsid of the item it reaches through it.
     12 slabs.c:549 -> slabs.c:412 : allocation pops an item through an
       unflushed free-list next pointer and writes its it_flags.
     13 items.c:1096 -> memcached.c:2824 : replace reads unflushed
       it_flags and stores a value header derived from them.
     14 items.c:627 -> items.c:623 : freeing reads an unflushed
       slabs_clsid and pushes the item onto the free list selected by it.

   Recovery rebuilds the DRAM index and rewrites every linked item's
   prev/next fields from scratch (as the real index/LRU rebuild does),
   which silently fixes the many prev/next inconsistencies — the large
   validated-false-positive count of Table 3.  Reads of checksummed value
   data (the get path) are sanitised after verification, mirroring the
   store's checksum-based crash consistency. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env
module Proto = Memcached_proto

let ( +$ ) = Tval.add

let item_words = 16
let items_per_class = 12
let nclasses = 2

let r_free c = c (* root word per class *)
let r_lru_head = 8
let r_lru_tail = 9
let root_off field = Tval.of_int (Pmdk.Layout.root_base + field)

(* Item field addresses. *)
let f_key it = it
let f_flags it = it +$ Tval.of_int 1
let f_clsid it = it +$ Tval.of_int 2
let f_prev it = it +$ Tval.of_int 3
let f_next it = it +$ Tval.of_int 4
let f_value it = it +$ Tval.of_int 8
let f_value2 it = it +$ Tval.of_int 9
let f_chk it = it +$ Tval.of_int 10

let flag_linked = 1L

(* Bug sites (Table 2 names). *)
let i_2805 = Instr.site "memcached.c:2805" (* read value in append/prepend *)
let i_4292 = Instr.site "memcached.c:4292" (* write value *)
let i_4293 = Instr.site "memcached.c:4293" (* write value2 *)
let i_423 = Instr.site "items.c:423" (* store prev (unflushed) *)
let i_464 = Instr.site "items.c:464" (* read prev in eviction *)
let i_549 = Instr.site "slabs.c:549" (* store free-list next (unflushed) *)
let i_412 = Instr.site "slabs.c:412" (* read free-list next in alloc *)
let i_1096 = Instr.site "items.c:1096" (* store it_flags (unflushed) *)
let i_2824 = Instr.site "memcached.c:2824" (* read it_flags in replace *)
let i_627 = Instr.site "items.c:627" (* store slabs_clsid (unflushed) *)
let i_623 = Instr.site "items.c:623" (* read slabs_clsid when freeing *)

(* Supporting sites. *)
let i_free_push = Instr.site "slabs.c:free_push"
let i_free_head = Instr.site "slabs.c:free_head"
let i_new_flags = Instr.site "items.c:new_flags"
let i_free_clsid = Instr.site "items.c:free_clsid"
let i_lru_next = Instr.site "items.c:lru_next"
let i_lru_read = Instr.site "items.c:lru_read"
let i_lru_ends = Instr.site "items.c:lru_ends"
let i_store_value = Instr.site "memcached.c:store_value"
let i_chk_write = Instr.site "memcached.c:chk_write"
let i_chk_read = Instr.site "memcached.c:chk_read"
let i_key_write = Instr.site "items.c:key_write"
let i_recover = Instr.site "memcached.c:recover"

(* Branch sites: one per command family (the Table 4 counters) plus
   internal paths. *)
let b_get = Instr.site "memcached:get"
let b_update = Instr.site "memcached:update"
let b_incr = Instr.site "memcached:incr"
let b_decr = Instr.site "memcached:decr"
let b_delete = Instr.site "memcached:delete"
let b_error = Instr.site "memcached:error"
let b_evict = Instr.site "memcached:evict"
let b_alloc = Instr.site "memcached:alloc"
let b_append = Instr.site "memcached:append"
let b_miss = Instr.site "memcached:miss"

let b_other = Instr.site "memcached:other"
let i_touch = Instr.site "items.c:touch"

let family_site = function
  | Proto.F_get -> b_get
  | Proto.F_update -> b_update
  | Proto.F_incr -> b_incr
  | Proto.F_decr -> b_decr
  | Proto.F_delete -> b_delete
  | Proto.F_other -> b_other
  | Proto.F_error -> b_error

(* The DRAM hash index, rebuilt from slabs after a crash. *)
let index_key : (int, int) Hashtbl.t Runtime.Dram.key = Runtime.Dram.key ~name:"memcached-index" ()
let index (ctx : Env.ctx) =
  Runtime.Dram.find_or_add ctx.Env.env.Env.dram index_key (fun () -> Hashtbl.create 64)

let checksum key value = Int64.logxor (Int64.of_int (key * 2654435761)) value

(* --- slab allocator ------------------------------------------------- *)

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  (* memcached-pmem maps its pool with pmem_map_file (libpmem), not
     libpmemobj — which is why in-memory checkpoints do not speed it up. *)
  Pmdk.Pmem_low.map ctx;
  Pmdk.Heap.format ctx ~pool_words:(Pmem.Pool.size env.pool);
  (* Carve the item arena and thread every item onto its class free
     list. *)
  for c = 0 to nclasses - 1 do
    let head = ref 0 in
    for _ = 1 to items_per_class do
      let it = Pmdk.Heap.alloc ctx ~words:item_words in
      Mem.store ctx ~instr:i_free_push (Tval.of_int (it + 4)) (Tval.of_int !head);
      Mem.store ctx ~instr:i_free_push (Tval.of_int (it + 2)) (Tval.of_int c);
      Mem.persist ctx ~instr:i_free_push (Tval.of_int it);
      head := it
    done;
    Mem.store ctx ~instr:i_free_head (root_off (r_free c)) (Tval.of_int !head);
    Mem.persist ctx ~instr:i_free_head (root_off (r_free c))
  done

let annotate (_ : Env.t) = () (* no persistent synchronization variables *)

let class_of_value v = if Int64.to_int v < 500 then 0 else 1

(* Free an item: bug 14's pattern.  The class is read from the (possibly
   unflushed) slabs_clsid (623); the item goes onto the free list selected
   by that tainted class; its own slabs_clsid is cleared without a flush
   (627). *)
let item_free ctx it =
  let clsid = Mem.load ctx ~instr:i_623 (f_clsid it) in
  let cls = Tval.to_int clsid land (nclasses - 1) in
  Mem.store ctx ~instr:i_627 (f_clsid it) Tval.zero;
  (* free-list push through the tainted class (the durable side effect of
     bug 14): head and next writes address the list chosen by clsid *)
  let head_addr = root_off (r_free cls) |> fun a -> Tval.add_taint a (Tval.taint clsid) in
  let rec push () =
    let head = Mem.load ctx ~instr:i_412 head_addr in
    (* 549: the free-list next pointer, stored without a flush. *)
    Mem.store ctx ~instr:i_549 (f_next it) head;
    if not (Mem.cas ctx ~instr:i_free_push head_addr ~expect:(Tval.untainted head) ~value:it)
    then push ()
  in
  push ();
  Mem.persist ctx ~instr:i_free_push head_addr

(* Pop an item from a free list: bug 12's pattern.  The next pointer read
   (412) may be unflushed (just pushed by another thread at 549); the item
   it designates gets its it_flags written (the durable side effect). *)
let rec item_alloc ctx cls =
  Mem.branch ctx ~instr:b_alloc;
  let head_addr = root_off (r_free cls) in
  let head = Mem.load ctx ~instr:i_412 head_addr in
  if Tval.is_zero head then None
  else begin
    (* 412: read the free-list successor — possibly non-persisted. *)
    let next = Mem.load ctx ~instr:i_412 (f_next head) in
    if Mem.cas ctx ~instr:i_free_head head_addr ~expect:(Tval.untainted head) ~value:next
    then begin
      (* The popped item is addressed through the (tainted) head; writing
         its flags is bug 12's durable side effect when head came from an
         unflushed next. *)
      Mem.store ctx ~instr:i_new_flags (f_flags head) Tval.zero;
      Mem.persist ctx ~instr:i_new_flags (f_flags head);
      Some head
    end
    else item_alloc ctx cls
  end

(* --- LRU (persistent links, delayed flushes) ------------------------ *)

let lru_link ctx it =
  let head = Mem.load ctx ~instr:i_lru_read (root_off r_lru_head) in
  Mem.store ctx ~instr:i_lru_next (f_next it) head;
  Mem.store ctx ~instr:i_lru_next (f_prev it) Tval.zero;
  if not (Tval.is_zero head) then
    (* 423: the previous head's prev pointer, stored without a flush. *)
    Mem.store ctx ~instr:i_423 (f_prev (Tval.untainted head)) it;
  Mem.store ctx ~instr:i_lru_ends (root_off r_lru_head) it;
  if Tval.is_zero (Mem.load ctx ~instr:i_lru_read (root_off r_lru_tail)) then
    Mem.store ctx ~instr:i_lru_ends (root_off r_lru_tail) it;
  Mem.persist ctx ~instr:i_lru_ends (root_off r_lru_head)

(* Evict the LRU tail: bug 11's pattern — the tail's prev link (464) may
   be unflushed; the item reached through it gets durable writes. *)
let lru_evict ctx =
  Mem.branch ctx ~instr:b_evict;
  let tail = Mem.load ctx ~instr:i_lru_read (root_off r_lru_tail) in
  if Tval.is_zero tail then None
  else begin
    (* 464: read the (possibly non-persisted) prev pointer. *)
    let prev = Mem.load ctx ~instr:i_464 (f_prev tail) in
    Mem.store ctx ~instr:i_lru_ends (root_off r_lru_tail) prev;
    if not (Tval.is_zero prev) then begin
      (* The durable side effect through the tainted prev: the new tail's
         next link and its slabs_clsid tail-marker bit — the
         "write slabs_clsid" of bug 11, which the index rebuild does NOT
         repair. *)
      Mem.store ctx ~instr:i_lru_next (f_next prev) Tval.zero;
      Mem.persist ctx ~instr:i_lru_next (f_next prev);
      let cls = Mem.load ctx ~instr:i_lru_read (f_clsid prev) in
      Mem.store ctx ~instr:i_free_clsid (f_clsid prev) (Tval.logor cls (Tval.of_int 256));
      Mem.persist ctx ~instr:i_free_clsid (f_clsid prev)
    end
    else begin
      Mem.store ctx ~instr:i_lru_ends (root_off r_lru_head) Tval.zero;
      Mem.persist ctx ~instr:i_lru_ends (root_off r_lru_head)
    end;
    let key = Mem.load ctx ~instr:i_lru_read (f_key tail) in
    Hashtbl.remove (index ctx) (Tval.to_int key - 1);
    item_free ctx (Tval.untainted tail);
    Some tail
  end

(* --- commands -------------------------------------------------------- *)

let find ctx key =
  match Hashtbl.find_opt (index ctx) key with
  | Some off -> Some (Tval.of_int off)
  | None -> None

let rec alloc_or_evict ctx cls tries =
  match item_alloc ctx cls with
  | Some it -> Some it
  | None ->
      if tries > items_per_class then None
      else begin
        ignore (lru_evict ctx);
        alloc_or_evict ctx cls (tries + 1)
      end

(* Store a brand-new item (set / add path).  Values are written at
   4292/4293 and their flush is delayed until after the item is linked —
   bugs 9/10's window. *)
let store_new ctx key value =
  let cls = class_of_value (Tval.v value) in
  match alloc_or_evict ctx cls 0 with
  | None -> ()
  | Some it ->
      (* 4292/4293: the value words, visible but not yet flushed. *)
      Mem.store ctx ~instr:i_4292 (f_value it) value;
      Mem.store ctx ~instr:i_4293 (f_value2 it) value;
      Mem.store ctx ~instr:i_key_write (f_key it) (Tval.of_int (key + 1));
      (* 627: slabs_clsid, stored without a flush (bug 14's write). *)
      Mem.store ctx ~instr:i_627 (f_clsid it) (Tval.of_int cls);
      (* 1096: it_flags marking the item linked, unflushed (bug 13's
         write). *)
      Mem.store ctx ~instr:i_1096 (f_flags it) (Tval.of_int64 flag_linked);
      lru_link ctx it;
      Hashtbl.replace (index ctx) key (Tval.to_int it);
      (* Stats bookkeeping keeps the window open: the item is already
         visible through the index, its value/flags not yet flushed. *)
      for i = 0 to 3 do
        ignore (Mem.load ctx ~instr:i_lru_read (root_off (r_free (i land 1))))
      done;
      (* The checksum write persists the data line — the header fields
         (it_flags, slabs_clsid, prev) are never flushed here: the missing
         flushes behind bugs 11, 13 and 14. *)
      Mem.store ctx ~instr:i_chk_write (f_chk it)
        (Tval.of_int64 (checksum key (Tval.v value)));
      Mem.persist ctx ~instr:i_chk_write (f_chk it)

(* Replace path: bug 13 — it_flags are read (2824) possibly unflushed and
   a value header derived from them is stored. *)
let store_replace ctx it value =
  let flags = Mem.load ctx ~instr:i_2824 (f_flags it) in
  (* The stored header derives from the flags (value | flags<<8). *)
  let header = Tval.logor value (Tval.shift_left flags 8) in
  Mem.store ctx ~instr:i_store_value (f_value it) header;
  Mem.store ctx ~instr:i_4293 (f_value2 it) value;
  Mem.persist ctx ~instr:i_store_value (f_value it)

(* Append/prepend: bugs 9/10 — as in real memcached, the concatenation
   allocates a NEW item, reads the current value words (2805) — possibly
   unflushed — and writes the combination into the new item (4292/4293),
   which is persisted immediately. *)
let store_concat ctx key it value ~prepend =
  Mem.branch ctx ~instr:b_append;
  let old = Mem.load ctx ~instr:i_2805 (f_value it) in
  let old2 = Mem.load ctx ~instr:i_2805 (f_value2 it) in
  let combined =
    if prepend then Tval.add (Tval.mul value (Tval.of_int 1000)) old else Tval.add old value
  in
  let combined2 = Tval.add old2 value in
  let cls = class_of_value (Tval.v combined) in
  match alloc_or_evict ctx cls 0 with
  | None -> ()
  | Some nit ->
      Mem.store ctx ~instr:i_4292 (f_value nit) combined;
      Mem.store ctx ~instr:i_4293 (f_value2 nit) combined2;
      Mem.store ctx ~instr:i_key_write (f_key nit) (Tval.of_int (key + 1));
      Mem.store ctx ~instr:i_627 (f_clsid nit) (Tval.of_int cls);
      Mem.store ctx ~instr:i_1096 (f_flags nit) (Tval.of_int64 flag_linked);
      Mem.clwb ctx ~instr:i_4292 (f_value nit);
      Mem.sfence ctx ~instr:i_4292;
      lru_link ctx nit;
      Hashtbl.replace (index ctx) key (Tval.to_int nit);
      (* Unlink and free the superseded item. *)
      Mem.store ctx ~instr:i_1096 (f_flags it) Tval.zero;
      item_free ctx (Tval.untainted it)

(* Get: the value is verified against its checksum before use, which
   sanitises the read (the checksum-based crash consistency the default
   whitelist refers to). *)
let get_value ctx key it =
  let v = Mem.load ctx ~instr:i_chk_read (f_value it) in
  let chk = Mem.load ctx ~instr:i_chk_read (f_chk it) in
  if Int64.equal (Tval.v chk) (checksum key (Tval.v v)) then Some (Tval.untainted v)
  else Some v (* checksum mismatch: the raw (possibly inconsistent) value *)

let do_get ctx keys =
  List.iter
    (fun k ->
      match Proto.key_int k with
      | None -> Mem.branch ctx ~instr:b_error
      | Some key -> (
          match find ctx key with
          | Some it -> ignore (get_value ctx key it)
          | None -> Mem.branch ctx ~instr:b_miss))
    keys

let do_store ctx (s : Proto.storage) ~mode =
  match Proto.key_int s.key with
  | None -> Mem.branch ctx ~instr:b_error
  | Some key -> (
      let value = Tval.of_int ((s.flags * 1000) + String.length s.data + (key * 7)) in
      let existing = find ctx key in
      match (mode, existing) with
      | `Set, Some it | `Replace, Some it -> store_replace ctx it value
      | (`Set | `Add), None -> store_new ctx key value
      | `Add, Some _ | `Replace, None -> Mem.branch ctx ~instr:b_miss
      | (`Append | `Prepend), None -> Mem.branch ctx ~instr:b_miss
      | `Append, Some it -> store_concat ctx key it value ~prepend:false
      | `Prepend, Some it -> store_concat ctx key it value ~prepend:true)

let do_delta ctx key delta ~up =
  match Proto.key_int key with
  | None -> Mem.branch ctx ~instr:b_error
  | Some key -> (
      match find ctx key with
      | None -> Mem.branch ctx ~instr:b_miss
      | Some it ->
          let v =
            match get_value ctx key it with Some v -> v | None -> Tval.zero
          in
          let nv = if up then Tval.add v (Tval.of_int delta) else Tval.sub v (Tval.of_int delta) in
          Mem.store ctx ~instr:i_4292 (f_value it) nv;
          Mem.store ctx ~instr:i_chk_write (f_chk it)
            (Tval.of_int64 (checksum key (Tval.v nv)));
          Mem.persist ctx ~instr:i_chk_write (f_chk it))

let do_delete ctx key =
  match Proto.key_int key with
  | None -> Mem.branch ctx ~instr:b_error
  | Some key -> (
      match find ctx key with
      | None -> Mem.branch ctx ~instr:b_miss
      | Some it ->
          Hashtbl.remove (index ctx) key;
          (* Unlink from the LRU: prev/next neighbours rewritten with the
             423-style delayed flush. *)
          let prev = Mem.load ctx ~instr:i_464 (f_prev it) in
          let next = Mem.load ctx ~instr:i_lru_read (f_next it) in
          (if Tval.is_zero prev then
             Mem.store ctx ~instr:i_lru_ends (root_off r_lru_head) next
           else begin
             Mem.store ctx ~instr:i_lru_next (f_next prev) next;
             Mem.persist ctx ~instr:i_lru_next (f_next prev)
           end);
          (if Tval.is_zero next then begin
             Mem.store ctx ~instr:i_lru_ends (root_off r_lru_tail) prev;
             if not (Tval.is_zero prev) then begin
               (* The new tail's slabs_clsid tail-marker, addressed through
                  the possibly non-persisted prev (bug 11). *)
               let cls = Mem.load ctx ~instr:i_lru_read (f_clsid prev) in
               Mem.store ctx ~instr:i_free_clsid (f_clsid prev)
                 (Tval.logor cls (Tval.of_int 256));
               Mem.persist ctx ~instr:i_free_clsid (f_clsid prev)
             end
           end
           else begin
             Mem.store ctx ~instr:i_423 (f_prev next) prev;
             Mem.persist ctx ~instr:i_423 (f_prev next)
           end);
          item_free ctx (Tval.untainted it))

(* cas: compare-and-store against the item's checksum token; a mismatch is
   a miss.  The matching path is the replace path (bug 13's window). *)
let do_cas ctx (s : Proto.storage) token =
  match Proto.key_int s.key with
  | None -> Mem.branch ctx ~instr:b_error
  | Some key -> (
      match find ctx key with
      | None -> Mem.branch ctx ~instr:b_miss
      | Some it ->
          let chk = Mem.load ctx ~instr:i_chk_read (f_chk it) in
          if Int64.rem (Tval.v chk) 1000L = Int64.of_int (token mod 1000) then
            store_replace ctx it (Tval.of_int ((s.flags * 1000) + String.length s.data))
          else Mem.branch ctx ~instr:b_miss)

(* touch: rewrites the exptime bits of it_flags — yet another header-field
   store without a flush, in keeping with memcached-pmem's style. *)
let do_touch ctx key exptime =
  match Proto.key_int key with
  | None -> Mem.branch ctx ~instr:b_error
  | Some key -> (
      match find ctx key with
      | None -> Mem.branch ctx ~instr:b_miss
      | Some it ->
          let flags = Mem.load ctx ~instr:i_2824 (f_flags it) in
          Mem.store ctx ~instr:i_touch (f_flags it)
            (Tval.logor (Tval.logand flags (Tval.of_int 0xff))
               (Tval.of_int (exptime lsl 16))))

let do_flush_all ctx =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) (index ctx) [] in
  List.iter (fun k -> do_delete ctx (Printf.sprintf "k%d" k)) keys

(* stats: read-only walk over the slab classes. *)
let do_stats ctx =
  for c = 0 to nclasses - 1 do
    ignore (Mem.load ctx ~instr:i_lru_read (root_off (r_free c)))
  done

(* The process_command entry point: parse, count the family branch,
   dispatch. *)
let process_command ctx raw =
  match Proto.parse raw with
  | Error _ ->
      Mem.branch ctx ~instr:b_error;
      Proto.F_error
  | Ok cmd -> (
      let fam = Proto.family_of cmd in
      Mem.branch ctx ~instr:(family_site fam);
      (match cmd with
      | Proto.Cmd_get keys | Proto.Cmd_bget keys | Proto.Cmd_gets keys -> do_get ctx keys
      | Proto.Cmd_set s -> do_store ctx s ~mode:`Set
      | Proto.Cmd_add s -> do_store ctx s ~mode:`Add
      | Proto.Cmd_replace s -> do_store ctx s ~mode:`Replace
      | Proto.Cmd_append s -> do_store ctx s ~mode:`Append
      | Proto.Cmd_prepend s -> do_store ctx s ~mode:`Prepend
      | Proto.Cmd_cas { store = s; token } -> do_cas ctx s token
      | Proto.Cmd_touch { key; exptime } -> do_touch ctx key exptime
      | Proto.Cmd_incr { key; delta } -> do_delta ctx key delta ~up:true
      | Proto.Cmd_decr { key; delta } -> do_delta ctx key delta ~up:false
      | Proto.Cmd_delete { key } -> do_delete ctx key
      | Proto.Cmd_flush_all -> do_flush_all ctx
      | Proto.Cmd_stats -> do_stats ctx
      | Proto.Cmd_verbosity _ -> ());
      fam)

let run_op ctx op = ignore (process_command ctx (Pmrace.Seed.render_op op))

(* Recovery: rebuild the DRAM index and the LRU from the persistent slabs
   — rewriting every linked item's prev/next (the index rebuild that turns
   the many link inconsistencies into validated false positives). *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  let prev_linked = ref Tval.zero in
  let first = ref Tval.zero in
  for slot = 0 to (nclasses * items_per_class) - 1 do
    let it = Tval.of_int (Pmdk.Layout.heap_base + (slot * item_words)) in
    let flags = Mem.load ctx ~instr:i_recover (f_flags it) in
    let key = Mem.load ctx ~instr:i_recover (f_key it) in
    if Int64.equal (Tval.v flags) flag_linked && not (Tval.is_zero key) then begin
      Hashtbl.replace (index ctx) (Tval.to_int key - 1) (Tval.to_int it);
      (* The rebuild re-marks the item linked (overwriting it_flags) and
         relinks the LRU chain front to back, overwriting prev/next. *)
      Mem.store ctx ~instr:i_recover (f_flags it) (Tval.of_int64 flag_linked);
      Mem.persist ctx ~instr:i_recover (f_flags it);
      Mem.store ctx ~instr:i_recover (f_prev it) !prev_linked;
      Mem.store ctx ~instr:i_recover (f_next it) Tval.zero;
      if not (Tval.is_zero !prev_linked) then begin
        Mem.store ctx ~instr:i_recover (f_next !prev_linked) it;
        Mem.persist ctx ~instr:i_recover (f_next !prev_linked)
      end
      else first := it;
      Mem.persist ctx ~instr:i_recover (f_prev it);
      prev_linked := it
    end
  done;
  Mem.store ctx ~instr:i_recover (root_off r_lru_head) !first;
  Mem.store ctx ~instr:i_recover (root_off r_lru_tail) !prev_linked;
  Mem.persist ctx ~instr:i_recover (root_off r_lru_head)

let lookup_after_recovery (env : Env.t) key =
  let ctx = Env.ctx env ~tid:(-2) in
  match find ctx key with
  | Some it -> Some (Tval.to_int (Mem.load ctx ~instr:i_chk_read (f_value it)))
  | None -> None

let known_bug id ~nu ~w ~r ~d ~c : Pmrace.Target.known_bug =
  {
    kb_id = id;
    kb_type = `Inter;
    kb_new = nu;
    kb_write_site = Some w;
    kb_read_site = Some r;
    kb_description = d;
    kb_consequence = c;
  }

let target : Pmrace.Target.t =
  {
    name = "memcached-pmem";
    version = "8f121f6";
    scope = "Key-value store";
    concurrency = "Lock-based";
    pool_words = 2048;
    expensive_init = false; (* libpmem mapping: checkpoints bring nothing *)
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported =
          [
            Pmrace.Seed.KPut;
            KGet;
            KUpdate;
            KDelete;
            KIncr;
            KDecr;
            KAppend;
            KPrepend;
            KScan;
            KCas;
            KTouch;
            KStats;
          ];
        key_range = 16;
        value_range = 1000;
        threads = 4;
        ops_per_thread = 8;
      };
    known_bugs =
      [
        known_bug 9 ~nu:true ~w:"memcached.c:4292" ~r:"memcached.c:2805"
          ~d:"read unflushed value and write value" ~c:"inconsistent data";
        known_bug 10 ~nu:true ~w:"memcached.c:4293" ~r:"memcached.c:2805"
          ~d:"read unflushed value and write value" ~c:"inconsistent data";
        known_bug 11 ~nu:false ~w:"items.c:423" ~r:"items.c:464"
          ~d:"read unflushed \"prev\" and write \"slabs_clsid\"" ~c:"inconsistent index";
        known_bug 12 ~nu:false ~w:"slabs.c:549" ~r:"slabs.c:412"
          ~d:"read unflushed \"next\" and write \"it_flags\" or value" ~c:"inconsistent index";
        known_bug 13 ~nu:false ~w:"items.c:1096" ~r:"memcached.c:2824"
          ~d:"read unflushed \"it_flags\" and write value" ~c:"inconsistent data";
        known_bug 14 ~nu:false ~w:"items.c:627" ~r:"items.c:623"
          ~d:"read unflushed \"slabs_clsid\" and write \"slabs_clsid\"" ~c:"inconsistent index";
      ];
    whitelist_sites = "memcached.c:chk_read" :: Pmdk.Tx.default_whitelist;
  }

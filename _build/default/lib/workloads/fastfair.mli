(** FAST-FAIR B+-tree (commit 0f047e8): failure-atomic shifting inserts,
    sibling-pointer splits (bug 8, [btree.h:560] -> [btree.h:876]),
    lock-free searches, and lazy recovery that tolerates most transient
    inconsistencies. *)

val insert : Runtime.Env.ctx -> int -> int -> unit
val search : Runtime.Env.ctx -> int -> Runtime.Tval.t option
val scan : Runtime.Env.ctx -> int -> int -> int list
(** [scan ctx key count] returns values of keys strictly greater than
    [key], walking sibling pointers. *)

val delete : Runtime.Env.ctx -> int -> unit

val split : Runtime.Env.ctx -> Runtime.Tval.t -> int
(** Split a full leaf; publishes the sibling pointer without a flush —
    bug 8's window. *)

val lookup_after_recovery : Runtime.Env.t -> int -> int option
val target : Pmrace.Target.t

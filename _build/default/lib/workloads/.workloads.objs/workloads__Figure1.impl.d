lib/workloads/figure1.ml: Pmdk Pmrace Runtime

lib/workloads/cceh.ml: Fun Hashtbl List Option Pmdk Pmrace Runtime

lib/workloads/pclht.ml: Pmdk Pmrace Runtime

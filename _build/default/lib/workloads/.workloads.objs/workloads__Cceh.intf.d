lib/workloads/cceh.mli: Pmrace Runtime

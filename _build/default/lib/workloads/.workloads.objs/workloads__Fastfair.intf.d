lib/workloads/fastfair.mli: Pmrace Runtime

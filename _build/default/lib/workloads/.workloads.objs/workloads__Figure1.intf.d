lib/workloads/figure1.mli: Pmrace Runtime

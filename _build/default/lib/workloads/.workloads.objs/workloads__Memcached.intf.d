lib/workloads/memcached.mli: Memcached_proto Pmrace Runtime

lib/workloads/fastfair.ml: List Pmdk Pmem Pmrace Runtime

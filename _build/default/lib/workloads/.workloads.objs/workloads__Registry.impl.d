lib/workloads/registry.ml: Cceh Clevel Fastfair Figure1 List Memcached Pclht Pmrace String

lib/workloads/clevel.ml: Pmdk Pmrace Runtime

lib/workloads/registry.mli: Pmrace

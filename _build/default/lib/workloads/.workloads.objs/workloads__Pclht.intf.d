lib/workloads/pclht.mli: Pmrace Runtime

lib/workloads/memcached_proto.ml: List String

lib/workloads/memcached_proto.mli:

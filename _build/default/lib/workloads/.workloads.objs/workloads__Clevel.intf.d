lib/workloads/clevel.mli: Pmrace Runtime

lib/workloads/memcached.ml: Hashtbl Int64 List Memcached_proto Pmdk Pmem Pmrace Printf Runtime String

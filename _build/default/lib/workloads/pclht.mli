(** P-CLHT (RECIPE, commit 70bf21c): a lock-based persistent chained hash
    table carrying the paper's bugs 1-5 at identically named instruction
    sites ([clht_lb_res.c:785] etc.).  See the implementation header for
    the per-bug mechanics. *)

val put : Runtime.Env.ctx -> int -> Runtime.Tval.t -> unit
val get : Runtime.Env.ctx -> int -> Runtime.Tval.t option
val update : Runtime.Env.ctx -> int -> Runtime.Tval.t -> unit
(** Carries bug 5: the early-return path leaks the bucket lock. *)

val delete : Runtime.Env.ctx -> int -> unit

val resize : Runtime.Env.ctx -> unit
(** Table doubling with migration; carries bugs 1, 3 and 4. *)

val lookup_after_recovery : Runtime.Env.t -> int -> int option
(** Post-crash lookup used to demonstrate bug 1's data loss. *)

val target : Pmrace.Target.t

(** The memcached text protocol parser (process_command's front end), used
    by the memcached-pmem driver and the Table 4 mutator comparison. *)

type storage = { key : string; flags : int; exptime : int; bytes : int; data : string }

type cmd =
  | Cmd_get of string list
  | Cmd_bget of string list
  | Cmd_set of storage
  | Cmd_add of storage
  | Cmd_replace of storage
  | Cmd_append of storage
  | Cmd_prepend of storage
  | Cmd_incr of { key : string; delta : int }
  | Cmd_decr of { key : string; delta : int }
  | Cmd_delete of { key : string }
  | Cmd_gets of string list
  | Cmd_cas of { store : storage; token : int }
  | Cmd_touch of { key : string; exptime : int }
  | Cmd_flush_all
  | Cmd_stats
  | Cmd_verbosity of int

type family = F_get | F_update | F_incr | F_decr | F_delete | F_other | F_error
(** The command families of Table 4. *)

val family_of : cmd -> family
val family_name : family -> string

val parse : string -> (cmd, string) result
(** Total: any byte string yields a command or a protocol error. *)

val key_int : string -> int option
(** Integer keys of the form ["k<n>"], as the operation renderer emits. *)

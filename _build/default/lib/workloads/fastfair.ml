(* FAST-FAIR B+-Tree (commit 0f047e8): failure-atomic shift (FAST) inserts
   inside leaves and failure-atomic in-place rebalancing (FAIR) via sibling
   pointers, with lock-free searches — carrying the paper's bug 8.

   We model the leaf level (where all of FAST-FAIR's PM writes happen): a
   sorted chain of leaf nodes connected by sibling pointers, a persistent
   head pointer, and per-node latches that writers take and readers ignore.

   Node layout (32 words, 4 cache lines; header fields and records sit in
   separate lines, as in the original, so flushing a record line does not
   incidentally persist the sibling pointer):
     line 0: [0] latch (reinitialised on recovery)  [1] nkeys
     line 1: [8] sibling_off  [9] high_key
     lines 2-3: [16..31] eight (key, value) pairs

   Seeded bug 8 (Inter) btree.h:560 -> btree.h:876: a split stores the new
   sibling pointer without flushing it; a concurrent insert chases that
   non-persisted pointer and writes its item into the new node -> the item
   is unreachable after a crash (data loss).

   FAST's shifting writes entries that lock-free readers (and concurrent
   shifts) observe while dirty — the source of FAST-FAIR's many
   inconsistency candidates; most are tolerated by the lazy recovery
   (duplicate-entry detection on future reads), which is why the paper
   reports only one unique bug but dozens of reported inconsistencies.

   The high_key mechanism tolerates transient mismatches by construction
   (readers retry through siblings), so reads of a dirty high_key are
   whitelisted. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let ( +$ ) = Tval.add

let node_words = 32
let max_pairs = 8
let infinite_key = 1 lsl 30

let r_head = 0
let root_off field = Tval.of_int (Pmdk.Layout.root_base + field)

(* Sites. *)
let i_560 = Instr.site "btree.h:560" (* store sibling_off (unflushed) *)
let i_562 = Instr.site "btree.h:562" (* flush sibling_off *)
let i_876 = Instr.site "btree.h:876" (* read sibling_off in traversal *)
let i_high_key_w = Instr.site "btree.h:high_key"
let i_high_key_r = Instr.site "btree.h:584" (* read high_key in traversal *)
let i_latch = Instr.site "btree.h:latch"
let i_unlatch = Instr.site "btree.h:unlatch"
let i_nkeys_w = Instr.site "btree.h:nkeys_w"
let i_nkeys_r = Instr.site "btree.h:nkeys_r"
let i_shift_r = Instr.site "btree.h:shift_read"
let i_shift_w = Instr.site "btree.h:shift_write"
let i_insert_key = Instr.site "btree.h:insert_key"
let i_insert_val = Instr.site "btree.h:insert_val"
let i_search_r = Instr.site "btree.h:search_read"
let i_scan_r = Instr.site "btree.h:scan_read"
let i_split_r = Instr.site "btree.h:split_read"
let i_split_w = Instr.site "btree.h:split_write"
let i_del_r = Instr.site "btree.h:delete_read"
let i_del_w = Instr.site "btree.h:delete_write"
let i_node_init = Instr.site "btree.h:node_init"
let i_recover = Instr.site "btree.h:recover"

let b_insert = Instr.site "fastfair:insert"
let b_search = Instr.site "fastfair:search"
let b_scan = Instr.site "fastfair:scan"
let b_delete = Instr.site "fastfair:delete"
let b_split = Instr.site "fastfair:split"
let b_sibling_chase = Instr.site "fastfair:sibling_chase"

let key_word k = Tval.of_int (k + 1)

let latch_of n = n
let nkeys_of n = n +$ Tval.of_int 1
let sibling_of n = n +$ Tval.of_int 8
let high_key_of n = n +$ Tval.of_int 9
let pair_key n i = n +$ Tval.of_int (16 + (2 * i))
let pair_val n i = n +$ Tval.of_int (17 + (2 * i))

let alloc_node ctx ~high_key =
  let n = Pmdk.Heap.alloc ctx ~words:node_words in
  Mem.movnt ctx ~instr:i_node_init (Tval.of_int (n + 9)) (Tval.of_int high_key);
  Mem.sfence ctx ~instr:i_node_init;
  n

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx;
  let head = alloc_node ctx ~high_key:infinite_key in
  Mem.movnt ctx ~instr:i_node_init (root_off r_head) (Tval.of_int head);
  Mem.sfence ctx ~instr:i_node_init

(* FAST-FAIR has no persistent synchronization variables: latches are
   reinitialised by recovery (annotations = 0 in Table 3). *)
let annotate (_ : Env.t) = ()

let latch ctx n = Mem.spin_lock ctx ~instr:i_latch (latch_of n)
let unlatch ctx n = Mem.unlock ctx ~instr:i_unlatch (latch_of n)

(* Traversal: chase sibling pointers while the key exceeds the node's high
   key.  Reads of a freshly-split (dirty) sibling pointer are bug 8's
   candidate (876). *)
let find_leaf ctx key =
  let rec chase node depth =
    if depth > 64 then Tval.untainted node
    else begin
      let hk = Mem.load ctx ~instr:i_high_key_r (high_key_of node) in
      if key >= Tval.to_int hk then begin
        Mem.branch ctx ~instr:b_sibling_chase;
        let sib = Mem.load ctx ~instr:i_876 (sibling_of node) in
        if Tval.is_zero sib then node else chase sib (depth + 1)
      end
      else node
    end
  in
  chase (Mem.load ctx ~instr:i_876 (root_off r_head)) 0

let read_nkeys ctx n = Tval.to_int (Tval.untainted (Mem.load ctx ~instr:i_nkeys_r (nkeys_of n)))

(* FAST: shift pairs right from [pos], one line at a time, to make room.
   The shifting reads entries that may be dirty (another thread's insert
   in a neighbouring slot of the same node observed mid-flight). *)
let shift_right ctx n ~from ~nkeys =
  for i = nkeys - 1 downto from do
    let k = Mem.load ctx ~instr:i_shift_r (pair_key n i) in
    let v = Mem.load ctx ~instr:i_shift_r (pair_val n i) in
    Mem.store ctx ~instr:i_shift_w (pair_key n (i + 1)) k;
    Mem.store ctx ~instr:i_shift_w (pair_val n (i + 1)) v;
    (* FAST flushes at cache-line boundaries during the shift. *)
    if (16 + (2 * i)) mod Pmem.Cacheline.words_per_line = 0 then
      Mem.clwb ctx ~instr:i_shift_w (pair_key n (i + 1))
  done;
  Mem.sfence ctx ~instr:i_shift_w

let find_pos ctx n ~nkeys key =
  let rec go i =
    if i >= nkeys then i
    else
      let k = Mem.load ctx ~instr:i_search_r (pair_key n i) in
      if Tval.to_int k >= key + 1 then i else go (i + 1)
  in
  go 0

(* Split: move the upper half into a fresh sibling, then publish the
   sibling pointer WITHOUT flushing (560) — the bug 8 window — and flush
   only later (562). *)
let split ctx n =
  Mem.branch ctx ~instr:b_split;
  let nkeys = read_nkeys ctx n in
  let half = nkeys / 2 in
  let old_high = Mem.load ctx ~instr:i_high_key_r (high_key_of n) in
  let sib = alloc_node ctx ~high_key:(Tval.to_int (Tval.untainted old_high)) in
  let split_key = Mem.load ctx ~instr:i_split_r (pair_key n half) in
  for i = half to nkeys - 1 do
    let k = Mem.load ctx ~instr:i_split_r (pair_key n i) in
    let v = Mem.load ctx ~instr:i_split_r (pair_val n i) in
    Mem.store ctx ~instr:i_split_w (pair_key (Tval.of_int sib) (i - half)) (Tval.untainted k);
    Mem.store ctx ~instr:i_split_w (pair_val (Tval.of_int sib) (i - half)) (Tval.untainted v)
  done;
  Mem.store ctx ~instr:i_split_w
    (nkeys_of (Tval.of_int sib))
    (Tval.of_int (nkeys - half));
  Mem.persist_range ctx ~instr:i_split_w (Tval.of_int sib) ~words:node_words;
  (* Old node shrinks; its high key becomes the split key. *)
  Mem.store ctx ~instr:i_nkeys_w (nkeys_of n) (Tval.of_int half);
  Mem.persist ctx ~instr:i_nkeys_w (nkeys_of n);
  (* The high key shrinks first (its flush also covers the line that holds
     the sibling pointer, so it must come before the 560 store for the
     window to exist).  Slots store key+1; high keys store plain keys. *)
  Mem.store ctx ~instr:i_high_key_w (high_key_of n)
    (Tval.sub (Tval.untainted split_key) Tval.one);
  Mem.clwb ctx ~instr:i_high_key_w (high_key_of n);
  Mem.sfence ctx ~instr:i_high_key_w;
  (* 560: the sibling pointer, visible but NOT yet flushed. *)
  Mem.store ctx ~instr:i_560 (sibling_of n) (Tval.of_int sib);
  (* Root/parent bookkeeping keeps the window open. *)
  for i = 0 to 3 do
    ignore (Mem.load ctx ~instr:i_split_r (pair_key (Tval.of_int sib) i))
  done;
  (* 562: the flush closing bug 8's window. *)
  Mem.clwb ctx ~instr:i_562 (sibling_of n);
  Mem.sfence ctx ~instr:i_562;
  sib

let rec insert ctx key value =
  Mem.branch ctx ~instr:b_insert;
  let leaf = find_leaf ctx key in
  latch ctx leaf;
  let nkeys = read_nkeys ctx leaf in
  if nkeys >= max_pairs then begin
    let _sib = split ctx leaf in
    unlatch ctx leaf;
    insert ctx key value
  end
  else begin
    let pos = find_pos ctx leaf ~nkeys key in
    shift_right ctx leaf ~from:pos ~nkeys;
    (* The insert writes go through the (possibly tainted) leaf address —
       bug 8's durable side effect when the leaf was reached via a dirty
       sibling pointer. *)
    Mem.store ctx ~instr:i_insert_key (pair_key leaf pos) (key_word key);
    Mem.store ctx ~instr:i_insert_val (pair_val leaf pos) (Tval.of_int value);
    Mem.clwb ctx ~instr:i_insert_key (pair_key leaf pos);
    Mem.sfence ctx ~instr:i_insert_key;
    Mem.store ctx ~instr:i_nkeys_w (nkeys_of leaf) (Tval.of_int (nkeys + 1));
    Mem.persist ctx ~instr:i_nkeys_w (nkeys_of leaf);
    unlatch ctx leaf
  end

let search ctx key =
  Mem.branch ctx ~instr:b_search;
  let leaf = find_leaf ctx key in
  let nkeys = min max_pairs (read_nkeys ctx leaf) in
  let rec go i =
    if i >= nkeys then None
    else
      let k = Mem.load ctx ~instr:i_search_r (pair_key leaf i) in
      if Tval.equal_v k (key_word key) then
        Some (Mem.load ctx ~instr:i_search_r (pair_val leaf i))
      else go (i + 1)
  in
  go 0

let scan ctx key count =
  Mem.branch ctx ~instr:b_scan;
  let acc = ref [] in
  let rec walk node remaining =
    if remaining > 0 && not (Tval.is_zero node) then begin
      let nkeys = min max_pairs (read_nkeys ctx node) in
      for i = 0 to nkeys - 1 do
        let k = Mem.load ctx ~instr:i_scan_r (pair_key node i) in
        (* Slots store key+1; collect strictly-greater keys. *)
        if (not (Tval.is_zero k)) && Tval.to_int k - 1 > key then
          acc := Tval.to_int (Mem.load ctx ~instr:i_scan_r (pair_val node i)) :: !acc
      done;
      let sib = Mem.load ctx ~instr:i_876 (sibling_of node) in
      walk (Tval.untainted sib) (remaining - 1)
    end
  in
  walk (Tval.untainted (find_leaf ctx key)) ((count / max_pairs) + 1);
  List.rev !acc

let delete ctx key =
  Mem.branch ctx ~instr:b_delete;
  let leaf = find_leaf ctx key in
  latch ctx leaf;
  let nkeys = min max_pairs (read_nkeys ctx leaf) in
  let rec find i = if i >= nkeys then None
    else
      let k = Mem.load ctx ~instr:i_del_r (pair_key leaf i) in
      if Tval.equal_v k (key_word key) then Some i else find (i + 1)
  in
  (match find 0 with
  | Some pos ->
      (* FAST shift-left, line-flushed like the insert path. *)
      for i = pos to nkeys - 2 do
        let k = Mem.load ctx ~instr:i_del_r (pair_key leaf (i + 1)) in
        let v = Mem.load ctx ~instr:i_del_r (pair_val leaf (i + 1)) in
        Mem.store ctx ~instr:i_del_w (pair_key leaf i) k;
        Mem.store ctx ~instr:i_del_w (pair_val leaf i) v
      done;
      Mem.store ctx ~instr:i_del_w (pair_key leaf (nkeys - 1)) Tval.zero;
      Mem.clwb ctx ~instr:i_del_w (pair_key leaf pos);
      Mem.sfence ctx ~instr:i_del_w;
      Mem.store ctx ~instr:i_nkeys_w (nkeys_of leaf) (Tval.of_int (nkeys - 1));
      Mem.persist ctx ~instr:i_nkeys_w (nkeys_of leaf)
  | None -> ());
  unlatch ctx leaf

let run_op ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { key; value } | Update { key; value } | Append { key; value } | Prepend { key; value }
    ->
      insert ctx key value
  | Get { key } -> ignore (search ctx key)
  | Scan { key; count } -> ignore (scan ctx key count)
  | Delete { key } -> delete ctx key
  | Incr { key; delta } | Decr { key; delta } -> insert ctx key delta
  | Cas { key; value; _ } -> insert ctx key value
  | Touch { key; _ } -> ignore (search ctx key)
  | Flush_all | Stats -> ()

(* Lazy recovery: latches are reinitialised and each node's nkeys is
   recomputed from its entries (overwriting it — the few validated FPs);
   everything else is tolerated lazily on future accesses, so most reported
   inconsistencies remain (as in the paper, where FAST-FAIR is the one
   system whose tolerated inconsistencies post-failure validation cannot
   prune). *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  let rec walk node depth =
    if (not (Tval.is_zero node)) && depth < 256 then begin
      Mem.store ctx ~instr:i_recover (latch_of node) Tval.zero;
      let rec count i =
        if i >= max_pairs then i
        else
          let k = Mem.load ctx ~instr:i_recover (pair_key node i) in
          if Tval.is_zero k then i else count (i + 1)
      in
      Mem.store ctx ~instr:i_recover (nkeys_of node) (Tval.of_int (count 0));
      Mem.persist ctx ~instr:i_recover (nkeys_of node);
      let sib = Mem.load ctx ~instr:i_recover (sibling_of node) in
      walk (Tval.untainted sib) (depth + 1)
    end
  in
  walk (Tval.untainted (Mem.load ctx ~instr:i_recover (root_off r_head))) 0

(* Post-recovery lookup for the data-loss demonstration of bug 8. *)
let lookup_after_recovery (env : Env.t) key =
  let ctx = Env.ctx env ~tid:(-2) in
  match search ctx key with Some v -> Some (Tval.to_int v) | None -> None

let target : Pmrace.Target.t =
  {
    name = "fast-fair";
    version = "0f047e8";
    scope = "B+-Tree";
    concurrency = "Lock-based";
    pool_words = 8192;
    expensive_init = true;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; KGet; KUpdate; KDelete; KScan ];
        key_range = 48;
        value_range = 1000;
        threads = 4;
        ops_per_thread = 8;
      };
    known_bugs =
      [
        {
          kb_id = 8;
          kb_type = `Inter;
          kb_new = true;
          kb_write_site = Some "btree.h:560";
          kb_read_site = Some "btree.h:876";
          kb_description = "read unflushed pointer and insert data";
          kb_consequence = "data loss";
        };
      ];
    whitelist_sites = "btree.h:high_key" :: Pmdk.Tx.default_whitelist;
  }

(* clevel hashing (commit cae716f): a lock-free PM hash index built on
   PMDK transactions, the one tested system in which PMRace found NO bugs —
   all detected inconsistencies are benign (Table 3: 6 candidates, 2
   inter-thread inconsistencies, both filtered by the PMDK-aware
   whitelist).

   Layout:
     root [0] cons_off : the clevel object, built inside a transaction
     clevel object : [0] meta_off
     meta object   : [0] first_level_off  [1] level_size
     level         : [size] (k, v) slot pairs; slots published with CAS

   The constructor mirrors Figure 7: inside a PMDK transaction it
   allocates the meta object (storing the pointer unflushed, at the
   whitelisted tx-allocation site), reads that non-persisted pointer back,
   and allocates the first level through it — a durable side effect based
   on non-persisted data that the enclosing transaction makes benign.

   Concurrent puts publish (key, value) with value-then-key order, each
   persisted before the key CAS, so there is no harmful window; b2t
   (bottom-to-top) searches may still observe a dirty value briefly —
   inconsistency candidates without durable side effects. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let ( +$ ) = Tval.add

let level_slots = 16
let r_cons = 0
let root_off field = Tval.of_int (Pmdk.Layout.root_base + field)

let i_160 = Instr.site "clevel_hash_ycsb.cpp:160" (* tx around construction *)
let i_300 = Instr.site "clevel_hash.hpp:300" (* read non-persisted meta *)
let i_meta = Instr.site "clevel_hash.hpp:meta"
let i_slot_k = Instr.site "clevel_hash.hpp:slot_key"
let i_slot_v = Instr.site "clevel_hash.hpp:slot_val"
let i_b2t = Instr.site "clevel_hash.hpp:b2t_read"
let i_recover = Instr.site "clevel_hash.hpp:recover"

let b_put = Instr.site "clevel:put"
let b_get = Instr.site "clevel:get"
let b_update = Instr.site "clevel:update"

let key_word k = Tval.of_int (k + 1)

let r_guard = 16 (* construction guard, on its own cache line *)

(* Pool initialisation only maps and formats the pool; the index itself is
   constructed lazily by the first operation, as in clevel_hash_ycsb —
   that is what puts the Figure 7 construction inside the fuzzed
   execution. *)
let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx

(* The Figure 7 constructor: transactional allocation, non-persisted read,
   dependent allocation — all inside one transaction. *)
let construct ctx =
  Mem.branch ctx ~instr:i_160;
  let tx = Pmdk.Tx.begin_ ctx in
  (* root->cons = make_persistent<clevel_hash>() *)
  let cons = Pmdk.Tx.alloc_into ctx tx ~dst:(root_off r_cons) ~words:8 in
  (* meta = make_persistent<level_meta>() — the pointer store is
     unflushed inside the transaction. *)
  let _meta = Pmdk.Tx.alloc_into ctx tx ~dst:(Tval.of_int cons) ~words:8 in
  (* m = convert_to_ptr(meta, ...): reads the non-persisted meta pointer
     (the benign candidate of Figure 7). *)
  let m = Mem.load ctx ~instr:i_300 (Tval.of_int cons) in
  (* m->first_level = make_persistent<level_bucket>(): a durable side
     effect based on the non-persisted pointer, protected by the
     transaction. *)
  let level = Pmdk.Tx.alloc_into ctx tx ~dst:m ~words:(2 * level_slots) in
  Pmdk.Tx.store ctx tx (m +$ Tval.one) (Tval.of_int level_slots);
  ignore level;
  Pmdk.Tx.commit ctx tx

(* First operation wins the construction race; the others poll the cons
   pointer, which the constructor's transaction has stored but not yet
   flushed — the whitelisted Inter-thread Inconsistency of Table 3. *)
let ensure_constructed ctx =
  let cons = Mem.load ctx ~instr:i_meta (root_off r_cons) in
  if Tval.is_zero cons then
    if Mem.cas ctx ~instr:i_160 (root_off r_guard) ~expect:Tval.zero ~value:Tval.one then
      construct ctx
    else begin
      let rec wait n =
        if n > 100_000 then raise (Mem.Stuck "clevel_hash.hpp:construct_wait")
        else if Tval.is_zero (Mem.load ctx ~instr:i_meta (root_off r_cons)) then wait (n + 1)
      in
      wait 0
    end

let annotate (_ : Env.t) = () (* no persistent synchronization variables *)

(* Pointer chains keep their taint: an operation that raced past the
   constructor works through the still-unflushed cons pointer. *)
let meta ctx =
  let cons = Mem.load ctx ~instr:i_meta (root_off r_cons) in
  Mem.load ctx ~instr:i_300 cons

let first_level ctx =
  let m = meta ctx in
  (Mem.load ctx ~instr:i_meta m, m)

let slot_key lvl i = lvl +$ Tval.of_int (2 * i)
let slot_val lvl i = lvl +$ Tval.of_int ((2 * i) + 1)

(* Lock-free put: write and persist the value first, then CAS-publish the
   key non-temporally — clevel's crash-consistent publication order. *)
let put ctx key value =
  Mem.branch ctx ~instr:b_put;
  let lvl, _ = first_level ctx in
  let idx = key mod level_slots in
  let rec probe i tries =
    if tries >= level_slots then ()
    else
      let k = Mem.load ctx ~instr:i_b2t (slot_key lvl i) in
      if Tval.equal_v k (key_word key) then begin
        Mem.store ctx ~instr:i_slot_v (slot_val lvl i) value;
        Mem.persist ctx ~instr:i_slot_v (slot_val lvl i)
      end
      else if Tval.is_zero k then begin
        Mem.store ctx ~instr:i_slot_v (slot_val lvl i) value;
        Mem.persist ctx ~instr:i_slot_v (slot_val lvl i);
        if
          not
            (Mem.cas ~nt:true ctx ~instr:i_slot_k (slot_key lvl i) ~expect:Tval.zero
               ~value:(key_word key))
        then probe ((i + 1) mod level_slots) (tries + 1)
      end
      else probe ((i + 1) mod level_slots) (tries + 1)
  in
  probe idx 0

let get ctx key =
  Mem.branch ctx ~instr:b_get;
  let lvl, _ = first_level ctx in
  let idx = key mod level_slots in
  let rec probe i tries =
    if tries >= level_slots then None
    else
      let k = Mem.load ctx ~instr:i_b2t (slot_key lvl i) in
      if Tval.equal_v k (key_word key) then Some (Mem.load ctx ~instr:i_b2t (slot_val lvl i))
      else if Tval.is_zero k then None
      else probe ((i + 1) mod level_slots) (tries + 1)
  in
  probe idx 0

let run_op ctx (op : Pmrace.Seed.op) =
  ensure_constructed ctx;
  match op with
  | Put { key; value } | Append { key; value } | Prepend { key; value } ->
      put ctx key (Tval.of_int value)
  | Update { key; value } ->
      Mem.branch ctx ~instr:b_update;
      put ctx key (Tval.of_int value)
  | Get { key } | Scan { key; _ } -> ignore (get ctx key)
  | Delete { key } -> put ctx key Tval.zero
  | Incr { key; delta } | Decr { key; delta } -> put ctx key (Tval.of_int delta)
  | Cas { key; value; _ } -> put ctx key (Tval.of_int value)
  | Touch { key; _ } -> ignore (get ctx key)
  | Flush_all | Stats -> ()

(* Recovery: replay/abort PMDK transactions — this reverts uncommitted
   constructor state, fixing the Figure 7 inconsistency. *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  Mem.branch ctx ~instr:i_recover;
  Pmdk.Tx.recover ctx

let target : Pmrace.Target.t =
  {
    name = "clevel";
    version = "cae716f";
    scope = "PM-optimized hashing";
    concurrency = "Lock-free";
    pool_words = 2048;
    expensive_init = true;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; KGet; KUpdate ];
        key_range = 24;
        value_range = 1000;
        threads = 4;
        ops_per_thread = 8;
      };
    known_bugs = []; (* PMRace found no bugs in clevel hashing *)
    whitelist_sites = Pmdk.Tx.default_whitelist;
  }

(** The tested concurrent PM systems (paper Table 1) and lookup helpers. *)

val all : Pmrace.Target.t list
(** The five systems of Table 1, in the paper's order. *)

val with_examples : Pmrace.Target.t list
(** [all] plus the Figure 1 running example. *)

val find : string -> Pmrace.Target.t option
val names : unit -> string list

val table1 : unit -> (string * string * string * string) list
(** (system, version, scope, concurrency) rows. *)

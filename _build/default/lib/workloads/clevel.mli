(** clevel hashing (commit cae716f): a lock-free PM hash index built on
    PMDK transactions — the tested system with no bugs; its
    inconsistencies (the Figure 7 constructor pattern) are benign and
    filtered by the PMDK-aware whitelist. *)

val ensure_constructed : Runtime.Env.ctx -> unit
(** Lazy index construction inside a PMDK transaction (Figure 7); racing
    threads poll the not-yet-flushed root pointer — the whitelisted
    inter-thread inconsistency of Table 3. *)

val put : Runtime.Env.ctx -> int -> Runtime.Tval.t -> unit
(** Lock-free: value persisted first, key CAS-published non-temporally. *)

val get : Runtime.Env.ctx -> int -> Runtime.Tval.t option
val target : Pmrace.Target.t

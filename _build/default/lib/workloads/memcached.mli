(** memcached-pmem (Lenovo, commit 8f121f6): persistent slabs and LRU
    links with delayed flushes (bugs 9-14), a DRAM hash index rebuilt from
    the slabs after a crash, and checksummed value data.  Driven through
    the memcached text protocol. *)

val process_command : Runtime.Env.ctx -> string -> Memcached_proto.family
(** Parse and execute one protocol command; returns the command family
    (the Table 4 counter). *)

val lookup_after_recovery : Runtime.Env.t -> int -> int option
(** Look a key up through this environment's (possibly rebuilt) index. *)

val target : Pmrace.Target.t

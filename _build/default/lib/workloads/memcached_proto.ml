(* The memcached text protocol parser (process_command).

   Used by the memcached-pmem driver and by the Table 4 mutator
   comparison: PMRace's operation mutator emits only grammatical commands,
   whereas AFL++-style byte mutation mostly produces parse errors and
   never reaches the storage code behind the parser. *)

type storage = { key : string; flags : int; exptime : int; bytes : int; data : string }

type cmd =
  | Cmd_get of string list
  | Cmd_bget of string list
  | Cmd_set of storage
  | Cmd_add of storage
  | Cmd_replace of storage
  | Cmd_append of storage
  | Cmd_prepend of storage
  | Cmd_incr of { key : string; delta : int }
  | Cmd_decr of { key : string; delta : int }
  | Cmd_delete of { key : string }
  | Cmd_gets of string list
  | Cmd_cas of { store : storage; token : int }
  | Cmd_touch of { key : string; exptime : int }
  | Cmd_flush_all
  | Cmd_stats
  | Cmd_verbosity of int

type family = F_get | F_update | F_incr | F_decr | F_delete | F_other | F_error

let family_of = function
  | Cmd_get _ | Cmd_bget _ | Cmd_gets _ -> F_get
  | Cmd_set _ | Cmd_add _ | Cmd_replace _ | Cmd_append _ | Cmd_prepend _ | Cmd_cas _
  | Cmd_touch _ -> F_update
  | Cmd_incr _ -> F_incr
  | Cmd_decr _ -> F_decr
  | Cmd_delete _ -> F_delete
  | Cmd_flush_all | Cmd_stats | Cmd_verbosity _ -> F_other

let family_name = function
  | F_get -> "Get*"
  | F_update -> "Update*"
  | F_incr -> "incr"
  | F_decr -> "decr"
  | F_delete -> "delete"
  | F_other -> "other"
  | F_error -> "Error"

let valid_key k =
  String.length k > 0
  && String.length k <= 250
  && String.for_all (fun c -> c > ' ' && c <> '\127') k

let int_arg s = match int_of_string_opt s with Some n when n >= 0 -> Some n | Some _ | None -> None

let split_line s =
  String.split_on_char ' ' s |> List.filter (fun t -> not (String.equal t ""))

(* Split raw input into CRLF-terminated lines; a missing terminator is a
   protocol error. *)
let lines_of raw =
  let rec go acc s =
    match String.index_opt s '\r' with
    | Some i when i + 1 < String.length s && s.[i + 1] = '\n' ->
        let line = String.sub s 0 i in
        let rest = String.sub s (i + 2) (String.length s - i - 2) in
        if String.equal rest "" then Ok (List.rev (line :: acc)) else go (line :: acc) rest
    | Some _ | None -> if String.equal s "" then Ok (List.rev acc) else Error "missing CRLF"
  in
  go [] raw

let parse_storage ~mk args data_lines =
  match (args, data_lines) with
  | [ key; flags; exptime; bytes ], [ data ] -> (
      if not (valid_key key) then Error "CLIENT_ERROR bad key"
      else
        match (int_arg flags, int_arg exptime, int_arg bytes) with
        | Some flags, Some exptime, Some bytes ->
            if String.length data <> bytes then Error "CLIENT_ERROR bad data chunk"
            else Ok (mk { key; flags; exptime; bytes; data })
        | _ -> Error "CLIENT_ERROR bad command line format")
  | _ -> Error "ERROR"

let parse raw =
  match lines_of raw with
  | Error e -> Error e
  | Ok [] -> Error "ERROR empty command"
  | Ok (first :: rest) -> (
      match split_line first with
      | [] -> Error "ERROR empty command"
      | verb :: args -> (
          match (String.lowercase_ascii verb, args, rest) with
          | "get", keys, [] ->
              if keys <> [] && List.for_all valid_key keys then Ok (Cmd_get keys)
              else Error "CLIENT_ERROR bad key"
          | "bget", keys, [] ->
              if keys <> [] && List.for_all valid_key keys then Ok (Cmd_bget keys)
              else Error "CLIENT_ERROR bad key"
          | "set", args, data -> parse_storage ~mk:(fun s -> Cmd_set s) args data
          | "add", args, data -> parse_storage ~mk:(fun s -> Cmd_add s) args data
          | "replace", args, data -> parse_storage ~mk:(fun s -> Cmd_replace s) args data
          | "append", args, data -> parse_storage ~mk:(fun s -> Cmd_append s) args data
          | "prepend", args, data -> parse_storage ~mk:(fun s -> Cmd_prepend s) args data
          | "incr", [ key; delta ], [] -> (
              match int_arg delta with
              | Some delta when valid_key key -> Ok (Cmd_incr { key; delta })
              | Some _ | None -> Error "CLIENT_ERROR invalid numeric delta argument")
          | "decr", [ key; delta ], [] -> (
              match int_arg delta with
              | Some delta when valid_key key -> Ok (Cmd_decr { key; delta })
              | Some _ | None -> Error "CLIENT_ERROR invalid numeric delta argument")
          | "delete", [ key ], [] ->
              if valid_key key then Ok (Cmd_delete { key }) else Error "CLIENT_ERROR bad key"
          | "gets", keys, [] ->
              if keys <> [] && List.for_all valid_key keys then Ok (Cmd_gets keys)
              else Error "CLIENT_ERROR bad key"
          | "cas", [ key; flags; exptime; bytes; token ], [ data ] -> (
              if not (valid_key key) then Error "CLIENT_ERROR bad key"
              else
                match (int_arg flags, int_arg exptime, int_arg bytes, int_arg token) with
                | Some flags, Some exptime, Some bytes, Some token ->
                    if String.length data <> bytes then Error "CLIENT_ERROR bad data chunk"
                    else Ok (Cmd_cas { store = { key; flags; exptime; bytes; data }; token })
                | _ -> Error "CLIENT_ERROR bad command line format")
          | "touch", [ key; exptime ], [] -> (
              match int_arg exptime with
              | Some exptime when valid_key key -> Ok (Cmd_touch { key; exptime })
              | Some _ | None -> Error "CLIENT_ERROR bad command line format")
          | "flush_all", [], [] -> Ok Cmd_flush_all
          | "stats", [], [] -> Ok Cmd_stats
          | "verbosity", [ n ], [] -> (
              match int_arg n with
              | Some n -> Ok (Cmd_verbosity n)
              | None -> Error "CLIENT_ERROR bad command line format")
          | ("get" | "bget" | "gets" | "incr" | "decr" | "delete" | "cas" | "touch"
            | "flush_all" | "stats" | "verbosity"), _, _ ->
              Error "CLIENT_ERROR bad command line format"
          | _ -> Error "ERROR unknown command"))

(* Integer keys of the form "k<n>", as the operation renderer emits. *)
let key_int k =
  if String.length k >= 2 && k.[0] = 'k' then
    int_of_string_opt (String.sub k 1 (String.length k - 1))
  else None

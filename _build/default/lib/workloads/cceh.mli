(** CCEH (commit 46771e3): lock-based extendible hashing with persisted
    segment locks (bug 6, [CCEH.h:86]) and an unflushed-capacity window in
    directory doubling (bug 7, [CCEH.h:165] -> [CCEH.cpp:171]). *)

val put : Runtime.Env.ctx -> int -> Runtime.Tval.t -> unit
val get : Runtime.Env.ctx -> int -> Runtime.Tval.t option
val delete : Runtime.Env.ctx -> int -> unit

val expand : Runtime.Env.ctx -> int -> unit
(** Segment split, or directory doubling when the segment is unshared
    (bug 7 lives in the doubling path). *)

val target : Pmrace.Target.t

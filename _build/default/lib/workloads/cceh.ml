(* CCEH: cache-line conscious extendible hashing (commit 46771e3), a
   lock-based extendible hash index, carrying the paper's bugs 6 and 7.

   Layout:
     directory object : [0] capacity  [1] depth  [2] entries_off
     dir entry array  : capacity words of segment offsets (movnt-published)
     segment          : [0] lock  [1] local_depth  [2..7] three (k,v) pairs

   Root fields: [0] dir_off  [1] dir_lock (volatile — never flushed)

   Seeded bugs:
     6 (Sync)  CCEH.h:86 : segment locks are persisted on acquire but not
       released after restarts -> hang.
     7 (Intra) CCEH.h:165 -> CCEH.cpp:171 : directory doubling stores the
       new capacity unflushed, reads it back and writes the new directory
       header based on it -> undefined capacity and a leaked segment array
       after restarts (PM leakage).

   Inter-thread inconsistencies: none — directory entries and segment
   publication are movnt-published before use, as in the original, so only
   candidates (mostly on segment lock words) appear. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let ( +$ ) = Tval.add
let ( -$ ) = Tval.sub

let seg_pairs = 3
let seg_words = 8
let initial_capacity = 4

let r_dir = 0
let r_dir_lock = 8 (* own cache line: never flushed, so never a sync event *)

let root_off field = Tval.of_int (Pmdk.Layout.root_base + field)

let i_86 = Instr.site "CCEH.h:86" (* segment lock acquire (persisted) *)
let i_165 = Instr.site "CCEH.h:165" (* store new capacity (unflushed) *)
let i_171 = Instr.site "CCEH.cpp:171" (* read capacity, size the new directory *)
let i_seg_unlock = Instr.site "CCEH.h:92"
let i_dir_lock = Instr.site "CCEH.cpp:dir_lock"
let i_dir_entry = Instr.site "CCEH.cpp:dir_entry"
let i_dir_hdr = Instr.site "CCEH.cpp:segment_array"
let i_pair = Instr.site "CCEH.cpp:pair"
let i_meta = Instr.site "CCEH.cpp:meta"
let i_seg_init = Instr.site "CCEH.cpp:seg_init"
let i_recover = Instr.site "CCEH.cpp:recover"

let b_put = Instr.site "cceh:put"
let b_get = Instr.site "cceh:get"
let b_delete = Instr.site "cceh:delete"
let b_split = Instr.site "cceh:split"
let b_double = Instr.site "cceh:double"
let b_probe = Instr.site "cceh:probe"

let key_word k = Tval.of_int (k + 1)

(* Allocate a segment with the given local depth; published clean. *)
let alloc_segment ctx depth =
  let seg = Pmdk.Heap.alloc ctx ~words:seg_words in
  Mem.movnt ctx ~instr:i_seg_init (Tval.of_int (seg + 1)) (Tval.of_int depth);
  Mem.sfence ctx ~instr:i_seg_init;
  seg

let alloc_directory ctx capacity =
  let dir = Pmdk.Heap.alloc ctx ~words:8 in
  let entries = Pmdk.Heap.alloc ctx ~words:capacity in
  Mem.movnt ctx ~instr:i_dir_hdr (Tval.of_int dir) (Tval.of_int capacity);
  Mem.movnt ctx ~instr:i_dir_hdr (Tval.of_int (dir + 1)) Tval.one;
  Mem.movnt ctx ~instr:i_dir_hdr (Tval.of_int (dir + 2)) (Tval.of_int entries);
  Mem.sfence ctx ~instr:i_dir_hdr;
  (dir, entries)

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx;
  let dir, entries = alloc_directory ctx initial_capacity in
  for e = 0 to initial_capacity - 1 do
    let seg = alloc_segment ctx 1 in
    Mem.movnt ctx ~instr:i_dir_entry (Tval.of_int (entries + e)) (Tval.of_int seg)
  done;
  Mem.sfence ctx ~instr:i_dir_entry;
  Mem.movnt ctx ~instr:i_meta (root_off r_dir) (Tval.of_int dir);
  Mem.sfence ctx ~instr:i_meta

let annotate (env : Env.t) =
  (* Segment locks: one source annotation on the lock field (CCEH.h:86)
     covering the lock word of the initial segments. *)
  let first_seg = Pmdk.Layout.heap_base + 8 + initial_capacity + 4 in
  ignore first_seg;
  (* Segments are heap-allocated at dynamic offsets; annotate the lock word
     of every possible segment slot: segments are 8-word aligned heap
     chunks whose word 0 is the lock.  We annotate lazily via the known
     initial layout: dir(8) + entries(8, line-rounded) then segments. *)
  let seg0 = Pmdk.Layout.heap_base + 8 + Pmdk.Heap.round_up_line initial_capacity in
  for s = 0 to initial_capacity - 1 do
    Env.annotate_sync env ~name:"CCEH.h:86" ~addr:(seg0 + (s * seg_words)) ~len:1 ~init:0L
  done;
  Env.annotate_sync env ~name:"cceh:dir_lock"
    ~addr:(Pmdk.Layout.root_base + r_dir_lock)
    ~len:1 ~init:0L

let directory ctx = Mem.load ctx ~instr:i_meta (root_off r_dir)
let capacity ctx dir = Mem.load ctx ~instr:i_171 dir
let entries_of ctx dir = Mem.load ctx ~instr:i_meta (dir +$ Tval.of_int 2)

(* Locate the segment for a key through the (clean) directory entry. *)
let segment_of ctx key =
  let dir = Tval.untainted (directory ctx) in
  let cap = Tval.to_int (Tval.untainted (capacity ctx dir)) in
  let entries = Tval.untainted (entries_of ctx dir) in
  let idx = key mod max 1 cap in
  Tval.untainted (Mem.load ctx ~instr:i_dir_entry (entries +$ Tval.of_int idx))

let pair_key seg i = seg +$ Tval.of_int (2 + (2 * i))
let pair_val seg i = seg +$ Tval.of_int (3 + (2 * i))

(* The segment lock is persisted on acquire — bug 6's pattern. *)
let lock_segment ctx seg = Mem.spin_lock ~persist_lock:true ctx ~instr:i_86 seg
let unlock_segment ctx seg = Mem.unlock ~persist_lock:true ctx ~instr:i_seg_unlock seg

let find_pair ctx seg key =
  Mem.branch ctx ~instr:b_probe;
  let rec scan i =
    if i >= seg_pairs then None
    else
      let k = Mem.load ctx ~instr:i_pair (pair_key seg i) in
      if Tval.equal_v k (key_word key) then Some i else scan (i + 1)
  in
  scan 0

let find_free ctx seg =
  let rec scan i =
    if i >= seg_pairs then None
    else
      let k = Mem.load ctx ~instr:i_pair (pair_key seg i) in
      if Tval.is_zero k then Some i else scan (i + 1)
  in
  scan 0

(* Expansion — directory doubling combined with the overflowing
   segment's split, as in extendible hashing.  Bug 7 lives here: the new
   capacity is stored (165), read back unflushed (171), and the new
   directory header is written from that tainted value; the capacity flush
   comes only afterwards.  Directory entries and segments are
   movnt-published (flush-before-publish), so readers never see dirty
   pointers — which is why CCEH has no Inter-thread Inconsistency. *)
let max_capacity = 64

let expand ctx key =
  Mem.branch ctx ~instr:b_double;
  Mem.spin_lock ctx ~instr:i_dir_lock (root_off r_dir_lock);
  let dir = Tval.untainted (directory ctx) in
  let cap = Tval.to_int (Tval.untainted (capacity ctx dir)) in
  let entries = Tval.untainted (entries_of ctx dir) in
  let idx = key mod max 1 cap in
  let seg = Tval.untainted (Mem.load ctx ~instr:i_dir_entry (entries +$ Tval.of_int idx)) in
  let sharers =
    List.filter
      (fun e ->
        Tval.equal_v (Tval.untainted (Mem.load ctx ~instr:i_dir_entry (entries +$ Tval.of_int e))) seg)
      (List.init cap Fun.id)
  in
  if List.length sharers > 1 then begin
    (* Local split (local depth < global depth): redistribute the shared
       segment over its directory slots without doubling. *)
    Mem.branch ctx ~instr:b_split;
    lock_segment ctx seg;
    let fresh = List.map (fun e -> (e, alloc_segment ctx 1)) sharers in
    let fill = Hashtbl.create 4 in
    for i = 0 to seg_pairs - 1 do
      let k = Tval.untainted (Mem.load ctx ~instr:i_pair (pair_key seg i)) in
      if not (Tval.is_zero k) then begin
        let v = Tval.untainted (Mem.load ctx ~instr:i_pair (pair_val seg i)) in
        let kk = Tval.to_int k - 1 in
        let e = kk mod cap in
        match List.assoc_opt e fresh with
        | Some dst ->
            let c = Option.value ~default:0 (Hashtbl.find_opt fill dst) in
            Mem.movnt ctx ~instr:i_pair (pair_key (Tval.of_int dst) c) k;
            Mem.movnt ctx ~instr:i_pair (pair_val (Tval.of_int dst) c) v;
            Hashtbl.replace fill dst (c + 1)
        | None -> () (* key belongs to a slot no longer sharing this segment *)
      end
    done;
    Mem.sfence ctx ~instr:i_pair;
    List.iter
      (fun (e, dst) ->
        Mem.movnt ctx ~instr:i_dir_entry (entries +$ Tval.of_int e) (Tval.of_int dst))
      fresh;
    Mem.sfence ctx ~instr:i_dir_entry;
    unlock_segment ctx seg;
    Mem.unlock ctx ~instr:i_dir_lock (root_off r_dir_lock)
  end
  else if cap >= max_capacity then Mem.unlock ctx ~instr:i_dir_lock (root_off r_dir_lock)
  else begin
    let old_cap = cap and old_entries = entries in
    lock_segment ctx seg;
    let new_dir = Pmdk.Heap.alloc ctx ~words:8 in
    (* 165: the new capacity, stored into the new directory, not flushed. *)
    Mem.store ctx ~instr:i_165 (Tval.of_int new_dir) (Tval.of_int (old_cap * 2));
    (* 171: read it back (an intra-thread candidate) and size the new
       segment array from the tainted value. *)
    let cap = Mem.load ctx ~instr:i_171 (Tval.of_int new_dir) in
    let new_entries = Pmdk.Heap.alloc ctx ~words:(Tval.to_int cap) in
    Mem.store ctx ~instr:i_dir_hdr (Tval.of_int (new_dir + 2)) (Tval.of_int new_entries);
    (* Bug 7's durable side effect: the segment array's boundary slot is
       addressed through the still-unflushed capacity and persisted while
       the capacity word is dirty (the header flush — capacity included —
       comes only later). *)
    Mem.store ctx ~instr:i_dir_hdr (Tval.of_int new_entries +$ cap -$ Tval.one) Tval.zero;
    Mem.persist ctx ~instr:i_dir_hdr (Tval.of_int new_entries +$ cap -$ Tval.one);
    Mem.branch ctx ~instr:b_split;
    (* Split the overflowing segment into two by the doubled residue. *)
    let s0 = alloc_segment ctx 2 and s1 = alloc_segment ctx 2 in
    let c0 = ref 0 and c1 = ref 0 in
    for i = 0 to seg_pairs - 1 do
      let k = Tval.untainted (Mem.load ctx ~instr:i_pair (pair_key seg i)) in
      if not (Tval.is_zero k) then begin
        let v = Tval.untainted (Mem.load ctx ~instr:i_pair (pair_val seg i)) in
        let kk = Tval.to_int k - 1 in
        let dst, c = if kk mod (old_cap * 2) = idx then (s0, c0) else (s1, c1) in
        Mem.movnt ctx ~instr:i_pair (pair_key (Tval.of_int dst) !c) k;
        Mem.movnt ctx ~instr:i_pair (pair_val (Tval.of_int dst) !c) v;
        incr c
      end
    done;
    Mem.sfence ctx ~instr:i_pair;
    (* New directory: duplicated entries, except the split slot pair. *)
    for e = 0 to old_cap - 1 do
      let s = Tval.untainted (Mem.load ctx ~instr:i_dir_entry (old_entries +$ Tval.of_int e)) in
      let lo, hi = if e = idx then (Tval.of_int s0, Tval.of_int s1) else (s, s) in
      Mem.movnt ctx ~instr:i_dir_entry (Tval.of_int (new_entries + e)) lo;
      Mem.movnt ctx ~instr:i_dir_entry (Tval.of_int (new_entries + old_cap + e)) hi
    done;
    Mem.sfence ctx ~instr:i_dir_entry;
    (* Flush the capacity only now — closing bug 7's window. *)
    Mem.persist ctx ~instr:i_165 (Tval.of_int new_dir);
    (* Publish the new directory. *)
    Mem.movnt ctx ~instr:i_meta (root_off r_dir) (Tval.of_int new_dir);
    Mem.sfence ctx ~instr:i_meta;
    unlock_segment ctx seg;
    Mem.unlock ctx ~instr:i_dir_lock (root_off r_dir_lock)
  end

let put ctx key value =
  Mem.branch ctx ~instr:b_put;
  let rec attempt tries =
    if tries > 4 then ()
    else begin
      let seg = segment_of ctx key in
      lock_segment ctx seg;
      match find_pair ctx seg key with
      | Some i ->
          Mem.store ctx ~instr:i_pair (pair_val seg i) value;
          Mem.persist ctx ~instr:i_pair (pair_val seg i);
          unlock_segment ctx seg
      | None -> (
          match find_free ctx seg with
          | Some i ->
              Mem.store ctx ~instr:i_pair (pair_val seg i) value;
              Mem.persist ctx ~instr:i_pair (pair_val seg i);
              Mem.store ctx ~instr:i_pair (pair_key seg i) (key_word key);
              Mem.persist ctx ~instr:i_pair (pair_key seg i);
              unlock_segment ctx seg
          | None ->
              unlock_segment ctx seg;
              expand ctx key;
              attempt (tries + 1))
    end
  in
  attempt 0

let get ctx key =
  Mem.branch ctx ~instr:b_get;
  let seg = segment_of ctx key in
  match find_pair ctx seg key with
  | Some i -> Some (Mem.load ctx ~instr:i_pair (pair_val seg i))
  | None -> None

let delete ctx key =
  Mem.branch ctx ~instr:b_delete;
  let seg = segment_of ctx key in
  lock_segment ctx seg;
  (match find_pair ctx seg key with
  | Some i ->
      Mem.store ctx ~instr:i_pair (pair_key seg i) Tval.zero;
      Mem.persist ctx ~instr:i_pair (pair_key seg i)
  | None -> ());
  unlock_segment ctx seg

let run_op ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { key; value } | Update { key; value } | Append { key; value } | Prepend { key; value }
    ->
      put ctx key (Tval.of_int value)
  | Get { key } | Scan { key; _ } -> ignore (get ctx key)
  | Delete { key } -> delete ctx key
  | Incr { key; delta } | Decr { key; delta } -> put ctx key (Tval.of_int delta)
  | Cas { key; value; _ } -> put ctx key (Tval.of_int value)
  | Touch { key; _ } -> ignore (get ctx key)
  | Flush_all | Stats -> ()

(* Recovery: releases the directory lock but NOT the segment locks — bug 6.
   The capacity/segment-array inconsistency of bug 7 is also left as-is. *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  Mem.store ctx ~instr:i_recover (root_off r_dir_lock) Tval.zero;
  Mem.persist ctx ~instr:i_recover (root_off r_dir_lock)

let target : Pmrace.Target.t =
  {
    name = "cceh";
    version = "46771e3";
    scope = "Extendible hashing";
    concurrency = "Lock-based";
    pool_words = 4096;
    expensive_init = true;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; KGet; KUpdate; KDelete ];
        key_range = 24;
        value_range = 1000;
        threads = 4;
        ops_per_thread = 8;
      };
    known_bugs =
      [
        {
          kb_id = 6;
          kb_type = `Sync;
          kb_new = true;
          kb_write_site = Some "CCEH.h:86";
          kb_read_site = None;
          kb_description = "do not release segment locks after restarts";
          kb_consequence = "hang";
        };
        {
          kb_id = 7;
          kb_type = `Intra;
          kb_new = true;
          kb_write_site = Some "CCEH.h:165";
          kb_read_site = Some "CCEH.cpp:171";
          kb_description = "read unflushed capacity and allocate segments";
          kb_consequence = "PM leakage";
        };
      ];
    whitelist_sites = Pmdk.Tx.default_whitelist;
  }

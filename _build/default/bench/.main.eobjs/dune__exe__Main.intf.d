bench/main.mli:

bench/figures.ml: Format List Pmrace Printf Sessions String Unix Workloads

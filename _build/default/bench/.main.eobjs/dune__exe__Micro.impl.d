bench/micro.ml: Analyze Bechamel Benchmark Format Hashtbl Instance Lazy List Measure Pmdk Pmem Pmrace Runtime Sched Staged Test Time Toolkit Workloads

bench/ablations.ml: Format List Pmrace Printf Runtime Sched String Workloads

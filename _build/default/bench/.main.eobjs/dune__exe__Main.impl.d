bench/main.ml: Ablations Array Figures Format List Micro String Sys Tables Unix

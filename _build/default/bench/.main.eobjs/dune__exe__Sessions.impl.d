bench/sessions.ml: Hashtbl Option Pmrace

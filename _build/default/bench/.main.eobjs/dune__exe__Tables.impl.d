bench/tables.ml: Array Format Hashtbl List Option Pmem Pmrace Printf Runtime Sched Sessions String Workloads

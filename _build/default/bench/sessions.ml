(* Shared fuzzing sessions for the table/figure reproductions.

   Each tested system is fuzzed once per (mode, ablation) configuration
   and the session is memoised, so every table reads from the same run —
   as in the paper, where one fuzzing campaign per system produces all of
   Tables 2/3/5/6. *)

module Fuzzer = Pmrace.Fuzzer

type key = { k_target : string; k_mode : Fuzzer.mode; k_ie : bool; k_se : bool; k_campaigns : int }

let cache : (key, Fuzzer.session) Hashtbl.t = Hashtbl.create 16

(* Campaign budgets per system, sized so that every seeded bug is within
   reach of the PM-aware exploration (cf. §6.1: 13 worker processes and
   hours of fuzzing in the original; our simulator campaigns are ~ms). *)
let budget_of = function
  | "p-clht" -> 400
  | "clevel" -> 150
  | "cceh" -> 250
  | "fast-fair" -> 350
  | "memcached-pmem" -> 500
  | _ -> 150

let master_seed_of = function
  | "p-clht" -> 5
  | "cceh" -> 5
  | "fast-fair" -> 5
  | "memcached-pmem" -> 9
  | _ -> 5

let run ?(mode = Fuzzer.Mode_pmrace) ?(interleaving_tier = true) ?(seed_tier = true) ?campaigns
    (target : Pmrace.Target.t) =
  let campaigns = Option.value ~default:(budget_of target.name) campaigns in
  let key =
    {
      k_target = target.name;
      k_mode = mode;
      k_ie = interleaving_tier;
      k_se = seed_tier;
      k_campaigns = campaigns;
    }
  in
  match Hashtbl.find_opt cache key with
  | Some s -> s
  | None ->
      let cfg =
        {
          Fuzzer.default_config with
          max_campaigns = campaigns;
          master_seed = master_seed_of target.name;
          mode;
          interleaving_tier;
          seed_tier;
          use_checkpoint = target.expensive_init;
        }
      in
      let s = Fuzzer.run target cfg in
      Hashtbl.add cache key s;
      s

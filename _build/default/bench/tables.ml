(* Reproductions of the paper's tables (evaluation §6). *)

module Fuzzer = Pmrace.Fuzzer
module Report = Pmrace.Report
module Candidates = Runtime.Candidates

let hr ppf = Format.fprintf ppf "%s@." (String.make 86 '-')

(* ------------------------------------------------------------------ *)
(* Table 1: the tested systems. *)

let table1 ppf =
  Format.fprintf ppf "@.Table 1: The concurrent PM programs tested by PMRace.@.";
  hr ppf;
  Format.fprintf ppf "%-16s %-10s %-24s %s@." "Systems" "Version" "Scope" "Concurrency";
  hr ppf;
  List.iter
    (fun (name, version, scope, conc) ->
      Format.fprintf ppf "%-16s %-10s %-24s %s@." name version scope conc)
    (Workloads.Registry.table1 ());
  hr ppf

(* ------------------------------------------------------------------ *)
(* Table 2: the unique bugs found. *)

let type_name = function
  | `Inter -> "Inter"
  | `Sync -> "Sync"
  | `Intra -> "Intra"
  | `Other -> "Other"

let table2 ppf =
  Format.fprintf ppf "@.Table 2: The unique bugs found by PMRace (paper bug numbering).@.";
  hr ppf;
  Format.fprintf ppf "%-15s %-3s %-6s %-4s %-6s %-38s %s@." "Systems" "#" "Type" "New" "Found"
    "Write code -> Read code" "Consequence";
  hr ppf;
  List.iter
    (fun (target : Pmrace.Target.t) ->
      let session = Sessions.run target in
      List.iter
        (fun ((kb : Pmrace.Target.known_bug), found) ->
          Format.fprintf ppf "%-15s %-3d %-6s %-4s %-6s %-38s %s@." target.name kb.kb_id
            (type_name kb.kb_type)
            (if kb.kb_new then "yes" else "no")
            (if found then "FOUND" else "MISS")
            (Printf.sprintf "%s -> %s"
               (Option.value ~default:"-" kb.kb_write_site)
               (Option.value ~default:"-" kb.kb_read_site))
            kb.kb_consequence)
        (Fuzzer.found_known_bugs session target))
    Workloads.Registry.all;
  hr ppf

(* ------------------------------------------------------------------ *)
(* Table 3 / Table 6: inconsistencies and false positives. *)

let table3 ppf =
  Format.fprintf ppf
    "@.Table 3/6: PM concurrency bug detection — inconsistencies and false positives.@.";
  hr ppf;
  Format.fprintf ppf "%-15s | %10s %6s %7s %7s %4s | %4s %5s %7s %4s@." "Systems" "Inter-Cand"
    "Inter" "Val-FP" "WL-FP" "Bug" "Ann" "Sync" "Val-FP" "Bug";
  hr ppf;
  let tot = Array.make 9 0 in
  List.iter
    (fun (target : Pmrace.Target.t) ->
      let s = Sessions.run target in
      let inter_cand = Report.candidate_count s.report Candidates.Inter in
      let cs = Report.coarse_summary s.report Candidates.Inter in
      let inter = cs.Report.total in
      let fp = cs.Report.validated_fp and wl = cs.Report.whitelisted_fp in
      let known = Fuzzer.found_known_bugs s target in
      let bug_known ty =
        List.length
          (List.filter (fun ((kb : Pmrace.Target.known_bug), f) -> f && kb.kb_type = ty) known)
      in
      let sfp, _, _, _ = Report.sync_verdict_summary s.report in
      let sync = List.length (Report.sync_findings s.report) in
      let row =
        [| inter_cand; inter; fp; wl; bug_known `Inter; s.annotations; sync; sfp; bug_known `Sync |]
      in
      Array.iteri (fun i v -> tot.(i) <- tot.(i) + v) row;
      Format.fprintf ppf "%-15s | %10d %6d %7d %7d %4d | %4d %5d %7d %4d@." target.name row.(0)
        row.(1) row.(2) row.(3) row.(4) row.(5) row.(6) row.(7) row.(8))
    Workloads.Registry.all;
  hr ppf;
  Format.fprintf ppf "%-15s | %10d %6d %7d %7d %4d | %4d %5d %7d %4d@." "Total" tot.(0) tot.(1)
    tot.(2) tot.(3) tot.(4) tot.(5) tot.(6) tot.(7) tot.(8);
  hr ppf;
  Format.fprintf ppf
    "('Bug' counts seeded ground-truth bugs found; remaining validated inconsistencies@.";
  Format.fprintf ppf
    " mirror the paper's manually-triaged reports, e.g. FAST-FAIR's lazily-tolerated ones.)@."

(* ------------------------------------------------------------------ *)
(* Table 5: unique-bug summary (new | total). *)

let table5 ppf =
  Format.fprintf ppf "@.Table 5: The number of unique bugs found (new|total).@.";
  hr ppf;
  Format.fprintf ppf "%-15s %-9s %-7s %-7s %-7s %-7s %s@." "Systems" "Version" "Inter" "Sync"
    "Intra" "Other" "Total";
  hr ppf;
  let grand = Array.make 10 0 in
  List.iter
    (fun (target : Pmrace.Target.t) ->
      let s = Sessions.run target in
      let known = Fuzzer.found_known_bugs s target in
      let count ty =
        let found =
          List.filter (fun ((kb : Pmrace.Target.known_bug), f) -> f && kb.kb_type = ty) known
        in
        let nu = List.length (List.filter (fun ((kb : Pmrace.Target.known_bug), _) -> kb.kb_new) found) in
        (nu, List.length found)
      in
      let cell (nu, total) = if total = 0 then "-" else Printf.sprintf "%d|%d" nu total in
      let i', sy, ia, ot = (count `Inter, count `Sync, count `Intra, count `Other) in
      let tot = (fst i' + fst sy + fst ia + fst ot, snd i' + snd sy + snd ia + snd ot) in
      List.iteri
        (fun idx v -> grand.(idx) <- grand.(idx) + v)
        [ fst i'; snd i'; fst sy; snd sy; fst ia; snd ia; fst ot; snd ot; fst tot; snd tot ];
      Format.fprintf ppf "%-15s %-9s %-7s %-7s %-7s %-7s %s@." target.name target.version
        (cell i') (cell sy) (cell ia) (cell ot) (cell tot))
    Workloads.Registry.all;
  hr ppf;
  Format.fprintf ppf "%-15s %-9s %d|%d     %d|%d     %d|%d     %d|%d     %d|%d@." "Total" ""
    grand.(0) grand.(1) grand.(2) grand.(3) grand.(4) grand.(5) grand.(6) grand.(7) grand.(8)
    grand.(9);
  hr ppf

(* ------------------------------------------------------------------ *)
(* Table 4: code coverage of memcached-pmem commands, AFL++ byte mutation
   vs PMRace's operation mutator, over 100 seeds each. *)

let count_families ~commands =
  (* Execute commands against a fresh single-threaded memcached instance,
     counting process_command invocations per family. *)
  let target = Workloads.Memcached.target in
  let env = Runtime.Env.create ~pool_words:target.pool_words () in
  target.init env;
  Pmem.Pool.quiesce env.pool;
  Runtime.Env.reset_checkers env;
  let ctx = Runtime.Env.ctx env ~tid:0 in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun raw ->
      let fam = Workloads.Memcached.process_command ctx raw in
      let name = Workloads.Memcached_proto.family_name fam in
      Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)))
    commands;
  counts

let table4 ppf =
  Format.fprintf ppf "@.Table 4: The code coverage of memcached-pmem commands (100 seeds each).@.";
  let profile = Workloads.Memcached.target.profile in
  let rng = Sched.Rng.create 1234 in
  let op_commands =
    List.init 100 (fun _ ->
        Pmrace.Seed.gen rng profile |> Pmrace.Seed.all_ops |> List.map Pmrace.Seed.render_op)
    |> List.concat
  in
  let afl_commands = List.map (fun c -> Pmrace.Mutator.afl_havoc rng c) op_commands in
  let fams = [ "Get*"; "Update*"; "incr"; "decr"; "delete"; "Error" ] in
  hr ppf;
  Format.fprintf ppf "%-8s" "Schemes";
  List.iter (fun f -> Format.fprintf ppf " %8s" f) fams;
  Format.fprintf ppf " %8s@." "Total";
  hr ppf;
  let print_row name counts =
    Format.fprintf ppf "%-8s" name;
    let total = ref 0 in
    List.iter
      (fun f ->
        let n = Option.value ~default:0 (Hashtbl.find_opt counts f) in
        if not (String.equal f "Error") then total := !total + n;
        Format.fprintf ppf " %8d" n)
      fams;
    Format.fprintf ppf " %8d@." !total
  in
  print_row "AFL++" (count_families ~commands:afl_commands);
  print_row "PMRace" (count_families ~commands:op_commands);
  hr ppf;
  Format.fprintf ppf "(Total counts commands that reached storage code, i.e. excluding Error.)@."

examples/pclht_hunt.ml: Format List Option Pmdk Pmem Pmrace Runtime Sched Workloads

examples/eadr_demo.ml: Format List Pmrace Runtime Workloads

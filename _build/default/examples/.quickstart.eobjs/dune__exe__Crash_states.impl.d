examples/crash_states.ml: Format List Pmem Runtime

examples/memcached_fuzz.ml: Format List Pmrace Runtime Sched Workloads

examples/memcached_fuzz.mli:

examples/quickstart.mli:

examples/eadr_demo.mli:

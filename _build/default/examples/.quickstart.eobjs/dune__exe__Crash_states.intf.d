examples/crash_states.mli:

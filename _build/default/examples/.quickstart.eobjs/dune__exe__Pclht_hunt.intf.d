examples/pclht_hunt.mli:

examples/quickstart.ml: Fmt Format Int64 List Option Pmem Pmrace Runtime Workloads

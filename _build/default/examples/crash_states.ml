(* A step-by-step walkthrough of the Figure 3 timeline: the visible
   (cache) and durable (media) states of PM words as two threads race
   through the P-CLHT bug 1 window.

     dune exec examples/crash_states.exe

   Uses the raw runtime API directly — no fuzzer — to make the
   visibility/persistency gap tangible. *)

module Env = Runtime.Env
module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr

let i_785 = Instr.site "fig3:785-store-ht_off"
let i_786 = Instr.site "fig3:786-flush-ht_off"
let i_417 = Instr.site "fig3:417-read-ht_off"
let i_item = Instr.site "fig3:483-insert-item"

let ht_off = 8 (* the global table pointer *)
let old_table = 64
let new_table = 128

let show env step =
  let vol w = Pmem.Pool.peek env.Env.pool w in
  let dur w = Pmem.Pool.image_word (Pmem.Pool.crash_image env.Env.pool) w in
  Format.printf "%-42s | ht_off: cache=%-3Ld pm=%-3Ld | item: cache=%-4Ld pm=%-4Ld@." step
    (vol ht_off) (dur ht_off)
    (vol (new_table + 1))
    (dur (new_table + 1))

let () =
  Format.printf "Figure 3 walkthrough: data states during the P-CLHT bug 1 window@.@.";
  let env = Env.create ~pool_words:512 () in
  let t1 = Env.ctx env ~tid:1 (* the resizing thread *) in
  let t2 = Env.ctx env ~tid:2 (* the inserting thread *) in
  (* Initial state: ht_off points at the old table, durably. *)
  Mem.store t1 ~instr:i_785 (Tval.of_int ht_off) (Tval.of_int old_table);
  Mem.persist t1 ~instr:i_786 (Tval.of_int ht_off);
  show env "initial (ht_off -> old table, persisted)";

  (* Thread-1, line 785: swap the table pointer — no flush yet. *)
  Mem.store t1 ~instr:i_785 (Tval.of_int ht_off) (Tval.of_int new_table);
  show env "t1@785: ht_off := new table (store only)";

  (* Thread-2, line 417: reads the NON-PERSISTED pointer... *)
  let ht = Mem.load t2 ~instr:i_417 (Tval.of_int ht_off) in
  Format.printf "t2@417 reads ht_off = %d; tainted = %b (an Inter-thread Candidate)@."
    (Tval.to_int ht) (Tval.is_tainted ht);

  (* ...and inserts an item into the table it found (lines 483-489). *)
  Mem.movnt t2 ~instr:i_item (Tval.add ht Tval.one) (Tval.of_int 7777);
  Mem.sfence t2 ~instr:i_item;
  show env "t2@483: item inserted via the read pointer";

  (* CRASH — before thread-1 executes line 786. *)
  Format.printf "@.*** crash here: ht_off still points at the old table in PM ***@.";
  List.iter
    (fun inc -> Format.printf "checker verdict: %a@." Runtime.Checkers.pp_inconsistency inc)
    (Runtime.Checkers.inconsistencies env.Env.checkers);
  let image = Pmem.Pool.crash_image env.Env.pool in
  let env2 = Env.of_image image in
  Format.printf "after reboot: ht_off = %Ld (old table), item word = %Ld (persisted!)@."
    (Pmem.Pool.peek env2.Env.pool ht_off)
    (Pmem.Pool.peek env2.Env.pool (new_table + 1));
  Format.printf "the item is durable but unreachable through the recovered pointer: data loss@.";

  (* Epilogue: what SHOULD have happened — flush before the window. *)
  Format.printf "@.correct ordering (flush immediately after the swap):@.";
  let env3 = Env.create ~pool_words:512 () in
  let t1 = Env.ctx env3 ~tid:1 and t2 = Env.ctx env3 ~tid:2 in
  Mem.store t1 ~instr:i_785 (Tval.of_int ht_off) (Tval.of_int new_table);
  Mem.persist t1 ~instr:i_786 (Tval.of_int ht_off);
  let ht = Mem.load t2 ~instr:i_417 (Tval.of_int ht_off) in
  Mem.movnt t2 ~instr:i_item (Tval.add ht Tval.one) (Tval.of_int 7777);
  Mem.sfence t2 ~instr:i_item;
  Format.printf "candidates: %d, inconsistencies: %d — the window is gone@."
    (Runtime.Candidates.dynamic_count (Runtime.Checkers.candidates env3.Env.checkers))
    (List.length (Runtime.Checkers.inconsistencies env3.Env.checkers))

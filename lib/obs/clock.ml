(* Monotonized wall clock: gettimeofday guarded against going backwards.
   The last reading is kept as float bits in an Atomic so concurrent
   worker domains can stamp events without a lock. *)

let last = Atomic.make (Int64.bits_of_float neg_infinity)

let rec now () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get last in
  let pf = Int64.float_of_bits prev in
  if t >= pf then
    if Atomic.compare_and_set last prev (Int64.bits_of_float t) then t
    else now () (* another domain advanced the clock; re-read *)
  else pf (* wall clock stepped backwards: hold the line *)

let elapsed t0 = Float.max 0. (now () -. t0)

(* Structured events and sinks.  One mutex serialises emission across
   worker domains; the no-sink fast path never takes it. *)

type payload =
  | Session_start of { target : string; workers : int; max_campaigns : int; master_seed : int }
  | Campaign_start of {
      campaign : int;
      worker : int;
      seed_id : int;
      sched_seed : int;
      policy : string;
    }
  | Campaign_end of {
      campaign : int;
      worker : int;
      improved : bool;
      hung : bool;
      latency : float;
    }
  | New_alias_pair of { campaign : int; worker : int; write_site : string; read_site : string }
  | Candidate_found of {
      campaign : int;
      worker : int;
      kind : string;
      write_site : string;
      read_site : string;
    }
  | Validation_verdict of {
      campaign : int;
      worker : int;
      kind : string;
      site : string;
      verdict : string;
    }
  | Crash_image_bug of {
      campaign : int;
      worker : int;
      kind : string;
      site : string;
      image_index : int;
    }
  | Worker_merge of { campaign : int; worker : int; alias_bits : int; branch_bits : int }
  | Session_end of { campaigns : int; wall : float; bugs : int }

type event = { ev_time : float; ev_payload : payload }

type t = { started : float; lock : Mutex.t; mutable sinks : (event -> unit) list }

let create () = { started = Clock.now (); lock = Mutex.create (); sinks = [] }
let attach t sink = t.sinks <- sink :: t.sinks

let emit t payload =
  match t.sinks with
  | [] -> ()
  | _ ->
      let ev = { ev_time = Clock.elapsed t.started; ev_payload = payload } in
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () -> List.iter (fun sink -> sink ev) t.sinks)

(* ------------------------------------------------------------------ *)
(* Ring buffer sink *)

type ring = { cells : event option array; mutable head : int; mutable total : int }

let attach_ring ?(capacity = 4096) t =
  let r = { cells = Array.make (max 1 capacity) None; head = 0; total = 0 } in
  attach t (fun ev ->
      r.cells.(r.head) <- Some ev;
      r.head <- (r.head + 1) mod Array.length r.cells;
      r.total <- r.total + 1);
  r

let ring_events r =
  let n = Array.length r.cells in
  let start = if r.total <= n then 0 else r.head in
  let count = min r.total n in
  List.init count (fun i -> r.cells.((start + i) mod n)) |> List.filter_map Fun.id

let ring_dropped r = max 0 (r.total - Array.length r.cells)

(* ------------------------------------------------------------------ *)
(* JSON *)

let payload_name = function
  | Session_start _ -> "session_start"
  | Campaign_start _ -> "campaign_start"
  | Campaign_end _ -> "campaign_end"
  | New_alias_pair _ -> "new_alias_pair"
  | Candidate_found _ -> "candidate_found"
  | Validation_verdict _ -> "validation_verdict"
  | Crash_image_bug _ -> "crash_image_bug"
  | Worker_merge _ -> "worker_merge"
  | Session_end _ -> "session_end"

let payload_fields = function
  | Session_start { target; workers; max_campaigns; master_seed } ->
      [
        ("target", Json.String target);
        ("workers", Json.Int workers);
        ("max_campaigns", Json.Int max_campaigns);
        ("master_seed", Json.Int master_seed);
      ]
  | Campaign_start { campaign; worker; seed_id; sched_seed; policy } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("seed_id", Json.Int seed_id);
        ("sched_seed", Json.Int sched_seed);
        ("policy", Json.String policy);
      ]
  | Campaign_end { campaign; worker; improved; hung; latency } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("improved", Json.Bool improved);
        ("hung", Json.Bool hung);
        ("latency", Json.Float latency);
      ]
  | New_alias_pair { campaign; worker; write_site; read_site } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("write_site", Json.String write_site);
        ("read_site", Json.String read_site);
      ]
  | Candidate_found { campaign; worker; kind; write_site; read_site } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("kind", Json.String kind);
        ("write_site", Json.String write_site);
        ("read_site", Json.String read_site);
      ]
  | Validation_verdict { campaign; worker; kind; site; verdict } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("kind", Json.String kind);
        ("site", Json.String site);
        ("verdict", Json.String verdict);
      ]
  | Crash_image_bug { campaign; worker; kind; site; image_index } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("kind", Json.String kind);
        ("site", Json.String site);
        ("image_index", Json.Int image_index);
      ]
  | Worker_merge { campaign; worker; alias_bits; branch_bits } ->
      [
        ("campaign", Json.Int campaign);
        ("worker", Json.Int worker);
        ("alias_bits", Json.Int alias_bits);
        ("branch_bits", Json.Int branch_bits);
      ]
  | Session_end { campaigns; wall; bugs } ->
      [ ("campaigns", Json.Int campaigns); ("wall", Json.Float wall); ("bugs", Json.Int bugs) ]

let to_json ev =
  Json.Obj
    (("event", Json.String (payload_name ev.ev_payload))
    :: ("t", Json.Float ev.ev_time)
    :: payload_fields ev.ev_payload)

let attach_jsonl t oc =
  attach t (fun ev ->
      output_string oc (Json.to_string ~minify:true (to_json ev));
      output_char oc '\n';
      flush oc)

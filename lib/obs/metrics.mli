(** Domain-safe metrics: counters, gauges, and fixed-bucket histograms in
    a global registry.

    Design constraints, in order:
    - {b cheap no-op when disabled}: recording is gated on one atomic
      boolean ({!enabled}), so instrumented hot paths (the scheduler step
      loop, the hub lock) cost a single load when metrics are off — and
      recording never touches an RNG, so seeded fuzzing sessions are
      bit-identical with metrics on or off;
    - {b domain-safe}: values are [Atomic]s, registration is mutex-guarded,
      so §5 worker domains record concurrently without locks;
    - {b labelled}: a metric instance is identified by (name, labels), so
      per-worker series ([("worker", "3")]) coexist under one name.

    Handles are registered once (typically at module or worker setup) and
    then recorded against directly; registration while disabled is fine
    and expected. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Globally enable/disable recording.  Off by default. *)

val enabled : unit -> bool

(** {2 Registration}

    Re-registering the same (name, labels) returns the existing instance.
    @raise Invalid_argument if the name is already registered as a
    different metric kind. *)

val counter : ?labels:(string * string) list -> string -> counter
val gauge : ?labels:(string * string) list -> string -> gauge

val histogram : ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds of the cumulative-style buckets (an
    implicit [+inf] bucket is always appended); defaults to
    {!latency_buckets}. *)

val latency_buckets : float array
(** 1ms .. 30s, roughly exponential — suits campaign/validation latencies. *)

(** {2 Recording} — single atomic-load no-ops while disabled. *)

val incr : ?by:int -> counter -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall duration when enabled (plain call
    when disabled). *)

(** {2 Reading} *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }
      (** [buckets] pairs each upper bound (the last is [infinity]) with
          the count of observations [<=] it (non-cumulative per cell). *)

type reading = { r_name : string; r_labels : (string * string) list; r_value : value }

val snapshot : unit -> reading list
(** Every registered metric, sorted by (name, labels). *)

val reset : unit -> unit
(** Zero all values.  Registrations (and handles) stay valid — the CLI
    resets before a session so the footer shows only that session. *)

val to_json : unit -> Json.t
(** The snapshot as a JSON array (one object per reading). *)

val pp : Format.formatter -> unit -> unit
(** Human-readable snapshot for the CLI session footer; histograms render
    count/mean/approximate p50/p95. *)

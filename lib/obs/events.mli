(** Structured session events with pluggable sinks.

    The fuzzer emits one {!payload} per interesting transition
    (campaign start/end, new alias pair, candidate discovery, validation
    verdict, worker merge); sinks subscribe before the session starts.
    Three sinks are provided: nothing (just never attach one — emission
    with no sinks is a single list-head check), an in-memory ring buffer,
    and a JSONL file stream (the CLI's [--trace-out FILE]).

    Emission is mutex-serialised across worker domains, so JSONL lines
    never interleave.  Timestamps are seconds since {!create}, read from
    the monotonic {!Clock}. *)

type payload =
  | Session_start of { target : string; workers : int; max_campaigns : int; master_seed : int }
  | Campaign_start of {
      campaign : int;
      worker : int;
      seed_id : int;
      sched_seed : int;
      policy : string;
    }
  | Campaign_end of {
      campaign : int;
      worker : int;
      improved : bool;  (** the campaign contributed new coverage bits *)
      hung : bool;
      latency : float;  (** seconds, execution + merge + validation *)
    }
  | New_alias_pair of { campaign : int; worker : int; write_site : string; read_site : string }
  | Candidate_found of {
      campaign : int;
      worker : int;
      kind : string;  (** "inter" | "intra" | "sync" *)
      write_site : string;  (** sync: the annotated variable name *)
      read_site : string;  (** sync: "" *)
    }
  | Validation_verdict of {
      campaign : int;
      worker : int;
      kind : string;
      site : string;  (** write site (or sync variable) of the finding *)
      verdict : string;  (** "bug" | "bug-recovery-hang" | "validated-fp" | "whitelisted-fp" *)
    }
  | Crash_image_bug of {
      campaign : int;
      worker : int;
      kind : string;
      site : string;
      image_index : int;
          (** the enumerated crash image the bug reproduced on — emitted
              only for non-default images (index > 0), i.e. bugs that
              single-image validation would have missed *)
    }
  | Worker_merge of {
      campaign : int;
      worker : int;
      alias_bits : int;  (** shared coverage after the merge *)
      branch_bits : int;
    }
  | Session_end of { campaigns : int; wall : float; bugs : int }

type event = { ev_time : float;  (** seconds since {!create} *) ev_payload : payload }

type t

val create : unit -> t

val attach : t -> (event -> unit) -> unit
(** Subscribe a generic sink.  Attach before the session runs — emission
    from worker domains is serialised, attachment is not. *)

type ring
(** An in-memory ring buffer keeping the most recent events. *)

val attach_ring : ?capacity:int -> t -> ring
(** Default capacity 4096. *)

val ring_events : ring -> event list
(** Oldest first. *)

val ring_dropped : ring -> int
(** Events overwritten because the ring was full. *)

val attach_jsonl : t -> out_channel -> unit
(** Write each event as one JSON object per line.  The channel is flushed
    per line; closing it remains the caller's job. *)

val emit : t -> payload -> unit
(** Stamp the time and fan out to every sink.  With no sinks attached this
    is one list-head check. *)

val payload_name : payload -> string
val to_json : event -> Json.t

(** A monotonic-ized wall clock.

    OCaml's stdlib exposes no OS monotonic clock, so this module
    monotonizes [Unix.gettimeofday]: readings never go backwards even if
    the system clock is stepped (NTP adjustment, manual set).  All session
    timing — execs/sec, timeline offsets, metric latencies — goes through
    here so rate figures can never be negative or wildly inflated by a
    clock step. *)

val now : unit -> float
(** Seconds; comparable only against other {!now} readings.  Domain-safe. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], clamped to be non-negative. *)

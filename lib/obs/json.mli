(** Hand-rolled JSON values: the serialization substrate for session
    artifacts, trace events, and metric snapshots.  No external
    dependencies — the encoder and the recursive-descent parser together
    are a few hundred lines, which is all this project needs (artifacts
    are written and read back by the same code).

    Numbers: integral literals decode to {!Int}, anything with a fraction
    or exponent to {!Float}.  The printer renders non-finite floats as
    [null] (JSON has no representation for them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?minify:bool -> t -> string
(** Render; [minify:false] (the default) pretty-prints with 2-space
    indentation so artifacts are diffable. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON document (trailing whitespace allowed).  Errors carry
    the byte offset. *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]. *)

val to_int : t -> int option
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> float option
(** Accepts [Float] and [Int]. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option

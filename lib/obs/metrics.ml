(* Global mutex-guarded registry of atomically-updated metrics.  The hot
   path (incr/observe) takes no lock: one atomic load of [on], then
   atomic read-modify-writes on the metric's own cells. *)

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

type counter = int Atomic.t

(* Gauges and histogram sums are floats stored as int64 bits so they can
   live in Atomics; sums are added with a CAS loop. *)
type gauge = int64 Atomic.t

type histogram = {
  bounds : float array; (* strictly increasing upper bounds; +inf implicit *)
  cells : int Atomic.t array; (* length = Array.length bounds + 1 *)
  h_count : int Atomic.t;
  h_sum : int64 Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let lock = Mutex.create ()
let registry : (string * (string * string) list, metric) Hashtbl.t = Hashtbl.create 64

let latency_buckets =
  [| 0.001; 0.003; 0.01; 0.03; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0 |]

let canon_labels labels = List.sort compare labels

let register name labels build describe =
  let labels = canon_labels labels in
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some m -> (
          match describe m with
          | Some v -> v
          | None -> invalid_arg (Printf.sprintf "Obs.Metrics: %s already registered as another kind" name))
      | None ->
          let m, v = build () in
          Hashtbl.add registry (name, labels) m;
          v)

let counter ?(labels = []) name =
  register name labels
    (fun () ->
      let c = Atomic.make 0 in
      (C c, c))
    (function C c -> Some c | G _ | H _ -> None)

let gauge ?(labels = []) name =
  register name labels
    (fun () ->
      let g = Atomic.make (Int64.bits_of_float 0.) in
      (G g, g))
    (function G g -> Some g | C _ | H _ -> None)

let histogram ?(labels = []) ?(buckets = latency_buckets) name =
  register name labels
    (fun () ->
      let h =
        {
          bounds = Array.copy buckets;
          cells = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make (Int64.bits_of_float 0.);
        }
      in
      (H h, h))
    (function H h -> Some h | C _ | G _ -> None)

let incr ?(by = 1) c = if Atomic.get on then ignore (Atomic.fetch_and_add c by)
let set g v = if Atomic.get on then Atomic.set g (Int64.bits_of_float v)

let rec atomic_add_float cell v =
  let prev = Atomic.get cell in
  let next = Int64.bits_of_float (Int64.float_of_bits prev +. v) in
  if not (Atomic.compare_and_set cell prev next) then atomic_add_float cell v

let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.cells.(bucket_index h.bounds v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_add_float h.h_sum v
  end

let time h f =
  if Atomic.get on then begin
    let t0 = Clock.now () in
    Fun.protect ~finally:(fun () -> observe h (Clock.elapsed t0)) f
  end
  else f ()

(* ------------------------------------------------------------------ *)
(* Reading *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }

type reading = { r_name : string; r_labels : (string * string) list; r_value : value }

let read_metric = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Int64.float_of_bits (Atomic.get g))
  | H h ->
      let buckets =
        List.init
          (Array.length h.cells)
          (fun i ->
            let bound = if i < Array.length h.bounds then h.bounds.(i) else infinity in
            (bound, Atomic.get h.cells.(i)))
      in
      Histogram
        { buckets; count = Atomic.get h.h_count; sum = Int64.float_of_bits (Atomic.get h.h_sum) }

let snapshot () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Hashtbl.fold
        (fun (name, labels) m acc -> { r_name = name; r_labels = labels; r_value = read_metric m } :: acc)
        registry [])
  |> List.sort (fun a b -> compare (a.r_name, a.r_labels) (b.r_name, b.r_labels))

let reset () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g (Int64.bits_of_float 0.)
          | H h ->
              Array.iter (fun cell -> Atomic.set cell 0) h.cells;
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum (Int64.bits_of_float 0.))
        registry)

let to_json () =
  Json.List
    (List.map
       (fun r ->
         let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) r.r_labels) in
         let value =
           match r.r_value with
           | Counter n -> [ ("type", Json.String "counter"); ("value", Json.Int n) ]
           | Gauge v -> [ ("type", Json.String "gauge"); ("value", Json.Float v) ]
           | Histogram { buckets; count; sum } ->
               [
                 ("type", Json.String "histogram");
                 ("count", Json.Int count);
                 ("sum", Json.Float sum);
                 ( "buckets",
                   Json.List
                     (List.map
                        (fun (le, n) ->
                          Json.Obj
                            [
                              ("le", if Float.is_finite le then Json.Float le else Json.String "+inf");
                              ("n", Json.Int n);
                            ])
                        buckets) );
               ]
         in
         Json.Obj (("name", Json.String r.r_name) :: ("labels", labels) :: value))
       (snapshot ()))

(* Approximate quantile: the upper bound of the bucket where the
   cumulative count crosses q * total. *)
let quantile buckets count q =
  let target = Float.of_int count *. q in
  let rec go acc = function
    | [] -> nan
    | (le, n) :: rest ->
        let acc = acc + n in
        if Float.of_int acc >= target then le else go acc rest
  in
  go 0 buckets

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp ppf () =
  List.iter
    (fun r ->
      match r.r_value with
      | Counter n -> Format.fprintf ppf "  %s%a = %d@." r.r_name pp_labels r.r_labels n
      | Gauge v -> Format.fprintf ppf "  %s%a = %g@." r.r_name pp_labels r.r_labels v
      | Histogram { buckets; count; sum } ->
          if count = 0 then
            Format.fprintf ppf "  %s%a: no observations@." r.r_name pp_labels r.r_labels
          else
            let mean = sum /. Float.of_int count in
            let p50 = quantile buckets count 0.5 and p95 = quantile buckets count 0.95 in
            let pq ppf q =
              if Float.is_finite q then Format.fprintf ppf "%g" q else Format.fprintf ppf "+inf"
            in
            Format.fprintf ppf "  %s%a: count=%d mean=%.4g p50<=%a p95<=%a@." r.r_name pp_labels
              r.r_labels count mean pq p50 pq p95)
    (snapshot ())

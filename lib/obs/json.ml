(* Hand-rolled JSON: a value type, a pretty-printer, and a
   recursive-descent parser.  Deliberately dependency-free — the session
   artifacts are written and read back by this same module, so we control
   both ends of the wire. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else
    (* %.17g round-trips every double; integral values render as "42"
       (and so decode as Int — to_float accepts both). *)
    Printf.sprintf "%.17g" f

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let indent n = if not minify then Buffer.add_string buf ("\n" ^ String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) x)
          xs;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_char buf ':';
            if not minify then Buffer.add_char buf ' ';
            go (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Parse_error of int * string

let parse_error pos fmt = Printf.ksprintf (fun m -> raise (Parse_error (pos, m))) fmt

(* Append one Unicode code point as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> parse_error !pos "expected %c, found %c" c c'
    | None -> parse_error !pos "expected %c, found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else parse_error !pos "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then parse_error !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> parse_error !pos "unterminated string"
      | Some '"' ->
          advance ();
          Buffer.contents buf
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                (* Combine a UTF-16 surrogate pair when one follows. *)
                if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n && s.[!pos] = '\\'
                   && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                end
                else cp
              in
              add_utf8 buf cp
          | Some c -> parse_error !pos "invalid escape \\%c" c
          | None -> parse_error !pos "truncated escape");
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let lit = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lit with
      | Some f ->
          (* Integral values are normalised to Int ("2.0" and "2" decode
             identically), mirroring the encoder, which renders integral
             floats without a fractional part.  The round-trip guard keeps
             out-of-int-range doubles (e.g. 1e300) as floats. *)
          let i = int_of_float f in
          if Float.is_integer f && float_of_int i = f then Int i else Float f
      | None -> parse_error start "invalid number %S" lit
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
          (* Integer literal overflowing native int: keep it as a float. *)
          match float_of_string_opt lit with
          | Some f -> Float f
          | None -> parse_error start "invalid number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> parse_error !pos "expected ',' or ']'"
          in
          List (elems [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> parse_error !pos "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> parse_error !pos "unexpected character %c" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, m) -> Error (Printf.sprintf "JSON parse error at offset %d: %s" p m)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None

(** Driver for the offline persistency analyzer ([lib/analysis]).

    Runs a bounded set of seed executions of a target with trace capture
    ({!Runtime.Trace}), then hands the recorded event streams to
    {!Analysis.Analyzer} — the reproduction's stand-in for PMRace's LLVM
    pre-pass: it bounds alias-pair coverage (the possible-pair
    denominator) and lints the traces against the persistency lifecycle
    rules.  Used standalone by [pmrace analyze] and as the fuzzer's
    static pre-pass.

    When the embedded analysis config enables the taxonomy detectors,
    each seed execution is followed by a traced recovery replay of its
    end-of-run durable image, feeding the missing-recovery-path-flush
    detector. *)

type config = {
  seeds : int;  (** distinct generated seeds to execute *)
  scheds_per_seed : int;  (** random schedules per seed *)
  master_seed : int;
  step_budget : int;
  analysis : Analysis.Analyzer.config;  (** detector gating *)
}

val default_config : config
(** v1-compatible: all second-generation detectors off. *)

val region_of_word : int -> int
(** Pool-region classifier per the mini-PMDK layout (header / root /
    heap metadata / undo logs / heap), for the cross-region ordering
    detector. *)

val full_analysis : Analysis.Analyzer.config
(** {!Analysis.Analyzer.full} with {!region_of_word} installed. *)

val full_config : config
(** {!default_config} with {!full_analysis}. *)

val run : ?cfg:config -> Target.t -> Analysis.Analyzer.result
(** Execute the seed set with trace capture and analyse the traces. *)

val record : ?cfg:config -> Target.t -> Runtime.Env.event list list
(** Execute the seed set and return the raw recorded event streams
    without analysing them — for benchmarking differently configured
    analyzers over identical traces, and for offline invariant tests. *)

val prepass :
  ?seeds:int -> ?analysis:Analysis.Analyzer.config -> Target.t -> Analysis.Analyzer.result
(** The fuzzer-facing entry point: a smaller seed set, fixed master seed
    (deterministic across fuzzer configurations).  [analysis] defaults to
    all detectors off, preserving the bit-identical seeded pre-pass. *)

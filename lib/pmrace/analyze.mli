(** Driver for the offline persistency analyzer ([lib/analysis]).

    Runs a bounded set of seed executions of a target with trace capture
    ({!Runtime.Trace}), then hands the recorded event streams to
    {!Analysis.Analyzer} — the reproduction's stand-in for PMRace's LLVM
    pre-pass: it bounds alias-pair coverage (the possible-pair
    denominator) and lints the traces against the persistency lifecycle
    rules.  Used standalone by [pmrace analyze] and as the fuzzer's
    static pre-pass. *)

type config = {
  seeds : int;  (** distinct generated seeds to execute *)
  scheds_per_seed : int;  (** random schedules per seed *)
  master_seed : int;
  step_budget : int;
}

val default_config : config

val run : ?cfg:config -> Target.t -> Analysis.Analyzer.result
(** Execute the seed set with trace capture and analyse the traces. *)

val prepass : ?seeds:int -> Target.t -> Analysis.Analyzer.result
(** The fuzzer-facing entry point: a smaller seed set, fixed master seed
    (deterministic across fuzzer configurations). *)

(* Online invariant-violation monitor.

   Wraps an {!Analysis.Invariants.checker} as a campaign listener: every
   instrumented event steps the checker, and each violation whose
   invariant has not fired before (per worker) captures the durable pool
   image at the violating store — the crash image the post-failure
   validator will boot.  Hits accumulate until [drain], which the worker
   calls after committing the campaign, outside the hub lock. *)

module Inv = Analysis.Invariants

type hit = {
  h_inv : Inv.inv;
  h_label : string;
  h_site : Runtime.Instr.t;
  h_addr : int;
  h_words : int list;
  h_image : Pmem.Pool.image option;
  h_crash : Pmem.Crash_images.state option;
}

type t = {
  checker : Inv.checker;
  seen : (string, unit) Hashtbl.t; (* labels already captured, per worker *)
  mutable hits : hit list; (* current campaign's new hits, reversed *)
}

let create specs = { checker = Inv.checker specs; seen = Hashtbl.create 16; hits = [] }

let attach t (env : Runtime.Env.t) =
  Inv.reset t.checker;
  Runtime.Env.add_listener env (fun ev ->
      Inv.step t.checker
        ~emit:(fun (v : Inv.violation) ->
          let label = Inv.label v.v_inv in
          if not (Hashtbl.mem t.seen label) then begin
            Hashtbl.add t.seen label ();
            let crash = Some (Pmem.Crash_images.capture env.Runtime.Env.pool) in
            t.hits <-
              {
                h_inv = v.v_inv;
                h_label = label;
                h_site = v.v_site;
                h_addr = v.v_addr;
                h_words = v.v_words;
                h_image = Option.map Pmem.Crash_images.base crash;
                h_crash = crash;
              }
              :: t.hits
          end)
        ev)

let drain t =
  let hits = List.rev t.hits in
  t.hits <- [];
  hits

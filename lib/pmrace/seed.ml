(* Fuzzing inputs: operation sequences distributed over worker threads.

   PM systems are in-memory stores with interactive APIs, so PMRace's input
   generator works at the granularity of *operations* rather than raw bytes
   (§4.5).  A seed assigns each worker thread a sequence of operations; the
   driver threads replay them concurrently. *)

module Rng = Sched.Rng

type op =
  | Put of { key : int; value : int }
  | Get of { key : int }
  | Update of { key : int; value : int }
  | Delete of { key : int }
  | Incr of { key : int; delta : int }
  | Decr of { key : int; delta : int }
  | Append of { key : int; value : int }
  | Prepend of { key : int; value : int }
  | Scan of { key : int; count : int }
  | Cas of { key : int; value : int; token : int }
  | Touch of { key : int; exptime : int }
  | Flush_all
  | Stats

type op_kind =
  | KPut
  | KGet
  | KUpdate
  | KDelete
  | KIncr
  | KDecr
  | KAppend
  | KPrepend
  | KScan
  | KCas
  | KTouch
  | KFlushAll
  | KStats

let kind_of_op = function
  | Put _ -> KPut
  | Get _ -> KGet
  | Update _ -> KUpdate
  | Delete _ -> KDelete
  | Incr _ -> KIncr
  | Decr _ -> KDecr
  | Append _ -> KAppend
  | Prepend _ -> KPrepend
  | Scan _ -> KScan
  | Cas _ -> KCas
  | Touch _ -> KTouch
  | Flush_all -> KFlushAll
  | Stats -> KStats

type profile = {
  supported : op_kind list;
  key_range : int;
  value_range : int;
  threads : int;
  ops_per_thread : int;
}

let default_profile =
  {
    supported = [ KPut; KGet; KUpdate; KDelete ];
    key_range = 32;
    value_range = 1000;
    threads = 4;
    ops_per_thread = 6;
  }

type t = {
  sid : int;
  threads : op array array;
  (* Static-analysis priority: how many uncovered statically-possible
     alias pairs this seed's executions have touched.  Written by the
     fuzzer after each campaign; higher-priority seeds are preferred as
     mutation parents. *)
  mutable priority : int;
}

let key_of = function
  | Put { key; _ }
  | Get { key }
  | Update { key; _ }
  | Delete { key }
  | Incr { key; _ }
  | Decr { key; _ }
  | Append { key; _ }
  | Prepend { key; _ }
  | Scan { key; _ }
  | Cas { key; _ }
  | Touch { key; _ } -> key
  | Flush_all | Stats -> 0

let gen_op rng profile ~near =
  let key =
    (* Prioritise keys similar to already-used ones: shared accesses and PM
       alias pairs need threads to collide on the same data (§4.5). *)
    match near with
    | Some k when Rng.int rng 100 < 70 ->
        (k + Rng.int rng 3 - 1 + profile.key_range) mod profile.key_range
    | Some _ | None -> Rng.int rng profile.key_range
  in
  let value = 1 + Rng.int rng profile.value_range in
  match Rng.pick rng profile.supported with
  | KPut -> Put { key; value }
  | KGet -> Get { key }
  | KUpdate -> Update { key; value }
  | KDelete -> Delete { key }
  | KIncr -> Incr { key; delta = 1 + Rng.int rng 9 }
  | KDecr -> Decr { key; delta = 1 + Rng.int rng 9 }
  | KAppend -> Append { key; value }
  | KPrepend -> Prepend { key; value }
  | KScan -> Scan { key; count = 1 + Rng.int rng 7 }
  | KCas -> Cas { key; value; token = Rng.int rng 1000 }
  | KTouch -> Touch { key; exptime = Rng.int rng 100 }
  | KFlushAll -> Flush_all
  | KStats -> Stats

(* Seed ids key per-worker scratch tables (skip stores, touched-site maps)
   and appear in reproduction provenance, so they must stay unique when
   several worker domains generate seeds concurrently (§5). *)
let seed_counter = Atomic.make 0

let make threads = { sid = 1 + Atomic.fetch_and_add seed_counter 1; threads; priority = 0 }

let gen rng profile =
  let near = ref None in
  let gen_thread _ =
    Array.init profile.ops_per_thread (fun _ ->
        let op = gen_op rng profile ~near:!near in
        near := Some (key_of op);
        op)
  in
  make (Array.init profile.threads gen_thread)

let threads t = t.threads
let all_ops t = Array.to_list t.threads |> List.concat_map Array.to_list
let op_count t = Array.fold_left (fun n ops -> n + Array.length ops) 0 t.threads
let id t = t.sid
let priority t = t.priority
let set_priority t p = t.priority <- p

(* Text rendering in the memcached protocol, used by the driver of
   memcached-pmem and by the Table 4 mutator comparison. *)
let render_op = function
  | Put { key; value } ->
      let data = string_of_int value in
      Printf.sprintf "set k%d 0 0 %d\r\n%s\r\n" key (String.length data) data
  | Get { key } -> Printf.sprintf "get k%d\r\n" key
  | Update { key; value } ->
      let data = string_of_int value in
      Printf.sprintf "replace k%d 0 0 %d\r\n%s\r\n" key (String.length data) data
  | Delete { key } -> Printf.sprintf "delete k%d\r\n" key
  | Incr { key; delta } -> Printf.sprintf "incr k%d %d\r\n" key delta
  | Decr { key; delta } -> Printf.sprintf "decr k%d %d\r\n" key delta
  | Append { key; value } ->
      let data = string_of_int value in
      Printf.sprintf "append k%d 0 0 %d\r\n%s\r\n" key (String.length data) data
  | Prepend { key; value } ->
      let data = string_of_int value in
      Printf.sprintf "prepend k%d 0 0 %d\r\n%s\r\n" key (String.length data) data
  | Scan { key; count } -> Printf.sprintf "bget k%d %d\r\n" key count
  | Cas { key; value; token } ->
      let data = string_of_int value in
      Printf.sprintf "cas k%d 0 0 %d %d\r\n%s\r\n" key (String.length data) token data
  | Touch { key; exptime } -> Printf.sprintf "touch k%d %d\r\n" key exptime
  | Flush_all -> "flush_all\r\n"
  | Stats -> "stats\r\n" 

(* Content fingerprint: a 64-bit FNV-1a over the rendered operation text,
   with thread boundaries folded in explicitly so [ [|a; b|] ] and
   [ [|a ^ b|] ] cannot collide by concatenation.  The hash depends only
   on the operations themselves — never on seed ids, Instr site-id layout
   or any other per-process state — so the same seed content hashes
   identically in every worker process.  The fleet corpus store keys
   entries by this value. *)
let fingerprint t =
  let open Int64 in
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let feed_byte b = h := mul (logxor !h (of_int b)) prime in
  let feed_string s = String.iter (fun c -> feed_byte (Char.code c)) s in
  Array.iter
    (fun ops ->
      feed_byte 0xFE (* thread separator *);
      Array.iter
        (fun op ->
          feed_byte 0xFD (* op separator *);
          feed_string (render_op op))
        ops)
    t.threads;
  !h

let pp_op ppf op =
  match op with
  | Put { key; value } -> Fmt.pf ppf "put(%d,%d)" key value
  | Get { key } -> Fmt.pf ppf "get(%d)" key
  | Update { key; value } -> Fmt.pf ppf "update(%d,%d)" key value
  | Delete { key } -> Fmt.pf ppf "delete(%d)" key
  | Incr { key; delta } -> Fmt.pf ppf "incr(%d,%d)" key delta
  | Decr { key; delta } -> Fmt.pf ppf "decr(%d,%d)" key delta
  | Append { key; value } -> Fmt.pf ppf "append(%d,%d)" key value
  | Prepend { key; value } -> Fmt.pf ppf "prepend(%d,%d)" key value
  | Scan { key; count } -> Fmt.pf ppf "scan(%d,%d)" key count
  | Cas { key; value; token } -> Fmt.pf ppf "cas(%d,%d,%d)" key value token
  | Touch { key; exptime } -> Fmt.pf ppf "touch(%d,%d)" key exptime
  | Flush_all -> Fmt.pf ppf "flush_all"
  | Stats -> Fmt.pf ppf "stats" 

let pp ppf t =
  Fmt.pf ppf "seed#%d" t.sid;
  Array.iteri (fun i ops -> Fmt.pf ppf " t%d:[%a]" i Fmt.(array ~sep:comma pp_op) ops) t.threads

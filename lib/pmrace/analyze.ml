(* Driver for the offline persistency analyzer: run seed executions with
   trace capture, feed the traces to Analysis.Analyzer.

   The executions use plain random scheduling (every instrumented
   operation a preemption point) so cross-thread publishes show up in the
   traces; the analyzer itself is entirely offline.  A private RNG keeps
   the driver deterministic and independent of the fuzzer's streams.

   When the analysis config enables the taxonomy detectors, each seed
   execution is followed by a recovery replay: the post-crash image of
   the finished run is booted and the target's recovery code traced, so
   the missing-recovery-path-flush detector sees real recovery traces. *)

module Rng = Sched.Rng
module Trace = Runtime.Trace

type config = {
  seeds : int;
  scheds_per_seed : int;
  master_seed : int;
  step_budget : int;
  analysis : Analysis.Analyzer.config;
}

let default_config =
  {
    seeds = 6;
    scheds_per_seed = 2;
    master_seed = 7;
    step_budget = 60_000;
    analysis = Analysis.Analyzer.default_config;
  }

(* Pool regions per the mini-PMDK layout, for the cross-region
   durability-ordering detector: header / root / heap metadata / undo
   logs / heap data. *)
let region_of_word w =
  if w < Pmdk.Layout.root_base then 0
  else if w < Pmdk.Layout.heap_meta then 1
  else if w < Pmdk.Layout.log_base then 2
  else if w < Pmdk.Layout.heap_base then 3
  else 4

let full_analysis = { Analysis.Analyzer.full with region_of = Some region_of_word }
let full_config = { default_config with analysis = full_analysis }

let m_executions = lazy (Obs.Metrics.counter "analyze_executions_total")
let m_recoveries = lazy (Obs.Metrics.counter "analyze_recovery_executions_total")
let m_duration = lazy (Obs.Metrics.gauge "analyze_duration_seconds")

(* Iterate the driver's seed executions, handing each completed campaign
   result (with its recorded trace) to [f]. *)
let iter_executions ?(cfg = default_config) (target : Target.t) f =
  let rng = Rng.create cfg.master_seed in
  (* One engine for all seed executions: expensive-init targets get the
     persistent context (checkpoint + O(touched) resets), others the
     legacy fresh construction.  The trace is a transient listener, so
     each checkout starts with it detached. *)
  let engine = Engine.create ~capture_images:false target in
  for _ = 1 to cfg.seeds do
    let seed = Seed.gen rng target.Target.profile in
    for _ = 1 to cfg.scheds_per_seed do
      let sched_seed = Rng.int rng 1_000_000_000 in
      let trace = Trace.create () in
      let input =
        Campaign.input ~sched_seed ~policy:Campaign.Random_sched ~step_budget:cfg.step_budget
          target seed
      in
      let res = Campaign.run ~engine ~listeners:[ Trace.attach trace ] input in
      Obs.Metrics.incr (Lazy.force m_executions);
      f res trace
    done
  done

let run ?(cfg = default_config) (target : Target.t) =
  let t0 = Obs.Clock.now () in
  let az = Analysis.Analyzer.create ~cfg:cfg.analysis () in
  let taxonomy = cfg.analysis.Analysis.Analyzer.taxonomy in
  iter_executions ~cfg target (fun (res : Campaign.result) trace ->
      Analysis.Analyzer.absorb_trace az trace;
      if taxonomy then begin
        (* Recovery replay: boot the end-of-run durable image and trace
           the target's recovery path, so its own flush discipline is
           linted too (missing-recovery-flush residue). *)
        let image = Pmem.Pool.crash_image res.Campaign.env.Runtime.Env.pool in
        let rtrace = Trace.create () in
        let (_ : Post_failure.recovery_result) =
          Post_failure.run_recovery ~listeners:[ Trace.attach rtrace ] target image
        in
        Obs.Metrics.incr (Lazy.force m_recoveries);
        Analysis.Analyzer.absorb_recovery az (Trace.events rtrace)
      end);
  Obs.Metrics.set (Lazy.force m_duration) (Obs.Clock.elapsed t0);
  Analysis.Analyzer.result az

(* Record the driver's seed executions as raw event streams, without
   analysing them — the bench harness replays these through differently
   configured analyzers, and tests mine/check invariants offline. *)
let record ?cfg (target : Target.t) =
  let traces = ref [] in
  iter_executions ?cfg target (fun _res trace -> traces := Trace.events trace :: !traces);
  List.rev !traces

let prepass ?(seeds = 4) ?(analysis = Analysis.Analyzer.default_config) target =
  run ~cfg:{ default_config with seeds; master_seed = 11; analysis } target

(* Driver for the offline persistency analyzer: run seed executions with
   trace capture, feed the traces to Analysis.Analyzer.

   The executions use plain random scheduling (every instrumented
   operation a preemption point) so cross-thread publishes show up in the
   traces; the analyzer itself is entirely offline.  A private RNG keeps
   the driver deterministic and independent of the fuzzer's streams. *)

module Rng = Sched.Rng
module Trace = Runtime.Trace

type config = {
  seeds : int;
  scheds_per_seed : int;
  master_seed : int;
  step_budget : int;
}

let default_config = { seeds = 6; scheds_per_seed = 2; master_seed = 7; step_budget = 60_000 }

let m_executions = lazy (Obs.Metrics.counter "analyze_executions_total")
let m_duration = lazy (Obs.Metrics.gauge "analyze_duration_seconds")

let run ?(cfg = default_config) (target : Target.t) =
  let t0 = Obs.Clock.now () in
  let rng = Rng.create cfg.master_seed in
  let az = Analysis.Analyzer.create () in
  (* One engine for all seed executions: expensive-init targets get the
     persistent context (checkpoint + O(touched) resets), others the
     legacy fresh construction.  The trace is a transient listener, so
     each checkout starts with it detached. *)
  let engine = Engine.create ~capture_images:false target in
  for _ = 1 to cfg.seeds do
    let seed = Seed.gen rng target.Target.profile in
    for _ = 1 to cfg.scheds_per_seed do
      let sched_seed = Rng.int rng 1_000_000_000 in
      let trace = Trace.create () in
      let input =
        Campaign.input ~sched_seed ~policy:Campaign.Random_sched ~step_budget:cfg.step_budget
          target seed
      in
      ignore (Campaign.run ~engine ~listeners:[ Trace.attach trace ] input);
      Obs.Metrics.incr (Lazy.force m_executions);
      Analysis.Analyzer.absorb_trace az trace
    done
  done;
  Obs.Metrics.set (Lazy.force m_duration) (Obs.Clock.elapsed t0);
  Analysis.Analyzer.result az

let prepass ?(seeds = 4) target =
  run ~cfg:{ default_config with seeds; master_seed = 11 } target

(** The shared side of the §5 worker pool, behind a domain-safe facade.

    Fuzzing workers run on OCaml 5 domains and share this hub the way
    PMRace's 13 worker processes share a coverage bitmap: all cross-worker
    state — alias/branch coverage, the shared-access priority queue, the
    report and its candidate tables, provenance, the timeline, and the
    campaign budget — lives here, serialised by one mutex.

    The protocol keeps campaign execution lock-free: workers {!reserve} a
    budget slot, run the campaign against a private {!delta}, and
    {!commit} the delta at the campaign boundary.  Merges are set unions
    and counter additions and the report deduplicates by bug identity, so
    the resulting unique-bug set is independent of commit interleaving,
    and one worker reproduces the sequential fuzzer bit for bit. *)

type provenance = {
  p_seed : Seed.t;
  p_sched_seed : int;
  p_policy : string;  (** human-readable policy label for reports *)
  p_spec : Campaign.policy_spec;
      (** the policy itself, serialisable — [pmrace replay] rebuilds the
          campaign input from it *)
}
(** The exact inputs that replay one campaign. *)

type timeline_point = {
  tp_campaign : int;
  tp_time : float;  (** seconds since session start *)
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

type delta
(** A worker's private per-campaign coverage/queue accumulator; campaign
    listeners write to it without synchronisation. *)

type t

val create : ?static:Analysis.Alias_pairs.t -> max_campaigns:int -> unit -> t

val budget_left : t -> bool
(** Advisory lock-free check for worker loop conditions; {!reserve} is the
    authoritative check-and-claim, so the budget is never overshot. *)

val reserve : t -> provenance -> int option
(** Claim the next campaign slot and record its provenance; [None] when
    the budget is exhausted (the worker should wind down). *)

val fresh_delta : unit -> delta

val delta_listeners : delta -> (Runtime.Env.t -> unit) list
(** Campaign listeners feeding the delta's private coverage structures
    (transient-listener style, fresh alias tracker per attach). *)

val delta_handlers : delta -> (Runtime.Env.event -> unit) list
(** The delta's raw event handlers, for installation in a worker's
    pre-bound listener array ({!Runtime.Env.install_bound}).  The alias
    handler shares the delta's tracker, so call {!reset_delta} between
    campaigns. *)

val reset_delta : delta -> unit
(** Empty a delta (coverage structures and alias tracker) for reuse —
    observationally equivalent to a {!fresh_delta}. *)

val merge_delta_into : src:delta -> dst:delta -> unit
(** Fold one delta into another (set unions / counter additions — the same
    algebra the shared-side merge uses).  Fleet workers accumulate each
    campaign delta into a "wire" delta before {!reset_delta}; the wire
    delta is what ships to the coordinator. *)

val delta_to_json : delta -> Obs.Json.t
(** Wire/store codec: the delta's coverage structures with sites encoded
    by {e name}, so a delta serialised in one worker process decodes and
    merges correctly in the coordinator regardless of site-id layout. *)

val delta_of_json : Obs.Json.t -> (delta, string) result

type trace = {
  tr_key : int64;
      (** the campaign's trace hash salted with the seed fingerprint, so
          cross-seed hash collisions cannot suppress a genuinely new
          finding *)
  tr_hash : int64;  (** raw trace hash, kept per campaign for provenance *)
  tr_pruned : int;  (** sleep-set-suppressed picks this campaign *)
  tr_forced : int;  (** forced wakes this campaign *)
}
(** One POR campaign's Mazurkiewicz-trace class and pruning provenance,
    registered at {!commit}. *)

type commit_result = {
  c_improved : bool;  (** the merge contributed new coverage bits *)
  c_new_findings : Report.finding list;
  c_new_sync : Report.sync_finding list;
  c_new_pairs : (int * int) list;
      (** (write, read) site pairs first achieved by this merge, as raw
          instruction ids — the fuzzer turns them into
          [new_alias_pair] events *)
  c_alias_bits : int;  (** shared coverage after this merge *)
  c_branch_bits : int;
  c_first_trace : bool;
      (** first sighting of [trace]'s class — only then should the worker
          spend post-failure validation.  Always [true] when the commit
          carried no trace (non-POR campaigns). *)
}

val commit :
  t ->
  ?trace:trace ->
  campaign:int ->
  delta:delta ->
  Runtime.Env.t ->
  hung:bool ->
  hang_info:string ->
  commit_result
(** The campaign-boundary merge: fold the delta into shared coverage,
    absorb the campaign's checker results into the report, extend the
    timeline — and, when the campaign ran under POR, register its trace
    class and pruning counters in the same critical section (one lock
    acquisition per campaign boundary, not two).  The returned new
    findings are then validated by the caller outside the lock, gated on
    [c_first_trace]. *)

type por_totals = {
  pt_campaigns : int;  (** campaigns run under POR *)
  pt_pruned : int;  (** sleep-set-suppressed scheduler picks, summed *)
  pt_forced_wakes : int;
  pt_unique_traces : int;  (** distinct (trace hash, seed) classes seen *)
  pt_dup_traces : int;  (** campaigns whose validation was skipped as redundant *)
}

val por_totals : t -> por_totals option
(** Aggregate pruning counters; [None] when no campaign ran under POR.
    Single-domain accessor (see below). *)

val trace_hash : t -> campaign:int -> int64 option
(** The campaign's canonical trace hash, when it ran under POR.
    Single-domain accessor. *)

val trace_hashes : t -> (int, int64) Hashtbl.t
(** All recorded trace hashes by campaign index, for artifact assembly.
    Single-domain accessor. *)

val record_invariant :
  t ->
  campaign:int ->
  label:string ->
  kind:string ->
  site:string ->
  addr:int ->
  Report.inv_finding option
(** Record a mined-invariant violation (locked); returns the finding only
    on the first sighting of the label across all workers — the
    discovering worker then validates it outside the lock. *)

val queue_entries : t -> Shared_queue.entry list
(** Snapshot of the shared-access priority queue (locked). *)

val rescore_seed : t -> sites:(int, unit) Hashtbl.t -> Seed.t -> unit
(** Static-pre-pass seed re-scoring (no-op without a pre-pass): refresh
    achieved alias-pair marks from shared coverage and set the seed's
    priority to the number of uncovered possible pairs it touches.
    [sites] is the owning worker's private touched-site map. *)

val inter_unique : t -> int
(** Current unique inter-thread inconsistency count (locked). *)

val completed : t -> int
(** Campaigns committed so far. *)

val elapsed : t -> float
val static : t -> Analysis.Alias_pairs.t option

(** {2 Single-domain accessors}

    Unsynchronised views for pre-spawn setup (installing the static
    denominator and lint findings) and post-join session assembly.  Only
    use while no worker domain is live. *)

val alias : t -> Alias_cov.t
val branch : t -> Branch_cov.t
val report : t -> Report.t
val provenance : t -> (int, provenance) Hashtbl.t

val timeline : t -> timeline_point list
(** The coverage timeline ordered by campaign index (chronological for a
    sequential session). *)

(* Persistent-mode execution engine (the throughput half of Figure 10).

   One engine per worker domain owns a reusable execution context that is
   *reset*, not recreated, between campaigns:

   - the pool is rewound with [Pmem.Pool.reset_to_snapshot] — O(touched
     words), driven by the pool's journal, instead of the O(pool) image
     blits of [Pool.restore] (let alone re-running the target's
     initialisation);
   - the environment is rewound with [Runtime.Env.reset] — fresh checkers,
     cleared DRAM/taint, reseeded eviction RNG — while the pre-bound
     listener array installed once at engine creation survives;
   - the target re-annotates, exactly as it would a fresh environment.

   Targets with [expensive_init = false] (e.g. the libpmem-style mappings
   where checkpoints bring nothing, per Figure 10) instead get the legacy
   fresh-environment construction behind the same [checkout] API.

   Determinism: a checkout is observationally identical to the legacy
   per-campaign environment setup — same images, same fresh checkers, same
   eviction-RNG stream, same annotation pass — so seeded sessions are
   bit-identical whichever mode runs them. *)

module Env = Runtime.Env

type mode = Persistent of { snapshot : Pmem.Pool.snapshot; env : Env.t } | Fresh

type t = {
  target : Target.t;
  capture_images : bool;
  evict_prob : float;
  eadr : bool;
  mode : mode;
  bound : (Env.event -> unit) array;
  mutable checkouts : int;
  mutable last_reset_touched : int;
  mutable por : Por.t option;
      (* lazily-created POR harness, reused (reset) across campaigns like
         the execution context itself *)
}

(* Initialise a pool once and capture the checkpoint the fast path reuses. *)
let prepare_snapshot (target : Target.t) =
  let env = Env.create ~capture_images:false ~pool_words:target.pool_words () in
  target.init env;
  Pmem.Pool.quiesce env.pool;
  Pmem.Pool.snapshot env.pool

(* How many words each persistent-mode reset had to undo — the direct
   measure of the O(touched) claim (compare with the pool size). *)
let m_reset_touched =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 8.; 32.; 128.; 512.; 2048.; 8192.; 32768. |]
       "engine_reset_touched_words")

let create ?(capture_images = true) ?(evict_prob = 0.) ?(eadr = false) ?(bound = [||]) ?snapshot
    ?use_checkpoint (target : Target.t) =
  let use_checkpoint = Option.value ~default:target.Target.expensive_init use_checkpoint in
  let mode =
    if use_checkpoint then begin
      let snapshot =
        match snapshot with Some s -> s | None -> prepare_snapshot target
      in
      let env = Env.create ~capture_images ~evict_prob ~eadr ~pool_words:target.pool_words () in
      (* O(pool) once per worker: establishes the snapshot as this pool's
         baseline, so every subsequent checkout is O(touched). *)
      Pmem.Pool.restore env.pool snapshot;
      Env.install_bound env bound;
      Persistent { snapshot; env }
    end
    else Fresh
  in
  {
    target;
    capture_images;
    evict_prob;
    eadr;
    mode;
    bound;
    checkouts = 0;
    last_reset_touched = 0;
    por = None;
  }

(* A reset POR harness sized for at least [nthreads] fibers and the
   target's pool (so the flat Foata-layer tables never grow or collide
   on real footprints).  Grown (by replacement) when a seed spawns more
   threads than any before it; reset is O(fibers) — the layer tables
   reset by generation bump, exactly like the pool's pending index. *)
let por_harness t ~nthreads =
  match t.por with
  | Some h when Por.capacity h >= nthreads ->
      Por.reset h;
      h
  | _ ->
      let h = Por.create ~pool_words:t.target.Target.pool_words ~nthreads () in
      t.por <- Some h;
      h

let checkout t =
  t.checkouts <- t.checkouts + 1;
  match t.mode with
  | Persistent { snapshot; env } ->
      let touched = Pmem.Pool.touched_words env.pool in
      t.last_reset_touched <- touched;
      if Obs.Metrics.enabled () then
        Obs.Metrics.observe (Lazy.force m_reset_touched) (float_of_int touched);
      Pmem.Pool.reset_to_snapshot env.pool snapshot;
      Env.reset ~capture_images:t.capture_images env;
      t.target.annotate env;
      env
  | Fresh ->
      let env =
        Env.create ~capture_images:t.capture_images ~evict_prob:t.evict_prob ~eadr:t.eadr
          ~pool_words:t.target.pool_words ()
      in
      t.target.init env;
      Pmem.Pool.quiesce env.pool;
      Env.reset_checkers ~capture_images:t.capture_images env;
      t.target.annotate env;
      (* Installed only after initialisation: bound listeners must not see
         init events, matching the legacy attach-after-setup order. *)
      Env.install_bound env t.bound;
      env

let persistent t = match t.mode with Persistent _ -> true | Fresh -> false
let snapshot t = match t.mode with Persistent p -> Some p.snapshot | Fresh -> None
let checkouts t = t.checkouts
let last_reset_touched t = t.last_reset_touched

(** The priority queue of shared PM data accesses (§4.2.2).

    Accesses observed across executions are grouped by address; addresses
    loaded and stored by different threads become preemption targets,
    prioritised by access frequency (the paper's "hot shared data first"
    principle). *)

module Instr = Runtime.Instr

type t

type entry = {
  addr : int;
  loads : Instr.t list;  (** sync points: loads of this address *)
  stores : Instr.t list;  (** signal sources: stores to this address *)
  hits : int;
}

val create : unit -> t
val observe_load : t -> addr:int -> instr:Instr.t -> tid:int -> unit
val observe_store : t -> addr:int -> instr:Instr.t -> tid:int -> unit
val handler : t -> Runtime.Env.event -> unit
(** The event handler behind {!attach}, for pre-bound listener arrays. *)

val clear : t -> unit
(** Empty the queue so a worker-local delta can be reused across
    campaigns. *)

val attach : t -> Runtime.Env.t -> unit
(** Subscribe to an execution's access events. *)

val merge_into : src:t -> t -> unit
(** Fold [src] (a worker's per-campaign delta) into a shared queue: union
    the per-address instruction/thread sets and sum hit counts.  Not
    itself synchronised — callers serialise merges. *)

val entries : t -> entry list
(** Shared-data entries, most frequently accessed first. *)

val tracked_addresses : t -> int
val pp_entry : Format.formatter -> entry -> unit

val to_json : t -> Obs.Json.t
(** Wire/store codec (fleet mode): the full per-address records (sites by
    name, thread-id sets, hit counts), so decode-then-{!merge_into} is
    equivalent to merging the original queue. *)

val of_json : Obs.Json.t -> (t, string) result
(** Decode; re-registers site names via {!Runtime.Instr.site}. *)

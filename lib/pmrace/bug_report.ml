(* Detailed bug reports (§4.1 step 6): for each inconsistency that survives
   post-failure validation, render the sites involved (our analogue of the
   paper's stack traces), the validation verdict, and the exact inputs —
   operation sequence, scheduler seed, interleaving policy — that replay
   the buggy execution deterministically. *)

module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates
module Instr = Runtime.Instr

let pp_ops ppf (seed : Seed.t) =
  Array.iteri
    (fun ti ops ->
      Fmt.pf ppf "    thread %d: %a@." ti Fmt.(array ~sep:(any "; ") Seed.pp_op) ops)
    (Seed.threads seed)

let pp_verdict_line ppf = function
  | Some (Post_failure.Bug { recovery_hang = true; image_index = 0 }) ->
      Fmt.pf ppf "BUG — the recovery itself hangs on the crash state"
  | Some (Post_failure.Bug { recovery_hang = true; image_index = i }) ->
      Fmt.pf ppf "BUG — the recovery itself hangs on enumerated crash image #%d" i
  | Some (Post_failure.Bug { recovery_hang = false; image_index = 0 }) ->
      Fmt.pf ppf "BUG — not fixed by the immediate recovery"
  | Some (Post_failure.Bug { recovery_hang = false; image_index = i }) ->
      Fmt.pf ppf "BUG — not fixed, reproduced on enumerated crash image #%d" i
  | Some Post_failure.Validated_fp -> Fmt.pf ppf "false positive — fixed during recovery"
  | Some Post_failure.Whitelisted_fp -> Fmt.pf ppf "false positive — whitelisted benign read"
  | None -> Fmt.pf ppf "unvalidated"

let pp_provenance ppf (session : Fuzzer.session) campaign =
  match Hashtbl.find_opt session.Fuzzer.provenance campaign with
  | None -> Fmt.pf ppf "  (no provenance recorded)@."
  | Some p ->
      Fmt.pf ppf "  reproduce with : scheduler seed %d, %s@." p.Fuzzer.p_sched_seed
        p.Fuzzer.p_policy;
      Fmt.pf ppf "  program input  :@.%a" pp_ops p.Fuzzer.p_seed

let pp_finding ppf (session : Fuzzer.session) (f : Report.finding) =
  let c = f.inc.Checkers.source in
  Fmt.pf ppf "%a Inconsistency@." Candidates.pp_kind c.Candidates.kind;
  Fmt.pf ppf "  non-persisted write : %s (thread %d)@." (Instr.name c.write_instr)
    c.Candidates.write_tid;
  Fmt.pf ppf "  racy read           : %s (thread %d)@." (Instr.name c.read_instr)
    c.Candidates.read_tid;
  Fmt.pf ppf "  durable side effect : %s%s%s@."
    (Instr.name f.inc.Checkers.eff_instr)
    (if f.inc.Checkers.addr_flow then " [address flow]" else " [value flow]")
    (if f.inc.Checkers.external_effect then " [external]"
     else Printf.sprintf ", PM word %d" f.inc.Checkers.eff_addr);
  Fmt.pf ppf "  crash state        : %s@."
    (match f.inc.Checkers.image with
    | Some _ -> "captured at the moment the side effect persisted"
    | None -> "not captured");
  Fmt.pf ppf "  validation         : %a@." pp_verdict_line f.verdict;
  Fmt.pf ppf "  first seen         : campaign %d@." f.found_at;
  pp_provenance ppf session f.found_at

let pp_sync_finding ppf (session : Fuzzer.session) (f : Report.sync_finding) =
  Fmt.pf ppf "PM Synchronization Inconsistency@.";
  Fmt.pf ppf "  annotated variable : %s (PM word %d)@." f.ev.Checkers.var.Checkers.sv_name
    f.ev.Checkers.sy_addr;
  Fmt.pf ppf "  persisted value    : %Ld (expected %Ld after recovery)@." f.ev.Checkers.sy_value
    f.ev.Checkers.var.Checkers.sv_init;
  Fmt.pf ppf "  validation         : %a@." pp_verdict_line f.sync_verdict;
  Fmt.pf ppf "  first seen         : campaign %d@." f.sync_found_at;
  pp_provenance ppf session f.sync_found_at

(* Persistency-lint findings from the offline analyzer, as numbered
   reports in the same style as the dynamic ones. *)
let pp_lint_finding ppf (f : Analysis.Lint.finding) =
  Fmt.pf ppf "%s [%a]@." (Analysis.Lint.kind_label f.f_kind) Analysis.Lint.pp_severity f.f_severity;
  (match f.f_write_site with
  | Some w -> Fmt.pf ppf "  store site         : %s@." (Instr.name w)
  | None -> ());
  Fmt.pf ppf "  %s : %s@."
    (match f.f_kind with
    | Analysis.Lint.Unflushed_publish | Analysis.Lint.Unfenced_publish -> "racy read         "
    | Analysis.Lint.Redundant_flush | Analysis.Lint.Double_flush -> "flush site        "
    | Analysis.Lint.Redundant_fence -> "fence site        "
    | Analysis.Lint.Cross_region_order -> "persisted site    "
    | Analysis.Lint.Unflushed_at_exit | Analysis.Lint.Missing_recovery_flush ->
        "dirty store site  ")
    (Instr.name f.f_site);
  if f.f_addr >= 0 then Fmt.pf ppf "  sample address     : PM word %d@." f.f_addr;
  Fmt.pf ppf "  occurrences        : %d (first in execution %d)@." f.f_count f.f_first_exec

let render_lint ppf (findings : Analysis.Lint.finding list) =
  if findings = [] then Fmt.pf ppf "no lint findings.@."
  else
    List.iteri
      (fun i f ->
        Fmt.pf ppf "--- finding %d ---@." (i + 1);
        pp_lint_finding ppf f)
      findings

(* All surviving bugs of a session, most recently confirmed last. *)
let render_bugs ppf (session : Fuzzer.session) =
  let findings =
    List.filter
      (fun (f : Report.finding) ->
        match f.verdict with Some (Post_failure.Bug _) -> true | _ -> false)
      (Report.findings session.Fuzzer.report)
    |> List.sort (fun (a : Report.finding) b -> compare a.found_at b.found_at)
  in
  let syncs =
    List.filter
      (fun (f : Report.sync_finding) ->
        match f.sync_verdict with Some (Post_failure.Bug _) -> true | _ -> false)
      (Report.sync_findings session.Fuzzer.report)
  in
  if findings = [] && syncs = [] then Fmt.pf ppf "no surviving bugs.@."
  else begin
    List.iteri
      (fun i f ->
        Fmt.pf ppf "--- report %d ---@." (i + 1);
        pp_finding ppf session f)
      findings;
    List.iteri
      (fun i f ->
        Fmt.pf ppf "--- report %d ---@." (List.length findings + i + 1);
        pp_sync_finding ppf session f)
      syncs
  end

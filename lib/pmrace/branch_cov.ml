(* Conventional branch coverage: the set of instrumented branch sites
   executed so far.  PMRace combines this with PM alias pair coverage as
   fuzzing feedback (§4.2.3). *)

module J' = Obs.Json

type t = { hits : (int, unit) Hashtbl.t }

let create () = { hits = Hashtbl.create 128 }

let observe t instr =
  let id = Runtime.Instr.to_int instr in
  if Hashtbl.mem t.hits id then false
  else begin
    Hashtbl.add t.hits id ();
    true
  end

let count t = Hashtbl.length t.hits
let covered t instr = Hashtbl.mem t.hits (Runtime.Instr.to_int instr)

(* Union a worker-local delta into a shared map (campaign-boundary merge,
   serialised by the fuzzer's hub). *)
let merge_into ~src dst = Hashtbl.iter (fun id () -> Hashtbl.replace dst.hits id ()) src.hits

let handler t = function
  | Runtime.Env.Ev_branch { instr; _ } -> ignore (observe t instr)
  | Runtime.Env.Ev_load _ | Runtime.Env.Ev_store _ | Runtime.Env.Ev_movnt _
  | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ -> ()

(* Empty the map so a worker-local delta can be reused across campaigns. *)
let clear t = Hashtbl.reset t.hits

let attach t env = Runtime.Env.add_listener env (handler t)

(* Wire/store codec (fleet mode): covered branch sites by name, sorted for
   a canonical encoding; decode re-registers the names. *)
let to_json t =
  J'.List
    (Hashtbl.fold (fun id () acc -> Runtime.Instr.name (Runtime.Instr.of_int id) :: acc) t.hits []
    |> List.sort compare
    |> List.map (fun n -> J'.String n))

let of_json j =
  match J'.to_list j with
  | None -> Error "Branch_cov: expected list"
  | Some sites -> (
      try
        let t = create () in
        List.iter
          (fun s ->
            match J'.to_str s with
            | Some name -> ignore (observe t (Runtime.Instr.site name))
            | None -> failwith "Branch_cov: expected site name string")
          sites;
        Ok t
      with Failure msg -> Error msg)

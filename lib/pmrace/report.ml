(* Aggregation of findings across fuzz campaigns, and unique-bug grouping.

   The paper counts a *unique bug* as a group of inconsistencies caused by
   the same writing store instruction (for non-persisted reads) or the
   same synchronization variable type (§6.2); Table 3 counts unique
   inconsistencies before that grouping. *)

module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates
module Instr = Runtime.Instr

type finding = {
  inc : Checkers.inconsistency;
  found_at : int; (* campaign index *)
  mutable verdict : Post_failure.verdict option;
}

type sync_finding = {
  ev : Checkers.sync_event;
  sync_found_at : int;
  mutable sync_verdict : Post_failure.verdict option;
}

(* A mined-invariant violation observed during fuzzing, deduplicated by
   the invariant's stable label. *)
type inv_finding = {
  iv_label : string;
  iv_kind : string; (* "order" | "commit" *)
  iv_site : string; (* violating store's site name *)
  iv_addr : int;
  iv_found_at : int;
  mutable iv_verdict : Post_failure.verdict option;
}

type cand_key = { ck_write : string; ck_read : string; ck_kind : Candidates.kind }
type inc_key = { xk_write : string; xk_read : string; xk_eff : string; xk_kind : Candidates.kind }

type t = {
  cands : (cand_key, int) Hashtbl.t; (* campaign of first sighting *)
  findings : (inc_key, finding) Hashtbl.t;
  sync_findings : (string * int64, sync_finding) Hashtbl.t;
  hangs : (string, int) Hashtbl.t; (* hung-thread description -> occurrences *)
  inv_findings : (string, inv_finding) Hashtbl.t; (* invariant label -> finding *)
  mutable lint : Analysis.Lint.finding list; (* static pre-pass lint findings *)
  mutable invariants : Analysis.Invariants.spec list; (* the mined monitor set *)
  mutable campaigns : int;
}

let create () =
  {
    cands = Hashtbl.create 64;
    findings = Hashtbl.create 64;
    sync_findings = Hashtbl.create 16;
    hangs = Hashtbl.create 8;
    inv_findings = Hashtbl.create 16;
    lint = [];
    invariants = [];
    campaigns = 0;
  }

let cand_key (c : Candidates.cand) =
  { ck_write = Instr.name c.write_instr; ck_read = Instr.name c.read_instr; ck_kind = c.kind }

let inc_key (i : Checkers.inconsistency) =
  {
    xk_write = Instr.name i.source.Candidates.write_instr;
    xk_read = Instr.name i.source.Candidates.read_instr;
    xk_eff = Instr.name i.eff_instr;
    xk_kind = i.source.Candidates.kind;
  }

(* Fold one campaign's checker results in; returns the newly discovered
   unique inconsistencies and sync events (candidates for validation).
   [campaign] is the caller's campaign index (the §5 worker pool reserves
   indices up front, so absorb order need not match index order); it
   defaults to the count of campaigns absorbed so far, which is the same
   thing for a sequential session. *)
let absorb ?campaign t (env : Runtime.Env.t) ~hung ~hang_info =
  let campaign = Option.value ~default:t.campaigns campaign in
  t.campaigns <- t.campaigns + 1;
  let ck = env.Runtime.Env.checkers in
  List.iter
    (fun kind ->
      List.iter
        (fun c ->
          let k = cand_key c in
          if not (Hashtbl.mem t.cands k) then Hashtbl.add t.cands k campaign)
        (Candidates.unique (Checkers.candidates ck) kind))
    [ Candidates.Inter; Candidates.Intra ];
  let new_findings =
    List.filter_map
      (fun inc ->
        let k = inc_key inc in
        if Hashtbl.mem t.findings k then None
        else begin
          let f = { inc; found_at = campaign; verdict = None } in
          Hashtbl.add t.findings k f;
          Some f
        end)
      (Checkers.inconsistencies ck)
  in
  let new_sync =
    List.filter_map
      (fun (ev : Checkers.sync_event) ->
        let k = (ev.var.Checkers.sv_name, ev.sy_value) in
        if Hashtbl.mem t.sync_findings k then None
        else begin
          let f = { ev; sync_found_at = campaign; sync_verdict = None } in
          Hashtbl.add t.sync_findings k f;
          Some f
        end)
      (Checkers.sync_events ck)
  in
  if hung then begin
    let key = hang_info in
    Hashtbl.replace t.hangs key (1 + Option.value ~default:0 (Hashtbl.find_opt t.hangs key))
  end;
  (new_findings, new_sync)

(* First sighting of an invariant violation wins (by label); returns the
   finding only when it is new, so the caller validates each invariant
   once per session. *)
let record_invariant ?campaign t ~label ~kind ~site ~addr =
  if Hashtbl.mem t.inv_findings label then None
  else begin
    let f =
      {
        iv_label = label;
        iv_kind = kind;
        iv_site = site;
        iv_addr = addr;
        iv_found_at = Option.value ~default:t.campaigns campaign;
        iv_verdict = None;
      }
    in
    Hashtbl.add t.inv_findings label f;
    Some f
  end

let invariant_findings t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.inv_findings []
  |> List.sort (fun a b -> String.compare a.iv_label b.iv_label)

let campaigns t = t.campaigns
let set_lint t fs = t.lint <- fs
let lint_findings t = t.lint
let set_invariants t specs = t.invariants <- specs
let invariants t = t.invariants
let findings t = Hashtbl.fold (fun _ f acc -> f :: acc) t.findings []
let sync_findings t = Hashtbl.fold (fun _ f acc -> f :: acc) t.sync_findings []
let hangs t = Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.hangs []

let candidate_count t kind =
  Hashtbl.fold (fun k _ n -> if k.ck_kind = kind then n + 1 else n) t.cands 0

let candidate_pairs t =
  Hashtbl.fold (fun k _ acc -> (k.ck_write, k.ck_read, k.ck_kind) :: acc) t.cands []

let finding_kind f = f.inc.Checkers.source.Candidates.kind

let inconsistency_count t kind =
  List.length (List.filter (fun f -> finding_kind f = kind) (findings t))

let count_verdicts fs =
  List.fold_left
    (fun (fp, wl, bug, pending) v ->
      match v with
      | Some Post_failure.Validated_fp -> (fp + 1, wl, bug, pending)
      | Some Post_failure.Whitelisted_fp -> (fp, wl + 1, bug, pending)
      | Some (Post_failure.Bug _) -> (fp, wl, bug + 1, pending)
      | None -> (fp, wl, bug, pending + 1))
    (0, 0, 0, 0) fs

let verdict_summary t kind =
  count_verdicts (List.filter_map (fun f -> if finding_kind f = kind then Some f.verdict else None) (findings t))

(* Table-3 style accounting: one row per (write site, read site) pair —
   the same grouping as candidates, so an inconsistency count can never
   exceed its candidate count.  A pair's verdict is its worst finding:
   Bug > Whitelisted > Validated > pending. *)
type coarse_summary = { total : int; validated_fp : int; whitelisted_fp : int; bugs : int; pending : int }

let coarse_summary t kind =
  let tbl : (string * string, Post_failure.verdict option) Hashtbl.t = Hashtbl.create 16 in
  let rank = function
    | Some (Post_failure.Bug _) -> 3
    | Some Post_failure.Whitelisted_fp -> 2
    | Some Post_failure.Validated_fp -> 1
    | None -> 0
  in
  List.iter
    (fun f ->
      if finding_kind f = kind then begin
        let key =
          ( Instr.name f.inc.Checkers.source.Candidates.write_instr,
            Instr.name f.inc.Checkers.source.Candidates.read_instr )
        in
        match Hashtbl.find_opt tbl key with
        | Some v when rank v >= rank f.verdict -> ()
        | _ -> Hashtbl.replace tbl key f.verdict
      end)
    (findings t);
  Hashtbl.fold
    (fun _ v acc ->
      match v with
      | Some (Post_failure.Bug _) -> { acc with total = acc.total + 1; bugs = acc.bugs + 1 }
      | Some Post_failure.Whitelisted_fp ->
          { acc with total = acc.total + 1; whitelisted_fp = acc.whitelisted_fp + 1 }
      | Some Post_failure.Validated_fp ->
          { acc with total = acc.total + 1; validated_fp = acc.validated_fp + 1 }
      | None -> { acc with total = acc.total + 1; pending = acc.pending + 1 })
    tbl
    { total = 0; validated_fp = 0; whitelisted_fp = 0; bugs = 0; pending = 0 }

let sync_verdict_summary t =
  count_verdicts (List.map (fun f -> f.sync_verdict) (sync_findings t))

(* Unique-bug grouping: inconsistencies that survived validation, grouped
   by the writing store site; sync bugs grouped by variable name. *)
type bug_group = {
  bg_kind : [ `Inter | `Intra | `Sync ];
  bg_site : string; (* write site, or sync variable name *)
  bg_read_sites : string list;
  bg_members : int;
}

let bug_groups t =
  let tbl : (string * [ `Inter | `Intra | `Sync ], string list * int) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun f ->
      match f.verdict with
      | Some (Post_failure.Bug _) ->
          let kind = match finding_kind f with Candidates.Inter -> `Inter | Candidates.Intra -> `Intra in
          let site = Instr.name f.inc.Checkers.source.Candidates.write_instr in
          let read = Instr.name f.inc.Checkers.source.Candidates.read_instr in
          let reads, n = Option.value ~default:([], 0) (Hashtbl.find_opt tbl (site, kind)) in
          let reads = if List.mem read reads then reads else read :: reads in
          Hashtbl.replace tbl (site, kind) (reads, n + 1)
      | Some Post_failure.Validated_fp | Some Post_failure.Whitelisted_fp | None -> ())
    (findings t);
  List.iter
    (fun f ->
      match f.sync_verdict with
      | Some (Post_failure.Bug _) ->
          let site = f.ev.Checkers.var.Checkers.sv_name in
          let reads, n = Option.value ~default:([], 0) (Hashtbl.find_opt tbl (site, `Sync)) in
          Hashtbl.replace tbl (site, `Sync) (reads, n + 1)
      | Some Post_failure.Validated_fp | Some Post_failure.Whitelisted_fp | None -> ())
    (sync_findings t);
  Hashtbl.fold
    (fun (site, kind) (reads, n) acc ->
      { bg_kind = kind; bg_site = site; bg_read_sites = List.sort String.compare reads; bg_members = n }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.bg_site b.bg_site)

(* Match bug groups against a target's seeded ground truth. *)
let match_known (target : Target.t) groups =
  List.map
    (fun (kb : Target.known_bug) ->
      let found =
        List.exists
          (fun g ->
            match (kb.kb_type, g.bg_kind) with
            | `Inter, `Inter | `Intra, `Intra ->
                Some g.bg_site = kb.kb_write_site
            | `Sync, `Sync -> Some g.bg_site = kb.kb_write_site
            | _ -> false)
          groups
      in
      (kb, found))
    target.Target.known_bugs

let pp_finding ppf f =
  Fmt.pf ppf "%a found@%d %a" Checkers.pp_inconsistency f.inc f.found_at
    Fmt.(option ~none:(any "unvalidated") Post_failure.pp_verdict)
    f.verdict

let pp_bug_group ppf g =
  let kind = match g.bg_kind with `Inter -> "Inter" | `Intra -> "Intra" | `Sync -> "Sync" in
  Fmt.pf ppf "[%s] write=%s reads=[%a] (%d inconsistencies)" kind g.bg_site
    Fmt.(list ~sep:comma string)
    g.bg_read_sites g.bg_members

(** Aggregation of findings across fuzz campaigns and unique-bug grouping
    (§6.2): inconsistencies group by their writing store site, sync bugs by
    variable type. *)

module Checkers = Runtime.Checkers
module Candidates = Runtime.Candidates

type finding = {
  inc : Checkers.inconsistency;
  found_at : int;  (** campaign index of first sighting *)
  mutable verdict : Post_failure.verdict option;
}

type sync_finding = {
  ev : Checkers.sync_event;
  sync_found_at : int;
  mutable sync_verdict : Post_failure.verdict option;
}

type inv_finding = {
  iv_label : string;  (** the invariant's stable label — the dedup key *)
  iv_kind : string;  (** ["order" | "commit"] *)
  iv_site : string;  (** the violating store's site name *)
  iv_addr : int;
  iv_found_at : int;  (** campaign index of first sighting *)
  mutable iv_verdict : Post_failure.verdict option;
}

type t

val create : unit -> t

val absorb :
  ?campaign:int ->
  t ->
  Runtime.Env.t ->
  hung:bool ->
  hang_info:string ->
  finding list * sync_finding list
(** Fold one campaign's checker results in; returns the {e newly}
    discovered unique inconsistencies and sync events, which the fuzzer
    then validates.  [campaign] stamps first sightings (defaults to the
    number of campaigns absorbed so far); discovery is deduplicated by
    bug identity — candidate pairs by (write, read, kind), findings by
    (write, read, effect, kind), sync findings by (variable, value) — so
    the resulting {e set} of unique findings is independent of the order
    in which concurrent workers' campaigns are absorbed. *)

val campaigns : t -> int

val set_lint : t -> Analysis.Lint.finding list -> unit
(** Attach the static pre-pass's persistency-lint findings, so sessions
    carry them alongside the dynamic findings. *)

val lint_findings : t -> Analysis.Lint.finding list

val set_invariants : t -> Analysis.Invariants.spec list -> unit
(** Attach the mined invariant set the session's monitor ran with. *)

val invariants : t -> Analysis.Invariants.spec list

val record_invariant :
  ?campaign:int ->
  t ->
  label:string ->
  kind:string ->
  site:string ->
  addr:int ->
  inv_finding option
(** Record an invariant violation; returns the finding only on first
    sighting of the label, so each invariant is validated once. *)

val invariant_findings : t -> inv_finding list
(** Sorted by label (deterministic regardless of discovery order). *)

val findings : t -> finding list
val sync_findings : t -> sync_finding list
val hangs : t -> (string * int) list

val candidate_count : t -> Candidates.kind -> int
(** Unique (write site, read site) candidate pairs seen so far. *)

val candidate_pairs : t -> (string * string * Candidates.kind) list
(** The unique candidate pairs themselves, as (write site, read site,
    kind). *)

val inconsistency_count : t -> Candidates.kind -> int

val verdict_summary : t -> Candidates.kind -> int * int * int * int
(** (validated FPs, whitelisted FPs, bugs, unvalidated), over fine-grained
    findings (one per (write, read, effect) triple). *)

type coarse_summary = {
  total : int;
  validated_fp : int;
  whitelisted_fp : int;
  bugs : int;
  pending : int;
}

val coarse_summary : t -> Candidates.kind -> coarse_summary
(** Table-3 style accounting: one entry per (write site, read site) pair —
    the candidate grouping — carrying the pair's worst verdict. *)

val sync_verdict_summary : t -> int * int * int * int

type bug_group = {
  bg_kind : [ `Inter | `Intra | `Sync ];
  bg_site : string;  (** write site, or sync variable name *)
  bg_read_sites : string list;
  bg_members : int;
}

val bug_groups : t -> bug_group list
(** Unique bugs: validated findings grouped per §6.2. *)

val match_known : Target.t -> bug_group list -> (Target.known_bug * bool) list
(** Pair each seeded ground-truth bug with whether a group matches it. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_bug_group : Format.formatter -> bug_group -> unit

(** Conventional branch coverage over instrumented branch sites; combined
    with {!Alias_cov} as fuzzing feedback (§4.2.3). *)

type t

val create : unit -> t
val observe : t -> Runtime.Instr.t -> bool
(** Returns [true] the first time a site is seen. *)

val count : t -> int
val covered : t -> Runtime.Instr.t -> bool

val merge_into : src:t -> t -> unit
(** Union [src] (a worker's per-campaign delta) into a shared map.  Not
    itself synchronised — callers serialise merges. *)

val handler : t -> Runtime.Env.event -> unit
(** The event handler behind {!attach}, for pre-bound listener arrays. *)

val clear : t -> unit
(** Empty the map so a worker-local delta can be reused across campaigns. *)

val attach : t -> Runtime.Env.t -> unit

val to_json : t -> Obs.Json.t
(** Wire/store codec (fleet mode): covered branch sites by name, sorted. *)

val of_json : Obs.Json.t -> (t, string) result
(** Decode; re-registers site names via {!Runtime.Instr.site}. *)

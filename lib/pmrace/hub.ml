(* The shared side of the §5 worker pool, behind a domain-safe facade.

   PMRace runs 13 worker processes that share a coverage bitmap and a seed
   pool; our workers are OCaml 5 domains that share this hub.  The hub owns
   every piece of cross-worker state — alias/branch coverage, the
   shared-access priority queue, the report (with its candidate tables),
   reproduction provenance, the coverage timeline, and the campaign budget
   — and serialises all access with one mutex.

   The locking protocol keeps the fuzzing hot path lock-free: a worker
   never touches hub state while a campaign executes.  Instead it

   - [reserve]s a campaign slot (one short critical section),
   - runs the campaign against a private [delta] (fresh per-campaign
     coverage/queue structures, no locks),
   - [commit]s the delta at the campaign boundary (the second critical
     section: merge coverage, absorb findings, extend the timeline).

   Because every merge is a set-union/counter-add and the report
   deduplicates by bug identity, the final hub state for a given set of
   campaigns is independent of commit order — parallel sessions are
   deterministic as a set of unique bugs, and a single worker reproduces
   the sequential fuzzer bit for bit. *)

type provenance = {
  p_seed : Seed.t;
  p_sched_seed : int;
  p_policy : string; (* human-readable label for reports *)
  p_spec : Campaign.policy_spec; (* the machine-replayable policy itself *)
}

type timeline_point = {
  tp_campaign : int;
  tp_time : float; (* seconds since session start *)
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

(* A worker's private per-campaign accumulator.  Campaign listeners write
   here without synchronisation; [commit] folds it into the shared state.
   Persistent-mode workers keep one delta per worker (with its alias
   tracker) and [reset_delta] it between campaigns instead of allocating
   fresh structures. *)
type delta = {
  d_alias : Alias_cov.t;
  d_branch : Branch_cov.t;
  d_queue : Shared_queue.t;
  d_tracker : Alias_cov.tracker;
}

type por_totals = {
  pt_campaigns : int;  (* campaigns run under POR *)
  pt_pruned : int;  (* sleep-set-suppressed picks, summed *)
  pt_forced_wakes : int;
  pt_unique_traces : int;  (* first sightings of a (trace, seed) class *)
  pt_dup_traces : int;  (* campaigns whose validation was skipped as redundant *)
}

type t = {
  lock : Mutex.t;
  max_campaigns : int;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  queue : Shared_queue.t;
  report : Report.t;
  static : Analysis.Alias_pairs.t option;
  provenance : (int, provenance) Hashtbl.t; (* campaign index -> inputs *)
  mutable reserved : int; (* campaign slots handed out *)
  mutable completed : int; (* campaigns committed *)
  mutable timeline : timeline_point list; (* commit order, newest first *)
  started : float;
  (* POR bookkeeping (all under [lock]).  [trace_seen] is keyed by the
     campaign's canonical trace hash XOR the seed fingerprint — without
     the seed salt, a hash collision across *different* seeds would
     silently suppress validation of a genuinely new finding. *)
  trace_seen : (int64, unit) Hashtbl.t;
  trace_hashes : (int, int64) Hashtbl.t; (* campaign index -> raw trace hash *)
  mutable por_campaigns : int;
  mutable por_pruned : int;
  mutable por_forced_wakes : int;
  mutable por_dup_traces : int;
}

(* Monotonic: session wall time and the timeline feed rate figures
   (execs/sec, Figure 8 time axes) that must never see the wall clock
   step backwards. *)
let now () = Obs.Clock.now ()

let create ?static ~max_campaigns () =
  {
    lock = Mutex.create ();
    max_campaigns;
    alias = Alias_cov.create ();
    branch = Branch_cov.create ();
    queue = Shared_queue.create ();
    report = Report.create ();
    static;
    provenance = Hashtbl.create 64;
    reserved = 0;
    completed = 0;
    timeline = [];
    started = now ();
    trace_seen = Hashtbl.create 256;
    trace_hashes = Hashtbl.create 256;
    por_campaigns = 0;
    por_pruned = 0;
    por_forced_wakes = 0;
    por_dup_traces = 0;
  }

(* Workers contend on this one mutex at campaign boundaries; the wait
   histogram is the §5 scaling diagnostic (a growing p95 here means the
   hub's critical sections are the bottleneck, not the campaigns). *)
let m_lock_wait =
  lazy
    (Obs.Metrics.histogram
       ~buckets:[| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0 |]
       "hub_lock_wait_seconds")

let with_lock t f =
  if Obs.Metrics.enabled () then begin
    let t0 = Obs.Clock.now () in
    Mutex.lock t.lock;
    Obs.Metrics.observe (Lazy.force m_lock_wait) (Obs.Clock.elapsed t0)
  end
  else Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Advisory, lock-free check workers use in loop conditions; [reserve] is
   the authoritative check-and-claim. *)
let budget_left t = t.reserved < t.max_campaigns

let reserve t prov =
  with_lock t (fun () ->
      if t.reserved >= t.max_campaigns then None
      else begin
        let campaign = t.reserved in
        t.reserved <- t.reserved + 1;
        Hashtbl.replace t.provenance campaign prov;
        Some campaign
      end)

let fresh_delta () =
  {
    d_alias = Alias_cov.create ();
    d_branch = Branch_cov.create ();
    d_queue = Shared_queue.create ();
    d_tracker = Alias_cov.tracker ();
  }

let delta_listeners d =
  [ Alias_cov.attach d.d_alias; Branch_cov.attach d.d_branch; Shared_queue.attach d.d_queue ]

(* The delta's event handlers, for a worker's pre-bound listener array.
   The alias handler uses the delta's own tracker, so [reset_delta] must
   run between campaigns. *)
let delta_handlers d =
  [
    Alias_cov.handler d.d_alias d.d_tracker;
    Branch_cov.handler d.d_branch;
    Shared_queue.handler d.d_queue;
  ]

(* Empty a delta for reuse: equivalent to [fresh_delta] for every observable
   purpose (all structures are emptied, including the alias tracker). *)
let reset_delta d =
  Alias_cov.clear d.d_alias;
  Branch_cov.clear d.d_branch;
  Shared_queue.clear d.d_queue;
  Alias_cov.reset_tracker d.d_tracker

(* Accumulate one delta into another (set unions / counter additions, like
   the shared-side merge).  Fleet workers keep a second "wire" delta that
   every campaign delta is folded into before its reset; the wire delta is
   what travels to the coordinator.  The tracker is per-execution scratch
   and is not merged. *)
let merge_delta_into ~src ~dst =
  Alias_cov.merge_into ~src:src.d_alias dst.d_alias;
  Branch_cov.merge_into ~src:src.d_branch dst.d_branch;
  Shared_queue.merge_into ~src:src.d_queue dst.d_queue

(* Wire/store codec for a delta: the three coverage structures, each via
   its own (site-name based, process-independent) codec. *)
let delta_to_json d =
  Obs.Json.Obj
    [
      ("alias", Alias_cov.to_json d.d_alias);
      ("branch", Branch_cov.to_json d.d_branch);
      ("queue", Shared_queue.to_json d.d_queue);
    ]

let delta_of_json j =
  let field name = Obs.Json.member name j in
  match (field "alias", field "branch", field "queue") with
  | Some aj, Some bj, Some qj -> (
      match (Alias_cov.of_json aj, Branch_cov.of_json bj, Shared_queue.of_json qj) with
      | Ok d_alias, Ok d_branch, Ok d_queue ->
          Ok { d_alias; d_branch; d_queue; d_tracker = Alias_cov.tracker () }
      | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e)
  | _ -> Error "Hub.delta_of_json: missing field"

type trace = {
  tr_key : int64; (* trace hash salted with the seed fingerprint *)
  tr_hash : int64; (* raw trace hash, kept per campaign for provenance *)
  tr_pruned : int;
  tr_forced : int;
}

type commit_result = {
  c_improved : bool; (* the merge contributed new coverage bits *)
  c_new_findings : Report.finding list;
  c_new_sync : Report.sync_finding list;
  c_new_pairs : (int * int) list; (* newly achieved (write, read) site pairs *)
  c_alias_bits : int; (* shared coverage after this merge *)
  c_branch_bits : int;
  c_first_trace : bool; (* first sighting of the trace class (or no trace) *)
}

(* Difference of two sorted site-pair lists: pairs in [after] missing
   from [before].  Both come from [Alias_cov.site_pairs] (sorted). *)
let rec pairs_diff before after =
  match (before, after) with
  | _, [] -> []
  | [], rest -> rest
  | b :: bs, a :: as_ ->
      if a = b then pairs_diff bs as_
      else if a < b then a :: pairs_diff before as_
      else pairs_diff bs after

(* Time actually spent merging inside the critical section (the lock-wait
   histogram above measures contention; this measures the work).  Third
   phase of the campaign timing split: setup / run / hub merge. *)
let m_merge = lazy (Obs.Metrics.histogram "hub_merge_seconds")

let commit t ?trace ~campaign ~delta (env : Runtime.Env.t) ~hung ~hang_info =
  with_lock t (fun () ->
      Obs.Metrics.time (Lazy.force m_merge) @@ fun () ->
      (* POR trace accounting rides the commit critical section: one lock
         acquisition per campaign boundary, not two.  [c_first_trace]
         decides (outside the lock) whether the worker spends
         post-failure validation — a duplicate trace cannot produce a
         finding its first representative didn't.  The key is salted
         with the seed fingerprint upstream, so a cross-seed hash
         collision never suppresses validation of a new finding. *)
      let c_first_trace =
        match trace with
        | None -> true
        | Some tr ->
            Hashtbl.replace t.trace_hashes campaign tr.tr_hash;
            t.por_campaigns <- t.por_campaigns + 1;
            t.por_pruned <- t.por_pruned + tr.tr_pruned;
            t.por_forced_wakes <- t.por_forced_wakes + tr.tr_forced;
            if Hashtbl.mem t.trace_seen tr.tr_key then begin
              t.por_dup_traces <- t.por_dup_traces + 1;
              false
            end
            else begin
              Hashtbl.replace t.trace_seen tr.tr_key ();
              true
            end
      in
      let before = Alias_cov.count t.alias + Branch_cov.count t.branch in
      let pairs_before = Alias_cov.site_pairs t.alias in
      let inter_before = Report.inconsistency_count t.report Runtime.Candidates.Inter in
      Alias_cov.merge_into ~src:delta.d_alias t.alias;
      Branch_cov.merge_into ~src:delta.d_branch t.branch;
      Shared_queue.merge_into ~src:delta.d_queue t.queue;
      let c_new_findings, c_new_sync = Report.absorb ~campaign t.report env ~hung ~hang_info in
      t.completed <- t.completed + 1;
      let inter_now = Report.inconsistency_count t.report Runtime.Candidates.Inter in
      let c_alias_bits = Alias_cov.count t.alias and c_branch_bits = Branch_cov.count t.branch in
      t.timeline <-
        {
          tp_campaign = campaign + 1;
          tp_time = now () -. t.started;
          tp_alias_bits = c_alias_bits;
          tp_branch_bits = c_branch_bits;
          tp_inter_unique = inter_now;
          tp_new_inter = inter_now > inter_before;
        }
        :: t.timeline;
      let after = c_alias_bits + c_branch_bits in
      {
        c_improved = after > before;
        c_new_findings;
        c_new_sync;
        c_new_pairs = pairs_diff pairs_before (Alias_cov.site_pairs t.alias);
        c_alias_bits;
        c_branch_bits;
        c_first_trace;
      })

let por_totals t =
  if t.por_campaigns = 0 then None
  else
    Some
      {
        pt_campaigns = t.por_campaigns;
        pt_pruned = t.por_pruned;
        pt_forced_wakes = t.por_forced_wakes;
        pt_unique_traces = Hashtbl.length t.trace_seen;
        pt_dup_traces = t.por_dup_traces;
      }

let trace_hash t ~campaign = Hashtbl.find_opt t.trace_hashes campaign
let trace_hashes t = t.trace_hashes

(* First sighting of an invariant violation across all workers; the
   returned finding (if new) is validated by the discovering worker
   outside the lock, like dynamic findings. *)
let record_invariant t ~campaign ~label ~kind ~site ~addr =
  with_lock t (fun () -> Report.record_invariant ~campaign t.report ~label ~kind ~site ~addr)

let queue_entries t = with_lock t (fun () -> Shared_queue.entries t.queue)

(* Re-score a seed against the static pre-pass: first refresh the
   achieved-pair marks from shared alias coverage, then count the
   still-uncovered statically-possible pairs whose write and read sites
   the seed has reached ([sites] is the owning worker's private map of
   sites this seed touched). *)
let rescore_seed t ~sites seed =
  match t.static with
  | None -> ()
  | Some pairs ->
      with_lock t (fun () ->
          List.iter
            (fun (w, r) ->
              Analysis.Alias_pairs.mark_achieved pairs ~write:(Runtime.Instr.of_int w)
                ~read:(Runtime.Instr.of_int r))
            (Alias_cov.site_pairs t.alias);
          let score =
            List.fold_left
              (fun n (p : Analysis.Alias_pairs.pair) ->
                if
                  Hashtbl.mem sites (Runtime.Instr.to_int p.Analysis.Alias_pairs.pw)
                  && Hashtbl.mem sites (Runtime.Instr.to_int p.Analysis.Alias_pairs.pr)
                then n + 1
                else n)
              0
              (Analysis.Alias_pairs.uncovered pairs)
          in
          Seed.set_priority seed score)

let inter_unique t =
  with_lock t (fun () -> Report.inconsistency_count t.report Runtime.Candidates.Inter)

let completed t = t.completed
let elapsed t = now () -. t.started
let static t = t.static

(* Accessors for session assembly and pre-spawn setup.  Unsynchronised:
   only use while no worker domain is live (before spawning or after
   joining). *)
let alias t = t.alias
let branch t = t.branch
let report t = t.report
let provenance t = t.provenance

let timeline t =
  (* Commit order is chronological for a single worker; under parallelism
     ties in commit order are broken by campaign index so the series is
     reproducible. *)
  List.sort (fun a b -> compare a.tp_campaign b.tp_campaign) (List.rev t.timeline)

(* AFL-style corpus scheduling: favored-seed culling over a fingerprinted
   corpus.

   A corpus that only ever grows stops being useful at scale: mutation
   parents are drawn uniformly from an ever-larger pool, most of which
   never contributed coverage.  AFL's answer — and ours — is to keep a
   small *favored* subset that still covers everything the corpus has
   achieved, and to draw from it preferentially:

   - every entry is keyed by {!Seed.fingerprint} (content hash), so the
     same seed content deduplicates across workers and store restarts;
   - entries are credited with the (write site, read site) alias pairs
     their campaigns were first to achieve;
   - {!cull} computes a greedy minimal cover of the achieved-pair set,
     scoring candidates by (pairs credited, op_count, age) — more pairs
     first, then cheaper seeds, then younger ones — marks the cover
     favored, and tombstones dominated entries (non-favored entries whose
     every credited pair is covered by the favored set);
   - {!lease} hands out favored entries preferentially, least-leased
     first, so concurrent workers rotate through the favored set instead
     of converging on one seed.

   Used by both the fleet coordinator (its durable corpus) and the
   in-process fuzzer behind [--corpus-sched].  Not synchronised — the
   coordinator is single-threaded and the in-process fuzzer keeps one
   instance per worker. *)

type entry = {
  e_fp : int64;
  e_seed : Seed.t;
  e_op_count : int;
  e_added : int; (* sequence number at insertion: the age axis *)
  mutable e_pairs : (string * string) list; (* credited alias site pairs *)
  mutable e_favored : bool;
  mutable e_tombstone : bool;
  mutable e_leases : int; (* times handed out by [lease] *)
}

type t = {
  entries : (int64, entry) Hashtbl.t;
  mutable seq : int; (* insertion sequence, monotonically increasing *)
}

let create () = { entries = Hashtbl.create 64; seq = 0 }

let size t = Hashtbl.length t.entries

let find t fp = Hashtbl.find_opt t.entries fp

(* Deterministic iteration order: insertion sequence, fingerprint as the
   tiebreak (sequences are unique per instance, but store reloads may
   assign equal ones). *)
let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b ->
         match compare a.e_added b.e_added with 0 -> compare a.e_fp b.e_fp | c -> c)

let favored_count t =
  Hashtbl.fold (fun _ e n -> if e.e_favored && not e.e_tombstone then n + 1 else n) t.entries 0

let tombstoned_count t =
  Hashtbl.fold (fun _ e n -> if e.e_tombstone then n + 1 else n) t.entries 0

let add t ?(pairs = []) ?added seed =
  let fp = Seed.fingerprint seed in
  match Hashtbl.find_opt t.entries fp with
  | Some e ->
      (* Duplicate content: keep the existing entry, but absorb any new
         pair credit so a re-discovered seed does not lose its history. *)
      e.e_pairs <- List.sort_uniq compare (pairs @ e.e_pairs);
      None
  | None ->
      let e_added =
        match added with
        | Some a ->
            t.seq <- max t.seq (a + 1);
            a
        | None ->
            let a = t.seq in
            t.seq <- a + 1;
            a
      in
      let e =
        {
          e_fp = fp;
          e_seed = seed;
          e_op_count = Seed.op_count seed;
          e_added;
          e_pairs = List.sort_uniq compare pairs;
          e_favored = false;
          e_tombstone = false;
          e_leases = 0;
        }
      in
      Hashtbl.add t.entries fp e;
      Some e

let credit_pairs t fp pairs =
  match Hashtbl.find_opt t.entries fp with
  | None -> ()
  | Some e ->
      e.e_pairs <- List.sort_uniq compare (pairs @ e.e_pairs);
      (* New coverage resurrects a tombstoned entry: its pair set changed,
         so the dominance judgment that buried it no longer applies. *)
      if pairs <> [] then e.e_tombstone <- false

(* Candidate score for covering a pair: more credited pairs first (a seed
   that achieved several pairs keeps the cover small), then fewer ops
   (cheaper executions), then younger (recent seeds reflect the deeper
   exploration frontier), fingerprint as the deterministic tiebreak. *)
let better a b =
  let c = compare (List.length b.e_pairs) (List.length a.e_pairs) in
  if c <> 0 then c < 0
  else
    let c = compare a.e_op_count b.e_op_count in
    if c <> 0 then c < 0
    else
      let c = compare b.e_added a.e_added in
      if c <> 0 then c < 0 else a.e_fp < b.e_fp

let cull t =
  let live = List.filter (fun e -> not e.e_tombstone) (entries t) in
  (* Winner per achieved pair. *)
  let winner : (string * string, entry) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      List.iter
        (fun p ->
          match Hashtbl.find_opt winner p with
          | Some w when better w e -> ()
          | Some _ | None -> Hashtbl.replace winner p e)
        e.e_pairs)
    live;
  (* Greedy minimal cover: take pair winners in deterministic pair order,
     skipping pairs already covered by an entry chosen for an earlier
     pair. *)
  let pairs = Hashtbl.fold (fun p _ acc -> p :: acc) winner [] |> List.sort compare in
  let covered : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let favored : (int64, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem covered p) then begin
        let w = Hashtbl.find winner p in
        Hashtbl.replace favored w.e_fp ();
        List.iter (fun q -> Hashtbl.replace covered q ()) w.e_pairs
      end)
    pairs;
  List.iter
    (fun e ->
      e.e_favored <- Hashtbl.mem favored e.e_fp;
      (* Publish the favored score on the seed itself (AFL's energy
         assignment): the seed tier reads it back through {!energy}, and
         other priority consumers see favored seeds outrank the rest.
         Only meaningful when corpus scheduling is on — the static
         pre-pass rescoring path owns [Seed.priority] otherwise. *)
      Seed.set_priority e.e_seed (if e.e_favored then List.length e.e_pairs else 0);
      (* Dominated: contributed pairs once, but the favored cover now
         achieves all of them without this entry. *)
      if (not e.e_favored) && e.e_pairs <> [] then
        e.e_tombstone <- List.for_all (Hashtbl.mem covered) e.e_pairs)
    live

(* Mutation energy for a seed (AFL-style): favored seeds earn extra
   interleaving budget proportional to the pair credit that made them
   favored, capped so one hot seed cannot starve the rest of the corpus.
   Unknown or unfavored seeds get the baseline. *)
let energy_cap = 3

let energy t seed =
  match Hashtbl.find_opt t.entries (Seed.fingerprint seed) with
  | Some e when e.e_favored && not e.e_tombstone ->
      1 + min energy_cap (List.length e.e_pairs)
  | Some _ | None -> 1

(* Favored first, then the undecided reservoir (entries that never
   contributed a pair); within each class least-leased first so workers
   rotate, then youngest.  Tombstoned entries are never leased. *)
let lease_order t =
  let live = List.filter (fun e -> not e.e_tombstone) (entries t) in
  let rank e = if e.e_favored then 0 else 1 in
  List.sort
    (fun a b ->
      match compare (rank a) (rank b) with
      | 0 -> (
          match compare a.e_leases b.e_leases with
          | 0 -> ( match compare b.e_added a.e_added with 0 -> compare a.e_fp b.e_fp | c -> c)
          | c -> c)
      | c -> c)
    live

let lease t n =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest ->
        e.e_leases <- e.e_leases + 1;
        e.e_seed :: take (k - 1) rest
  in
  take n (lease_order t)

(* The PM-aware coverage-guided fuzzing loop (§4.2.3).

   Three tiers of exploration:
   - Execution tier: re-run the same (seed, interleaving) with different
     scheduler seeds; non-determinism alone uncovers some interleavings.
   - Interleaving tier: pick the next unexplored entry from the
     shared-access priority queue and drive the execution towards reading
     non-persisted data with the sync-point policy.
   - Seed tier: when interleavings stop improving coverage, evolve the
     corpus with the operation mutator (or the populate fallback) and
     rebuild the priority queue.

   Feedback is the sum of PM alias pair coverage and branch coverage.
   Every newly discovered unique inconsistency is validated post-failure
   immediately, so the session report carries verdicts.

   The worker pool (§5) is a set of OCaml 5 domains.  All shared state
   lives in a {!Hub}; each worker owns everything else — its RNGs, its
   corpus and generation counter, and its campaign scratch tables — so a
   campaign executes without synchronisation and workers only meet at the
   hub's two short critical sections (reserve and commit).  With
   [workers = 1] the single worker follows exactly the sequential
   fuzzer's code path and RNG streams, so seeded paper-profile sessions
   stay bit-identical. *)

module Rng = Sched.Rng

type mode = Mode_pmrace | Mode_delay | Mode_random

type config = {
  max_campaigns : int;
  execs_per_interleaving : int;
  max_interleavings_per_seed : int;
  master_seed : int;
  mode : mode;
  interleaving_tier : bool; (* false = the "w/o IE" ablation of Fig. 9 *)
  seed_tier : bool; (* false = the "w/o SE" ablation of Fig. 9 *)
  use_checkpoint : bool;
  step_budget : int;
  validate : bool;
  evict_prob : float;
  eadr : bool; (* fuzz on an eADR platform (§6.6) *)
  workers : int; (* worker domains sharing the hub (§5) *)
  initial_seeds : int;
  whitelist_extra : string list;
  static_prepass : bool;
      (* run the offline analyzer first (the LLVM pre-pass analogue): its
         site graph bounds alias coverage (achieved/possible) and seeds
         touching uncovered possible pairs are preferred as parents *)
  invariants : bool;
      (* mine likely persistence-ordering invariants in the pre-pass and
         monitor campaigns for violations (validated post-failure like any
         candidate); off by default so seeded sessions stay bit-identical *)
  corpus_sched : bool;
      (* AFL-style corpus scheduling ({!Corpus_sched}): mutation parents
         are leased from the favored cover of the achieved alias-pair set
         instead of drawn uniformly; off by default so seeded sessions
         stay bit-identical *)
  crash_images : int;
      (* post-failure crash-image budget: how many enumerated crash
         images each candidate is validated against ({!Pmem.Crash_images});
         1 = base image only, the historical behaviour *)
  por : bool;
      (* partial-order reduction: campaigns run under the sleep-set
         scheduler ({!Sched.Scheduler.run_por}) and post-failure
         validation is skipped for campaigns whose Mazurkiewicz-trace
         hash was already seen for the same seed; off by default so
         seeded sessions stay bit-identical *)
}

let default_config =
  {
    max_campaigns = 120;
    execs_per_interleaving = 3;
    max_interleavings_per_seed = 8;
    master_seed = 42;
    mode = Mode_pmrace;
    interleaving_tier = true;
    seed_tier = true;
    use_checkpoint = true;
    step_budget = 60_000;
    validate = true;
    evict_prob = 0.;
    eadr = false;
    workers = 1;
    initial_seeds = 2;
    whitelist_extra = [];
    static_prepass = false;
    invariants = false;
    corpus_sched = false;
    crash_images = 1;
    por = false;
  }

(* The configuration front door: an optional-argument builder over
   [default_config].  Callers name only what they change, so adding a
   config field never breaks them again (the raw record construction in
   pre-obs callers did, on every field addition). *)
module Config = struct
  type t = config

  let default = default_config

  let make ?(max_campaigns = default_config.max_campaigns)
      ?(execs_per_interleaving = default_config.execs_per_interleaving)
      ?(max_interleavings_per_seed = default_config.max_interleavings_per_seed)
      ?(master_seed = default_config.master_seed) ?(mode = default_config.mode)
      ?(interleaving_tier = default_config.interleaving_tier)
      ?(seed_tier = default_config.seed_tier) ?(use_checkpoint = default_config.use_checkpoint)
      ?(step_budget = default_config.step_budget) ?(validate = default_config.validate)
      ?(evict_prob = default_config.evict_prob) ?(eadr = default_config.eadr)
      ?(workers = default_config.workers) ?(initial_seeds = default_config.initial_seeds)
      ?(whitelist_extra = default_config.whitelist_extra)
      ?(static_prepass = default_config.static_prepass)
      ?(invariants = default_config.invariants) ?(corpus_sched = default_config.corpus_sched)
      ?(crash_images = default_config.crash_images) ?(por = default_config.por) () =
    {
      max_campaigns;
      execs_per_interleaving;
      max_interleavings_per_seed;
      master_seed;
      mode;
      interleaving_tier;
      seed_tier;
      use_checkpoint;
      step_budget;
      validate;
      evict_prob;
      eadr;
      workers = max 1 workers;
      initial_seeds;
      whitelist_extra;
      static_prepass;
      invariants;
      corpus_sched;
      crash_images = max 1 crash_images;
      por;
    }
end

type provenance = Hub.provenance = {
  p_seed : Seed.t;
  p_sched_seed : int;
  p_policy : string;
  p_spec : Campaign.policy_spec;
}

type timeline_point = Hub.timeline_point = {
  tp_campaign : int;
  tp_time : float; (* seconds since session start *)
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

type session = {
  report : Report.t;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  timeline : timeline_point list; (* chronological *)
  campaigns_run : int;
  wall_time : float;
  annotations : int;
  whitelist : Whitelist.t;
  provenance : (int, provenance) Hashtbl.t; (* campaign index -> inputs *)
  static : Analysis.Analyzer.result option; (* the pre-pass, when enabled *)
  worker_campaigns : int array; (* campaigns completed per worker (index = widx) *)
  por : Hub.por_totals option; (* aggregate pruning counters, POR sessions only *)
  trace_hashes : (int, int64) Hashtbl.t; (* campaign index -> canonical trace hash *)
}

(* The worker's view of the shared side, as a record of functions.  The
   in-process pool binds it to a {!Hub} ([hub_sink] — pure indirection, so
   [workers = 1] sessions stay bit-identical to the sequential fuzzer);
   fleet workers bind it to a wrapper that enforces the coordinator's
   lease budget and accumulates a wire delta.  Everything the fuzzing
   loop ever asks of the shared side goes through here. *)
type sink = {
  sk_budget_left : unit -> bool;
  sk_reserve : Hub.provenance -> int option;
  sk_commit :
    ?trace:Hub.trace ->
    campaign:int ->
    delta:Hub.delta ->
    Runtime.Env.t ->
    hung:bool ->
    hang_info:string ->
    Hub.commit_result;
      (* [trace] registers a POR campaign's trace class in the same
         critical section as the merge — one lock acquisition per
         campaign boundary *)
  sk_record_invariant :
    campaign:int ->
    label:string ->
    kind:string ->
    site:string ->
    addr:int ->
    Report.inv_finding option;
  sk_queue_entries : unit -> Shared_queue.entry list;
  sk_rescore : sites:(int, unit) Hashtbl.t -> Seed.t -> unit;
  sk_completed : unit -> int; (* campaigns committed, for progress logs *)
}

(* The in-process binding: forward every operation to the hub verbatim,
   same calls in the same order as the pre-sink fuzzer made directly. *)
let hub_sink hub =
  {
    sk_budget_left = (fun () -> Hub.budget_left hub);
    sk_reserve = (fun prov -> Hub.reserve hub prov);
    sk_commit =
      (fun ?trace ~campaign ~delta env ~hung ~hang_info ->
        Hub.commit hub ?trace ~campaign ~delta env ~hung ~hang_info);
    sk_record_invariant =
      (fun ~campaign ~label ~kind ~site ~addr ->
        Hub.record_invariant hub ~campaign ~label ~kind ~site ~addr);
    sk_queue_entries = (fun () -> Hub.queue_entries hub);
    sk_rescore = (fun ~sites seed -> Hub.rescore_seed hub ~sites seed);
    sk_completed = (fun () -> Hub.completed hub);
  }

(* A fuzzing worker: one domain's private half of the state split.  Two
   RNG streams — [sched_rng] draws campaign scheduler seeds (worker 0
   continues the sequential fuzzer's session stream) and [gen_rng] drives
   seed generation/mutation — plus the corpus and the campaign scratch
   tables.  Nothing here is ever touched by another domain. *)
type worker = {
  widx : int;
  cfg : config;
  target : Target.t;
  sink : sink;
  sched_rng : Rng.t;
  gen_rng : Rng.t;
  mutable corpus : Seed.t list;
  csched : Corpus_sched.t option; (* [corpus_sched]: the favored-cover scheduler *)
  mutable generation : int;
  skip_store : (int * int, int) Hashtbl.t; (* (seed id, addr) -> skip *)
  (* per-address exploration state: number of attempts, negative once the
     sync point actually triggered.  Spans this worker's seed generations
     so successive generations progress down the priority queue; cleared
     when exhausted. *)
  explored : (int, int) Hashtbl.t;
  seed_sites : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* seed id -> sites touched *)
  engine : Engine.t; (* this worker's reusable execution context *)
  delta : Hub.delta; (* reused across campaigns; reset at campaign start *)
  (* Which per-seed site table the pre-bound seed-site handler writes to;
     retargeted by [do_campaign] instead of attaching a fresh closure. *)
  cur_sites : (int, unit) Hashtbl.t ref;
  whitelist : Whitelist.t; (* shared, read-only during fuzzing *)
  vctx : Post_failure.ctx; (* validation context: whitelist + image budget *)
  inv_mon : Inv_monitor.t option; (* mined-invariant violation monitor *)
  static_on : bool;
  log : string -> unit;
  obs : Obs.Events.t option; (* structured event stream, when a sink listens *)
  m_campaigns : Obs.Metrics.counter; (* labelled per worker *)
  mutable my_campaigns : int; (* campaigns this worker completed *)
}

let emit w payload = match w.obs with Some o -> Obs.Events.emit o payload | None -> ()

let verdict_label = function
  | Post_failure.Validated_fp -> "validated-fp"
  | Post_failure.Whitelisted_fp -> "whitelisted-fp"
  | Post_failure.Bug { recovery_hang = true; _ } -> "bug-recovery-hang"
  | Post_failure.Bug { recovery_hang = false; _ } -> "bug"

(* A bug that only reproduced on a non-default enumerated crash image is
   worth its own event: it is exactly the detection the image budget
   bought.  Emitted alongside the plain verdict event. *)
let emit_image_bug w ~campaign ~kind ~site = function
  | Post_failure.Bug { image_index; _ } when image_index > 0 ->
      emit w
        (Obs.Events.Crash_image_bug { campaign; worker = w.widx; kind; site; image_index })
  | Post_failure.Bug _ | Post_failure.Validated_fp | Post_failure.Whitelisted_fp -> ()

let site_name id = Runtime.Instr.name (Runtime.Instr.of_int id)

let hang_info (result : Campaign.result) =
  match result.outcome.hung with
  | (_, name) :: _ -> Printf.sprintf "hung:%s" name
  | [] -> (
      match
        List.find_opt
          (fun (_, _, e) -> match e with Runtime.Mem.Stuck _ -> true | _ -> false)
          result.outcome.failed
      with
      | Some (_, _, Runtime.Mem.Stuck site) -> Printf.sprintf "stuck:%s" site
      | Some _ | None -> "hang")

let policy_label = function
  | Campaign.Pmrace { entry; _ } ->
      Printf.sprintf "PM-aware sync point @ addr %d" entry.Shared_queue.addr
  | Campaign.Delay _ -> "random delay injection"
  | Campaign.Random_sched -> "random scheduling"
  | Campaign.No_preempt -> "no preemption"

(* The per-seed touched-site table (for scoring against the pre-pass's
   uncovered possible pairs), created on first use. *)
let sites_of w seed =
  match Hashtbl.find_opt w.seed_sites (Seed.id seed) with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 32 in
      Hashtbl.add w.seed_sites (Seed.id seed) s;
      s

let rescore_seed w seed =
  if w.static_on then
    let sites =
      Option.value ~default:(Hashtbl.create 1) (Hashtbl.find_opt w.seed_sites (Seed.id seed))
    in
    w.sink.sk_rescore ~sites seed

(* Run one campaign: reserve a budget slot, execute against a private
   delta (lock-free), commit at the boundary, then validate any new
   findings outside the hub lock.  Returns [None] when the shared budget
   ran out before this campaign could start. *)
let do_campaign w seed policy =
  let sched_seed = Rng.int w.sched_rng 1_000_000_000 in
  match
    w.sink.sk_reserve
      { p_seed = seed; p_sched_seed = sched_seed; p_policy = policy_label policy; p_spec = policy }
  with
  | None -> None
  | Some campaign ->
      let t0 = if w.obs = None then 0. else Obs.Clock.now () in
      emit w
        (Obs.Events.Campaign_start
           {
             campaign;
             worker = w.widx;
             seed_id = Seed.id seed;
             sched_seed;
             policy = policy_label policy;
           });
      let input =
        Campaign.input ~sched_seed ~policy ~step_budget:w.cfg.step_budget ~por:w.cfg.por w.target
          seed
      in
      (* The delta and the seed-site handler are pre-bound in the engine's
         context; per campaign we only empty the delta and retarget the
         handler at this seed's table. *)
      Hub.reset_delta w.delta;
      if w.static_on then w.cur_sites := sites_of w seed;
      let result =
        match w.inv_mon with
        | None -> Campaign.run ~engine:w.engine input
        | Some m -> Campaign.run ~engine:w.engine ~listeners:[ Inv_monitor.attach m ] input
      in
      (* POR trace dedup: register the campaign's canonical trace class
         with the commit itself (same critical section as the merge) and
         spend post-failure validation only on its first sighting — a
         schedule Mazurkiewicz-equivalent to an already-validated one
         cannot produce a finding its representative didn't.  The key is
         salted with the seed fingerprint so a cross-seed hash collision
         never suppresses validation of a genuinely new finding.
         Coverage and candidate counts are untouched by the skip. *)
      let trace =
        match result.Campaign.por with
        | None -> None
        | Some ps ->
            Some
              {
                Hub.tr_key = Int64.logxor ps.Por.s_trace_hash (Seed.fingerprint seed);
                tr_hash = ps.Por.s_trace_hash;
                tr_pruned = ps.Por.s_pruned_picks;
                tr_forced = ps.Por.s_forced_wakes;
              }
      in
      let c =
        w.sink.sk_commit ?trace ~campaign ~delta:w.delta result.env ~hung:result.hung
          ~hang_info:(hang_info result)
      in
      (* Corpus scheduling: credit this seed with the alias pairs its
         campaign was first to achieve — the currency [Corpus_sched.cull]
         scores by. *)
      (match w.csched with
      | Some cs when c.Hub.c_new_pairs <> [] ->
          Corpus_sched.credit_pairs cs (Seed.fingerprint seed)
            (List.map (fun (wr, rd) -> (site_name wr, site_name rd)) c.Hub.c_new_pairs)
      | Some _ | None -> ());
      if w.obs <> None then begin
        emit w
          (Obs.Events.Worker_merge
             {
               campaign;
               worker = w.widx;
               alias_bits = c.c_alias_bits;
               branch_bits = c.c_branch_bits;
             });
        List.iter
          (fun (wr, rd) ->
            emit w
              (Obs.Events.New_alias_pair
                 { campaign; worker = w.widx; write_site = site_name wr; read_site = site_name rd }))
          c.c_new_pairs;
        List.iter
          (fun (f : Report.finding) ->
            let kind =
              match f.inc.source.Runtime.Candidates.kind with
              | Runtime.Candidates.Inter -> "inter"
              | Runtime.Candidates.Intra -> "intra"
            in
            emit w
              (Obs.Events.Candidate_found
                 {
                   campaign;
                   worker = w.widx;
                   kind;
                   write_site = Runtime.Instr.name f.inc.source.Runtime.Candidates.write_instr;
                   read_site = Runtime.Instr.name f.inc.source.Runtime.Candidates.read_instr;
                 }))
          c.c_new_findings;
        List.iter
          (fun (f : Report.sync_finding) ->
            emit w
              (Obs.Events.Candidate_found
                 {
                   campaign;
                   worker = w.widx;
                   kind = "sync";
                   write_site = f.ev.var.Runtime.Checkers.sv_name;
                   read_site = "";
                 }))
          c.c_new_sync
      end;
      if w.cfg.validate && c.Hub.c_first_trace then begin
        List.iter
          (fun (f : Report.finding) ->
            let v = Post_failure.validate w.vctx (Post_failure.Candidate.Inconsistency f.inc) in
            f.verdict <- Some v;
            let kind =
              match f.inc.source.Runtime.Candidates.kind with
              | Runtime.Candidates.Inter -> "inter"
              | Runtime.Candidates.Intra -> "intra"
            in
            let site = Runtime.Instr.name f.inc.source.Runtime.Candidates.write_instr in
            if w.obs <> None then
              emit w
                (Obs.Events.Validation_verdict
                   { campaign; worker = w.widx; kind; site; verdict = verdict_label v });
            emit_image_bug w ~campaign ~kind ~site v)
          c.c_new_findings;
        List.iter
          (fun (f : Report.sync_finding) ->
            let v = Post_failure.validate w.vctx (Post_failure.Candidate.Sync f.ev) in
            f.sync_verdict <- Some v;
            let site = f.ev.var.Runtime.Checkers.sv_name in
            if w.obs <> None then
              emit w
                (Obs.Events.Validation_verdict
                   { campaign; worker = w.widx; kind = "sync"; site; verdict = verdict_label v });
            emit_image_bug w ~campaign ~kind:"sync" ~site v)
          c.c_new_sync
      end;
      (* Invariant-violation hits: register first sightings with the hub
         (dedup by label across workers) and validate them like any other
         candidate, outside the lock. *)
      (match w.inv_mon with
      | None -> ()
      | Some m ->
          List.iter
            (fun (h : Inv_monitor.hit) ->
              match
                w.sink.sk_record_invariant ~campaign ~label:h.h_label
                  ~kind:(Analysis.Invariants.inv_kind_slug h.h_inv)
                  ~site:(Runtime.Instr.name h.h_site) ~addr:h.h_addr
              with
              | None -> ()
              | Some f ->
                  emit w
                    (Obs.Events.Candidate_found
                       {
                         campaign;
                         worker = w.widx;
                         kind = "invariant";
                         write_site = h.h_label;
                         read_site = Runtime.Instr.name h.h_site;
                       });
                  if w.cfg.validate then begin
                    let v =
                      Post_failure.validate w.vctx
                        (Post_failure.Candidate.Ordering
                           { crash = h.h_crash; eff_words = h.h_words })
                    in
                    f.Report.iv_verdict <- Some v;
                    emit w
                      (Obs.Events.Validation_verdict
                         {
                           campaign;
                           worker = w.widx;
                           kind = "invariant";
                           site = h.h_label;
                           verdict = verdict_label v;
                         });
                    emit_image_bug w ~campaign ~kind:"invariant" ~site:h.h_label v
                  end)
            (Inv_monitor.drain m));
      rescore_seed w seed;
      w.my_campaigns <- w.my_campaigns + 1;
      Obs.Metrics.incr w.m_campaigns;
      emit w
        (Obs.Events.Campaign_end
           {
             campaign;
             worker = w.widx;
             improved = c.c_improved;
             hung = result.hung;
             latency = (if w.obs = None then 0. else Obs.Clock.elapsed t0);
           });
      Some (c.c_improved, result)

let budget_left w = w.sink.sk_budget_left ()

(* The PM-aware schedule: recon run, then interleaving tier over queue
   entries, with the execution tier inside. *)
let fuzz_seed_pmrace w seed =
  if budget_left w then begin
    (* Recon execution: gathers shared accesses for the priority queue. *)
    ignore (do_campaign w seed Campaign.Random_sched);
    if w.cfg.interleaving_tier then begin
      (* Mutation energy (AFL): favored corpus entries earn a multiple of
         the per-seed interleaving budget.  Without corpus scheduling the
         factor is always 1, so seeded sessions stay bit-identical. *)
      let inter_budget =
        match w.csched with
        | Some cs -> w.cfg.max_interleavings_per_seed * Corpus_sched.energy cs seed
        | None -> w.cfg.max_interleavings_per_seed
      in
      let exhausted addr =
        match Hashtbl.find_opt w.explored addr with
        | Some n -> n < 0 || n >= 3 (* triggered, or tried repeatedly without success *)
        | None -> false
      in
      let unexplored () =
        w.sink.sk_queue_entries ()
        |> List.filter (fun (e : Shared_queue.entry) -> not (exhausted e.addr))
      in
      let entries =
        match unexplored () with
        | [] ->
            (* Every shared address has been tried: start a fresh sweep. *)
            Hashtbl.reset w.explored;
            unexplored ()
        | es -> es
      in
      let rec explore entries tried =
        match entries with
        | [] -> ()
        | _ when (not (budget_left w)) || tried >= inter_budget -> ()
        | entry :: rest ->
            let attempts =
              max 0 (Option.value ~default:0 (Hashtbl.find_opt w.explored entry.Shared_queue.addr))
            in
            Hashtbl.replace w.explored entry.Shared_queue.addr (attempts + 1);
            let rec exec_tier n stale =
              if n < w.cfg.execs_per_interleaving && budget_left w && stale < 2 then begin
                let skip =
                  Option.value ~default:0
                    (Hashtbl.find_opt w.skip_store (Seed.id seed, entry.Shared_queue.addr))
                in
                match do_campaign w seed (Campaign.Pmrace { entry; skip }) with
                | None -> ()
                | Some (improved, result) ->
                    (match result.sync with
                    | Some sync ->
                        Hashtbl.replace w.skip_store
                          (Seed.id seed, entry.Shared_queue.addr)
                          (Sync_policy.next_skip sync ~previous:skip);
                        if Sync_policy.triggered sync then
                          Hashtbl.replace w.explored entry.Shared_queue.addr (-1)
                    | None -> ());
                    exec_tier (n + 1) (if improved then 0 else stale + 1)
              end
            in
            exec_tier 0 0;
            explore rest (tried + 1)
      in
      explore entries 0
    end
    else begin
      (* w/o IE: only the execution tier — repeated random-schedule runs. *)
      let rec exec_tier n stale =
        if n < w.cfg.execs_per_interleaving * w.cfg.max_interleavings_per_seed
           && budget_left w && stale < 4
        then begin
          match do_campaign w seed Campaign.Random_sched with
          | None -> ()
          | Some (improved, _) -> exec_tier (n + 1) (if improved then 0 else stale + 1)
        end
      in
      exec_tier 0 0
    end
  end

(* Register a freshly created seed with the corpus scheduler (no-op when
   scheduling is off; duplicates dedup by fingerprint). *)
let register_seed w s =
  (match w.csched with Some cs -> ignore (Corpus_sched.add cs s) | None -> ());
  s

let next_seed w =
  if (not w.cfg.seed_tier) || w.corpus = [] then
    match w.corpus with
    | s :: _ -> s
    | [] ->
        let s = Seed.gen w.gen_rng w.target.Target.profile in
        w.corpus <- [ s ];
        register_seed w s
  else if w.generation > 0 && w.generation mod 5 = 4 then begin
    (* The populate fallback: a load phase with many inserts. *)
    let s = Mutator.populate w.gen_rng w.target.Target.profile ~factor:3 in
    w.corpus <- s :: w.corpus;
    register_seed w s
  end
  else begin
    (* Parent selection: with corpus scheduling, lease from the favored
       cover (recull first so new pair credit takes effect); when the
       static pre-pass is live, prefer seeds touching uncovered
       statically-possible alias pairs (highest priority wins, random
       among ties); otherwise uniform. *)
    let parent =
      match w.csched with
      | Some cs -> (
          Corpus_sched.cull cs;
          match Corpus_sched.lease cs 1 with
          | [ s ] -> s
          | _ -> Rng.pick w.gen_rng w.corpus)
      | None -> (
          let best =
            if not w.static_on then []
            else begin
              let top = List.fold_left (fun m s -> max m (Seed.priority s)) 0 w.corpus in
              if top = 0 then [] else List.filter (fun s -> Seed.priority s = top) w.corpus
            end
          in
          match best with [] -> Rng.pick w.gen_rng w.corpus | cs -> Rng.pick w.gen_rng cs)
    in
    let _, child = Mutator.evolve w.gen_rng w.target.Target.profile ~corpus:w.corpus parent in
    w.corpus <- child :: w.corpus;
    register_seed w child
  end

(* One worker's whole session: keep claiming seeds and fuzzing them until
   the shared budget drains.  This is the body of each spawned domain. *)
let worker_loop w =
  let pick_seed () = if w.generation = 0 then List.hd w.corpus else next_seed w in
  match w.cfg.mode with
  | Mode_pmrace ->
      while budget_left w do
        let seed = pick_seed () in
        w.log
          (Printf.sprintf "campaign %d/%d: worker %d seed #%d (gen %d)" (w.sink.sk_completed ())
             w.cfg.max_campaigns w.widx (Seed.id seed) w.generation);
        fuzz_seed_pmrace w seed;
        w.generation <- w.generation + 1
      done
  | Mode_delay | Mode_random ->
      while budget_left w do
        let seed = pick_seed () in
        let policy =
          match w.cfg.mode with
          | Mode_delay -> Campaign.Delay { prob = 0.08; max_delay = 25 }
          | Mode_random | Mode_pmrace -> Campaign.Random_sched
        in
        let rec exec n stale =
          if n < w.cfg.execs_per_interleaving * w.cfg.max_interleavings_per_seed
             && budget_left w && stale < 6
          then begin
            match do_campaign w seed policy with
            | None -> ()
            | Some (improved, _) -> exec (n + 1) (if improved then 0 else stale + 1)
          end
        in
        exec 0 0;
        w.generation <- w.generation + 1
      done

(* Build one worker.  The default corpus is one populate (load-phase) seed
   plus random operation seeds — drawn from [gen_rng], so worker [widx]'s
   corpus is a pure function of (master_seed, widx) in any process.
   Passing [corpus] skips that draw entirely (fleet workers resuming a
   leased batch).  [whitelist] defaults to the target's own whitelist plus
   [cfg.whitelist_extra]; the in-process pool passes one shared instance. *)
let create_worker ?(log = fun _ -> ()) ?obs ?snapshot ?corpus ?whitelist ?(inv_specs = [])
    ?(static_on = false) ~cfg ~sink ~widx target =
  let gen_rng = Rng.create (cfg.master_seed + (1_000_003 * widx)) in
  let delta = Hub.fresh_delta () in
  let cur_sites = ref (Hashtbl.create 1) in
  let whitelist =
    match whitelist with
    | Some wl -> wl
    | None -> Whitelist.create (target.Target.whitelist_sites @ cfg.whitelist_extra)
  in
  let corpus =
    match corpus with
    | Some c -> c
    | None ->
        (* One populate (load-phase) seed plus random operation seeds: the
           load phase triggers resize/migration paths from the start. *)
        Mutator.populate gen_rng target.Target.profile ~factor:3
        :: List.init cfg.initial_seeds (fun _ -> Seed.gen gen_rng target.Target.profile)
  in
  let csched =
    if not cfg.corpus_sched then None
    else begin
      let cs = Corpus_sched.create () in
      List.iter (fun s -> ignore (Corpus_sched.add cs s)) corpus;
      Some cs
    end
  in
  (* The worker's permanent listener array: the delta's coverage handlers
     plus the seed-site recorder, bound once instead of rebuilt per
     campaign.  Each handler writes only its own structure, so dispatch
     order does not affect results. *)
  let seed_site_handler =
    if not static_on then fun _ -> ()
    else function
      | Runtime.Env.Ev_load { instr; _ }
      | Runtime.Env.Ev_store { instr; _ }
      | Runtime.Env.Ev_movnt { instr; _ } ->
          Hashtbl.replace !cur_sites (Runtime.Instr.to_int instr) ()
      | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ | Runtime.Env.Ev_branch _ -> ()
  in
  let bound = Array.of_list (Hub.delta_handlers delta @ [ seed_site_handler ]) in
  {
    widx;
    cfg;
    target;
    sink;
    sched_rng = Rng.create (cfg.master_seed + (500_000_003 * widx));
    gen_rng;
    corpus;
    csched;
    generation = 0;
    skip_store = Hashtbl.create 32;
    explored = Hashtbl.create 32;
    seed_sites = Hashtbl.create 32;
    engine =
      Engine.create ~evict_prob:cfg.evict_prob ~eadr:cfg.eadr ~bound ?snapshot
        ~use_checkpoint:cfg.use_checkpoint target;
    delta;
    cur_sites;
    whitelist;
    vctx = Post_failure.ctx ~images:cfg.crash_images ~whitelist target;
    inv_mon = (if inv_specs = [] then None else Some (Inv_monitor.create inv_specs));
    static_on;
    log;
    obs;
    m_campaigns =
      Obs.Metrics.counter ~labels:[ ("worker", string_of_int widx) ] "fuzz_campaigns_total";
    my_campaigns = 0;
  }

(* Prepend fresh seeds (a fleet lease) to the worker's corpus.  They lead
   the list, so generation 0's [List.hd] picks the first leased seed. *)
let refresh_corpus w seeds =
  (match w.csched with
  | Some cs -> List.iter (fun s -> ignore (Corpus_sched.add cs s)) seeds
  | None -> ());
  if seeds <> [] then w.corpus <- seeds @ w.corpus

let campaigns_done w = w.my_campaigns
let worker_whitelist w = w.whitelist

(* Session assembly from a drained hub — shared by the in-process [run]
   and the fleet worker's shard artifact. *)
let assemble_session ?static ~whitelist ~worker_campaigns hub target =
  (* Annotation count comes from the target's layout annotations. *)
  let annotations =
    let env = Runtime.Env.create ~capture_images:false ~pool_words:target.Target.pool_words () in
    target.Target.annotate env;
    Runtime.Checkers.annotation_count env.Runtime.Env.checkers
  in
  {
    report = Hub.report hub;
    alias = Hub.alias hub;
    branch = Hub.branch hub;
    timeline = Hub.timeline hub;
    campaigns_run = Hub.completed hub;
    wall_time = Hub.elapsed hub;
    annotations;
    whitelist;
    provenance = Hub.provenance hub;
    static;
    worker_campaigns;
    por = Hub.por_totals hub;
    trace_hashes = Hub.trace_hashes hub;
  }

let run ?(log = fun _ -> ()) ?obs target cfg =
  (match obs with
  | Some o ->
      Obs.Events.emit o
        (Obs.Events.Session_start
           {
             target = target.Target.name;
             workers = max 1 cfg.workers;
             max_campaigns = cfg.max_campaigns;
             master_seed = cfg.master_seed;
           })
  | None -> ());
  let snapshot = if cfg.use_checkpoint then Some (Campaign.prepare_snapshot target) else None in
  (* Static pre-pass (the LLVM-pass analogue): bound the alias-pair
     coverage map and collect the lint findings before fuzzing starts.
     Pre-pass executions do not count against the campaign budget. *)
  (* [invariants] rides on the pre-pass: mining needs its seed traces, so
     it forces one even when [static_prepass] is off — but the site-graph
     denominator and seed re-scoring stay gated on [static_prepass], so
     the invariant monitor alone never changes exploration. *)
  let prepass =
    if cfg.static_prepass || cfg.invariants then
      let analysis =
        if cfg.invariants then { Analysis.Analyzer.default_config with invariants = true }
        else Analysis.Analyzer.default_config
      in
      Some (Analyze.prepass ~analysis target)
    else None
  in
  let static =
    if cfg.static_prepass then
      Option.map (fun (r : Analysis.Analyzer.result) -> r.r_pairs) prepass
    else None
  in
  let hub = Hub.create ?static ~max_campaigns:cfg.max_campaigns () in
  let whitelist = Whitelist.create (target.Target.whitelist_sites @ cfg.whitelist_extra) in
  (match (prepass, cfg.static_prepass) with
  | Some r, true ->
      Alias_cov.set_possible (Hub.alias hub) (Analysis.Alias_pairs.possible_count r.r_pairs);
      Report.set_lint (Hub.report hub) r.r_findings;
      log
        (Printf.sprintf "static pre-pass: %d possible alias pairs, %d lint findings"
           (Analysis.Alias_pairs.possible_count r.r_pairs)
           (List.length r.r_findings))
  | _ -> ());
  let inv_specs =
    match prepass with
    | Some r when cfg.invariants -> r.Analysis.Analyzer.r_invariants
    | _ -> []
  in
  if cfg.invariants then begin
    Report.set_invariants (Hub.report hub) inv_specs;
    log (Printf.sprintf "invariant mining: %d likely invariants" (List.length inv_specs))
  end;
  (* Worker pool (§5): N domains share the hub's coverage, priority queue
     and report; each owns its RNG streams, corpus, and scratch tables, so
     campaigns do not contend.  Worker 0's streams are exactly the
     sequential fuzzer's, which keeps [workers = 1] sessions
     bit-identical to it. *)
  let log =
    let lk = Mutex.create () in
    fun m ->
      Mutex.lock lk;
      Fun.protect ~finally:(fun () -> Mutex.unlock lk) (fun () -> log m)
  in
  let sink = hub_sink hub in
  let mk_worker widx =
    create_worker ~log ?obs ?snapshot ~whitelist ~inv_specs ~static_on:(static <> None) ~cfg
      ~sink ~widx target
  in
  let nworkers = max 1 cfg.workers in
  let workers = Array.init nworkers mk_worker in
  if nworkers = 1 then worker_loop workers.(0)
  else
    (* Domain-per-worker (§5): truly parallel campaigns on OCaml 5. *)
    Array.map (fun w -> Domain.spawn (fun () -> worker_loop w)) workers
    |> Array.iter Domain.join;
  let session =
    assemble_session ?static:prepass ~whitelist
      ~worker_campaigns:(Array.map (fun w -> w.my_campaigns) workers)
      hub target
  in
  (match obs with
  | Some o ->
      Obs.Events.emit o
        (Obs.Events.Session_end
           {
             campaigns = session.campaigns_run;
             wall = session.wall_time;
             bugs = List.length (Report.bug_groups session.report);
           })
  | None -> ());
  session

(* Session-level matching of the target's seeded ground truth:
   - Inter/Intra/Sync bugs match a validated unique-bug group;
   - "Other" bugs with a read site (e.g. redundant writes) match an
     inconsistency candidate pair;
   - "Other" bugs without one (e.g. a missing unlock) match when their
     branch site was covered and a hang was recorded. *)
let found_known_bugs (session : session) (target : Target.t) =
  let groups = Report.bug_groups session.report in
  let group_matches = Report.match_known target groups in
  let pairs = Report.candidate_pairs session.report in
  List.map
    (fun ((kb : Target.known_bug), found) ->
      match kb.kb_type with
      | `Inter | `Intra | `Sync -> (kb, found)
      | `Other -> (
          match (kb.kb_write_site, kb.kb_read_site) with
          | Some w, Some r ->
              (kb, List.exists (fun (w', r', _) -> String.equal w w' && String.equal r r') pairs)
          | Some w, None ->
              ( kb,
                Branch_cov.covered session.branch (Runtime.Instr.site w)
                && Report.hangs session.report <> [] )
          | None, _ -> (kb, false)))
    group_matches

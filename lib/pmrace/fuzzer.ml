(* The PM-aware coverage-guided fuzzing loop (§4.2.3).

   Three tiers of exploration:
   - Execution tier: re-run the same (seed, interleaving) with different
     scheduler seeds; non-determinism alone uncovers some interleavings.
   - Interleaving tier: pick the next unexplored entry from the
     shared-access priority queue and drive the execution towards reading
     non-persisted data with the sync-point policy.
   - Seed tier: when interleavings stop improving coverage, evolve the
     corpus with the operation mutator (or the populate fallback) and
     rebuild the priority queue.

   Feedback is the sum of PM alias pair coverage and branch coverage.
   Every newly discovered unique inconsistency is validated post-failure
   immediately, so the session report carries verdicts. *)

module Rng = Sched.Rng

type mode = Mode_pmrace | Mode_delay | Mode_random

type config = {
  max_campaigns : int;
  execs_per_interleaving : int;
  max_interleavings_per_seed : int;
  master_seed : int;
  mode : mode;
  interleaving_tier : bool; (* false = the "w/o IE" ablation of Fig. 9 *)
  seed_tier : bool; (* false = the "w/o SE" ablation of Fig. 9 *)
  use_checkpoint : bool;
  step_budget : int;
  validate : bool;
  evict_prob : float;
  eadr : bool; (* fuzz on an eADR platform (§6.6) *)
  workers : int; (* concurrent fuzzing workers sharing coverage (§5) *)
  initial_seeds : int;
  whitelist_extra : string list;
  static_prepass : bool;
      (* run the offline analyzer first (the LLVM pre-pass analogue): its
         site graph bounds alias coverage (achieved/possible) and seeds
         touching uncovered possible pairs are preferred as parents *)
}

let default_config =
  {
    max_campaigns = 120;
    execs_per_interleaving = 3;
    max_interleavings_per_seed = 8;
    master_seed = 42;
    mode = Mode_pmrace;
    interleaving_tier = true;
    seed_tier = true;
    use_checkpoint = true;
    step_budget = 60_000;
    validate = true;
    evict_prob = 0.;
    eadr = false;
    workers = 1;
    initial_seeds = 2;
    whitelist_extra = [];
    static_prepass = false;
  }

(* Reproduction provenance for one campaign: the exact inputs that replay
   it (the "corresponding program inputs" of the paper's bug reports). *)
type provenance = { p_seed : Seed.t; p_sched_seed : int; p_policy : string }

type timeline_point = {
  tp_campaign : int;
  tp_time : float; (* seconds since session start *)
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

type session = {
  report : Report.t;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  timeline : timeline_point list; (* chronological *)
  campaigns_run : int;
  wall_time : float;
  annotations : int;
  whitelist : Whitelist.t;
  provenance : (int, provenance) Hashtbl.t; (* campaign index -> inputs *)
  static : Analysis.Analyzer.result option; (* the pre-pass, when enabled *)
}

(* A fuzzing worker: its own generator state and corpus; everything else
   (coverage, report, priority queue, checkpoint) is shared, as the worker
   processes of §5 share the coverage bitmap and seed pool. *)
type worker = { w_rng : Rng.t; mutable w_corpus : Seed.t list; mutable w_generation : int }

type state = {
  cfg : config;
  target : Target.t;
  rng : Rng.t;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  queue : Shared_queue.t;
  report : Report.t;
  whitelist : Whitelist.t;
  snapshot : Pmem.Pool.snapshot option;
  skip_store : (int * int, int) Hashtbl.t; (* (seed id, addr) -> skip *)
  explored : (int, int) Hashtbl.t;
  static : Analysis.Alias_pairs.t option; (* possible pairs from the pre-pass *)
  seed_sites : (int, (int, unit) Hashtbl.t) Hashtbl.t; (* seed id -> sites touched *)
  (* shared across workers, like the shared bitmap of §5 *)
  provenance : (int, provenance) Hashtbl.t;
  (* per-address exploration state: number of attempts, negative once the
     sync point actually triggered.  Global across seeds so successive
     generations progress down the priority queue; cleared when
     exhausted. *)
  mutable campaigns : int;
  mutable timeline : timeline_point list;
  started : float;
  log : string -> unit;
}

let now () = Unix.gettimeofday ()

let hang_info (result : Campaign.result) =
  match result.outcome.hung with
  | (_, name) :: _ -> Printf.sprintf "hung:%s" name
  | [] -> (
      match
        List.find_opt
          (fun (_, _, e) -> match e with Runtime.Mem.Stuck _ -> true | _ -> false)
          result.outcome.failed
      with
      | Some (_, _, Runtime.Mem.Stuck site) -> Printf.sprintf "stuck:%s" site
      | Some _ | None -> "hang")

(* Run one campaign and fold its results into the session state.  Returns
   (coverage-improved, result). *)
let policy_label = function
  | Campaign.Pmrace { entry; _ } ->
      Printf.sprintf "PM-aware sync point @ addr %d" entry.Shared_queue.addr
  | Campaign.Delay _ -> "random delay injection"
  | Campaign.Random_sched -> "random scheduling"
  | Campaign.No_preempt -> "no preemption"

(* Record which instruction sites a seed's executions touch, for scoring
   against the pre-pass's uncovered possible pairs. *)
let seed_site_listener st seed env =
  match st.static with
  | None -> ()
  | Some _ ->
      let sites =
        match Hashtbl.find_opt st.seed_sites (Seed.id seed) with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 32 in
            Hashtbl.add st.seed_sites (Seed.id seed) s;
            s
      in
      Runtime.Env.add_listener env (function
        | Runtime.Env.Ev_load { instr; _ }
        | Runtime.Env.Ev_store { instr; _ }
        | Runtime.Env.Ev_movnt { instr; _ } ->
            Hashtbl.replace sites (Runtime.Instr.to_int instr) ()
        | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ | Runtime.Env.Ev_branch _ -> ())

(* Re-score a seed after a campaign: its priority is the number of
   statically-possible, still-uncovered alias pairs whose write and read
   sites the seed has both reached.  Seeds that keep touching covered
   ground decay to priority 0 and lose their parent preference. *)
let rescore_seed st seed =
  match st.static with
  | None -> ()
  | Some pairs ->
      List.iter
        (fun (w, r) ->
          Analysis.Alias_pairs.mark_achieved pairs ~write:(Runtime.Instr.of_int w)
            ~read:(Runtime.Instr.of_int r))
        (Alias_cov.site_pairs st.alias);
      let sites =
        Option.value ~default:(Hashtbl.create 1) (Hashtbl.find_opt st.seed_sites (Seed.id seed))
      in
      let score =
        List.fold_left
          (fun n (p : Analysis.Alias_pairs.pair) ->
            if
              Hashtbl.mem sites (Runtime.Instr.to_int p.Analysis.Alias_pairs.pw)
              && Hashtbl.mem sites (Runtime.Instr.to_int p.Analysis.Alias_pairs.pr)
            then n + 1
            else n)
          0
          (Analysis.Alias_pairs.uncovered pairs)
      in
      Seed.set_priority seed score

let do_campaign st seed policy =
  let before = Alias_cov.count st.alias + Branch_cov.count st.branch in
  let inter_before = Report.inconsistency_count st.report Runtime.Candidates.Inter in
  let sched_seed = Rng.int st.rng 1_000_000_000 in
  Hashtbl.replace st.provenance st.campaigns
    { p_seed = seed; p_sched_seed = sched_seed; p_policy = policy_label policy };
  let input =
    Campaign.input ~sched_seed ~policy ?snapshot:st.snapshot ~step_budget:st.cfg.step_budget
      ~capture_images:true ~evict_prob:st.cfg.evict_prob ~eadr:st.cfg.eadr st.target seed
  in
  let listeners =
    [
      Alias_cov.attach st.alias;
      Branch_cov.attach st.branch;
      Shared_queue.attach st.queue;
      seed_site_listener st seed;
    ]
  in
  let result = Campaign.run ~listeners input in
  let new_findings, new_sync =
    Report.absorb st.report result.env ~hung:result.hung ~hang_info:(hang_info result)
  in
  if st.cfg.validate then begin
    List.iter
      (fun (f : Report.finding) ->
        f.verdict <- Some (Post_failure.validate_inconsistency st.target st.whitelist f.inc))
      new_findings;
    List.iter
      (fun (f : Report.sync_finding) ->
        f.sync_verdict <- Some (Post_failure.validate_sync st.target f.ev))
      new_sync
  end;
  st.campaigns <- st.campaigns + 1;
  rescore_seed st seed;
  let inter_now = Report.inconsistency_count st.report Runtime.Candidates.Inter in
  st.timeline <-
    {
      tp_campaign = st.campaigns;
      tp_time = now () -. st.started;
      tp_alias_bits = Alias_cov.count st.alias;
      tp_branch_bits = Branch_cov.count st.branch;
      tp_inter_unique = inter_now;
      tp_new_inter = inter_now > inter_before;
    }
    :: st.timeline;
  let after = Alias_cov.count st.alias + Branch_cov.count st.branch in
  (after > before, result)

let budget_left st = st.campaigns < st.cfg.max_campaigns

(* The PM-aware schedule: recon run, then interleaving tier over queue
   entries, with the execution tier inside. *)
let fuzz_seed_pmrace st seed =
  if budget_left st then begin
    (* Recon execution: gathers shared accesses for the priority queue. *)
    let improved, _ = do_campaign st seed Campaign.Random_sched in
    ignore improved;
    if st.cfg.interleaving_tier then begin
      let exhausted addr =
        match Hashtbl.find_opt st.explored addr with
        | Some n -> n < 0 || n >= 3 (* triggered, or tried repeatedly without success *)
        | None -> false
      in
      let unexplored () =
        Shared_queue.entries st.queue
        |> List.filter (fun (e : Shared_queue.entry) -> not (exhausted e.addr))
      in
      let entries =
        match unexplored () with
        | [] ->
            (* Every shared address has been tried: start a fresh sweep. *)
            Hashtbl.reset st.explored;
            unexplored ()
        | es -> es
      in
      let rec explore entries tried =
        match entries with
        | [] -> ()
        | _ when (not (budget_left st)) || tried >= st.cfg.max_interleavings_per_seed -> ()
        | entry :: rest ->
            let attempts =
              max 0 (Option.value ~default:0 (Hashtbl.find_opt st.explored entry.Shared_queue.addr))
            in
            Hashtbl.replace st.explored entry.Shared_queue.addr (attempts + 1);
            let rec exec_tier n stale =
              if n < st.cfg.execs_per_interleaving && budget_left st && stale < 2 then begin
                let skip =
                  Option.value ~default:0
                    (Hashtbl.find_opt st.skip_store (Seed.id seed, entry.Shared_queue.addr))
                in
                let improved, result =
                  do_campaign st seed (Campaign.Pmrace { entry; skip })
                in
                (match result.sync with
                | Some sync ->
                    Hashtbl.replace st.skip_store
                      (Seed.id seed, entry.Shared_queue.addr)
                      (Sync_policy.next_skip sync ~previous:skip);
                    if Sync_policy.triggered sync then
                      Hashtbl.replace st.explored entry.Shared_queue.addr (-1)
                | None -> ());
                exec_tier (n + 1) (if improved then 0 else stale + 1)
              end
            in
            exec_tier 0 0;
            explore rest (tried + 1)
      in
      explore entries 0
    end
    else begin
      (* w/o IE: only the execution tier — repeated random-schedule runs. *)
      let rec exec_tier n stale =
        if n < st.cfg.execs_per_interleaving * st.cfg.max_interleavings_per_seed
           && budget_left st && stale < 4
        then begin
          let improved, _ = do_campaign st seed Campaign.Random_sched in
          exec_tier (n + 1) (if improved then 0 else stale + 1)
        end
      in
      exec_tier 0 0
    end
  end

let next_seed st (w : worker) =
  if (not st.cfg.seed_tier) || w.w_corpus = [] then
    match w.w_corpus with
    | s :: _ -> s
    | [] ->
        let s = Seed.gen w.w_rng st.target.Target.profile in
        w.w_corpus <- [ s ];
        s
  else if w.w_generation > 0 && w.w_generation mod 5 = 4 then begin
    (* The populate fallback: a load phase with many inserts. *)
    let s = Mutator.populate w.w_rng st.target.Target.profile ~factor:3 in
    w.w_corpus <- s :: w.w_corpus;
    s
  end
  else begin
    (* Parent selection: when the static pre-pass is live, prefer seeds
       touching uncovered statically-possible alias pairs (highest
       priority wins, random among ties); otherwise uniform. *)
    let parent =
      let best =
        match st.static with
        | None -> []
        | Some _ ->
            let top =
              List.fold_left (fun m s -> max m (Seed.priority s)) 0 w.w_corpus
            in
            if top = 0 then [] else List.filter (fun s -> Seed.priority s = top) w.w_corpus
      in
      match best with [] -> Rng.pick w.w_rng w.w_corpus | cs -> Rng.pick w.w_rng cs
    in
    let _, child = Mutator.evolve w.w_rng st.target.Target.profile ~corpus:w.w_corpus parent in
    w.w_corpus <- child :: w.w_corpus;
    child
  end

let run ?(log = fun _ -> ()) target cfg =
  let rng = Rng.create cfg.master_seed in
  let snapshot = if cfg.use_checkpoint then Some (Campaign.prepare_snapshot target) else None in
  (* Static pre-pass (the LLVM-pass analogue): bound the alias-pair
     coverage map and collect the lint findings before fuzzing starts.
     Pre-pass executions do not count against the campaign budget. *)
  let prepass = if cfg.static_prepass then Some (Analyze.prepass target) else None in
  let st =
    {
      cfg;
      target;
      rng;
      alias = Alias_cov.create ();
      branch = Branch_cov.create ();
      queue = Shared_queue.create ();
      report = Report.create ();
      whitelist = Whitelist.create (target.Target.whitelist_sites @ cfg.whitelist_extra);
      snapshot;
      skip_store = Hashtbl.create 32;
      explored = Hashtbl.create 32;
      static = Option.map (fun (r : Analysis.Analyzer.result) -> r.r_pairs) prepass;
      seed_sites = Hashtbl.create 32;
      provenance = Hashtbl.create 64;
      campaigns = 0;
      timeline = [];
      started = now ();
      log;
    }
  in
  (match prepass with
  | Some r ->
      Alias_cov.set_possible st.alias (Analysis.Alias_pairs.possible_count r.r_pairs);
      Report.set_lint st.report r.r_findings;
      log
        (Printf.sprintf "static pre-pass: %d possible alias pairs, %d lint findings"
           (Analysis.Alias_pairs.possible_count r.r_pairs)
           (List.length r.r_findings))
  | None -> ());
  (* Worker pool (§5): the main process dispatches seeds to workers that
     share coverage, the priority queue and the report; each has its own
     generator state and corpus, so their campaigns do not contend. *)
  let workers =
    Array.init (max 1 cfg.workers) (fun i ->
        let w_rng = Rng.create (cfg.master_seed + (1_000_003 * i)) in
        {
          w_rng;
          w_corpus =
            (* One populate (load-phase) seed plus random operation seeds:
               the load phase triggers resize/migration paths from the
               start. *)
            Mutator.populate w_rng target.Target.profile ~factor:3
            :: List.init cfg.initial_seeds (fun _ -> Seed.gen w_rng target.Target.profile);
          w_generation = 0;
        })
  in
  let pick_seed w = if w.w_generation = 0 then List.hd w.w_corpus else next_seed st w in
  (match cfg.mode with
  | Mode_pmrace ->
      let wi = ref 0 in
      while budget_left st do
        let w = workers.(!wi mod Array.length workers) in
        incr wi;
        let seed = pick_seed w in
        st.log
          (Printf.sprintf "campaign %d/%d: worker %d seed #%d (gen %d)" st.campaigns
             cfg.max_campaigns (!wi mod Array.length workers) (Seed.id seed) w.w_generation);
        fuzz_seed_pmrace st seed;
        w.w_generation <- w.w_generation + 1
      done
  | Mode_delay | Mode_random ->
      let wi = ref 0 in
      while budget_left st do
        let w = workers.(!wi mod Array.length workers) in
        incr wi;
        let seed = pick_seed w in
        let policy =
          match cfg.mode with
          | Mode_delay -> Campaign.Delay { prob = 0.08; max_delay = 25 }
          | Mode_random | Mode_pmrace -> Campaign.Random_sched
        in
        let rec exec n stale =
          if n < cfg.execs_per_interleaving * cfg.max_interleavings_per_seed
             && budget_left st && stale < 6
          then begin
            let improved, _ = do_campaign st seed policy in
            exec (n + 1) (if improved then 0 else stale + 1)
          end
        in
        exec 0 0;
        w.w_generation <- w.w_generation + 1
      done);
  (* Annotation count comes from the target's layout annotations. *)
  let annotations =
    let env = Runtime.Env.create ~capture_images:false ~pool_words:target.Target.pool_words () in
    target.Target.annotate env;
    Runtime.Checkers.annotation_count env.Runtime.Env.checkers
  in
  {
    report = st.report;
    alias = st.alias;
    branch = st.branch;
    timeline = List.rev st.timeline;
    campaigns_run = st.campaigns;
    wall_time = now () -. st.started;
    annotations;
    whitelist = st.whitelist;
    provenance = st.provenance;
    static = prepass;
  }

(* Session-level matching of the target's seeded ground truth:
   - Inter/Intra/Sync bugs match a validated unique-bug group;
   - "Other" bugs with a read site (e.g. redundant writes) match an
     inconsistency candidate pair;
   - "Other" bugs without one (e.g. a missing unlock) match when their
     branch site was covered and a hang was recorded. *)
let found_known_bugs (session : session) (target : Target.t) =
  let groups = Report.bug_groups session.report in
  let group_matches = Report.match_known target groups in
  let pairs = Report.candidate_pairs session.report in
  List.map
    (fun ((kb : Target.known_bug), found) ->
      match kb.kb_type with
      | `Inter | `Intra | `Sync -> (kb, found)
      | `Other -> (
          match (kb.kb_write_site, kb.kb_read_site) with
          | Some w, Some r ->
              (kb, List.exists (fun (w', r', _) -> String.equal w w' && String.equal r r') pairs)
          | Some w, None ->
              ( kb,
                Branch_cov.covered session.branch (Runtime.Instr.site w)
                && Report.hangs session.report <> [] )
          | None, _ -> (kb, false)))
    group_matches

(** Post-failure validation (§4.4): boot the crash image captured at each
    inconsistency, run the target's recovery code, and decide whether the
    application-specific recovery fixed it. *)

type verdict =
  | Validated_fp  (** fixed by the immediate recovery *)
  | Whitelisted_fp  (** covered by the benign-read whitelist *)
  | Bug of { recovery_hang : bool }
      (** not fixed; [recovery_hang] when the recovery itself got stuck *)

val pp_verdict : Format.formatter -> verdict -> unit

val run_recovery :
  ?listeners:(Runtime.Env.t -> unit) list ->
  Target.t ->
  Pmem.Pool.image ->
  Runtime.Env.t * (int, unit) Hashtbl.t * bool
(** Run recovery on a crash image; returns the post-recovery environment,
    the set of PM words recovery overwrote, and whether it hung.
    [listeners] (e.g. {!Runtime.Trace.attach}) are applied to the booted
    environment before recovery starts. *)

val validate_inconsistency :
  Target.t -> Whitelist.t -> Runtime.Checkers.inconsistency -> verdict
(** False positive iff every side-effect word was overwritten during the
    immediate recovery (or the reading site is whitelisted). *)

val validate_ordering :
  Target.t -> image:Pmem.Pool.image option -> eff_words:int list -> verdict
(** Validate an ordering-invariant violation: false positive iff the
    target's recovery, run on the crash image captured at the violating
    store, overwrites every still-pending source word ([eff_words]). *)

val validate_sync : Target.t -> Runtime.Checkers.sync_event -> verdict
(** False positive iff recovery restores the annotated variable to its
    expected initial value. *)

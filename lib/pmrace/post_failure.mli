(** Post-failure validation (§4.4), over enumerated crash images.

    Validation boots the crash state captured at each candidate, runs the
    target's recovery code, and decides whether the application-specific
    recovery fixed it.  The durable state at a failure is underdetermined,
    so validation enumerates the reachable images ({!Pmem.Crash_images})
    up to a budget: a candidate is a {e bug} as soon as any enumerated
    image survives recovery, and the verdict records which image index
    reproduced so [pmrace replay] can rebuild that exact image.  Budget 1
    validates only the base image — the historical behaviour. *)

type verdict =
  | Validated_fp  (** every enumerated image was fixed by immediate recovery *)
  | Whitelisted_fp  (** covered by the benign-read whitelist *)
  | Bug of { recovery_hang : bool; image_index : int }
      (** not fixed on enumerated image [image_index] ([0] is the base
          crash image); [recovery_hang] when the recovery itself got
          stuck *)

val pp_verdict : Format.formatter -> verdict -> unit

type recovery_result = {
  env : Runtime.Env.t;  (** the post-recovery environment *)
  overwritten : (int, unit) Hashtbl.t;  (** PM words recovery stored to *)
  hung : bool;  (** recovery got stuck (spin lock, kill) *)
}

val run_recovery :
  ?listeners:(Runtime.Env.t -> unit) list ->
  Target.t ->
  Pmem.Pool.image ->
  recovery_result
(** Run recovery on one crash image.  [listeners] (e.g.
    {!Runtime.Trace.attach}) are applied to the booted environment before
    recovery starts. *)

(** The three candidate kinds post-failure validation decides on. *)
module Candidate : sig
  type t =
    | Inconsistency of Runtime.Checkers.inconsistency
        (** false positive iff every side-effect word is overwritten
            during recovery (or the reading site is whitelisted) *)
    | Ordering of { crash : Pmem.Crash_images.state option; eff_words : int list }
        (** a mined ordering-invariant violation: false positive iff
            recovery rewrites every source word the crash left
            unpersisted *)
    | Sync of Runtime.Checkers.sync_event
        (** false positive iff recovery restores the annotated variable
            to its expected initial value *)
end

type ctx
(** Validation context: target, whitelist, image budget. *)

val ctx : ?images:int -> ?whitelist:Whitelist.t -> Target.t -> ctx
(** [images] is the crash-image budget — how many enumerated images are
    recovered at most per candidate (default [1], clamped to [>= 1]);
    [whitelist] defaults to empty. *)

val validate : ctx -> Candidate.t -> verdict
(** Validate one candidate: enumerate its crash surface in deterministic
    order, run recovery on up to [images] of them, and report [Bug] with
    the first image index that survives (or hangs) recovery.  Images in
    which the crash itself repaired the candidate (e.g. the inconsistency
    source drained) are skipped without spending budget.  Image 0 — the
    base crash image — is always validated first, so budget 1 is
    bit-identical to historical single-image validation. *)

(** PM alias pair coverage (§4.2.1): a bitmap over hashed pairs of
    back-to-back PM accesses to the same address by different threads, each
    access identified by (instruction, persistency state, thread).  New
    bits are the fuzzer's interleaving-coverage feedback. *)

type t

type access = { a_instr : int; a_dirty : bool; a_tid : int }

val create : ?size_log:int -> unit -> t
(** A bitmap with [2^size_log] bits (default 16, i.e. a 64 Kbit map). *)

val observe : t -> prev:access -> cur:access -> bool
(** Feed one back-to-back pair; returns [true] when it sets a new bit.
    Same-thread pairs are ignored (they are not alias pairs). *)

val count : t -> int
(** Number of set bits — the coverage measure. *)

val merge_into : src:t -> t -> unit
(** Fold [src] (a worker's per-campaign delta) into a shared map: OR the
    bitmaps and union the achieved site pairs.  The destination's [count]
    only grows by genuinely new bits, so a before/after [count] comparison
    across a merge is the coverage-improvement signal.  Maps must have the
    same size.  Not itself synchronised — callers serialise merges (the
    fuzzer's hub does this under one mutex). *)

val record_site_pair : t -> write_instr:int -> read_instr:int -> unit
(** Register a (write site, read site) pair as dynamically achieved — a
    cross-thread dirty read.  {!attach} does this automatically. *)

val achieved_site_pairs : t -> int
(** Distinct achieved (write site, read site) pairs. *)

val site_pairs : t -> (int * int) list
(** The achieved pairs themselves, as raw instruction ids, sorted. *)

val set_possible : t -> int -> unit
(** Install the statically-possible pair count computed by the offline
    analyzer's site graph — the coverage denominator. *)

val possible : t -> int option

val pp_site_coverage : Format.formatter -> t -> unit
(** "achieved/possible site pairs", or just the achieved count when no
    static pre-pass ran. *)

type tracker
(** Per-execution scratch (previous accessor and last writer per address).
    The persistent-mode engine keeps one per worker and resets it between
    campaigns instead of allocating fresh closures. *)

val tracker : unit -> tracker
val reset_tracker : tracker -> unit

val handler : t -> tracker -> Runtime.Env.event -> unit
(** The event handler behind {!attach}, exposed so workers can install it
    in a pre-bound listener array. *)

val clear : t -> unit
(** Empty the map (bitmap, count, achieved pairs, denominator) so a
    worker-local delta can be reused across campaigns. *)

val attach : t -> Runtime.Env.t -> unit
(** Subscribe to an execution's access events and feed the bitmap
    (transient listener with a fresh {!tracker}). *)

val to_json : t -> Obs.Json.t
(** Wire/store codec (fleet mode): the bitmap as hex plus the achieved
    site pairs {e by name}, so the pairs survive processes with different
    site-id layouts.  The static denominator is not carried. *)

val of_json : Obs.Json.t -> (t, string) result
(** Decode; re-registers site names via {!Runtime.Instr.site}. *)

(** Detailed bug reports (§4.1 step 6): the sites involved in each
    surviving inconsistency, its validation verdict, and the exact inputs
    (operation sequence, scheduler seed, interleaving policy) that replay
    the buggy execution deterministically. *)

val pp_finding : Format.formatter -> Fuzzer.session -> Report.finding -> unit
val pp_sync_finding : Format.formatter -> Fuzzer.session -> Report.sync_finding -> unit

val render_bugs : Format.formatter -> Fuzzer.session -> unit
(** Every finding that survived post-failure validation, as numbered
    reports with reproduction instructions. *)

val pp_lint_finding : Format.formatter -> Analysis.Lint.finding -> unit

val render_lint : Format.formatter -> Analysis.Lint.finding list -> unit
(** The offline analyzer's persistency-lint findings, as numbered reports
    (used by [pmrace analyze]). *)

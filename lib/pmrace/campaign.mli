(** One fuzz campaign: a single concurrent execution of a target with a
    seed, an interleaving policy and a scheduler seed.  Pools start from a
    fresh target initialisation or an in-memory checkpoint (§5); checker
    state is reset after initialisation. *)

module Scheduler = Sched.Scheduler
module Env = Runtime.Env

type policy_spec =
  | Pmrace of { entry : Shared_queue.entry; skip : int }
      (** PM-aware sync-point scheduling on one queue entry *)
  | Delay of { prob : float; max_delay : int }  (** the Delay-Inj baseline *)
  | Random_sched  (** plain preemption at every instrumented operation *)
  | No_preempt

type input = {
  target : Target.t;
  seed : Seed.t;
  sched_seed : int;
  policy : policy_spec;
  snapshot : Pmem.Pool.snapshot option;
  step_budget : int;
  capture_images : bool;
  evict_prob : float;
  eadr : bool;  (** run on an eADR platform (§6.6): flushes unnecessary *)
  por : bool;
      (** run under {!Sched.Scheduler.run_por}: sleep-set pruning plus a
          canonical trace hash.  [false] (the default) leaves the
          schedule — and every RNG draw — bit-identical to before the
          POR layer existed. *)
  por_digest : bool;
      (** [false] short-circuits the Foata-layer/trace-hash digesting
          while keeping the sleep-set schedule unchanged — for consumers
          (replay) that re-run a POR campaign for its schedule only.
          [true] (the default) digests as before. *)
}

val input :
  ?sched_seed:int ->
  ?policy:policy_spec ->
  ?snapshot:Pmem.Pool.snapshot ->
  ?step_budget:int ->
  ?capture_images:bool ->
  ?evict_prob:float ->
  ?eadr:bool ->
  ?por:bool ->
  ?por_digest:bool ->
  Target.t ->
  Seed.t ->
  input

type result = {
  env : Env.t;  (** checkers carry the campaign's findings *)
  outcome : Scheduler.outcome;
  sync : Sync_policy.t option;
  hung : bool;  (** budget exhaustion or a stuck spin lock *)
  por : Por.stats option;
      (** trace hash + pruning counters, when the input asked for POR *)
}

val prepare_snapshot : Target.t -> Pmem.Pool.snapshot
(** Initialise a pool once and capture the in-memory checkpoint reused by
    subsequent campaigns (alias of {!Engine.prepare_snapshot}). *)

val run : ?engine:Engine.t -> ?listeners:(Env.t -> unit) list -> input -> result
(** Execute the campaign.  [listeners] (e.g. {!Alias_cov.attach} partially
    applied) are attached to the environment before the run as transient
    listeners.  With [engine], the environment comes from
    {!Engine.checkout} and the engine's configuration governs — the
    input's [snapshot], [capture_images], [evict_prob] and [eadr] fields
    are ignored; without it, a fresh environment is constructed from the
    input exactly as before. *)

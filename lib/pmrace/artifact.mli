(** Versioned JSON session artifacts ([pmrace fuzz --json-out FILE]).

    An artifact is the durable record of one fuzzing session: the exact
    configuration, the coverage outcome and timeline, the unique-bug
    groups, every campaign's provenance (seed, scheduler seed, policy
    spec), and the metrics snapshot.  [pmrace replay] and the benchmark
    harness consume artifacts instead of re-deriving state from live
    sessions.

    The encoding is {!Obs.Json} (hand-rolled, no dependencies) under a
    [schema]/[version] header.  Readers reject unknown schemas and newer
    majors; adding fields is a compatible change and does not bump the
    version. *)

val schema : string
(** ["pmrace-session"] *)

val version : int
(** [5]: adds [config.por], the per-campaign canonical trace hash in
    provenance, and the session-level POR pruning totals; v4 added
    [config.crash_images] and the per-bug [image_index] (which
    enumerated crash image reproduced the bug, for replay); v3 added
    the per-shard [origins] list written by {!merge} (fleet mode) and
    [config.corpus_sched]; v2 added the lint-finding list, the
    mined-invariant section, and [config.invariants].  Older artifacts
    still decode (the new fields default to empty/false/defaults);
    newer-than-[version] artifacts are rejected. *)

type bug = {
  b_kind : string;  (** "inter" | "intra" | "sync" *)
  b_site : string;  (** write site, or sync variable name *)
  b_read_sites : string list;
  b_members : int;
  b_first_campaign : int option;
      (** campaign index of the group's earliest member finding *)
  b_image_index : int option;
      (** crash-image index ({!Pmem.Crash_images} enumeration order) of
          the earliest member's bug verdict — the image replay rebuilds;
          [None] in pre-v4 artifacts *)
}

type prov_entry = {
  pr_campaign : int;
  pr_sched_seed : int;
  pr_policy : string;  (** human-readable label *)
  pr_seed : Seed.t;
  pr_spec : Campaign.policy_spec;
  pr_trace : int64 option;
      (** canonical Mazurkiewicz-trace hash of the executed schedule
          ({!Por.stats}); [None] when POR was off or in pre-v5 artifacts *)
}

type lint_entry = {
  l_kind : string;  (** {!Analysis.Lint.kind_slug} *)
  l_severity : string;  (** "high" | "medium" | "low" *)
  l_write_site : string option;
  l_site : string;
  l_addr : int;
  l_count : int;
}

type inv_spec_entry = {
  ie_label : string;  (** {!Analysis.Invariants.label} *)
  ie_kind : string;  (** "order" | "commit" *)
  ie_support : int;
}

type inv_finding_entry = {
  ivf_label : string;
  ivf_kind : string;
  ivf_site : string;
  ivf_addr : int;
  ivf_campaign : int;
  ivf_verdict : string option;
}

type origin = {
  o_label : string;  (** merge-time label, normally the shard's file name *)
  o_campaigns : int;
  o_wall_time : float;
  o_offset : int;
      (** the shard's campaign re-index base: add it to an index local to
          the shard to get the merged index *)
}
(** One merged-in session shard (v3). *)

type t = {
  a_target : string;
  a_config : Fuzzer.config;
  a_campaigns : int;
  a_wall_time : float;
  a_annotations : int;
  a_worker_campaigns : int list;
  a_alias_bits : int;
  a_branch_bits : int;
  a_possible_pairs : int option;
  a_site_pairs : (string * string) list;  (** (write site, read site), by name *)
  a_timeline : Fuzzer.timeline_point list;
  a_bugs : bug list;
  a_hangs : (string * int) list;
  a_lint : lint_entry list;  (** static pre-pass lint findings (v2) *)
  a_invariants : inv_spec_entry list;  (** the mined monitor set (v2) *)
  a_inv_findings : inv_finding_entry list;  (** invariant violations (v2) *)
  a_provenance : prov_entry list;  (** sorted by campaign index *)
  a_origins : origin list;
      (** merged shards in merge order (v3); [[]] for a single session *)
  a_por : Hub.por_totals option;
      (** schedule-pruning totals (v5); [None] when POR was off.  After
          {!merge}, counters are summed across shards — trace dedup is
          shard-local, so the merged unique-trace count is an upper
          bound. *)
  a_metrics : Obs.Json.t;  (** opaque {!Obs.Metrics.to_json} snapshot *)
}

val of_session : target:Target.t -> cfg:Fuzzer.config -> Fuzzer.session -> t
val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Decoding re-registers instruction site names via {!Runtime.Instr.site},
    so policy specs round-trip into live campaign inputs. *)

val write : path:string -> t -> unit
val read : path:string -> (t, string) result

val find_provenance : t -> int -> prov_entry option
(** Look up one campaign's provenance by campaign index. *)

val bug_fingerprints : t -> (string * string) list
(** The (kind, site) pairs of the unique-bug groups, sorted — the
    session identity the golden round-trip test and [pmrace replay]
    compare. *)

val merge : (string * t) list -> (t, string) result
(** [merge [(label, shard); ...]] unions session shards of the {e same
    target} into one artifact ([pmrace merge]).  Campaign indices are
    re-based per shard (shard [i] shifts by the summed span of the shards
    before it) and the shifts are recorded in [a_origins], so provenance
    stays replayable by merged index.  Bug groups dedup by (kind, site)
    with members summed, read sites unioned and the earliest first
    sighting kept; named site pairs, lint and mined invariants union;
    campaign counts, wall time and hang counts sum.  Raw alias/branch
    bitmap counts are per-process, so the merged counts are the max over
    shards (a lower bound on the true union — [a_site_pairs] is exact).
    Merging already-merged artifacts flattens their origins under the
    outer label.  Errors on an empty list or a target mismatch;
    [a_config] is the first shard's. *)

(** {2 Codec exports}

    Fleet wire/store messages ({!Fleet.Wire}) reuse the artifact codecs
    for seeds and policy specs, so one encoding round-trips everywhere.
    Decoders re-register site names via {!Runtime.Instr.site}. *)

val seed_to_json : Seed.t -> Obs.Json.t
val seed_of_json : Obs.Json.t -> (Seed.t, string) result
val spec_to_json : Campaign.policy_spec -> Obs.Json.t
val spec_of_json : Obs.Json.t -> (Campaign.policy_spec, string) result

val first_campaign : Report.t -> Report.bug_group -> int option
(** The campaign index of a bug group's earliest member finding (the
    [b_first_campaign] source), recovered by matching group identity
    against the session's fine-grained findings. *)

(* Replay one recorded campaign and check the bug reappears.

   The campaign is reconstructed exactly as the fuzzer ran it: same seed,
   same scheduler seed, same policy spec (for a Pmrace policy this
   includes the sync-point queue entry and skip count), same execution
   parameters from the recorded config.  Determinism of the scheduler and
   the policy RNG split makes the re-execution bit-identical, so the same
   unique inconsistency is rediscovered and revalidated. *)

type outcome = {
  r_bug : Artifact.bug;
  r_campaign : int;
  r_reproduced : bool;
  r_groups : Report.bug_group list;
  r_image_index : int option;
      (* crash-image index the bug reproduced on this run, when it did *)
}

let kind_string = function `Inter -> "inter" | `Intra -> "intra" | `Sync -> "sync"

let hang_info (result : Campaign.result) =
  match result.outcome.hung with
  | (_, name) :: _ -> Printf.sprintf "hung:%s" name
  | [] -> "replay-hang"

let replay_bug ~(target : Target.t) ~(artifact : Artifact.t) ~bug =
  if not (String.equal target.Target.name artifact.Artifact.a_target) then
    Error
      (Printf.sprintf "artifact was recorded for target %S, not %S" artifact.Artifact.a_target
         target.Target.name)
  else
    match List.nth_opt artifact.a_bugs bug with
    | None ->
        Error (Printf.sprintf "no bug #%d (artifact has %d)" bug (List.length artifact.a_bugs))
    | Some b -> (
        match b.b_first_campaign with
        | None -> Error (Printf.sprintf "bug #%d has no recorded first campaign" bug)
        | Some campaign -> (
            match Artifact.find_provenance artifact campaign with
            | None -> Error (Printf.sprintf "no provenance for campaign %d" campaign)
            | Some p ->
                let cfg = artifact.a_config in
                (* Mirror Fuzzer.run's execution setup exactly: contexts
                   come from an engine configured like the recorded
                   session's workers (checkpoint decision included) — a
                   checkout is observationally identical to the fresh
                   setup the fuzzer used to do, so replays stay
                   bit-faithful. *)
                let engine =
                  Engine.create ~evict_prob:cfg.evict_prob ~eadr:cfg.eadr
                    ~use_checkpoint:cfg.use_checkpoint target
                in
                (* POR changes which fibers the scheduler may pick, so a
                   campaign recorded under --por only re-executes
                   bit-identically when replayed under POR too.  Replay
                   has no trace-dedup consumer, though: digesting is pure
                   observation (the sleep sets never read the hash), so
                   it is short-circuited entirely. *)
                let input =
                  Campaign.input ~sched_seed:p.pr_sched_seed ~policy:p.pr_spec
                    ~step_budget:cfg.step_budget ~por:cfg.por ~por_digest:false target p.pr_seed
                in
                let result = Campaign.run ~engine input in
                let report = Report.create () in
                let findings, sync_findings =
                  Report.absorb ~campaign report result.env ~hung:result.hung
                    ~hang_info:(hang_info result)
                in
                let whitelist =
                  Whitelist.create (target.Target.whitelist_sites @ cfg.whitelist_extra)
                in
                (* The recorded session validated with cfg.crash_images
                   images; make sure the budget also covers the recorded
                   image index, so a bug found on enumerated image #i is
                   reached again even if the config somehow says less. *)
                let images =
                  match b.b_image_index with
                  | Some i -> max cfg.crash_images (i + 1)
                  | None -> cfg.crash_images
                in
                let vctx = Post_failure.ctx ~images ~whitelist target in
                List.iter
                  (fun (f : Report.finding) ->
                    f.verdict <-
                      Some (Post_failure.validate vctx (Post_failure.Candidate.Inconsistency f.inc)))
                  findings;
                List.iter
                  (fun (f : Report.sync_finding) ->
                    f.sync_verdict <-
                      Some (Post_failure.validate vctx (Post_failure.Candidate.Sync f.ev)))
                  sync_findings;
                let groups = Report.bug_groups report in
                let reproduced =
                  List.exists
                    (fun (g : Report.bug_group) ->
                      String.equal (kind_string g.bg_kind) b.b_kind
                      && String.equal g.bg_site b.b_site)
                    groups
                in
                (* Which enumerated image the bug came back on: the
                   matching findings' bug verdicts, smallest index. *)
                let bug_index site = function
                  | Some (Post_failure.Bug { image_index; _ }) when String.equal site b.b_site ->
                      Some image_index
                  | _ -> None
                in
                let indices =
                  List.filter_map
                    (fun (f : Report.finding) ->
                      bug_index
                        (Runtime.Instr.name f.inc.source.Runtime.Candidates.write_instr)
                        f.verdict)
                    findings
                  @ List.filter_map
                      (fun (f : Report.sync_finding) ->
                        bug_index f.ev.var.Runtime.Checkers.sv_name f.sync_verdict)
                      sync_findings
                in
                let r_image_index =
                  match indices with [] -> None | x :: xs -> Some (List.fold_left min x xs)
                in
                Ok
                  {
                    r_bug = b;
                    r_campaign = campaign;
                    r_reproduced = reproduced;
                    r_groups = groups;
                    r_image_index;
                  }))

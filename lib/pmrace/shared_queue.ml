(* The priority queue of shared PM data accesses (§4.2.2).

   Observed PM accesses are grouped by address.  An address is a candidate
   preemption target when it has been loaded and stored by different
   threads ("shared data accesses"); entries are prioritised by access
   frequency, following the paper's three selection principles:
   (1) PM accesses only, (2) shared data only, (3) hot data first. *)

module Instr = Runtime.Instr

module Iset = Set.Make (Instr)
module Tset = Set.Make (Int)

type record = {
  mutable load_instrs : Iset.t;
  mutable store_instrs : Iset.t;
  mutable load_tids : Tset.t;
  mutable store_tids : Tset.t;
  mutable hits : int;
}

type entry = {
  addr : int;
  loads : Instr.t list; (* the sync points: loads at this address *)
  stores : Instr.t list; (* signalled after these stores *)
  hits : int;
}

type t = { tbl : (int, record) Hashtbl.t }

let create () = { tbl = Hashtbl.create 128 }

let record_of t addr =
  match Hashtbl.find_opt t.tbl addr with
  | Some r -> r
  | None ->
      let r =
        {
          load_instrs = Iset.empty;
          store_instrs = Iset.empty;
          load_tids = Tset.empty;
          store_tids = Tset.empty;
          hits = 0;
        }
      in
      Hashtbl.add t.tbl addr r;
      r

let observe_load t ~addr ~instr ~tid =
  let r = record_of t addr in
  r.load_instrs <- Iset.add instr r.load_instrs;
  r.load_tids <- Tset.add tid r.load_tids;
  r.hits <- r.hits + 1

let observe_store t ~addr ~instr ~tid =
  let r = record_of t addr in
  r.store_instrs <- Iset.add instr r.store_instrs;
  r.store_tids <- Tset.add tid r.store_tids;
  r.hits <- r.hits + 1

(* Fold a worker-local per-campaign delta in: union the instruction and
   thread sets, sum the hit counts.  All queue updates are set-unions and
   counter additions, so merging per-campaign deltas yields exactly the
   state direct accumulation would (the [workers = 1] bit-identity
   guarantee rests on this). *)
let merge_into ~src dst =
  Hashtbl.iter
    (fun addr (s : record) ->
      let d = record_of dst addr in
      d.load_instrs <- Iset.union d.load_instrs s.load_instrs;
      d.store_instrs <- Iset.union d.store_instrs s.store_instrs;
      d.load_tids <- Tset.union d.load_tids s.load_tids;
      d.store_tids <- Tset.union d.store_tids s.store_tids;
      d.hits <- d.hits + s.hits)
    src.tbl

let handler t = function
  | Runtime.Env.Ev_load { instr; tid; addr; _ } -> observe_load t ~addr ~instr ~tid
  | Runtime.Env.Ev_store { instr; tid; addr } | Runtime.Env.Ev_movnt { instr; tid; addr } ->
      observe_store t ~addr ~instr ~tid
  | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ | Runtime.Env.Ev_branch _ -> ()

(* Empty the queue so a worker-local delta can be reused across campaigns. *)
let clear t = Hashtbl.reset t.tbl

let attach t env = Runtime.Env.add_listener env (handler t)

(* Shared data: loaded and stored, with more than one thread involved. *)
let is_shared r =
  (not (Iset.is_empty r.load_instrs))
  && (not (Iset.is_empty r.store_instrs))
  && Tset.cardinal (Tset.union r.load_tids r.store_tids) > 1

let entries t =
  Hashtbl.fold
    (fun addr r acc ->
      if is_shared r then
        {
          addr;
          loads = Iset.elements r.load_instrs;
          stores = Iset.elements r.store_instrs;
          hits = r.hits;
        }
        :: acc
      else acc)
    t.tbl []
  |> List.sort (fun a b ->
         match compare b.hits a.hits with 0 -> compare a.addr b.addr | c -> c)

let tracked_addresses t = Hashtbl.length t.tbl

(* ------------------------------------------------------------------ *)
(* Wire/store codec (fleet mode).  Unlike [entries], the codec carries the
   *full* per-address records (including thread-id sets and not-yet-shared
   addresses), so decode-then-merge is exactly equivalent to merging the
   original queue. *)

module J = Obs.Json

let to_json t =
  let records =
    Hashtbl.fold (fun addr r acc -> (addr, r) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let names s = J.List (List.map (fun i -> J.String (Instr.name i)) (Iset.elements s)) in
  let tids s = J.List (List.map (fun i -> J.Int i) (Tset.elements s)) in
  J.List
    (List.map
       (fun (addr, r) ->
         J.Obj
           [
             ("addr", J.Int addr);
             ("loads", names r.load_instrs);
             ("stores", names r.store_instrs);
             ("load_tids", tids r.load_tids);
             ("store_tids", tids r.store_tids);
             ("hits", J.Int r.hits);
           ])
       records)

let of_json j =
  match J.to_list j with
  | None -> Error "Shared_queue: expected list"
  | Some records -> (
      try
        let t = create () in
        let get name conv rj =
          match Option.bind (J.member name rj) conv with
          | Some v -> v
          | None -> failwith (Printf.sprintf "Shared_queue: bad field %S" name)
        in
        let iset rj name =
          List.fold_left
            (fun acc s ->
              match J.to_str s with
              | Some n -> Iset.add (Instr.site n) acc
              | None -> failwith "Shared_queue: expected site name")
            Iset.empty (get name J.to_list rj)
        in
        let tset rj name =
          List.fold_left
            (fun acc s ->
              match J.to_int s with
              | Some n -> Tset.add n acc
              | None -> failwith "Shared_queue: expected tid int")
            Tset.empty (get name J.to_list rj)
        in
        List.iter
          (fun rj ->
            let r = record_of t (get "addr" J.to_int rj) in
            r.load_instrs <- Iset.union r.load_instrs (iset rj "loads");
            r.store_instrs <- Iset.union r.store_instrs (iset rj "stores");
            r.load_tids <- Tset.union r.load_tids (tset rj "load_tids");
            r.store_tids <- Tset.union r.store_tids (tset rj "store_tids");
            r.hits <- r.hits + get "hits" J.to_int rj)
          records;
        Ok t
      with Failure msg -> Error msg)

let pp_entry ppf e =
  Fmt.pf ppf "addr=%d hits=%d loads=[%a] stores=[%a]" e.addr e.hits
    Fmt.(list ~sep:comma Instr.pp)
    e.loads
    Fmt.(list ~sep:comma Instr.pp)
    e.stores

(** The PM-aware coverage-guided fuzzing loop (§4.2.3), with its three
    exploration tiers (execution / interleaving / seed), the Delay-Inj and
    random-scheduler baselines, immediate post-failure validation of new
    findings, and a timeline for the Figure 8/9 series.

    The §5 worker pool runs [config.workers] OCaml 5 domains sharing a
    {!Hub} (coverage, priority queue, report, budget); each worker owns
    its RNG streams, corpus and campaign scratch, so campaigns execute
    lock-free and workers only synchronise at campaign boundaries.
    [workers = 1] runs the identical sequential code path and RNG
    streams, so seeded paper-profile sessions are bit-for-bit
    reproducible; parallel sessions are deterministic as a {e set} of
    unique bugs (the report deduplicates by bug identity, independent of
    merge order). *)

type mode =
  | Mode_pmrace  (** sync-point scheduling over the shared-access queue *)
  | Mode_delay  (** random delay injection (the Fig. 8 baseline) *)
  | Mode_random  (** plain random scheduling *)

type config = {
  (* Construct with {!Config.make}; the record stays public (and
     pattern-matchable) for readers, but building it literally is
     deprecated — every new field breaks such callers. *)
  max_campaigns : int;
  execs_per_interleaving : int;
  max_interleavings_per_seed : int;
  master_seed : int;
  mode : mode;
  interleaving_tier : bool;  (** [false] = the "w/o IE" ablation of Fig. 9 *)
  seed_tier : bool;  (** [false] = the "w/o SE" ablation of Fig. 9 *)
  use_checkpoint : bool;  (** reuse an in-memory pool checkpoint (§5) *)
  step_budget : int;
  validate : bool;
  evict_prob : float;
  eadr : bool;  (** fuzz on an eADR platform (§6.6): caches are persistent *)
  workers : int;  (** worker domains sharing the hub (§5); each runs on its
                      own OCaml 5 domain *)
  initial_seeds : int;
  whitelist_extra : string list;
  static_prepass : bool;
      (** run the offline analyzer ({!Analyze}) first: its site graph
          bounds alias coverage (achieved/possible) and seeds touching
          uncovered possible pairs are preferred as mutation parents.
          Off by default so that the paper-profile sessions are driven by
          coverage alone; the CLI turns it on unless [--no-static]. *)
  invariants : bool;
      (** mine likely persistence-ordering invariants ({!Analysis.Invariants})
          from the pre-pass seed traces and monitor every campaign for
          violations, validating first sightings post-failure
          ({!Post_failure.validate_ordering}).  Forces a pre-pass run even
          without [static_prepass], but never installs the site-graph
          denominator on its own.  Off by default so seeded sessions stay
          bit-identical; the CLI enables it with [--invariants]. *)
}

val default_config : config

(** The configuration front door.  [Config.make] is an optional-argument
    builder over {!default_config}: callers name only the fields they
    change, so adding a config field never breaks them.  Prefer it over
    literal record construction everywhere. *)
module Config : sig
  type t = config

  val default : t

  val make :
    ?max_campaigns:int ->
    ?execs_per_interleaving:int ->
    ?max_interleavings_per_seed:int ->
    ?master_seed:int ->
    ?mode:mode ->
    ?interleaving_tier:bool ->
    ?seed_tier:bool ->
    ?use_checkpoint:bool ->
    ?step_budget:int ->
    ?validate:bool ->
    ?evict_prob:float ->
    ?eadr:bool ->
    ?workers:int ->
    ?initial_seeds:int ->
    ?whitelist_extra:string list ->
    ?static_prepass:bool ->
    ?invariants:bool ->
    unit ->
    t
  (** Unspecified fields take their {!default} values; [workers] is
      clamped to at least 1. *)
end

type provenance = Hub.provenance = {
  p_seed : Seed.t;
  p_sched_seed : int;
  p_policy : string;  (** human-readable policy label for reports *)
  p_spec : Campaign.policy_spec;
      (** the policy itself, serialisable — [pmrace replay] rebuilds the
          campaign input from it *)
}
(** The exact inputs that replay one campaign. *)

type timeline_point = Hub.timeline_point = {
  tp_campaign : int;
  tp_time : float;
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

type session = {
  report : Report.t;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  timeline : timeline_point list;  (** chronological *)
  campaigns_run : int;
  wall_time : float;
  annotations : int;  (** sync-variable annotations the target registers *)
  whitelist : Whitelist.t;
  provenance : (int, provenance) Hashtbl.t;  (** campaign index -> inputs *)
  static : Analysis.Analyzer.result option;
      (** the static pre-pass result, when [static_prepass] was on *)
  worker_campaigns : int array;
      (** campaigns completed per worker (index = worker id) *)
}

val run : ?log:(string -> unit) -> ?obs:Obs.Events.t -> Target.t -> config -> session
(** [obs] receives the structured event stream (session/campaign
    boundaries, new alias pairs, candidates, verdicts).  Event emission
    never draws from the fuzzer's RNG streams, so attaching a sink leaves
    seeded sessions bit-identical. *)

val found_known_bugs : session -> Target.t -> (Target.known_bug * bool) list
(** Match the session's findings against the target's seeded ground truth:
    Inter/Intra/Sync via validated bug groups, "Other" bugs via candidate
    pairs or hang + branch evidence. *)

(** The PM-aware coverage-guided fuzzing loop (§4.2.3), with its three
    exploration tiers (execution / interleaving / seed), the Delay-Inj and
    random-scheduler baselines, immediate post-failure validation of new
    findings, and a timeline for the Figure 8/9 series.

    The §5 worker pool runs [config.workers] OCaml 5 domains sharing a
    {!Hub} (coverage, priority queue, report, budget); each worker owns
    its RNG streams, corpus and campaign scratch, so campaigns execute
    lock-free and workers only synchronise at campaign boundaries.
    [workers = 1] runs the identical sequential code path and RNG
    streams, so seeded paper-profile sessions are bit-for-bit
    reproducible; parallel sessions are deterministic as a {e set} of
    unique bugs (the report deduplicates by bug identity, independent of
    merge order). *)

type mode =
  | Mode_pmrace  (** sync-point scheduling over the shared-access queue *)
  | Mode_delay  (** random delay injection (the Fig. 8 baseline) *)
  | Mode_random  (** plain random scheduling *)

type config = {
  (* Construct with {!Config.make}; the record stays public (and
     pattern-matchable) for readers, but building it literally is
     deprecated — every new field breaks such callers. *)
  max_campaigns : int;
  execs_per_interleaving : int;
  max_interleavings_per_seed : int;
  master_seed : int;
  mode : mode;
  interleaving_tier : bool;  (** [false] = the "w/o IE" ablation of Fig. 9 *)
  seed_tier : bool;  (** [false] = the "w/o SE" ablation of Fig. 9 *)
  use_checkpoint : bool;  (** reuse an in-memory pool checkpoint (§5) *)
  step_budget : int;
  validate : bool;
  evict_prob : float;
  eadr : bool;  (** fuzz on an eADR platform (§6.6): caches are persistent *)
  workers : int;  (** worker domains sharing the hub (§5); each runs on its
                      own OCaml 5 domain *)
  initial_seeds : int;
  whitelist_extra : string list;
  static_prepass : bool;
      (** run the offline analyzer ({!Analyze}) first: its site graph
          bounds alias coverage (achieved/possible) and seeds touching
          uncovered possible pairs are preferred as mutation parents.
          Off by default so that the paper-profile sessions are driven by
          coverage alone; the CLI turns it on unless [--no-static]. *)
  invariants : bool;
      (** mine likely persistence-ordering invariants ({!Analysis.Invariants})
          from the pre-pass seed traces and monitor every campaign for
          violations, validating first sightings post-failure
          (through {!Post_failure.validate}).  Forces a pre-pass run even
          without [static_prepass], but never installs the site-graph
          denominator on its own.  Off by default so seeded sessions stay
          bit-identical; the CLI enables it with [--invariants]. *)
  corpus_sched : bool;
      (** AFL-style corpus scheduling ({!Corpus_sched}): mutation parents
          are leased from the favored cover of the achieved alias-pair set
          (recomputed each generation) instead of drawn uniformly from the
          whole corpus.  Off by default so seeded sessions stay
          bit-identical; the CLI enables it with [--corpus-sched]. *)
  crash_images : int;
      (** post-failure crash-image budget ({!Pmem.Crash_images}): how many
          enumerated crash images each candidate is validated against.
          [1] (the default) validates only the base image — the
          historical single-image behaviour, pinned by the golden
          sessions; the CLI raises it with [--crash-images]. *)
  por : bool;
      (** partial-order reduction: campaigns run under the sleep-set
          scheduler ({!Sched.Scheduler.run_por}), each completed schedule
          gets a canonical Mazurkiewicz-trace hash, and post-failure
          validation is skipped for campaigns whose (trace, seed) class
          was already validated.  Off by default so seeded sessions stay
          bit-identical; the CLI enables it with [--por]. *)
}

val default_config : config

(** The configuration front door.  [Config.make] is an optional-argument
    builder over {!default_config}: callers name only the fields they
    change, so adding a config field never breaks them.  Prefer it over
    literal record construction everywhere. *)
module Config : sig
  type t = config

  val default : t

  val make :
    ?max_campaigns:int ->
    ?execs_per_interleaving:int ->
    ?max_interleavings_per_seed:int ->
    ?master_seed:int ->
    ?mode:mode ->
    ?interleaving_tier:bool ->
    ?seed_tier:bool ->
    ?use_checkpoint:bool ->
    ?step_budget:int ->
    ?validate:bool ->
    ?evict_prob:float ->
    ?eadr:bool ->
    ?workers:int ->
    ?initial_seeds:int ->
    ?whitelist_extra:string list ->
    ?static_prepass:bool ->
    ?invariants:bool ->
    ?corpus_sched:bool ->
    ?crash_images:int ->
    ?por:bool ->
    unit ->
    t
  (** Unspecified fields take their {!default} values; [workers] and
      [crash_images] are clamped to at least 1. *)
end

type provenance = Hub.provenance = {
  p_seed : Seed.t;
  p_sched_seed : int;
  p_policy : string;  (** human-readable policy label for reports *)
  p_spec : Campaign.policy_spec;
      (** the policy itself, serialisable — [pmrace replay] rebuilds the
          campaign input from it *)
}
(** The exact inputs that replay one campaign. *)

type timeline_point = Hub.timeline_point = {
  tp_campaign : int;
  tp_time : float;
  tp_alias_bits : int;
  tp_branch_bits : int;
  tp_inter_unique : int;
  tp_new_inter : bool;
}

type session = {
  report : Report.t;
  alias : Alias_cov.t;
  branch : Branch_cov.t;
  timeline : timeline_point list;  (** chronological *)
  campaigns_run : int;
  wall_time : float;
  annotations : int;  (** sync-variable annotations the target registers *)
  whitelist : Whitelist.t;
  provenance : (int, provenance) Hashtbl.t;  (** campaign index -> inputs *)
  static : Analysis.Analyzer.result option;
      (** the static pre-pass result, when [static_prepass] was on *)
  worker_campaigns : int array;
      (** campaigns completed per worker (index = worker id) *)
  por : Hub.por_totals option;
      (** aggregate pruning/trace-dedup counters; [None] unless the
          session ran with [config.por] *)
  trace_hashes : (int, int64) Hashtbl.t;
      (** campaign index -> canonical Mazurkiewicz-trace hash (POR
          campaigns only) *)
}

val run : ?log:(string -> unit) -> ?obs:Obs.Events.t -> Target.t -> config -> session
(** [obs] receives the structured event stream (session/campaign
    boundaries, new alias pairs, candidates, verdicts).  Event emission
    never draws from the fuzzer's RNG streams, so attaching a sink leaves
    seeded sessions bit-identical. *)

(** {2 The reusable worker loop}

    The fuzzing loop, split from the shared side it feeds.  A {!sink} is
    the worker's entire view of "the shared side": the in-process pool
    binds it to a {!Hub} with {!hub_sink} (pure indirection — [run] with
    [workers = 1] makes exactly the sequential fuzzer's calls), and fleet
    workers ({!Fleet.Worker}) bind it to a wrapper that enforces the
    coordinator's lease budget and accumulates a wire delta. *)

type sink = {
  sk_budget_left : unit -> bool;  (** advisory loop-condition check *)
  sk_reserve : Hub.provenance -> int option;
      (** claim the next campaign slot; [None] = wind down *)
  sk_commit :
    ?trace:Hub.trace ->
    campaign:int ->
    delta:Hub.delta ->
    Runtime.Env.t ->
    hung:bool ->
    hang_info:string ->
    Hub.commit_result;
      (** [trace] carries a POR campaign's Mazurkiewicz-trace class into
          the commit critical section — dedup costs no extra lock
          traffic, and [c_first_trace] in the result gates post-failure
          validation *)
  sk_record_invariant :
    campaign:int ->
    label:string ->
    kind:string ->
    site:string ->
    addr:int ->
    Report.inv_finding option;
  sk_queue_entries : unit -> Shared_queue.entry list;
  sk_rescore : sites:(int, unit) Hashtbl.t -> Seed.t -> unit;
  sk_completed : unit -> int;  (** campaigns committed, for progress logs *)
}

val hub_sink : Hub.t -> sink
(** The in-process binding: every operation forwards to the hub verbatim. *)

type worker
(** One worker's private state: RNG streams (derived from
    [cfg.master_seed] and [widx], so worker 0 reproduces the sequential
    streams in any process), corpus, generation counter, campaign scratch
    tables, and a persistent-mode {!Engine}. *)

val create_worker :
  ?log:(string -> unit) ->
  ?obs:Obs.Events.t ->
  ?snapshot:Pmem.Pool.snapshot ->
  ?corpus:Seed.t list ->
  ?whitelist:Whitelist.t ->
  ?inv_specs:Analysis.Invariants.spec list ->
  ?static_on:bool ->
  cfg:config ->
  sink:sink ->
  widx:int ->
  Target.t ->
  worker
(** [corpus] overrides the default generated corpus (one populate seed
    plus [cfg.initial_seeds] random seeds, drawn from the worker's
    [gen_rng]); [whitelist] defaults to the target's whitelist plus
    [cfg.whitelist_extra]. *)

val worker_loop : worker -> unit
(** Claim seeds and fuzz them until [sk_budget_left] (checked between
    campaigns) or [sk_reserve] (authoritative) says stop. *)

val refresh_corpus : worker -> Seed.t list -> unit
(** Prepend seeds (a fleet lease) to the worker's corpus; they are
    registered with the corpus scheduler when [corpus_sched] is on. *)

val campaigns_done : worker -> int
val worker_whitelist : worker -> Whitelist.t

val assemble_session :
  ?static:Analysis.Analyzer.result ->
  whitelist:Whitelist.t ->
  worker_campaigns:int array ->
  Hub.t ->
  Target.t ->
  session
(** Build a {!session} from a drained hub (shared by [run] and the fleet
    worker's shard artifact).  Single-domain: call after workers stop. *)

val found_known_bugs : session -> Target.t -> (Target.known_bug * bool) list
(** Match the session's findings against the target's seeded ground truth:
    Inter/Intra/Sync via validated bug groups, "Other" bugs via candidate
    pairs or hang + branch evidence. *)

(** Additional PM checkers built on PMRace's framework (the §4.3
    extensibility examples): redundant persistency operations and missing
    flushes at execution exit. *)

module Env = Runtime.Env

type t

val create : unit -> t

val attach : t -> Env.t -> unit
(** Subscribe to an execution's flush events. *)

val flushes : t -> int
val redundant_total : t -> int
(** CLWBs whose target line held no dirty words — a PM performance bug. *)

val redundant_sites : t -> (string * int) list
(** Redundant-flush counts per site, most frequent first. *)

val fences : t -> int
val redundant_fence_total : t -> int
(** SFENCEs with no flush or non-temporal store since the previous fence
    — they drain an empty write-back queue. *)

val redundant_fence_sites : t -> (string * int) list
(** Redundant-fence counts per site, most frequent first. *)

val unflushed_at_exit : Env.t -> (string * int) list
(** PM words still dirty when the execution ended, grouped by writing
    site — candidate missing-flush bugs. *)

val pp : Format.formatter -> t -> unit

(* One fuzz campaign: a single concurrent execution of a target with a
   seed, an interleaving policy, and a scheduler seed.

   The pool starts either from a fresh (expensive) target initialisation or
   from an in-memory checkpoint of an initialised pool (§5); checker state
   is reset after initialisation so that results only reflect the fuzzed
   execution.  Every campaign begins with an empty (freshly initialised)
   pool, as §4.5 prescribes. *)

module Rng = Sched.Rng
module Scheduler = Sched.Scheduler
module Env = Runtime.Env

type policy_spec =
  | Pmrace of { entry : Shared_queue.entry; skip : int }
  | Delay of { prob : float; max_delay : int }
  | Random_sched (* plain preemption at every instrumented operation *)
  | No_preempt

type input = {
  target : Target.t;
  seed : Seed.t;
  sched_seed : int;
  policy : policy_spec;
  snapshot : Pmem.Pool.snapshot option; (* in-memory checkpoint *)
  step_budget : int;
  capture_images : bool;
  evict_prob : float;
  eadr : bool; (* run on an eADR platform (§6.6) *)
  por : bool; (* sleep-set pruning + trace hashing (Scheduler.run_por) *)
  por_digest : bool;
      (* false = no trace-dedup consumer (replay): run the sleep sets but
         short-circuit the Foata-layer/hash digesting entirely *)
}

let input ?(sched_seed = 1) ?(policy = Random_sched) ?snapshot ?(step_budget = 60_000)
    ?(capture_images = true) ?(evict_prob = 0.) ?(eadr = false) ?(por = false)
    ?(por_digest = true) target seed =
  {
    target;
    seed;
    sched_seed;
    policy;
    snapshot;
    step_budget;
    capture_images;
    evict_prob;
    eadr;
    por;
    por_digest;
  }

type result = {
  env : Env.t;
  outcome : Scheduler.outcome;
  sync : Sync_policy.t option;
  hung : bool; (* budget exhaustion or a Stuck spin lock *)
  por : Por.stats option; (* pruning provenance when the input asked for POR *)
}

(* Initialise a pool once and capture the checkpoint the fast path reuses. *)
let prepare_snapshot = Engine.prepare_snapshot

let setup_env (i : input) =
  let env =
    Env.create ~capture_images:i.capture_images ~evict_prob:i.evict_prob ~eadr:i.eadr
      ~pool_words:i.target.pool_words ()
  in
  (match i.snapshot with
  | Some snap -> Pmem.Pool.restore env.pool snap
  | None ->
      i.target.init env;
      Pmem.Pool.quiesce env.pool);
  Env.reset_checkers ~capture_images:i.capture_images env;
  (* Annotations describe the static pool layout, so they apply to fresh
     and checkpoint-restored pools alike. *)
  i.target.annotate env;
  env

let m_latency = lazy (Obs.Metrics.histogram "campaign_latency_seconds")

(* Phase split of the latency above: setup (environment construction or
   engine reset) vs the fuzzed execution itself.  The CLI footer derives
   setup-bound vs run-bound execs/sec from these sums. *)
let m_setup = lazy (Obs.Metrics.histogram "campaign_setup_seconds")
let m_run = lazy (Obs.Metrics.histogram "campaign_run_seconds")

let run ?engine ?(listeners = []) (i : input) =
  Obs.Metrics.time (Lazy.force m_latency) @@ fun () ->
  let env =
    Obs.Metrics.time (Lazy.force m_setup) @@ fun () ->
    match engine with Some e -> Engine.checkout e | None -> setup_env i
  in
  List.iter (fun attach -> attach env) listeners;
  Obs.Metrics.time (Lazy.force m_run) @@ fun () ->
  let rng = Rng.create i.sched_seed in
  let policy_rng = Rng.split rng in
  let nthreads = Array.length (Seed.threads i.seed) in
  let sync, policy =
    match i.policy with
    | Pmrace { entry; skip } ->
        let s = Sync_policy.create ~rng:policy_rng ~nthreads ~skip entry in
        (Some s, Sync_policy.policy s)
    | Delay { prob; max_delay } ->
        (None, Delay_policy.policy (Delay_policy.create ~prob ~max_delay ~rng:policy_rng ()))
    | Random_sched -> (None, Env.preempt_policy)
    | No_preempt -> (None, Env.null_policy)
  in
  (* The POR harness interposes on whatever policy the spec built; with
     [por = false] nothing here runs and the policy (and every RNG draw)
     is exactly the historical one. *)
  let harness =
    if not i.por then None
    else begin
      let h =
        match engine with
        | Some e -> Engine.por_harness e ~nthreads
        | None -> Por.create ~pool_words:i.target.pool_words ~nthreads ()
      in
      if not i.por_digest then Por.set_digest h false;
      Some h
    end
  in
  let policy = match harness with Some h -> Por.wrap h policy | None -> policy in
  Env.set_policy env policy;
  let sched = Scheduler.create ~step_budget:i.step_budget ~rng () in
  Array.iteri
    (fun ti ops ->
      let name = Printf.sprintf "worker-%d" ti in
      ignore
        (Scheduler.spawn sched ~name (fun () ->
             let ctx = Env.ctx env ~tid:ti in
             Array.iter (fun op -> i.target.run_op ctx op) ops)))
    (Seed.threads i.seed);
  let outcome, por =
    match harness with
    | None -> (Scheduler.run sched, None)
    | Some h ->
        let outcome, ss = Scheduler.run_por ~por:(Por.hooks h) sched in
        (outcome, Some (Por.stats h ss))
  in
  let stuck =
    List.exists (fun (_, _, e) -> match e with Runtime.Mem.Stuck _ -> true | _ -> false)
      outcome.failed
  in
  let hung = outcome.hung <> [] || stuck in
  { env; outcome; sync; hung; por }

(* Post-failure validation (§4.4).

   Each confirmed inconsistency carries a crash image: the durable pool
   contents at the instant the durable side effect persisted while its
   source data was still volatile.  Validation boots a fresh environment
   from that image, runs the target's recovery code, and checks whether
   the application-specific recovery fixed the inconsistency:

   - PM Inter-/Intra-thread Inconsistency: a false positive iff every
     recorded side-effect word is overwritten during recovery.
   - PM Synchronization Inconsistency: a false positive iff the annotated
     variable is restored to its expected initial value.

   A recovery that itself hangs (a spin lock stuck on a persisted lock) is
   strong evidence of a bug, and is reported as such. *)

module Env = Runtime.Env
module Checkers = Runtime.Checkers

type verdict =
  | Validated_fp (* fixed by the immediate recovery *)
  | Whitelisted_fp (* covered by the benign-read whitelist *)
  | Bug of { recovery_hang : bool }

let pp_verdict ppf = function
  | Validated_fp -> Fmt.string ppf "validated-FP"
  | Whitelisted_fp -> Fmt.string ppf "whitelisted-FP"
  | Bug { recovery_hang = true } -> Fmt.string ppf "BUG (recovery hangs)"
  | Bug { recovery_hang = false } -> Fmt.string ppf "BUG"

let m_validation = lazy (Obs.Metrics.histogram "validation_seconds")
let m_validations = lazy (Obs.Metrics.counter "validations_total")

(* Run the target's recovery on a crash image, recording every PM word the
   recovery code overwrites.  Extra [listeners] (e.g. a trace recorder for
   the recovery-path lint) are attached before recovery starts. *)
let run_recovery ?(listeners = []) (target : Target.t) image =
  let env = Env.of_image image in
  target.annotate env;
  List.iter (fun l -> l env) listeners;
  let written : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Env.add_listener env (function
    | Env.Ev_store { addr; _ } | Env.Ev_movnt { addr; _ } -> Hashtbl.replace written addr ()
    | Env.Ev_load _ | Env.Ev_clwb _ | Env.Ev_fence _ | Env.Ev_branch _ -> ());
  let hang = ref false in
  (try target.recover env with
  | Runtime.Mem.Stuck _ -> hang := true
  | Sched.Scheduler.Killed -> hang := true);
  (env, written, !hang)

let validate_inconsistency (target : Target.t) whitelist (inc : Checkers.inconsistency) =
  Obs.Metrics.incr (Lazy.force m_validations);
  Obs.Metrics.time (Lazy.force m_validation) @@ fun () ->
  if Whitelist.covers whitelist inc then Whitelisted_fp
  else
    match inc.image with
    | None -> Bug { recovery_hang = false } (* no image captured: cannot validate *)
    | Some image ->
        let _env, written, hang = run_recovery target image in
        if hang then Bug { recovery_hang = true }
        else if
          inc.eff_words <> [] && List.for_all (fun w -> Hashtbl.mem written w) inc.eff_words
        then Validated_fp
        else Bug { recovery_hang = false }

(* Ordering-invariant violations are validated like inter-thread
   inconsistencies: the crash image captured at the violating store shows
   the invariant's source words still volatile.  If the target's own
   recovery rewrites every one of those pending words, the mined
   invariant was an artifact of the seed runs — a false positive. *)
let validate_ordering (target : Target.t) ~image ~eff_words =
  Obs.Metrics.incr (Lazy.force m_validations);
  Obs.Metrics.time (Lazy.force m_validation) @@ fun () ->
  match image with
  | None -> Bug { recovery_hang = false }
  | Some image ->
      let _env, written, hang = run_recovery target image in
      if hang then Bug { recovery_hang = true }
      else if eff_words <> [] && List.for_all (fun w -> Hashtbl.mem written w) eff_words then
        Validated_fp
      else Bug { recovery_hang = false }

let validate_sync (target : Target.t) (ev : Checkers.sync_event) =
  Obs.Metrics.incr (Lazy.force m_validations);
  Obs.Metrics.time (Lazy.force m_validation) @@ fun () ->
  match ev.sy_image with
  | None -> Bug { recovery_hang = false }
  | Some image ->
      let env, _written, hang = run_recovery target image in
      if hang then Bug { recovery_hang = true }
      else if Int64.equal (Pmem.Pool.peek env.pool ev.sy_addr) ev.var.Checkers.sv_init then
        (* Recovery reinitialised the variable to its expected value. *)
        Validated_fp
      else Bug { recovery_hang = false }

(* Post-failure validation (§4.4), over enumerated crash images.

   Each confirmed candidate carries a crash surface: the base durable
   image at the instant the durable side effect persisted, plus the
   in-flight cache lines that may or may not have drained (see
   [Pmem.Crash_images]).  Validation boots a fresh environment from an
   enumerated image, runs the target's recovery code, and checks whether
   the application-specific recovery fixed the inconsistency:

   - PM Inter-/Intra-thread Inconsistency: fixed iff every recorded
     side-effect word is overwritten during recovery.
   - Ordering-invariant violation: fixed iff recovery rewrites every
     source word the crash left unpersisted.
   - PM Synchronization Inconsistency: fixed iff the annotated variable
     is restored to its expected initial value.

   A candidate is a [Bug] as soon as *any* enumerated image survives its
   recovery — the verdict records which image index reproduced, so
   `pmrace replay` can rebuild that exact image.  The image budget bounds
   how many recoveries actually run; budget 1 validates only image 0
   (the base image) and is bit-identical to the historical single-image
   behaviour.

   Images in which the crash itself repaired the candidate are skipped
   without spending budget: for an inconsistency, an image where the
   source word drained is consistent by construction (recovery rightly
   does nothing there, and counting it as a bug would be spurious);
   likewise an ordering violation whose unpersisted source words all
   drained.

   A recovery that itself hangs (a spin lock stuck on a persisted lock)
   is strong evidence of a bug, and is reported as such. *)

module Env = Runtime.Env
module Checkers = Runtime.Checkers

type verdict =
  | Validated_fp (* every enumerated image was fixed by immediate recovery *)
  | Whitelisted_fp (* covered by the benign-read whitelist *)
  | Bug of { recovery_hang : bool; image_index : int }

let pp_verdict ppf = function
  | Validated_fp -> Fmt.string ppf "validated-FP"
  | Whitelisted_fp -> Fmt.string ppf "whitelisted-FP"
  | Bug { recovery_hang = true; image_index = 0 } -> Fmt.string ppf "BUG (recovery hangs)"
  | Bug { recovery_hang = true; image_index = i } ->
      Fmt.pf ppf "BUG (recovery hangs, crash image #%d)" i
  | Bug { recovery_hang = false; image_index = 0 } -> Fmt.string ppf "BUG"
  | Bug { recovery_hang = false; image_index = i } -> Fmt.pf ppf "BUG (crash image #%d)" i

let m_validation = lazy (Obs.Metrics.histogram "validation_seconds")
let m_validations = lazy (Obs.Metrics.counter "validations_total")
let m_images_enumerated = lazy (Obs.Metrics.counter "crash_images_enumerated_total")
let m_images_validated = lazy (Obs.Metrics.counter "crash_images_validated_total")

type recovery_result = {
  env : Runtime.Env.t;
  overwritten : (int, unit) Hashtbl.t; (* PM words recovery stored to *)
  hung : bool;
}

(* Run the target's recovery on a crash image, recording every PM word the
   recovery code overwrites.  Extra [listeners] (e.g. a trace recorder for
   the recovery-path lint) are attached before recovery starts. *)
let run_recovery ?(listeners = []) (target : Target.t) image =
  let env = Env.of_image image in
  target.annotate env;
  List.iter (fun l -> l env) listeners;
  let overwritten : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Env.add_listener env (function
    | Env.Ev_store { addr; _ } | Env.Ev_movnt { addr; _ } -> Hashtbl.replace overwritten addr ()
    | Env.Ev_load _ | Env.Ev_clwb _ | Env.Ev_fence _ | Env.Ev_branch _ -> ());
  let hang = ref false in
  (try target.recover env with
  | Runtime.Mem.Stuck _ -> hang := true
  | Sched.Scheduler.Killed -> hang := true);
  { env; overwritten; hung = !hang }

module Candidate = struct
  type t =
    | Inconsistency of Checkers.inconsistency
    | Ordering of { crash : Pmem.Crash_images.state option; eff_words : int list }
    | Sync of Checkers.sync_event
end

type ctx = { c_target : Target.t; c_whitelist : Whitelist.t; c_images : int }

let ctx ?(images = 1) ?whitelist target =
  let whitelist = match whitelist with Some w -> w | None -> Whitelist.empty () in
  { c_target = target; c_whitelist = whitelist; c_images = max 1 images }

let crash_of = function
  | Candidate.Inconsistency inc -> inc.Checkers.crash
  | Candidate.Ordering { crash; _ } -> crash
  | Candidate.Sync ev -> ev.Checkers.sy_crash

let in_delta w delta = List.exists (fun (w', _) -> w' = w) delta

(* Images in which the crash already repaired the candidate: recovery has
   nothing to fix there, so running it would misreport a bug. *)
let skip_image cand delta =
  match cand with
  | Candidate.Inconsistency inc ->
      (* The source word drained with this crash: the read saw data that
         did reach PM, so this world holds no inconsistency. *)
      in_delta inc.Checkers.source.Runtime.Candidates.addr delta
  | Candidate.Ordering { eff_words; _ } ->
      eff_words <> [] && List.for_all (fun w -> in_delta w delta) eff_words
  | Candidate.Sync _ -> false

(* Whether one recovery run fixed the candidate on this image. *)
let fixed_by cand delta (r : recovery_result) =
  match cand with
  | Candidate.Inconsistency inc ->
      inc.Checkers.eff_words <> []
      && List.for_all (fun w -> Hashtbl.mem r.overwritten w) inc.Checkers.eff_words
  | Candidate.Ordering { eff_words; _ } ->
      (* Words the crash persisted need no rewrite; recovery must cover
         the rest. *)
      let remaining = List.filter (fun w -> not (in_delta w delta)) eff_words in
      remaining <> [] && List.for_all (fun w -> Hashtbl.mem r.overwritten w) remaining
  | Candidate.Sync ev ->
      Int64.equal (Pmem.Pool.peek r.env.Env.pool ev.Checkers.sy_addr)
        ev.Checkers.var.Checkers.sv_init

let validate ctx cand =
  Obs.Metrics.incr (Lazy.force m_validations);
  Obs.Metrics.time (Lazy.force m_validation) @@ fun () ->
  let whitelisted =
    match cand with
    | Candidate.Inconsistency inc -> Whitelist.covers ctx.c_whitelist inc
    | Candidate.Ordering _ | Candidate.Sync _ -> false
  in
  if whitelisted then Whitelisted_fp
  else
    match crash_of cand with
    | None -> Bug { recovery_hang = false; image_index = 0 } (* no image: cannot validate *)
    | Some st ->
        let rec go seq budget =
          if budget = 0 then Validated_fp
          else
            match seq () with
            | Seq.Nil -> Validated_fp
            | Seq.Cons ((idx, delta), rest) ->
                Obs.Metrics.incr (Lazy.force m_images_enumerated);
                if skip_image cand delta then go rest budget
                else begin
                  Obs.Metrics.incr (Lazy.force m_images_validated);
                  let r =
                    Pmem.Crash_images.with_image st delta (run_recovery ctx.c_target)
                  in
                  if r.hung then Bug { recovery_hang = true; image_index = idx }
                  else if fixed_by cand delta r then go rest (budget - 1)
                  else Bug { recovery_hang = false; image_index = idx }
                end
        in
        go (Pmem.Crash_images.to_seq st) ctx.c_images

(** AFL-style corpus scheduling: favored-seed culling over a corpus keyed
    by {!Seed.fingerprint}.

    Entries are credited with the (write site, read site) alias pairs
    their campaigns first achieved; {!cull} keeps a greedy minimal
    {e favored} cover of the achieved-pair set — scored by (pairs
    credited, op count, age) — and tombstones dominated entries, and
    {!lease} hands out favored seeds preferentially, least-leased first.

    Used by the fleet coordinator (durable corpus) and by the in-process
    fuzzer behind [--corpus-sched].  Not synchronised. *)

type entry = {
  e_fp : int64;  (** {!Seed.fingerprint} — the dedup key *)
  e_seed : Seed.t;
  e_op_count : int;
  e_added : int;  (** insertion sequence number — the age axis *)
  mutable e_pairs : (string * string) list;
      (** alias site pairs credited to this entry, sorted *)
  mutable e_favored : bool;
  mutable e_tombstone : bool;  (** dominated — never leased again *)
  mutable e_leases : int;
}

type t

val create : unit -> t

val add : t -> ?pairs:(string * string) list -> ?added:int -> Seed.t -> entry option
(** Insert a seed; [None] when its fingerprint is already present (the
    existing entry absorbs [pairs] instead).  [added] overrides the
    insertion sequence number — store reloads use it to preserve age. *)

val credit_pairs : t -> int64 -> (string * string) list -> unit
(** Credit an entry with newly achieved pairs (no-op for unknown
    fingerprints).  Fresh credit resurrects a tombstoned entry. *)

val cull : t -> unit
(** Recompute the favored cover and tombstone dominated entries.  Also
    publishes each live entry's favored score (credited-pair count, 0
    when unfavored) through {!Seed.set_priority}. *)

val energy : t -> Seed.t -> int
(** AFL-style mutation energy: [1 + min 3 pairs] for a favored entry
    ([pairs] = its credited alias pairs), [1] otherwise.  The fuzzer's
    seed tier multiplies its per-seed interleaving budget by this, so
    favored seeds are fuzzed harder. *)

val lease : t -> int -> Seed.t list
(** Up to [n] seeds: favored first, then the never-contributed reservoir;
    least-leased first within each class.  Bumps lease counts, so
    repeated calls rotate through the favored set.  Deterministic. *)

val find : t -> int64 -> entry option
val entries : t -> entry list
(** All entries (including tombstoned), insertion order. *)

val size : t -> int
val favored_count : t -> int
val tombstoned_count : t -> int

(** Partial-order-reduction glue: wires {!Runtime.Footprint} summaries
    into {!Sched.Scheduler.run_por} and computes a canonical
    Mazurkiewicz-trace hash per completed schedule.

    One harness serves one campaign at a time; {!reset} returns it to the
    fresh state so the persistent-mode {!Engine} can hold a single
    instance per worker.  {!wrap} interposes on the campaign's
    interleaving policy to record pending and executed footprints —
    instrumentation only, it never draws randomness and forwards every
    hook to the base policy, so the schedule semantics are unchanged.

    The trace hash is the XOR over executed ops of a mix of (footprint,
    Foata layer, tid, per-fiber sequence number).  Foata layers are
    invariant under dependency-preserving reorderings, and XOR is
    order-blind, so two schedules in the same Mazurkiewicz class digest
    identically regardless of interleaving — the fuzzer uses this to skip
    post-failure validation of behaviourally redundant campaigns.

    The digesting hot path is allocation-free: the four Foata-layer maps
    are flat generation-stamped open-addressing tables sized from the
    pool (reset = generation bump), the digest accumulates in a native
    [int], and a per-fiber frontier-clock fast path skips the table
    probes whenever the stepping fiber already owns the highest layer. *)

type t

val create : ?pool_words:int -> nthreads:int -> unit -> t
(** [pool_words] sizes the flat layer tables so that pool word/line
    indices never collide or trigger growth (default 1024; any key still
    works via probing + growth, it just may probe further). *)

val reset : t -> unit
(** Return the harness to the fresh state — O(fibers): table resets are
    generation bumps, not clears.  Re-enables digesting. *)

val set_digest : t -> bool -> unit
(** [set_digest t false] short-circuits the layer/hash work entirely for
    consumers that only need the schedule (replay): the pending/executed
    bookkeeping the sleep sets need keeps running, {!trace_hash} and
    {!ops} stay 0.  {!reset} re-enables digesting. *)

val wrap : t -> Runtime.Env.policy -> Runtime.Env.policy
(** Interpose footprint recording on a policy.  [before] records the
    pending footprint {e ahead} of the base hook's yield; [after] folds
    the executed op into the current step (and the trace hash) ahead of
    the base hook. *)

val hooks : t -> Sched.Scheduler.por
(** The int-typed view {!Sched.Scheduler.run_por} consumes. *)

val record_op : t -> int -> Runtime.Footprint.t -> unit
(** [record_op t tid fp] — fold one executed op into the digest directly,
    bypassing the policy wrapper.  For the trace-hash invariance property
    tests and the digest microbench, which replay synthetic schedules
    without a scheduler. *)

val trace_hash : t -> int64
val ops : t -> int

val capacity : t -> int
(** The [nthreads] the harness was created for. *)

type stats = {
  s_trace_hash : int64;  (** canonical Mazurkiewicz-trace digest *)
  s_ops : int;  (** instrumented ops folded into the digest *)
  s_layers : int;  (** Foata height — the critical-path length of the trace *)
  s_pruned_picks : int;
  s_forced_wakes : int;
}
(** Per-campaign pruning provenance, recorded in artifacts. *)

val stats : t -> Sched.Scheduler.por_stats -> stats

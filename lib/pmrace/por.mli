(** Partial-order-reduction glue: wires {!Runtime.Footprint} summaries
    into {!Sched.Scheduler.run_por} and computes a canonical
    Mazurkiewicz-trace hash per completed schedule.

    One harness serves one campaign at a time; {!reset} returns it to the
    fresh state so the persistent-mode {!Engine} can hold a single
    instance per worker.  {!wrap} interposes on the campaign's
    interleaving policy to record pending and executed footprints —
    instrumentation only, it never draws randomness and forwards every
    hook to the base policy, so the schedule semantics are unchanged.

    The trace hash is the XOR over executed ops of a mix of (footprint,
    Foata layer, tid, per-fiber sequence number).  Foata layers are
    invariant under dependency-preserving reorderings, and XOR is
    order-blind, so two schedules in the same Mazurkiewicz class digest
    identically regardless of interleaving — the fuzzer uses this to skip
    post-failure validation of behaviourally redundant campaigns. *)

type t

val create : nthreads:int -> t
val reset : t -> unit

val wrap : t -> Runtime.Env.policy -> Runtime.Env.policy
(** Interpose footprint recording on a policy.  [before] records the
    pending footprint {e ahead} of the base hook's yield; [after] folds
    the executed op into the current step (and the trace hash) ahead of
    the base hook. *)

val hooks : t -> Sched.Scheduler.por
(** The int-typed view {!Sched.Scheduler.run_por} consumes. *)

val trace_hash : t -> int64
val ops : t -> int

val capacity : t -> int
(** The [nthreads] the harness was created for. *)

type stats = {
  s_trace_hash : int64;  (** canonical Mazurkiewicz-trace digest *)
  s_ops : int;  (** instrumented ops folded into the digest *)
  s_layers : int;  (** Foata height — the critical-path length of the trace *)
  s_pruned_picks : int;
  s_forced_wakes : int;
}
(** Per-campaign pruning provenance, recorded in artifacts. *)

val stats : t -> Sched.Scheduler.por_stats -> stats

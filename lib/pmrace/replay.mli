(** Campaign replay from recorded provenance ([pmrace replay]).

    An {!Artifact.t} records, for every campaign, the exact seed, the
    scheduler seed, and the interleaving-policy spec.  Replay rebuilds
    the campaign input from the artifact's config and the bug's first
    sighting, re-executes that single campaign, validates its findings,
    and checks that the same (kind, site) bug group reappears. *)

type outcome = {
  r_bug : Artifact.bug;  (** the artifact bug group being replayed *)
  r_campaign : int;  (** campaign index that was re-executed *)
  r_reproduced : bool;  (** the same (kind, site) group reappeared *)
  r_groups : Report.bug_group list;  (** groups the replayed campaign produced *)
  r_image_index : int option;
      (** the crash-image index the bug reproduced on this run (0 = base
          image); [None] when not reproduced *)
}

val replay_bug : target:Target.t -> artifact:Artifact.t -> bug:int -> (outcome, string) result
(** Replay artifact bug group [bug] (an index into the artifact's [bugs]
    list).  Validation uses the recorded config's crash-image budget,
    widened if needed to cover the bug's recorded [b_image_index] so the
    exact enumerated image is rebuilt.  Errors when the target does not
    match the artifact, the index is out of range, or the bug carries no
    replayable provenance. *)

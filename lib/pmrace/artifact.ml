(* Versioned JSON session artifacts.

   One artifact = one fuzzing session, complete enough to (a) replay any
   campaign by index from its recorded provenance and (b) reproduce the
   report's headline numbers (coverage, timeline, unique-bug groups)
   without re-running anything.  The encoding is Obs.Json under a
   schema/version header; decoding re-registers instruction site names so
   policy specs round-trip into live campaign inputs. *)

module J = Obs.Json
module Instr = Runtime.Instr

let schema = "pmrace-session"

(* v2: adds the "lint" list, the "invariants" {mined; violations}
   section, and config.invariants.
   v3: adds the "origins" list (fleet mode: one entry per merged session
   shard, with its campaign re-index offset) and config.corpus_sched.
   v4: adds config.crash_images and per-bug "image_index" (the enumerated
   crash image the bug reproduced on, for replay).
   v5: adds config.por, the per-campaign "trace" hash in provenance
   (hex-encoded canonical Mazurkiewicz-trace hash, null when POR was
   off), and the session-level "por" pruning totals.
   All additive — older artifacts decode with the new fields
   empty/false/default. *)
let version = 5

type bug = {
  b_kind : string;
  b_site : string;
  b_read_sites : string list;
  b_members : int;
  b_first_campaign : int option;
  b_image_index : int option;
      (* crash-image index of the earliest bug verdict; None pre-v4 *)
}

type prov_entry = {
  pr_campaign : int;
  pr_sched_seed : int;
  pr_policy : string;
  pr_seed : Seed.t;
  pr_spec : Campaign.policy_spec;
  pr_trace : int64 option;
      (* canonical trace hash of the schedule this campaign executed;
         None when POR was off or pre-v5 *)
}

type lint_entry = {
  l_kind : string;
  l_severity : string;
  l_write_site : string option;
  l_site : string;
  l_addr : int;
  l_count : int;
}

type inv_spec_entry = { ie_label : string; ie_kind : string; ie_support : int }

type inv_finding_entry = {
  ivf_label : string;
  ivf_kind : string;
  ivf_site : string;
  ivf_addr : int;
  ivf_campaign : int;
  ivf_verdict : string option;
}

(* One merged-in session shard: where its campaigns landed in the merged
   numbering ([o_offset] was added to every campaign index it
   contributed), and its own headline numbers. *)
type origin = {
  o_label : string;
  o_campaigns : int;
  o_wall_time : float;
  o_offset : int;
}

type t = {
  a_target : string;
  a_config : Fuzzer.config;
  a_campaigns : int;
  a_wall_time : float;
  a_annotations : int;
  a_worker_campaigns : int list;
  a_alias_bits : int;
  a_branch_bits : int;
  a_possible_pairs : int option;
  a_site_pairs : (string * string) list;
  a_timeline : Fuzzer.timeline_point list;
  a_bugs : bug list;
  a_hangs : (string * int) list;
  a_lint : lint_entry list; (* static pre-pass lint findings (v2) *)
  a_invariants : inv_spec_entry list; (* the mined monitor set (v2) *)
  a_inv_findings : inv_finding_entry list; (* invariant violations (v2) *)
  a_provenance : prov_entry list;
  a_origins : origin list; (* merged shards, in merge order (v3); [] = single session *)
  a_por : Hub.por_totals option; (* schedule-pruning totals (v5); None = POR off *)
  a_metrics : J.t;
}

(* ------------------------------------------------------------------ *)
(* Decode helpers: exceptions internally, [result] at the API boundary. *)

let fail fmt = Printf.ksprintf failwith fmt

let mem name j =
  match J.member name j with Some v -> v | None -> fail "missing field %S" name

let get conv what name j =
  match conv (mem name j) with Some v -> v | None -> fail "field %S: expected %s" name what

let get_int = get J.to_int "int"
let get_str = get J.to_str "string"
let get_bool = get J.to_bool "bool"
let get_float = get J.to_float "float"
let get_list = get J.to_list "list"
let str j = match J.to_str j with Some s -> s | None -> fail "expected string"
let int_of j = match J.to_int j with Some n -> n | None -> fail "expected int"

(* Fields added after v1: absent in old artifacts, so they default
   instead of failing. *)
let get_bool_opt ~default name j =
  match J.member name j with
  | None | Some J.Null -> default
  | Some v -> ( match J.to_bool v with Some b -> b | None -> fail "field %S: expected bool" name)

let get_int_opt ~default name j =
  match J.member name j with
  | None | Some J.Null -> default
  | Some v -> ( match J.to_int v with Some n -> n | None -> fail "field %S: expected int" name)

let get_list_opt name j =
  match J.member name j with
  | None | Some J.Null -> []
  | Some v -> (
      match J.to_list v with Some l -> l | None -> fail "field %S: expected list" name)

let str_opt j = match j with J.Null -> None | v -> Some (str v)

(* ------------------------------------------------------------------ *)
(* Config *)

let string_of_mode = function
  | Fuzzer.Mode_pmrace -> "pmrace"
  | Fuzzer.Mode_delay -> "delay"
  | Fuzzer.Mode_random -> "random"

let mode_of_string = function
  | "pmrace" -> Fuzzer.Mode_pmrace
  | "delay" -> Fuzzer.Mode_delay
  | "random" -> Fuzzer.Mode_random
  | s -> fail "unknown mode %S" s

let config_to_json (c : Fuzzer.config) =
  J.Obj
    [
      ("max_campaigns", J.Int c.max_campaigns);
      ("execs_per_interleaving", J.Int c.execs_per_interleaving);
      ("max_interleavings_per_seed", J.Int c.max_interleavings_per_seed);
      ("master_seed", J.Int c.master_seed);
      ("mode", J.String (string_of_mode c.mode));
      ("interleaving_tier", J.Bool c.interleaving_tier);
      ("seed_tier", J.Bool c.seed_tier);
      ("use_checkpoint", J.Bool c.use_checkpoint);
      ("step_budget", J.Int c.step_budget);
      ("validate", J.Bool c.validate);
      ("evict_prob", J.Float c.evict_prob);
      ("eadr", J.Bool c.eadr);
      ("workers", J.Int c.workers);
      ("initial_seeds", J.Int c.initial_seeds);
      ("whitelist_extra", J.List (List.map (fun s -> J.String s) c.whitelist_extra));
      ("static_prepass", J.Bool c.static_prepass);
      ("invariants", J.Bool c.invariants);
      ("corpus_sched", J.Bool c.corpus_sched);
      ("crash_images", J.Int c.crash_images);
      ("por", J.Bool c.por);
    ]

let config_of_json j =
  Fuzzer.Config.make ~max_campaigns:(get_int "max_campaigns" j)
    ~execs_per_interleaving:(get_int "execs_per_interleaving" j)
    ~max_interleavings_per_seed:(get_int "max_interleavings_per_seed" j)
    ~master_seed:(get_int "master_seed" j)
    ~mode:(mode_of_string (get_str "mode" j))
    ~interleaving_tier:(get_bool "interleaving_tier" j)
    ~seed_tier:(get_bool "seed_tier" j)
    ~use_checkpoint:(get_bool "use_checkpoint" j)
    ~step_budget:(get_int "step_budget" j) ~validate:(get_bool "validate" j)
    ~evict_prob:(get_float "evict_prob" j) ~eadr:(get_bool "eadr" j)
    ~workers:(get_int "workers" j) ~initial_seeds:(get_int "initial_seeds" j)
    ~whitelist_extra:(List.map str (get_list "whitelist_extra" j))
    ~static_prepass:(get_bool "static_prepass" j)
    ~invariants:(get_bool_opt ~default:false "invariants" j)
    ~corpus_sched:(get_bool_opt ~default:false "corpus_sched" j)
    ~crash_images:(get_int_opt ~default:1 "crash_images" j)
    ~por:(get_bool_opt ~default:false "por" j)
    ()

(* ------------------------------------------------------------------ *)
(* Seeds *)

let op_to_json (op : Seed.op) =
  let o name fields = J.Obj (("op", J.String name) :: fields) in
  match op with
  | Seed.Put { key; value } -> o "put" [ ("key", J.Int key); ("value", J.Int value) ]
  | Seed.Get { key } -> o "get" [ ("key", J.Int key) ]
  | Seed.Update { key; value } -> o "update" [ ("key", J.Int key); ("value", J.Int value) ]
  | Seed.Delete { key } -> o "delete" [ ("key", J.Int key) ]
  | Seed.Incr { key; delta } -> o "incr" [ ("key", J.Int key); ("delta", J.Int delta) ]
  | Seed.Decr { key; delta } -> o "decr" [ ("key", J.Int key); ("delta", J.Int delta) ]
  | Seed.Append { key; value } -> o "append" [ ("key", J.Int key); ("value", J.Int value) ]
  | Seed.Prepend { key; value } -> o "prepend" [ ("key", J.Int key); ("value", J.Int value) ]
  | Seed.Scan { key; count } -> o "scan" [ ("key", J.Int key); ("count", J.Int count) ]
  | Seed.Cas { key; value; token } ->
      o "cas" [ ("key", J.Int key); ("value", J.Int value); ("token", J.Int token) ]
  | Seed.Touch { key; exptime } -> o "touch" [ ("key", J.Int key); ("exptime", J.Int exptime) ]
  | Seed.Flush_all -> o "flush_all" []
  | Seed.Stats -> o "stats" []

let op_of_json j : Seed.op =
  match get_str "op" j with
  | "put" -> Seed.Put { key = get_int "key" j; value = get_int "value" j }
  | "get" -> Seed.Get { key = get_int "key" j }
  | "update" -> Seed.Update { key = get_int "key" j; value = get_int "value" j }
  | "delete" -> Seed.Delete { key = get_int "key" j }
  | "incr" -> Seed.Incr { key = get_int "key" j; delta = get_int "delta" j }
  | "decr" -> Seed.Decr { key = get_int "key" j; delta = get_int "delta" j }
  | "append" -> Seed.Append { key = get_int "key" j; value = get_int "value" j }
  | "prepend" -> Seed.Prepend { key = get_int "key" j; value = get_int "value" j }
  | "scan" -> Seed.Scan { key = get_int "key" j; count = get_int "count" j }
  | "cas" -> Seed.Cas { key = get_int "key" j; value = get_int "value" j; token = get_int "token" j }
  | "touch" -> Seed.Touch { key = get_int "key" j; exptime = get_int "exptime" j }
  | "flush_all" -> Seed.Flush_all
  | "stats" -> Seed.Stats
  | s -> fail "unknown op %S" s

let seed_to_json seed =
  J.List
    (Array.to_list
       (Array.map (fun ops -> J.List (Array.to_list (Array.map op_to_json ops)))
          (Seed.threads seed)))

let seed_of_json_exn j =
  match J.to_list j with
  | None -> fail "seed: expected list of threads"
  | Some threads ->
      Seed.make
        (Array.of_list
           (List.map
              (fun tj ->
                match J.to_list tj with
                | None -> fail "seed thread: expected list of ops"
                | Some ops -> Array.of_list (List.map op_of_json ops))
              threads))

(* [result] front for external (wire/store) callers; the artifact decoder
   itself stays in exception style. *)
let seed_of_json j = try Ok (seed_of_json_exn j) with Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Policy specs *)

let sites_to_json is = J.List (List.map (fun i -> J.String (Instr.name i)) is)

let sites_of_json j =
  match J.to_list j with
  | Some sites -> List.map (fun s -> Instr.site (str s)) sites
  | None -> fail "policy spec sites: expected list"

let spec_to_json = function
  | Campaign.Pmrace { entry; skip } ->
      J.Obj
        [
          ("policy", J.String "pmrace");
          ("addr", J.Int entry.Shared_queue.addr);
          ("loads", sites_to_json entry.Shared_queue.loads);
          ("stores", sites_to_json entry.Shared_queue.stores);
          ("hits", J.Int entry.Shared_queue.hits);
          ("skip", J.Int skip);
        ]
  | Campaign.Delay { prob; max_delay } ->
      J.Obj
        [ ("policy", J.String "delay"); ("prob", J.Float prob); ("max_delay", J.Int max_delay) ]
  | Campaign.Random_sched -> J.Obj [ ("policy", J.String "random") ]
  | Campaign.No_preempt -> J.Obj [ ("policy", J.String "none") ]

let spec_of_json_exn j =
  match get_str "policy" j with
  | "pmrace" ->
      Campaign.Pmrace
        {
          entry =
            {
              Shared_queue.addr = get_int "addr" j;
              loads = sites_of_json (mem "loads" j);
              stores = sites_of_json (mem "stores" j);
              hits = get_int "hits" j;
            };
          skip = get_int "skip" j;
        }
  | "delay" -> Campaign.Delay { prob = get_float "prob" j; max_delay = get_int "max_delay" j }
  | "random" -> Campaign.Random_sched
  | "none" -> Campaign.No_preempt
  | s -> fail "unknown policy spec %S" s

let spec_of_json j = try Ok (spec_of_json_exn j) with Failure msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Session -> artifact *)

let min_opt = function [] -> None | x :: xs -> Some (List.fold_left min x xs)

(* The campaign index of a bug group's earliest member finding, recovered
   by matching the group identity (kind + write site / sync variable)
   against the fine-grained findings. *)
let first_campaign (report : Report.t) (g : Report.bug_group) =
  match g.Report.bg_kind with
  | `Sync ->
      Report.sync_findings report
      |> List.filter_map (fun (f : Report.sync_finding) ->
             if String.equal f.ev.var.Runtime.Checkers.sv_name g.Report.bg_site then
               Some f.sync_found_at
             else None)
      |> min_opt
  | (`Inter | `Intra) as k ->
      let kind =
        match k with `Inter -> Runtime.Candidates.Inter | `Intra -> Runtime.Candidates.Intra
      in
      Report.findings report
      |> List.filter_map (fun (f : Report.finding) ->
             if
               f.inc.source.Runtime.Candidates.kind = kind
               && String.equal
                    (Instr.name f.inc.source.Runtime.Candidates.write_instr)
                    g.Report.bg_site
             then Some f.found_at
             else None)
      |> min_opt

let kind_string = function `Inter -> "inter" | `Intra -> "intra" | `Sync -> "sync"

let severity_string = function
  | Analysis.Lint.High -> "high"
  | Analysis.Lint.Medium -> "medium"
  | Analysis.Lint.Low -> "low"

let verdict_string = function
  | Post_failure.Validated_fp -> "validated-fp"
  | Post_failure.Whitelisted_fp -> "whitelisted-fp"
  | Post_failure.Bug { recovery_hang = true; _ } -> "bug-recovery-hang"
  | Post_failure.Bug { recovery_hang = false; _ } -> "bug"

(* The crash-image index of the group's earliest bug-verdict member: the
   image `pmrace replay` must rebuild to reproduce the bug (0 = the base
   image; >0 = an enumerated image single-image validation would miss). *)
let first_image_index (report : Report.t) (g : Report.bug_group) =
  let bug_index = function
    | Some (Post_failure.Bug { image_index; _ }) -> Some image_index
    | Some Post_failure.Validated_fp | Some Post_failure.Whitelisted_fp | None -> None
  in
  let members =
    match g.Report.bg_kind with
    | `Sync ->
        Report.sync_findings report
        |> List.filter_map (fun (f : Report.sync_finding) ->
               if String.equal f.ev.var.Runtime.Checkers.sv_name g.Report.bg_site then
                 Option.map (fun i -> (f.sync_found_at, i)) (bug_index f.sync_verdict)
               else None)
    | (`Inter | `Intra) as k ->
        let kind =
          match k with `Inter -> Runtime.Candidates.Inter | `Intra -> Runtime.Candidates.Intra
        in
        Report.findings report
        |> List.filter_map (fun (f : Report.finding) ->
               if
                 f.inc.source.Runtime.Candidates.kind = kind
                 && String.equal
                      (Instr.name f.inc.source.Runtime.Candidates.write_instr)
                      g.Report.bg_site
               then Option.map (fun i -> (f.found_at, i)) (bug_index f.verdict)
               else None)
  in
  match members with
  | [] -> None
  | x :: xs ->
      Some
        (snd
           (List.fold_left (fun (c, i) (c', i') -> if c' < c then (c', i') else (c, i)) x xs))

let of_session ~(target : Target.t) ~cfg (s : Fuzzer.session) =
  let bugs =
    List.map
      (fun (g : Report.bug_group) ->
        {
          b_kind = kind_string g.bg_kind;
          b_site = g.bg_site;
          b_read_sites = g.bg_read_sites;
          b_members = g.bg_members;
          b_first_campaign = first_campaign s.report g;
          b_image_index = first_image_index s.report g;
        })
      (Report.bug_groups s.report)
  in
  let provenance =
    Hashtbl.fold
      (fun campaign (p : Fuzzer.provenance) acc ->
        {
          pr_campaign = campaign;
          pr_sched_seed = p.p_sched_seed;
          pr_policy = p.p_policy;
          pr_seed = p.p_seed;
          pr_spec = p.p_spec;
          pr_trace = Hashtbl.find_opt s.trace_hashes campaign;
        }
        :: acc)
      s.provenance []
    |> List.sort (fun a b -> compare a.pr_campaign b.pr_campaign)
  in
  {
    a_target = target.Target.name;
    a_config = cfg;
    a_campaigns = s.campaigns_run;
    a_wall_time = s.wall_time;
    a_annotations = s.annotations;
    a_worker_campaigns = Array.to_list s.worker_campaigns;
    a_alias_bits = Alias_cov.count s.alias;
    a_branch_bits = Branch_cov.count s.branch;
    a_possible_pairs = Alias_cov.possible s.alias;
    a_site_pairs =
      List.map
        (fun (w, r) -> (Instr.name (Instr.of_int w), Instr.name (Instr.of_int r)))
        (Alias_cov.site_pairs s.alias);
    a_timeline = s.timeline;
    a_bugs = bugs;
    a_hangs = Report.hangs s.report;
    a_lint =
      List.map
        (fun (f : Analysis.Lint.finding) ->
          {
            l_kind = Analysis.Lint.kind_slug f.f_kind;
            l_severity = severity_string f.f_severity;
            l_write_site = Option.map Instr.name f.f_write_site;
            l_site = Instr.name f.f_site;
            l_addr = f.f_addr;
            l_count = f.f_count;
          })
        (Report.lint_findings s.report);
    a_invariants =
      List.map
        (fun (sp : Analysis.Invariants.spec) ->
          {
            ie_label = Analysis.Invariants.label sp.inv;
            ie_kind = Analysis.Invariants.inv_kind_slug sp.inv;
            ie_support = sp.support;
          })
        (Report.invariants s.report);
    a_inv_findings =
      List.map
        (fun (f : Report.inv_finding) ->
          {
            ivf_label = f.iv_label;
            ivf_kind = f.iv_kind;
            ivf_site = f.iv_site;
            ivf_addr = f.iv_addr;
            ivf_campaign = f.iv_found_at;
            ivf_verdict = Option.map verdict_string f.iv_verdict;
          })
        (Report.invariant_findings s.report);
    a_provenance = provenance;
    a_origins = [];
    a_por = s.por;
    a_metrics = (if Obs.Metrics.enabled () then Obs.Metrics.to_json () else J.Null);
  }

(* ------------------------------------------------------------------ *)
(* JSON encode / decode *)

(* int64 trace hashes as fixed-width hex strings: Obs.Json has no int64,
   and 63-bit J.Int would silently mangle the top bit. *)
let trace_to_json = function
  | None -> J.Null
  | Some h -> J.String (Printf.sprintf "%016Lx" h)

let trace_of_json name j =
  match J.member name j with
  | None | Some J.Null -> None
  | Some v -> (
      match J.to_str v with
      | None -> fail "field %S: expected hex string" name
      | Some s -> (
          match Int64.of_string_opt ("0x" ^ s) with
          | Some h -> Some h
          | None -> fail "field %S: bad trace hash %S" name s))

let to_json (a : t) =
  J.Obj
    [
      ("schema", J.String schema);
      ("version", J.Int version);
      ("target", J.String a.a_target);
      ("config", config_to_json a.a_config);
      ("campaigns", J.Int a.a_campaigns);
      ("wall_time", J.Float a.a_wall_time);
      ("annotations", J.Int a.a_annotations);
      ("worker_campaigns", J.List (List.map (fun n -> J.Int n) a.a_worker_campaigns));
      ( "coverage",
        J.Obj
          [
            ("alias_bits", J.Int a.a_alias_bits);
            ("branch_bits", J.Int a.a_branch_bits);
            ( "possible_pairs",
              match a.a_possible_pairs with Some n -> J.Int n | None -> J.Null );
            ( "site_pairs",
              J.List
                (List.map
                   (fun (w, r) -> J.Obj [ ("write", J.String w); ("read", J.String r) ])
                   a.a_site_pairs) );
          ] );
      ( "timeline",
        J.List
          (List.map
             (fun (tp : Fuzzer.timeline_point) ->
               J.Obj
                 [
                   ("campaign", J.Int tp.tp_campaign);
                   ("time", J.Float tp.tp_time);
                   ("alias_bits", J.Int tp.tp_alias_bits);
                   ("branch_bits", J.Int tp.tp_branch_bits);
                   ("inter_unique", J.Int tp.tp_inter_unique);
                   ("new_inter", J.Bool tp.tp_new_inter);
                 ])
             a.a_timeline) );
      ( "bugs",
        J.List
          (List.map
             (fun b ->
               J.Obj
                 [
                   ("kind", J.String b.b_kind);
                   ("site", J.String b.b_site);
                   ("read_sites", J.List (List.map (fun s -> J.String s) b.b_read_sites));
                   ("members", J.Int b.b_members);
                   ( "first_campaign",
                     match b.b_first_campaign with Some n -> J.Int n | None -> J.Null );
                   ( "image_index",
                     match b.b_image_index with Some n -> J.Int n | None -> J.Null );
                 ])
             a.a_bugs) );
      ( "hangs",
        J.List
          (List.map
             (fun (info, n) -> J.Obj [ ("info", J.String info); ("count", J.Int n) ])
             a.a_hangs) );
      ( "lint",
        J.List
          (List.map
             (fun l ->
               J.Obj
                 [
                   ("kind", J.String l.l_kind);
                   ("severity", J.String l.l_severity);
                   ( "write_site",
                     match l.l_write_site with Some s -> J.String s | None -> J.Null );
                   ("site", J.String l.l_site);
                   ("addr", J.Int l.l_addr);
                   ("count", J.Int l.l_count);
                 ])
             a.a_lint) );
      ( "invariants",
        J.Obj
          [
            ( "mined",
              J.List
                (List.map
                   (fun e ->
                     J.Obj
                       [
                         ("label", J.String e.ie_label);
                         ("kind", J.String e.ie_kind);
                         ("support", J.Int e.ie_support);
                       ])
                   a.a_invariants) );
            ( "violations",
              J.List
                (List.map
                   (fun f ->
                     J.Obj
                       [
                         ("label", J.String f.ivf_label);
                         ("kind", J.String f.ivf_kind);
                         ("site", J.String f.ivf_site);
                         ("addr", J.Int f.ivf_addr);
                         ("campaign", J.Int f.ivf_campaign);
                         ( "verdict",
                           match f.ivf_verdict with Some v -> J.String v | None -> J.Null );
                       ])
                   a.a_inv_findings) );
          ] );
      ( "provenance",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("campaign", J.Int p.pr_campaign);
                   ("sched_seed", J.Int p.pr_sched_seed);
                   ("policy", J.String p.pr_policy);
                   ("seed", seed_to_json p.pr_seed);
                   ("spec", spec_to_json p.pr_spec);
                   ("trace", trace_to_json p.pr_trace);
                 ])
             a.a_provenance) );
      ( "origins",
        J.List
          (List.map
             (fun o ->
               J.Obj
                 [
                   ("label", J.String o.o_label);
                   ("campaigns", J.Int o.o_campaigns);
                   ("wall_time", J.Float o.o_wall_time);
                   ("offset", J.Int o.o_offset);
                 ])
             a.a_origins) );
      ( "por",
        match a.a_por with
        | None -> J.Null
        | Some (p : Hub.por_totals) ->
            J.Obj
              [
                ("campaigns", J.Int p.pt_campaigns);
                ("schedules_pruned", J.Int p.pt_pruned);
                ("forced_wakes", J.Int p.pt_forced_wakes);
                ("unique_traces", J.Int p.pt_unique_traces);
                ("dup_traces", J.Int p.pt_dup_traces);
              ] );
      ("metrics", a.a_metrics);
    ]

let of_json j =
  try
    let s = get_str "schema" j in
    if not (String.equal s schema) then fail "unknown schema %S (expected %S)" s schema;
    let v = get_int "version" j in
    if v > version then fail "artifact version %d is newer than this reader (%d)" v version;
    let coverage = mem "coverage" j in
    Ok
      {
        a_target = get_str "target" j;
        a_config = config_of_json (mem "config" j);
        a_campaigns = get_int "campaigns" j;
        a_wall_time = get_float "wall_time" j;
        a_annotations = get_int "annotations" j;
        a_worker_campaigns = List.map int_of (get_list "worker_campaigns" j);
        a_alias_bits = get_int "alias_bits" coverage;
        a_branch_bits = get_int "branch_bits" coverage;
        a_possible_pairs = J.to_int (mem "possible_pairs" coverage);
        a_site_pairs =
          List.map
            (fun p -> (get_str "write" p, get_str "read" p))
            (get_list "site_pairs" coverage);
        a_timeline =
          List.map
            (fun tp ->
              {
                Fuzzer.tp_campaign = get_int "campaign" tp;
                tp_time = get_float "time" tp;
                tp_alias_bits = get_int "alias_bits" tp;
                tp_branch_bits = get_int "branch_bits" tp;
                tp_inter_unique = get_int "inter_unique" tp;
                tp_new_inter = get_bool "new_inter" tp;
              })
            (get_list "timeline" j);
        a_bugs =
          List.map
            (fun b ->
              {
                b_kind = get_str "kind" b;
                b_site = get_str "site" b;
                b_read_sites = List.map str (get_list "read_sites" b);
                b_members = get_int "members" b;
                b_first_campaign = J.to_int (mem "first_campaign" b);
                b_image_index =
                  (match J.member "image_index" b with
                  | None | Some J.Null -> None (* pre-v4 artifacts *)
                  | Some v -> J.to_int v);
              })
            (get_list "bugs" j);
        a_hangs =
          List.map (fun h -> (get_str "info" h, get_int "count" h)) (get_list "hangs" j);
        a_lint =
          List.map
            (fun l ->
              {
                l_kind = get_str "kind" l;
                l_severity = get_str "severity" l;
                l_write_site = str_opt (mem "write_site" l);
                l_site = get_str "site" l;
                l_addr = get_int "addr" l;
                l_count = get_int "count" l;
              })
            (get_list_opt "lint" j);
        a_invariants =
          (match J.member "invariants" j with
          | None | Some J.Null -> []
          | Some inv ->
              List.map
                (fun e ->
                  {
                    ie_label = get_str "label" e;
                    ie_kind = get_str "kind" e;
                    ie_support = get_int "support" e;
                  })
                (get_list_opt "mined" inv));
        a_inv_findings =
          (match J.member "invariants" j with
          | None | Some J.Null -> []
          | Some inv ->
              List.map
                (fun f ->
                  {
                    ivf_label = get_str "label" f;
                    ivf_kind = get_str "kind" f;
                    ivf_site = get_str "site" f;
                    ivf_addr = get_int "addr" f;
                    ivf_campaign = get_int "campaign" f;
                    ivf_verdict = str_opt (mem "verdict" f);
                  })
                (get_list_opt "violations" inv));
        a_provenance =
          List.map
            (fun p ->
              {
                pr_campaign = get_int "campaign" p;
                pr_sched_seed = get_int "sched_seed" p;
                pr_policy = get_str "policy" p;
                pr_seed = seed_of_json_exn (mem "seed" p);
                pr_spec = spec_of_json_exn (mem "spec" p);
                pr_trace = trace_of_json "trace" p (* absent pre-v5 *);
              })
            (get_list "provenance" j);
        a_origins =
          List.map
            (fun o ->
              {
                o_label = get_str "label" o;
                o_campaigns = get_int "campaigns" o;
                o_wall_time = get_float "wall_time" o;
                o_offset = get_int "offset" o;
              })
            (get_list_opt "origins" j);
        a_por =
          (match J.member "por" j with
          | None | Some J.Null -> None (* pre-v5, or POR off *)
          | Some p ->
              Some
                {
                  Hub.pt_campaigns = get_int "campaigns" p;
                  pt_pruned = get_int "schedules_pruned" p;
                  pt_forced_wakes = get_int "forced_wakes" p;
                  pt_unique_traces = get_int "unique_traces" p;
                  pt_dup_traces = get_int "dup_traces" p;
                });
        a_metrics = Option.value ~default:J.Null (J.member "metrics" j);
      }
  with Failure msg -> Error msg

let write ~path a =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (to_json a));
      output_char oc '\n')

let read ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> ( match J.of_string text with Ok j -> of_json j | Error e -> Error e)

let find_provenance a campaign =
  List.find_opt (fun p -> p.pr_campaign = campaign) a.a_provenance

let bug_fingerprints a =
  List.sort compare (List.map (fun b -> (b.b_kind, b.b_site)) a.a_bugs)

(* ------------------------------------------------------------------ *)
(* Session merging (fleet mode) *)

(* How many campaign indices a shard occupies: its campaign count, or
   further if provenance/timeline reach higher (a worker killed
   mid-campaign leaves reserved-but-uncommitted indices). *)
let span a =
  let m = List.fold_left (fun m p -> max m (p.pr_campaign + 1)) a.a_campaigns a.a_provenance in
  List.fold_left (fun m (tp : Fuzzer.timeline_point) -> max m tp.tp_campaign) m a.a_timeline

let merge inputs =
  match inputs with
  | [] -> Error "merge: no artifacts"
  | (_, (first : t)) :: _ -> (
      try
        List.iter
          (fun (_, a) ->
            if not (String.equal a.a_target first.a_target) then
              fail "merge: target mismatch (%S vs %S)" a.a_target first.a_target)
          inputs;
        (* Re-index: shard [i]'s campaigns shift by the summed span of the
           shards before it, so provenance, timeline, bug first-sightings
           and invariant violations stay replayable by (merged) index. *)
        let _, shifted_rev, origins_rev =
          List.fold_left
            (fun (off, acc, origs) (label, a) ->
              let origs =
                if a.a_origins = [] then
                  {
                    o_label = label;
                    o_campaigns = a.a_campaigns;
                    o_wall_time = a.a_wall_time;
                    o_offset = off;
                  }
                  :: origs
                else
                  (* Merging a merged artifact: keep its per-shard origins,
                     re-offset into the new numbering. *)
                  List.fold_left
                    (fun origs o ->
                      {
                        o with
                        o_label = Printf.sprintf "%s/%s" label o.o_label;
                        o_offset = o.o_offset + off;
                      }
                      :: origs)
                    origs a.a_origins
              in
              (off + span a, (off, a) :: acc, origs))
            (0, [], []) inputs
        in
        let shifted = List.rev shifted_rev in
        let concat_map f = List.concat_map (fun (off, a) -> f off a) shifted in
        (* Unique-bug groups: dedup by (kind, site) — the same identity the
           in-session report uses — summing members, unioning read sites,
           keeping the earliest (re-indexed) first sighting. *)
        let bug_tbl : (string * string, bug ref) Hashtbl.t = Hashtbl.create 32 in
        List.iter
          (fun (off, a) ->
            List.iter
              (fun b ->
                let shifted_first = Option.map (fun c -> c + off) b.b_first_campaign in
                match Hashtbl.find_opt bug_tbl (b.b_kind, b.b_site) with
                | None ->
                    Hashtbl.add bug_tbl (b.b_kind, b.b_site)
                      (ref { b with b_first_campaign = shifted_first })
                | Some r ->
                    (* The image index follows the member with the earliest
                       (re-indexed) first sighting — the one replay uses. *)
                    let merged_first, merged_image =
                      match ((!r).b_first_campaign, shifted_first) with
                      | Some x, Some y ->
                          if y < x then (shifted_first, b.b_image_index)
                          else ((!r).b_first_campaign, (!r).b_image_index)
                      | (Some _ as x), None -> (x, (!r).b_image_index)
                      | None, (Some _ as y) -> (y, b.b_image_index)
                      | None, None ->
                          ( None,
                            match (!r).b_image_index with
                            | Some _ as i -> i
                            | None -> b.b_image_index )
                    in
                    r :=
                      {
                        !r with
                        b_members = (!r).b_members + b.b_members;
                        b_read_sites =
                          List.sort_uniq compare ((!r).b_read_sites @ b.b_read_sites);
                        b_first_campaign = merged_first;
                        b_image_index = merged_image;
                      })
              a.a_bugs)
          shifted;
        let bugs =
          Hashtbl.fold (fun _ r acc -> !r :: acc) bug_tbl []
          |> List.sort (fun a b -> compare (a.b_kind, a.b_site) (b.b_kind, b.b_site))
        in
        let hang_tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (_, a) ->
            List.iter
              (fun (info, n) ->
                Hashtbl.replace hang_tbl info
                  (n + Option.value ~default:0 (Hashtbl.find_opt hang_tbl info)))
              a.a_hangs)
          shifted;
        let hangs =
          Hashtbl.fold (fun info n acc -> (info, n) :: acc) hang_tbl [] |> List.sort compare
        in
        (* Mined invariants: same miner over the same target, so dedup by
           (label, kind) keeping the max support seen. *)
        let inv_tbl : (string * string, int) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (_, a) ->
            List.iter
              (fun e ->
                let k = (e.ie_label, e.ie_kind) in
                Hashtbl.replace inv_tbl k
                  (max e.ie_support (Option.value ~default:0 (Hashtbl.find_opt inv_tbl k))))
              a.a_invariants)
          shifted;
        let invariants =
          Hashtbl.fold
            (fun (ie_label, ie_kind) ie_support acc -> { ie_label; ie_kind; ie_support } :: acc)
            inv_tbl []
          |> List.sort compare
        in
        (* Invariant violations are first-sightings per label within a
           shard; across shards keep the earliest, preferring a validated
           verdict when sightings tie. *)
        let ivf_tbl : (string, inv_finding_entry) Hashtbl.t = Hashtbl.create 16 in
        List.iter
          (fun (off, a) ->
            List.iter
              (fun f ->
                let f = { f with ivf_campaign = f.ivf_campaign + off } in
                match Hashtbl.find_opt ivf_tbl f.ivf_label with
                | None -> Hashtbl.add ivf_tbl f.ivf_label f
                | Some g when f.ivf_campaign < g.ivf_campaign ->
                    Hashtbl.replace ivf_tbl f.ivf_label
                      { f with ivf_verdict = (match f.ivf_verdict with Some _ as v -> v | None -> g.ivf_verdict) }
                | Some g when g.ivf_verdict = None && f.ivf_verdict <> None ->
                    Hashtbl.replace ivf_tbl f.ivf_label { g with ivf_verdict = f.ivf_verdict }
                | Some _ -> ())
              a.a_inv_findings)
          shifted;
        let inv_findings =
          Hashtbl.fold (fun _ f acc -> f :: acc) ivf_tbl [] |> List.sort compare
        in
        Ok
          {
            a_target = first.a_target;
            a_config = first.a_config;
            a_campaigns = List.fold_left (fun n (_, a) -> n + a.a_campaigns) 0 shifted;
            a_wall_time = List.fold_left (fun w (_, a) -> w +. a.a_wall_time) 0. shifted;
            a_annotations = List.fold_left (fun n (_, a) -> max n a.a_annotations) 0 shifted;
            a_worker_campaigns = concat_map (fun _ a -> a.a_worker_campaigns);
            (* Raw bitmap counts are per-process (hash layout), so the union
               is not recoverable from the shards; the max is a sound lower
               bound.  The named site-pair union below is exact. *)
            a_alias_bits = List.fold_left (fun n (_, a) -> max n a.a_alias_bits) 0 shifted;
            a_branch_bits = List.fold_left (fun n (_, a) -> max n a.a_branch_bits) 0 shifted;
            a_possible_pairs =
              List.fold_left
                (fun acc (_, a) ->
                  match (acc, a.a_possible_pairs) with
                  | Some x, Some y -> Some (max x y)
                  | (Some _ as x), None | None, x -> x)
                None shifted;
            a_site_pairs =
              List.sort_uniq compare (concat_map (fun _ a -> a.a_site_pairs));
            a_timeline =
              concat_map (fun off a ->
                  List.map
                    (fun (tp : Fuzzer.timeline_point) ->
                      { tp with Fuzzer.tp_campaign = tp.Fuzzer.tp_campaign + off })
                    a.a_timeline)
              |> List.sort (fun (a : Fuzzer.timeline_point) b ->
                     compare a.Fuzzer.tp_campaign b.Fuzzer.tp_campaign);
            a_bugs = bugs;
            a_hangs = hangs;
            a_lint = List.sort_uniq compare (concat_map (fun _ a -> a.a_lint));
            a_invariants = invariants;
            a_inv_findings = inv_findings;
            a_provenance =
              concat_map (fun off a ->
                  List.map (fun p -> { p with pr_campaign = p.pr_campaign + off }) a.a_provenance)
              |> List.sort (fun a b -> compare a.pr_campaign b.pr_campaign);
            a_origins = List.rev origins_rev;
            (* POR counters sum across shards.  Trace dedup is shard-local
               (see Fleet.Worker), so the summed unique count can include
               the same Mazurkiewicz class twice — an upper bound, like
               the raw bitmap counts above are a lower one. *)
            a_por =
              List.fold_left
                (fun acc (_, a) ->
                  match (acc, a.a_por) with
                  | None, x | x, None -> x
                  | Some (m : Hub.por_totals), Some (p : Hub.por_totals) ->
                      Some
                        {
                          Hub.pt_campaigns = m.pt_campaigns + p.pt_campaigns;
                          pt_pruned = m.pt_pruned + p.pt_pruned;
                          pt_forced_wakes = m.pt_forced_wakes + p.pt_forced_wakes;
                          pt_unique_traces = m.pt_unique_traces + p.pt_unique_traces;
                          pt_dup_traces = m.pt_dup_traces + p.pt_dup_traces;
                        })
                None shifted;
            a_metrics = J.Null;
          }
      with Failure msg -> Error msg)

(** Fuzzing inputs: operation sequences distributed over worker threads
    (§4.5).  PM systems are in-memory stores with interactive APIs, so the
    input generator works on structured operations rather than raw bytes. *)

module Rng = Sched.Rng

type op =
  | Put of { key : int; value : int }
  | Get of { key : int }
  | Update of { key : int; value : int }
  | Delete of { key : int }
  | Incr of { key : int; delta : int }
  | Decr of { key : int; delta : int }
  | Append of { key : int; value : int }
  | Prepend of { key : int; value : int }
  | Scan of { key : int; count : int }
  | Cas of { key : int; value : int; token : int }
  | Touch of { key : int; exptime : int }
  | Flush_all
  | Stats

type op_kind =
  | KPut
  | KGet
  | KUpdate
  | KDelete
  | KIncr
  | KDecr
  | KAppend
  | KPrepend
  | KScan
  | KCas
  | KTouch
  | KFlushAll
  | KStats

val kind_of_op : op -> op_kind
val key_of : op -> int

type profile = {
  supported : op_kind list;  (** operations the target's interface accepts *)
  key_range : int;
  value_range : int;
  threads : int;
  ops_per_thread : int;
}

val default_profile : profile

type t
(** A seed: one operation sequence per worker thread. *)

val make : op array array -> t
val gen : Rng.t -> profile -> t
(** Generate a fresh random seed, biased towards reusing nearby keys so
    that threads collide on shared data. *)

val gen_op : Rng.t -> profile -> near:int option -> op

val threads : t -> op array array
val all_ops : t -> op list
val op_count : t -> int
val id : t -> int

val priority : t -> int
(** Static-analysis priority: number of uncovered statically-possible
    alias pairs this seed's executions touch (0 until the fuzzer scores
    it).  Higher-priority seeds are preferred as mutation parents. *)

val set_priority : t -> int -> unit

val fingerprint : t -> int64
(** Stable content hash (64-bit FNV-1a) over the rendered operation
    sequences, with explicit thread/op separators.  Depends only on the
    seed's operations — independent of seed ids and of the process's
    [Instr] site-id layout — so corpus entries deduplicate correctly
    across worker processes and store restarts. *)

val render_op : op -> string
(** Text rendering in the memcached protocol (driver input and the Table 4
    mutator comparison). *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

(** Persistent-mode execution engine (the throughput half of Figure 10).

    One engine per worker domain owns a reusable execution context that is
    {e reset}, not recreated, between campaigns: the pool rewinds via
    {!Pmem.Pool.reset_to_snapshot} (O(touched words), driven by the pool's
    touched-word journal), the environment via {!Runtime.Env.reset}, and
    the target re-annotates.  Pre-bound listeners are installed once at
    engine creation instead of being rebuilt per campaign.

    Targets with [expensive_init = false] get the legacy fresh-environment
    construction behind the same {!checkout} API, exactly as Figure 10
    advises choosing per target.

    A checkout is observationally identical to the legacy per-campaign
    setup (same images, fresh checkers, same eviction-RNG stream, same
    annotation pass), so seeded sessions stay bit-identical in either
    mode. *)

type t

val prepare_snapshot : Target.t -> Pmem.Pool.snapshot
(** Initialise a pool once and capture the in-memory checkpoint reused by
    subsequent campaigns. *)

val create :
  ?capture_images:bool ->
  ?evict_prob:float ->
  ?eadr:bool ->
  ?bound:(Runtime.Env.event -> unit) array ->
  ?snapshot:Pmem.Pool.snapshot ->
  ?use_checkpoint:bool ->
  Target.t ->
  t
(** Build a worker's engine.  [use_checkpoint] defaults to the target's
    [expensive_init]; when true the engine runs in persistent mode — the
    context is created (and the snapshot captured, unless [snapshot] is
    given, e.g. shared across workers) once, then reused.  [bound] is the
    worker's permanent listener array: installed once per context, it
    survives resets and never observes target-initialisation events. *)

val checkout : t -> Runtime.Env.t
(** An environment ready for one campaign: freshly initialised target
    state, fresh checkers, annotations applied, bound listeners installed,
    no transient listeners.  Persistent mode returns the engine's reused
    context (reset in O(touched words)); fresh mode builds a new
    environment.  The environment is only valid until the next
    [checkout]. *)

val por_harness : t -> nthreads:int -> Por.t
(** The engine's reusable POR harness, reset and ready for one campaign
    with at most [nthreads] fibers (created on first use, grown when a
    seed spawns more threads than any before). *)

val persistent : t -> bool
val snapshot : t -> Pmem.Pool.snapshot option
val checkouts : t -> int
(** Total checkouts served. *)

val last_reset_touched : t -> int
(** Words the most recent persistent-mode reset had to undo (0 for fresh
    mode) — the observable behind the O(touched) acceptance test.  Also
    recorded in the [engine_reset_touched_words] histogram. *)

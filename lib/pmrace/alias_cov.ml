(* PM alias pair coverage (§4.2.1).

   A PM access is identified by (instruction id, persistency state, thread
   id).  A *PM alias pair* is two back-to-back accesses to the same address
   by different threads; the pair is hashed into a fixed-size bitmap, like
   AFL's branch bitmap.  New bits are the fuzzer's interleaving-coverage
   feedback. *)

module Rng = Sched.Rng

type access = { a_instr : int; a_dirty : bool; a_tid : int }

type t = {
  bits : Bytes.t;
  size : int; (* bits *)
  mutable count : int; (* set bits *)
  (* Site-level accounting on top of the bitmap: achieved (write site,
     read site) pairs — cross-thread dirty reads — against the
     statically-possible denominator computed by the offline analyzer
     (Analysis.Site_graph). *)
  achieved : (int * int, unit) Hashtbl.t;
  mutable possible : int option;
}

let create ?(size_log = 16) () =
  let size = 1 lsl size_log in
  {
    bits = Bytes.make (size / 8) '\000';
    size;
    count = 0;
    achieved = Hashtbl.create 64;
    possible = None;
  }

let mix h x =
  let h = h lxor (x * 0x9E3779B1) in
  let h = (h lxor (h lsr 15)) * 0x85EBCA77 in
  h lxor (h lsr 13)

let hash_pair prev cur =
  let h = 0x27220A95 in
  let h = mix h prev.a_instr in
  let h = mix h (if prev.a_dirty then 3 else 5) in
  let h = mix h prev.a_tid in
  let h = mix h cur.a_instr in
  let h = mix h (if cur.a_dirty then 3 else 5) in
  mix h cur.a_tid

let set_bit t idx =
  let byte = idx / 8 and bit = idx mod 8 in
  let old = Char.code (Bytes.get t.bits byte) in
  let mask = 1 lsl bit in
  if old land mask = 0 then begin
    Bytes.set t.bits byte (Char.chr (old lor mask));
    t.count <- t.count + 1;
    true
  end
  else false

let observe t ~prev ~cur =
  if prev.a_tid = cur.a_tid then false
  else set_bit t (abs (hash_pair prev cur) mod t.size)

let count t = t.count

(* Fold a worker-local per-campaign delta into a shared map: OR the
   bitmaps (recounting only genuinely new bits) and union the achieved
   site pairs.  The §5 worker pool calls this at campaign boundaries under
   the hub lock, so campaign execution itself never touches shared
   coverage state. *)
let merge_into ~src dst =
  if src.size <> dst.size then invalid_arg "Alias_cov.merge_into: size mismatch";
  let bytes = src.size / 8 in
  for b = 0 to bytes - 1 do
    let s = Char.code (Bytes.get src.bits b) in
    if s <> 0 then begin
      let d = Char.code (Bytes.get dst.bits b) in
      let fresh = s land lnot d in
      if fresh <> 0 then begin
        Bytes.set dst.bits b (Char.chr (d lor s));
        let rec popcount n acc = if n = 0 then acc else popcount (n lsr 1) (acc + (n land 1)) in
        dst.count <- dst.count + popcount fresh 0
      end
    end
  done;
  Hashtbl.iter (fun pair () -> Hashtbl.replace dst.achieved pair ()) src.achieved

let record_site_pair t ~write_instr ~read_instr =
  Hashtbl.replace t.achieved (write_instr, read_instr) ()

let achieved_site_pairs t = Hashtbl.length t.achieved

let site_pairs t =
  Hashtbl.fold (fun (w, r) () acc -> (w, r) :: acc) t.achieved [] |> List.sort compare

let set_possible t n = t.possible <- Some n
let possible t = t.possible

let pp_site_coverage ppf t =
  match t.possible with
  | Some p -> Fmt.pf ppf "%d/%d site pairs" (Hashtbl.length t.achieved) p
  | None -> Fmt.pf ppf "%d site pairs (no static denominator)" (Hashtbl.length t.achieved)

(* Per-execution scratch: the previous accessor of every PM address, plus
   the last *writer* tracked separately so that cross-thread dirty reads
   also register as achieved site pairs against the static denominator.
   The persistent-mode engine keeps one tracker per worker and resets it
   between campaigns instead of allocating fresh closures. *)
type tracker = {
  last : (int, access) Hashtbl.t;
  last_writer : (int, access) Hashtbl.t;
}

let tracker () = { last = Hashtbl.create 256; last_writer = Hashtbl.create 256 }

let reset_tracker tr =
  Hashtbl.reset tr.last;
  Hashtbl.reset tr.last_writer

let handler t tr ev =
  let on_access addr cur =
    (match Hashtbl.find_opt tr.last addr with
    | Some prev -> ignore (observe t ~prev ~cur)
    | None -> ());
    Hashtbl.replace tr.last addr cur
  in
  match ev with
  | Runtime.Env.Ev_load { instr; tid; addr; dirty } ->
      let cur = { a_instr = Runtime.Instr.to_int instr; a_dirty = dirty; a_tid = tid } in
      (if dirty then
         match Hashtbl.find_opt tr.last_writer addr with
         | Some w when w.a_tid <> tid ->
             record_site_pair t ~write_instr:w.a_instr ~read_instr:cur.a_instr
         | Some _ | None -> ());
      on_access addr cur
  | Runtime.Env.Ev_store { instr; tid; addr } | Runtime.Env.Ev_movnt { instr; tid; addr } ->
      let cur = { a_instr = Runtime.Instr.to_int instr; a_dirty = true; a_tid = tid } in
      Hashtbl.replace tr.last_writer addr cur;
      on_access addr cur
  | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ | Runtime.Env.Ev_branch _ -> ()

(* Empty the map itself (bitmap, count, achieved pairs) so a worker-local
   delta can be reused across campaigns. *)
let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0;
  Hashtbl.reset t.achieved;
  t.possible <- None

let attach t env =
  let tr = tracker () in
  Runtime.Env.add_listener env (handler t tr)

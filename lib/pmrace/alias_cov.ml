(* PM alias pair coverage (§4.2.1).

   A PM access is identified by (instruction id, persistency state, thread
   id).  A *PM alias pair* is two back-to-back accesses to the same address
   by different threads; the pair is hashed into a fixed-size bitmap, like
   AFL's branch bitmap.  New bits are the fuzzer's interleaving-coverage
   feedback. *)

module Rng = Sched.Rng

type access = { a_instr : int; a_dirty : bool; a_tid : int }

type t = {
  bits : Bytes.t;
  size : int; (* bits *)
  mutable count : int; (* set bits *)
  (* Site-level accounting on top of the bitmap: achieved (write site,
     read site) pairs — cross-thread dirty reads — against the
     statically-possible denominator computed by the offline analyzer
     (Analysis.Site_graph). *)
  achieved : (int * int, unit) Hashtbl.t;
  mutable possible : int option;
}

let create ?(size_log = 16) () =
  let size = 1 lsl size_log in
  {
    bits = Bytes.make (size / 8) '\000';
    size;
    count = 0;
    achieved = Hashtbl.create 64;
    possible = None;
  }

let mix h x =
  let h = h lxor (x * 0x9E3779B1) in
  let h = (h lxor (h lsr 15)) * 0x85EBCA77 in
  h lxor (h lsr 13)

let hash_pair prev cur =
  let h = 0x27220A95 in
  let h = mix h prev.a_instr in
  let h = mix h (if prev.a_dirty then 3 else 5) in
  let h = mix h prev.a_tid in
  let h = mix h cur.a_instr in
  let h = mix h (if cur.a_dirty then 3 else 5) in
  mix h cur.a_tid

let set_bit t idx =
  let byte = idx / 8 and bit = idx mod 8 in
  let old = Char.code (Bytes.get t.bits byte) in
  let mask = 1 lsl bit in
  if old land mask = 0 then begin
    Bytes.set t.bits byte (Char.chr (old lor mask));
    t.count <- t.count + 1;
    true
  end
  else false

let observe t ~prev ~cur =
  if prev.a_tid = cur.a_tid then false
  else set_bit t (abs (hash_pair prev cur) mod t.size)

let count t = t.count

(* Fold a worker-local per-campaign delta into a shared map: OR the
   bitmaps (recounting only genuinely new bits) and union the achieved
   site pairs.  The §5 worker pool calls this at campaign boundaries under
   the hub lock, so campaign execution itself never touches shared
   coverage state. *)
let merge_into ~src dst =
  if src.size <> dst.size then invalid_arg "Alias_cov.merge_into: size mismatch";
  let bytes = src.size / 8 in
  for b = 0 to bytes - 1 do
    let s = Char.code (Bytes.get src.bits b) in
    if s <> 0 then begin
      let d = Char.code (Bytes.get dst.bits b) in
      let fresh = s land lnot d in
      if fresh <> 0 then begin
        Bytes.set dst.bits b (Char.chr (d lor s));
        let rec popcount n acc = if n = 0 then acc else popcount (n lsr 1) (acc + (n land 1)) in
        dst.count <- dst.count + popcount fresh 0
      end
    end
  done;
  Hashtbl.iter (fun pair () -> Hashtbl.replace dst.achieved pair ()) src.achieved

let record_site_pair t ~write_instr ~read_instr =
  Hashtbl.replace t.achieved (write_instr, read_instr) ()

let achieved_site_pairs t = Hashtbl.length t.achieved

let site_pairs t =
  Hashtbl.fold (fun (w, r) () acc -> (w, r) :: acc) t.achieved [] |> List.sort compare

let set_possible t n = t.possible <- Some n
let possible t = t.possible

let pp_site_coverage ppf t =
  match t.possible with
  | Some p -> Fmt.pf ppf "%d/%d site pairs" (Hashtbl.length t.achieved) p
  | None -> Fmt.pf ppf "%d site pairs (no static denominator)" (Hashtbl.length t.achieved)

(* Per-execution scratch: the previous accessor of every PM address, plus
   the last *writer* tracked separately so that cross-thread dirty reads
   also register as achieved site pairs against the static denominator.
   The persistent-mode engine keeps one tracker per worker and resets it
   between campaigns instead of allocating fresh closures. *)
type tracker = {
  last : (int, access) Hashtbl.t;
  last_writer : (int, access) Hashtbl.t;
}

let tracker () = { last = Hashtbl.create 256; last_writer = Hashtbl.create 256 }

let reset_tracker tr =
  Hashtbl.reset tr.last;
  Hashtbl.reset tr.last_writer

let handler t tr ev =
  let on_access addr cur =
    (match Hashtbl.find_opt tr.last addr with
    | Some prev -> ignore (observe t ~prev ~cur)
    | None -> ());
    Hashtbl.replace tr.last addr cur
  in
  match ev with
  | Runtime.Env.Ev_load { instr; tid; addr; dirty } ->
      let cur = { a_instr = Runtime.Instr.to_int instr; a_dirty = dirty; a_tid = tid } in
      (if dirty then
         match Hashtbl.find_opt tr.last_writer addr with
         | Some w when w.a_tid <> tid ->
             record_site_pair t ~write_instr:w.a_instr ~read_instr:cur.a_instr
         | Some _ | None -> ());
      on_access addr cur
  | Runtime.Env.Ev_store { instr; tid; addr } | Runtime.Env.Ev_movnt { instr; tid; addr } ->
      let cur = { a_instr = Runtime.Instr.to_int instr; a_dirty = true; a_tid = tid } in
      Hashtbl.replace tr.last_writer addr cur;
      on_access addr cur
  | Runtime.Env.Ev_clwb _ | Runtime.Env.Ev_fence _ | Runtime.Env.Ev_branch _ -> ()

(* Empty the map itself (bitmap, count, achieved pairs) so a worker-local
   delta can be reused across campaigns. *)
let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0;
  Hashtbl.reset t.achieved;
  t.possible <- None

let attach t env =
  let tr = tracker () in
  Runtime.Env.add_listener env (handler t tr)

(* ------------------------------------------------------------------ *)
(* Wire/store codec (fleet mode).  Site pairs travel by *name* and are
   re-registered on decode, so they are valid across processes with
   different site-id layouts.  The raw bitmap is also carried (hex): it
   only or-merges meaningfully between processes running the same binary,
   but even a layout-shifted bitmap stays a sound coverage estimate (the
   count can only be approximate, exactly as within one AFL fleet). *)

module J = Obs.Json

let hex_of_bytes b =
  let n = Bytes.length b in
  let out = Buffer.create (2 * n) in
  for i = 0 to n - 1 do
    Buffer.add_string out (Printf.sprintf "%02x" (Char.code (Bytes.get b i)))
  done;
  Buffer.contents out

let bytes_of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then invalid_arg "Alias_cov: odd hex length";
  let b = Bytes.create (n / 2) in
  for i = 0 to (n / 2) - 1 do
    Bytes.set b i (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
  done;
  b

let to_json t =
  J.Obj
    [
      ("size", J.Int t.size);
      ("bits", J.String (hex_of_bytes t.bits));
      ( "site_pairs",
        J.List
          (List.map
             (fun (w, r) ->
               J.Obj
                 [
                   ("write", J.String (Runtime.Instr.name (Runtime.Instr.of_int w)));
                   ("read", J.String (Runtime.Instr.name (Runtime.Instr.of_int r)));
                 ])
             (site_pairs t)) );
    ]

let of_json j =
  match (J.member "size" j, J.member "bits" j, J.member "site_pairs" j) with
  | Some size_j, Some bits_j, Some pairs_j -> (
      match (J.to_int size_j, J.to_str bits_j, J.to_list pairs_j) with
      | Some size, Some hex, Some pairs when size > 0 && size land (size - 1) = 0 -> (
          try
            let bits = bytes_of_hex hex in
            if Bytes.length bits <> size / 8 then Error "Alias_cov: bitmap length mismatch"
            else begin
              let size_log =
                let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
                log2 size 0
              in
              let t = create ~size_log () in
              Bytes.blit bits 0 t.bits 0 (Bytes.length bits);
              let count = ref 0 in
              Bytes.iter
                (fun c ->
                  let rec pop n acc = if n = 0 then acc else pop (n lsr 1) (acc + (n land 1)) in
                  count := !count + pop (Char.code c) 0)
                t.bits;
              t.count <- !count;
              List.iter
                (fun p ->
                  match (J.member "write" p, J.member "read" p) with
                  | Some w, Some r -> (
                      match (J.to_str w, J.to_str r) with
                      | Some w, Some r ->
                          record_site_pair t
                            ~write_instr:(Runtime.Instr.to_int (Runtime.Instr.site w))
                            ~read_instr:(Runtime.Instr.to_int (Runtime.Instr.site r))
                      | _ -> failwith "Alias_cov: site pair expects strings")
                  | _ -> failwith "Alias_cov: site pair missing field")
                pairs;
              Ok t
            end
          with Failure msg | Invalid_argument msg -> Error msg)
      | _ -> Error "Alias_cov: bad size/bits/site_pairs")
  | _ -> Error "Alias_cov: missing field"

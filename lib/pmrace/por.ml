(* Partial-order-reduction glue: the bridge between the runtime's
   footprints and the scheduler's int-typed POR hooks.

   One harness per campaign (reusable across campaigns via [reset]; the
   persistent-mode Engine holds one).  It wraps the campaign's policy so
   that every preemption point records

   - the *pending* footprint of the op a fiber is about to execute
     (recorded in [before], ahead of the policy's yield — the scheduler
     consults it to decide who sleeps), and
   - the *executed* footprint of the op(s) a scheduler step completed
     (recorded in [after]; two or more ops in one step — possible under
     No_preempt, whose policy never yields — escalate to
     [Footprint.opaque], which commutes with nothing).

   It also folds every executed op into a canonical Mazurkiewicz-trace
   hash: each op's Foata layer (1 + the highest layer it depends on) is
   invariant under commuting-swap reorderings of the schedule, so XORing
   a mix of (footprint, layer, tid, per-fiber sequence number) over all
   ops yields the same digest for every schedule in the same trace
   class, independent of execution order.  The fuzzer dedupes campaigns
   by this digest before spending post-failure validation.

   Hot-path design (the --por perf pass): digesting runs once per
   scheduler step, so it must cost like the scheduler's own step, not
   like a hashtable workload.

   - The Foata-layer maps are two flat generation-stamped
     open-addressing tables sized from the pool at harness creation: a
     word table packing (write layer, read layer) into one int and a
     line table packing (flush layer, access layer).  An op claims its
     word and line slots once, reads both packed halves for its floor,
     and max-merges its bumps in place — two probes per op where the
     old four-Hashtbl layout paid four to six.  A probe is one array
     read (keys are dense word/line indices, so [key land mask] rarely
     collides); resetting between campaigns is a generation bump, like
     the pool's pending-word index — no [Hashtbl.reset], no boxing, no
     rehash.
   - The digest accumulates in a native [int] with a splitmix-style
     finalizer: zero allocation per op, where the old [Int64] mixer
     boxed every intermediate.  [trace_hash] converts at the boundary.
   - A per-fiber frontier-clock fast path: when the stepping fiber
     already owns the highest layer ([fiber_layer = max_layer]), every
     table value is <= its own clock, so the op's layer is
     [fiber_layer + 1] without probing any table, and the bumps become
     unconditional overwrites.
   - Digesting can be short-circuited entirely ([set_digest false]) when
     no consumer is registered — replay re-runs a POR campaign for its
     schedule only, so it skips the layer/hash work while keeping the
     pending/executed bookkeeping the sleep sets need. *)

module Footprint = Runtime.Footprint

(* Flat generation-stamped open-addressing int->int tables.  A slot is
   live iff its stamp equals the current generation, so [reset] is a
   generation bump; stale slots are overwritten on claim.  Keys are pool
   word/line indices — dense and bounded — so the initial capacity (2x
   the pool) makes probes effectively direct-indexed; arbitrary keys
   (synthetic tests) still work via linear probing and growth.  [claim]
   returns the slot index, so the caller reads the current value and
   writes the merged one back without a second probe. *)
module Ftbl = struct
  type t = {
    mutable keys : int array;
    mutable vals : int array;
    mutable stamps : int array;
    mutable mask : int; (* capacity - 1; capacity is a power of two *)
    mutable live : int; (* slots stamped with the current generation *)
    mutable gen : int;
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create hint =
    let cap = pow2 (max 16 hint) 16 in
    {
      keys = Array.make cap 0;
      vals = Array.make cap 0;
      stamps = Array.make cap 0;
      mask = cap - 1;
      live = 0;
      gen = 1;
    }

  let reset t =
    t.gen <- t.gen + 1;
    t.live <- 0

  (* First slot that is free (stale stamp) or holds [k] this generation.
     Keys are dense pool indices against a 2x-pool capacity, so the first
     probe nearly always hits; unsafe reads keep the common case at two
     loads (indices are masked, so they are in bounds by construction). *)
  let rec probe t k i =
    if Array.unsafe_get t.stamps i <> t.gen || Array.unsafe_get t.keys i = k then i
    else probe t k ((i + 1) land t.mask)

  let grow t =
    let keys = t.keys and vals = t.vals and stamps = t.stamps and gen = t.gen in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap 0;
    t.vals <- Array.make cap 0;
    t.stamps <- Array.make cap 0;
    t.mask <- cap - 1;
    Array.iteri
      (fun i s ->
        if s = gen then begin
          let j = probe t keys.(i) (keys.(i) land t.mask) in
          t.keys.(j) <- keys.(i);
          t.vals.(j) <- vals.(i);
          t.stamps.(j) <- gen
        end)
      stamps

  (* The slot for [k] this generation, claiming (value 0) a free one if
     absent.  Growth invalidates indices, so claim re-probes after it. *)
  let rec claim t k =
    let i = probe t k (k land t.mask) in
    if t.stamps.(i) = t.gen then i
    else begin
      t.keys.(i) <- k;
      t.vals.(i) <- 0;
      t.stamps.(i) <- t.gen;
      t.live <- t.live + 1;
      if 2 * t.live > t.mask then begin
        grow t;
        claim t k
      end
      else i
    end
end

type t = {
  nthreads : int;
  pending : int array; (* tid -> footprint of the fiber's next op, 0 = unknown *)
  step_fp : int array;
      (* one shared cell: footprint of the current step, handed to the
         scheduler by reference ({!Sched.Scheduler.por.step_fp}) so a
         step that ran nothing instrumented needs no call to say so *)
  (* Foata layering state.  Two packed tables: per word,
     (write layer lsl 31) lor read layer; per line,
     (flush layer lsl 31) lor access layer.  Layers are bounded by the
     step budget, far below 2^31. *)
  word_layers : Ftbl.t;
  line_layers : Ftbl.t;
  mutable fence_layer : int;
  mutable max_layer : int;
  fiber_layer : int array; (* tid -> layer of the fiber's latest op *)
  fiber_seq : int array; (* tid -> ops executed by the fiber so far *)
  mutable hash : int;
  mutable ops : int;
  mutable digest : bool; (* false = no consumer; skip the layer/hash work *)
}

let create ?(pool_words = 1024) ~nthreads () =
  let n = max 1 nthreads in
  let words = max 64 pool_words in
  {
    nthreads = n;
    pending = Array.make n 0;
    step_fp = [| 0 |];
    word_layers = Ftbl.create (2 * words);
    line_layers = Ftbl.create (2 * words / Pmem.Cacheline.words_per_line);
    fence_layer = 0;
    max_layer = 0;
    fiber_layer = Array.make n 0;
    fiber_seq = Array.make n 0;
    hash = 0;
    ops = 0;
    digest = true;
  }

let reset t =
  Array.fill t.pending 0 t.nthreads 0;
  t.step_fp.(0) <- 0;
  Ftbl.reset t.word_layers;
  Ftbl.reset t.line_layers;
  t.fence_layer <- 0;
  t.max_layer <- 0;
  Array.fill t.fiber_layer 0 t.nthreads 0;
  Array.fill t.fiber_seq 0 t.nthreads 0;
  t.hash <- 0;
  t.ops <- 0;
  t.digest <- true

let set_digest t on = t.digest <- on

(* splitmix-style finalizer over the native int — allocation-free, unlike
   boxed Int64 arithmetic.  Constants are 62-bit odd multipliers; the
   avalanche only needs to spread dedup keys, not be cryptographic. *)
let[@inline] mix x =
  let x = x lxor (x lsr 30) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 27) in
  let x = x * 0x61C8864680B583EB in
  x lxor (x lsr 31)

(* Packed-layer split: low 31 bits hold the read (word table) / access
   (line table) layer, the bits above hold the write / flush layer. *)
let lshift = 31
let lmask = (1 lsl lshift) - 1

(* Fold one executed op into the Foata layering and the trace digest.
   Bumps are max-merges and floors are maxes over key (and packed-half)
   sets disjoint from them for any independent pair, so the resulting
   layers — and the XOR of the per-op mixes — are invariant under
   commuting-swap reorderings (pinned by the trace-hash QCheck
   property).  Each op claims its word and line slots once and updates
   them in place: two table probes per op.  The frontier-clock fast
   path skips the floor reads (not the bumps): when the stepping fiber
   already owns the highest layer, no table value nor the fence layer
   can exceed its own clock, so the op stacks directly on it. *)
let digest_op t tid fp =
  let tag = fp land 7 in
  let fiber = t.fiber_layer.(tid) in
  let frontier = fiber >= t.max_layer in
  let layer =
    if tag >= 1 && tag <= 3 then begin
      (* Word-level op: floor = write layer (plus read layer for
         writers), the line's flush layer, and the fence layer. *)
      let wi = Ftbl.claim t.word_layers (fp lsr 3) in
      let li = Ftbl.claim t.line_layers (Footprint.line fp) in
      (* Slot indices come masked out of [claim]; read the arrays after
         both claims (growth swaps them out). *)
      let wvals = t.word_layers.Ftbl.vals and lvals = t.line_layers.Ftbl.vals in
      let wv = Array.unsafe_get wvals wi in
      let lv = Array.unsafe_get lvals li in
      let layer =
        if frontier then 1 + fiber
        else
          let floor =
            if tag = 1 then max (wv lsr lshift) (max (lv lsr lshift) t.fence_layer)
            else max (max (wv lsr lshift) (wv land lmask)) (max (lv lsr lshift) t.fence_layer)
          in
          1 + max floor fiber
      in
      let wv' =
        if tag = 1 then ((wv lsr lshift) lsl lshift) lor max (wv land lmask) layer
        else if tag = 2 then (max (wv lsr lshift) layer lsl lshift) lor (wv land lmask)
        else (max (wv lsr lshift) layer lsl lshift) lor max (wv land lmask) layer
      in
      Array.unsafe_set wvals wi wv';
      (* Any word-level op raises the line's access layer. *)
      Array.unsafe_set lvals li (((lv lsr lshift) lsl lshift) lor max (lv land lmask) layer);
      layer
    end
    else if tag = 4 then begin
      let li = Ftbl.claim t.line_layers (fp lsr 3) in
      let lvals = t.line_layers.Ftbl.vals in
      let lv = Array.unsafe_get lvals li in
      let layer =
        if frontier then 1 + fiber
        else 1 + max (max (lv land lmask) (max (lv lsr lshift) t.fence_layer)) fiber
      in
      Array.unsafe_set lvals li ((max (lv lsr lshift) layer lsl lshift) lor (lv land lmask));
      layer
    end
    else begin
      (* Fence / opaque (and none): above everything so far. *)
      let layer = 1 + if frontier then fiber else max t.max_layer fiber in
      t.fence_layer <- layer;
      layer
    end
  in
  if layer > t.max_layer then t.max_layer <- layer;
  t.fiber_layer.(tid) <- layer;
  let seq = t.fiber_seq.(tid) + 1 in
  t.fiber_seq.(tid) <- seq;
  (* One avalanche round over the op's identity (footprint, layer,
     per-fiber sequence number, tid) is enough spread for an XOR-folded
     dedup key; a second round buys nothing but latency on the hot path. *)
  let h = mix (fp lxor (layer lsl 40) lxor (seq lsl 22) lxor tid) in
  t.hash <- t.hash lxor h;
  t.ops <- t.ops + 1

(* Fold one executed op into the step accumulator and the trace hash.
   The first op of a step sets the cell; a second op in the same step
   (possible under No_preempt, whose policy never yields) escalates it
   to [opaque], which commutes with nothing. *)
let record t tid fp =
  let cell = t.step_fp in
  let prev = Array.unsafe_get cell 0 in
  Array.unsafe_set cell 0 (if prev = 0 then fp else Footprint.opaque);
  if t.digest && tid >= 0 && tid < t.nthreads then digest_op t tid fp

let record_op = record

(* Wrap a campaign policy with footprint recording.  Ordering matters:
   [before] records the pending footprint ahead of the base hook (whose
   yield suspends the fiber — the scheduler must see the footprint while
   the fiber sleeps), and [after] attributes the executed op to the
   current step ahead of the base hook (sync policies yield in [after]
   too, which would otherwise smear the op into the next step). *)
let wrap t (base : Runtime.Env.policy) : Runtime.Env.policy =
  {
    before =
      (fun ctx point ->
        if ctx.tid >= 0 && ctx.tid < t.nthreads then
          t.pending.(ctx.tid) <- Footprint.of_point point;
        base.before ctx point);
    after =
      (fun ctx point ->
        (* [before] already encoded this op's footprint into the pending
           slot; reuse it rather than re-encoding the point.  Only this
           fiber writes its own slot, so the value is still this op's. *)
        let tid = ctx.tid in
        if tid >= 0 && tid < t.nthreads then begin
          let fp = t.pending.(tid) in
          let fp = if fp <> 0 then fp else Footprint.of_point point in
          record t tid fp;
          t.pending.(tid) <- 0
        end
        else record t tid (Footprint.of_point point);
        base.after ctx point);
  }

let hooks t : Sched.Scheduler.por =
  {
    pending = t.pending;
    step_fp = t.step_fp;
    independent = Footprint.independent;
    spin = Footprint.spin_retry;
  }

let trace_hash t = Int64.of_int t.hash
let ops t = t.ops
let capacity t = t.nthreads

type stats = {
  s_trace_hash : int64;  (** canonical Mazurkiewicz-trace digest *)
  s_ops : int;  (** instrumented ops folded into the digest *)
  s_layers : int;  (** Foata height — the critical-path length of the trace *)
  s_pruned_picks : int;
  s_forced_wakes : int;
}

let stats t (ss : Sched.Scheduler.por_stats) =
  {
    s_trace_hash = Int64.of_int t.hash;
    s_ops = t.ops;
    s_layers = t.max_layer;
    s_pruned_picks = ss.pruned_picks;
    s_forced_wakes = ss.forced_wakes;
  }

(* Partial-order-reduction glue: the bridge between the runtime's
   footprints and the scheduler's int-typed POR hooks.

   One harness per campaign (reusable across campaigns via [reset]; the
   persistent-mode Engine holds one).  It wraps the campaign's policy so
   that every preemption point records

   - the *pending* footprint of the op a fiber is about to execute
     (recorded in [before], ahead of the policy's yield — the scheduler
     consults it to decide who sleeps), and
   - the *executed* footprint of the op(s) a scheduler step completed
     (recorded in [after]; two or more ops in one step — possible under
     No_preempt, whose policy never yields — escalate to
     [Footprint.opaque], which commutes with nothing).

   It also folds every executed op into a canonical Mazurkiewicz-trace
   hash: each op's Foata layer (1 + the highest layer it depends on) is
   invariant under commuting-swap reorderings of the schedule, so XORing
   a mix of (footprint, layer, tid, per-fiber sequence number) over all
   ops yields the same 64-bit digest for every schedule in the same
   trace class, independent of execution order.  The fuzzer dedupes
   campaigns by this digest before spending post-failure validation. *)

module Footprint = Runtime.Footprint

type t = {
  nthreads : int;
  pending : int array; (* tid -> footprint of the fiber's next op, 0 = unknown *)
  mutable step_fp : int; (* accumulator: footprint of the current step *)
  mutable step_ops : int;
  (* Foata layering state: per-word / per-line highest layer seen. *)
  word_write : (int, int) Hashtbl.t;
  word_read : (int, int) Hashtbl.t;
  line_flush : (int, int) Hashtbl.t;
  line_access : (int, int) Hashtbl.t;
  mutable fence_layer : int;
  mutable max_layer : int;
  fiber_layer : int array; (* tid -> layer of the fiber's latest op *)
  fiber_seq : int array; (* tid -> ops executed by the fiber so far *)
  mutable hash : int64;
  mutable ops : int;
}

let create ~nthreads =
  let n = max 1 nthreads in
  {
    nthreads = n;
    pending = Array.make n 0;
    step_fp = 0;
    step_ops = 0;
    word_write = Hashtbl.create 256;
    word_read = Hashtbl.create 256;
    line_flush = Hashtbl.create 64;
    line_access = Hashtbl.create 64;
    fence_layer = 0;
    max_layer = 0;
    fiber_layer = Array.make n 0;
    fiber_seq = Array.make n 0;
    hash = 0L;
    ops = 0;
  }

let reset t =
  Array.fill t.pending 0 t.nthreads 0;
  t.step_fp <- 0;
  t.step_ops <- 0;
  Hashtbl.reset t.word_write;
  Hashtbl.reset t.word_read;
  Hashtbl.reset t.line_flush;
  Hashtbl.reset t.line_access;
  t.fence_layer <- 0;
  t.max_layer <- 0;
  Array.fill t.fiber_layer 0 t.nthreads 0;
  Array.fill t.fiber_seq 0 t.nthreads 0;
  t.hash <- 0L;
  t.ops <- 0

(* splitmix64 finalizer — the usual strong 64-bit avalanche. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let get tbl k = match Hashtbl.find_opt tbl k with Some v -> v | None -> 0
let bump tbl k layer = if get tbl k < layer then Hashtbl.replace tbl k layer

(* Fold one executed op into the step accumulator and the trace hash. *)
let record t tid fp =
  t.step_ops <- t.step_ops + 1;
  t.step_fp <- (if t.step_ops = 1 then fp else Footprint.opaque);
  if tid >= 0 && tid < t.nthreads then begin
    let tag = Footprint.tag fp in
    (* The highest layer this op depends on (its Foata floor). *)
    let floor =
      if tag = 1 then
        let w = Footprint.payload fp in
        max (get t.word_write w) (max (get t.line_flush (Footprint.line fp)) t.fence_layer)
      else if tag = 2 || tag = 3 then
        let w = Footprint.payload fp in
        max
          (max (get t.word_write w) (get t.word_read w))
          (max (get t.line_flush (Footprint.line fp)) t.fence_layer)
      else if tag = 4 then
        let l = Footprint.payload fp in
        max (get t.line_access l) (max (get t.line_flush l) t.fence_layer)
      else t.max_layer (* fence / opaque: above everything so far *)
    in
    let layer = 1 + max floor t.fiber_layer.(tid) in
    (if tag = 1 then begin
       bump t.word_read (Footprint.payload fp) layer;
       bump t.line_access (Footprint.line fp) layer
     end
     else if tag = 2 || tag = 3 then begin
       let w = Footprint.payload fp in
       bump t.word_write w layer;
       if tag = 3 then bump t.word_read w layer;
       bump t.line_access (Footprint.line fp) layer
     end
     else if tag = 4 then bump t.line_flush (Footprint.payload fp) layer
     else t.fence_layer <- layer);
    if layer > t.max_layer then t.max_layer <- layer;
    t.fiber_layer.(tid) <- layer;
    t.fiber_seq.(tid) <- t.fiber_seq.(tid) + 1;
    let h =
      mix64 (Int64.logxor (Int64.of_int fp) (Int64.shift_left (Int64.of_int layer) 32))
    in
    let h =
      mix64
        (Int64.logxor h
           (Int64.logxor
              (Int64.of_int t.fiber_seq.(tid))
              (Int64.shift_left (Int64.of_int tid) 32)))
    in
    t.hash <- Int64.logxor t.hash h;
    t.ops <- t.ops + 1
  end

(* Wrap a campaign policy with footprint recording.  Ordering matters:
   [before] records the pending footprint ahead of the base hook (whose
   yield suspends the fiber — the scheduler must see the footprint while
   the fiber sleeps), and [after] attributes the executed op to the
   current step ahead of the base hook (sync policies yield in [after]
   too, which would otherwise smear the op into the next step). *)
let wrap t (base : Runtime.Env.policy) : Runtime.Env.policy =
  {
    before =
      (fun ctx point ->
        if ctx.tid >= 0 && ctx.tid < t.nthreads then
          t.pending.(ctx.tid) <- Footprint.of_point point;
        base.before ctx point);
    after =
      (fun ctx point ->
        record t ctx.tid (Footprint.of_point point);
        if ctx.tid >= 0 && ctx.tid < t.nthreads then t.pending.(ctx.tid) <- 0;
        base.after ctx point);
  }

let hooks t : Sched.Scheduler.por =
  {
    pending = (fun tid -> if tid >= 0 && tid < t.nthreads then t.pending.(tid) else 0);
    take_step =
      (fun () ->
        let fp = t.step_fp in
        t.step_fp <- 0;
        t.step_ops <- 0;
        fp);
    independent = Footprint.independent;
  }

let trace_hash t = t.hash
let ops t = t.ops
let capacity t = t.nthreads

type stats = {
  s_trace_hash : int64;  (** canonical Mazurkiewicz-trace digest *)
  s_ops : int;  (** instrumented ops folded into the digest *)
  s_layers : int;  (** Foata height — the critical-path length of the trace *)
  s_pruned_picks : int;
  s_forced_wakes : int;
}

let stats t (ss : Sched.Scheduler.por_stats) =
  {
    s_trace_hash = t.hash;
    s_ops = t.ops;
    s_layers = t.max_layer;
    s_pruned_picks = ss.pruned_picks;
    s_forced_wakes = ss.forced_wakes;
  }

(* Additional PM checkers built on PMRace's framework — the two examples
   §4.3 sketches to show extensibility:

   - Redundant persistency operations: a CLWB whose target line holds no
     dirty words persists nothing (the data is already PM_CLEAN), and an
     SFENCE with no flush or non-temporal store since the previous fence
     drains an empty write-back queue.  Chronic redundant persistency
     operations are a PM performance bug.
   - Missing flushes: PM words still dirty when an execution ends were
     modified but never persisted; grouped by the writing site, these are
     the classic sequential crash-consistency bug the PM-specific linters
     (PMDebugger's rules, AGAMOTTO's universal bugs) look for.

   Both are listeners over the same event stream the coverage metrics
   consume; neither requires touching the runtime. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type t = {
  redundant : (Instr.t, int) Hashtbl.t; (* flush site -> redundant flushes *)
  redundant_fence : (Instr.t, int) Hashtbl.t; (* fence site -> redundant fences *)
  mutable flushes : int;
  mutable redundant_total : int;
  mutable fences : int;
  mutable redundant_fence_total : int;
  mutable flush_since_fence : bool;
}

let create () =
  {
    redundant = Hashtbl.create 16;
    redundant_fence = Hashtbl.create 16;
    flushes = 0;
    redundant_total = 0;
    fences = 0;
    redundant_fence_total = 0;
    flush_since_fence = false;
  }

let bump tbl site = Hashtbl.replace tbl site (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site))

let attach t env =
  Env.add_listener env (function
    | Env.Ev_clwb { instr; dirty_words; _ } ->
        t.flushes <- t.flushes + 1;
        t.flush_since_fence <- true;
        if dirty_words = 0 then begin
          t.redundant_total <- t.redundant_total + 1;
          bump t.redundant instr
        end
    | Env.Ev_movnt _ -> t.flush_since_fence <- true
    | Env.Ev_fence { instr; persisted; _ } ->
        t.fences <- t.fences + 1;
        if (not t.flush_since_fence) && persisted = [] then begin
          t.redundant_fence_total <- t.redundant_fence_total + 1;
          bump t.redundant_fence instr
        end;
        t.flush_since_fence <- false
    | Env.Ev_load _ | Env.Ev_store _ | Env.Ev_branch _ -> ())

let flushes t = t.flushes
let redundant_total t = t.redundant_total
let fences t = t.fences
let redundant_fence_total t = t.redundant_fence_total

let sites tbl =
  Hashtbl.fold (fun i n acc -> (Instr.name i, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let redundant_sites t = sites t.redundant
let redundant_fence_sites t = sites t.redundant_fence

(* Missing flushes: PM words left dirty when the execution ended, grouped
   by the site that wrote them.  Run at the end of a campaign. *)
let unflushed_at_exit (env : Env.t) =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun w ->
      match Pmem.Pool.dirty_writer env.pool w with
      | Some wr ->
          let site = Instr.name (Instr.of_int wr.Pmem.Pool.instr) in
          Hashtbl.replace tbl site (1 + Option.value ~default:0 (Hashtbl.find_opt tbl site))
      | None -> ())
    (Pmem.Pool.dirty_words env.pool);
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let pp ppf t =
  Fmt.pf ppf "flushes=%d redundant=%d (%a) fences=%d redundant=%d (%a)" t.flushes t.redundant_total
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    (redundant_sites t) t.fences t.redundant_fence_total
    Fmt.(list ~sep:comma (pair ~sep:(any ":") string int))
    (redundant_fence_sites t)

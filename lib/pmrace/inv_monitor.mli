(** Online invariant-violation monitor: the fuzzer-side consumer of the
    mined {!Analysis.Invariants} specs.

    One monitor per worker.  {!attach} is passed as a campaign listener;
    it resets the checker's per-execution state and steps it on every
    instrumented event.  The first violation of each invariant (per
    worker) captures the durable pool image at the violating store, so
    the hit can be routed through {!Post_failure.validate} (as a
    {!Post_failure.Candidate.Ordering}) like any other candidate. *)

type hit = {
  h_inv : Analysis.Invariants.inv;
  h_label : string;  (** stable identity, the cross-worker dedup key *)
  h_site : Runtime.Instr.t;  (** the violating store's site *)
  h_addr : int;
  h_words : int list;  (** still-pending source words at the violation *)
  h_image : Pmem.Pool.image option;  (** base durable image at the violation *)
  h_crash : Pmem.Crash_images.state option;
      (** full crash surface at the violation, for enumeration; [h_image]
          is always [Option.map Pmem.Crash_images.base h_crash] *)
}

type t

val create : Analysis.Invariants.spec list -> t

val attach : t -> Runtime.Env.t -> unit
(** Campaign listener: reset the checker and subscribe to the
    environment's event stream. *)

val drain : t -> hit list
(** New hits since the last drain, in discovery order. *)

(* The fleet worker: Fuzzer.worker_loop bound to a coordinator.

   All fuzzing state is local — a private Hub with an unbounded budget
   holds the worker's own coverage, report and provenance, exactly as an
   in-process session would.  The fleet shows up only in the sink
   wrapper: reserve is gated on the current lease (shipping the
   accumulated wire delta and requesting the next lease at the
   boundary), and commit additionally folds the campaign delta into the
   wire delta and notes which seed earned new alias pairs, so the
   coordinator's corpus learns provenance-for-free.

   Socket loss is deliberately non-fatal: the worker stops fuzzing (its
   lease died with the link) but still assembles and returns its local
   session, so a shard artifact survives a coordinator crash. *)

module Fuzzer = Pmrace.Fuzzer
module Hub = Pmrace.Hub
module Seed = Pmrace.Seed
module Report = Pmrace.Report
module Artifact = Pmrace.Artifact

type config = {
  connect : string;
  cfg : Fuzzer.config;
  max_local : int option;
  lease_campaigns : int;
  lease_seeds : int;
  log : string -> unit;
}

let default_config =
  {
    connect = "";
    cfg = Fuzzer.default_config;
    max_local = None;
    lease_campaigns = 30;
    lease_seeds = 4;
    log = (fun _ -> ());
  }

type outcome = { o_session : Fuzzer.session; o_widx : int; o_campaigns : int }

exception Fail of string

let m_lease_latency = lazy (Obs.Metrics.histogram "fleet_lease_latency_seconds")

let site_name id = Runtime.Instr.name (Runtime.Instr.of_int id)

let kind_string = function `Inter -> "inter" | `Intra -> "intra" | `Sync -> "sync"

(* One request/response exchange.  The wire is strictly half-duplex from
   the worker's side (it never has two requests in flight), so a plain
   blocking recv after send is the whole client state machine. *)
let rpc fd (msg : Wire.client_msg) : Wire.server_msg =
  (try Wire.send fd (Wire.client_to_json msg)
   with Unix.Unix_error (e, _, _) -> raise (Fail (Unix.error_message e)));
  match Wire.recv fd with
  | Error e -> raise (Fail e)
  | Ok j -> (
      match Wire.server_of_json j with
      | Error e -> raise (Fail e)
      | Ok (Wire.Err e) -> raise (Fail e)
      | Ok reply -> reply)

let run ?obs wcfg target =
  Wire.ignore_sigpipe ();
  let cfg = { wcfg.cfg with Fuzzer.workers = 1; max_campaigns = max_int } in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX wcfg.connect) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "fleet: cannot connect to %s: %s" wcfg.connect (Unix.error_message e))
  | () -> (
      match
        rpc fd (Wire.Hello { target = target.Pmrace.Target.name; version = Wire.protocol_version })
      with
      | exception Fail e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "fleet: handshake failed: %s" e)
      | Wire.Hello_ack { widx; budget_total; budget_used; corpus } ->
          wcfg.log
            (Printf.sprintf "fleet: attached as worker %d (budget %d/%d used, corpus %d)" widx
               budget_used budget_total corpus);
          (* Mirror Fuzzer.run's pre-pass setup on the local hub: the
             static denominator, lint findings and mined invariants are
             per-process state every shard recomputes identically. *)
          let snapshot =
            if cfg.Fuzzer.use_checkpoint then Some (Pmrace.Campaign.prepare_snapshot target)
            else None
          in
          let prepass =
            if cfg.Fuzzer.static_prepass || cfg.Fuzzer.invariants then
              let analysis =
                if cfg.Fuzzer.invariants then
                  { Analysis.Analyzer.default_config with invariants = true }
                else Analysis.Analyzer.default_config
              in
              Some (Pmrace.Analyze.prepass ~analysis target)
            else None
          in
          let static =
            if cfg.Fuzzer.static_prepass then
              Option.map (fun (r : Analysis.Analyzer.result) -> r.r_pairs) prepass
            else None
          in
          let hub = Hub.create ?static ~max_campaigns:max_int () in
          let whitelist =
            Pmrace.Whitelist.create
              (target.Pmrace.Target.whitelist_sites @ cfg.Fuzzer.whitelist_extra)
          in
          (match (prepass, cfg.Fuzzer.static_prepass) with
          | Some r, true ->
              Pmrace.Alias_cov.set_possible (Hub.alias hub)
                (Analysis.Alias_pairs.possible_count r.r_pairs);
              Report.set_lint (Hub.report hub) r.r_findings
          | _ -> ());
          let inv_specs =
            match prepass with
            | Some r when cfg.Fuzzer.invariants -> r.Analysis.Analyzer.r_invariants
            | _ -> []
          in
          if cfg.Fuzzer.invariants then Report.set_invariants (Hub.report hub) inv_specs;
          (* Fleet-side state threaded through the sink. *)
          let wire = Hub.fresh_delta () in
          let unshipped = ref 0 in
          let lease_rem = ref 0 in
          let local_done = ref 0 in
          let drained = ref false in
          let dead = ref false in
          (* campaign index -> the seed it ran, so commit can attribute
             new alias pairs to a corpus entry for the coordinator. *)
          let camp_seed : (int, Seed.t) Hashtbl.t = Hashtbl.create 64 in
          let contributed : (int64, Seed.t * (string * string) list ref) Hashtbl.t =
            Hashtbl.create 16
          in
          let shipped_bugs : (string * string, unit) Hashtbl.t = Hashtbl.create 16 in
          let worker_ref : Fuzzer.worker option ref = ref None in
          let ship () =
            if !unshipped > 0 || Hashtbl.length contributed > 0 then begin
              let seeds =
                Hashtbl.fold (fun _ (s, pairs) acc -> (s, !pairs) :: acc) contributed []
              in
              match rpc fd (Wire.Delta { delta = wire; campaigns = !unshipped; seeds }) with
              | Wire.Delta_ack ->
                  Hub.reset_delta wire;
                  Hashtbl.reset contributed;
                  unshipped := 0
              | _ -> raise (Fail "unexpected reply to delta")
            end;
            (* New validated bug groups since the last ship. *)
            Report.bug_groups (Hub.report hub)
            |> List.iter (fun (g : Report.bug_group) ->
                   let kind = kind_string g.bg_kind in
                   let key = (kind, g.bg_site) in
                   if not (Hashtbl.mem shipped_bugs key) then begin
                     match
                       rpc fd
                         (Wire.Bug
                            {
                              kind;
                              site = g.bg_site;
                              read_sites = g.bg_read_sites;
                              members = g.bg_members;
                              first_campaign = Artifact.first_campaign (Hub.report hub) g;
                            })
                     with
                     | Wire.Bug_ack { fresh } ->
                         Hashtbl.replace shipped_bugs key ();
                         if fresh then
                           wcfg.log
                             (Printf.sprintf "fleet: reported new bug %s at %s" kind g.bg_site)
                     | _ -> raise (Fail "unexpected reply to bug")
                   end)
          in
          let rec request_lease () =
            let reply =
              Obs.Metrics.time (Lazy.force m_lease_latency) (fun () ->
                  rpc fd
                    (Wire.Lease_req
                       { campaigns = wcfg.lease_campaigns; seeds = wcfg.lease_seeds }))
            in
            match reply with
            | Wire.Lease { campaigns; seeds } ->
                lease_rem := campaigns;
                if seeds <> [] then
                  Option.iter (fun w -> Fuzzer.refresh_corpus w seeds) !worker_ref
            | Wire.Retry ->
                (* Budget is all leased out but not all acked: other
                   workers may die and return theirs. *)
                Unix.sleepf 0.05;
                request_lease ()
            | Wire.Drained -> drained := true
            | _ -> raise (Fail "unexpected reply to lease request")
          in
          let over_cap () =
            match wcfg.max_local with Some cap -> !local_done >= cap | None -> false
          in
          let local = Fuzzer.hub_sink hub in
          let sink =
            {
              local with
              Fuzzer.sk_budget_left = (fun () -> (not !drained) && (not !dead) && not (over_cap ()));
              sk_reserve =
                (fun prov ->
                  if !dead || over_cap () then None
                  else begin
                    if !lease_rem = 0 then begin
                      ship ();
                      request_lease ()
                    end;
                    if !drained || !lease_rem = 0 then None
                    else begin
                      decr lease_rem;
                      match local.Fuzzer.sk_reserve prov with
                      | None -> None
                      | Some c ->
                          Hashtbl.replace camp_seed c prov.Hub.p_seed;
                          Some c
                    end
                  end);
              (* POR trace dedup stays shard-local: [?trace] lands in the
                 local hub's commit, which already dedups this worker's
                 campaigns; a cross-shard dup only costs one redundant
                 validation. *)
              sk_commit =
                (fun ?trace ~campaign ~delta env ~hung ~hang_info ->
                  let c = local.Fuzzer.sk_commit ?trace ~campaign ~delta env ~hung ~hang_info in
                  Hub.merge_delta_into ~src:delta ~dst:wire;
                  incr unshipped;
                  incr local_done;
                  (match (Hashtbl.find_opt camp_seed campaign, c.Hub.c_new_pairs) with
                  | Some seed, (_ :: _ as pairs) ->
                      let named =
                        List.map (fun (wr, rd) -> (site_name wr, site_name rd)) pairs
                      in
                      let fp = Seed.fingerprint seed in
                      (match Hashtbl.find_opt contributed fp with
                      | Some (_, acc) -> acc := named @ !acc
                      | None -> Hashtbl.replace contributed fp (seed, ref named))
                  | _ -> ());
                  Hashtbl.remove camp_seed campaign;
                  c);
            }
          in
          let worker =
            Fuzzer.create_worker ~log:wcfg.log ?obs ?snapshot ~whitelist ~inv_specs
              ~static_on:(static <> None) ~cfg ~sink ~widx target
          in
          worker_ref := Some worker;
          (try Fuzzer.worker_loop worker
           with Fail e ->
             dead := true;
             wcfg.log (Printf.sprintf "fleet: lost coordinator (%s); salvaging local session" e));
          (* Graceful detach: flush the tail delta and say goodbye.  A
             dead socket skips this — the coordinator already reclaimed
             our lease when the connection dropped. *)
          (if not !dead then
             try
               ship ();
               match rpc fd Wire.Bye with
               | Wire.Bye_ack -> ()
               | _ -> ()
             with Fail e -> wcfg.log (Printf.sprintf "fleet: detach failed (%s)" e));
          (try Unix.close fd with Unix.Unix_error _ -> ());
          let session =
            Fuzzer.assemble_session ?static:prepass
              ~whitelist:(Fuzzer.worker_whitelist worker)
              ~worker_campaigns:[| Fuzzer.campaigns_done worker |]
              hub target
          in
          Ok { o_session = session; o_widx = widx; o_campaigns = !local_done }
      | _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error "fleet: unexpected handshake reply")

(** The fleet coordinator: a single-threaded select loop that owns the
    durable {!Store} and speaks {!Wire} over a Unix-domain socket.

    Workers attach with [Hello] (getting a persistent worker index),
    draw [Lease]s (campaign-budget reservations plus favored corpus
    seeds), ship [Delta]s (merged into the aggregate and persisted
    before the ack) and [Bug] sightings (deduplicated fleet-wide), and
    detach with [Bye] — or by dying, in which case only their
    outstanding leased budget returns to the pool.

    Durability: every acknowledged mutation is on disk first, so a
    SIGKILLed coordinator restarted on the same store directory resumes
    with the budget ledger, aggregate coverage, bug set and corpus
    intact.  Outstanding (unacknowledged) leases are forgotten on
    restart; a worker still fuzzing one will have its delta merged
    anyway, so a crash can at most overshoot the campaign budget by the
    leases in flight, never lose acknowledged work. *)

type config = {
  socket_path : string;
  store_dir : string;
  target : string;  (** registry name; [Hello]s for other targets are refused *)
  budget : int;  (** total campaign budget (spans restarts) *)
  campaigns_per_lease : int;  (** grant cap per [Lease_req] *)
  min_campaigns_per_lease : int;  (** grant floor once a client's rate is known *)
  lease_horizon : float;
      (** seconds of observed throughput a lease should cover: each
          client's grant is sized to [rate × horizon] (EWMA of
          campaigns/sec over its delta acks), clamped to
          [min_campaigns_per_lease, campaigns_per_lease].  A client with
          no measured rate yet gets the full cap. *)
  seeds_per_lease : int;  (** corpus seeds handed out per lease *)
  log : string -> unit;
}

val default_config : config
(** [socket_path]/[store_dir]/[target] empty; budget 300; 30-campaign
    cap / 5-campaign floor / 1 s horizon; 4-seed leases; silent log. *)

val lease_size : rate:float -> horizon:float -> min_lease:int -> max_lease:int -> int
(** The lease-sizing policy, exposed pure for tests: [max_lease] when
    [rate <= 0] (unmeasured), else [rate × horizon] clamped to
    [min_lease, max_lease] (both capped by [max_lease]). *)

type stats = {
  st_campaigns : int;  (** budget used, including pre-restart campaigns *)
  st_bugs : int;  (** unique (kind, site) sightings fleet-wide *)
  st_clients : int;  (** workers served by this process *)
}

val serve : ?on_ready:(unit -> unit) -> config -> (stats, string) result
(** Run until the budget is fully used {e and} the last worker has
    detached.  [on_ready] fires once the socket is listening (tests and
    scripts use it to spawn workers without racing the bind). *)

(* The fleet coordinator: one select loop, one durable store, N workers.

   The coordinator is deliberately thin — it never executes a campaign.
   It hands out budget reservations (the fleet-wide analogue of
   Hub.reserve: a lease is a batch of campaign slots, claimed atomically
   against the persistent ledger), merges shipped coverage deltas into
   the aggregate (the analogue of Hub.commit's merge half), deduplicates
   bug sightings by (kind, site) exactly like the in-process report, and
   schedules the corpus with Corpus_sched (favored cover first).

   Crash semantics mirror the in-process reserve/commit split: a lease is
   in-memory (a worker that dies, or a coordinator that restarts, returns
   or forgets it), while everything acknowledged — used budget, merged
   coverage, bugs, corpus entries — is on disk before the ack frame is
   written.  Killing any process at any instant therefore loses at most
   the leases in flight. *)

type config = {
  socket_path : string;
  store_dir : string;
  target : string;
  budget : int;
  campaigns_per_lease : int;
  min_campaigns_per_lease : int;
  lease_horizon : float;
  seeds_per_lease : int;
  log : string -> unit;
}

let default_config =
  {
    socket_path = "";
    store_dir = "";
    target = "";
    budget = 300;
    campaigns_per_lease = 30;
    min_campaigns_per_lease = 5;
    lease_horizon = 1.0;
    seeds_per_lease = 4;
    log = (fun _ -> ());
  }

(* A lease sized to [lease_horizon] seconds of the client's observed
   throughput, clamped to [min, max].  An unmeasured client (rate 0 —
   nothing shipped yet) gets the full cap: overshooting the first lease
   costs at most one batch, undershooting would serialize the fleet's
   warm-up on round trips. *)
let lease_size ~rate ~horizon ~min_lease ~max_lease =
  if rate <= 0. then max_lease
  else max (min min_lease max_lease) (min max_lease (int_of_float (rate *. horizon)))

type stats = { st_campaigns : int; st_bugs : int; st_clients : int }

type client = {
  c_fd : Unix.file_descr;
  mutable c_widx : int; (* -1 until Hello *)
  mutable c_leased : int; (* outstanding leased campaigns *)
  mutable c_rate : float; (* EWMA campaigns/sec over delta acks; 0 until measured *)
  mutable c_lease_t : float; (* wall time of the last grant, for the rate sample *)
}

let m_corpus_size = lazy (Obs.Metrics.gauge "fleet_corpus_size")
let m_corpus_favored = lazy (Obs.Metrics.gauge "fleet_corpus_favored")
let m_leases = lazy (Obs.Metrics.counter "fleet_leases_total")
let m_deltas = lazy (Obs.Metrics.counter "fleet_deltas_total")

let update_corpus_gauges store =
  if Obs.Metrics.enabled () then begin
    let c = Store.corpus store in
    Obs.Metrics.set (Lazy.force m_corpus_size) (float_of_int (Pmrace.Corpus_sched.size c));
    Obs.Metrics.set (Lazy.force m_corpus_favored)
      (float_of_int (Pmrace.Corpus_sched.favored_count c))
  end

let serve ?(on_ready = fun () -> ()) cfg =
  Wire.ignore_sigpipe ();
  match Store.open_store ~dir:cfg.store_dir ~target:cfg.target ~budget:cfg.budget with
  | Error _ as e -> e
  | Ok store -> (
      let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 8 in
      let served = ref 0 in
      let outstanding () = Hashtbl.fold (fun _ c n -> n + c.c_leased) clients 0 in
      let drop c =
        (* A dead worker loses only its leased batch: the lease count
           evaporates with the client record, returning the budget. *)
        if c.c_leased > 0 then
          cfg.log
            (Printf.sprintf "fleet: worker %d gone, reclaiming %d leased campaigns" c.c_widx
               c.c_leased);
        Hashtbl.remove clients c.c_fd;
        try Unix.close c.c_fd with Unix.Unix_error _ -> ()
      in
      let reply c msg =
        try Wire.send c.c_fd (Wire.server_to_json msg)
        with Unix.Unix_error _ -> drop c
      in
      let handle c msg =
        match msg with
        | Wire.Hello { target; version } ->
            if version <> Wire.protocol_version then begin
              reply c (Wire.Err (Printf.sprintf "protocol version %d unsupported" version));
              drop c
            end
            else if not (String.equal target (Store.target store)) then begin
              reply c
                (Wire.Err
                   (Printf.sprintf "hub serves target %S, not %S" (Store.target store) target));
              drop c
            end
            else begin
              c.c_widx <- Store.next_widx store;
              incr served;
              cfg.log (Printf.sprintf "fleet: worker %d attached" c.c_widx);
              reply c
                (Wire.Hello_ack
                   {
                     widx = c.c_widx;
                     budget_total = Store.budget_total store;
                     budget_used = Store.budget_used store;
                     corpus = Pmrace.Corpus_sched.size (Store.corpus store);
                   })
            end
        | _ when c.c_widx < 0 ->
            (* The target-match check in Hello gates everything else; a
               client that skips the handshake gets nothing. *)
            reply c (Wire.Err "hello required before any other message");
            drop c
        | Wire.Lease_req { campaigns; seeds } ->
            let avail = Store.budget_remaining store - outstanding () in
            if avail <= 0 then
              (* Workers holding leases may still return them (by dying);
                 only when nothing is in flight is the drain final. *)
              reply c (if outstanding () > 0 then Wire.Retry else Wire.Drained)
            else begin
              let sized =
                lease_size ~rate:c.c_rate ~horizon:cfg.lease_horizon
                  ~min_lease:cfg.min_campaigns_per_lease ~max_lease:cfg.campaigns_per_lease
              in
              let n = min avail (min campaigns sized) in
              c.c_leased <- c.c_leased + n;
              c.c_lease_t <- Unix.gettimeofday ();
              let corpus = Store.corpus store in
              Pmrace.Corpus_sched.cull corpus;
              update_corpus_gauges store;
              let leased = Pmrace.Corpus_sched.lease corpus (min seeds cfg.seeds_per_lease) in
              Obs.Metrics.incr (Lazy.force m_leases);
              cfg.log
                (Printf.sprintf "fleet: lease %d campaigns + %d seeds to worker %d (%d/%d used)"
                   n (List.length leased) c.c_widx (Store.budget_used store)
                   (Store.budget_total store));
              reply c (Wire.Lease { campaigns = n; seeds = leased })
            end
        | Wire.Delta { delta; campaigns; seeds } ->
            (* The ledger only ever accounts budget the coordinator
               itself granted: a buggy or duplicate-shipping worker
               cannot push budget_used past its outstanding lease. *)
            let n = min (max 0 campaigns) c.c_leased in
            if n < campaigns then
              cfg.log
                (Printf.sprintf
                   "fleet: worker %d shipped %d campaigns but holds only %d leased; clamping"
                   c.c_widx campaigns c.c_leased);
            (if n > 0 && c.c_lease_t > 0. then
               let dt = Unix.gettimeofday () -. c.c_lease_t in
               if dt > 0. then begin
                 let sample = float_of_int n /. dt in
                 c.c_rate <-
                   (if c.c_rate <= 0. then sample else (0.7 *. c.c_rate) +. (0.3 *. sample))
               end);
            Store.merge_delta store delta;
            Store.record_campaigns store n;
            c.c_leased <- c.c_leased - n;
            List.iter (fun (seed, pairs) -> ignore (Store.add_seed store ~pairs seed)) seeds;
            update_corpus_gauges store;
            Obs.Metrics.incr (Lazy.force m_deltas);
            cfg.log
              (Printf.sprintf "fleet: delta from worker %d (%d campaigns, %d seeds; %d/%d used)"
                 c.c_widx n (List.length seeds) (Store.budget_used store)
                 (Store.budget_total store));
            reply c Wire.Delta_ack
        | Wire.Bug { kind; site; read_sites; members; first_campaign } ->
            let fresh =
              Store.record_bug store ~kind ~site ~read_sites ~members
                ~origin:(Printf.sprintf "worker-%d" c.c_widx)
                ~first_campaign
            in
            if fresh then cfg.log (Printf.sprintf "fleet: new bug %s at %s (worker %d)" kind site c.c_widx);
            reply c (Wire.Bug_ack { fresh })
        | Wire.Bye ->
            reply c Wire.Bye_ack;
            cfg.log (Printf.sprintf "fleet: worker %d detached" c.c_widx);
            drop c
      in
      (* Workers may hold a frame mid-write when we select; recv blocks
         only for the remainder of one frame, which is bounded and local
         (same machine), so a plain blocking read per readable fd keeps
         the loop single-threaded without partial-frame bookkeeping. *)
      let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match
        (try if Sys.file_exists cfg.socket_path then Sys.remove cfg.socket_path with Sys_error _ -> ());
        Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
        Unix.listen listen_fd 16
      with
      | exception Unix.Unix_error (e, _, p) ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "fleet: cannot listen on %s: %s" p (Unix.error_message e))
      | () ->
          cfg.log
            (Printf.sprintf "fleet: hub on %s (budget %d/%d used, corpus %d)" cfg.socket_path
               (Store.budget_used store) (Store.budget_total store)
               (Pmrace.Corpus_sched.size (Store.corpus store)));
          on_ready ();
          let finished () = Store.budget_remaining store = 0 && Hashtbl.length clients = 0 in
          let running = ref true in
          while !running do
            if finished () then running := false
            else begin
              let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
              match Unix.select fds [] [] 0.25 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      if fd = listen_fd then begin
                        let cfd, _ = Unix.accept listen_fd in
                        Hashtbl.replace clients cfd
                          { c_fd = cfd; c_widx = -1; c_leased = 0; c_rate = 0.; c_lease_t = 0. }
                      end
                      else
                        match Hashtbl.find_opt clients fd with
                        | None -> ()
                        | Some c -> (
                            match Wire.recv fd with
                            | Error _ -> drop c
                            | Ok j -> (
                                match Wire.client_of_json j with
                                | Error e ->
                                    reply c (Wire.Err e);
                                    drop c
                                | Ok msg -> handle c msg)))
                    readable
            end
          done;
          Hashtbl.iter (fun _ c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) clients;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (try Sys.remove cfg.socket_path with Sys_error _ -> ());
          Ok
            {
              st_campaigns = Store.budget_used store;
              st_bugs = List.length (Store.bugs store);
              st_clients = !served;
            })

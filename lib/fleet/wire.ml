(* The fleet wire protocol: 4-byte big-endian length prefix, then that
   many bytes of minified Obs.Json.

   Site identity crosses the process boundary by *name*, never by raw id:
   the seed/spec codecs come from Artifact and the delta codec from Hub,
   both of which re-register names via Runtime.Instr.site on decode.  A
   worker and the coordinator therefore never need the same site-id
   layout — which they would not have, since each process registers sites
   in its own discovery order. *)

module J = Obs.Json

let protocol_version = 1

(* Writes to a dead peer must surface as an EPIPE [Unix.Unix_error]
   (which every call site already handles), not as a process-killing
   SIGPIPE.  Both fleet entry points call this before any socket I/O. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ()

(* Frames above this are a protocol error, not a workload: the largest
   legitimate payload (a full-coverage delta for the biggest target) is a
   few hundred KB. *)
let max_frame = 64 * 1024 * 1024

let rec write_all fd buf off len =
  if len > 0 then begin
    let n = try Unix.write fd buf off len with Unix.Unix_error (Unix.EINTR, _, _) -> 0 in
    write_all fd buf (off + n) (len - n)
  end

(* [Error "eof"] on a clean close before any byte; short reads mid-frame
   are a protocol error.  Any other read failure (ECONNRESET from an
   abruptly killed peer, and so on) is also [Error], never an exception:
   the peer is simply gone, and the caller's drop/salvage path handles
   that. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Error "eof" else Error "truncated frame"
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  go 0

let m_bytes = lazy (Obs.Metrics.counter "fleet_wire_bytes_total")

let send fd json =
  let payload = Bytes.of_string (J.to_string ~minify:true json) in
  let len = Bytes.length payload in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Obs.Metrics.incr ~by:(len + 4) (Lazy.force m_bytes);
  write_all fd hdr 0 4;
  write_all fd payload 0 len

let recv fd =
  match read_exact fd 4 with
  | Error _ as e -> e
  | Ok hdr -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_frame then Error (Printf.sprintf "bad frame length %d" len)
      else
        match read_exact fd len with
        | Error _ as e -> e
        | Ok payload -> (
            Obs.Metrics.incr ~by:(len + 4) (Lazy.force m_bytes);
            match J.of_string (Bytes.to_string payload) with
            | Ok j -> Ok j
            | Error e -> Error (Printf.sprintf "bad frame payload: %s" e)))

(* ------------------------------------------------------------------ *)
(* Message codecs *)

type client_msg =
  | Hello of { target : string; version : int }
  | Lease_req of { campaigns : int; seeds : int }
  | Delta of {
      delta : Pmrace.Hub.delta;
      campaigns : int;
      seeds : (Pmrace.Seed.t * (string * string) list) list;
    }
  | Bug of {
      kind : string;
      site : string;
      read_sites : string list;
      members : int;
      first_campaign : int option;
    }
  | Bye

type server_msg =
  | Hello_ack of { widx : int; budget_total : int; budget_used : int; corpus : int }
  | Lease of { campaigns : int; seeds : Pmrace.Seed.t list }
  | Retry
  | Drained
  | Delta_ack
  | Bug_ack of { fresh : bool }
  | Bye_ack
  | Err of string

let pairs_to_json ps =
  J.List (List.map (fun (w, r) -> J.Obj [ ("write", J.String w); ("read", J.String r) ]) ps)

let get conv name j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "wire: bad or missing field %S" name)

let ( let* ) = Result.bind

let pairs_of_json j =
  match J.to_list j with
  | None -> Error "wire: pairs: expected list"
  | Some l ->
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* w = get J.to_str "write" p in
          let* r = get J.to_str "read" p in
          Ok ((w, r) :: acc))
        (Ok []) l
      |> Result.map List.rev

let client_to_json = function
  | Hello { target; version } ->
      J.Obj [ ("type", J.String "hello"); ("target", J.String target); ("version", J.Int version) ]
  | Lease_req { campaigns; seeds } ->
      J.Obj
        [ ("type", J.String "lease_req"); ("campaigns", J.Int campaigns); ("seeds", J.Int seeds) ]
  | Delta { delta; campaigns; seeds } ->
      J.Obj
        [
          ("type", J.String "delta");
          ("campaigns", J.Int campaigns);
          ("delta", Pmrace.Hub.delta_to_json delta);
          ( "seeds",
            J.List
              (List.map
                 (fun (s, ps) ->
                   J.Obj [ ("seed", Pmrace.Artifact.seed_to_json s); ("pairs", pairs_to_json ps) ])
                 seeds) );
        ]
  | Bug { kind; site; read_sites; members; first_campaign } ->
      J.Obj
        [
          ("type", J.String "bug");
          ("kind", J.String kind);
          ("site", J.String site);
          ("read_sites", J.List (List.map (fun s -> J.String s) read_sites));
          ("members", J.Int members);
          ( "first_campaign",
            match first_campaign with Some c -> J.Int c | None -> J.Null );
        ]
  | Bye -> J.Obj [ ("type", J.String "bye") ]

let client_of_json j =
  let* ty = get J.to_str "type" j in
  match ty with
  | "hello" ->
      let* target = get J.to_str "target" j in
      let* version = get J.to_int "version" j in
      Ok (Hello { target; version })
  | "lease_req" ->
      let* campaigns = get J.to_int "campaigns" j in
      let* seeds = get J.to_int "seeds" j in
      Ok (Lease_req { campaigns; seeds })
  | "delta" ->
      let* campaigns = get J.to_int "campaigns" j in
      let* dj =
        match J.member "delta" j with Some d -> Ok d | None -> Error "wire: delta: missing delta"
      in
      let* delta = Pmrace.Hub.delta_of_json dj in
      let* sl = get J.to_list "seeds" j in
      let* seeds =
        List.fold_left
          (fun acc sj ->
            let* acc = acc in
            let* seed_j =
              match J.member "seed" sj with
              | Some s -> Ok s
              | None -> Error "wire: delta seed: missing seed"
            in
            let* seed = Pmrace.Artifact.seed_of_json seed_j in
            let* ps =
              match J.member "pairs" sj with
              | Some p -> pairs_of_json p
              | None -> Error "wire: delta seed: missing pairs"
            in
            Ok ((seed, ps) :: acc))
          (Ok []) sl
        |> Result.map List.rev
      in
      Ok (Delta { delta; campaigns; seeds })
  | "bug" ->
      let* kind = get J.to_str "kind" j in
      let* site = get J.to_str "site" j in
      let* rs = get J.to_list "read_sites" j in
      let* read_sites =
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match J.to_str s with
            | Some s -> Ok (s :: acc)
            | None -> Error "wire: bug: bad read site")
          (Ok []) rs
        |> Result.map List.rev
      in
      let* members = get J.to_int "members" j in
      let first_campaign = Option.bind (J.member "first_campaign" j) J.to_int in
      Ok (Bug { kind; site; read_sites; members; first_campaign })
  | "bye" -> Ok Bye
  | ty -> Error (Printf.sprintf "wire: unknown client message %S" ty)

let server_to_json = function
  | Hello_ack { widx; budget_total; budget_used; corpus } ->
      J.Obj
        [
          ("type", J.String "hello_ack");
          ("widx", J.Int widx);
          ("budget_total", J.Int budget_total);
          ("budget_used", J.Int budget_used);
          ("corpus", J.Int corpus);
        ]
  | Lease { campaigns; seeds } ->
      J.Obj
        [
          ("type", J.String "lease");
          ("campaigns", J.Int campaigns);
          ("seeds", J.List (List.map Pmrace.Artifact.seed_to_json seeds));
        ]
  | Retry -> J.Obj [ ("type", J.String "retry") ]
  | Drained -> J.Obj [ ("type", J.String "drained") ]
  | Delta_ack -> J.Obj [ ("type", J.String "delta_ack") ]
  | Bug_ack { fresh } -> J.Obj [ ("type", J.String "bug_ack"); ("fresh", J.Bool fresh) ]
  | Bye_ack -> J.Obj [ ("type", J.String "bye_ack") ]
  | Err msg -> J.Obj [ ("type", J.String "error"); ("msg", J.String msg) ]

let server_of_json j =
  let* ty = get J.to_str "type" j in
  match ty with
  | "hello_ack" ->
      let* widx = get J.to_int "widx" j in
      let* budget_total = get J.to_int "budget_total" j in
      let* budget_used = get J.to_int "budget_used" j in
      let* corpus = get J.to_int "corpus" j in
      Ok (Hello_ack { widx; budget_total; budget_used; corpus })
  | "lease" ->
      let* campaigns = get J.to_int "campaigns" j in
      let* sl = get J.to_list "seeds" j in
      let* seeds =
        List.fold_left
          (fun acc sj ->
            let* acc = acc in
            let* s = Pmrace.Artifact.seed_of_json sj in
            Ok (s :: acc))
          (Ok []) sl
        |> Result.map List.rev
      in
      Ok (Lease { campaigns; seeds })
  | "retry" -> Ok Retry
  | "drained" -> Ok Drained
  | "delta_ack" -> Ok Delta_ack
  | "bug_ack" ->
      let* fresh = get J.to_bool "fresh" j in
      Ok (Bug_ack { fresh })
  | "bye_ack" -> Ok Bye_ack
  | "error" ->
      let* msg = get J.to_str "msg" j in
      Ok (Err msg)
  | ty -> Error (Printf.sprintf "wire: unknown server message %S" ty)

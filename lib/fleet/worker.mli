(** A fleet worker: the PR-2 worker loop ({!Pmrace.Fuzzer.worker_loop})
    bound to a coordinator instead of an in-process hub.

    The worker keeps a private local {!Pmrace.Hub} (unbounded budget —
    the coordinator's leases are the real budget) and a {e wire delta}
    that every campaign delta is folded into at commit.  At each lease
    boundary it ships the wire delta, the seeds that achieved new alias
    pairs, and any new validated bug groups, then asks for the next
    lease.  A worker that dies mid-lease loses only that leased batch;
    one that loses its coordinator keeps its local session and still
    writes its shard artifact. *)

type config = {
  connect : string;  (** the hub's Unix-domain socket path *)
  cfg : Pmrace.Fuzzer.config;
      (** engine/mutation parameters; [max_campaigns] is ignored (the
          coordinator's budget governs) and [workers] must be 1 *)
  max_local : int option;
      (** stop after this many local campaigns even if leases remain
          (the CI kill scenario detaches a worker mid-campaign) *)
  lease_campaigns : int;  (** campaigns requested per lease *)
  lease_seeds : int;  (** corpus seeds requested per lease *)
  log : string -> unit;
}

val default_config : config
(** Empty socket path, {!Pmrace.Fuzzer.default_config}, no local cap,
    30-campaign 4-seed lease requests, silent log. *)

type outcome = {
  o_session : Pmrace.Fuzzer.session;  (** the worker's local session shard *)
  o_widx : int;  (** coordinator-assigned worker index *)
  o_campaigns : int;  (** campaigns this worker completed *)
}

val run : ?obs:Obs.Events.t -> config -> Pmrace.Target.t -> (outcome, string) result
(** Attach, fuzz until the coordinator drains (or [max_local] hits),
    detach, and assemble the local session.  Losing the connection
    mid-session is not an error: the worker stops fuzzing and returns
    the salvaged session. *)

(* The coordinator's durable on-disk state.

   Everything a restarted coordinator needs lives in the store directory:
   the budget ledger (meta.json), the aggregate coverage delta
   (coverage.json), the deduplicated bug sightings (bugs.json), and one
   file per unique corpus seed (corpus/<fingerprint>.json).  Mutations
   persist with write-to-temp + fsync + rename before the worker gets
   its ack, so killing the coordinator at any instant — including an OS
   crash — loses at most frames that were never acknowledged — a worker whose delta was acked is durably merged.

   Seed identity is Seed.fingerprint (a content hash over rendered ops),
   so the same seed re-contributed by two workers, or re-loaded after a
   restart, lands on one corpus file.  Coverage identity is site names
   (Hub's delta codec), so the aggregate merges correctly across worker
   processes with different site-id layouts. *)

module J = Obs.Json
module Hub = Pmrace.Hub
module Seed = Pmrace.Seed
module Corpus_sched = Pmrace.Corpus_sched

type bug_entry = {
  be_kind : string;
  be_site : string;
  be_read_sites : string list;
  be_members : int;
  be_origin : string;
  be_first_campaign : int option;
}

type t = {
  s_dir : string;
  s_target : string;
  mutable s_budget_total : int;
  mutable s_budget_used : int;
  mutable s_clients : int; (* worker indices handed out, across restarts *)
  s_corpus : Corpus_sched.t;
  s_agg : Hub.delta; (* fleet-wide achieved coverage *)
  mutable s_bugs : bug_entry list;
}

let dir t = t.s_dir
let target t = t.s_target
let budget_total t = t.s_budget_total
let budget_used t = t.s_budget_used
let corpus t = t.s_corpus
let coverage t = t.s_agg
let budget_remaining t = max 0 (t.s_budget_total - t.s_budget_used)

let bugs t =
  List.sort (fun a b -> compare (a.be_kind, a.be_site) (b.be_kind, b.be_site)) t.s_bugs

(* ------------------------------------------------------------------ *)
(* Files *)

let meta_path t = Filename.concat t.s_dir "meta.json"
let coverage_path t = Filename.concat t.s_dir "coverage.json"
let bugs_path t = Filename.concat t.s_dir "bugs.json"
let corpus_dir t = Filename.concat t.s_dir "corpus"
let fp_name fp = Printf.sprintf "%016Lx.json" fp

(* Atomic, durable persist: write-to-temp, fsync, rename, fsync the
   directory.  A reader (or a restart) sees the old file or the new
   file, never a torn write — and because the data hits stable storage
   before the rename and the rename before the ack, an acknowledged
   mutation survives an OS crash or power loss, not just SIGKILL. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dfd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())

let write_file path json =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let payload = Bytes.of_string (J.to_string ~minify:true json ^ "\n") in
      let len = Bytes.length payload in
      let rec go off =
        if off < len then begin
          let n =
            try Unix.write fd payload off (len - off)
            with Unix.Unix_error (Unix.EINTR, _, _) -> 0
          in
          go (off + n)
        end
      in
      go 0;
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> J.of_string text

let get conv name j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "store: bad or missing field %S" name)

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Persist *)

let save_meta t =
  write_file (meta_path t)
    (J.Obj
       [
         ("target", J.String t.s_target);
         ("budget_total", J.Int t.s_budget_total);
         ("budget_used", J.Int t.s_budget_used);
         ("clients", J.Int t.s_clients);
       ])

let save_coverage t = write_file (coverage_path t) (Hub.delta_to_json t.s_agg)

let bug_to_json b =
  J.Obj
    [
      ("kind", J.String b.be_kind);
      ("site", J.String b.be_site);
      ("read_sites", J.List (List.map (fun s -> J.String s) b.be_read_sites));
      ("members", J.Int b.be_members);
      ("origin", J.String b.be_origin);
      ("first_campaign", match b.be_first_campaign with Some c -> J.Int c | None -> J.Null);
    ]

let save_bugs t = write_file (bugs_path t) (J.List (List.map bug_to_json (bugs t)))

let save_corpus_entry t (e : Corpus_sched.entry) =
  write_file
    (Filename.concat (corpus_dir t) (fp_name e.e_fp))
    (J.Obj
       [
         ("seed", Pmrace.Artifact.seed_to_json e.e_seed);
         ( "pairs",
           J.List
             (List.map
                (fun (w, r) -> J.Obj [ ("write", J.String w); ("read", J.String r) ])
                e.e_pairs) );
         ("added", J.Int e.e_added);
       ])

(* ------------------------------------------------------------------ *)
(* Load *)

let load_meta t =
  let* j = read_file (meta_path t) in
  let* target = get J.to_str "target" j in
  if not (String.equal target t.s_target) then
    Error (Printf.sprintf "store %s holds target %S, not %S" t.s_dir target t.s_target)
  else begin
    let* used = get J.to_int "budget_used" j in
    let* clients = get J.to_int "clients" j in
    t.s_budget_used <- used;
    t.s_clients <- clients;
    Ok ()
  end

let load_coverage t =
  if not (Sys.file_exists (coverage_path t)) then Ok ()
  else
    let* j = read_file (coverage_path t) in
    let* d = Hub.delta_of_json j in
    Hub.merge_delta_into ~src:d ~dst:t.s_agg;
    Ok ()

let load_bugs t =
  if not (Sys.file_exists (bugs_path t)) then Ok ()
  else
    let* j = read_file (bugs_path t) in
    match J.to_list j with
    | None -> Error "store: bugs.json: expected list"
    | Some l ->
        let* entries =
          List.fold_left
            (fun acc b ->
              let* acc = acc in
              let* be_kind = get J.to_str "kind" b in
              let* be_site = get J.to_str "site" b in
              let* rs = get J.to_list "read_sites" b in
              let be_read_sites = List.filter_map J.to_str rs in
              let* be_members = get J.to_int "members" b in
              let* be_origin = get J.to_str "origin" b in
              let be_first_campaign = Option.bind (J.member "first_campaign" b) J.to_int in
              Ok ({ be_kind; be_site; be_read_sites; be_members; be_origin; be_first_campaign } :: acc))
            (Ok []) l
        in
        t.s_bugs <- List.rev entries;
        Ok ()

let load_corpus t =
  let cdir = corpus_dir t in
  if not (Sys.file_exists cdir) then Ok ()
  else begin
    let files =
      Sys.readdir cdir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".json")
      |> List.sort compare
    in
    let* entries =
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          let* j = read_file (Filename.concat cdir f) in
          let* sj =
            match J.member "seed" j with Some s -> Ok s | None -> Error "store: corpus: missing seed"
          in
          let* seed = Pmrace.Artifact.seed_of_json sj in
          let* pj = get J.to_list "pairs" j in
          let* pairs =
            List.fold_left
              (fun acc p ->
                let* acc = acc in
                let* w = get J.to_str "write" p in
                let* r = get J.to_str "read" p in
                Ok ((w, r) :: acc))
              (Ok []) pj
            |> Result.map List.rev
          in
          let* added = get J.to_int "added" j in
          Ok ((added, seed, pairs) :: acc))
        (Ok []) files
    in
    (* Oldest first, so reload preserves the age axis and the insertion
       sequence resumes past the highest stored value. *)
    List.iter
      (fun (added, seed, pairs) -> ignore (Corpus_sched.add t.s_corpus ~pairs ~added seed))
      (List.sort compare entries);
    Ok ()
  end

let open_store ~dir ~target ~budget =
  let t =
    {
      s_dir = dir;
      s_target = target;
      s_budget_total = budget;
      s_budget_used = 0;
      s_clients = 0;
      s_corpus = Corpus_sched.create ();
      s_agg = Hub.fresh_delta ();
      s_bugs = [];
    }
  in
  try
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    if not (Sys.file_exists (corpus_dir t)) then Unix.mkdir (corpus_dir t) 0o755;
    if Sys.file_exists (meta_path t) then begin
      let* () = load_meta t in
      let* () = load_coverage t in
      let* () = load_bugs t in
      let* () = load_corpus t in
      (* The caller's budget is the new total (a restart may extend the
         campaign), but the used count survives. *)
      t.s_budget_total <- budget;
      save_meta t;
      Ok t
    end
    else begin
      save_meta t;
      Ok t
    end
  with
  | Unix.Unix_error (e, _, p) -> Error (Printf.sprintf "store: %s: %s" p (Unix.error_message e))
  | Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Mutations (persist before the caller acks the worker) *)

let next_widx t =
  let w = t.s_clients in
  t.s_clients <- w + 1;
  save_meta t;
  w

let record_campaigns t n =
  if n > 0 then begin
    t.s_budget_used <- t.s_budget_used + n;
    save_meta t
  end

let m_merge = lazy (Obs.Metrics.histogram "fleet_delta_merge_seconds")

let merge_delta t d =
  Obs.Metrics.time (Lazy.force m_merge) @@ fun () ->
  Hub.merge_delta_into ~src:d ~dst:t.s_agg;
  save_coverage t

let add_seed t ?(pairs = []) seed =
  match Corpus_sched.add t.s_corpus ~pairs seed with
  | Some e ->
      save_corpus_entry t e;
      true
  | None ->
      (* Duplicate content: the existing entry absorbed the pair credit;
         persist it if the credit changed anything. *)
      if pairs <> [] then
        Option.iter (save_corpus_entry t) (Corpus_sched.find t.s_corpus (Seed.fingerprint seed));
      false

let credit_seed t seed pairs =
  let fp = Seed.fingerprint seed in
  Corpus_sched.credit_pairs t.s_corpus fp pairs;
  Option.iter (save_corpus_entry t) (Corpus_sched.find t.s_corpus fp)

let record_bug t ~kind ~site ~read_sites ~members ~origin ~first_campaign =
  let fresh = not (List.exists (fun b -> b.be_kind = kind && b.be_site = site) t.s_bugs) in
  (if fresh then
     t.s_bugs <-
       {
         be_kind = kind;
         be_site = site;
         be_read_sites = List.sort_uniq compare read_sites;
         be_members = members;
         be_origin = origin;
         be_first_campaign = first_campaign;
       }
       :: t.s_bugs
   else
     t.s_bugs <-
       List.map
         (fun b ->
           if b.be_kind = kind && b.be_site = site then
             {
               b with
               be_members = b.be_members + members;
               be_read_sites = List.sort_uniq compare (read_sites @ b.be_read_sites);
             }
           else b)
         t.s_bugs);
  save_bugs t;
  fresh

(** The fleet's view of the AFL-style corpus scheduler.

    The implementation lives in {!Pmrace.Corpus_sched} (the in-process
    fuzzer uses it behind [--corpus-sched]); this interface constrains
    the re-export to exactly what the fleet store and coordinator use,
    so the fleet surface cannot widen by accident when the scheduler
    grows.  Types are equal to the [pmrace] ones — values cross the
    boundary freely (e.g. {!Store.corpus}). *)

type entry = Pmrace.Corpus_sched.entry = {
  e_fp : int64;  (** {!Pmrace.Seed.fingerprint} — the dedup key *)
  e_seed : Pmrace.Seed.t;
  e_op_count : int;
  e_added : int;  (** insertion sequence number — the age axis *)
  mutable e_pairs : (string * string) list;
  mutable e_favored : bool;
  mutable e_tombstone : bool;
  mutable e_leases : int;
}

type t = Pmrace.Corpus_sched.t

val create : unit -> t

val add : t -> ?pairs:(string * string) list -> ?added:int -> Pmrace.Seed.t -> entry option
(** Insert a seed; [None] when its fingerprint is already present (the
    existing entry absorbs [pairs] instead).  [added] preserves entry age
    across store reloads. *)

val credit_pairs : t -> int64 -> (string * string) list -> unit

val find : t -> int64 -> entry option
(** Look up the entry to persist after {!add}/{!credit_pairs}. *)

val cull : t -> unit
(** Recompute the favored cover before leasing. *)

val lease : t -> int -> Pmrace.Seed.t list
(** Up to [n] seeds for one worker lease: favored first, least-leased
    first within each class.  Deterministic. *)

val size : t -> int
val favored_count : t -> int

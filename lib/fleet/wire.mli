(** The fleet wire protocol: length-prefixed {!Obs.Json} frames over a
    Unix-domain socket.

    Strict RPC shape: every {!client_msg} a worker sends gets exactly one
    {!server_msg} reply from the coordinator.  All payloads encode
    instruction sites by {e name} (the codecs re-register them via
    {!Runtime.Instr.site} on decode), so frames are valid across
    processes with different site-id layouts.

    Framing: a 4-byte big-endian payload length, then that many bytes of
    minified JSON.  {!recv} returns [Error] on EOF, oversized frames and
    malformed payloads — the peer is then treated as gone. *)

val protocol_version : int

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide so that writing to a dead peer raises an
    [EPIPE] [Unix.Unix_error] instead of killing the process.  Both
    fleet entry points ({!Coordinator.serve}, {!Worker.run}) call this
    before any socket I/O. *)

val send : Unix.file_descr -> Obs.Json.t -> unit
(** Write one frame (handles short writes).  Raises [Unix.Unix_error]
    (e.g. [EPIPE]) when the peer vanished. *)

val recv : Unix.file_descr -> (Obs.Json.t, string) result
(** Read one frame; [Error "eof"] on a clean close.  Read failures from
    an abruptly killed peer (e.g. [ECONNRESET]) are [Error] too — [recv]
    never raises on a dead socket. *)

(** Worker-to-coordinator messages. *)
type client_msg =
  | Hello of { target : string; version : int }
      (** first message on a connection; the coordinator checks the
          target and assigns the worker its index *)
  | Lease_req of { campaigns : int; seeds : int }
      (** ask for a campaign-budget reservation of up to [campaigns] and
          up to [seeds] corpus seeds to fuzz *)
  | Delta of {
      delta : Pmrace.Hub.delta;
      campaigns : int;  (** campaigns executed since the last shipment *)
      seeds : (Pmrace.Seed.t * (string * string) list) list;
          (** seeds that achieved new alias pairs, with the pair names *)
    }
  | Bug of {
      kind : string;
      site : string;
      read_sites : string list;
      members : int;
      first_campaign : int option;  (** worker-local campaign index *)
    }
  | Bye

(** Coordinator replies. *)
type server_msg =
  | Hello_ack of { widx : int; budget_total : int; budget_used : int; corpus : int }
  | Lease of { campaigns : int; seeds : Pmrace.Seed.t list }
  | Retry
      (** nothing grantable now, but outstanding leases may return —
          back off and re-request *)
  | Drained  (** budget exhausted for good: wind down *)
  | Delta_ack
  | Bug_ack of { fresh : bool }
      (** [fresh] = first sighting of this (kind, site) across the fleet *)
  | Bye_ack
  | Err of string

val client_to_json : client_msg -> Obs.Json.t
val client_of_json : Obs.Json.t -> (client_msg, string) result
val server_to_json : server_msg -> Obs.Json.t
val server_of_json : Obs.Json.t -> (server_msg, string) result

(* Re-export: the scheduler lives in [pmrace] (the in-process fuzzer
   uses it behind [--corpus-sched]) but is conceptually part of the
   fleet surface, so [Fleet.Corpus_sched] aliases it. *)
include Pmrace.Corpus_sched

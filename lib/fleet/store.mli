(** The coordinator's durable on-disk state (fleet mode).

    Layout under the store directory:
    - [meta.json] — target, budget total/used, client counter;
    - [coverage.json] — the aggregate coverage delta
      ({!Pmrace.Hub.delta_to_json}, site names);
    - [bugs.json] — deduplicated fleet-wide bug sightings with origin
      provenance;
    - [corpus/<fingerprint>.json] — one corpus entry per unique seed
      ({!Pmrace.Seed.fingerprint} hex), with its credited pairs and age.

    Every mutation persists before it is acknowledged to a worker, via
    write-to-temp + fsync + rename (+ directory fsync), so a killed
    coordinator — SIGKILL or OS crash — restarts from the last
    acknowledged state and loses nothing but unacknowledged frames.
    A restarted coordinator {!load}s the directory and resumes the
    campaign where the budget left off. *)

type bug_entry = {
  be_kind : string;
  be_site : string;
  be_read_sites : string list;
  be_members : int;  (** member findings summed across sightings *)
  be_origin : string;  (** worker label that first reported it *)
  be_first_campaign : int option;  (** first reporter's local campaign index *)
}

type t

val dir : t -> string
val target : t -> string
val budget_total : t -> int
val budget_used : t -> int

val corpus : t -> Pmrace.Corpus_sched.t
(** The live corpus scheduler backed by [corpus/].  Mutate it only via
    {!add_seed} / {!credit_seed} so changes persist. *)

val bugs : t -> bug_entry list
(** Sorted by (kind, site). *)

val coverage : t -> Pmrace.Hub.delta
(** The aggregate coverage delta (shared fleet-wide achieved set). *)

val open_store : dir:string -> target:string -> budget:int -> (t, string) result
(** Load an existing store directory or initialise a fresh one.  Loading
    validates the recorded target; [budget] overrides the stored total
    (so a restart can extend a campaign) but never the used count. *)

val next_widx : t -> int
(** Allocate the next worker index (persisted, so worker RNG streams stay
    distinct across coordinator restarts). *)

val record_campaigns : t -> int -> unit
(** Account [n] campaigns as used budget and persist. *)

val merge_delta : t -> Pmrace.Hub.delta -> unit
(** Fold a worker's shipped delta into the aggregate and persist. *)

val add_seed : t -> ?pairs:(string * string) list -> Pmrace.Seed.t -> bool
(** Add a seed to the corpus (dedup by fingerprint; existing entries
    absorb [pairs]); persists the entry.  [true] = new entry. *)

val credit_seed : t -> Pmrace.Seed.t -> (string * string) list -> unit
(** Credit an existing corpus entry with newly achieved pairs and
    persist it. *)

val record_bug :
  t ->
  kind:string ->
  site:string ->
  read_sites:string list ->
  members:int ->
  origin:string ->
  first_campaign:int option ->
  bool
(** Record a bug sighting (dedup by (kind, site): members sum, read
    sites union, first origin wins); persists.  [true] = first sighting
    fleet-wide. *)

val budget_remaining : t -> int

(** Compact access summaries for partial-order reduction.

    Every instrumented operation ({!Mem} via {!Env.policy} points)
    summarises to one immediate int: a tag (load / store / read-write /
    flush / fence / opaque) plus a word or cache-line payload.  The
    scheduler's POR mode ({!Sched.Scheduler.run_por}) tests two step
    footprints for independence in O(1) with no allocation; footprints
    cross the [lib/sched] dependency boundary as plain ints, so the
    scheduler never needs to see runtime types.

    Soundness direction: the relation may declare dependent steps that
    actually commute (e.g. an [opaque] multi-op step), never the
    reverse — over-approximating dependence only costs pruning. *)

type t = int
(** Tag in bits 0-2, payload (word index, or line index for flushes)
    in bits 3+. *)

val none : t
(** The step ran no instrumented operation; commutes with everything. *)

val fence : t
val opaque : t
(** A step whose effect is unknown (several instrumented ops, or an
    op the encoding doesn't model); commutes with nothing. *)

val load : int -> t
(** [load word] *)

val store : int -> t
(** [store word] — also used for non-temporal stores. *)

val rw : int -> t
(** [rw word] — a CAS: reads and may write the word. *)

val flush : int -> t
(** [flush word] — records the {e cache line} of [word]. *)

val flush_line : int -> t
(** [flush_line line] — when the caller already has the line index. *)

val of_point : Env.point -> t
(** Summarise one policy point ({!Env.point}); fences carry no address. *)

val tag : t -> int
val payload : t -> int

val line : t -> int
(** The cache line touched (derived for word-level ops). *)

val independent : t -> t -> bool
(** [independent a b] — swapping adjacent steps with these footprints
    provably preserves the pool state and event outcome.  Reflexivity is
    not guaranteed ([independent fence fence = false]); symmetry is. *)

val spin_retry : t -> t -> bool
(** [spin_retry prev next] — the fiber that just executed [prev] is about
    to retry the identical read-modify-write ([rw]) footprint: the shape
    of a failed CAS busy-waiting on a lock word.  Until another step
    touches that word (necessarily a conflicting access, which wakes
    sleepers), every retry observes the same value and persistency state,
    so {!Sched.Scheduler.run_por} parks the spinner instead of letting it
    burn the step budget. *)

val pp : Format.formatter -> t -> unit

(** Execution environment: one per fuzz campaign.

    Binds the PM pool, the checkers, the volatile DRAM store, the shadow
    taint memory, the interleaving policy (before/after hooks invoked at
    every instrumented operation) and the event listeners feeding the
    coverage metrics. *)

type point_kind = P_load | P_store | P_movnt | P_clwb | P_fence | P_cas

type point = { kind : point_kind; instr : Instr.t; addr : int }
(** A preemption point: what is about to execute (or just executed).
    [addr] is [-1] for fences. *)

type event =
  | Ev_load of { instr : Instr.t; tid : int; addr : int; dirty : bool }
  | Ev_store of { instr : Instr.t; tid : int; addr : int }
  | Ev_movnt of { instr : Instr.t; tid : int; addr : int }
  | Ev_clwb of { instr : Instr.t; tid : int; addr : int; dirty_words : int }
      (** [dirty_words] is the number of dirty words in the flushed line
          {e before} the flush — 0 means the flush was redundant *)
  | Ev_fence of { instr : Instr.t; tid : int; persisted : int list }
  | Ev_branch of { instr : Instr.t; tid : int }

type t = {
  pool : Pmem.Pool.t;
  mutable checkers : Checkers.t;
  dram : Dram.t;
  mem_taint : (int, Taint.t) Hashtbl.t;
  mutable policy : policy;
  mutable listeners : (event -> unit) list;
  mutable bound : (event -> unit) array;
      (** pre-bound listeners: installed once per worker, dispatched before
          the transient [listeners], survive {!reset} *)
  evict_seed : int;
  mutable evict_rng : Sched.Rng.t;
  mutable evict_prob : float;
}

and ctx = { env : t; tid : int }
(** A thread's view of the environment. *)

and policy = { before : ctx -> point -> unit; after : ctx -> point -> unit }
(** Interleaving policy hooks; they may call {!Sched.Scheduler.yield}. *)

val null_policy : policy
(** No preemption — used for single-threaded init and recovery code. *)

val preempt_policy : policy
(** Yield before every instrumented operation (plain random scheduling). *)

val create :
  ?capture_images:bool ->
  ?evict_prob:float ->
  ?evict_seed:int ->
  ?eadr:bool ->
  pool_words:int ->
  unit ->
  t
(** Fresh environment with a zeroed pool.  [evict_prob] enables random
    silent cache-line eviction after stores; [eadr] puts the cache
    hierarchy in the persistent domain (§6.6). *)

val of_image : ?capture_images:bool -> Pmem.Pool.image -> t
(** The post-failure world: pool booted from a crash image; DRAM, taint and
    checker state start fresh. *)

val ctx : t -> tid:int -> ctx
val set_policy : t -> policy -> unit

val add_listener : t -> (event -> unit) -> unit
(** Attach a transient listener (cleared by {!reset}); for per-campaign or
    per-trace hooks. *)

val install_bound : t -> (event -> unit) array -> unit
(** Install the permanent listener array.  Bound listeners run on every
    event, before the transient list, and survive {!reset} — workers
    install their coverage-delta handlers once instead of rebuilding
    closure lists per campaign. *)

val emit : t -> event -> unit
val mem_taint : t -> int -> Taint.t
val set_mem_taint : t -> int -> Taint.t -> unit
val annotate_sync : t -> name:string -> addr:int -> len:int -> init:int64 -> unit

val reset_checkers : ?capture_images:bool -> t -> unit
(** Discard checker state accumulated so far (e.g. during pool
    initialisation) while keeping sync-variable annotations. *)

val reset : ?capture_images:bool -> t -> unit
(** Return a reused environment to its just-created state: fresh checkers
    ({e without} sync annotations — re-annotate as for a fresh env),
    cleared DRAM and taint shadow, null policy, no transient listeners, and
    the eviction RNG reseeded from its original seed.  The pool and the
    pre-bound listener array are untouched: reset the pool separately with
    {!Pmem.Pool.reset_to_snapshot}.  This is the persistent-mode engine's
    per-campaign reset path. *)

(* Trace capture: an append-only buffer of instrumented events, filled by
   an Env listener.  The offline analyzer replays these buffers instead of
   consuming events online, so one recorded execution can feed several
   analyses (site graph, lint FSM) without re-running the target. *)

type t = { mutable rev : Env.event list; mutable n : int }

let create () = { rev = []; n = 0 }

let attach t env =
  Env.add_listener env (fun ev ->
      t.rev <- ev :: t.rev;
      t.n <- t.n + 1)

let events t = List.rev t.rev
let length t = t.n
let is_empty t = t.n = 0

let clear t =
  t.rev <- [];
  t.n <- 0

let iter f t = List.iter f (List.rev t.rev)

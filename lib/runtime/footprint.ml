(* Compact per-step access summaries for partial-order reduction.

   A footprint is one immediate int: tag in the low 3 bits, payload
   (word index for word-level ops, line index for flushes) above it.
   The scheduler's POR mode tests two steps for independence with a
   handful of shifts and compares — no allocation, O(1) per query.

   The encoding deliberately collapses a step to its *strongest* single
   op: a step that performs several instrumented ops (possible under
   No_preempt, where the policy never yields) escalates to [opaque],
   which conflicts with everything.  That is sound — treating dependent
   what might be independent only costs pruning, never bugs. *)

type t = int

let tag_none = 0
let tag_load = 1
let tag_store = 2
let tag_rw = 3
let tag_flush = 4
let tag_fence = 5
let tag_opaque = 6

let none = tag_none
let fence = tag_fence
let opaque = tag_opaque
let[@inline] tag (t : t) = t land 7
let[@inline] payload (t : t) = t lsr 3
let load word = (word lsl 3) lor tag_load
let store word = (word lsl 3) lor tag_store
let rw word = (word lsl 3) lor tag_rw
let flush_line line = (line lsl 3) lor tag_flush
let flush word = flush_line (Pmem.Cacheline.line_of_word word)

let of_point (p : Env.point) : t =
  match p.kind with
  | Env.P_load -> load p.addr
  | Env.P_store | Env.P_movnt -> store p.addr
  | Env.P_cas -> rw p.addr
  | Env.P_clwb -> flush p.addr
  | Env.P_fence -> fence

(* The line a footprint touches: flushes carry a line index directly,
   word-level ops derive it.  Only meaningful for tags 1-4. *)
let[@inline] line (t : t) =
  if tag t = tag_flush then payload t else Pmem.Cacheline.line_of_word (payload t)

(* A busy-wait retry signature: the step just executed [prev] and the
   fiber's next pending op is the {e identical} read-modify-write
   footprint — the shape of a failed CAS spinning on a lock word.  Until
   some other step writes, flushes, or fences that word (all of which
   conflict with an [rw] footprint and so wake sleepers), every retry
   observes exactly the same value and persistency state, so the
   scheduler may park the spinner without losing any behaviour.  Plain
   stores and loads are excluded: a fiber legitimately issues identical
   consecutive stores, and parking it would only cost forced wakes. *)
let[@inline] spin_retry (prev : t) (next : t) = prev = next && prev land 7 = tag_rw

(* Independence of two step footprints, grounded in Pool semantics:
   - [none] (a step that ran no instrumented op, e.g. a spin iteration)
     commutes with everything;
   - fences and opaque steps commute with nothing (a fence drains every
     pending line, so it orders against any store/flush; opaque means
     "we don't know what the step did");
   - a flush conflicts with anything on the same cache line (it moves
     the whole line's pending words to durable);
   - two loads always commute;
   - otherwise (word-level with at least one write) they conflict iff
     they touch the same word. *)
let independent (a : t) (b : t) =
  a = tag_none || b = tag_none
  ||
  let ta = a land 7 and tb = b land 7 in
  if ta >= tag_fence || tb >= tag_fence then false
  else if ta = tag_flush || tb = tag_flush then line a <> line b
  else if ta = tag_load && tb = tag_load then true
  else a lsr 3 <> b lsr 3

let pp ppf (t : t) =
  match tag t with
  | 0 -> Format.fprintf ppf "none"
  | 1 -> Format.fprintf ppf "load[%d]" (payload t)
  | 2 -> Format.fprintf ppf "store[%d]" (payload t)
  | 3 -> Format.fprintf ppf "rw[%d]" (payload t)
  | 4 -> Format.fprintf ppf "flush[line %d]" (payload t)
  | 5 -> Format.fprintf ppf "fence"
  | _ -> Format.fprintf ppf "opaque"

(* The instrumented memory operations — PMRace's hooked functions.

   Every operation (a) runs the policy's [before] hook (where the PM-aware
   scheduler injects cond_wait), (b) performs the access with checker
   bookkeeping, (c) notifies listeners, and (d) runs the policy's [after]
   hook (where cond_signal lives).  Addresses are tainted values so that
   layout inconsistencies — stores whose *address* derives from
   non-persisted data — are caught (§4.3, data-flow class 2). *)

open Env

exception Stuck of string
(* Raised by spin locks that cannot make progress outside a scheduled
   execution (e.g. an unreleased persistent lock hit during recovery). *)

let word_of addr = Tval.to_int addr

let maybe_evict env =
  if env.evict_prob > 0. && Sched.Rng.float env.evict_rng < env.evict_prob then begin
    let lines = Pmem.Pool.size env.pool / Pmem.Cacheline.words_per_line in
    let line = Sched.Rng.int env.evict_rng lines in
    match Pmem.Pool.evict_line env.pool line with
    | [] -> ()
    | persisted -> Checkers.on_persisted env.checkers env.pool persisted
  end

let load ctx ~instr addr =
  let env = ctx.env in
  let a = word_of addr in
  env.policy.before ctx { kind = P_load; instr; addr = a };
  let dirty = Pmem.Pool.is_dirty env.pool a in
  let raw = Pmem.Pool.load env.pool a in
  let taint = Taint.union (Tval.taint addr) (Env.mem_taint env a) in
  let taint =
    match Checkers.on_load env.checkers env.pool ~tid:ctx.tid ~instr ~addr:a with
    | Some cand -> Taint.add cand.Candidates.id taint
    | None -> taint
  in
  Env.emit env (Ev_load { instr; tid = ctx.tid; addr = a; dirty });
  env.policy.after ctx { kind = P_load; instr; addr = a };
  Tval.make raw taint

let store_common ctx ~instr ~kind addr value =
  let env = ctx.env in
  let a = word_of addr in
  env.policy.before ctx { kind; instr; addr = a };
  Checkers.on_store env.checkers env.pool ~tid:ctx.tid ~instr ~addr:a
    ~value_taint:(Tval.taint value) ~addr_taint:(Tval.taint addr);
  (match kind with
  | P_store -> Pmem.Pool.store env.pool ~tid:ctx.tid ~instr:(Instr.to_int instr) a (Tval.v value)
  | P_movnt -> Pmem.Pool.movnt env.pool ~tid:ctx.tid ~instr:(Instr.to_int instr) a (Tval.v value)
  | P_load | P_clwb | P_fence | P_cas -> assert false);
  Env.set_mem_taint env a (Tval.taint value);
  (* Under eADR the store is already durable: run the persistence hook so
     sync-variable updates are still detected (§6.6: PM Synchronization
     Inconsistency survives eADR). *)
  if Pmem.Pool.is_eadr env.pool then Checkers.on_persisted env.checkers env.pool [ a ];
  (match kind with
  | P_store -> Env.emit env (Ev_store { instr; tid = ctx.tid; addr = a })
  | _ -> Env.emit env (Ev_movnt { instr; tid = ctx.tid; addr = a }));
  env.policy.after ctx { kind; instr; addr = a };
  maybe_evict env

let store ctx ~instr addr value = store_common ctx ~instr ~kind:P_store addr value
let movnt ctx ~instr addr value = store_common ctx ~instr ~kind:P_movnt addr value

let clwb ctx ~instr addr =
  let env = ctx.env in
  let a = word_of addr in
  env.policy.before ctx { kind = P_clwb; instr; addr = a };
  let dirty_words =
    (* Allocation-free line walk: this runs on every instrumented CLWB. *)
    Pmem.Cacheline.fold_line
      (fun n w -> if Pmem.Pool.is_dirty env.pool w then n + 1 else n)
      0 a
  in
  Pmem.Pool.clwb env.pool a;
  Env.emit env (Ev_clwb { instr; tid = ctx.tid; addr = a; dirty_words });
  env.policy.after ctx { kind = P_clwb; instr; addr = a }

let sfence ctx ~instr =
  let env = ctx.env in
  env.policy.before ctx { kind = P_fence; instr; addr = -1 };
  let persisted = Pmem.Pool.sfence env.pool in
  Checkers.on_persisted env.checkers env.pool persisted;
  Env.emit env (Ev_fence { instr; tid = ctx.tid; persisted });
  env.policy.after ctx { kind = P_fence; instr; addr = -1 }

let persist ctx ~instr addr =
  clwb ctx ~instr addr;
  sfence ctx ~instr

let persist_range ctx ~instr addr ~words =
  let base = word_of addr in
  let line = Pmem.Cacheline.words_per_line in
  let rec flush w =
    if w < base + words then begin
      clwb ctx ~instr (Tval.of_int w);
      flush (w + line)
    end
  in
  flush base;
  sfence ctx ~instr

(* Compare-and-swap: an atomic read-modify-write, a single preemption
   point.  The read side performs candidate detection like [load].
   [nt:true] publishes the new value non-temporally (never PM-dirty),
   modelling a lock-free CAS immediately followed by a flush of its own
   line, as PMDK's internals do for allocator metadata. *)
let cas ?(nt = false) ctx ~instr addr ~expect ~value =
  let env = ctx.env in
  let a = word_of addr in
  env.policy.before ctx { kind = P_cas; instr; addr = a };
  let dirty = Pmem.Pool.is_dirty env.pool a in
  let raw = Pmem.Pool.load env.pool a in
  ignore (Checkers.on_load env.checkers env.pool ~tid:ctx.tid ~instr ~addr:a);
  Env.emit env (Ev_load { instr; tid = ctx.tid; addr = a; dirty });
  let ok = Int64.equal raw (Tval.v expect) in
  if ok then begin
    Checkers.on_store env.checkers env.pool ~tid:ctx.tid ~instr ~addr:a
      ~value_taint:(Tval.taint value) ~addr_taint:(Tval.taint addr);
    if nt then Pmem.Pool.movnt env.pool ~tid:ctx.tid ~instr:(Instr.to_int instr) a (Tval.v value)
    else Pmem.Pool.store env.pool ~tid:ctx.tid ~instr:(Instr.to_int instr) a (Tval.v value);
    Env.set_mem_taint env a (Tval.taint value);
    if Pmem.Pool.is_eadr env.pool then Checkers.on_persisted env.checkers env.pool [ a ];
    Env.emit env (Ev_store { instr; tid = ctx.tid; addr = a })
  end;
  env.policy.after ctx { kind = P_cas; instr; addr = a };
  if ok then maybe_evict env;
  ok

let branch ctx ~instr =
  Env.emit ctx.env (Ev_branch { instr; tid = ctx.tid })

let external_effect ctx ~instr value =
  Checkers.on_external_effect ctx.env.checkers ctx.env.pool ~tid:ctx.tid ~instr
    ~taint:(Tval.taint value)

(* Spin locks over a PM word: 0 = free, 1 = held.  [persist:true] flushes
   the lock word after acquisition/release — that is exactly the persistent
   lock pattern behind the paper's PM Synchronization Inconsistency bugs. *)
let spin_limit = 100_000

let try_lock ctx ~instr addr = cas ctx ~instr addr ~expect:Tval.zero ~value:Tval.one

let spin_lock ?(persist_lock = false) ctx ~instr addr =
  let rec spin n =
    if n > spin_limit then raise (Stuck (Printf.sprintf "spin_lock at %s" (Instr.name instr)));
    if not (try_lock ctx ~instr addr) then spin (n + 1)
  in
  spin 0;
  if persist_lock then persist ctx ~instr addr

let unlock ?(persist_lock = false) ctx ~instr addr =
  store ctx ~instr addr Tval.zero;
  if persist_lock then persist ctx ~instr addr

(* Static instruction identities.

   The paper's LLVM pass assigns every instrumented instruction a unique
   integer id.  Our workloads are written directly against the hook API, so
   each call site registers itself here once, under a stable name.  Sites
   are named after the paper's [file:line] locations (Table 2) where the
   corresponding code exists in the original systems.

   The registry is process-global and sites register lazily from workload
   code, so with the fuzzer's workers running on separate domains (§5)
   registration can race.  All registry state is guarded by one mutex:
   registration is rare (each site pays the lock once, lookups after the
   first hit come from the memoised id at the call site), so the lock is
   not on the fuzzing hot path. *)

type t = int

let lock = Mutex.create ()
let names : (string, int) Hashtbl.t = Hashtbl.create 256
let rev : (int, string) Hashtbl.t = Hashtbl.create 256
let counter = ref 0

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let site name =
  with_lock (fun () ->
      match Hashtbl.find_opt names name with
      | Some id -> id
      | None ->
          let id = !counter in
          incr counter;
          Hashtbl.add names name id;
          Hashtbl.add rev id name;
          id)

let name id =
  with_lock (fun () ->
      match Hashtbl.find_opt rev id with
      | Some n -> n
      | None -> Printf.sprintf "<instr#%d>" id)

let count () = with_lock (fun () -> !counter)
let compare = Int.compare
let equal = Int.equal
let to_int id = id

let of_int id =
  let n = count () in
  if id < 0 || id >= n then invalid_arg (Printf.sprintf "Instr.of_int: unknown id %d" id);
  id

let pp ppf id = Fmt.string ppf (name id)

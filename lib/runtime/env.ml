(* Execution environment: one per fuzz campaign.

   Binds together the PM pool, the checkers, the volatile DRAM store, the
   shadow taint memory, the interleaving policy, and the event listeners
   that feed coverage metrics and the shared-access queue. *)

type point_kind = P_load | P_store | P_movnt | P_clwb | P_fence | P_cas
type point = { kind : point_kind; instr : Instr.t; addr : int (* -1 when not applicable *) }

type event =
  | Ev_load of { instr : Instr.t; tid : int; addr : int; dirty : bool }
  | Ev_store of { instr : Instr.t; tid : int; addr : int }
  | Ev_movnt of { instr : Instr.t; tid : int; addr : int }
  | Ev_clwb of { instr : Instr.t; tid : int; addr : int; dirty_words : int }
  | Ev_fence of { instr : Instr.t; tid : int; persisted : int list }
  | Ev_branch of { instr : Instr.t; tid : int }

type t = {
  pool : Pmem.Pool.t;
  mutable checkers : Checkers.t;
  dram : Dram.t;
  mem_taint : (int, Taint.t) Hashtbl.t;
  mutable policy : policy;
  mutable listeners : (event -> unit) list;
  (* Pre-bound listeners: installed once per worker (not rebuilt per
     campaign) and dispatched before the transient [listeners].  They
     survive [reset]. *)
  mutable bound : (event -> unit) array;
  evict_seed : int;
  mutable evict_rng : Sched.Rng.t;
  mutable evict_prob : float;
}

and ctx = { env : t; tid : int }

and policy = { before : ctx -> point -> unit; after : ctx -> point -> unit }

let null_policy = { before = (fun _ _ -> ()); after = (fun _ _ -> ()) }

(* The plain interleaving policy: every instrumented operation is a
   preemption point. *)
let preempt_policy = { before = (fun _ _ -> Sched.Scheduler.yield ()); after = (fun _ _ -> ()) }

let create ?(capture_images = true) ?(evict_prob = 0.) ?(evict_seed = 7) ?(eadr = false)
    ~pool_words () =
  {
    pool = Pmem.Pool.create ~eadr ~words:pool_words ();
    checkers = Checkers.create ~capture_images ();
    dram = Dram.create ();
    mem_taint = Hashtbl.create 256;
    policy = null_policy;
    listeners = [];
    bound = [||];
    evict_seed;
    evict_rng = Sched.Rng.create evict_seed;
    evict_prob;
  }

(* Boot an environment from a crash image: the post-failure world.  DRAM
   state, shadow taint and checker state all start fresh. *)
let of_image ?(capture_images = false) (image : Pmem.Pool.image) =
  {
    pool = Pmem.Pool.of_image image;
    checkers = Checkers.create ~capture_images ();
    dram = Dram.create ();
    mem_taint = Hashtbl.create 256;
    policy = null_policy;
    listeners = [];
    bound = [||];
    evict_seed = 7;
    evict_rng = Sched.Rng.create 7;
    evict_prob = 0.;
  }

let ctx t ~tid = { env = t; tid }
let set_policy t p = t.policy <- p
let add_listener t f = t.listeners <- f :: t.listeners
let install_bound t fs = t.bound <- fs

let emit t ev =
  let bound = t.bound in
  for i = 0 to Array.length bound - 1 do
    bound.(i) ev
  done;
  List.iter (fun f -> f ev) t.listeners

let mem_taint t addr =
  match Hashtbl.find_opt t.mem_taint addr with Some taint -> taint | None -> Taint.empty

let set_mem_taint t addr taint =
  if Taint.is_empty taint then Hashtbl.remove t.mem_taint addr
  else Hashtbl.replace t.mem_taint addr taint

let annotate_sync t ~name ~addr ~len ~init = Checkers.annotate_sync t.checkers ~name ~addr ~len ~init

(* Discard checker state accumulated so far (e.g. during pool
   initialisation) while keeping sync-variable annotations.  Campaign
   results must only reflect the fuzzed execution. *)
let reset_checkers ?(capture_images = true) t =
  let vars = Checkers.sync_vars t.checkers in
  t.checkers <- Checkers.create ~capture_images ();
  List.iter
    (fun v ->
      Checkers.annotate_sync t.checkers ~name:v.Checkers.sv_name ~addr:v.Checkers.sv_addr
        ~len:v.Checkers.sv_len ~init:v.Checkers.sv_init)
    vars;
  Hashtbl.reset t.mem_taint

(* Return a reused environment to its just-created state — everything a
   fresh [create] would give, except the pool (reset separately via
   [Pmem.Pool.reset_to_snapshot]) and the pre-bound listener array, which
   is installed once per worker and deliberately survives.  Sync-variable
   annotations do NOT survive: the caller re-annotates, exactly as it would
   on a fresh environment. *)
let reset ?(capture_images = true) t =
  t.checkers <- Checkers.create ~capture_images ();
  Dram.clear t.dram;
  Hashtbl.reset t.mem_taint;
  t.policy <- null_policy;
  t.listeners <- [];
  t.evict_rng <- Sched.Rng.create t.evict_seed

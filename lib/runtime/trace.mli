(** Trace capture: record an execution's instrumented event stream for
    offline analysis.

    The fuzzer's coverage metrics consume events online and throw them
    away; the offline persistency analyzer ({!Analysis} in [lib/analysis])
    instead wants the whole, ordered stream of one or more executions.  A
    trace is an append-only buffer of {!Env.event}s in program order,
    filled by an {!Env.add_listener} subscription. *)

type t

val create : unit -> t

val attach : t -> Env.t -> unit
(** Subscribe to an environment; every subsequent event is appended. *)

val events : t -> Env.event list
(** The captured events, in the order they were emitted. *)

val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop the captured events (subscriptions stay live). *)

val iter : (Env.event -> unit) -> t -> unit
(** Iterate in emission order without materialising the list. *)

(* Per-execution volatile (DRAM) state.

   Workloads sometimes keep volatile structures next to the PM pool — e.g.
   memcached's DRAM hash index and LRU lists, rebuilt from persistent slabs
   after a crash.  This module is a small typed heterogeneous store keyed
   by first-class keys (implemented with the local-exception universal
   type), so each workload can stash its own volatile state in the
   execution environment without the environment knowing its type.
   Crashing simply discards the store, exactly like real DRAM. *)

type 'a key = { uid : int; name : string; inject : 'a -> exn; project : exn -> 'a option }

type t = { mutable bindings : (int * exn) list }

(* Key identities are allocated from an atomic counter: workload modules
   create keys at load time, but the fuzzer's workers (§5) also create
   them lazily from several domains, and a plain shared [ref] would hand
   out duplicate uids under that race. *)
let key_counter = Atomic.make 0

let key (type a) ~name () =
  let module M = struct
    exception E of a
  end in
  {
    uid = 1 + Atomic.fetch_and_add key_counter 1;
    name;
    inject = (fun x -> M.E x);
    project = (function M.E x -> Some x | _ -> None);
  }

let create () = { bindings = [] }

let set t k v =
  t.bindings <- (k.uid, k.inject v) :: List.filter (fun (uid, _) -> uid <> k.uid) t.bindings

let find t k =
  match List.assoc_opt k.uid t.bindings with None -> None | Some e -> k.project e

let find_or_add t k make =
  match find t k with
  | Some v -> v
  | None ->
      let v = make () in
      set t k v;
      v

let name k = k.name
let clear t = t.bindings <- []

(** Runtime PM inconsistency checkers (§4.3 of the paper).

    Tracks inconsistency candidates (loads of non-persisted data), pending
    durable side effects (stores of tainted data), confirmed PM
    Inter-/Intra-thread Inconsistencies (the side effect became durable
    while its source data was still volatile — a crash image is captured at
    that instant), and PM Synchronization Inconsistencies (persisted updates
    of annotated synchronization variables). *)

type t

type inconsistency = {
  source : Candidates.cand;
  eff_addr : int;  (** word carrying the durable side effect, [-1] if external *)
  eff_instr : Instr.t;
  eff_tid : int;
  addr_flow : bool;  (** the taint reached the store through its address *)
  external_effect : bool;
  image : Pmem.Pool.image option;  (** base durable state at confirmation *)
  crash : Pmem.Crash_images.state option;
      (** full crash surface at confirmation — [image] plus the in-flight
          lines, for {!Pmem.Crash_images} enumeration; [image] is always
          [Option.map Pmem.Crash_images.base crash] *)
  eff_words : int list;
}

type sync_var = { sv_name : string; sv_addr : int; sv_len : int; sv_init : int64 }

type sync_event = {
  var : sync_var;
  sy_addr : int;
  sy_value : int64;
  sy_image : Pmem.Pool.image option;
  sy_crash : Pmem.Crash_images.state option;  (** as {!inconsistency.crash} *)
}

type side_effect = {
  se_addr : int;
  se_instr : Instr.t;
  se_tid : int;
  se_addr_flow : bool;
  se_sources : Candidates.cand list;
}

val create : ?capture_images:bool -> unit -> t
(** [capture_images:false] skips crash-image copies (used when only
    coverage, not validation, is needed). *)

val candidates : t -> Candidates.t

val annotate_sync : t -> name:string -> addr:int -> len:int -> init:int64 -> unit
(** The [pm_sync_var_hint(size, init_val)] annotation of §5. *)

val sync_vars : t -> sync_var list

val annotation_count : t -> int
(** Number of {e distinct} annotation names — one source annotation may
    cover many words (e.g. a per-bucket lock field). *)

val on_load : t -> Pmem.Pool.t -> tid:int -> instr:Instr.t -> addr:int -> Candidates.cand option
(** Candidate creation; the caller adds the candidate id to the loaded
    value's taint. *)

val on_store :
  t ->
  Pmem.Pool.t ->
  tid:int ->
  instr:Instr.t ->
  addr:int ->
  value_taint:Taint.t ->
  addr_taint:Taint.t ->
  unit
(** Registers a pending durable side effect when value or address taint
    traces back to still-unpersisted data. *)

val on_persisted : t -> Pmem.Pool.t -> int list -> unit
(** Called with the words a fence (or eviction) just made durable; confirms
    inconsistencies and records persisted sync-variable updates. *)

val on_external_effect : t -> Pmem.Pool.t -> tid:int -> instr:Instr.t -> taint:Taint.t -> unit
(** A durable effect outside PM (disk, socket): confirmed immediately. *)

val inconsistencies : t -> inconsistency list
val sync_events : t -> sync_event list
val pending_effects : t -> side_effect list
val inconsistency_count : t -> Candidates.kind -> int
val pp_inconsistency : Format.formatter -> inconsistency -> unit
val pp_sync_event : Format.formatter -> sync_event -> unit

(* The PM inconsistency checkers (§4.3).

   - Candidates: created at load time (delegated to [Candidates]).
   - PM Inter-/Intra-thread Inconsistency: a PM store whose value or target
     address carries taint from a live candidate is a *pending* durable
     side effect; it is confirmed the moment the store becomes durable
     (fence or eviction) while the source data is still not persisted.  At
     that instant a crash image is captured: it contains the side effect
     but not the data it depends on — exactly the state a real crash would
     leave behind.
   - PM Synchronization Inconsistency: every persisted update of an
     annotated synchronization variable to a non-initial value is recorded
     (once per (variable, value) pair, cf. "PMRace checks each type of
     update operation for only one time"). *)

type side_effect = {
  se_addr : int;
  se_instr : Instr.t;
  se_tid : int;
  se_addr_flow : bool; (* taint reached the store through its address *)
  se_sources : Candidates.cand list; (* candidates live when the store executed *)
}

type inconsistency = {
  source : Candidates.cand;
  eff_addr : int;
  eff_instr : Instr.t;
  eff_tid : int;
  addr_flow : bool;
  external_effect : bool; (* e.g. a write to disk or a socket *)
  image : Pmem.Pool.image option; (* durable state at confirmation *)
  crash : Pmem.Crash_images.state option; (* full crash surface at confirmation *)
  eff_words : int list; (* words carrying the durable side effect *)
}

type sync_var = { sv_name : string; sv_addr : int; sv_len : int; sv_init : int64 }

type sync_event = {
  var : sync_var;
  sy_addr : int;
  sy_value : int64;
  sy_image : Pmem.Pool.image option;
  sy_crash : Pmem.Crash_images.state option;
}

type inc_key = { ik_write : Instr.t; ik_read : Instr.t; ik_eff : Instr.t; ik_kind : Candidates.kind }

type t = {
  cands : Candidates.t;
  mutable pending : side_effect list;
  mutable inconsistencies : inconsistency list;
  uniq_inc : (inc_key, unit) Hashtbl.t;
  mutable sync_vars : sync_var list;
  mutable sync_events : sync_event list;
  uniq_sync : (string * int64, unit) Hashtbl.t;
  capture_images : bool;
}

let create ?(capture_images = true) () =
  {
    cands = Candidates.create ();
    pending = [];
    inconsistencies = [];
    uniq_inc = Hashtbl.create 32;
    sync_vars = [];
    sync_events = [];
    uniq_sync = Hashtbl.create 16;
    capture_images;
  }

let candidates t = t.cands

let annotate_sync t ~name ~addr ~len ~init =
  if len <= 0 then invalid_arg "Checkers.annotate_sync: len must be positive";
  t.sync_vars <- { sv_name = name; sv_addr = addr; sv_len = len; sv_init = init } :: t.sync_vars

let sync_vars t = t.sync_vars

(* One source-code annotation may cover many words (e.g. a lock field
   instantiated per bucket); the annotation count is per distinct name, as
   the paper counts programmer effort. *)
let annotation_count t =
  List.sort_uniq String.compare (List.map (fun v -> v.sv_name) t.sync_vars) |> List.length

let sync_var_of_addr t w =
  List.find_opt (fun v -> w >= v.sv_addr && w < v.sv_addr + v.sv_len) t.sync_vars

(* Load hook: returns the candidate created by reading non-persisted data,
   if any.  The caller attaches the candidate id to the value's taint. *)
let on_load t pool ~tid ~instr ~addr =
  match Pmem.Pool.dirty_writer pool addr with
  | None -> None
  | Some w ->
      Some
        (Candidates.register t.cands ~addr ~read_instr:instr ~read_tid:tid
           ~write_instr:(Instr.of_int w.Pmem.Pool.instr) ~write_tid:w.Pmem.Pool.tid)

(* A taint label is "live" when the data it came from is still dirty: a
   crash now would lose the source while the dependent effect survives. *)
let live_sources t pool taint =
  Taint.labels taint
  |> List.filter_map (fun l ->
         match Candidates.find t.cands l with
         | Some c when Pmem.Pool.is_dirty pool c.Candidates.addr -> Some c
         | Some _ | None -> None)

(* Store hook: register a pending durable side effect when the stored value
   or the store address is derived from live non-persisted data. *)
let on_store t pool ~tid ~instr ~addr ~value_taint ~addr_taint =
  let v_sources = live_sources t pool value_taint in
  let a_sources = live_sources t pool addr_taint in
  (* A newer store to the same word supersedes the old pending effect. *)
  t.pending <- List.filter (fun se -> se.se_addr <> addr) t.pending;
  if v_sources <> [] || a_sources <> [] then
    t.pending <-
      {
        se_addr = addr;
        se_instr = instr;
        se_tid = tid;
        se_addr_flow = a_sources <> [];
        se_sources = a_sources @ v_sources;
      }
      :: t.pending

let record_inconsistency t pool ~source ~eff_addr ~eff_instr ~eff_tid ~addr_flow ~external_effect
    ~eff_words =
  let key =
    {
      ik_write = source.Candidates.write_instr;
      ik_read = source.Candidates.read_instr;
      ik_eff = eff_instr;
      ik_kind = source.Candidates.kind;
    }
  in
  if not (Hashtbl.mem t.uniq_inc key) then begin
    Hashtbl.add t.uniq_inc key ();
    let crash = if t.capture_images then Some (Pmem.Crash_images.capture pool) else None in
    let image = Option.map Pmem.Crash_images.base crash in
    t.inconsistencies <-
      { source; eff_addr; eff_instr; eff_tid; addr_flow; external_effect; image; crash; eff_words }
      :: t.inconsistencies
  end

(* Persistence hook: called with the words that just became durable (after
   a fence or an eviction).  Confirms pending side effects whose sources
   are still non-persisted, and records sync-variable updates that are now
   durable with a non-initial value. *)
let on_persisted t pool persisted =
  let confirm se =
    match List.filter (fun c -> Pmem.Pool.is_dirty pool c.Candidates.addr) se.se_sources with
    | [] -> () (* the window closed before the effect became durable *)
    | live ->
        List.iter
          (fun source ->
            record_inconsistency t pool ~source ~eff_addr:se.se_addr ~eff_instr:se.se_instr
              ~eff_tid:se.se_tid ~addr_flow:se.se_addr_flow ~external_effect:false
              ~eff_words:[ se.se_addr ])
          live
  in
  List.iter
    (fun w ->
      (match List.find_opt (fun se -> se.se_addr = w) t.pending with
      | Some se ->
          t.pending <- List.filter (fun se' -> se' != se) t.pending;
          confirm se
      | None -> ());
      match sync_var_of_addr t w with
      | Some var ->
          let v = Pmem.Pool.peek pool w in
          if not (Int64.equal v var.sv_init) && not (Hashtbl.mem t.uniq_sync (var.sv_name, v))
          then begin
            Hashtbl.add t.uniq_sync (var.sv_name, v) ();
            let crash = if t.capture_images then Some (Pmem.Crash_images.capture pool) else None in
            let image = Option.map Pmem.Crash_images.base crash in
            t.sync_events <-
              { var; sy_addr = w; sy_value = v; sy_image = image; sy_crash = crash }
              :: t.sync_events
          end
      | None -> ())
    persisted

(* Durable side effects outside PM (disk writes, sockets, ...): confirmed
   immediately since they cannot be rolled back by a crash. *)
let on_external_effect t pool ~tid ~instr ~taint =
  List.iter
    (fun source ->
      record_inconsistency t pool ~source ~eff_addr:(-1) ~eff_instr:instr ~eff_tid:tid
        ~addr_flow:false ~external_effect:true ~eff_words:[])
    (live_sources t pool taint)

let inconsistencies t = List.rev t.inconsistencies
let sync_events t = List.rev t.sync_events
let pending_effects t = t.pending

let inconsistency_count t kind =
  List.length
    (List.filter (fun i -> i.source.Candidates.kind = kind) t.inconsistencies)

let pp_inconsistency ppf i =
  Fmt.pf ppf "%a-Inconsistency: write=%a read=%a effect=%a%s%s" Candidates.pp_kind
    i.source.Candidates.kind Instr.pp i.source.Candidates.write_instr Instr.pp
    i.source.Candidates.read_instr Instr.pp i.eff_instr
    (if i.addr_flow then " [addr-flow]" else "")
    (if i.external_effect then " [external]" else "")

let pp_sync_event ppf e =
  Fmt.pf ppf "Sync-Inconsistency: var=%s addr=%d value=%Ld (expected init %Ld)" e.var.sv_name
    e.sy_addr e.sy_value e.var.sv_init

(* The running example of the paper's Figure 1, as a tiny fuzzing target.

   Thread-1 (a [Put]): acquires the persistent lock g, stores a value to
   the shared variable x, performs unrelated work, and only then flushes x.
   Thread-2 (a [Get]): reads x (possibly non-persisted), writes what it
   read to y and flushes y immediately — a durable side effect based on
   non-persisted data.  A crash after y persists and before x does leaves
   y <> x in PM: a PM Inter-thread Inconsistency.  The persisted lock g is
   never reinitialised by recovery: a PM Synchronization Inconsistency. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let x_off = Pmdk.Layout.root_base (* shared variable x *)
let y_off = Pmdk.Layout.root_base + 8 (* y, in its own cache line *)
let g_off = Pmdk.Layout.root_base + 16 (* the lock g *)

let i_lock = Instr.site "figure1.c:lock_g"
let i_unlock = Instr.site "figure1.c:unlock_g"
let i_store_x = Instr.site "figure1.c:store_x"
let i_flush_x = Instr.site "figure1.c:flush_x"
let i_read_x = Instr.site "figure1.c:read_x"
let i_store_y = Instr.site "figure1.c:store_y"
let i_busy = Instr.site "figure1.c:busy_work"
let i_b_put = Instr.site "figure1.c:put_entry"
let i_b_get = Instr.site "figure1.c:get_entry"

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx

let annotate (env : Env.t) =
  Env.annotate_sync env ~name:"figure1.c:g" ~addr:g_off ~len:1 ~init:0L

let put ctx value =
  Mem.branch ctx ~instr:i_b_put;
  Mem.spin_lock ~persist_lock:true ctx ~instr:i_lock (Tval.of_int g_off);
  Mem.store ctx ~instr:i_store_x (Tval.of_int x_off) (Tval.of_int value);
  (* Unrelated work before the flush: the inconsistency window. *)
  for i = 0 to 3 do
    ignore (Mem.load ctx ~instr:i_busy (Tval.of_int (y_off + 1 + i)))
  done;
  Mem.persist ctx ~instr:i_flush_x (Tval.of_int x_off);
  Mem.unlock ~persist_lock:true ctx ~instr:i_unlock (Tval.of_int g_off)

let get ctx =
  Mem.branch ctx ~instr:i_b_get;
  let x = Mem.load ctx ~instr:i_read_x (Tval.of_int x_off) in
  Mem.store ctx ~instr:i_store_y (Tval.of_int y_off) x;
  Mem.persist ctx ~instr:i_store_y (Tval.of_int y_off)

let run_op ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { value; _ } | Update { value; _ } -> put ctx value
  | Get _ | Scan _ -> get ctx
  | Delete _ -> put ctx 0
  | Incr _ | Decr _ | Append _ | Prepend _ -> get ctx
  | Cas { value; _ } -> put ctx value
  | Touch _ | Flush_all | Stats -> get ctx

(* Figure 1's program has no recovery code at all. *)
let recover (_ : Env.t) = ()

let target : Pmrace.Target.t =
  {
    name = "figure1";
    version = "paper-fig1";
    scope = "running example";
    concurrency = "lock-based";
    pool_words = 1024;
    expensive_init = false;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; Pmrace.Seed.KGet ];
        key_range = 4;
        value_range = 100;
        threads = 2;
        ops_per_thread = 3;
      };
    known_bugs =
      [
        {
          kb_id = 101;
          kb_type = `Inter;
          kb_new = true;
          kb_write_site = Some "figure1.c:store_x";
          kb_read_site = Some "figure1.c:read_x";
          kb_description = "y written from non-persisted x";
          kb_consequence = "y <> x after recovery";
        };
        {
          kb_id = 102;
          kb_type = `Sync;
          kb_new = true;
          kb_write_site = Some "figure1.c:g";
          kb_read_site = None;
          kb_description = "persistent lock g not reinitialised";
          kb_consequence = "hang";
        };
      ];
    whitelist_sites = [];
  }

(* ------------------------------------------------------------------ *)
(* figure1-planted: the opt-in ground-truth variant for the
   second-generation detectors.  Two seeded taxonomy bugs on top of the
   Figure 1 program:

   - ordering: [put] releases the lock BEFORE x is flushed, so the
     likely invariant "store_x durable before unlock_g" (mined from the
     correct figure1) is violated in every execution;
   - missing recovery-path flush: recovery writes a progress marker to
     PM and never flushes it, so the marker is dirty when recovery ends.

   Opt-in: reachable through [Registry.planted] / [Registry.find] only,
   never listed in [Registry.names], so ordinary sessions cannot pick it
   up by accident.  The one extra site is registered lazily — a toplevel
   [Instr.site] here would shift every later site id and break the
   pinned coverage goldens. *)

let r_off = Pmdk.Layout.root_base + 24 (* recovery progress marker *)
let i_recover_mark = lazy (Instr.site "figure1.c:recover_mark")

let put_planted ctx value =
  Mem.branch ctx ~instr:i_b_put;
  Mem.spin_lock ~persist_lock:true ctx ~instr:i_lock (Tval.of_int g_off);
  Mem.store ctx ~instr:i_store_x (Tval.of_int x_off) (Tval.of_int value);
  for i = 0 to 3 do
    ignore (Mem.load ctx ~instr:i_busy (Tval.of_int (y_off + 1 + i)))
  done;
  (* BUG (ordering): the lock is released while x is still volatile. *)
  Mem.unlock ~persist_lock:true ctx ~instr:i_unlock (Tval.of_int g_off);
  Mem.persist ctx ~instr:i_flush_x (Tval.of_int x_off)

let run_op_planted ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { value; _ } | Update { value; _ } -> put_planted ctx value
  | Get _ | Scan _ -> get ctx
  | Delete _ -> put_planted ctx 0
  | Incr _ | Decr _ | Append _ | Prepend _ -> get ctx
  | Cas { value; _ } -> put_planted ctx value
  | Touch _ | Flush_all | Stats -> get ctx

let recover_planted (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  (* BUG (missing recovery-path flush): the marker never reaches durable. *)
  Mem.store ctx ~instr:(Lazy.force i_recover_mark) (Tval.of_int r_off) (Tval.of_int 1)

let planted : Pmrace.Target.t =
  {
    target with
    name = "figure1-planted";
    scope = "seeded taxonomy bugs (detector ground truth)";
    run_op = run_op_planted;
    recover = recover_planted;
    known_bugs =
      target.known_bugs
      @ [
          {
            kb_id = 103;
            kb_type = `Other;
            kb_new = true;
            kb_write_site = Some "figure1.c:unlock_g";
            kb_read_site = None;
            kb_description = "lock released before x is durable (ordering)";
            kb_consequence = "order store_x -> unlock_g invariant violated";
          };
          {
            kb_id = 104;
            kb_type = `Other;
            kb_new = true;
            kb_write_site = Some "figure1.c:recover_mark";
            kb_read_site = None;
            kb_description = "recovery marker written but never flushed";
            kb_consequence = "marker lost at the next crash";
          };
        ];
  }

(* The tested concurrent PM systems (paper Table 1), plus the Figure 1
   running example used by the quickstart. *)

let all : Pmrace.Target.t list =
  [ Pclht.target; Clevel.target; Cceh.target; Fastfair.target; Memcached.target ]

let with_examples = Figure1.target :: all

(* Opt-in seeded-bug variants: resolvable by exact name, never listed —
   ordinary sessions and the CI sweep cannot pick them up by accident. *)
let planted : Pmrace.Target.t list = [ Figure1.planted; Tornstore.target ]

let find name =
  List.find_opt
    (fun (t : Pmrace.Target.t) -> String.equal t.name name)
    (with_examples @ planted)

let names () = List.map (fun (t : Pmrace.Target.t) -> t.name) with_examples

(* Table 1 rows: system, version, scope, concurrency. *)
let table1 () =
  List.map
    (fun (t : Pmrace.Target.t) -> (t.name, t.version, t.scope, t.concurrency))
    all

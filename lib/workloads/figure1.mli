(** The running example of the paper's Figure 1, as a tiny fuzzing target:
    two threads over a shared variable [x], a derived variable [y], and a
    persisted lock [g] that recovery never resets. *)

val x_off : int
(** PM word of the shared variable x. *)

val y_off : int
(** PM word of y (its own cache line). *)

val g_off : int
(** PM word of the lock g. *)

val put : Runtime.Env.ctx -> int -> unit
(** Thread-1's path: lock g, store x, delayed flush, unlock. *)

val get : Runtime.Env.ctx -> unit
(** Thread-2's path: read x, write it to y, flush y. *)

val target : Pmrace.Target.t

val r_off : int
(** PM word of the planted variant's recovery progress marker. *)

val planted : Pmrace.Target.t
(** ["figure1-planted"]: the opt-in ground-truth variant for the
    second-generation detectors.  Its [put] releases the lock before x is
    flushed (violating the mined "store_x durable before unlock_g"
    invariant in every execution) and its recovery writes a marker word
    it never flushes (the missing-recovery-path-flush class).  Reachable
    by name through {!Registry.find} but excluded from
    {!Registry.names}/{!Registry.with_examples}. *)

(** The tested concurrent PM systems (paper Table 1) and lookup helpers. *)

val all : Pmrace.Target.t list
(** The five systems of Table 1, in the paper's order. *)

val with_examples : Pmrace.Target.t list
(** [all] plus the Figure 1 running example. *)

val planted : Pmrace.Target.t list
(** Opt-in seeded-bug variants (detector ground truth), e.g.
    ["figure1-planted"].  Resolvable through {!find} by exact name but
    excluded from {!names} and {!with_examples}. *)

val find : string -> Pmrace.Target.t option
(** Searches [with_examples] and [planted]. *)

val names : unit -> string list
(** Names of [with_examples] only — planted variants are not listed. *)

val table1 : unit -> (string * string * string * string) list
(** (system, version, scope, concurrency) rows. *)

(* torn-planted: a seeded torn-store bug that only an enumerated crash
   image exposes (ground truth for {!Pmem.Crash_images}).

   A writer (a [Put]) stores the same value to two fields A and B on
   different cache lines and never flushes either — the pair is meant to
   be persisted atomically later, so recovery treats "A = B" as the sign
   of a consistent pair.  A reader (a [Get]) loads B (possibly
   non-persisted), derives DST from it, and persists DST immediately —
   the classic durable side effect of volatile data, confirmed by the
   inter-thread checker with crash surface {A, B} in flight.

   Recovery rolls DST back whenever the source pair is consistent, so on
   the *base* crash image (neither A nor B drained: both still 0) the
   candidate validates as a false positive — single-image validation
   misses the bug.  But A and B sit on different cache lines, so the
   hardware may evict A's line and not B's: on that enumerated image the
   pair is torn (A <> B), recovery wrongly trusts it and keeps DST.  The
   bug surfaces only at a crash-image budget >= 2 ([--crash-images 4] in
   the CI smoke).

   Opt-in via [Registry.planted], like figure1-planted.  Every site here
   is registered lazily: this module is reachable only through the
   registry, and a toplevel [Instr.site] would shift every later site id
   and break the pinned coverage goldens. *)

module Mem = Runtime.Mem
module Tval = Runtime.Tval
module Instr = Runtime.Instr
module Env = Runtime.Env

let a_off = Pmdk.Layout.root_base (* field A *)
let b_off = Pmdk.Layout.root_base + 8 (* field B, its own cache line *)
let dst_off = Pmdk.Layout.root_base + 16 (* derived value, its own line *)

let i_store_a = lazy (Instr.site "tornstore.c:store_a")
let i_store_b = lazy (Instr.site "tornstore.c:store_b")
let i_read_b = lazy (Instr.site "tornstore.c:read_b")
let i_store_dst = lazy (Instr.site "tornstore.c:store_dst")
let i_flush_dst = lazy (Instr.site "tornstore.c:flush_dst")
let i_b_put = lazy (Instr.site "tornstore.c:put_entry")
let i_b_get = lazy (Instr.site "tornstore.c:get_entry")
let i_r_read = lazy (Instr.site "tornstore.c:recover_read")
let i_r_reset = lazy (Instr.site "tornstore.c:recover_reset")

let init (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-1) in
  Pmdk.Objpool.create ctx

let annotate (_ : Env.t) = ()

(* The pair is written cached and never flushed here; a later (never
   modelled) transaction would persist it atomically.  [v + 1] keeps the
   stored value distinguishable from the initial 0. *)
let put ctx value =
  Mem.branch ctx ~instr:(Lazy.force i_b_put);
  let v = Tval.of_int (value + 1) in
  Mem.store ctx ~instr:(Lazy.force i_store_a) (Tval.of_int a_off) v;
  Mem.store ctx ~instr:(Lazy.force i_store_b) (Tval.of_int b_off) v

let get ctx =
  Mem.branch ctx ~instr:(Lazy.force i_b_get);
  let x = Mem.load ctx ~instr:(Lazy.force i_read_b) (Tval.of_int b_off) in
  Mem.store ctx ~instr:(Lazy.force i_store_dst) (Tval.of_int dst_off) x;
  Mem.persist ctx ~instr:(Lazy.force i_flush_dst) (Tval.of_int dst_off)

let run_op ctx (op : Pmrace.Seed.op) =
  match op with
  | Put { value; _ } | Update { value; _ } -> put ctx value
  | Get _ | Scan _ -> get ctx
  | Delete _ -> put ctx 0
  | Incr _ | Decr _ | Append _ | Prepend _ -> get ctx
  | Cas { value; _ } -> put ctx value
  | Touch _ | Flush_all | Stats -> get ctx

(* Recovery validates DST against the source pair: a consistent pair
   (A = B) means DST may hold a value the crash made durable too early,
   so it is rolled back.  BUG: a torn pair (one line drained, the other
   not) is treated as evidence that the pair-write was mid-flight and
   DST is kept — exactly backwards, the torn case is when DST's source
   was never durable. *)
let recover (env : Env.t) =
  let ctx = Env.ctx env ~tid:(-2) in
  let read off = Mem.load ctx ~instr:(Lazy.force i_r_read) (Tval.of_int off) in
  let a = read a_off and b = read b_off and d = read dst_off in
  if (not (Int64.equal (Tval.v d) 0L)) && Int64.equal (Tval.v a) (Tval.v b) then begin
    Mem.store ctx ~instr:(Lazy.force i_r_reset) (Tval.of_int dst_off) (Tval.of_int 0);
    Mem.persist ctx ~instr:(Lazy.force i_r_reset) (Tval.of_int dst_off)
  end

let target : Pmrace.Target.t =
  {
    name = "torn-planted";
    version = "crash-image ground truth";
    scope = "seeded torn-store bug (enumeration ground truth)";
    concurrency = "lock-free";
    pool_words = 1024;
    expensive_init = false;
    init;
    annotate;
    recover;
    run_op;
    profile =
      {
        Pmrace.Seed.supported = [ Pmrace.Seed.KPut; Pmrace.Seed.KGet ];
        key_range = 4;
        value_range = 100;
        threads = 2;
        ops_per_thread = 3;
      };
    known_bugs =
      [
        {
          kb_id = 105;
          kb_type = `Inter;
          kb_new = true;
          kb_write_site = Some "tornstore.c:store_b";
          kb_read_site = Some "tornstore.c:read_b";
          kb_description = "DST persisted from non-persisted B; recovery keeps DST on a torn A/B pair";
          kb_consequence = "only a non-default enumerated crash image (A's line evicted) survives recovery";
        };
      ];
    whitelist_sites = [];
  }

(* Achieved-vs-possible alias-pair accounting.

   The possible set comes from the site graph (the static pre-pass
   analogue); achieved pairs are fed in dynamically by whoever watches
   executions (Pmrace.Alias_cov, or the analyzer's own trace replay).
   Keeping both sets here gives coverage a denominator and the fuzzer a
   cheap uncovered-pair oracle. *)

module Instr = Runtime.Instr

type pair = { pw : Instr.t; pr : Instr.t }

type t = {
  poss : (Instr.t * Instr.t, unit) Hashtbl.t;
  ach : (Instr.t * Instr.t, unit) Hashtbl.t;
  mutable beyond : int; (* achieved pairs outside the possible set *)
}

let create () = { poss = Hashtbl.create 64; ach = Hashtbl.create 64; beyond = 0 }

let add_possible t ~write ~read = Hashtbl.replace t.poss (write, read) ()

let of_site_graph g =
  let t = create () in
  List.iter (fun (w, r) -> add_possible t ~write:w ~read:r) (Site_graph.possible_pairs g);
  t

let mark_achieved t ~write ~read =
  if not (Hashtbl.mem t.ach (write, read)) then begin
    Hashtbl.replace t.ach (write, read) ();
    if not (Hashtbl.mem t.poss (write, read)) then t.beyond <- t.beyond + 1
  end

let sorted_pairs tbl =
  Hashtbl.fold (fun (w, r) () acc -> { pw = w; pr = r } :: acc) tbl []
  |> List.sort (fun a b ->
         match Instr.compare a.pw b.pw with 0 -> Instr.compare a.pr b.pr | c -> c)

let possible t = sorted_pairs t.poss
let possible_count t = Hashtbl.length t.poss
let achieved_count t = Hashtbl.length t.ach - t.beyond
let beyond_static t = t.beyond
let is_achieved t ~write ~read = Hashtbl.mem t.ach (write, read)

let uncovered t =
  Hashtbl.fold
    (fun (w, r) () acc -> if Hashtbl.mem t.ach (w, r) then acc else { pw = w; pr = r } :: acc)
    t.poss []
  |> List.sort (fun a b ->
         match Instr.compare a.pw b.pw with 0 -> Instr.compare a.pr b.pr | c -> c)

let uncovered_sites t =
  let sites = Hashtbl.create 32 in
  Hashtbl.iter
    (fun (w, r) () ->
      if not (Hashtbl.mem t.ach (w, r)) then begin
        Hashtbl.replace sites (Instr.to_int w) ();
        Hashtbl.replace sites (Instr.to_int r) ()
      end)
    t.poss;
  sites

let pp ppf t =
  Fmt.pf ppf "alias pairs: %d achieved / %d possible%s" (achieved_count t) (possible_count t)
    (if t.beyond > 0 then Printf.sprintf " (+%d beyond the static set)" t.beyond else "")

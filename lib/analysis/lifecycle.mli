(** Per-address persistency lifecycle FSM (Agamotto/WITCHER-style).

    Every pool word moves through [clean → dirty → flushed → clean]:
    a cached store dirties it, CLWB moves it to flushed-awaiting-fence,
    and the draining SFENCE makes it durable (clean).  Non-temporal
    stores skip the dirty state and wait for the fence directly.  The FSM
    consumes one execution's recorded event stream and emits an
    observation at every transition that violates (or wastes) the
    store→flushed→fenced discipline; {!Lint} aggregates the observations
    into deduplicated findings. *)

module Instr = Runtime.Instr

type state =
  | S_clean  (** durable (or never written) *)
  | S_dirty of { w_site : Instr.t; w_tid : int }  (** stored, not flushed *)
  | S_flushed of { w_site : Instr.t; w_tid : int; f_site : Instr.t }
      (** flushed (or written non-temporally), awaiting a fence *)

type obs =
  | O_dirty_read of {
      w_site : Instr.t;
      w_tid : int;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }  (** another thread consumed a store that was never flushed *)
  | O_unfenced_read of {
      w_site : Instr.t;
      w_tid : int;
      f_site : Instr.t;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }  (** another thread consumed a store flushed but not yet fenced *)
  | O_redundant_flush of { f_site : Instr.t; addr : int }
      (** CLWB of a line holding no dirty words *)
  | O_redundant_fence of { site : Instr.t }
      (** SFENCE with no flush or non-temporal store since the previous
          fence *)

type t

val create : unit -> t

val step : t -> emit:(obs -> unit) -> Runtime.Env.event -> unit
(** Feed one event in program order; [emit] receives any observations. *)

val state : t -> int -> state
(** Current lifecycle state of a word. *)

val dirty_words : t -> (int * Instr.t) list
(** Words still dirty, with their writing site — the end-of-trace
    missing-flush residue. *)

val reset : t -> unit
(** Forget all per-word state (between executions). *)

(** Per-address persistency lifecycle FSM (Agamotto/WITCHER-style).

    Every pool word moves through [clean → dirty → flushed → clean]:
    a cached store dirties it, CLWB moves it to flushed-awaiting-fence,
    and the draining SFENCE makes it durable (clean).  Non-temporal
    stores skip the dirty state and wait for the fence directly.  The FSM
    consumes one execution's recorded event stream and emits an
    observation at every transition that violates (or wastes) the
    store→flushed→fenced discipline; {!Lint} aggregates the observations
    into deduplicated findings.

    Beyond the four original rules, the FSM carries shadow state for two
    PM-bug-taxonomy detectors: a per-line last-flush table (double-flush:
    the same line CLWB'd twice with no intervening store) and per-word
    issue sequence numbers (cross-region durability ordering: a fence
    persisted a word issued {e after} a still-dirty store in a different
    pool region).  The latter needs a region classifier at {!create};
    without one the pool is a single region and the detector is silent. *)

module Instr = Runtime.Instr

type state =
  | S_clean  (** durable (or never written) *)
  | S_dirty of { w_site : Instr.t; w_tid : int }  (** stored, not flushed *)
  | S_flushed of { w_site : Instr.t; w_tid : int; f_site : Instr.t }
      (** flushed (or written non-temporally), awaiting a fence *)

type obs =
  | O_dirty_read of {
      w_site : Instr.t;
      w_tid : int;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }  (** another thread consumed a store that was never flushed *)
  | O_unfenced_read of {
      w_site : Instr.t;
      w_tid : int;
      f_site : Instr.t;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }  (** another thread consumed a store flushed but not yet fenced *)
  | O_redundant_flush of { f_site : Instr.t; addr : int }
      (** CLWB of a line holding no dirty words *)
  | O_redundant_fence of { site : Instr.t }
      (** SFENCE with no flush or non-temporal store since the previous
          fence *)
  | O_double_flush of { f_site : Instr.t; prev_site : Instr.t; addr : int }
      (** CLWB of a line already CLWB'd with no intervening store to it
          ([prev_site] is the earlier flush) — the taxonomy's double-flush
          performance bug, distinct from {!O_redundant_flush} (which is
          about dirty-word counts, not back-to-back flushes) *)
  | O_cross_region_order of {
      early_site : Instr.t;
      early_addr : int;
      late_site : Instr.t;
      late_addr : int;
    }
      (** a fence persisted [late_addr] although [early_addr] — stored
          earlier, in a different pool region — is still dirty: the
          cross-region durability-ordering hazard (at most one per fence;
          only with a [region_of] classifier) *)

type t

val create : ?region_of:(int -> int) -> unit -> t
(** [region_of] classifies a word offset into a pool region (e.g. root /
    log / heap) for the cross-region ordering detector; omitted, every
    word is one region and that detector never fires. *)

val step : t -> emit:(obs -> unit) -> Runtime.Env.event -> unit
(** Feed one event in program order; [emit] receives any observations. *)

val state : t -> int -> state
(** Current lifecycle state of a word. *)

val dirty_words : t -> (int * Instr.t) list
(** Words still dirty, with their writing site — the end-of-trace
    missing-flush residue. *)

val reset : t -> unit
(** Forget all per-word state (between executions). *)

(* Per-address persistency lifecycle FSM.

   The event stream already linearises the execution (the cooperative
   scheduler emits events in the order operations actually interleaved),
   so the FSM is a straight fold: a hash table of per-word states plus
   one global flush-since-last-fence flag for fence-redundancy.

   On top of the original four-rule automaton, the FSM tracks two shadow
   structures for the PM-bug-taxonomy detectors (Hasan'23 classes):

   - a per-line table of the last CLWB with no intervening store to the
     line, for the double-flush pattern (distinct from redundant-flush,
     which is about dirty words: double-flush is the back-to-back flush
     of one line, a recurring PM performance bug);
   - a per-word issue sequence number, so a fence can detect that a word
     it just persisted was stored *after* a still-dirty word in a
     different pool region — a cross-region durability-ordering hazard
     (e.g. heap data durable before the undo log that guards it).  The
     region classifier is supplied by the caller; without one the pool is
     a single region and the detector is silent. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type state =
  | S_clean
  | S_dirty of { w_site : Instr.t; w_tid : int }
  | S_flushed of { w_site : Instr.t; w_tid : int; f_site : Instr.t }

type obs =
  | O_dirty_read of {
      w_site : Instr.t;
      w_tid : int;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }
  | O_unfenced_read of {
      w_site : Instr.t;
      w_tid : int;
      f_site : Instr.t;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }
  | O_redundant_flush of { f_site : Instr.t; addr : int }
  | O_redundant_fence of { site : Instr.t }
  | O_double_flush of { f_site : Instr.t; prev_site : Instr.t; addr : int }
  | O_cross_region_order of {
      early_site : Instr.t;
      early_addr : int;
      late_site : Instr.t;
      late_addr : int;
    }

type t = {
  words : (int, state) Hashtbl.t;
  seqs : (int, int) Hashtbl.t; (* word -> issue seq of its latest store *)
  flushed_lines : (int, Instr.t) Hashtbl.t; (* line -> last CLWB, no store since *)
  region_of : (int -> int) option;
  mutable seq : int;
  mutable flush_since_fence : bool;
}

let create ?region_of () =
  {
    words = Hashtbl.create 256;
    seqs = Hashtbl.create 256;
    flushed_lines = Hashtbl.create 64;
    region_of;
    seq = 0;
    flush_since_fence = false;
  }

let state t addr = Option.value ~default:S_clean (Hashtbl.find_opt t.words addr)
let seq_of t addr = Option.value ~default:0 (Hashtbl.find_opt t.seqs addr)

let set t addr = function
  | S_clean -> Hashtbl.remove t.words addr
  | s -> Hashtbl.replace t.words addr s

let issue t addr =
  t.seq <- t.seq + 1;
  Hashtbl.replace t.seqs addr t.seq;
  Hashtbl.remove t.flushed_lines (Pmem.Cacheline.line_of_word addr)

(* Cross-region ordering check, at a fence: a word this fence persisted
   was issued after a still-dirty store in a different region — the older
   store should have been durable first.  One observation per fence (the
   persisted words come sorted, the dirty candidates are scanned in issue
   order), so the report stays deduplicatable and insertion-order
   independent. *)
let check_cross_region t ~emit persisted =
  match t.region_of with
  | None -> ()
  | Some region ->
      let dirty =
        Hashtbl.fold
          (fun a s acc ->
            match s with S_dirty { w_site; _ } -> (seq_of t a, a, w_site) :: acc | _ -> acc)
          t.words []
        |> List.sort compare
      in
      if dirty <> [] then
        let rec scan = function
          | [] -> ()
          | w :: rest -> (
              match state t w with
              | S_flushed { w_site = late_site; _ } -> (
                  let sw = seq_of t w and rw = region w in
                  match
                    List.find_opt (fun (sd, d, _) -> sd < sw && region d <> rw) dirty
                  with
                  | Some (_, early_addr, early_site) ->
                      emit
                        (O_cross_region_order
                           { early_site; early_addr; late_site; late_addr = w })
                  | None -> scan rest)
              | S_clean | S_dirty _ -> scan rest)
        in
        scan persisted

let step t ~emit (ev : Env.event) =
  match ev with
  | Env.Ev_store { instr; tid; addr } ->
      issue t addr;
      set t addr (S_dirty { w_site = instr; w_tid = tid })
  | Env.Ev_movnt { instr; tid; addr } ->
      issue t addr;
      t.flush_since_fence <- true;
      set t addr (S_flushed { w_site = instr; w_tid = tid; f_site = instr })
  | Env.Ev_load { instr; tid; addr; _ } -> (
      match state t addr with
      | S_dirty { w_site; w_tid } when w_tid <> tid ->
          emit (O_dirty_read { w_site; w_tid; r_site = instr; r_tid = tid; addr })
      | S_flushed { w_site; w_tid; f_site } when w_tid <> tid ->
          emit (O_unfenced_read { w_site; w_tid; f_site; r_site = instr; r_tid = tid; addr })
      | S_clean | S_dirty _ | S_flushed _ -> ())
  | Env.Ev_clwb { instr; addr; dirty_words; _ } ->
      t.flush_since_fence <- true;
      let line = Pmem.Cacheline.line_of_word addr in
      (match Hashtbl.find_opt t.flushed_lines line with
      | Some prev_site -> emit (O_double_flush { f_site = instr; prev_site; addr })
      | None -> ());
      Hashtbl.replace t.flushed_lines line instr;
      if dirty_words = 0 then emit (O_redundant_flush { f_site = instr; addr });
      List.iter
        (fun w ->
          match state t w with
          | S_dirty { w_site; w_tid } ->
              set t w (S_flushed { w_site; w_tid; f_site = instr })
          | S_clean | S_flushed _ -> ())
        (Pmem.Cacheline.words_of_line_containing addr)
  | Env.Ev_fence { instr; persisted; _ } ->
      if (not t.flush_since_fence) && persisted = [] then emit (O_redundant_fence { site = instr });
      t.flush_since_fence <- false;
      check_cross_region t ~emit persisted;
      List.iter
        (fun w ->
          match state t w with
          | S_flushed _ -> set t w S_clean
          | S_clean | S_dirty _ -> () (* re-dirtied after the flush: stays dirty *))
        persisted
  | Env.Ev_branch _ -> ()

let dirty_words t =
  Hashtbl.fold
    (fun addr s acc -> match s with S_dirty { w_site; _ } -> (addr, w_site) :: acc | _ -> acc)
    t.words []
  |> List.sort compare

let reset t =
  Hashtbl.reset t.words;
  Hashtbl.reset t.seqs;
  Hashtbl.reset t.flushed_lines;
  t.seq <- 0;
  t.flush_since_fence <- false

(* Per-address persistency lifecycle FSM.

   The event stream already linearises the execution (the cooperative
   scheduler emits events in the order operations actually interleaved),
   so the FSM is a straight fold: a hash table of per-word states plus
   one global flush-since-last-fence flag for fence-redundancy. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type state =
  | S_clean
  | S_dirty of { w_site : Instr.t; w_tid : int }
  | S_flushed of { w_site : Instr.t; w_tid : int; f_site : Instr.t }

type obs =
  | O_dirty_read of {
      w_site : Instr.t;
      w_tid : int;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }
  | O_unfenced_read of {
      w_site : Instr.t;
      w_tid : int;
      f_site : Instr.t;
      r_site : Instr.t;
      r_tid : int;
      addr : int;
    }
  | O_redundant_flush of { f_site : Instr.t; addr : int }
  | O_redundant_fence of { site : Instr.t }

type t = {
  words : (int, state) Hashtbl.t;
  mutable flush_since_fence : bool;
}

let create () = { words = Hashtbl.create 256; flush_since_fence = false }

let state t addr = Option.value ~default:S_clean (Hashtbl.find_opt t.words addr)

let set t addr = function
  | S_clean -> Hashtbl.remove t.words addr
  | s -> Hashtbl.replace t.words addr s

let step t ~emit (ev : Env.event) =
  match ev with
  | Env.Ev_store { instr; tid; addr } -> set t addr (S_dirty { w_site = instr; w_tid = tid })
  | Env.Ev_movnt { instr; tid; addr } ->
      t.flush_since_fence <- true;
      set t addr (S_flushed { w_site = instr; w_tid = tid; f_site = instr })
  | Env.Ev_load { instr; tid; addr; _ } -> (
      match state t addr with
      | S_dirty { w_site; w_tid } when w_tid <> tid ->
          emit (O_dirty_read { w_site; w_tid; r_site = instr; r_tid = tid; addr })
      | S_flushed { w_site; w_tid; f_site } when w_tid <> tid ->
          emit (O_unfenced_read { w_site; w_tid; f_site; r_site = instr; r_tid = tid; addr })
      | S_clean | S_dirty _ | S_flushed _ -> ())
  | Env.Ev_clwb { instr; addr; dirty_words; _ } ->
      t.flush_since_fence <- true;
      if dirty_words = 0 then emit (O_redundant_flush { f_site = instr; addr });
      List.iter
        (fun w ->
          match state t w with
          | S_dirty { w_site; w_tid } ->
              set t w (S_flushed { w_site; w_tid; f_site = instr })
          | S_clean | S_flushed _ -> ())
        (Pmem.Cacheline.words_of_line_containing addr)
  | Env.Ev_fence { instr; persisted; _ } ->
      if (not t.flush_since_fence) && persisted = [] then emit (O_redundant_fence { site = instr });
      t.flush_since_fence <- false;
      List.iter
        (fun w ->
          match state t w with
          | S_flushed _ -> set t w S_clean
          | S_clean | S_dirty _ -> () (* re-dirtied after the flush: stays dirty *))
        persisted
  | Env.Ev_branch _ -> ()

let dirty_words t =
  Hashtbl.fold
    (fun addr s acc -> match s with S_dirty { w_site; _ } -> (addr, w_site) :: acc | _ -> acc)
    t.words []
  |> List.sort compare

let reset t =
  Hashtbl.reset t.words;
  t.flush_since_fence <- false

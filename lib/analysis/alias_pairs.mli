(** Achieved-vs-possible accounting for PM alias pairs.

    The {!Site_graph} supplies the statically-possible (write-site,
    read-site) pairs — the denominator.  The fuzzer (or the analyzer's own
    trace replay) marks pairs {e achieved} whenever a load actually
    observed another thread's non-persisted store at runtime.  Coverage is
    then reported as achieved/possible, and the uncovered remainder drives
    seed prioritisation. *)

module Instr = Runtime.Instr

type pair = { pw : Instr.t;  (** write site *) pr : Instr.t  (** read site *) }

type t

val create : unit -> t

val of_site_graph : Site_graph.t -> t
(** Seed the possible set from a site graph's {!Site_graph.possible_pairs}. *)

val add_possible : t -> write:Instr.t -> read:Instr.t -> unit

val mark_achieved : t -> write:Instr.t -> read:Instr.t -> unit
(** Record a dynamically observed cross-thread dirty-read pair.  Pairs
    outside the possible set are counted too (the site graph is built from
    finitely many seed executions, so the fuzzer can escape it); they are
    reported separately by {!beyond_static}. *)

val possible : t -> pair list
val possible_count : t -> int
val achieved_count : t -> int
(** Achieved pairs that are inside the possible set. *)

val beyond_static : t -> int
(** Achieved pairs the static pass did not predict. *)

val is_achieved : t -> write:Instr.t -> read:Instr.t -> bool
val uncovered : t -> pair list
(** Possible pairs not yet achieved. *)

val uncovered_sites : t -> (int, unit) Hashtbl.t
(** The site ids participating in at least one uncovered pair — the
    fuzzer's seed-prioritisation signal. *)

val pp : Format.formatter -> t -> unit

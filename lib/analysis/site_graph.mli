(** Site graph: per-target aggregation of {!Runtime.Instr.t} sites into a
    store/flush/fence/load graph across seed executions.

    This is the reproduction's analogue of PMRace's LLVM pre-pass
    (PAPER §4.1–4.2): where the paper walks the IR to find PM-relevant
    instructions and the statically-possible PM access pairs, we aggregate
    the sites observed across a set of recorded seed executions.  Each
    node is a static instruction site with per-kind occurrence counts;
    edges connect sites that touched a common address (store→load
    aliasing) or whose operations composed into a persist (store→flush,
    flush→fence). *)

module Instr = Runtime.Instr

type kind = K_store | K_movnt | K_load | K_flush | K_fence

type node = {
  n_site : Instr.t;
  mutable n_stores : int;
  mutable n_movnts : int;
  mutable n_loads : int;
  mutable n_flushes : int;
  mutable n_fences : int;
  mutable n_addrs : int;  (** distinct addresses this site touched *)
}

type t

val create : unit -> t

val absorb : t -> Runtime.Env.event list -> unit
(** Fold one execution's recorded event stream into the graph.  May be
    called once per seed execution; the graph accumulates. *)

val attach : t -> Runtime.Env.t -> unit
(** Online variant of {!absorb}: subscribe to a live environment. *)

val executions : t -> int
(** Number of traces absorbed (each {!absorb} call counts one). *)

val nodes : t -> node list
(** All sites seen, ordered by site id. *)

val node : t -> Instr.t -> node option

val writers_of : t -> int -> Instr.t list
(** Sites that stored (cached or non-temporal) to an address. *)

val readers_of : t -> int -> Instr.t list
(** Sites that loaded from an address. *)

val shared_addrs : t -> int list
(** Addresses touched by both a writing site and a reading site. *)

val possible_pairs : t -> (Instr.t * Instr.t) list
(** The statically-possible (write-site, read-site) alias pairs: for every
    address, the cross product of its writers and its readers, deduplicated
    over the whole pool.  This is the denominator of alias-pair coverage —
    every dynamically achieved dirty-read pair is drawn from this set. *)

val possible_count : t -> int

val flush_edges : t -> (Instr.t * Instr.t) list
(** (store site, flush site) pairs: the flush site cleaned a line holding
    that store site's dirty data. *)

val fence_edges : t -> (Instr.t * Instr.t) list
(** (flush site, fence site) pairs: the fence drained that flush's
    write-back. *)

val pp_summary : Format.formatter -> t -> unit

(* Site graph: aggregate the instruction sites observed across recorded
   seed executions into a store/flush/fence/load graph.

   The graph plays the role of PMRace's LLVM pre-pass output: it bounds
   the alias-pair coverage map (possible_pairs is the denominator) and
   gives the lint pass a per-site vocabulary.  Aliasing is computed at
   word granularity: two sites alias when some execution showed them
   touching the same pool word, which over a set of seed executions
   approximates the static may-alias relation the paper's pass computes
   on IR. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type kind = K_store | K_movnt | K_load | K_flush | K_fence

type node = {
  n_site : Instr.t;
  mutable n_stores : int;
  mutable n_movnts : int;
  mutable n_loads : int;
  mutable n_flushes : int;
  mutable n_fences : int;
  mutable n_addrs : int;
}

(* Per-execution transient state: which dirty words each store site owns,
   and which flushed words await a fence.  Reset for every absorbed
   trace — lifecycle state never leaks across executions. *)
type shadow = {
  sh_dirty : (int, Instr.t) Hashtbl.t; (* word -> writing site *)
  sh_pending : (int, Instr.t) Hashtbl.t; (* word -> flushing site *)
}

type t = {
  nodes : (Instr.t, node) Hashtbl.t;
  site_addrs : (Instr.t, (int, unit) Hashtbl.t) Hashtbl.t;
  writers : (int, (Instr.t, unit) Hashtbl.t) Hashtbl.t; (* addr -> store sites *)
  readers : (int, (Instr.t, unit) Hashtbl.t) Hashtbl.t; (* addr -> load sites *)
  flush_edges : (Instr.t * Instr.t, unit) Hashtbl.t; (* store -> flush *)
  fence_edges : (Instr.t * Instr.t, unit) Hashtbl.t; (* flush -> fence *)
  mutable executions : int;
}

let create () =
  {
    nodes = Hashtbl.create 64;
    site_addrs = Hashtbl.create 64;
    writers = Hashtbl.create 256;
    readers = Hashtbl.create 256;
    flush_edges = Hashtbl.create 64;
    fence_edges = Hashtbl.create 64;
    executions = 0;
  }

let node_of t site =
  match Hashtbl.find_opt t.nodes site with
  | Some n -> n
  | None ->
      let n =
        { n_site = site; n_stores = 0; n_movnts = 0; n_loads = 0; n_flushes = 0; n_fences = 0;
          n_addrs = 0 }
      in
      Hashtbl.add t.nodes site n;
      n

let touch_addr t site addr =
  let addrs =
    match Hashtbl.find_opt t.site_addrs site with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.add t.site_addrs site s;
        s
  in
  if not (Hashtbl.mem addrs addr) then begin
    Hashtbl.replace addrs addr ();
    (node_of t site).n_addrs <- (node_of t site).n_addrs + 1
  end

let mark tbl addr site =
  let sites =
    match Hashtbl.find_opt tbl addr with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.add tbl addr s;
        s
  in
  Hashtbl.replace sites site ()

(* One event-stream transition, threading per-execution shadow state. *)
let step t (sh : shadow) (ev : Env.event) =
  match ev with
  | Env.Ev_store { instr; addr; _ } ->
      (node_of t instr).n_stores <- (node_of t instr).n_stores + 1;
      touch_addr t instr addr;
      mark t.writers addr instr;
      Hashtbl.replace sh.sh_dirty addr instr
  | Env.Ev_movnt { instr; addr; _ } ->
      (node_of t instr).n_movnts <- (node_of t instr).n_movnts + 1;
      touch_addr t instr addr;
      mark t.writers addr instr;
      (* Non-temporal stores are never dirty; they go straight to the
         write-back queue and persist at the next fence. *)
      Hashtbl.remove sh.sh_dirty addr;
      Hashtbl.replace sh.sh_pending addr instr
  | Env.Ev_load { instr; addr; _ } ->
      (node_of t instr).n_loads <- (node_of t instr).n_loads + 1;
      touch_addr t instr addr;
      mark t.readers addr instr
  | Env.Ev_clwb { instr; addr; _ } ->
      (node_of t instr).n_flushes <- (node_of t instr).n_flushes + 1;
      touch_addr t instr addr;
      List.iter
        (fun w ->
          match Hashtbl.find_opt sh.sh_dirty w with
          | Some writer ->
              Hashtbl.replace t.flush_edges (writer, instr) ();
              Hashtbl.remove sh.sh_dirty w;
              Hashtbl.replace sh.sh_pending w instr
          | None -> ())
        (Pmem.Cacheline.words_of_line_containing addr)
  | Env.Ev_fence { instr; _ } ->
      (node_of t instr).n_fences <- (node_of t instr).n_fences + 1;
      Hashtbl.iter (fun _ flusher -> Hashtbl.replace t.fence_edges (flusher, instr) ()) sh.sh_pending;
      Hashtbl.reset sh.sh_pending
  | Env.Ev_branch _ -> ()

let fresh_shadow () = { sh_dirty = Hashtbl.create 64; sh_pending = Hashtbl.create 64 }

let absorb t events =
  t.executions <- t.executions + 1;
  let sh = fresh_shadow () in
  List.iter (step t sh) events

let attach t env =
  t.executions <- t.executions + 1;
  let sh = fresh_shadow () in
  Runtime.Env.add_listener env (step t sh)

let executions t = t.executions

let nodes t =
  Hashtbl.fold (fun _ n acc -> n :: acc) t.nodes []
  |> List.sort (fun a b -> Instr.compare a.n_site b.n_site)

let node t site = Hashtbl.find_opt t.nodes site

let sites_of tbl addr =
  match Hashtbl.find_opt tbl addr with
  | Some s -> Hashtbl.fold (fun i () acc -> i :: acc) s [] |> List.sort Instr.compare
  | None -> []

let writers_of t addr = sites_of t.writers addr
let readers_of t addr = sites_of t.readers addr

let shared_addrs t =
  Hashtbl.fold (fun addr _ acc -> if Hashtbl.mem t.readers addr then addr :: acc else acc)
    t.writers []
  |> List.sort compare

let possible_pairs t =
  let pairs = Hashtbl.create 128 in
  Hashtbl.iter
    (fun addr ws ->
      match Hashtbl.find_opt t.readers addr with
      | None -> ()
      | Some rs ->
          Hashtbl.iter (fun w () -> Hashtbl.iter (fun r () -> Hashtbl.replace pairs (w, r) ()) rs) ws)
    t.writers;
  Hashtbl.fold (fun p () acc -> p :: acc) pairs []
  |> List.sort (fun (w, r) (w', r') ->
         match Instr.compare w w' with 0 -> Instr.compare r r' | c -> c)

let possible_count t = List.length (possible_pairs t)

let edge_list tbl =
  Hashtbl.fold (fun e () acc -> e :: acc) tbl []
  |> List.sort (fun (a, b) (a', b') ->
         match Instr.compare a a' with 0 -> Instr.compare b b' | c -> c)

let flush_edges t = edge_list t.flush_edges
let fence_edges t = edge_list t.fence_edges

let pp_summary ppf t =
  Fmt.pf ppf "site graph: %d sites over %d executions@." (Hashtbl.length t.nodes) t.executions;
  Fmt.pf ppf "  shared addresses     : %d@." (List.length (shared_addrs t));
  Fmt.pf ppf "  possible alias pairs : %d@." (possible_count t);
  Fmt.pf ppf "  store->flush edges   : %d@." (Hashtbl.length t.flush_edges);
  Fmt.pf ppf "  flush->fence edges   : %d@." (Hashtbl.length t.fence_edges)

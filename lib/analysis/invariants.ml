(* Likely persistence-ordering invariant inference (WITCHER-style).

   Two invariant shapes are mined from correct executions:

   - Order(A, B): every time store site A is issued before store site B,
     A is already durable (fence-persisted) when B first issues.  The
     canonical PM commit discipline: data durable before the flag that
     publishes it is written.
   - Commit(C): whenever a fence persists stores from two or more
     distinct sites at once (an "epoch"), site C's store is the last one
     issued — C is the epoch's commit variable.

   All predicates are defined on FIRST occurrences per execution:
   Order(A,B) is meaningful in an execution iff first_issue(A) <
   first_issue(B), and holds iff first_durable(A) < first_issue(B),
   where durability is attributed to the last writer of each word a
   fence persists.  The online checker tests exactly the same
   predicates at exactly the same program points, so running [check] (or
   the checker) over the very traces an invariant was mined from yields
   zero violations by construction — a property the tests assert.

   Support is the number of executions (Order) or epochs (Commit) in
   which the invariant was meaningful and held; [mine] keeps invariants
   that were never violated and reach [min_support]. *)

module Env = Runtime.Env
module Instr = Runtime.Instr

type inv = Order of { first : Instr.t; next : Instr.t } | Commit of { site : Instr.t }
type spec = { inv : inv; support : int }

type violation = {
  v_inv : inv;
  v_site : Instr.t;
  v_addr : int;
  v_words : int list;
}

let inv_kind_slug = function Order _ -> "order" | Commit _ -> "commit"

let label = function
  | Order { first; next } ->
      Printf.sprintf "order %s -> %s" (Instr.name first) (Instr.name next)
  | Commit { site } -> Printf.sprintf "commit %s" (Instr.name site)

let inv_key = function
  | Order { first; next } -> (0, Instr.to_int first, Instr.to_int next)
  | Commit { site } -> (1, Instr.to_int site, 0)

let compare_inv a b = compare (inv_key a) (inv_key b)

(* ------------------------------------------------------------------ *)
(* Mining                                                              *)
(* ------------------------------------------------------------------ *)

type ostat = { mutable o_support : int; mutable o_violated : bool }
type cstat = { mutable c_support : int; mutable c_violated : bool }

type t = {
  orders : (int * int, ostat) Hashtbl.t; (* (first id, next id) *)
  commits : (int, cstat) Hashtbl.t;
  sites : (int, Instr.t) Hashtbl.t; (* id -> site, for reconstruction *)
  min_support : int;
  mutable execs : int;
}

let create ?(min_support = 2) () =
  {
    orders = Hashtbl.create 64;
    commits = Hashtbl.create 16;
    sites = Hashtbl.create 32;
    min_support;
    execs = 0;
  }

let executions t = t.execs

let absorb t events =
  t.execs <- t.execs + 1;
  (* One linear pass summarising the execution: first-issue and
     first-durable event index per site, plus multi-site fence epochs. *)
  let issue = Hashtbl.create 16 (* site id -> first issue index *)
  and durable = Hashtbl.create 16 (* site id -> first durable index *)
  and writers = Hashtbl.create 64 (* word -> (site id, store seq) *)
  and epochs = ref []
  and idx = ref 0
  and seq = ref 0 in
  let on_store instr addr =
    incr seq;
    let id = Instr.to_int instr in
    Hashtbl.replace t.sites id instr;
    if not (Hashtbl.mem issue id) then Hashtbl.add issue id !idx;
    Hashtbl.replace writers addr (id, !seq)
  in
  List.iter
    (fun ev ->
      incr idx;
      match ev with
      | Env.Ev_store { instr; addr; _ } | Env.Ev_movnt { instr; addr; _ } ->
          on_store instr addr
      | Env.Ev_fence { persisted; _ } ->
          let per_site = Hashtbl.create 8 in
          List.iter
            (fun w ->
              match Hashtbl.find_opt writers w with
              | Some (id, s) ->
                  (match Hashtbl.find_opt per_site id with
                  | Some s' when s' >= s -> ()
                  | Some _ | None -> Hashtbl.replace per_site id s);
                  if not (Hashtbl.mem durable id) then Hashtbl.add durable id !idx
              | None -> ())
            persisted;
          if Hashtbl.length per_site >= 2 then begin
            let entries = Hashtbl.fold (fun id s acc -> (s, id) :: acc) per_site [] in
            let _, last =
              List.fold_left (fun best e -> max best e) (List.hd entries) (List.tl entries)
            in
            epochs := (List.map snd entries, last) :: !epochs
          end
      | Env.Ev_load _ | Env.Ev_clwb _ | Env.Ev_branch _ -> ())
    events;
  (* Fold the summary into the cross-execution statistics. *)
  let issued = Hashtbl.fold (fun id i acc -> (id, i) :: acc) issue [] in
  List.iter
    (fun (a, fa) ->
      List.iter
        (fun (b, fb) ->
          if a <> b && fa < fb then begin
            let held =
              match Hashtbl.find_opt durable a with Some da -> da < fb | None -> false
            in
            let st =
              match Hashtbl.find_opt t.orders (a, b) with
              | Some st -> st
              | None ->
                  let st = { o_support = 0; o_violated = false } in
                  Hashtbl.add t.orders (a, b) st;
                  st
            in
            if held then st.o_support <- st.o_support + 1 else st.o_violated <- true
          end)
        issued)
    issued;
  List.iter
    (fun (sites, last) ->
      List.iter
        (fun id ->
          let st =
            match Hashtbl.find_opt t.commits id with
            | Some st -> st
            | None ->
                let st = { c_support = 0; c_violated = false } in
                Hashtbl.add t.commits id st;
                st
          in
          if id = last then st.c_support <- st.c_support + 1 else st.c_violated <- true)
        sites)
    !epochs

let absorb_trace t trace = absorb t (Runtime.Trace.events trace)

let mine t =
  let site id = Hashtbl.find t.sites id in
  let specs =
    Hashtbl.fold
      (fun (a, b) st acc ->
        if (not st.o_violated) && st.o_support >= t.min_support then
          { inv = Order { first = site a; next = site b }; support = st.o_support } :: acc
        else acc)
      t.orders []
  in
  let specs =
    Hashtbl.fold
      (fun c st acc ->
        if (not st.c_violated) && st.c_support >= t.min_support then
          { inv = Commit { site = site c }; support = st.c_support } :: acc
        else acc)
      t.commits specs
  in
  List.sort (fun a b -> compare_inv a.inv b.inv) specs

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

type astate = A_not_issued | A_pending of int list | A_durable

type checker = {
  order_by_next : (int, (int * inv) list) Hashtbl.t; (* next id -> (first id, inv) *)
  firsts : (int, astate ref) Hashtbl.t; (* first-role sites *)
  commit_sites : (int, inv) Hashtbl.t;
  next_seen : (int, unit) Hashtbl.t; (* per campaign: only B's first store checks *)
  cwriters : (int, Instr.t * int) Hashtbl.t; (* word -> (writer site, store seq) *)
  mutable cseq : int;
}

let checker specs =
  let c =
    {
      order_by_next = Hashtbl.create 16;
      firsts = Hashtbl.create 16;
      commit_sites = Hashtbl.create 8;
      next_seen = Hashtbl.create 16;
      cwriters = Hashtbl.create 64;
      cseq = 0;
    }
  in
  List.iter
    (fun { inv; _ } ->
      match inv with
      | Order { first; next } ->
          let fid = Instr.to_int first and nid = Instr.to_int next in
          if not (Hashtbl.mem c.firsts fid) then
            Hashtbl.add c.firsts fid (ref A_not_issued);
          let prev = Option.value ~default:[] (Hashtbl.find_opt c.order_by_next nid) in
          Hashtbl.replace c.order_by_next nid ((fid, inv) :: prev)
      | Commit { site } -> Hashtbl.replace c.commit_sites (Instr.to_int site) inv)
    specs;
  c

let reset c =
  Hashtbl.iter (fun _ r -> r := A_not_issued) c.firsts;
  Hashtbl.reset c.next_seen;
  Hashtbl.reset c.cwriters;
  c.cseq <- 0

let step c ~emit (ev : Env.event) =
  match ev with
  | Env.Ev_store { instr; addr; _ } | Env.Ev_movnt { instr; addr; _ } ->
      c.cseq <- c.cseq + 1;
      let id = Instr.to_int instr in
      (* Next-role check first: a site acting as both the [next] of one
         invariant and the [first] of another must be tested as next
         before its own pending state updates. *)
      if not (Hashtbl.mem c.next_seen id) then begin
        Hashtbl.add c.next_seen id ();
        match Hashtbl.find_opt c.order_by_next id with
        | Some lst ->
            List.iter
              (fun (fid, inv) ->
                match Hashtbl.find_opt c.firsts fid with
                | Some { contents = A_pending ws } ->
                    emit
                      {
                        v_inv = inv;
                        v_site = instr;
                        v_addr = addr;
                        v_words = List.sort_uniq compare ws;
                      }
                | Some _ | None -> ())
              lst
        | None -> ()
      end;
      (match Hashtbl.find_opt c.firsts id with
      | Some r -> (
          match !r with
          | A_not_issued -> r := A_pending [ addr ]
          | A_pending ws -> r := A_pending (addr :: ws)
          | A_durable -> () (* first durability already achieved *))
      | None -> ());
      Hashtbl.replace c.cwriters addr (instr, c.cseq)
  | Env.Ev_fence { persisted; _ } ->
      let per_site = Hashtbl.create 8 in
      List.iter
        (fun w ->
          match Hashtbl.find_opt c.cwriters w with
          | Some (site, s) ->
              let id = Instr.to_int site in
              (match Hashtbl.find_opt per_site id with
              | Some (s', _, _) when s' >= s -> ()
              | Some _ | None -> Hashtbl.replace per_site id (s, w, site));
              (match Hashtbl.find_opt c.firsts id with
              | Some ({ contents = A_pending _ } as r) -> r := A_durable
              | Some _ | None -> ())
          | None -> ())
        persisted;
      if Hashtbl.length per_site >= 2 && Hashtbl.length c.commit_sites > 0 then begin
        let entries =
          Hashtbl.fold (fun id (s, w, site) acc -> (s, id, w, site) :: acc) per_site []
        in
        let _, last_id, last_w, last_site =
          List.fold_left (fun best e -> max best e) (List.hd entries) (List.tl entries)
        in
        Hashtbl.iter
          (fun cid inv ->
            if cid <> last_id && Hashtbl.mem per_site cid then
              emit
                {
                  v_inv = inv;
                  v_site = last_site;
                  v_addr = last_w;
                  v_words = List.sort compare persisted;
                })
          c.commit_sites
      end
  | Env.Ev_load _ | Env.Ev_clwb _ | Env.Ev_branch _ -> ()

let check specs events =
  let c = checker specs in
  let acc = ref [] in
  List.iter (step c ~emit:(fun v -> acc := v :: !acc)) events;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_inv ppf inv = Fmt.string ppf (label inv)
let pp_spec ppf { inv; support } = Fmt.pf ppf "%a (support %d)" pp_inv inv support

let pp_violation ppf v =
  Fmt.pf ppf "violated %a at %a (PM word %d)" pp_inv v.v_inv Instr.pp v.v_site v.v_addr

(* Offline persistency analyzer: site graph + alias pairs + lint, driven
   over recorded traces.

   Achieved alias pairs are derived from the lint pass's
   unflushed-store-published findings: a cross-thread dirty read is
   precisely a dynamically achieved (write site, read site) alias pair.
   Because the same traces feed the site graph, every achieved pair's
   writer and reader also appear in the graph's per-address writer/reader
   sets — achieved <= possible holds by construction. *)

type t = { graph : Site_graph.t; lint : Lint.t; mutable executions : int }

type result = {
  r_graph : Site_graph.t;
  r_pairs : Alias_pairs.t;
  r_findings : Lint.finding list;
  r_executions : int;
}

let create () = { graph = Site_graph.create (); lint = Lint.create (); executions = 0 }

let absorb t events =
  t.executions <- t.executions + 1;
  Site_graph.absorb t.graph events;
  Lint.absorb t.lint events

let absorb_trace t trace = absorb t (Runtime.Trace.events trace)

let result t =
  let pairs = Alias_pairs.of_site_graph t.graph in
  List.iter
    (fun (f : Lint.finding) ->
      match (f.f_kind, f.f_write_site) with
      | Lint.Unflushed_publish, Some w -> Alias_pairs.mark_achieved pairs ~write:w ~read:f.f_site
      | _ -> ())
    (Lint.findings t.lint);
  {
    r_graph = t.graph;
    r_pairs = pairs;
    r_findings = Lint.findings t.lint;
    r_executions = t.executions;
  }

let pp_report ppf r =
  Fmt.pf ppf "%a" Site_graph.pp_summary r.r_graph;
  Fmt.pf ppf "%a@." Alias_pairs.pp r.r_pairs;
  if r.r_findings = [] then Fmt.pf ppf "lint: clean — no persistency findings@."
  else begin
    Fmt.pf ppf "lint: %d finding%s (%d high, %d medium, %d low)@."
      (List.length r.r_findings)
      (if List.length r.r_findings = 1 then "" else "s")
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.High) r.r_findings))
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.Medium) r.r_findings))
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.Low) r.r_findings));
    List.iter (fun f -> Fmt.pf ppf "  %a@." Lint.pp_finding f) r.r_findings
  end

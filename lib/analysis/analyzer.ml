(* Offline persistency analyzer: site graph + alias pairs + lint +
   likely-invariant mining, driven over recorded traces.

   Achieved alias pairs are derived from the lint pass's
   unflushed-store-published findings: a cross-thread dirty read is
   precisely a dynamically achieved (write site, read site) alias pair.
   Because the same traces feed the site graph, every achieved pair's
   writer and reader also appear in the graph's per-address writer/reader
   sets — achieved <= possible holds by construction.

   The second-generation detectors are config-gated and default off:
   [default_config] reproduces the v1 analyzer exactly (same findings,
   same report), which keeps the fuzzer's seeded pre-pass bit-identical.
   [full] enables the taxonomy lint classes and invariant mining. *)

type config = {
  taxonomy : bool;  (** PM-bug-taxonomy lint classes *)
  invariants : bool;  (** likely-invariant mining *)
  min_support : int;  (** invariant support threshold *)
  region_of : (int -> int) option;  (** pool-region classifier for cross-region lint *)
}

let default_config = { taxonomy = false; invariants = false; min_support = 2; region_of = None }
let full = { default_config with taxonomy = true; invariants = true }

type t = {
  cfg : config;
  graph : Site_graph.t;
  lint : Lint.t;
  inv : Invariants.t option;
  mutable executions : int;
}

type result = {
  r_graph : Site_graph.t;
  r_pairs : Alias_pairs.t;
  r_findings : Lint.finding list;
  r_invariants : Invariants.spec list;
  r_executions : int;
}

let create ?(cfg = default_config) () =
  {
    cfg;
    graph = Site_graph.create ();
    lint = Lint.create ~taxonomy:cfg.taxonomy ?region_of:cfg.region_of ();
    inv = (if cfg.invariants then Some (Invariants.create ~min_support:cfg.min_support ()) else None);
    executions = 0;
  }

let config t = t.cfg

let absorb t events =
  t.executions <- t.executions + 1;
  Site_graph.absorb t.graph events;
  Lint.absorb t.lint events;
  Option.iter (fun inv -> Invariants.absorb inv events) t.inv

let absorb_trace t trace = absorb t (Runtime.Trace.events trace)

(* Recovery traces only feed the lint pass (in recovery phase, so the
   end-of-trace residue becomes the missing-recovery-flush class).  They
   are deterministic single-thread replays, so they would only dilute the
   site graph and the invariant statistics. *)
let absorb_recovery t events = if t.cfg.taxonomy then Lint.absorb ~phase:`Recovery t.lint events

let result t =
  let pairs = Alias_pairs.of_site_graph t.graph in
  List.iter
    (fun (f : Lint.finding) ->
      match (f.f_kind, f.f_write_site) with
      | Lint.Unflushed_publish, Some w -> Alias_pairs.mark_achieved pairs ~write:w ~read:f.f_site
      | _ -> ())
    (Lint.findings t.lint);
  {
    r_graph = t.graph;
    r_pairs = pairs;
    r_findings = Lint.findings t.lint;
    r_invariants = (match t.inv with Some inv -> Invariants.mine inv | None -> []);
    r_executions = t.executions;
  }

let pp_report ppf r =
  Fmt.pf ppf "%a" Site_graph.pp_summary r.r_graph;
  Fmt.pf ppf "%a@." Alias_pairs.pp r.r_pairs;
  if r.r_findings = [] then Fmt.pf ppf "lint: clean — no persistency findings@."
  else begin
    Fmt.pf ppf "lint: %d finding%s (%d high, %d medium, %d low)@."
      (List.length r.r_findings)
      (if List.length r.r_findings = 1 then "" else "s")
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.High) r.r_findings))
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.Medium) r.r_findings))
      (List.length (List.filter (fun (f : Lint.finding) -> f.f_severity = Lint.Low) r.r_findings));
    (* Per-detector-class counts, in stable kind order. *)
    List.iter
      (fun kind ->
        let n =
          List.length (List.filter (fun (f : Lint.finding) -> f.f_kind = kind) r.r_findings)
        in
        if n > 0 then Fmt.pf ppf "  %-24s %d@." (Lint.kind_slug kind) n)
      Lint.all_kinds;
    List.iter (fun f -> Fmt.pf ppf "  %a@." Lint.pp_finding f) r.r_findings
  end;
  if r.r_invariants <> [] then begin
    Fmt.pf ppf "invariants: %d mined@." (List.length r.r_invariants);
    List.iter (fun s -> Fmt.pf ppf "  %a@." Invariants.pp_spec s) r.r_invariants
  end

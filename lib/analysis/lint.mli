(** Persistency lint pass: run the {!Lifecycle} FSM over recorded traces
    and aggregate its observations into findings, deduplicated by site
    pair and ranked by severity.

    The four rules (WITCHER's persistence lifecycle rules, specialised to
    the event stream we record):
    - {e unflushed-store-published}: a store still in the dirty state was
      read by another thread — the classic PM inter-thread hazard
      (severity High);
    - {e flush-without-fence-before-release}: a store was flushed but no
      fence had ordered it when another thread consumed it (Medium);
    - {e redundant CLWB}: a flush of a line with no dirty words (Low);
    - {e redundant SFENCE}: a fence with no flush or non-temporal store
      since the previous fence (Low). *)

module Instr = Runtime.Instr

type severity = High | Medium | Low

type kind =
  | Unflushed_publish
  | Unfenced_publish
  | Redundant_flush
  | Redundant_fence

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_write_site : Instr.t option;  (** the store site, for the publish rules *)
  f_site : Instr.t;  (** read site / flush site / fence site *)
  f_addr : int;  (** sample address of the first occurrence; -1 for fences *)
  f_first_exec : int;  (** index of the trace of the first occurrence *)
  mutable f_count : int;  (** dynamic occurrences across all traces *)
}

type t

val create : unit -> t

val absorb : t -> Runtime.Env.event list -> unit
(** Lint one execution's event stream; per-word FSM state is reset
    between calls. *)

val findings : t -> finding list
(** Deduplicated by (rule, write site, site), most severe first. *)

val count : t -> int
val count_severity : t -> severity -> int

val severity_of : kind -> severity
val kind_label : kind -> string
val pp_severity : Format.formatter -> severity -> unit
val pp_finding : Format.formatter -> finding -> unit

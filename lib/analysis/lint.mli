(** Persistency lint pass: run the {!Lifecycle} FSM over recorded traces
    and aggregate its observations into findings, deduplicated by site
    pair and ranked by severity.

    The four original rules (WITCHER's persistence lifecycle rules,
    specialised to the event stream we record):
    - {e unflushed-store-published}: a store still in the dirty state was
      read by another thread — the classic PM inter-thread hazard
      (severity High);
    - {e flush-without-fence-before-release}: a store was flushed but no
      fence had ordered it when another thread consumed it (Medium);
    - {e redundant CLWB}: a flush of a line with no dirty words (Low);
    - {e redundant SFENCE}: a fence with no flush or non-temporal store
      since the previous fence (Low).

    The PM-bug-taxonomy classes (Hasan'23), enabled by [~taxonomy:true]:
    - {e double CLWB}: the same line flushed twice with no intervening
      store to it — the recurring double-flush performance bug (Low);
    - {e cross-region durability ordering}: a fence persisted a store
      issued after a still-dirty store in a different pool region
      (Medium; needs a [region_of] classifier);
    - {e dirty at end of execution}: words still dirty when the run
      ended, promoted from {!Lifecycle.dirty_words} residue (Medium);
    - {e missing recovery-path flush}: the same residue observed in a
      recovery run — state the recovery wrote but never made durable, so
      it is lost again at the next crash (High). *)

module Instr = Runtime.Instr

type severity = High | Medium | Low

type kind =
  | Unflushed_publish
  | Unfenced_publish
  | Redundant_flush
  | Redundant_fence
  | Double_flush  (** taxonomy: same line CLWB'd twice, no store between *)
  | Cross_region_order  (** taxonomy: younger store durable before older cross-region store *)
  | Unflushed_at_exit  (** taxonomy: dirty residue at end of a normal run *)
  | Missing_recovery_flush  (** taxonomy: dirty residue at end of a recovery run *)

type phase = [ `Normal | `Recovery ]

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_write_site : Instr.t option;  (** the store site, where the rule has one *)
  f_site : Instr.t;  (** read site / flush site / fence site *)
  mutable f_addr : int;
      (** smallest observed sample address (absorb-order independent); -1
          for fences *)
  f_first_exec : int;  (** index of the trace of the first occurrence *)
  mutable f_count : int;  (** dynamic occurrences across all traces *)
}

type t

val create : ?taxonomy:bool -> ?region_of:(int -> int) -> unit -> t
(** [taxonomy] (default false) enables the four taxonomy classes; the
    default pass emits exactly the original four rules.  [region_of]
    feeds the {!Lifecycle} cross-region detector. *)

val absorb : ?phase:phase -> t -> Runtime.Env.event list -> unit
(** Lint one execution's event stream; per-word FSM state is reset
    between calls.  [phase] (default [`Normal]) selects which residue
    kind end-of-trace dirty words become under [taxonomy]: dirty-at-exit
    for a normal run, missing-recovery-flush for a recovery run. *)

val findings : t -> finding list
(** Deduplicated by (rule, write site, site), most severe first.  The
    sort key is a total order over dedup keys, so the list is identical
    no matter what order the same traces were absorbed in. *)

val count : t -> int
val count_severity : t -> severity -> int
val count_kind : t -> kind -> int

val all_kinds : kind list
(** Every kind, in rank order (stable across releases for reporting). *)

val severity_of : kind -> severity
val severity_rank : severity -> int
(** [High] = 0, [Medium] = 1, [Low] = 2 — for threshold comparisons. *)

val kind_label : kind -> string

val kind_slug : kind -> string
(** Stable snake_case identifier, used as the metrics label and in JSON
    artifacts. *)

val pp_severity : Format.formatter -> severity -> unit
val pp_finding : Format.formatter -> finding -> unit

(** Likely persistence-ordering invariant inference (WITCHER-style).

    Mine invariants from the recorded event streams of correct
    executions, then check other executions against them — offline over
    a trace, or online one event at a time (the fuzzer's violation
    monitor).

    Two shapes:
    - [Order {first; next}] — whenever [first] issues a store before
      [next] does, [first]'s store is already durable (fence-persisted)
      by the time [next] first issues.  The commit discipline "data
      durable before the flag".
    - [Commit {site}] — whenever one fence persists stores from two or
      more distinct sites (an {e epoch}), [site]'s store was the last
      one issued: the epoch's commit variable.

    All predicates are first-occurrence-per-execution, and the miner and
    checker evaluate the identical predicate at the identical program
    point — so checking the traces an invariant set was mined from
    yields zero violations by construction.  Support counts the
    executions (Order) / epochs (Commit) where the invariant was
    meaningful and held; mined specs were never violated and reach
    [min_support]. *)

module Instr = Runtime.Instr

type inv = Order of { first : Instr.t; next : Instr.t } | Commit of { site : Instr.t }

type spec = { inv : inv; support : int }

type violation = {
  v_inv : inv;
  v_site : Instr.t;
      (** the site whose event exposed the violation: the too-early
          [next] store, or the usurping last store of a commit epoch *)
  v_addr : int;  (** its PM word *)
  v_words : int list;
      (** the still-pending words of [first] (Order) or the epoch's
          persisted words (Commit), sorted *)
}

(** {1 Mining} *)

type t

val create : ?min_support:int -> unit -> t
(** [min_support] (default 2): least meaningful-and-held count for a
    candidate to survive {!mine}. *)

val absorb : t -> Runtime.Env.event list -> unit
(** Summarise one correct execution into the candidate statistics. *)

val absorb_trace : t -> Runtime.Trace.t -> unit

val executions : t -> int

val mine : t -> spec list
(** Never-violated candidates with enough support, deterministically
    sorted (Order before Commit, then by site ids). *)

(** {1 Checking} *)

type checker

val checker : spec list -> checker

val reset : checker -> unit
(** Clear per-execution state (between campaigns). *)

val step : checker -> emit:(violation -> unit) -> Runtime.Env.event -> unit
(** Feed one event in program order; [emit] receives violations as they
    are exposed. *)

val check : spec list -> Runtime.Env.event list -> violation list
(** Offline: fold a fresh checker over a full event stream. *)

(** {1 Printing} *)

val label : inv -> string
(** Stable human-readable identity, e.g. ["order a.c:x -> a.c:flag"] —
    also the dedup key for violation findings. *)

val inv_kind_slug : inv -> string
(** ["order" | "commit"] — metrics label / artifact slug. *)

val compare_inv : inv -> inv -> int
val pp_inv : Format.formatter -> inv -> unit
val pp_spec : Format.formatter -> spec -> unit
val pp_violation : Format.formatter -> violation -> unit

(* Persistency lint pass: Lifecycle observations -> deduplicated,
   severity-ranked findings. *)

module Instr = Runtime.Instr

type severity = High | Medium | Low

type kind =
  | Unflushed_publish
  | Unfenced_publish
  | Redundant_flush
  | Redundant_fence

type finding = {
  f_kind : kind;
  f_severity : severity;
  f_write_site : Instr.t option;
  f_site : Instr.t;
  f_addr : int;
  f_first_exec : int;
  mutable f_count : int;
}

type key = kind * Instr.t option * Instr.t

type t = {
  fsm : Lifecycle.t;
  uniq : (key, finding) Hashtbl.t;
  mutable execs : int;
}

let severity_of = function
  | Unflushed_publish -> High
  | Unfenced_publish -> Medium
  | Redundant_flush | Redundant_fence -> Low

let kind_label = function
  | Unflushed_publish -> "unflushed-store-published"
  | Unfenced_publish -> "flush-without-fence-before-release"
  | Redundant_flush -> "redundant CLWB"
  | Redundant_fence -> "redundant SFENCE"

let create () = { fsm = Lifecycle.create (); uniq = Hashtbl.create 32; execs = 0 }

let record t ~kind ~write_site ~site ~addr =
  let key = (kind, write_site, site) in
  match Hashtbl.find_opt t.uniq key with
  | Some f -> f.f_count <- f.f_count + 1
  | None ->
      Hashtbl.add t.uniq key
        {
          f_kind = kind;
          f_severity = severity_of kind;
          f_write_site = write_site;
          f_site = site;
          f_addr = addr;
          f_first_exec = t.execs;
          f_count = 1;
        }

let on_obs t = function
  | Lifecycle.O_dirty_read { w_site; r_site; addr; _ } ->
      record t ~kind:Unflushed_publish ~write_site:(Some w_site) ~site:r_site ~addr
  | Lifecycle.O_unfenced_read { w_site; r_site; addr; _ } ->
      record t ~kind:Unfenced_publish ~write_site:(Some w_site) ~site:r_site ~addr
  | Lifecycle.O_redundant_flush { f_site; addr } ->
      record t ~kind:Redundant_flush ~write_site:None ~site:f_site ~addr
  | Lifecycle.O_redundant_fence { site } ->
      record t ~kind:Redundant_fence ~write_site:None ~site ~addr:(-1)

let absorb t events =
  Lifecycle.reset t.fsm;
  t.execs <- t.execs + 1;
  List.iter (Lifecycle.step t.fsm ~emit:(on_obs t)) events

let sev_rank = function High -> 0 | Medium -> 1 | Low -> 2

let findings t =
  Hashtbl.fold (fun _ f acc -> f :: acc) t.uniq []
  |> List.sort (fun a b ->
         match compare (sev_rank a.f_severity) (sev_rank b.f_severity) with
         | 0 -> compare (b.f_count, Instr.to_int a.f_site) (a.f_count, Instr.to_int b.f_site)
         | c -> c)

let count t = Hashtbl.length t.uniq

let count_severity t sev =
  Hashtbl.fold (fun _ f n -> if f.f_severity = sev then n + 1 else n) t.uniq 0

let pp_severity ppf = function
  | High -> Fmt.string ppf "HIGH"
  | Medium -> Fmt.string ppf "MEDIUM"
  | Low -> Fmt.string ppf "LOW"

let pp_finding ppf f =
  Fmt.pf ppf "[%a] %s: %a%s (%d occurrence%s%s)" pp_severity f.f_severity (kind_label f.f_kind)
    Instr.pp f.f_site
    (match f.f_write_site with
    | Some w -> Printf.sprintf " <- store at %s" (Instr.name w)
    | None -> "")
    f.f_count
    (if f.f_count = 1 then "" else "s")
    (if f.f_addr >= 0 then Printf.sprintf ", e.g. PM word %d" f.f_addr else "")
